package damping

import (
	"strings"
	"testing"
	"time"
)

func pulses3() []TimedUpdate {
	// The paper's 3-pulse workload at 60 s interval.
	return []TimedUpdate{
		{At: 0, Kind: KindWithdrawal},
		{At: 60 * time.Second, Kind: KindReannouncement},
		{At: 120 * time.Second, Kind: KindWithdrawal},
		{At: 180 * time.Second, Kind: KindReannouncement},
		{At: 240 * time.Second, Kind: KindWithdrawal},
		{At: 300 * time.Second, Kind: KindReannouncement},
	}
}

func TestReplayThreePulses(t *testing.T) {
	res, err := Replay(Cisco(), pulses3())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 6 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Suppressions != 1 {
		t.Fatalf("suppressions = %d, want 1", res.Suppressions)
	}
	// Suppression at the 5th update (3rd withdrawal).
	if !res.Points[4].BecameSuppressed {
		t.Fatal("3rd withdrawal did not suppress")
	}
	if res.MaxPenalty < 2700 || res.MaxPenalty > 2800 {
		t.Fatalf("max penalty %v, want ≈2744", res.MaxPenalty)
	}
	// Reuse ≈ 26-27 min after the last charge.
	if res.FinalReuseAt < 20*time.Minute || res.FinalReuseAt > 40*time.Minute {
		t.Fatalf("final reuse at %v", res.FinalReuseAt)
	}
	if res.SuppressedTotal <= 0 {
		t.Fatal("no suppressed time accumulated")
	}
}

func TestReplayNoSuppression(t *testing.T) {
	res, err := Replay(Cisco(), []TimedUpdate{
		{At: 0, Kind: KindWithdrawal},
		{At: time.Minute, Kind: KindReannouncement},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Suppressions != 0 || res.SuppressedTotal != 0 || res.FinalReuseAt != 0 {
		t.Fatalf("phantom suppression: %+v", res)
	}
}

func TestReplayMidStreamReuse(t *testing.T) {
	// Suppress, then a 3-hour gap (reuse fires), then one more withdrawal:
	// two suppression periods never happen (one withdrawal can't re-suppress),
	// and the suppressed total only covers the first episode.
	updates := []TimedUpdate{
		{At: 0, Kind: KindWithdrawal},
		{At: time.Second, Kind: KindReannouncement},
		{At: 2 * time.Second, Kind: KindWithdrawal},
		{At: 3 * time.Second, Kind: KindReannouncement},
		{At: 4 * time.Second, Kind: KindWithdrawal},
		{At: 3 * time.Hour, Kind: KindWithdrawal},
	}
	res, err := Replay(Cisco(), updates)
	if err != nil {
		t.Fatal(err)
	}
	if res.Suppressions != 1 {
		t.Fatalf("suppressions = %d", res.Suppressions)
	}
	last := res.Points[len(res.Points)-1]
	if last.Suppressed {
		t.Fatal("still suppressed after mid-stream reuse")
	}
	if res.SuppressedTotal > time.Hour {
		t.Fatalf("suppressed total %v exceeds max hold-down", res.SuppressedTotal)
	}
}

func TestReplayValidation(t *testing.T) {
	bad := Cisco()
	bad.HalfLife = 0
	if _, err := Replay(bad, nil); err == nil {
		t.Fatal("invalid params accepted")
	}
	outOfOrder := []TimedUpdate{
		{At: time.Minute, Kind: KindWithdrawal},
		{At: time.Second, Kind: KindWithdrawal},
	}
	if _, err := Replay(Cisco(), outOfOrder); err == nil {
		t.Fatal("out-of-order updates accepted")
	}
}

func TestParseUpdateLog(t *testing.T) {
	log := `
# a flap history
0 withdrawal
60 announcement
120 w
180 a
240 withdrawal
300 announce
`
	updates, err := ParseUpdateLog(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) != 6 {
		t.Fatalf("parsed %d updates", len(updates))
	}
	// First announcement after a withdrawal with no prior route is initial;
	// wait — the route was never present, so the first withdrawal is a
	// duplicate and the first announcement initial.
	if updates[0].Kind != KindDuplicate {
		t.Fatalf("first withdrawal classified %v", updates[0].Kind)
	}
	if updates[1].Kind != KindInitial {
		t.Fatalf("first announcement classified %v", updates[1].Kind)
	}
	if updates[2].Kind != KindWithdrawal {
		t.Fatalf("second withdrawal classified %v", updates[2].Kind)
	}
	if updates[3].Kind != KindReannouncement {
		t.Fatalf("second announcement classified %v", updates[3].Kind)
	}
}

func TestParseUpdateLogStartsWithRoute(t *testing.T) {
	// An "initial" line seeds route state so later updates classify as the
	// paper's pulses do.
	log := "0 initial\n10 withdrawal\n20 announcement\n"
	updates, err := ParseUpdateLog(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if updates[1].Kind != KindWithdrawal || updates[2].Kind != KindReannouncement {
		t.Fatalf("classification wrong: %v, %v", updates[1].Kind, updates[2].Kind)
	}
}

func TestParseUpdateLogSortsByTime(t *testing.T) {
	log := "60 announcement\n0 initial\n30 withdrawal\n"
	updates, err := ParseUpdateLog(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if updates[0].At != 0 || updates[2].At != 60*time.Second {
		t.Fatal("not sorted")
	}
	// 0: initial; 30: withdrawal of present route; 60: re-announcement.
	if updates[1].Kind != KindWithdrawal || updates[2].Kind != KindReannouncement {
		t.Fatalf("classification after sort wrong: %+v", updates)
	}
}

func TestParseUpdateLogErrors(t *testing.T) {
	cases := []string{
		"abc withdrawal\n",
		"-5 withdrawal\n",
		"0 frobnicate\n",
		"0\n",
		"0 w extra\n",
	}
	for _, c := range cases {
		if _, err := ParseUpdateLog(strings.NewReader(c)); err == nil {
			t.Fatalf("input %q accepted", c)
		}
	}
}

func TestReplayAgainstAnalyticConsistency(t *testing.T) {
	// Replay and the analytic Prediction share the State implementation;
	// their final penalties must agree on the pulse workload.
	res, err := Replay(Cisco(), pulses3())
	if err != nil {
		t.Fatal(err)
	}
	finalPoint := res.Points[len(res.Points)-1]
	// Closed form: see analytic tests; ≈2625 after the final announcement.
	if finalPoint.Penalty < 2500 || finalPoint.Penalty > 2700 {
		t.Fatalf("final penalty %v out of expected band", finalPoint.Penalty)
	}
}
