package damping

import (
	"math"
	"testing"
	"time"
)

// wheelTickFactor is e^(lambda*DeltaT): the documented maximum ratio by
// which the wheel's quantized penalty can deviate from the exact penalty
// in either direction (update instants round down to ticks, so the
// quantized interval between charge and query misses the exact one by
// strictly less than one tick either way).
func wheelTickFactor(p Params, cfg WheelConfig) float64 {
	return math.Exp(p.Lambda() * cfg.DeltaT.Seconds())
}

// sweepTo drives the wheel through every sweep boundary up to now,
// recording lifted keys.
func sweepTo(w *Wheel, now time.Duration, lifted *[]uint64) {
	w.Sweep(now, func(key uint64) { *lifted = append(*lifted, key) })
}

// exactReuseInstant computes when the exact state's penalty decays to the
// reuse threshold, starting from its state at the given instant.
func exactReuseInstant(s *State, at time.Duration) time.Duration {
	return at + s.ReuseIn(at)
}

func TestWheelPenaltyBandAgainstExact(t *testing.T) {
	params := Cisco()
	cfg := DefaultWheelConfig()
	w := NewWheel(params, cfg)
	ws := w.NewState(0)
	ex := NewState(params)
	factor := wheelTickFactor(params, cfg)

	// Irregular sub-second update instants exercise the tick rounding.
	instants := []time.Duration{
		sec(0.4), sec(61.7), sec(122.01), sec(183.999), sec(245.5), sec(307.2),
	}
	for i, at := range instants {
		kind := KindWithdrawal
		if i%2 == 1 {
			kind = KindReannouncement
		}
		we := ws.Update(at, kind, true)
		ee := ex.Update(at, kind, true)
		if we.Penalty < ee.Penalty/factor*(1-1e-12) {
			t.Fatalf("update %d: wheel penalty %.9g below exact/e^(lambda*dt) = %.9g",
				i, we.Penalty, ee.Penalty/factor)
		}
		if we.Penalty > ee.Penalty*factor*(1+1e-12) {
			t.Fatalf("update %d: wheel penalty %.9g exceeds exact*e^(lambda*dt) = %.9g",
				i, we.Penalty, ee.Penalty*factor)
		}
	}
	// The band holds at query instants between updates too.
	for _, at := range []time.Duration{sec(400), sec(1000), sec(2500), sec(3599.4)} {
		wp, ep := ws.Penalty(at), ex.Penalty(at)
		if wp < ep/factor*(1-1e-12)-1e-9 || wp > ep*factor*(1+1e-12)+1e-9 {
			t.Fatalf("at %v: wheel penalty %.9g outside [%.9g, %.9g]", at, wp, ep/factor, ep*factor)
		}
	}
}

func TestWheelSuppressionAndReuseLag(t *testing.T) {
	params := Cisco()
	cfg := DefaultWheelConfig()
	w := NewWheel(params, cfg)
	ws := w.NewState(7)
	ex := NewState(params)

	// Three quick withdrawal/re-announcement flaps suppress under Cisco
	// parameters (1000 per withdrawal, cutoff 2000).
	var lastEx Event
	for i := 0; i < 3; i++ {
		at := sec(float64(i) * 30.5)
		ws.Update(at, KindWithdrawal, true)
		lastEx = ex.Update(at, KindWithdrawal, true)
		at2 := at + sec(1.25)
		ws.Update(at2, KindReannouncement, true)
		lastEx = ex.Update(at2, KindReannouncement, true)
	}
	if !ws.Suppressed() || !lastEx.Suppressed {
		t.Fatalf("both engines should be suppressed (wheel=%t exact=%t)", ws.Suppressed(), lastEx.Suppressed)
	}
	if _, enrolled := ws.ReuseAt(); !enrolled {
		t.Fatal("suppressed wheel state must be enrolled in a reuse list")
	}
	if w.Enrolled() != 1 {
		t.Fatalf("Enrolled() = %d, want 1", w.Enrolled())
	}

	exactLift := exactReuseInstant(ex, sec(62))
	var lifted []uint64
	now := sec(62)
	for ws.Suppressed() {
		now = w.NextSweepAt(now)
		sweepTo(w, now, &lifted)
		if now > exactLift+time.Hour {
			t.Fatal("wheel never lifted suppression")
		}
	}
	wheelLift := now
	if len(lifted) != 1 || lifted[0] != 7 {
		t.Fatalf("lift callback got %v, want [7]", lifted)
	}
	if _, enrolled := ws.ReuseAt(); enrolled {
		t.Fatal("lifted state must not stay enrolled")
	}
	// Documented bound: the wheel's penalty can deviate one decay tick
	// either way, so it lifts no more than one tick before the exact reuse
	// instant and no later than one tick plus one sweep period after it.
	if wheelLift < exactLift-cfg.DeltaT-time.Millisecond {
		t.Fatalf("wheel lifted at %v, more than one tick before exact reuse instant %v",
			wheelLift, exactLift)
	}
	if max := exactLift + cfg.DeltaT + cfg.DeltaTReuse; wheelLift > max {
		t.Fatalf("wheel lifted at %v, after bound %v (exact %v)", wheelLift, max, exactLift)
	}
}

func TestWheelReuseLatencyDistribution(t *testing.T) {
	params := Cisco()
	cfg := DefaultWheelConfig()
	w := NewWheel(params, cfg)
	const n = 2000
	type pair struct {
		ws *WheelState
		ex *State
	}
	streams := make([]pair, n)
	for i := range streams {
		streams[i] = pair{ws: w.NewState(uint64(i)), ex: NewState(params)}
	}
	// Stagger suppression onset across the sweep period with deterministic
	// sub-second phases, three withdrawals each.
	base := sec(10)
	for i, p := range streams {
		phase := time.Duration(i%997) * (7 * time.Millisecond)
		for k := 0; k < 3; k++ {
			at := base + phase + time.Duration(k)*sec(2)
			p.ws.Update(at, KindWithdrawal, true)
			p.ex.Update(at, KindWithdrawal, true)
		}
		if !p.ws.Suppressed() || !p.ex.Suppressed() {
			t.Fatalf("stream %d not suppressed", i)
		}
	}

	// Drain the wheel, recording every stream's lift instant.
	liftAt := make(map[uint64]time.Duration, n)
	now := base + sec(10)
	for w.Enrolled() > 0 {
		now = w.NextSweepAt(now)
		at := now
		w.Sweep(now, func(key uint64) { liftAt[key] = at })
	}

	var worst, sum time.Duration
	for i, p := range streams {
		exact := exactReuseInstant(p.ex, base+sec(10))
		got, ok := liftAt[uint64(i)]
		if !ok {
			t.Fatalf("stream %d never lifted", i)
		}
		lag := got - exact
		if lag < -cfg.DeltaT-time.Millisecond {
			t.Fatalf("stream %d lifted %v before its exact reuse instant (bound %v)",
				i, -lag, cfg.DeltaT)
		}
		if bound := cfg.DeltaT + cfg.DeltaTReuse; lag > bound {
			t.Fatalf("stream %d reuse lag %v exceeds bound %v", i, lag, bound)
		}
		if lag > worst {
			worst = lag
		}
		sum += lag
	}
	t.Logf("reuse latency error over %d streams: mean %v, worst %v (bound %v)",
		n, sum/time.Duration(n), worst, cfg.DeltaT+cfg.DeltaTReuse)
}

func TestWheelCloneIndependence(t *testing.T) {
	params := Cisco()
	w := NewWheel(params, DefaultWheelConfig())
	a := w.NewState(1)
	b := w.NewState(2)
	for k := 0; k < 3; k++ {
		at := sec(float64(k) * 2)
		a.Update(at, KindWithdrawal, true)
		b.Update(at+sec(1), KindWithdrawal, true)
	}
	if w.Enrolled() != 2 {
		t.Fatalf("Enrolled() = %d, want 2", w.Enrolled())
	}

	c, m := w.Clone()
	ca, cb := m[a], m[b]
	if ca == nil || cb == nil || ca == a || cb == b {
		t.Fatal("clone map must cover every state with fresh pointers")
	}
	if c.Enrolled() != 2 {
		t.Fatalf("clone Enrolled() = %d, want 2", c.Enrolled())
	}
	origAt, _ := a.ReuseAt()
	cloneAt, _ := ca.ReuseAt()
	if cloneAt != origAt {
		t.Fatalf("clone reuse instant %v != original %v", cloneAt, origAt)
	}

	// Identical stimuli keep them identical.
	var origLifts, cloneLifts []uint64
	now := sec(10)
	for w.Enrolled() > 0 {
		now = w.NextSweepAt(now)
		sweepTo(w, now, &origLifts)
	}
	now = sec(10)
	for c.Enrolled() > 0 {
		now = c.NextSweepAt(now)
		sweepTo(c, now, &cloneLifts)
	}
	if len(origLifts) != len(cloneLifts) {
		t.Fatalf("lift counts differ: %v vs %v", origLifts, cloneLifts)
	}
	for i := range origLifts {
		if origLifts[i] != cloneLifts[i] {
			t.Fatalf("lift order differs at %d: %v vs %v", i, origLifts, cloneLifts)
		}
	}
	// Divergent stimuli must not alias: re-suppress only the clone.
	for k := 0; k < 3; k++ {
		ca.Update(now+sec(float64(k)), KindWithdrawal, true)
	}
	if a.Suppressed() {
		t.Fatal("original state aliases its clone")
	}
	if c.Enrolled() != 1 || w.Enrolled() != 0 {
		t.Fatalf("enrollment aliasing: orig %d, clone %d", w.Enrolled(), c.Enrolled())
	}
}

func TestWheelStateResetDetaches(t *testing.T) {
	params := Cisco()
	w := NewWheel(params, DefaultWheelConfig())
	s := w.NewState(3)
	for k := 0; k < 3; k++ {
		s.Update(sec(float64(k)), KindWithdrawal, true)
	}
	if !s.Suppressed() || w.Enrolled() != 1 {
		t.Fatal("setup: state should be suppressed and enrolled")
	}
	s.Reset()
	if s.Suppressed() || s.Penalty(sec(10)) != 0 {
		t.Fatal("Reset must clear suppression and penalty")
	}
	if w.Enrolled() != 0 {
		t.Fatalf("Reset left the state enrolled (Enrolled() = %d)", w.Enrolled())
	}
	if _, enrolled := s.ReuseAt(); enrolled {
		t.Fatal("Reset state reports a reuse instant")
	}
}

func TestWheelResetDiscardsStates(t *testing.T) {
	params := Cisco()
	w := NewWheel(params, DefaultWheelConfig())
	s := w.NewState(1)
	for k := 0; k < 3; k++ {
		s.Update(sec(float64(k)), KindWithdrawal, true)
	}
	w.Reset()
	if w.Enrolled() != 0 {
		t.Fatalf("Enrolled() = %d after Reset", w.Enrolled())
	}
	if s.Suppressed() {
		t.Fatal("orphaned state still suppressed after wheel Reset")
	}
	// The wheel keeps working for states minted after the reset.
	s2 := w.NewState(2)
	for k := 0; k < 3; k++ {
		s2.Update(sec(100+float64(k)), KindWithdrawal, true)
	}
	if !s2.Suppressed() || w.Enrolled() != 1 {
		t.Fatal("wheel unusable after Reset")
	}
}

func TestWheelHorizonCapReEnrolls(t *testing.T) {
	// A tiny wheel forces penalties whose reuse instant lies beyond the
	// horizon to park in the farthest list and re-enroll when swept.
	params := Cisco()
	cfg := WheelConfig{DeltaT: time.Second, DeltaTReuse: 5 * time.Second, MaxLists: 3}
	w := NewWheel(params, cfg)
	s := w.NewState(9)
	ex := NewState(params)
	for k := 0; k < 3; k++ {
		at := sec(float64(k))
		s.Update(at, KindWithdrawal, true)
		ex.Update(at, KindWithdrawal, true)
	}
	if !s.Suppressed() {
		t.Fatal("setup: not suppressed")
	}
	exact := exactReuseInstant(ex, sec(2))
	var lifted []uint64
	now := sec(2)
	for s.Suppressed() {
		now = w.NextSweepAt(now)
		sweepTo(w, now, &lifted)
		if now > exact+time.Hour {
			t.Fatal("capped wheel never lifted")
		}
	}
	if now < exact-cfg.DeltaT-time.Millisecond || now > exact+cfg.DeltaT+cfg.DeltaTReuse {
		t.Fatalf("capped wheel lifted at %v, exact %v", now, exact)
	}
}

func TestWheelTryReuseMatchesExactSemantics(t *testing.T) {
	params := Cisco()
	w := NewWheel(params, DefaultWheelConfig())
	s := w.NewState(4)
	ex := NewState(params)
	for k := 0; k < 3; k++ {
		at := sec(float64(k))
		s.Update(at, KindWithdrawal, true)
		ex.Update(at, KindWithdrawal, true)
	}
	early := sec(10)
	if s.TryReuse(early) {
		t.Fatal("TryReuse must fail while the penalty is above the reuse threshold")
	}
	late := exactReuseInstant(ex, sec(2)) + DefaultWheelConfig().DeltaT
	if !s.TryReuse(late) {
		t.Fatalf("TryReuse at %v (past exact reuse + one tick) must succeed", late)
	}
	if s.Suppressed() || w.Enrolled() != 0 {
		t.Fatal("TryReuse must lift suppression and detach from the reuse list")
	}
	if !s.TryReuse(late) {
		t.Fatal("TryReuse on an unsuppressed state must report true")
	}
}

// TestWheelSteadyStateDoesNotAllocate is the damping-package leg of the CI
// alloc gate: once lists and states are warm, a full flap/suppress/sweep/
// reuse cycle must not allocate.
func TestWheelSteadyStateDoesNotAllocate(t *testing.T) {
	params := Cisco()
	// A small ring lets one warm-up cycle touch (and size) every reuse
	// list; with the default 722-list ring each cycle would enroll into
	// cold buckets and the append growth would read as steady-state
	// allocation.
	cfg := WheelConfig{DeltaT: time.Second, DeltaTReuse: 5 * time.Second, MaxLists: 8}
	w := NewWheel(params, cfg)
	const n = 512
	states := make([]*WheelState, n)
	for i := range states {
		states[i] = w.NewState(uint64(i))
	}
	now := sec(0)
	cycle := func() {
		for k := 0; k < 3; k++ {
			at := now + time.Duration(k)*sec(2)
			for _, s := range states {
				s.Update(at, KindWithdrawal, true)
			}
		}
		now += sec(6)
		for w.Enrolled() > 0 {
			now = w.NextSweepAt(now)
			w.Sweep(now, func(uint64) {})
		}
		now += sec(10)
	}
	cycle() // warm list capacities
	if allocs := testing.AllocsPerRun(5, cycle); allocs != 0 {
		t.Fatalf("steady-state wheel cycle allocated %.1f times per run, want 0", allocs)
	}
}
