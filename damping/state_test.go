package damping

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func sec(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

func TestFreshStateClean(t *testing.T) {
	s := NewState(Cisco())
	if s.Suppressed() {
		t.Fatal("fresh state suppressed")
	}
	if got := s.Penalty(0); got != 0 {
		t.Fatalf("fresh penalty = %v", got)
	}
	if s.ReuseIn(0) != 0 {
		t.Fatal("fresh state has a reuse delay")
	}
}

func TestSingleWithdrawalDoesNotSuppress(t *testing.T) {
	s := NewState(Cisco())
	ev := s.Update(0, KindWithdrawal, true)
	if ev.Penalty != 1000 {
		t.Fatalf("penalty = %v, want 1000", ev.Penalty)
	}
	if ev.Suppressed || ev.BecameSuppressed {
		t.Fatal("single withdrawal suppressed the route")
	}
}

// TestThirdPulseTriggersSuppression reproduces the paper's setup: pulses at
// 120 s period (withdrawal every 120 s) with Cisco parameters suppress the
// origin link at the 3rd withdrawal (Sections 5.2, 6.2).
func TestThirdPulseTriggersSuppression(t *testing.T) {
	s := NewState(Cisco())
	ev := s.Update(0, KindWithdrawal, true)
	if ev.Suppressed {
		t.Fatal("suppressed after pulse 1")
	}
	s.Update(sec(60), KindReannouncement, true)
	ev = s.Update(sec(120), KindWithdrawal, true)
	if ev.Suppressed {
		t.Fatalf("suppressed after pulse 2 (penalty %v)", ev.Penalty)
	}
	s.Update(sec(180), KindReannouncement, true)
	ev = s.Update(sec(240), KindWithdrawal, true)
	if !ev.BecameSuppressed {
		t.Fatalf("not suppressed after pulse 3 (penalty %v)", ev.Penalty)
	}
	// Expected penalty: 1000·e^(−λ·240) + 1000·e^(−λ·120) + 1000 ≈ 2744.
	if math.Abs(ev.Penalty-2744) > 5 {
		t.Fatalf("penalty after 3rd withdrawal = %v, want ≈2744", ev.Penalty)
	}
}

func TestPenaltyDecaysBetweenUpdates(t *testing.T) {
	s := NewState(Cisco())
	s.Update(0, KindWithdrawal, true)
	p15 := s.Penalty(15 * time.Minute)
	if math.Abs(p15-500) > 1e-6 {
		t.Fatalf("penalty after one half-life = %v, want 500", p15)
	}
	p30 := s.Penalty(30 * time.Minute)
	if math.Abs(p30-250) > 1e-6 {
		t.Fatalf("penalty after two half-lives = %v, want 250", p30)
	}
}

func TestPenaltyQueryDoesNotMutate(t *testing.T) {
	s := NewState(Cisco())
	s.Update(0, KindWithdrawal, true)
	_ = s.Penalty(time.Hour)
	// Querying far in the future must not materialize decay permanently.
	if got := s.Penalty(15 * time.Minute); math.Abs(got-500) > 1e-6 {
		t.Fatalf("Penalty mutated state: %v, want 500", got)
	}
}

func TestPenaltyCeiling(t *testing.T) {
	s := NewState(Cisco())
	for i := 0; i < 100; i++ {
		s.Update(sec(float64(i)), KindWithdrawal, true)
	}
	max := Cisco().MaxPenalty()
	if got := s.Penalty(sec(99)); got > max+1e-9 {
		t.Fatalf("penalty %v exceeds ceiling %v", got, max)
	}
	// And the implied suppression time never exceeds the max hold-down.
	if r := s.ReuseIn(sec(99)); r > Cisco().MaxHoldDown {
		t.Fatalf("reuse delay %v exceeds max hold-down", r)
	}
}

func TestChargeVeto(t *testing.T) {
	// RCN-filtered updates must not charge, but the state still answers.
	s := NewState(Cisco())
	for i := 0; i < 10; i++ {
		ev := s.Update(sec(float64(i)), KindWithdrawal, false)
		if ev.Increment != 0 {
			t.Fatalf("vetoed update charged %v", ev.Increment)
		}
	}
	if s.Penalty(sec(10)) != 0 {
		t.Fatalf("penalty = %v after vetoed updates, want 0", s.Penalty(sec(10)))
	}
	if s.Suppressed() {
		t.Fatal("suppressed by vetoed updates")
	}
}

func TestSuppressionLifecycle(t *testing.T) {
	s := NewState(Cisco())
	// Three rapid withdrawals: penalty ≈ 3000 ⇒ suppressed.
	s.Update(0, KindWithdrawal, true)
	s.Update(sec(1), KindReannouncement, true)
	s.Update(sec(2), KindWithdrawal, true)
	s.Update(sec(3), KindReannouncement, true)
	ev := s.Update(sec(4), KindWithdrawal, true)
	if !ev.BecameSuppressed {
		t.Fatalf("not suppressed, penalty %v", ev.Penalty)
	}
	if ev.ReuseIn <= 0 {
		t.Fatal("suppressed event carries no reuse delay")
	}
	// The reuse timer would fire at 4s + ReuseIn; before that, TryReuse
	// fails.
	early := sec(4) + ev.ReuseIn/2
	if s.TryReuse(early) {
		t.Fatal("TryReuse succeeded before the penalty decayed")
	}
	if !s.Suppressed() {
		t.Fatal("failed TryReuse lifted suppression")
	}
	// At the scheduled instant it succeeds.
	due := sec(4) + ev.ReuseIn
	if !s.TryReuse(due) {
		t.Fatalf("TryReuse failed at its scheduled time (penalty %v)", s.Penalty(due))
	}
	if s.Suppressed() {
		t.Fatal("still suppressed after successful TryReuse")
	}
}

func TestTryReuseOnUnsuppressedState(t *testing.T) {
	s := NewState(Cisco())
	if !s.TryReuse(0) {
		t.Fatal("TryReuse on clean state returned false")
	}
}

func TestRechargeExtendsSuppression(t *testing.T) {
	// Secondary charging in miniature: a suppressed route that receives
	// another update sees its reuse instant move later.
	s := NewState(Cisco())
	s.Update(0, KindWithdrawal, true)
	s.Update(sec(1), KindReannouncement, true)
	s.Update(sec(2), KindWithdrawal, true)
	s.Update(sec(3), KindReannouncement, true)
	ev := s.Update(sec(4), KindWithdrawal, true)
	if !ev.Suppressed {
		t.Fatal("setup failed: not suppressed")
	}
	firstDue := sec(4) + ev.ReuseIn

	// Re-charge at t=100s with another withdrawal (e.g. triggered by a
	// neighbor's route reuse elsewhere).
	ev2 := s.Update(sec(100), KindWithdrawal, true)
	secondDue := sec(100) + ev2.ReuseIn
	if !ev2.Suppressed || ev2.BecameSuppressed {
		t.Fatalf("re-charge produced wrong flags: %+v", ev2)
	}
	if secondDue <= firstDue {
		t.Fatalf("re-charge did not extend reuse: %v -> %v", firstDue, secondDue)
	}
	// The stale first timer must fail.
	if s.TryReuse(firstDue) {
		t.Fatal("stale reuse timer succeeded after re-charge")
	}
	if !s.TryReuse(secondDue) {
		t.Fatal("extended reuse timer failed")
	}
}

func TestJuniperSuppressesFasterOnReannouncements(t *testing.T) {
	// Juniper charges announcements too, so a withdraw/announce pulse adds
	// 2000 vs. Cisco's 1000; with cutoff 3000 the 2nd pulse suppresses.
	s := NewState(Juniper())
	s.Update(0, KindWithdrawal, true)
	ev := s.Update(sec(60), KindReannouncement, true)
	if ev.Suppressed {
		t.Fatal("Juniper suppressed after 1 pulse")
	}
	s.Update(sec(120), KindWithdrawal, true)
	ev = s.Update(sec(180), KindReannouncement, true)
	if !ev.Suppressed {
		t.Fatalf("Juniper not suppressed after 2 pulses (penalty %v)", ev.Penalty)
	}
}

func TestResetClearsEverything(t *testing.T) {
	s := NewState(Cisco())
	for i := 0; i < 5; i++ {
		s.Update(sec(float64(i)), KindWithdrawal, true)
	}
	if !s.Suppressed() {
		t.Fatal("setup failed")
	}
	s.Reset()
	if s.Suppressed() || s.Penalty(sec(10)) != 0 {
		t.Fatalf("Reset left state dirty: %v", s)
	}
}

func TestStateStringIncludesPenalty(t *testing.T) {
	s := NewState(Cisco())
	s.Update(0, KindWithdrawal, true)
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

// TestQuickPenaltyNeverNegativeNorAboveCeiling drives a state with random
// update sequences and checks the invariants 0 <= penalty <= ceiling and
// "suppressed implies penalty was once above cutoff".
func TestQuickPenaltyInvariant(t *testing.T) {
	params := Cisco()
	ceiling := params.MaxPenalty()
	f := func(kinds []uint8, gaps []uint16) bool {
		s := NewState(params)
		now := time.Duration(0)
		everAboveCutoff := false
		for i, kRaw := range kinds {
			if i < len(gaps) {
				now += time.Duration(gaps[i]) * time.Millisecond
			} else {
				now += time.Second
			}
			kind := Kind(int(kRaw)%5) + 1
			ev := s.Update(now, kind, true)
			if ev.Penalty < 0 || ev.Penalty > ceiling+1e-9 {
				return false
			}
			if ev.Penalty > params.CutoffThreshold {
				everAboveCutoff = true
			}
			if ev.BecameSuppressed && !everAboveCutoff {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickReuseTimerAlwaysSucceedsWhenArmedCorrectly: if no further updates
// arrive, a timer armed at Update-time ReuseIn always finds the penalty at or
// below the reuse threshold.
func TestQuickReuseTimerAccuracy(t *testing.T) {
	params := Cisco()
	f := func(extra uint8) bool {
		s := NewState(params)
		now := time.Duration(0)
		// Charge until suppressed (2 + extra%4 withdrawal bursts).
		var ev Event
		for i := 0; i < 3+int(extra%4); i++ {
			ev = s.Update(now, KindWithdrawal, true)
			now += time.Second
		}
		if !ev.Suppressed {
			return true // not enough charge; vacuous
		}
		due := now - time.Second + ev.ReuseIn
		return s.TryReuse(due)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
