package damping

import (
	"fmt"
	"time"
)

// EngineKind selects the damping backend implementation.
type EngineKind int

const (
	// EngineExact is the reference backend: one State per stream with
	// closed-form exponential decay (math.Exp on every touch) and exact
	// reuse instants (math.Log per suppression). It is the zero value, so
	// existing configurations keep their bit-for-bit behavior.
	EngineExact EngineKind = iota
	// EngineWheel is the timer-wheel backend modeled on BIRD's
	// implementation: a precomputed quantized decay table, reuse-ceiling
	// scale indexing, and bucketed reuse lists swept in batch — designed
	// for routers carrying 10^5–10^6 damped prefixes. See Wheel for the
	// quantization error bound it trades for that throughput.
	EngineWheel
)

// String names the engine kind (the -damping-engine CLI vocabulary).
func (k EngineKind) String() string {
	switch k {
	case EngineExact:
		return "exact"
	case EngineWheel:
		return "wheel"
	default:
		return fmt.Sprintf("EngineKind(%d)", int(k))
	}
}

// ParseEngine parses the CLI spelling of an engine kind. The empty string
// means EngineExact, matching the zero value of the type.
func ParseEngine(s string) (EngineKind, error) {
	switch s {
	case "", "exact":
		return EngineExact, nil
	case "wheel":
		return EngineWheel, nil
	default:
		return 0, fmt.Errorf("damping: unknown engine %q (want exact or wheel)", s)
	}
}

// Engine is the per-stream damping interface both backends implement: the
// exact *State and the timer-wheel's *WheelState. The simulator's router
// holds one Engine per (peer, prefix) RIB-IN entry and drives it through
// exactly this surface, so the backend can be swapped without touching the
// protocol machinery.
//
// Reuse scheduling deliberately stays outside the interface: the exact
// backend expects the caller to arm one timer per suppressed stream at
// now+Event.ReuseIn, while wheel states enroll themselves in their Wheel's
// reuse lists and are lifted by the owning router's periodic batch sweep.
type Engine interface {
	// Params returns the configuration the state was built with.
	Params() Params
	// Suppressed reports whether the route is currently suppressed.
	Suppressed() bool
	// Penalty returns the decayed penalty value at the given instant.
	Penalty(now time.Duration) float64
	// Update feeds one classified update into the state at virtual time
	// now; charge=false records the update without adding penalty.
	Update(now time.Duration, kind Kind, charge bool) Event
	// ReuseIn returns how long from now until the penalty reaches the
	// reuse threshold (zero when already at or below it).
	ReuseIn(now time.Duration) time.Duration
	// TryReuse lifts suppression when the penalty has decayed to the reuse
	// threshold, reporting whether the route is now usable.
	TryReuse(now time.Duration) bool
	// Reset clears penalty and suppression (and, for wheel states, reuse
	// list membership).
	Reset()
}

var (
	_ Engine = (*State)(nil)
	_ Engine = (*WheelState)(nil)
)
