// Package damping implements BGP Route Flap Damping as specified in RFC 2439
// and studied in "Timer Interaction in Route Flap Damping" (Zhang, Pei,
// Massey, Zhang — ICDCS 2005).
//
// A router keeps one State per (peer, destination prefix) pair. Every update
// received for that pair adds a penalty increment that depends on the kind of
// update (withdrawal, re-announcement, attribute change); between updates the
// penalty decays exponentially with a configured half-life. When the penalty
// exceeds the cut-off threshold the route is suppressed: it is excluded from
// best-path selection until the penalty decays below the reuse threshold,
// at which point a reuse timer fires and the route becomes usable again.
//
// The package is self-contained and deliberately independent of the simulator
// (time is passed in as time.Duration offsets), so it is equally usable
// inside a real routing daemon. Classification of updates into Kinds is the
// caller's job — it requires RIB state the damping engine should not own —
// via Classify or directly.
//
// The ICDCS 2005 paper's findings hinge on exactly this machinery: because
// the penalty charges on *every* received update regardless of root cause,
// path-exploration updates cause false suppression, and updates triggered by
// route reuse at other routers re-charge penalties ("secondary charging").
// See the rcn package and bgp.Config.EnableRCN for the paper's fix.
package damping

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Kind classifies a received update relative to the current RIB-IN entry for
// the same (peer, prefix). The zero value is invalid so that forgotten
// classification is caught.
type Kind int

const (
	// KindInitial is the first announcement ever received for the pair, or
	// an announcement for which no flap history exists. No penalty.
	KindInitial Kind = iota + 1
	// KindWithdrawal is a withdrawal of a currently-present route.
	KindWithdrawal
	// KindReannouncement is an announcement for a route that was previously
	// withdrawn.
	KindReannouncement
	// KindAttrChange is an announcement that changes the attributes (e.g.
	// the AS path) of a route that is currently present.
	KindAttrChange
	// KindDuplicate is an announcement identical to the current route, or a
	// withdrawal for an already-withdrawn route. No penalty.
	KindDuplicate
)

// String returns the RFC 2439 style name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInitial:
		return "initial"
	case KindWithdrawal:
		return "withdrawal"
	case KindReannouncement:
		return "re-announcement"
	case KindAttrChange:
		return "attribute-change"
	case KindDuplicate:
		return "duplicate"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Params holds a damping configuration (Table 1 of the paper).
type Params struct {
	// WithdrawalPenalty is added when a present route is withdrawn (P_W).
	WithdrawalPenalty float64
	// ReannouncementPenalty is added when a withdrawn route is announced
	// again (P_A). Cisco uses 0, Juniper 1000.
	ReannouncementPenalty float64
	// AttrChangePenalty is added when an announcement changes the attributes
	// of a present route.
	AttrChangePenalty float64
	// CutoffThreshold (P_cut): a route is suppressed when its penalty
	// exceeds this value.
	CutoffThreshold float64
	// ReuseThreshold (P_reuse): a suppressed route is reused when its
	// penalty decays below this value.
	ReuseThreshold float64
	// HalfLife (H) of the exponential penalty decay.
	HalfLife time.Duration
	// MaxHoldDown bounds how long a route may stay suppressed; it implies a
	// ceiling on the penalty value (see MaxPenalty).
	MaxHoldDown time.Duration
}

// Cisco returns the Cisco default parameters from Table 1 of the paper.
// All simulation results in the paper use these values.
func Cisco() Params {
	return Params{
		WithdrawalPenalty:     1000,
		ReannouncementPenalty: 0,
		AttrChangePenalty:     500,
		CutoffThreshold:       2000,
		ReuseThreshold:        750,
		HalfLife:              15 * time.Minute,
		MaxHoldDown:           60 * time.Minute,
	}
}

// Juniper returns the Juniper default parameters from Table 1 of the paper.
func Juniper() Params {
	return Params{
		WithdrawalPenalty:     1000,
		ReannouncementPenalty: 1000,
		AttrChangePenalty:     500,
		CutoffThreshold:       3000,
		ReuseThreshold:        750,
		HalfLife:              15 * time.Minute,
		MaxHoldDown:           60 * time.Minute,
	}
}

// RIPE229 returns the coordinated damping parameters recommended by the
// RIPE Routing Working Group (Panigl, Schmitz, Smith, Vistoli — RIPE 229,
// cited by the paper as the operator response to observed false
// suppression): Cisco-style increments with the higher 3000 cut-off, so
// that a lone flap amplified by path exploration is less likely to suppress.
func RIPE229() Params {
	return Params{
		WithdrawalPenalty:     1000,
		ReannouncementPenalty: 0,
		AttrChangePenalty:     500,
		CutoffThreshold:       3000,
		ReuseThreshold:        750,
		HalfLife:              15 * time.Minute,
		MaxHoldDown:           60 * time.Minute,
	}
}

// errInvalidParams sentinels parameter validation failures.
var errInvalidParams = errors.New("damping: invalid parameters")

// Validate checks internal consistency of the parameters.
func (p Params) Validate() error {
	switch {
	case p.WithdrawalPenalty < 0 || p.ReannouncementPenalty < 0 || p.AttrChangePenalty < 0:
		return fmt.Errorf("%w: negative penalty increment", errInvalidParams)
	case p.ReuseThreshold <= 0:
		return fmt.Errorf("%w: reuse threshold %v must be positive", errInvalidParams, p.ReuseThreshold)
	case p.CutoffThreshold <= p.ReuseThreshold:
		return fmt.Errorf("%w: cutoff %v must exceed reuse threshold %v",
			errInvalidParams, p.CutoffThreshold, p.ReuseThreshold)
	case p.HalfLife <= 0:
		return fmt.Errorf("%w: half-life %v must be positive", errInvalidParams, p.HalfLife)
	case p.MaxHoldDown <= 0:
		return fmt.Errorf("%w: max hold-down %v must be positive", errInvalidParams, p.MaxHoldDown)
	}
	return nil
}

// Lambda returns the decay rate λ such that p(t) = p(t0)·e^(−λ(t−t0)),
// with λ = ln 2 / H (Equation 1 of the paper). The unit is 1/second.
func (p Params) Lambda() float64 {
	return math.Ln2 / p.HalfLife.Seconds()
}

// MaxPenalty returns the ceiling the penalty is clamped to:
// Preuse · 2^(MaxHoldDown/HalfLife). With Cisco defaults this is 12000 — the
// value the paper notes would be needed for a one-hour suppression
// (Section 5.2).
func (p Params) MaxPenalty() float64 {
	return p.ReuseThreshold * math.Exp2(float64(p.MaxHoldDown)/float64(p.HalfLife))
}

// Increment returns the penalty added for an update of the given kind.
func (p Params) Increment(k Kind) float64 {
	switch k {
	case KindWithdrawal:
		return p.WithdrawalPenalty
	case KindReannouncement:
		return p.ReannouncementPenalty
	case KindAttrChange:
		return p.AttrChangePenalty
	default: // KindInitial, KindDuplicate and invalid kinds add nothing.
		return 0
	}
}

// Decay returns the penalty value after elapsed time, given a starting value.
// Negative elapsed durations are treated as zero (time cannot run backwards
// for a damping state; clamping keeps the engine robust against clock skew
// when used outside the simulator).
func (p Params) Decay(penalty float64, elapsed time.Duration) float64 {
	if elapsed <= 0 || penalty <= 0 {
		if penalty < 0 {
			return 0
		}
		return penalty
	}
	return penalty * math.Exp(-p.Lambda()*elapsed.Seconds())
}

// ReuseDelay returns how long it takes a penalty to decay to the reuse
// threshold: r = (1/λ)·ln(p/Preuse) (Section 3). It returns 0 if the penalty
// is already at or below the threshold, and caps the result at MaxHoldDown.
func (p Params) ReuseDelay(penalty float64) time.Duration {
	if penalty <= p.ReuseThreshold {
		return 0
	}
	seconds := math.Log(penalty/p.ReuseThreshold) / p.Lambda()
	d := time.Duration(seconds * float64(time.Second))
	if d > p.MaxHoldDown {
		return p.MaxHoldDown
	}
	return d
}

// Classify derives the update Kind from RIB-IN facts: whether the update is a
// withdrawal, whether a route from this peer is currently present, whether
// one was ever present, and whether the new announcement differs from the
// present one. It encodes the table implicit in RFC 2439 §4.4.
func Classify(isWithdrawal, routePresent, everPresent, attrsDiffer bool) Kind {
	if isWithdrawal {
		if routePresent {
			return KindWithdrawal
		}
		return KindDuplicate
	}
	if routePresent {
		if attrsDiffer {
			return KindAttrChange
		}
		return KindDuplicate
	}
	if everPresent {
		return KindReannouncement
	}
	return KindInitial
}
