package damping

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// WheelConfig fixes the quantization geometry of a Wheel. The defaults
// mirror BIRD's constants: a 1s decay tick and a 5s reuse sweep.
type WheelConfig struct {
	// DeltaT is the decay quantum: penalties decay in whole DeltaT steps
	// via a precomputed lookup table instead of per-touch math.Exp.
	DeltaT time.Duration
	// DeltaTReuse is the reuse-sweep period: suppressed streams sit in
	// bucketed reuse lists and are re-examined only when their bucket's
	// sweep tick arrives.
	DeltaTReuse time.Duration
	// MaxLists caps the number of reuse list buckets. Streams whose
	// predicted reuse instant lies beyond the wheel horizon park in the
	// last bucket and re-enroll when swept.
	MaxLists int
}

// DefaultWheelConfig returns the geometry used by the wheel engine across
// the simulator: 1s decay ticks, 5s reuse sweeps, up to 4096 reuse lists.
func DefaultWheelConfig() WheelConfig {
	return WheelConfig{DeltaT: time.Second, DeltaTReuse: 5 * time.Second, MaxLists: 4096}
}

// WithDefaults returns the config with zero-valued fields replaced by
// DefaultWheelConfig's, and DeltaTReuse raised to DeltaT when a partial
// override left it smaller. NewWheel applies it implicitly.
func (c WheelConfig) WithDefaults() WheelConfig {
	def := DefaultWheelConfig()
	if c.DeltaT <= 0 {
		c.DeltaT = def.DeltaT
	}
	if c.DeltaTReuse <= 0 {
		c.DeltaTReuse = def.DeltaTReuse
	}
	if c.MaxLists <= 0 {
		c.MaxLists = def.MaxLists
	}
	if c.DeltaTReuse < c.DeltaT {
		c.DeltaTReuse = c.DeltaT
	}
	return c
}

// Validate checks the geometry for internal consistency.
func (c WheelConfig) Validate() error {
	switch {
	case c.DeltaT <= 0:
		return fmt.Errorf("wheel: DeltaT must be positive, got %v", c.DeltaT)
	case c.DeltaTReuse < c.DeltaT:
		return fmt.Errorf("wheel: DeltaTReuse %v must be >= DeltaT %v", c.DeltaTReuse, c.DeltaT)
	case c.MaxLists < 3:
		return fmt.Errorf("wheel: MaxLists must be >= 3, got %d", c.MaxLists)
	}
	return nil
}

// maxDecayTable bounds the decay lookup table length regardless of how
// long MaxHoldDown is relative to DeltaT.
const maxDecayTable = 1 << 16

// reuseTolerance is the relative slack applied when comparing a decayed
// penalty against the reuse threshold, matching the exact backend's
// TryReuse tolerance.
const reuseTolerance = 1e-9

// minWheelPenalty is the flush-to-zero floor: quantized penalties below it
// are clamped to exactly zero. It sits far below the checker's 1e-9
// relative tolerance, so the clamp is invisible to the oracle.
const minWheelPenalty = 1e-12

// Wheel is the timer-wheel damping backend (BIRD-style). One Wheel per
// router owns every WheelState the router's RIB-IN entries hold and
// amortizes their bookkeeping three ways:
//
//   - decay is quantized to DeltaT ticks and computed by table lookup
//     (decay[i] = e^(-lambda*i*DeltaT)), never math.Exp on the hot path;
//   - reuse instants are predicted by scale-factor indexing: ceiling[k] =
//     ReuseThreshold * e^(lambda*(k+1)*DeltaTReuse) is the largest penalty
//     that can decay to the reuse threshold within k+1 sweep periods, so a
//     binary search over ceilings replaces math.Log per suppression;
//   - suppressed streams enroll in one of N reuse lists forming a ring
//     keyed by sweep tick, and a single periodic sweep per router drains
//     the due bucket — no per-prefix kernel timers.
//
// Error bound (see docs/performance.md): update instants round down to
// tick boundaries, so the quantized elapsed time between any charge and a
// later query misses the exact elapsed time by strictly less than one
// DeltaT in either direction (the error is frac(charge) - frac(query),
// which telescopes — it does not accumulate across charges). At every
// instant, exactPenalty / e^(lambda*DeltaT) <= wheelPenalty <=
// exactPenalty * e^(lambda*DeltaT). Reuse is lifted at the first sweep
// tick at which the quantized penalty has decayed to the threshold, which
// lands within [exactReuse - DeltaT, exactReuse + DeltaT + DeltaTReuse].
type Wheel struct {
	params Params
	cfg    WheelConfig
	max    float64 // params.MaxPenalty(), precomputed

	decay   []float64 // decay[i] = e^(-lambda * i * DeltaT)
	ceiling []float64 // ceiling[k] = ReuseThreshold * e^(lambda*(k+1)*DeltaTReuse)

	lists     [][]*WheelState // ring of reuse lists keyed by dueTick % len(lists)
	states    []*WheelState   // every state minted by NewState, creation order
	enrolled  int
	lastSweep int64 // last reuse tick fully swept
}

// NewWheel builds a wheel for one router. Zero-valued cfg fields fall back
// to DefaultWheelConfig; params must already be validated.
func NewWheel(params Params, cfg WheelConfig) *Wheel {
	cfg = cfg.WithDefaults()
	w := &Wheel{params: params, cfg: cfg, max: params.MaxPenalty()}

	// After MaxHoldDown of quiet the penalty is below the reuse threshold
	// by construction, so neither table needs to reach past it.
	lambda := params.Lambda()
	dn := int(params.MaxHoldDown/cfg.DeltaT) + 2
	if dn > maxDecayTable {
		dn = maxDecayTable
	}
	if dn < 2 {
		dn = 2
	}
	w.decay = make([]float64, dn)
	for i := range w.decay {
		w.decay[i] = math.Exp(-lambda * (time.Duration(i) * cfg.DeltaT).Seconds())
	}

	nlists := int(params.MaxHoldDown/cfg.DeltaTReuse) + 2
	if nlists > cfg.MaxLists {
		nlists = cfg.MaxLists
	}
	if nlists < 3 {
		nlists = 3
	}
	w.lists = make([][]*WheelState, nlists)
	w.ceiling = make([]float64, nlists-1)
	for k := range w.ceiling {
		w.ceiling[k] = params.ReuseThreshold * math.Exp(lambda*(time.Duration(k+1)*cfg.DeltaTReuse).Seconds())
	}
	return w
}

// Params returns the damping parameters the wheel was built with.
func (w *Wheel) Params() Params { return w.params }

// Config returns the wheel geometry.
func (w *Wheel) Config() WheelConfig { return w.cfg }

// Enrolled returns how many streams currently sit in reuse lists. The
// owning router keeps its sweep timer armed exactly while this is nonzero.
func (w *Wheel) Enrolled() int { return w.enrolled }

// NewState mints a fresh stream state owned by this wheel. key is an
// opaque caller identifier handed back by Sweep's lift callback.
func (w *Wheel) NewState(key uint64) *WheelState {
	s := &WheelState{w: w, key: key, dueTick: -1}
	w.states = append(w.states, s)
	return s
}

// NumLists returns the number of reuse list buckets the wheel actually
// built: min(MaxHoldDown/DeltaTReuse + 2, MaxLists), at least 3. One full
// ring revolution spans NumLists * DeltaTReuse of virtual time.
func (w *Wheel) NumLists() int { return len(w.lists) }

// NextSweepAt returns the first sweep instant strictly after now: the next
// DeltaTReuse boundary.
func (w *Wheel) NextSweepAt(now time.Duration) time.Duration {
	return time.Duration(w.reuseTick(now)+1) * w.cfg.DeltaTReuse
}

// Sweep drains every reuse list due at or before now. Streams whose
// quantized penalty has decayed to the reuse threshold are unsuppressed
// and reported through lift (in reverse enrollment order per bucket);
// streams parked short of their real reuse instant re-enroll further out.
func (w *Wheel) Sweep(now time.Duration, lift func(key uint64)) {
	cur := w.reuseTick(now)
	n := int64(len(w.lists))
	for t := w.lastSweep + 1; t <= cur; t++ {
		w.lastSweep = t
		at := time.Duration(t) * w.cfg.DeltaTReuse
		idx := t % n
		for len(w.lists[idx]) > 0 {
			list := w.lists[idx]
			s := list[len(list)-1]
			w.remove(s)
			s.materialize(at)
			if s.penalty <= w.params.ReuseThreshold*(1+reuseTolerance) {
				s.suppressed = false
				if lift != nil {
					lift(s.key)
				}
			} else {
				w.enroll(s, at)
			}
		}
	}
}

// Clone deep-copies the wheel and every state it has minted, returning a
// map from old state pointers to their clones so the caller can rebind
// RIB entries. List membership and ordering are preserved exactly, which
// keeps forked networks byte-identical to their originals.
func (w *Wheel) Clone() (*Wheel, map[*WheelState]*WheelState) {
	c := &Wheel{
		params:    w.params,
		cfg:       w.cfg,
		max:       w.max,
		decay:     w.decay,   // immutable after construction
		ceiling:   w.ceiling, // immutable after construction
		lists:     make([][]*WheelState, len(w.lists)),
		states:    make([]*WheelState, 0, len(w.states)),
		enrolled:  w.enrolled,
		lastSweep: w.lastSweep,
	}
	m := make(map[*WheelState]*WheelState, len(w.states))
	for _, s := range w.states {
		cs := *s
		cs.w = c
		c.states = append(c.states, &cs)
		m[s] = &cs
	}
	for i, list := range w.lists {
		if len(list) == 0 {
			continue
		}
		nl := make([]*WheelState, len(list))
		for j, s := range list {
			nl[j] = m[s]
		}
		c.lists[i] = nl
	}
	return c, m
}

// Reset discards every state the wheel has minted and empties all reuse
// lists. Used when a router crashes and drops its RIB wholesale; states
// still referenced elsewhere become inert (reset, detached).
func (w *Wheel) Reset() {
	for _, s := range w.states {
		s.penalty = 0
		s.lastTick = 0
		s.dueTick = -1
		s.listPos = 0
		s.suppressed = false
	}
	w.states = w.states[:0]
	for i := range w.lists {
		w.lists[i] = w.lists[i][:0]
	}
	w.enrolled = 0
}

func (w *Wheel) tick(t time.Duration) int64      { return int64(t / w.cfg.DeltaT) }
func (w *Wheel) reuseTick(t time.Duration) int64 { return int64(t / w.cfg.DeltaTReuse) }

// decayBy applies n decay ticks to p by table lookup, chunking when n
// exceeds the table.
func (w *Wheel) decayBy(p float64, n int64) float64 {
	if p == 0 || n <= 0 {
		return p
	}
	last := int64(len(w.decay) - 1)
	for n > last {
		p *= w.decay[last]
		n -= last
		if p < minWheelPenalty {
			return 0
		}
	}
	p *= w.decay[n]
	if p < minWheelPenalty {
		return 0
	}
	return p
}

// reuseOffset returns how many whole sweep periods (>= 1) until penalty p
// can have decayed to the reuse threshold, by binary search over the
// precomputed ceilings.
func (w *Wheel) reuseOffset(p float64) int64 {
	i := sort.SearchFloat64s(w.ceiling, p)
	if i == len(w.ceiling) {
		// Beyond the wheel horizon; park in the farthest bucket.
		return int64(len(w.ceiling))
	}
	return int64(i) + 1
}

// enroll inserts s into the reuse list due reuseOffset periods after now,
// clamped to the wheel horizon. Re-enrolling moves the state.
func (w *Wheel) enroll(s *WheelState, now time.Duration) {
	cur := w.reuseTick(now)
	if w.enrolled == 0 {
		// Empty wheel: the sweep clock restarts from here. The owning
		// router arms its sweep timer on the transition 0 -> 1.
		w.lastSweep = cur
	}
	due := cur + w.reuseOffset(s.penalty)
	if limit := w.lastSweep + int64(len(w.lists)) - 1; due > limit {
		due = limit
	}
	if due <= w.lastSweep {
		due = w.lastSweep + 1
	}
	if s.dueTick == due {
		return
	}
	if s.dueTick >= 0 {
		w.remove(s)
	}
	idx := due % int64(len(w.lists))
	s.listPos = int32(len(w.lists[idx]))
	s.dueTick = due
	w.lists[idx] = append(w.lists[idx], s)
	w.enrolled++
}

// remove detaches s from its reuse list by swap-removal.
func (w *Wheel) remove(s *WheelState) {
	idx := s.dueTick % int64(len(w.lists))
	list := w.lists[idx]
	last := len(list) - 1
	if int(s.listPos) != last {
		moved := list[last]
		list[s.listPos] = moved
		moved.listPos = s.listPos
	}
	w.lists[idx] = list[:last]
	s.dueTick = -1
	s.listPos = 0
	w.enrolled--
}

// WheelState is one stream's damping state inside a Wheel. It implements
// Engine; unlike the exact State it never calls math.Exp or math.Log after
// construction of its wheel.
type WheelState struct {
	w          *Wheel
	key        uint64
	penalty    float64
	lastTick   int64 // decay tick the penalty is materialized at
	dueTick    int64 // reuse tick this state is enrolled under, -1 if none
	listPos    int32 // index within its reuse list
	suppressed bool
}

// Params returns the damping parameters of the owning wheel.
func (s *WheelState) Params() Params { return s.w.params }

// Suppressed reports whether the route is currently suppressed.
func (s *WheelState) Suppressed() bool { return s.suppressed }

// Key returns the opaque identifier the state was minted with.
func (s *WheelState) Key() uint64 { return s.key }

// ReuseAt returns the sweep instant this state is enrolled under; ok is
// false when the state is not in any reuse list.
func (s *WheelState) ReuseAt() (time.Duration, bool) {
	if s.dueTick < 0 {
		return 0, false
	}
	return time.Duration(s.dueTick) * s.w.cfg.DeltaTReuse, true
}

// materialize decays the penalty to now's tick boundary.
func (s *WheelState) materialize(now time.Duration) {
	nt := s.w.tick(now)
	if nt <= s.lastTick {
		return
	}
	s.penalty = s.w.decayBy(s.penalty, nt-s.lastTick)
	s.lastTick = nt
}

// Penalty returns the quantized penalty at now without mutating the state.
func (s *WheelState) Penalty(now time.Duration) float64 {
	nt := s.w.tick(now)
	if nt <= s.lastTick {
		return s.penalty
	}
	return s.w.decayBy(s.penalty, nt-s.lastTick)
}

// Update feeds one classified update into the state, mirroring
// State.Update. When the stream becomes (or stays) suppressed the state
// (re-)enrolls in the wheel's reuse lists; the returned Event.ReuseIn is
// the quantized delay until its reuse bucket is swept.
func (s *WheelState) Update(now time.Duration, kind Kind, charge bool) Event {
	w := s.w
	s.materialize(now)

	ev := Event{Kind: kind}
	if charge {
		ev.Increment = w.params.Increment(kind)
	}
	s.penalty += ev.Increment
	if s.penalty > w.max {
		s.penalty = w.max
	}
	ev.Penalty = s.penalty

	if !s.suppressed && s.penalty > w.params.CutoffThreshold {
		s.suppressed = true
		ev.BecameSuppressed = true
	}
	ev.Suppressed = s.suppressed
	if s.suppressed {
		w.enroll(s, now)
		if due := time.Duration(s.dueTick) * w.cfg.DeltaTReuse; due > now {
			ev.ReuseIn = due - now
		}
	}
	return ev
}

// ReuseIn returns the quantized delay until the state's reuse bucket is
// swept, or until the penalty would reach the reuse threshold when the
// state is not enrolled. Returns zero at or below the threshold.
func (s *WheelState) ReuseIn(now time.Duration) time.Duration {
	if s.dueTick >= 0 {
		if due := time.Duration(s.dueTick) * s.w.cfg.DeltaTReuse; due > now {
			return due - now
		}
		return 0
	}
	p := s.Penalty(now)
	if p <= s.w.params.ReuseThreshold {
		return 0
	}
	return time.Duration(s.w.reuseOffset(p)) * s.w.cfg.DeltaTReuse
}

// TryReuse lifts suppression if the quantized penalty has decayed to the
// reuse threshold, detaching the state from its reuse list.
func (s *WheelState) TryReuse(now time.Duration) bool {
	if !s.suppressed {
		return true
	}
	s.materialize(now)
	if s.penalty <= s.w.params.ReuseThreshold*(1+reuseTolerance) {
		s.suppressed = false
		if s.dueTick >= 0 {
			s.w.remove(s)
		}
		return true
	}
	return false
}

// Reset clears penalty, suppression, and reuse list membership.
func (s *WheelState) Reset() {
	if s.dueTick >= 0 {
		s.w.remove(s)
	}
	s.penalty = 0
	s.lastTick = 0
	s.suppressed = false
}

// String renders a compact debug description.
func (s *WheelState) String() string {
	due := "-"
	if at, ok := s.ReuseAt(); ok {
		due = at.String()
	}
	return fmt.Sprintf("wheel{penalty=%.1f@tick%d suppressed=%t due=%s}", s.penalty, s.lastTick, s.suppressed, due)
}
