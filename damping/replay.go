package damping

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// maxLogSeconds bounds the event times ParseUpdateLog accepts: the largest
// whole second count that still fits in a time.Duration.
const maxLogSeconds = float64(math.MaxInt64 / int64(time.Second))

// TimedUpdate is one update in an offline replay: what a router received for
// one (peer, prefix) pair and when.
type TimedUpdate struct {
	// At is the receive time as an offset from the start of the replay.
	At time.Duration
	// Kind is the RFC 2439 classification of the update.
	Kind Kind
}

// ReplayPoint is the damping state right after one replayed update.
type ReplayPoint struct {
	At               time.Duration
	Kind             Kind
	Penalty          float64
	Suppressed       bool
	BecameSuppressed bool
	// ReuseAt is when the route would be reused if no further updates
	// arrived (zero when not suppressed).
	ReuseAt time.Duration
}

// ReplayResult summarizes an offline replay.
type ReplayResult struct {
	// Points holds one entry per replayed update.
	Points []ReplayPoint
	// Suppressions counts suppression onsets.
	Suppressions int
	// SuppressedTotal is the total time the route spent suppressed, through
	// the final reuse (which may lie after the last update).
	SuppressedTotal time.Duration
	// MaxPenalty is the highest post-update penalty observed.
	MaxPenalty float64
	// FinalReuseAt is when suppression finally lifted (zero if the route
	// was never suppressed).
	FinalReuseAt time.Duration
}

// Replay feeds a recorded update sequence through a fresh damping State and
// reports the resulting penalty/suppression timeline. It is the engine
// behind the rfddamp tool: operators can evaluate parameter candidates
// against a recorded flap history without touching a router.
//
// Updates must be in nondecreasing time order. Reuse events between updates
// are modelled exactly as a router's reuse timer would fire them.
func Replay(params Params, updates []TimedUpdate) (*ReplayResult, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	for i := 1; i < len(updates); i++ {
		if updates[i].At < updates[i-1].At {
			return nil, fmt.Errorf("damping: replay updates out of order at index %d", i)
		}
	}
	state := NewState(params)
	res := &ReplayResult{Points: make([]ReplayPoint, 0, len(updates))}
	var suppressedSince time.Duration
	suppressed := false
	var lastAt time.Duration
	for _, u := range updates {
		// A reuse timer may fire between updates.
		if suppressed {
			due := lastAt + state.ReuseIn(lastAt)
			if due <= u.At && state.TryReuse(due) {
				suppressed = false
				res.SuppressedTotal += due - suppressedSince
				res.FinalReuseAt = due
			}
		}
		ev := state.Update(u.At, u.Kind, true)
		lastAt = u.At
		if ev.Penalty > res.MaxPenalty {
			res.MaxPenalty = ev.Penalty
		}
		if ev.BecameSuppressed {
			res.Suppressions++
			suppressedSince = u.At
			suppressed = true
		}
		pt := ReplayPoint{
			At:               u.At,
			Kind:             u.Kind,
			Penalty:          ev.Penalty,
			Suppressed:       ev.Suppressed,
			BecameSuppressed: ev.BecameSuppressed,
		}
		if ev.Suppressed {
			pt.ReuseAt = u.At + ev.ReuseIn
		}
		res.Points = append(res.Points, pt)
	}
	if suppressed {
		due := lastAt + state.ReuseIn(lastAt)
		res.SuppressedTotal += due - suppressedSince
		res.FinalReuseAt = due
	}
	return res, nil
}

// ParseUpdateLog reads a textual update log, one update per line:
//
//	<seconds> <kind>
//
// where kind is one of "withdrawal", "announcement", "attr-change",
// "re-announcement", "initial", "duplicate" (announcement is classified
// automatically from the running route state: initial, re-announcement or
// duplicate). Blank lines and lines starting with '#' are skipped. Events
// may be listed in any order; they are sorted by time.
func ParseUpdateLog(r io.Reader) ([]TimedUpdate, error) {
	sc := bufio.NewScanner(r)
	// The default Scanner token limit is 64 KiB, which a long generated
	// comment can exceed; allow lines up to 1 MiB, like trace.ReadJSONL.
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var raw []struct {
		at   time.Duration
		word string
	}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("damping: log line %d: want \"<seconds> <kind>\", got %q", line, text)
		}
		// Reject NaN (every comparison with it is false, so it would slip
		// through a plain range check) and times too large to represent as a
		// time.Duration.
		secs, err := strconv.ParseFloat(fields[0], 64)
		if err != nil || math.IsNaN(secs) || secs < 0 || secs > maxLogSeconds {
			return nil, fmt.Errorf("damping: log line %d: bad time %q", line, fields[0])
		}
		raw = append(raw, struct {
			at   time.Duration
			word string
		}{time.Duration(secs * float64(time.Second)), strings.ToLower(fields[1])})
	}
	if err := sc.Err(); err != nil {
		// The scanner stops at the offending line (e.g. one exceeding the
		// buffer limit), which is the line after the last successful scan.
		return nil, fmt.Errorf("damping: log line %d: %w", line+1, err)
	}
	sort.SliceStable(raw, func(i, j int) bool { return raw[i].at < raw[j].at })

	// Classify generic "announcement" lines against running route state.
	updates := make([]TimedUpdate, 0, len(raw))
	present, ever := false, false
	for i, r := range raw {
		var kind Kind
		switch r.word {
		case "withdrawal", "withdraw", "w":
			kind = Classify(true, present, ever, false)
			present = false
		case "announcement", "announce", "a":
			kind = Classify(false, present, ever, false)
			present, ever = true, true
		case "attr-change", "attrchange", "c":
			kind = KindAttrChange
			present, ever = true, true
		case "re-announcement", "reannouncement":
			kind = KindReannouncement
			present, ever = true, true
		case "initial":
			kind = KindInitial
			present, ever = true, true
		case "duplicate":
			kind = KindDuplicate
		default:
			return nil, fmt.Errorf("damping: update %d: unknown kind %q", i+1, r.word)
		}
		updates = append(updates, TimedUpdate{At: r.at, Kind: kind})
	}
	return updates, nil
}
