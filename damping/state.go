package damping

import (
	"fmt"
	"time"
)

// Event describes the outcome of feeding one update into a State.
type Event struct {
	// Kind is the update classification that was applied.
	Kind Kind
	// Increment is the penalty that was added (0 for initial/duplicate, or
	// when a penalty filter such as RCN vetoed the charge).
	Increment float64
	// Penalty is the post-update penalty value.
	Penalty float64
	// Suppressed reports whether the route is suppressed after the update.
	Suppressed bool
	// BecameSuppressed reports whether this very update pushed the penalty
	// over the cut-off threshold.
	BecameSuppressed bool
	// ReuseIn is how long from now until the penalty decays to the reuse
	// threshold (0 when not suppressed).
	ReuseIn time.Duration
}

// State is the damping state of one (peer, prefix) pair: the figure of merit
// (penalty), its timestamp, and the suppression flag. Create with NewState.
// State is not safe for concurrent use; in the simulator each router owns its
// states, and a real BGP daemon would shard by peer.
type State struct {
	params     Params
	penalty    float64
	at         time.Duration // instant penalty was last materialized
	suppressed bool
}

// NewState returns a fresh state (zero penalty, not suppressed) governed by
// params. Params are copied; changing the caller's copy later has no effect.
func NewState(params Params) *State {
	return &State{params: params}
}

// Params returns the configuration the state was built with.
func (s *State) Params() Params { return s.params }

// Suppressed reports whether the route is currently suppressed.
func (s *State) Suppressed() bool { return s.suppressed }

// Penalty returns the decayed penalty value at the given instant. now must
// not be earlier than the last update fed into the state; earlier values are
// clamped (the penalty is simply not decayed).
func (s *State) Penalty(now time.Duration) float64 {
	return s.params.Decay(s.penalty, now-s.at)
}

// materialize folds decay up to now into the stored penalty.
func (s *State) materialize(now time.Duration) {
	if now > s.at {
		s.penalty = s.params.Decay(s.penalty, now-s.at)
		s.at = now
	}
}

// Update feeds one classified update into the state at virtual time now and
// returns the resulting Event. The increment may be vetoed by passing
// charge=false (used by RCN-enhanced damping when the update's root cause has
// been seen before — the update still flows to the routing decision, it just
// does not add penalty; Section 6.2 of the paper).
func (s *State) Update(now time.Duration, kind Kind, charge bool) Event {
	s.materialize(now)
	inc := 0.0
	if charge {
		inc = s.params.Increment(kind)
	}
	s.penalty += inc
	if max := s.params.MaxPenalty(); s.penalty > max {
		s.penalty = max
	}
	became := false
	if !s.suppressed && s.penalty > s.params.CutoffThreshold {
		s.suppressed = true
		became = true
	}
	ev := Event{
		Kind:             kind,
		Increment:        inc,
		Penalty:          s.penalty,
		Suppressed:       s.suppressed,
		BecameSuppressed: became,
	}
	if s.suppressed {
		ev.ReuseIn = s.params.ReuseDelay(s.penalty)
	}
	return ev
}

// ReuseIn returns how long from now until the penalty decays to the reuse
// threshold. Zero when the penalty is already at or below it.
func (s *State) ReuseIn(now time.Duration) time.Duration {
	return s.params.ReuseDelay(s.Penalty(now))
}

// TryReuse attempts to lift suppression at virtual time now. It succeeds
// (and reports true) when the decayed penalty has reached the reuse
// threshold. When it reports false the route stays suppressed — the caller's
// reuse timer fired stale (e.g. the penalty was re-charged after the timer
// was set) and should be re-armed for ReuseIn(now).
func (s *State) TryReuse(now time.Duration) bool {
	if !s.suppressed {
		return true
	}
	s.materialize(now)
	// Tolerate the sub-nanosecond rounding of ReuseDelay: a timer armed for
	// exactly the reuse instant must succeed.
	if s.penalty <= s.params.ReuseThreshold*(1+1e-9) {
		s.suppressed = false
		return true
	}
	return false
}

// Clone returns an independent copy of the state: same params, penalty,
// timestamp and suppression flag, sharing nothing with the original. Used by
// the simulator's network fork to give each fork its own damping evolution.
func (s *State) Clone() *State {
	c := *s
	return &c
}

// Reset clears penalty and suppression. Real routers do this when a peer
// session is cleared; experiments use it between scenario phases.
func (s *State) Reset() {
	s.penalty = 0
	s.at = 0
	s.suppressed = false
}

// String summarizes the state for diagnostics.
func (s *State) String() string {
	return fmt.Sprintf("damping.State{penalty: %.1f @ %v, suppressed: %t}",
		s.penalty, s.at, s.suppressed)
}
