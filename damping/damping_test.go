package damping

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

// TestCiscoPreset pins Table 1 of the paper (Cisco column).
func TestCiscoPreset(t *testing.T) {
	p := Cisco()
	if p.WithdrawalPenalty != 1000 {
		t.Errorf("P_W = %v, want 1000", p.WithdrawalPenalty)
	}
	if p.ReannouncementPenalty != 0 {
		t.Errorf("P_A = %v, want 0", p.ReannouncementPenalty)
	}
	if p.AttrChangePenalty != 500 {
		t.Errorf("attr change = %v, want 500", p.AttrChangePenalty)
	}
	if p.CutoffThreshold != 2000 {
		t.Errorf("P_cut = %v, want 2000", p.CutoffThreshold)
	}
	if p.ReuseThreshold != 750 {
		t.Errorf("P_reuse = %v, want 750", p.ReuseThreshold)
	}
	if p.HalfLife != 15*time.Minute {
		t.Errorf("H = %v, want 15m", p.HalfLife)
	}
	if p.MaxHoldDown != 60*time.Minute {
		t.Errorf("max hold-down = %v, want 60m", p.MaxHoldDown)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestJuniperPreset pins Table 1 of the paper (Juniper column).
func TestJuniperPreset(t *testing.T) {
	p := Juniper()
	if p.WithdrawalPenalty != 1000 || p.ReannouncementPenalty != 1000 ||
		p.AttrChangePenalty != 500 || p.CutoffThreshold != 3000 ||
		p.ReuseThreshold != 750 || p.HalfLife != 15*time.Minute ||
		p.MaxHoldDown != 60*time.Minute {
		t.Fatalf("Juniper preset deviates from Table 1: %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	base := Cisco()
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"negative withdrawal penalty", func(p *Params) { p.WithdrawalPenalty = -1 }},
		{"negative reannouncement penalty", func(p *Params) { p.ReannouncementPenalty = -1 }},
		{"negative attr penalty", func(p *Params) { p.AttrChangePenalty = -1 }},
		{"zero reuse threshold", func(p *Params) { p.ReuseThreshold = 0 }},
		{"cutoff below reuse", func(p *Params) { p.CutoffThreshold = 500 }},
		{"cutoff equals reuse", func(p *Params) { p.CutoffThreshold = p.ReuseThreshold }},
		{"zero half life", func(p *Params) { p.HalfLife = 0 }},
		{"zero hold down", func(p *Params) { p.MaxHoldDown = 0 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := base
			c.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Fatalf("%+v accepted", p)
			}
		})
	}
}

func TestLambdaMatchesHalfLife(t *testing.T) {
	p := Cisco()
	// After exactly one half-life the penalty must halve.
	got := p.Decay(1000, p.HalfLife)
	if math.Abs(got-500) > 1e-6 {
		t.Fatalf("decay over one half-life: %v, want 500", got)
	}
	// λ = ln2/H with H = 900 s.
	if want := math.Ln2 / 900; math.Abs(p.Lambda()-want) > 1e-12 {
		t.Fatalf("lambda = %v, want %v", p.Lambda(), want)
	}
}

func TestDecayEdgeCases(t *testing.T) {
	p := Cisco()
	if got := p.Decay(1000, 0); got != 1000 {
		t.Fatalf("zero elapsed changed penalty: %v", got)
	}
	if got := p.Decay(1000, -time.Second); got != 1000 {
		t.Fatalf("negative elapsed changed penalty: %v", got)
	}
	if got := p.Decay(0, time.Hour); got != 0 {
		t.Fatalf("zero penalty decayed to %v", got)
	}
	if got := p.Decay(-5, time.Hour); got != 0 {
		t.Fatalf("negative penalty returned %v, want 0", got)
	}
}

// TestMaxPenaltyIs12000 pins the Section 5.2 observation: a one-hour
// suppression corresponds to a penalty of 12000 under Cisco defaults, which
// is exactly the ceiling implied by the max hold-down time.
func TestMaxPenaltyIs12000(t *testing.T) {
	p := Cisco()
	if got := p.MaxPenalty(); math.Abs(got-12000) > 1e-6 {
		t.Fatalf("MaxPenalty = %v, want 12000", got)
	}
}

func TestReuseDelayFormula(t *testing.T) {
	p := Cisco()
	// From the paper (Section 3): with Cisco defaults, r for a penalty just
	// over the cutoff (2000) is ln(2000/750)/λ ≈ 21.2 minutes — "at least 20
	// minutes".
	r := p.ReuseDelay(2000)
	if r < 20*time.Minute || r > 22*time.Minute {
		t.Fatalf("ReuseDelay(2000) = %v, want ≈21.2m", r)
	}
	// Already below threshold: no delay.
	if p.ReuseDelay(750) != 0 {
		t.Fatal("ReuseDelay at threshold should be 0")
	}
	if p.ReuseDelay(100) != 0 {
		t.Fatal("ReuseDelay below threshold should be 0")
	}
	// Ceiling: the maximum penalty must produce exactly the max hold-down.
	if got := p.ReuseDelay(p.MaxPenalty()); got != p.MaxHoldDown {
		t.Fatalf("ReuseDelay(max) = %v, want %v", got, p.MaxHoldDown)
	}
	// Beyond the ceiling still capped.
	if got := p.ReuseDelay(1e9); got != p.MaxHoldDown {
		t.Fatalf("ReuseDelay(huge) = %v, want cap %v", got, p.MaxHoldDown)
	}
}

// TestReuseDelayInverseOfDecay checks the property r(p) satisfies
// Decay(p, r(p)) == Preuse for penalties between reuse and ceiling.
func TestReuseDelayInverseOfDecay(t *testing.T) {
	p := Cisco()
	f := func(raw uint16) bool {
		pen := p.ReuseThreshold + math.Mod(float64(raw), p.MaxPenalty()-p.ReuseThreshold)
		r := p.ReuseDelay(pen)
		got := p.Decay(pen, r)
		return math.Abs(got-p.ReuseThreshold) < 1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementTable(t *testing.T) {
	p := Cisco()
	cases := []struct {
		kind Kind
		want float64
	}{
		{KindInitial, 0},
		{KindWithdrawal, 1000},
		{KindReannouncement, 0},
		{KindAttrChange, 500},
		{KindDuplicate, 0},
		{Kind(0), 0},
		{Kind(99), 0},
	}
	for _, c := range cases {
		if got := p.Increment(c.kind); got != c.want {
			t.Errorf("Increment(%v) = %v, want %v", c.kind, got, c.want)
		}
	}
	// Juniper charges re-announcements.
	if got := Juniper().Increment(KindReannouncement); got != 1000 {
		t.Errorf("Juniper re-announcement = %v, want 1000", got)
	}
}

func TestKindString(t *testing.T) {
	for kind, want := range map[Kind]string{
		KindInitial:        "initial",
		KindWithdrawal:     "withdrawal",
		KindReannouncement: "re-announcement",
		KindAttrChange:     "attribute-change",
		KindDuplicate:      "duplicate",
	} {
		if kind.String() != want {
			t.Errorf("%d.String() = %q, want %q", kind, kind.String(), want)
		}
	}
	if Kind(42).String() != "Kind(42)" {
		t.Errorf("unknown kind String = %q", Kind(42).String())
	}
}

func TestClassifyTable(t *testing.T) {
	cases := []struct {
		name                                          string
		isWithdrawal, routePresent, everPresent, diff bool
		want                                          Kind
	}{
		{"withdraw present route", true, true, true, false, KindWithdrawal},
		{"withdraw absent route", true, false, true, false, KindDuplicate},
		{"withdraw never-present route", true, false, false, false, KindDuplicate},
		{"first announcement", false, false, false, false, KindInitial},
		{"re-announcement", false, false, true, false, KindReannouncement},
		{"attr change", false, true, true, true, KindAttrChange},
		{"duplicate announcement", false, true, true, false, KindDuplicate},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := Classify(c.isWithdrawal, c.routePresent, c.everPresent, c.diff)
			if got != c.want {
				t.Fatalf("Classify = %v, want %v", got, c.want)
			}
		})
	}
}
