package damping

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"
)

// logWord renders a Kind in the word set ParseUpdateLog accepts literally.
// Kind.String() is close but not identical: KindAttrChange prints
// "attribute-change" while the parser wants "attr-change".
func logWord(k Kind) string {
	if k == KindAttrChange {
		return "attr-change"
	}
	return k.String()
}

// FuzzParseUpdateLog checks that every accepted update log survives a
// render/reparse round trip: resolved kinds re-enter the stateful classifier
// and come out identical, and times re-read to within Duration<->decimal
// conversion noise. Everything else must fail gracefully (error, not panic).
func FuzzParseUpdateLog(f *testing.F) {
	f.Add("0 a\n60 w\n120 a\n180 w\n")
	f.Add("10.5 withdrawal\n20 re-announcement\n30 attr-change\n40 duplicate\n0 initial\n")
	f.Add("# comment\n\n1e3 announce\n2.5e2 withdraw\n")
	f.Fuzz(func(t *testing.T, input string) {
		ups, err := ParseUpdateLog(strings.NewReader(input))
		if err != nil {
			return
		}
		var sb strings.Builder
		for _, u := range ups {
			if u.At > 1<<51 {
				// Beyond ~26 virtual days of nanoseconds the decimal-seconds
				// representation can perturb times enough to reorder the
				// (sorted) log; the round trip is only meaningful below.
				t.Skip("time too large for exact decimal round trip")
			}
			// Exact decimal rendering of the integer-nanosecond Duration.
			fmt.Fprintf(&sb, "%d.%09d %s\n", u.At/time.Second, u.At%time.Second, logWord(u.Kind))
		}
		ups2, err := ParseUpdateLog(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("rendered log rejected: %v\nrendered:\n%s", err, sb.String())
		}
		if len(ups2) != len(ups) {
			t.Fatalf("round trip changed the length: got %d, want %d", len(ups2), len(ups))
		}
		for i := range ups {
			if ups2[i].Kind != ups[i].Kind {
				t.Fatalf("update %d kind changed: got %v, want %v (rendered:\n%s)",
					i, ups2[i].Kind, ups[i].Kind, sb.String())
			}
			if d := ups2[i].At - ups[i].At; d < -2 || d > 2 {
				t.Fatalf("update %d time drifted %v: got %v, want %v", i, d, ups2[i].At, ups[i].At)
			}
		}
	})
}

// FuzzWheelMatchesExact is the differential harness for the timer-wheel
// backend: it decodes the fuzz input into an update schedule, drives an
// exact State and a WheelState through it in lockstep (sweeping the wheel
// at every DeltaTReuse boundary, as the router does), and asserts the
// wheel's documented quantization bounds:
//
//   - penalty stays within [exact/e^(lambda*DeltaT), exact*e^(lambda*DeltaT)]
//     at every update instant;
//   - suppression onsets diverge only while the exact penalty sits within
//     one decay tick of the cutoff threshold;
//   - the wheel lifts reuse within [exact - DeltaT, exact + DeltaT +
//     DeltaTReuse] of the exact reuse instant.
//
// After the first reuse lift (or a legitimate borderline onset divergence)
// the two suppression histories genuinely fork — a re-charge in the lag
// window merges suppression periods on one side only — so from there the
// harness keeps asserting the penalty band, which holds unconditionally,
// and stops asserting flag parity.
func FuzzWheelMatchesExact(f *testing.F) {
	f.Add([]byte{0, 0, 4, 0, 0, 4, 1, 0, 4, 2, 0, 4, 0})                  // rapid flaps, Cisco, default wheel
	f.Add([]byte{3, 0, 2, 0, 0, 2, 1, 0, 2, 0, 255, 255, 3, 0, 2, 0})     // Juniper, tiny ring, long gap
	f.Add([]byte{4, 0, 100, 0, 0, 100, 1, 0, 100, 2, 40, 0, 3, 0, 80, 0}) // coarse ticks, mixed kinds
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			t.Skip("input too short for a header and one step")
		}
		params := Cisco()
		if data[0]&1 != 0 {
			params = Juniper()
		}
		var cfg WheelConfig
		switch (data[0] >> 1) & 3 {
		case 0:
			cfg = DefaultWheelConfig()
		case 1:
			cfg = WheelConfig{DeltaT: time.Second, DeltaTReuse: 5 * time.Second, MaxLists: 8}
		case 2:
			cfg = WheelConfig{DeltaT: 2 * time.Second, DeltaTReuse: 10 * time.Second, MaxLists: 64}
		default:
			cfg = WheelConfig{DeltaT: 500 * time.Millisecond, DeltaTReuse: 2 * time.Second, MaxLists: 256}
		}
		factor := math.Exp(params.Lambda() * cfg.DeltaT.Seconds())
		kinds := []Kind{KindWithdrawal, KindReannouncement, KindAttrChange, KindDuplicate}

		w := NewWheel(params, cfg)
		ws := w.NewState(1)
		ex := NewState(params)
		now := time.Duration(0)
		flagsSynced := true // suppression histories still comparable
		var exactReuse time.Duration
		liftBound := func(sw time.Duration) {
			if sw < exactReuse-cfg.DeltaT-time.Millisecond ||
				sw > exactReuse+cfg.DeltaT+cfg.DeltaTReuse+time.Millisecond {
				t.Fatalf("wheel lifted at %v, exact reuse instant %v (allowed [-%v, +%v])",
					sw, exactReuse, cfg.DeltaT, cfg.DeltaT+cfg.DeltaTReuse)
			}
		}

		steps := 0
		for i := 1; i+2 < len(data) && steps < 256; i, steps = i+3, steps+1 {
			dt := time.Duration(uint32(data[i])<<8|uint32(data[i+1]))*8*time.Millisecond + time.Millisecond
			next := now + dt
			// Sweep every boundary in (now, next], watching for lifts.
			for w.Enrolled() > 0 {
				sw := w.NextSweepAt(now)
				if sw > next {
					break
				}
				lifted := false
				w.Sweep(sw, func(uint64) { lifted = true })
				now = sw
				if lifted && flagsSynced {
					liftBound(sw)
					flagsSynced = false
				}
			}
			now = next
			kind := kinds[int(data[i+2])%len(kinds)]
			we := ws.Update(now, kind, true)
			ee := ex.Update(now, kind, true)
			if we.Penalty < ee.Penalty/factor*(1-1e-9)-1e-9 ||
				we.Penalty > ee.Penalty*factor*(1+1e-9)+1e-9 {
				t.Fatalf("step %d at %v: wheel penalty %.9g outside [%.9g, %.9g]",
					steps, now, we.Penalty, ee.Penalty/factor, ee.Penalty*factor)
			}
			if flagsSynced {
				if ws.Suppressed() != ex.Suppressed() {
					lo := params.CutoffThreshold / factor * (1 - 1e-9)
					hi := params.CutoffThreshold * factor * (1 + 1e-9)
					if ee.Penalty < lo || ee.Penalty > hi {
						t.Fatalf("step %d at %v: suppression diverged (wheel=%t exact=%t) with exact penalty %.9g outside borderline band [%.9g, %.9g]",
							steps, now, ws.Suppressed(), ex.Suppressed(), ee.Penalty, lo, hi)
					}
					flagsSynced = false
				} else if ex.Suppressed() {
					exactReuse = now + ex.ReuseIn(now)
				}
			}
		}
		// Drain: a stream suppressed on both sides must lift within the bound.
		if flagsSynced && ws.Suppressed() {
			for ws.Suppressed() {
				now = w.NextSweepAt(now)
				w.Sweep(now, func(uint64) {})
				if now > exactReuse+time.Hour {
					t.Fatal("wheel never lifted a suppressed stream")
				}
			}
			liftBound(now)
		}
	})
}
