package damping

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// logWord renders a Kind in the word set ParseUpdateLog accepts literally.
// Kind.String() is close but not identical: KindAttrChange prints
// "attribute-change" while the parser wants "attr-change".
func logWord(k Kind) string {
	if k == KindAttrChange {
		return "attr-change"
	}
	return k.String()
}

// FuzzParseUpdateLog checks that every accepted update log survives a
// render/reparse round trip: resolved kinds re-enter the stateful classifier
// and come out identical, and times re-read to within Duration<->decimal
// conversion noise. Everything else must fail gracefully (error, not panic).
func FuzzParseUpdateLog(f *testing.F) {
	f.Add("0 a\n60 w\n120 a\n180 w\n")
	f.Add("10.5 withdrawal\n20 re-announcement\n30 attr-change\n40 duplicate\n0 initial\n")
	f.Add("# comment\n\n1e3 announce\n2.5e2 withdraw\n")
	f.Fuzz(func(t *testing.T, input string) {
		ups, err := ParseUpdateLog(strings.NewReader(input))
		if err != nil {
			return
		}
		var sb strings.Builder
		for _, u := range ups {
			if u.At > 1<<51 {
				// Beyond ~26 virtual days of nanoseconds the decimal-seconds
				// representation can perturb times enough to reorder the
				// (sorted) log; the round trip is only meaningful below.
				t.Skip("time too large for exact decimal round trip")
			}
			// Exact decimal rendering of the integer-nanosecond Duration.
			fmt.Fprintf(&sb, "%d.%09d %s\n", u.At/time.Second, u.At%time.Second, logWord(u.Kind))
		}
		ups2, err := ParseUpdateLog(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("rendered log rejected: %v\nrendered:\n%s", err, sb.String())
		}
		if len(ups2) != len(ups) {
			t.Fatalf("round trip changed the length: got %d, want %d", len(ups2), len(ups))
		}
		for i := range ups {
			if ups2[i].Kind != ups[i].Kind {
				t.Fatalf("update %d kind changed: got %v, want %v (rendered:\n%s)",
					i, ups2[i].Kind, ups[i].Kind, sb.String())
			}
			if d := ups2[i].At - ups[i].At; d < -2 || d > 2 {
				t.Fatalf("update %d time drifted %v: got %v, want %v", i, d, ups2[i].At, ups[i].At)
			}
		}
	})
}
