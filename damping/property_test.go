package damping

import (
	"testing"
	"testing/quick"
	"time"
)

// applyBurst drives a fresh state with n withdrawal/announce cycles at the
// given spacing and returns the event index of suppression onset (0 if
// never).
func suppressionEventIndex(params Params, cycles int, spacing time.Duration) int {
	st := NewState(params)
	now := time.Duration(0)
	for i := 0; i < cycles; i++ {
		if ev := st.Update(now, KindWithdrawal, true); ev.BecameSuppressed {
			return 2*i + 1
		}
		now += spacing
		if ev := st.Update(now, KindReannouncement, true); ev.BecameSuppressed {
			return 2*i + 2
		}
		now += spacing
	}
	return 0
}

// TestQuickHigherCutoffNeverSuppressesEarlier: raising the cut-off can only
// delay (or prevent) suppression, never hasten it.
func TestQuickHigherCutoffMonotone(t *testing.T) {
	f := func(extraRaw uint8, spacingRaw uint8) bool {
		spacing := time.Duration(int(spacingRaw)+1) * time.Second
		base := Cisco()
		raised := base
		raised.CutoffThreshold += float64(extraRaw) * 10
		a := suppressionEventIndex(base, 8, spacing)
		b := suppressionEventIndex(raised, 8, spacing)
		switch {
		case a == 0:
			return b == 0 // base never suppressed ⇒ raised cannot either
		case b == 0:
			return true // raised never suppressed: fine
		default:
			return b >= a
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLongerHalfLifeLongerReuse: a slower decay can only lengthen the
// reuse delay for the same penalty.
func TestQuickLongerHalfLifeLongerReuse(t *testing.T) {
	f := func(penRaw uint16, extraMinutes uint8) bool {
		base := Cisco()
		slow := base
		slow.HalfLife += time.Duration(extraMinutes) * time.Minute
		pen := 800 + float64(penRaw%10000)
		return slow.ReuseDelay(pen) >= base.ReuseDelay(pen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDecayMonotoneInTime: penalty never increases while decaying.
func TestQuickDecayMonotone(t *testing.T) {
	p := Cisco()
	f := func(penRaw uint16, aRaw, bRaw uint16) bool {
		pen := float64(penRaw)
		a := time.Duration(aRaw) * time.Second
		b := a + time.Duration(bRaw)*time.Second
		return p.Decay(pen, b) <= p.Decay(pen, a)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSuppressionRequiresCutoff: a state whose penalty never reached
// the cut-off is never suppressed, across random update mixes.
func TestQuickSuppressionRequiresCutoff(t *testing.T) {
	params := Cisco()
	f := func(kinds []uint8) bool {
		st := NewState(params)
		now := time.Duration(0)
		maxPen := 0.0
		for _, kRaw := range kinds {
			now += time.Second
			ev := st.Update(now, Kind(int(kRaw)%5)+1, true)
			if ev.Penalty > maxPen {
				maxPen = ev.Penalty
			}
		}
		if maxPen <= params.CutoffThreshold {
			return !st.Suppressed()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestVendorOrdering: for an identical pulse burst, Juniper (which charges
// announcements) accumulates at least Cisco's penalty.
func TestVendorPenaltyOrdering(t *testing.T) {
	cisco := NewState(Cisco())
	juniper := NewState(Juniper())
	now := time.Duration(0)
	for i := 0; i < 6; i++ {
		kind := KindWithdrawal
		if i%2 == 1 {
			kind = KindReannouncement
		}
		cp := cisco.Update(now, kind, true).Penalty
		jp := juniper.Update(now, kind, true).Penalty
		if jp < cp {
			t.Fatalf("event %d: Juniper penalty %v < Cisco %v", i, jp, cp)
		}
		now += 30 * time.Second
	}
}
