package damping

import (
	"strings"
	"testing"
)

// TestParseUpdateLogLongCommentLine: a comment longer than bufio.Scanner's
// default 64 KiB token limit used to abort the parse with "token too long".
func TestParseUpdateLogLongCommentLine(t *testing.T) {
	input := "# " + strings.Repeat("x", 80*1024) + "\n10 withdrawal\n"
	ups, err := ParseUpdateLog(strings.NewReader(input))
	if err != nil {
		t.Fatalf("long comment line rejected: %v", err)
	}
	if len(ups) != 1 {
		t.Fatalf("got %d updates, want 1", len(ups))
	}
}

// TestParseUpdateLogOverlongLine: a line beyond the 1 MiB hard cap must fail
// with an error naming the offending line.
func TestParseUpdateLogOverlongLine(t *testing.T) {
	input := "10 withdrawal\n# " + strings.Repeat("x", 2<<20) + "\n"
	_, err := ParseUpdateLog(strings.NewReader(input))
	if err == nil {
		t.Fatal("oversized line accepted")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error does not name the offending line: %v", err)
	}
}

// TestParseUpdateLogRejectsNaNAndHugeTimes: NaN passes every plain range
// check (all comparisons with it are false) and used to become a garbage
// time.Duration; times beyond the Duration range silently overflowed.
func TestParseUpdateLogRejectsNaNAndHugeTimes(t *testing.T) {
	for _, bad := range []string{"nan", "NaN", "-nan", "1e300", "inf"} {
		_, err := ParseUpdateLog(strings.NewReader(bad + " w\n"))
		if err == nil {
			t.Errorf("time %q accepted", bad)
		}
	}
}
