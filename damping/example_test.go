package damping_test

import (
	"fmt"
	"time"

	"rfd/damping"
)

// Example walks one (peer, prefix) damping state through the paper's
// three-pulse workload: the third withdrawal pushes the penalty over the
// Cisco cut-off and suppresses the route for roughly 26 minutes.
func Example() {
	st := damping.NewState(damping.Cisco())
	sec := func(s int) time.Duration { return time.Duration(s) * time.Second }

	events := []struct {
		at   time.Duration
		kind damping.Kind
	}{
		{sec(0), damping.KindWithdrawal},
		{sec(60), damping.KindReannouncement},
		{sec(120), damping.KindWithdrawal},
		{sec(180), damping.KindReannouncement},
		{sec(240), damping.KindWithdrawal},
	}
	for _, e := range events {
		ev := st.Update(e.at, e.kind, true)
		fmt.Printf("%4.0fs %-16s penalty %4.0f suppressed=%t\n",
			e.at.Seconds(), ev.Kind, ev.Penalty, ev.Suppressed)
	}
	// Output:
	//    0s withdrawal       penalty 1000 suppressed=false
	//   60s re-announcement  penalty  955 suppressed=false
	//  120s withdrawal       penalty 1912 suppressed=false
	//  180s re-announcement  penalty 1825 suppressed=false
	//  240s withdrawal       penalty 2743 suppressed=true
}

// ExampleParams_ReuseDelay shows the Section 3 reuse delay: a freshly
// suppressed route (penalty just over the cut-off) stays down for about 21
// minutes under Cisco defaults.
func ExampleParams_ReuseDelay() {
	p := damping.Cisco()
	fmt.Println(p.ReuseDelay(2000).Round(time.Minute))
	fmt.Println(p.ReuseDelay(p.MaxPenalty()))
	// Output:
	// 21m0s
	// 1h0m0s
}

// ExampleReplay evaluates damping parameters offline against a recorded
// flap history.
func ExampleReplay() {
	updates := []damping.TimedUpdate{
		{At: 0, Kind: damping.KindWithdrawal},
		{At: 30 * time.Second, Kind: damping.KindReannouncement},
		{At: 60 * time.Second, Kind: damping.KindWithdrawal},
		{At: 90 * time.Second, Kind: damping.KindReannouncement},
		{At: 120 * time.Second, Kind: damping.KindWithdrawal},
	}
	res, _ := damping.Replay(damping.Cisco(), updates)
	fmt.Printf("suppressions: %d, max penalty: %.0f\n", res.Suppressions, res.MaxPenalty)
	// Output:
	// suppressions: 1, max penalty: 2867
}
