package damping

import (
	"fmt"
	"testing"
	"time"

	"rfd/sim"
)

// BenchmarkDampingEngines compares the two damping backends on the workload
// the timer-wheel engine exists for: a router holding 10^5..10^6 damped
// prefixes. Both backends are driven through a real sim.Kernel exactly as
// bgp.Router drives them, because the timer machinery is the point of the
// comparison: the exact engine pays a math.Exp materialization plus a
// per-prefix reuse-timer cancel+re-arm (two indexed-heap operations) on
// every suppressed update and one timer pop per release, while the wheel
// pays a quantized table lookup plus an O(1) reuse-list enrollment, with a
// single periodic sweep handler per router. Results are recorded in
// BENCH_damping.json.
//
//	update/* — per-update cost with every stream suppressed (the flap
//	           storm steady state), timer bookkeeping included.
//	sweep/*  — cost of releasing all n streams once their penalties decay:
//	           exact drains n per-prefix timer firings, the wheel drains
//	           its bucketed reuse lists in DeltaTReuse batches, including
//	           every horizon re-enrollment along the way.
//
// Each update/* op is one stream-update; each sweep/* op releases all n
// streams (divide by n for the per-release cost).
func BenchmarkDampingEngines(b *testing.B) {
	for _, n := range []int{100_000, 1_000_000} {
		b.Run(fmt.Sprintf("update/exact-%d", n), func(b *testing.B) {
			benchUpdateExact(b, n)
		})
		b.Run(fmt.Sprintf("update/wheel-%d", n), func(b *testing.B) {
			benchUpdateWheel(b, n)
		})
		b.Run(fmt.Sprintf("sweep/exact-%d", n), func(b *testing.B) {
			benchSweepExact(b, n)
		})
		b.Run(fmt.Sprintf("sweep/wheel-%d", n), func(b *testing.B) {
			benchSweepWheel(b, n)
		})
	}
}

// benchEpoch is the inter-update gap in the storm steady state. Penalties
// sit near MaxPenalty, so every stream stays suppressed throughout.
const benchEpoch = 120 * time.Second

func benchKernel() *sim.Kernel {
	return sim.NewKernel(sim.WithMaxEvents(1 << 62))
}

func suppressExact(states []*State, base time.Duration) {
	for _, s := range states {
		for k := 0; k < 3; k++ {
			s.Update(base+time.Duration(k)*2*time.Second, KindWithdrawal, true)
		}
	}
}

func suppressWheel(states []*WheelState, base time.Duration) {
	for _, s := range states {
		for k := 0; k < 3; k++ {
			s.Update(base+time.Duration(k)*2*time.Second, KindWithdrawal, true)
		}
	}
}

// discardHandler absorbs timer firings whose work is measured elsewhere.
type discardHandler struct{}

func (discardHandler) HandleEvent(uint64) {}

func benchUpdateExact(b *testing.B, n int) {
	params := Cisco()
	k := benchKernel()
	var discard discardHandler
	states := make([]*State, n)
	timers := make([]sim.Timer, n)
	for i := range states {
		states[i] = NewState(params)
	}
	suppressExact(states, 0)
	now := 10 * time.Second
	for i, s := range states {
		timers[i] = k.AtHandler(now+s.ReuseIn(now), "bench.reuse", &discard, uint64(i))
	}
	kind := KindWithdrawal
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := i % n
		if idx == 0 {
			now += benchEpoch
			if kind == KindWithdrawal {
				kind = KindReannouncement
			} else {
				kind = KindWithdrawal
			}
		}
		ev := states[idx].Update(now, kind, true)
		// The per-prefix path: every suppressed update re-arms the
		// stream's own reuse timer (bgp.Router.armReuse).
		timers[idx].Cancel()
		timers[idx] = k.AtHandler(now+ev.ReuseIn, "bench.reuse", &discard, uint64(idx))
	}
}

func benchUpdateWheel(b *testing.B, n int) {
	params := Cisco()
	k := benchKernel()
	var discard discardHandler
	w := NewWheel(params, DefaultWheelConfig())
	states := make([]*WheelState, n)
	for i := range states {
		states[i] = w.NewState(uint64(i))
	}
	suppressWheel(states, 0)
	now := 10 * time.Second
	sweepTimer := k.AtHandler(w.NextSweepAt(now), "bench.sweep", &discard, 0)
	kind := KindWithdrawal
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := i % n
		if idx == 0 {
			now += benchEpoch
			if kind == KindWithdrawal {
				kind = KindReannouncement
			} else {
				kind = KindWithdrawal
			}
		}
		states[idx].Update(now, kind, true)
		// The batch path: one sweep timer per router, armed only when it
		// is not already pending (bgp.Router.armSweep).
		if !sweepTimer.Active() {
			sweepTimer = k.AtHandler(w.NextSweepAt(now), "bench.sweep", &discard, 0)
		}
	}
}

// exactReuseHandler is the per-prefix reuse-timer callback: one firing per
// stream, lifting suppression at its precomputed reuse instant.
type exactReuseHandler struct {
	k      *sim.Kernel
	states []*State
	lifted int
}

func (h *exactReuseHandler) HandleEvent(arg uint64) {
	if h.states[arg].TryReuse(h.k.Now()) {
		h.lifted++
	}
}

func benchSweepExact(b *testing.B, n int) {
	params := Cisco()
	k := benchKernel()
	states := make([]*State, n)
	for i := range states {
		states[i] = NewState(params)
	}
	h := &exactReuseHandler{k: k, states: states}
	base := 10 * time.Second
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		suppressExact(states, base)
		at := base + 10*time.Second
		for j, s := range states {
			k.AtHandler(at+s.ReuseIn(at), "bench.reuse", h, uint64(j))
		}
		h.lifted = 0
		b.StartTimer()
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
		if h.lifted != n {
			b.Fatalf("drained %d of %d streams", h.lifted, n)
		}
		base = k.Now() + time.Minute
	}
}

// wheelSweepHandler is the per-router batch sweep callback: it drains the
// due reuse bucket and re-arms itself while anything stays enrolled
// (bgp.Router.sweepExpired).
type wheelSweepHandler struct {
	k      *sim.Kernel
	w      *Wheel
	lift   func(uint64)
	lifted int
}

func (h *wheelSweepHandler) HandleEvent(uint64) {
	now := h.k.Now()
	h.w.Sweep(now, h.lift)
	if h.w.Enrolled() > 0 {
		h.k.AtHandler(h.w.NextSweepAt(now), "bench.sweep", h, 0)
	}
}

func benchSweepWheel(b *testing.B, n int) {
	params := Cisco()
	k := benchKernel()
	w := NewWheel(params, DefaultWheelConfig())
	states := make([]*WheelState, n)
	for i := range states {
		states[i] = w.NewState(uint64(i))
	}
	h := &wheelSweepHandler{k: k, w: w}
	h.lift = func(uint64) { h.lifted++ }
	// Advancing base by whole ring revolutions keeps every iteration's
	// enrollments in the same (warmed) buckets, so the measurement is the
	// steady state rather than one-time list growth in rotating cold
	// buckets.
	revolution := w.Config().DeltaTReuse * time.Duration(w.NumLists())
	base := 10 * time.Second
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		suppressWheel(states, base)
		h.lifted = 0
		b.StartTimer()
		k.AtHandler(w.NextSweepAt(base+10*time.Second), "bench.sweep", h, 0)
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
		if h.lifted != n {
			b.Fatalf("drained %d of %d streams", h.lifted, n)
		}
		base += ((k.Now()+time.Minute-base)/revolution + 1) * revolution
	}
}
