package rfd_test

import (
	"testing"

	"rfd/bgp"
	"rfd/damping"
	"rfd/experiment"
	"rfd/topology"
)

// sweepBenchScenario is the reference sweep workload: the paper-scale 10×10
// damped mesh, swept over pulse counts 0..10 (the Fig 8/9 x-axis).
func sweepBenchScenario(b *testing.B) (experiment.Scenario, []int) {
	b.Helper()
	g, err := topology.Torus(10, 10)
	if err != nil {
		b.Fatal(err)
	}
	cfg := bgp.DefaultConfig()
	params := damping.Cisco()
	cfg.Damping = &params
	return experiment.Scenario{Graph: g, ISP: 0, Config: cfg}, experiment.PulseRange(0, 10)
}

// BenchmarkSweepFork measures the warm-up amortization of checkpoint/fork
// sweeps. "scratch" is the pre-optimization execution model — every pulse
// point converges the network from nothing — while "fork" warms up once,
// snapshots the converged network, and forks the checkpoint per point
// (experiment.SweepParallel's model). Both run the points sequentially so the
// comparison isolates forking from parallelism. Results are recorded in
// BENCH_sweep.json; refresh with
//
//	go test -run '^$' -bench BenchmarkSweepFork -benchtime 3x -benchmem .
func BenchmarkSweepFork(b *testing.B) {
	b.Run("scratch", func(b *testing.B) {
		base, pulses := sweepBenchScenario(b)
		b.ReportAllocs()
		var last *experiment.Result
		for i := 0; i < b.N; i++ {
			for _, n := range pulses {
				sc := base
				sc.Pulses = n
				res, err := experiment.Run(sc)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
		}
		b.ReportMetric(last.ConvergenceTime.Seconds(), "conv_s")
		b.ReportMetric(float64(last.MessageCount), "msgs")
	})
	b.Run("fork", func(b *testing.B) {
		base, pulses := sweepBenchScenario(b)
		b.ReportAllocs()
		var last *experiment.Result
		for i := 0; i < b.N; i++ {
			cp, err := experiment.NewCheckpoint(base)
			if err != nil {
				b.Fatal(err)
			}
			for _, n := range pulses {
				sc := base
				sc.Pulses = n
				res, err := cp.Run(sc)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
		}
		b.ReportMetric(last.ConvergenceTime.Seconds(), "conv_s")
		b.ReportMetric(float64(last.MessageCount), "msgs")
	})
}
