package rfd_test

import (
	"bytes"
	"reflect"
	"testing"

	"rfd/bgp"
	"rfd/damping"
	"rfd/experiment"
	"rfd/topology"
	"rfd/trace"
)

// forkEquivalenceScenarios are the configurations the fork-equivalence
// invariant is pinned on: both topology families of the paper (mesh and
// Internet-derived) under classic damping and under RCN-enhanced damping.
func forkEquivalenceScenarios(t *testing.T) map[string]experiment.Scenario {
	t.Helper()
	mesh, err := topology.Torus(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	inet, err := topology.InternetDerived(topology.DefaultInternetConfig(30, 1))
	if err != nil {
		t.Fatal(err)
	}
	damped := bgp.DefaultConfig()
	params := damping.Cisco()
	damped.Damping = &params
	rcn := damped
	rcn.EnableRCN = true
	// The timer-wheel engine must survive fork byte-identically too: reuse
	// list membership, list order, the sweep clock and the per-router sweep
	// timer are all part of the forked state.
	wheel := damped
	wheel.DampingEngine = damping.EngineWheel

	return map[string]experiment.Scenario{
		"mesh-damped":     {Graph: mesh, ISP: 0, Config: damped, Pulses: 3},
		"mesh-rcn":        {Graph: mesh, ISP: 0, Config: rcn, Pulses: 3},
		"mesh-wheel":      {Graph: mesh, ISP: 0, Config: wheel, Pulses: 3},
		"internet-damped": {Graph: inet, ISP: 15, Config: damped, Pulses: 3},
		"internet-rcn":    {Graph: inet, ISP: 15, Config: rcn, Pulses: 3},
		"internet-wheel":  {Graph: inet, ISP: 15, Config: wheel, Pulses: 3},
		// Sharded legs: the same invariant on the parallel engine, where the
		// checkpoint parks a whole kernel group plus the coordinator state and
		// a fork must remap every shard's handlers onto its forked network.
		"mesh-damped-sharded":     {Graph: mesh, ISP: 0, Config: damped, Pulses: 3, Shards: 2},
		"mesh-wheel-sharded":      {Graph: mesh, ISP: 0, Config: wheel, Pulses: 3, Shards: 2},
		"internet-damped-sharded": {Graph: inet, ISP: 15, Config: damped, Pulses: 3, Shards: 2},
		"internet-wheel-sharded":  {Graph: inet, ISP: 15, Config: wheel, Pulses: 3, Shards: 2},
	}
}

// tracedRun executes the scenario through run (either experiment.Run or a
// Checkpoint's Run) with a fresh event log attached, returning the Result and
// the serialized flap-phase trace.
func tracedRun(t *testing.T, sc experiment.Scenario,
	run func(experiment.Scenario) (*experiment.Result, error)) (*experiment.Result, []byte) {
	t.Helper()
	sc.Trace = trace.NewLog(0)
	res, err := run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Trace.Dropped() != 0 {
		t.Fatalf("trace dropped %d events", sc.Trace.Dropped())
	}
	var buf bytes.Buffer
	if err := sc.Trace.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// TestForkEquivalence is the tentpole's correctness contract: a run resumed
// from a forked converged checkpoint produces the byte-identical event trace
// and a deeply equal Result compared to a from-scratch run, across both
// topology families and both damping variants.
func TestForkEquivalence(t *testing.T) {
	for name, base := range forkEquivalenceScenarios(t) {
		t.Run(name, func(t *testing.T) {
			scratchRes, scratchTrace := tracedRun(t, base, experiment.Run)

			cp, err := experiment.NewCheckpoint(base)
			if err != nil {
				t.Fatal(err)
			}
			forkRes, forkTrace := tracedRun(t, base, cp.Run)

			if !bytes.Equal(scratchTrace, forkTrace) {
				i := 0
				for i < len(scratchTrace) && i < len(forkTrace) && scratchTrace[i] == forkTrace[i] {
					i++
				}
				t.Fatalf("forked trace diverges from scratch trace at byte %d (scratch %d bytes, fork %d bytes)",
					i, len(scratchTrace), len(forkTrace))
			}
			if len(scratchTrace) == 0 {
				t.Fatal("empty trace: the comparison is vacuous")
			}
			if !reflect.DeepEqual(scratchRes, forkRes) {
				t.Fatal("forked Result differs from scratch Result")
			}

			// A second fork of the same checkpoint replays identically too.
			res2, trace2 := tracedRun(t, base, cp.Run)
			if !bytes.Equal(forkTrace, trace2) || !reflect.DeepEqual(forkRes, res2) {
				t.Fatal("two forks of one checkpoint disagree")
			}
		})
	}
}
