package rcn

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestCauseZero(t *testing.T) {
	var c Cause
	if !c.IsZero() {
		t.Fatal("zero cause not IsZero")
	}
	if c.String() != "{none}" {
		t.Fatalf("zero cause String = %q", c.String())
	}
	valid := Cause{U: 1, V: 2, Status: LinkDown, Seq: 1}
	if valid.IsZero() {
		t.Fatal("valid cause IsZero")
	}
}

func TestCauseString(t *testing.T) {
	c := Cause{U: 3, V: 17, Status: LinkDown, Seq: 5}
	if got := c.String(); got != "{[3 17], down, 5}" {
		t.Fatalf("String = %q", got)
	}
	up := Cause{U: 1, V: 2, Status: LinkUp, Seq: 2}
	if got := up.String(); got != "{[1 2], up, 2}" {
		t.Fatalf("String = %q", got)
	}
}

func TestStatusString(t *testing.T) {
	if LinkDown.String() != "down" || LinkUp.String() != "up" {
		t.Fatal("status strings wrong")
	}
	if Status(9).String() != "Status(9)" {
		t.Fatal("unknown status string wrong")
	}
}

func TestSequencerMonotonic(t *testing.T) {
	var s Sequencer
	for want := uint64(1); want <= 10; want++ {
		status := LinkDown
		if want%2 == 0 {
			status = LinkUp
		}
		c := s.Next(0, 1, status)
		if c.Seq != want {
			t.Fatalf("seq = %d, want %d", c.Seq, want)
		}
		if c.IsZero() {
			t.Fatal("sequencer produced zero cause")
		}
	}
}

func TestWitnessNewThenSeen(t *testing.T) {
	h := NewHistory(10)
	c := Cause{U: 1, V: 2, Status: LinkDown, Seq: 1}
	if !h.Witness(c) {
		t.Fatal("first Witness = false, want true (new cause charges)")
	}
	for i := 0; i < 5; i++ {
		if h.Witness(c) {
			t.Fatal("repeated Witness = true, want false (seen cause must not charge)")
		}
	}
	if h.Len() != 1 {
		t.Fatalf("Len = %d, want 1", h.Len())
	}
}

func TestWitnessDistinguishesFields(t *testing.T) {
	h := NewHistory(10)
	base := Cause{U: 1, V: 2, Status: LinkDown, Seq: 1}
	variants := []Cause{
		{U: 9, V: 2, Status: LinkDown, Seq: 1},
		{U: 1, V: 9, Status: LinkDown, Seq: 1},
		{U: 1, V: 2, Status: LinkUp, Seq: 1},
		{U: 1, V: 2, Status: LinkDown, Seq: 2},
	}
	if !h.Witness(base) {
		t.Fatal("base not new")
	}
	for i, v := range variants {
		if !h.Witness(v) {
			t.Fatalf("variant %d treated as seen", i)
		}
	}
	if h.Len() != len(variants)+1 {
		t.Fatalf("Len = %d", h.Len())
	}
}

func TestWitnessZeroCauseAlwaysCharges(t *testing.T) {
	h := NewHistory(10)
	for i := 0; i < 3; i++ {
		if !h.Witness(Cause{}) {
			t.Fatal("zero cause Witness = false; classic updates must charge")
		}
	}
	if h.Len() != 0 {
		t.Fatalf("zero causes were recorded: Len = %d", h.Len())
	}
}

func TestContainsDoesNotRecord(t *testing.T) {
	h := NewHistory(10)
	c := Cause{U: 1, V: 2, Status: LinkDown, Seq: 1}
	if h.Contains(c) {
		t.Fatal("Contains before Witness")
	}
	if h.Len() != 0 {
		t.Fatal("Contains recorded the cause")
	}
	h.Witness(c)
	if !h.Contains(c) {
		t.Fatal("Contains after Witness = false")
	}
}

func TestHistoryEvictionFIFO(t *testing.T) {
	h := NewHistory(3)
	mk := func(seq uint64) Cause { return Cause{U: 0, V: 1, Status: LinkDown, Seq: seq} }
	for seq := uint64(1); seq <= 3; seq++ {
		h.Witness(mk(seq))
	}
	if h.Len() != 3 {
		t.Fatalf("Len = %d", h.Len())
	}
	// Inserting a 4th evicts the oldest (seq 1).
	h.Witness(mk(4))
	if h.Len() != 3 {
		t.Fatalf("Len after eviction = %d", h.Len())
	}
	if h.Contains(mk(1)) {
		t.Fatal("oldest cause not evicted")
	}
	for seq := uint64(2); seq <= 4; seq++ {
		if !h.Contains(mk(seq)) {
			t.Fatalf("cause %d wrongly evicted", seq)
		}
	}
	// Evicted causes count as new again (bounded memory trade-off).
	if !h.Witness(mk(1)) {
		t.Fatal("evicted cause not treated as new")
	}
	// That re-insert must evict seq 2 (now oldest).
	if h.Contains(mk(2)) {
		t.Fatal("FIFO order violated on re-insert")
	}
}

func TestNewHistoryDefaultCapacity(t *testing.T) {
	for _, capacity := range []int{0, -5} {
		h := NewHistory(capacity)
		mk := func(seq uint64) Cause { return Cause{U: 0, V: 1, Status: LinkUp, Seq: seq} }
		for seq := uint64(1); seq <= DefaultHistorySize; seq++ {
			h.Witness(mk(seq))
		}
		if h.Len() != DefaultHistorySize {
			t.Fatalf("capacity %d: Len = %d, want %d", capacity, h.Len(), DefaultHistorySize)
		}
	}
}

// TestQuickWitnessSetSemantics: within capacity, Witness returns true exactly
// once per distinct cause regardless of arrival order.
func TestQuickWitnessSetSemantics(t *testing.T) {
	f := func(seqs []uint8) bool {
		h := NewHistory(1024)
		distinct := make(map[Cause]bool)
		for _, s := range seqs {
			c := Cause{U: 1, V: 2, Status: LinkDown, Seq: uint64(s) + 1}
			isNew := h.Witness(c)
			if isNew == distinct[c] {
				return false // new iff not previously seen
			}
			distinct[c] = true
		}
		return h.Len() == len(distinct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEvictionNeverExceedsCapacity fuzzes ring-buffer bookkeeping.
func TestQuickEvictionBookkeeping(t *testing.T) {
	f := func(seqs []uint16, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		h := NewHistory(capacity)
		for _, s := range seqs {
			h.Witness(Cause{U: 1, V: 2, Status: LinkUp, Seq: uint64(s) + 1})
			if h.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWitness(b *testing.B) {
	h := NewHistory(1024)
	for i := 0; i < b.N; i++ {
		h.Witness(Cause{U: 1, V: 2, Status: LinkDown, Seq: uint64(i % 2048)})
	}
}

func ExampleHistory_Witness() {
	var seq Sequencer
	h := NewHistory(0)
	down := seq.Next(7, 8, LinkDown)
	fmt.Println(h.Witness(down)) // first sight: charge the penalty
	fmt.Println(h.Witness(down)) // path-exploration copy: no charge
	// Output:
	// true
	// false
}
