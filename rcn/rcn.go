// Package rcn implements Root Cause Notification (RCN) as used by the paper's
// RCN-enhanced damping (Section 6).
//
// A root cause identifies the link status change that ultimately triggered a
// routing update: RC = {[u v], status, seq}. The node adjacent to a flapping
// link stamps every update it originates with a fresh root cause; every
// router that changes its best path because of a received update copies the
// root cause from the incoming update into its own outgoing updates. All the
// path-exploration (and route-reuse) updates descending from one physical
// flap therefore carry the same root cause.
//
// RCN-enhanced damping keeps, per peer, a bounded history of root causes
// already seen and charges the damping penalty only for updates whose root
// cause is new (History.Witness). Updates still flow to the routing decision
// unconditionally — RCN filters penalties, not routes.
package rcn

import (
	"fmt"
)

// Status is the reported state of the root-cause link.
type Status int

const (
	// LinkDown indicates the root cause was a link failure.
	LinkDown Status = iota + 1
	// LinkUp indicates the root cause was a link recovery.
	LinkUp
)

// String returns "down" or "up".
func (s Status) String() string {
	switch s {
	case LinkDown:
		return "down"
	case LinkUp:
		return "up"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Cause is a root cause: the identity of one link status change. The zero
// value means "no root cause attached" (e.g. RCN disabled); IsZero reports
// that. Cause is comparable and is used directly as a map key.
type Cause struct {
	// U, V are the endpoints of the root-cause link; U is the detecting
	// node.
	U, V int
	// Status is the new link state.
	Status Status
	// Seq orders the status changes of one link. Valid causes have Seq >= 1.
	Seq uint64
}

// IsZero reports whether no root cause is attached.
func (c Cause) IsZero() bool { return c == Cause{} }

// String renders the cause in the paper's notation, e.g.
// "{[3 17], down, 5}".
func (c Cause) String() string {
	if c.IsZero() {
		return "{none}"
	}
	return fmt.Sprintf("{[%d %d], %s, %d}", c.U, c.V, c.Status, c.Seq)
}

// Sequencer hands out consecutive sequence numbers for one link's status
// changes. The zero value is ready to use; the first cause gets Seq 1.
type Sequencer struct {
	seq uint64
}

// Next returns the cause for the given link status change, advancing the
// sequence.
func (s *Sequencer) Next(u, v int, status Status) Cause {
	s.seq++
	return Cause{U: u, V: v, Status: status, Seq: s.seq}
}

// DefaultHistorySize is the per-peer root-cause history capacity used when a
// History is constructed with a non-positive size. A flap event generates
// exactly two causes (down, up), so even aggressive flapping stays far below
// this bound; it exists to bound memory in a long-lived daemon.
const DefaultHistorySize = 1024

// History is a bounded FIFO set of root causes seen from one peer.
// The zero value is unusable; construct with NewHistory. History is not safe
// for concurrent use.
type History struct {
	capacity int
	seen     map[Cause]struct{}
	order    []Cause // FIFO eviction order
	head     int     // index of oldest entry in order (ring semantics)
}

// NewHistory returns a history that remembers up to capacity causes
// (DefaultHistorySize if capacity <= 0).
func NewHistory(capacity int) *History {
	if capacity <= 0 {
		capacity = DefaultHistorySize
	}
	return &History{
		capacity: capacity,
		seen:     make(map[Cause]struct{}, capacity),
	}
}

// Len returns the number of causes currently remembered.
func (h *History) Len() int { return len(h.seen) }

// Contains reports whether the cause is in the history without recording it.
func (h *History) Contains(c Cause) bool {
	_, ok := h.seen[c]
	return ok
}

// Clone returns an independent copy of the history: same capacity, same
// remembered causes, same eviction order, sharing no storage with the
// original. Used by the simulator's network fork.
func (h *History) Clone() *History {
	c := &History{
		capacity: h.capacity,
		seen:     make(map[Cause]struct{}, len(h.seen)),
		head:     h.head,
	}
	for cause := range h.seen {
		c.seen[cause] = struct{}{}
	}
	if h.order != nil {
		c.order = append(make([]Cause, 0, len(h.order)), h.order...)
	}
	return c
}

// Witness records the cause and reports whether it was NEW — i.e. whether an
// RCN-enhanced damping implementation should apply a penalty increment for
// the update carrying it (Section 6.2: "If the root cause is already present
// in the history list, this update does not result in any penalty
// increment."). Zero causes are never recorded and always report true, so
// updates without root-cause information charge the penalty exactly as
// classic damping does.
func (h *History) Witness(c Cause) bool {
	if c.IsZero() {
		return true
	}
	if _, ok := h.seen[c]; ok {
		return false
	}
	if len(h.seen) >= h.capacity {
		// Evict the oldest.
		oldest := h.order[h.head]
		delete(h.seen, oldest)
		h.order[h.head] = c
		h.head = (h.head + 1) % h.capacity
	} else {
		h.order = append(h.order, c)
	}
	h.seen[c] = struct{}{}
	return true
}
