package rfd_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"rfd/bgp"
	"rfd/damping"
	"rfd/experiment"
	"rfd/faults"
	"rfd/sim"
	"rfd/topology"
	"rfd/trace"
)

// shardedGoldenPath pins the sharded engine at scale: the canonical event
// trace of a faulty 208-node internet-derived run, recorded as an event count
// plus a SHA-256 digest (the full trace is megabytes; the digest pins it just
// as hard). Sequential and sharded engines must both reproduce it.
const shardedGoldenPath = "testdata/golden_shard_internet208.digest"

// diffCase is one cell of the sequential-vs-sharded differential matrix.
type diffCase struct {
	name   string
	graph  func(t *testing.T) *topology.Graph
	engine damping.EngineKind
	faults bool
	pulses int
	shards int
}

// synthASRel renders an annotated graph in CAIDA serial-1 form, so the
// differential matrix covers a graph that went through the importer.
func synthASRel(t *testing.T, g *topology.Graph) string {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("# synthesized from " + g.Name() + "\n")
	asn := func(v topology.NodeID) int { return 10 + 7*int(v) } // order-preserving, sparse
	for _, e := range g.Edges() {
		a, b := e.A, e.B
		switch g.Relationship(a, b) {
		case topology.RelCustomer: // a provides transit to b
			fmt.Fprintf(&sb, "%d|%d|-1\n", asn(a), asn(b))
		case topology.RelProvider:
			fmt.Fprintf(&sb, "%d|%d|-1\n", asn(b), asn(a))
		default:
			fmt.Fprintf(&sb, "%d|%d|0\n", asn(a), asn(b))
		}
	}
	return sb.String()
}

// importedGraph round-trips an internet-derived graph through the CAIDA
// importer. The AS numbering is order-preserving, so the imported graph has
// the same node ids and (up to annotation) the same structure.
func importedGraph(t *testing.T, nodes int, seed uint64) *topology.Graph {
	t.Helper()
	base, err := topology.InternetDerived(topology.DefaultInternetConfig(nodes, seed))
	if err != nil {
		t.Fatal(err)
	}
	g, err := topology.ParseASRelationships(strings.NewReader(synthASRel(t, base)), "imported")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != base.NumNodes() || g.NumEdges() != base.NumEdges() {
		t.Fatalf("import round-trip changed shape: %d/%d nodes, %d/%d edges",
			g.NumNodes(), base.NumNodes(), g.NumEdges(), base.NumEdges())
	}
	return g
}

// faultDrive applies the shared fault schedule through either engine's
// entry points between timed run segments.
type faultDrive interface {
	SetLinkState(a, b bgp.RouterID, up bool) error
	ResetSession(a, b bgp.RouterID) error
}

// canonicalSharded runs warm-up plus pulses (and optionally faults) on either
// engine — shards <= 1 selects the sequential engine — and returns the
// canonical trace bytes.
func canonicalSharded(t *testing.T, g *topology.Graph, cfg bgp.Config, origin bgp.RouterID, pulses, shards int, withFaults bool) []byte {
	t.Helper()
	prefix := bgp.Prefix("origin/8")

	type engine struct {
		router  func(bgp.RouterID) *bgp.Router
		run     func() error
		runTo   func(time.Duration) error
		now     func() time.Duration
		align   func()
		drive   faultDrive
		logs    func() []*trace.Log
		counts  func() (uint64, uint64)
		impair  func(*faults.Impairments)
		cleanup func()
	}
	var eng engine
	if shards <= 1 {
		k := sim.NewKernel(sim.WithSeed(cfg.Seed))
		n, err := bgp.NewNetwork(k, g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		log := trace.NewLog(0)
		n.SetHooks(bgp.TraceHooks(log))
		eng = engine{
			router:  n.Router,
			run:     k.Run,
			runTo:   k.RunUntil,
			now:     k.Now,
			align:   func() {},
			drive:   n,
			logs:    func() []*trace.Log { return []*trace.Log{log} },
			counts:  func() (uint64, uint64) { return n.Delivered(), n.Dropped() },
			impair:  func(im *faults.Impairments) { n.SetImpairment(im) },
			cleanup: func() {},
		}
	} else {
		assign, err := topology.Partition(g, shards)
		if err != nil {
			t.Fatal(err)
		}
		sn, err := bgp.NewShardedNetwork(g, cfg, assign)
		if err != nil {
			t.Fatal(err)
		}
		logs := make([]*trace.Log, sn.NumShards())
		for s := range logs {
			logs[s] = trace.NewLog(0)
			sn.Shard(s).SetHooks(bgp.TraceHooks(logs[s]))
		}
		grp := sn.Group()
		eng = engine{
			router: sn.Router,
			run:    grp.Run,
			runTo:  grp.RunUntil,
			now:    grp.Now,
			align:  sn.Align,
			drive:  sn,
			logs:   func() []*trace.Log { return logs },
			counts: func() (uint64, uint64) { return sn.Delivered(), sn.Dropped() },
			impair: func(im *faults.Impairments) {
				for s := 0; s < sn.NumShards(); s++ {
					sn.Shard(s).SetImpairment(im.Fork())
				}
			},
			cleanup: sn.Close,
		}
	}
	defer eng.cleanup()

	eng.router(origin).Originate(prefix)
	if err := eng.run(); err != nil {
		t.Fatal(err)
	}
	eng.align()

	if withFaults {
		// Per-link streams on both engines: the global stream's consumption
		// order is engine-dependent, per-link streams are not.
		im := faults.NewImpairments(cfg.Seed)
		im.UseLinkStreams()
		if err := im.SetDefault(faults.Profile{Loss: 0.01, MaxJitter: 2 * time.Millisecond}); err != nil {
			t.Fatal(err)
		}
		eng.impair(im)
	}

	const interval = 60 * time.Second
	step := func(d time.Duration) {
		if err := eng.runTo(eng.now() + d); err != nil {
			t.Fatal(err)
		}
	}
	for pulse := 0; pulse < pulses; pulse++ {
		eng.router(origin).StopOriginating(prefix)
		step(interval)
		eng.router(origin).Originate(prefix)
		step(interval)
		if withFaults && pulse == 0 {
			if err := eng.drive.SetLinkState(0, 1, false); err != nil {
				t.Fatal(err)
			}
			step(30 * time.Second)
			if err := eng.drive.SetLinkState(0, 1, true); err != nil {
				t.Fatal(err)
			}
			if err := eng.drive.ResetSession(2, 3); err != nil {
				t.Fatal(err)
			}
			step(30 * time.Second)
		}
	}
	if err := eng.run(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := trace.Merge(eng.logs()...).WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	delivered, dropped := eng.counts()
	fmt.Fprintf(&buf, "delivered %d dropped %d\n", delivered, dropped)
	return buf.Bytes()
}

// TestShardedDifferentialMatrix is the tentpole's pinning property at the
// repo root: across topology families (mesh, internet-derived, CAIDA-
// imported), damping engines (exact, timer-wheel) and fault injection
// (off/on), the sharded engine's canonical trace is byte-identical to the
// sequential engine's for the same seed.
func TestShardedDifferentialMatrix(t *testing.T) {
	mesh := func(t *testing.T) *topology.Graph {
		g, err := topology.Torus(6, 6)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	internet := func(t *testing.T) *topology.Graph {
		g, err := topology.InternetDerived(topology.DefaultInternetConfig(208, 3))
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	imported := func(t *testing.T) *topology.Graph { return importedGraph(t, 60, 7) }

	var cases []diffCase
	for _, gr := range []struct {
		name   string
		graph  func(t *testing.T) *topology.Graph
		pulses int
	}{
		{"mesh6x6", mesh, 2},
		{"internet208", internet, 1},
		{"imported60", imported, 2},
	} {
		for _, eng := range []struct {
			name string
			kind damping.EngineKind
		}{
			{"exact", damping.EngineExact},
			{"wheel", damping.EngineWheel},
		} {
			for _, withFaults := range []bool{false, true} {
				fname := "clean"
				if withFaults {
					fname = "faulty"
				}
				cases = append(cases, diffCase{
					name:   gr.name + "/" + eng.name + "/" + fname,
					graph:  gr.graph,
					engine: eng.kind,
					faults: withFaults,
					pulses: gr.pulses,
					shards: 4,
				})
			}
		}
	}

	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			g := c.graph(t)
			cfg := bgp.DefaultConfig()
			params := damping.Cisco()
			cfg.Damping = &params
			cfg.Seed = 13
			cfg.DampingEngine = c.engine
			origin := bgp.RouterID(g.NumNodes() / 2)
			want := canonicalSharded(t, g, cfg, origin, c.pulses, 1, c.faults)
			got := canonicalSharded(t, g, cfg, origin, c.pulses, c.shards, c.faults)
			if !bytes.Equal(want, got) {
				i := 0
				for i < len(want) && i < len(got) && want[i] == got[i] {
					i++
				}
				t.Fatalf("sharded trace diverges from sequential at byte %d (len %d vs %d)", i, len(want), len(got))
			}
		})
	}
}

// TestShardedForkDifferential extends the differential matrix with the fork
// legs the sharded checkpoint work introduces: for every {topology} × {exact,
// wheel} × {clean, faulty} cell, a point resumed from a forked sharded
// checkpoint must produce the byte-identical canonical trace of (a) a
// from-scratch sharded run and (b) a run resumed from a sequential checkpoint
// of the same scenario. (a) pins Snapshot/Fork round-tripping on the sharded
// engine; (b) pins that checkpointing did not reintroduce an engine skew the
// base matrix rules out for from-scratch runs.
func TestShardedForkDifferential(t *testing.T) {
	canonicalJSONL := func(t *testing.T, log *trace.Log) []byte {
		t.Helper()
		if log.Dropped() != 0 {
			t.Fatalf("trace dropped %d events", log.Dropped())
		}
		var buf bytes.Buffer
		// Canonical (At, Router) order: the sequential engine records live in
		// execution order, the sharded engine per shard — Merge maps both onto
		// the one comparable sequence.
		if err := trace.Merge(log).WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	runLeg := func(t *testing.T, sc experiment.Scenario,
		run func(experiment.Scenario) (*experiment.Result, error)) (*experiment.Result, []byte) {
		t.Helper()
		sc.Trace = trace.NewLog(0)
		res, err := run(sc)
		if err != nil {
			t.Fatal(err)
		}
		return res, canonicalJSONL(t, sc.Trace)
	}
	diverge := func(t *testing.T, leg string, want, got []byte) {
		t.Helper()
		if bytes.Equal(want, got) {
			return
		}
		i := 0
		for i < len(want) && i < len(got) && want[i] == got[i] {
			i++
		}
		t.Fatalf("%s trace diverges from scratch sharded at byte %d (len %d vs %d)",
			leg, i, len(want), len(got))
	}

	for _, gr := range []struct {
		name   string
		graph  func(t *testing.T) *topology.Graph
		pulses int
	}{
		{"mesh6x6", func(t *testing.T) *topology.Graph {
			g, err := topology.Torus(6, 6)
			if err != nil {
				t.Fatal(err)
			}
			return g
		}, 2},
		{"internet208", func(t *testing.T) *topology.Graph {
			g, err := topology.InternetDerived(topology.DefaultInternetConfig(208, 3))
			if err != nil {
				t.Fatal(err)
			}
			return g
		}, 1},
	} {
		for _, eng := range []struct {
			name string
			kind damping.EngineKind
		}{
			{"exact", damping.EngineExact},
			{"wheel", damping.EngineWheel},
		} {
			for _, withFaults := range []bool{false, true} {
				fname := "clean"
				if withFaults {
					fname = "faulty"
				}
				gr, eng, withFaults := gr, eng, withFaults
				t.Run(gr.name+"/"+eng.name+"/"+fname, func(t *testing.T) {
					g := gr.graph(t)
					// mk builds a fresh scenario per leg: impairment streams are
					// consumed during a run, so legs must never share an
					// Impairments instance (same seed → identical streams).
					mk := func(shards int) experiment.Scenario {
						cfg := bgp.DefaultConfig()
						params := damping.Cisco()
						cfg.Damping = &params
						cfg.Seed = 13
						cfg.DampingEngine = eng.kind
						sc := experiment.Scenario{
							Graph:  g,
							ISP:    topology.NodeID(g.NumNodes() / 2),
							Config: cfg,
							Pulses: gr.pulses,
							Shards: shards,
						}
						if withFaults {
							im := faults.NewImpairments(cfg.Seed)
							im.UseLinkStreams()
							if err := im.SetDefault(faults.Profile{Loss: 0.01, MaxJitter: 2 * time.Millisecond}); err != nil {
								t.Fatal(err)
							}
							sc.Impair = im
							sc.Faults = faults.NewPlan(
								faults.FlapLink(30*time.Second, 0, 1, 30*time.Second),
								faults.ResetSession(45*time.Second, 2, 3),
							)
						}
						return sc
					}

					scratchRes, scratchTrace := runLeg(t, mk(4), experiment.Run)
					if len(scratchTrace) == 0 {
						t.Fatal("empty trace: the comparison is vacuous")
					}

					cp4, err := experiment.NewCheckpoint(mk(4))
					if err != nil {
						t.Fatal(err)
					}
					if cp4.Shards() != 4 {
						t.Fatalf("checkpoint shards = %d, want 4", cp4.Shards())
					}
					shRes, shTrace := runLeg(t, mk(4), cp4.Run)
					diverge(t, "sharded-fork", scratchTrace, shTrace)
					if !reflect.DeepEqual(scratchRes, shRes) {
						t.Fatal("sharded-fork Result differs from scratch sharded Result")
					}

					cp1, err := experiment.NewCheckpoint(mk(0))
					if err != nil {
						t.Fatal(err)
					}
					seqRes, seqTrace := runLeg(t, mk(0), cp1.Run)
					diverge(t, "sequential-fork", scratchTrace, seqTrace)
					// Cross-engine Results are built by different observers
					// (live hooks vs trace reconstruction); compare the
					// measured quantities rather than the struct graphs.
					if seqRes.MessageCount != scratchRes.MessageCount ||
						seqRes.ConvergenceTime != scratchRes.ConvergenceTime ||
						seqRes.FlapStart != scratchRes.FlapStart ||
						seqRes.FlapEnd != scratchRes.FlapEnd ||
						seqRes.EndTime != scratchRes.EndTime ||
						seqRes.MaxDamped != scratchRes.MaxDamped ||
						seqRes.NoisyReuses != scratchRes.NoisyReuses ||
						seqRes.SilentReuses != scratchRes.SilentReuses ||
						seqRes.OriginSuppressed != scratchRes.OriginSuppressed ||
						seqRes.Dropped != scratchRes.Dropped {
						t.Fatalf("sequential-fork Result diverges:\nseq:     %+v\nsharded: %+v", seqRes, scratchRes)
					}
				})
			}
		}
	}
}

// TestShardedGoldenInternet208 pins the sharded engine's behaviour at scale:
// event count and SHA-256 digest of the canonical trace of a faulty 208-node
// internet-derived run, for both the sequential reference and a 4-shard run.
// Run with -update to re-record after an intentional behaviour change.
func TestShardedGoldenInternet208(t *testing.T) {
	g, err := topology.InternetDerived(topology.DefaultInternetConfig(208, 3))
	if err != nil {
		t.Fatal(err)
	}
	cfg := bgp.DefaultConfig()
	params := damping.Cisco()
	cfg.Damping = &params
	cfg.Seed = 13
	origin := bgp.RouterID(g.NumNodes() / 2)

	render := func(raw []byte) string {
		lines := bytes.Count(raw, []byte("\n"))
		sum := sha256.Sum256(raw)
		return fmt.Sprintf("lines %d sha256 %s\n", lines, hex.EncodeToString(sum[:]))
	}
	got := render(canonicalSharded(t, g, cfg, origin, 1, 1, true))
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(shardedGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(shardedGoldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s: %s", shardedGoldenPath, got)
		return
	}
	want, err := os.ReadFile(shardedGoldenPath)
	if err != nil {
		t.Fatalf("missing golden digest (run with -update to record): %v", err)
	}
	if string(want) != got {
		t.Fatalf("sequential digest diverged:\nwant %sgot  %s", want, got)
	}
	if sharded := render(canonicalSharded(t, g, cfg, origin, 1, 4, true)); sharded != got {
		t.Fatalf("sharded digest diverged from sequential:\nseq   %sshard %s", got, sharded)
	}
}
