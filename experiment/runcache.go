package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
)

// Fingerprint returns a canonical content hash of everything that determines
// the scenario's Result: the topology (canonical sorted-edge encoding,
// including relationship annotations), the ISP attachment point, every
// protocol configuration scalar, the pulse workload and the seed. Two
// scenarios with equal fingerprints produce byte-identical runs, so a cached
// Result can stand in for a re-run.
//
// ok is false when the scenario's identity cannot be captured by value:
// a per-router damping selector (a function), an attached trace log, an
// impairment model, a fault plan or a watchdog all make the run depend on
// state outside the hashed fields. Such scenarios are never cached.
func (s Scenario) Fingerprint() (key string, ok bool) {
	base, ok := s.fingerprintBase()
	if !ok {
		return "", false
	}
	return fmt.Sprintf("%s:p%d", base, s.Pulses), true
}

// fingerprintBase hashes every run-determining input except the pulse count,
// so a sweep hashes the expensive part (the topology) once per scenario
// rather than once per point.
func (s Scenario) fingerprintBase() (string, bool) {
	if s.Config.DampingSelect != nil || s.Trace != nil || s.Impair != nil ||
		s.Faults != nil || s.Watchdog != nil {
		return "", false
	}
	if s.Graph == nil {
		return "", false
	}
	h := sha256.New()
	if err := s.Graph.WriteTSV(h); err != nil {
		return "", false
	}
	interval := s.FlapInterval
	if interval == 0 {
		interval = DefaultFlapInterval
	}
	cfg := s.Config
	// Check does not change the Result's measurements, but a checked run
	// carries a Result.Check report an unchecked one lacks — and a checked
	// figure pass must not be satisfied by unchecked cached Results.
	fmt.Fprintf(h, "isp %d\ninterval %d\nvialink %t\ncheck %t\npolicy %d\nrcn %t\nselective %t\nhistsize %d\nmrai %d\nmraijitter %t\nlink %d %d\nproc %d %d\nseed %d\n",
		s.ISP, interval, s.FlapViaLink, s.Check, cfg.Policy, cfg.EnableRCN,
		cfg.SelectiveDamping, cfg.RCNHistorySize, cfg.MRAI, cfg.MRAIJitter,
		cfg.MinLinkDelay, cfg.MaxLinkDelay, cfg.MinProcDelay, cfg.MaxProcDelay,
		cfg.Seed)
	if d := cfg.Damping; d != nil {
		fmt.Fprintf(h, "damping %g %g %g %g %g %d %d\n",
			d.WithdrawalPenalty, d.ReannouncementPenalty, d.AttrChangePenalty,
			d.CutoffThreshold, d.ReuseThreshold, d.HalfLife, d.MaxHoldDown)
	}
	for _, w := range s.Watch {
		fmt.Fprintf(h, "watch %d %d\n", w.Router, w.Peer)
	}
	return hex.EncodeToString(h.Sum(nil)), true
}

// cacheEntry is one singleflight slot: the claimant runs the scenario and
// closes done; everyone else waits on done and reads res/err.
type cacheEntry struct {
	done chan struct{}
	res  *Result
	err  error
}

// RunCache deduplicates runs by scenario fingerprint: the first request for
// a fingerprint executes it, concurrent requests for the same fingerprint
// wait for that execution (singleflight), and later requests return the
// cached Result immediately. rfdfig uses one cache across all figures, which
// share scenarios (e.g. the undamped mesh baseline appears in the Eval sweep
// and as Fig 10/15 inputs).
//
// Cached Results are shared between callers and must be treated as
// read-only. Scenarios whose Fingerprint reports ok=false (trace logs,
// impairments, fault plans, watchdogs, damping selectors) bypass the cache
// and always run. A nil *RunCache is valid and bypasses caching entirely.
type RunCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry

	hits, misses, uncached uint64
}

// NewRunCache returns an empty cache.
func NewRunCache() *RunCache {
	return &RunCache{entries: make(map[string]*cacheEntry)}
}

// Stats reports how many Run/Sweep points were served from cache (hits),
// executed and stored (misses), and executed uncached because the scenario
// has no fingerprint (uncacheable).
func (c *RunCache) Stats() (hits, misses, uncacheable uint64) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.uncached
}

// claim returns the entry for key and whether this caller owns its
// execution (true exactly once per key).
func (c *RunCache) claim(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, found := c.entries[key]; found {
		c.hits++
		return e, false
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	return e, true
}

// Run executes the scenario through the cache: a fingerprint hit returns the
// cached (shared, read-only) Result, a miss runs and stores it, and
// unfingerprintable scenarios fall through to a plain Run.
func (c *RunCache) Run(sc Scenario) (*Result, error) {
	key, ok := sc.Fingerprint()
	if c == nil || !ok {
		if c != nil {
			c.mu.Lock()
			c.uncached++
			c.mu.Unlock()
		}
		return Run(sc)
	}
	e, owner := c.claim(key)
	if !owner {
		<-e.done
		return e.res, e.err
	}
	e.res, e.err = Run(sc)
	close(e.done)
	return e.res, e.err
}

// Sweep is SweepParallel through the cache: points whose fingerprint is
// already cached (or claimed by a concurrent caller) are not re-run; only
// the missing pulse counts execute, as one fork-amortized parallel sweep.
// Unfingerprintable scenarios fall through to a plain SweepParallel.
func (c *RunCache) Sweep(base Scenario, pulses []int, workers int) ([]SweepPoint, error) {
	if c == nil {
		return SweepParallel(base, pulses, workers)
	}
	baseKey, ok := base.fingerprintBase()
	if !ok {
		c.mu.Lock()
		c.uncached += uint64(len(pulses))
		c.mu.Unlock()
		return SweepParallel(base, pulses, workers)
	}
	entries := make([]*cacheEntry, len(pulses))
	var missPulses []int
	var missEntries []*cacheEntry
	for i, n := range pulses {
		e, owner := c.claim(fmt.Sprintf("%s:p%d", baseKey, n))
		entries[i] = e
		if owner {
			missPulses = append(missPulses, n)
			missEntries = append(missEntries, e)
		}
	}
	if len(missPulses) > 0 {
		pts, err := SweepParallel(base, missPulses, workers)
		if err != nil {
			// Fill every claimed entry so concurrent waiters unblock instead
			// of deadlocking on a result that will never arrive.
			for _, e := range missEntries {
				e.err = err
				close(e.done)
			}
			return nil, err
		}
		for j, e := range missEntries {
			e.res = pts[j].Result
			close(e.done)
		}
	}
	out := make([]SweepPoint, len(pulses))
	var errs []error
	for i, e := range entries {
		<-e.done
		if e.err != nil {
			errs = append(errs, fmt.Errorf("experiment: sweep n=%d: %w", pulses[i], e.err))
			continue
		}
		out[i] = SweepPoint{Pulses: pulses[i], Result: e.res}
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return out, nil
}
