package experiment

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"

	"rfd/damping"
)

// Fingerprint returns a canonical content hash of everything that determines
// the scenario's Result: the topology (canonical sorted-edge encoding,
// including relationship annotations), the ISP attachment point, every
// protocol configuration scalar, the pulse workload and the seed. Two
// scenarios with equal fingerprints produce byte-identical runs, so a cached
// Result can stand in for a re-run.
//
// ok is false when the scenario's identity cannot be captured by value:
// a per-router damping selector (a function), an attached trace log, an
// impairment model, a fault plan or a watchdog all make the run depend on
// state outside the hashed fields. Such scenarios are never cached.
func (s Scenario) Fingerprint() (key string, ok bool) {
	base, ok := s.fingerprintBase()
	if !ok {
		return "", false
	}
	return fmt.Sprintf("%s:p%d", base, s.Pulses), true
}

// fingerprintBase hashes every run-determining input except the pulse count,
// so a sweep hashes the expensive part (the topology) once per scenario
// rather than once per point.
func (s Scenario) fingerprintBase() (string, bool) {
	if s.Config.DampingSelect != nil || s.Trace != nil || s.Impair != nil ||
		s.Faults != nil || s.Watchdog != nil {
		return "", false
	}
	if s.Graph == nil {
		return "", false
	}
	h := sha256.New()
	if err := s.Graph.WriteTSV(h); err != nil {
		return "", false
	}
	interval := s.FlapInterval
	if interval == 0 {
		interval = DefaultFlapInterval
	}
	cfg := s.Config
	// Check does not change the Result's measurements, but a checked run
	// carries a Result.Check report an unchecked one lacks — and a checked
	// figure pass must not be satisfied by unchecked cached Results.
	fmt.Fprintf(h, "isp %d\ninterval %d\nvialink %t\ncheck %t\npolicy %d\nrcn %t\nselective %t\nhistsize %d\nmrai %d\nmraijitter %t\nlink %d %d\nproc %d %d\nseed %d\n",
		s.ISP, interval, s.FlapViaLink, s.Check, cfg.Policy, cfg.EnableRCN,
		cfg.SelectiveDamping, cfg.RCNHistorySize, cfg.MRAI, cfg.MRAIJitter,
		cfg.MinLinkDelay, cfg.MaxLinkDelay, cfg.MinProcDelay, cfg.MaxProcDelay,
		cfg.Seed)
	if d := cfg.Damping; d != nil {
		fmt.Fprintf(h, "damping %g %g %g %g %g %d %d\n",
			d.WithdrawalPenalty, d.ReannouncementPenalty, d.AttrChangePenalty,
			d.CutoffThreshold, d.ReuseThreshold, d.HalfLife, d.MaxHoldDown)
	}
	// Written only for non-default engines, so every fingerprint minted
	// before the engine knob existed stays valid. The wheel geometry
	// changes quantized results, so it is folded in (post-normalization:
	// an explicit default config and the zero value are the same run).
	if cfg.DampingEngine != damping.EngineExact {
		wc := cfg.WheelConfig.WithDefaults()
		fmt.Fprintf(h, "dampingengine %d %d %d %d\n",
			cfg.DampingEngine, wc.DeltaT, wc.DeltaTReuse, wc.MaxLists)
	}
	for _, w := range s.Watch {
		fmt.Fprintf(h, "watch %d %d\n", w.Router, w.Peer)
	}
	return hex.EncodeToString(h.Sum(nil)), true
}

// ResultStore is a persistent layer under the in-memory RunCache: Load is
// consulted on every in-memory miss (by the claiming owner, so singleflight
// semantics extend to disk reads), and Store is offered every freshly
// computed Result. Implementations must be safe for concurrent use and must
// treat stored Results as immutable. experiment/diskcache provides the
// on-disk implementation; both methods are best-effort — a Load error is
// treated as a miss and a Store error only surfaces in the stats.
type ResultStore interface {
	Load(key string) (*Result, bool, error)
	Store(key string, res *Result) error
}

// cacheEntry is one singleflight slot: the claimant runs the scenario and
// closes done; everyone else waits on done and reads res/err.
type cacheEntry struct {
	done chan struct{}
	res  *Result
	err  error
}

// cachedRunner executes a cache miss. It is a variable so the robustness
// tests can inject transient failures and panics with a stable fingerprint —
// something no real (deterministic) scenario can produce on demand.
var cachedRunner = RunContext

// RunCache deduplicates runs by scenario fingerprint: the first request for
// a fingerprint executes it, concurrent requests for the same fingerprint
// wait for that execution (singleflight), and later requests return the
// cached Result immediately. rfdfig uses one cache across all figures, which
// share scenarios (e.g. the undamped mesh baseline appears in the Eval sweep
// and as Fig 10/15 inputs); rfdd shares one across all requests, layered
// over a persistent ResultStore.
//
// Failures are never cached: an entry whose run errors (or panics, or is
// cancelled) is evicted before its waiters are released, so the next request
// for that fingerprint retries instead of replaying a possibly transient
// error forever. Owners release their waiters via defer — a panicking run
// unblocks everyone with a *PanicError instead of deadlocking them.
//
// Cached Results are shared between callers and must be treated as
// read-only. Scenarios whose Fingerprint reports ok=false (trace logs,
// impairments, fault plans, watchdogs, damping selectors) bypass the cache
// and always run. A nil *RunCache is valid and bypasses caching entirely.
type RunCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	store   ResultStore
	pool    *CheckpointPool

	hits, misses, uncached    uint64
	diskHits, diskStoreErrors uint64
}

// NewRunCache returns an empty cache.
func NewRunCache() *RunCache {
	return &RunCache{entries: make(map[string]*cacheEntry)}
}

// SetStore layers a persistent store under the cache (nil detaches it).
// Entries already resident in memory are unaffected.
func (c *RunCache) SetStore(s ResultStore) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.store = s
}

// SetCheckpointPool layers a converged-snapshot pool under the cache (nil
// detaches it): cache misses then fork a pooled warm-up checkpoint instead of
// re-converging from scratch. Results are identical either way — checkpoint
// forks are pinned byte-identical to from-scratch runs — so the pool is a
// pure execution optimization, invisible to cache keys and stored Results.
func (c *RunCache) SetCheckpointPool(p *CheckpointPool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pool = p
}

// checkpointPool returns the layered pool (nil-safe).
func (c *RunCache) checkpointPool() *CheckpointPool {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pool
}

// Stats reports how many Run/Sweep points were served from cache (hits),
// executed and stored (misses), and executed uncached because the scenario
// has no fingerprint (uncacheable). In-memory misses that a persistent store
// satisfied count as misses here and as hits in StoreStats.
func (c *RunCache) Stats() (hits, misses, uncacheable uint64) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.uncached
}

// StoreStats reports the persistent layer's traffic: in-memory misses served
// from the store, and Store calls that failed (failures are logged in the
// stats only — a broken disk must not fail runs).
func (c *RunCache) StoreStats() (storeHits, storeErrors uint64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.diskHits, c.diskStoreErrors
}

// claim returns the entry for key and whether this caller owns its
// execution (true exactly once per key while the entry lives).
func (c *RunCache) claim(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, found := c.entries[key]; found {
		c.hits++
		return e, false
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	return e, true
}

// evict removes key's entry if it is still e — a failed execution must not
// negative-cache, so the next claim retries the scenario.
func (c *RunCache) evict(key string, e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries[key] == e {
		delete(c.entries, key)
	}
}

// finish resolves an owned entry: on failure the entry is evicted (no
// negative caching), on success it is offered to the persistent store; either
// way the waiters are released. It runs from the owner's defer so a panic in
// the run still unblocks every waiter.
func (c *RunCache) finish(key string, e *cacheEntry) {
	if e.err != nil {
		c.evict(key, e)
	} else if e.res != nil && !e.res.fromStore {
		c.storeResult(key, e.res)
	}
	close(e.done)
}

// loadStored consults the persistent store for key (nil-safe).
func (c *RunCache) loadStored(key string) (*Result, bool) {
	c.mu.Lock()
	store := c.store
	c.mu.Unlock()
	if store == nil {
		return nil, false
	}
	res, ok, err := store.Load(key)
	if err != nil || !ok || res == nil {
		return nil, false
	}
	res.fromStore = true
	c.mu.Lock()
	c.diskHits++
	c.mu.Unlock()
	return res, true
}

// storeResult offers a fresh Result to the persistent store (nil-safe,
// best-effort).
func (c *RunCache) storeResult(key string, res *Result) {
	c.mu.Lock()
	store := c.store
	c.mu.Unlock()
	if store == nil {
		return
	}
	if err := store.Store(key, res); err != nil {
		c.mu.Lock()
		c.diskStoreErrors++
		c.mu.Unlock()
	}
}

// Run executes the scenario through the cache: a fingerprint hit returns the
// cached (shared, read-only) Result, a miss runs and stores it, and
// unfingerprintable scenarios fall through to a plain Run.
func (c *RunCache) Run(sc Scenario) (*Result, error) {
	return c.RunContext(context.Background(), sc)
}

// RunContext is Run under a supervising context. The owner of a miss runs
// with ctx; waiters stop waiting when their own ctx trips (the claimed
// execution keeps running for whoever else wants it). A cancelled or failed
// execution is evicted, never negative-cached.
func (c *RunCache) RunContext(ctx context.Context, sc Scenario) (res *Result, err error) {
	key, ok := sc.Fingerprint()
	if c == nil || !ok {
		if c != nil {
			c.mu.Lock()
			c.uncached++
			c.mu.Unlock()
		}
		return cachedRunner(ctx, sc)
	}
	e, owner := c.claim(key)
	if !owner {
		select {
		case <-e.done:
			return e.res, e.err
		case <-ctx.Done():
			return nil, ctxErr(ctx)
		}
	}
	defer func() {
		if r := recover(); r != nil {
			e.err = &PanicError{Value: r, Fingerprint: key, Stack: stackTrace()}
			e.res = nil
			res, err = nil, e.err
		}
		c.finish(key, e)
	}()
	if stored, ok := c.loadStored(key); ok {
		e.res = stored
	} else if pool := c.checkpointPool(); pool != nil {
		e.res, e.err = runPooled(ctx, pool, sc)
	} else {
		e.res, e.err = cachedRunner(ctx, sc)
	}
	return e.res, e.err
}

// runPooled executes a cache miss by forking a pooled warm-up checkpoint —
// byte-identical to a from-scratch run, minus the warm-up when the pool is
// warm.
func runPooled(ctx context.Context, pool *CheckpointPool, sc Scenario) (*Result, error) {
	cp, err := pool.Get(ctx, sc)
	if err != nil {
		return nil, err
	}
	return cp.RunContext(ctx, sc)
}

// Sweep is SweepParallel through the cache; see SweepContext.
func (c *RunCache) Sweep(base Scenario, pulses []int, workers int) ([]SweepPoint, error) {
	return c.SweepContext(context.Background(), base, pulses, workers)
}

// SweepContext is SweepParallelContext through the cache: points whose
// fingerprint is already cached (in memory or in the persistent store, or
// claimed by a concurrent caller) are not re-run; only the missing pulse
// counts execute, as one fork-amortized parallel sweep. Failure is per-point
// exactly as in SweepParallelContext — a failed or cancelled point carries
// its error, is evicted from the cache (so a retry re-runs it), and never
// discards the other points. Unfingerprintable scenarios fall through to a
// plain SweepParallelContext.
func (c *RunCache) SweepContext(ctx context.Context, base Scenario, pulses []int, workers int) ([]SweepPoint, error) {
	if c == nil {
		return SweepParallelContext(ctx, base, pulses, workers)
	}
	baseKey, ok := base.fingerprintBase()
	if !ok {
		c.mu.Lock()
		c.uncached += uint64(len(pulses))
		c.mu.Unlock()
		return SweepParallelContext(ctx, base, pulses, workers)
	}
	pr := progressFrom(ctx)
	keys := make([]string, len(pulses))
	entries := make([]*cacheEntry, len(pulses))
	// live marks the points this call claimed and will execute itself; every
	// other point resolves without running here (an in-memory or stored hit,
	// or a concurrent caller's execution) and reports CacheHit instead of the
	// live Queued/Started/Done sequence.
	live := make([]bool, len(pulses))
	var missPulses []int
	var missKeys []string
	var missEntries []*cacheEntry
	for i, n := range pulses {
		keys[i] = fmt.Sprintf("%s:p%d", baseKey, n)
		e, owner := c.claim(keys[i])
		entries[i] = e
		if !owner {
			continue
		}
		if stored, ok := c.loadStored(keys[i]); ok {
			e.res = stored
			c.finish(keys[i], e)
			continue
		}
		live[i] = true
		missPulses = append(missPulses, n)
		missKeys = append(missKeys, keys[i])
		missEntries = append(missEntries, e)
	}
	if len(missPulses) > 0 {
		// Release every claimed entry via defer: a panic on the sweep path
		// must unblock concurrent waiters, not hang them.
		released := false
		release := func(panicked any) {
			released = true
			for j, e := range missEntries {
				if e.res == nil && e.err == nil {
					if panicked != nil {
						e.err = &PanicError{Value: panicked, Fingerprint: missKeys[j], Stack: stackTrace()}
					} else {
						e.err = fmt.Errorf("experiment: sweep did not produce n=%d", missPulses[j])
					}
				}
				c.finish(missKeys[j], e)
			}
		}
		defer func() {
			if released {
				return
			}
			var panicked any
			if r := recover(); r != nil {
				panicked = r
				release(panicked)
				panic(r)
			}
			release(nil)
		}()
		// With a pool, the sweep's one warm-up comes from (and stays in) the
		// pool, so repeat sweeps of the same scenario skip it entirely.
		var pts []SweepPoint
		var err error
		if pool := c.checkpointPool(); pool != nil {
			var cp *Checkpoint
			if cp, err = pool.Get(ctx, base); err == nil {
				pts, err = sweepCheckpointed(ctx, cp, base, missPulses, workers)
			}
		} else {
			pts, err = SweepParallelContext(ctx, base, missPulses, workers)
		}
		if err == nil || pts != nil {
			for j, e := range missEntries {
				e.res, e.err = pts[j].Result, pts[j].Err
			}
		} else {
			// Sweep-level failure before any point ran (e.g. the shared
			// warm-up): every claimed point fails with it.
			for _, e := range missEntries {
				e.err = err
			}
		}
		release(nil)
	}
	out := make([]SweepPoint, len(pulses))
	errs := make([]error, 0, len(pulses))
	for i, e := range entries {
		out[i].Pulses = pulses[i]
		// Prefer a resolved entry over a tripped context: after a mid-flight
		// cancel both channels may be ready, and the entry's own outcome (a
		// result, a panic, the point-level cancel) is the truer diagnosis.
		select {
		case <-e.done:
			out[i].Result, out[i].Err = e.res, e.err
		default:
			select {
			case <-e.done:
				out[i].Result, out[i].Err = e.res, e.err
			case <-ctx.Done():
				out[i].Err = ctxErr(ctx)
			}
		}
		if out[i].Err != nil {
			// Keep the pulse count in the diagnosis; points that already
			// carry it (the sweep's own errors) are left as-is.
			if _, isPanic := out[i].Err.(*PanicError); isPanic {
				out[i].Err = fmt.Errorf("experiment: sweep n=%d: %w", pulses[i], out[i].Err)
			}
			errs = append(errs, out[i].Err)
		}
		if !live[i] {
			pr.cacheHit(out[i])
		}
	}
	return out, errors.Join(errs...)
}
