package experiment

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func poolScenario(t *testing.T, seed uint64) Scenario {
	t.Helper()
	cfg := dampingCfg()
	cfg.Seed = seed
	return Scenario{Graph: smallMesh(t), ISP: 0, Config: cfg, Pulses: 2}
}

// TestCheckpointPoolSingleflight pins the pool's population contract: N
// concurrent requests for the same warm-up identity converge on exactly one
// convergence run, and every caller gets the same shared checkpoint.
func TestCheckpointPoolSingleflight(t *testing.T) {
	pool := NewCheckpointPool(4)
	sc := poolScenario(t, 1)
	const callers = 8
	got := make([]*Checkpoint, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cp, err := pool.Get(context.Background(), sc)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = cp
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i := 1; i < callers; i++ {
		if got[i] != got[0] {
			t.Fatalf("caller %d got a different checkpoint instance", i)
		}
	}
	hits, misses, _ := pool.Stats()
	if misses != 1 || hits != callers-1 {
		t.Fatalf("stats hits=%d misses=%d, want %d/1", hits, misses, callers-1)
	}
	if pool.Len() != 1 {
		t.Fatalf("pool holds %d entries, want 1", pool.Len())
	}

	// The pooled checkpoint must behave exactly like a fresh one.
	want, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := got[0].Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, want, res)
}

// TestCheckpointPoolLRUEviction pins the bound: a full pool evicts the least
// recently used checkpoint, and an evicted identity re-converges on its next
// request.
func TestCheckpointPoolLRUEviction(t *testing.T) {
	pool := NewCheckpointPool(2)
	ctx := context.Background()
	a, b, c := poolScenario(t, 1), poolScenario(t, 2), poolScenario(t, 3)
	for _, sc := range []Scenario{a, b, c} {
		if _, err := pool.Get(ctx, sc); err != nil {
			t.Fatal(err)
		}
	}
	if pool.Len() != 2 {
		t.Fatalf("pool holds %d entries, want 2", pool.Len())
	}
	if _, _, evictions := pool.Stats(); evictions != 1 {
		t.Fatalf("evictions = %d, want 1", evictions)
	}
	// b and c are resident; a (the LRU victim) must re-converge.
	for _, sc := range []Scenario{b, c} {
		if _, err := pool.Get(ctx, sc); err != nil {
			t.Fatal(err)
		}
	}
	_, missesBefore, _ := pool.Stats()
	if _, err := pool.Get(ctx, a); err != nil {
		t.Fatal(err)
	}
	if _, misses, _ := pool.Stats(); misses != missesBefore+1 {
		t.Fatalf("evicted identity did not re-converge: misses %d -> %d", missesBefore, misses)
	}
}

// TestCheckpointPoolErrorNotCached pins the no-negative-caching rule: a
// failed warm-up leaves no pool entry, so the next request retries.
func TestCheckpointPoolErrorNotCached(t *testing.T) {
	pool := NewCheckpointPool(4)
	sc := poolScenario(t, 1)
	sc.Shards = -1 // fingerprints fine, fails validation at warm-up
	for i := 0; i < 2; i++ {
		if _, err := pool.Get(context.Background(), sc); err == nil {
			t.Fatal("invalid scenario converged")
		}
	}
	if pool.Len() != 0 {
		t.Fatalf("failed population left %d pool entries", pool.Len())
	}
	if _, misses, _ := pool.Stats(); misses != 2 {
		t.Fatalf("misses = %d, want 2 (no negative caching)", misses)
	}
}

// TestCheckpointPoolChaos hammers a small pool from many goroutines across
// more identities than it can hold — constant hits, misses and evictions
// interleaving — and checks every run against its reference Result. Run under
// -race this is the pool's data-race certificate.
func TestCheckpointPoolChaos(t *testing.T) {
	const identities = 5
	scenarios := make([]Scenario, identities)
	refs := make([]*Result, identities)
	for i := range scenarios {
		scenarios[i] = poolScenario(t, uint64(i+1))
		scenarios[i].Pulses = 1
		ref, err := Run(scenarios[i])
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref
	}
	pool := NewCheckpointPool(2)
	ctx := context.Background()
	const workers = 8
	const iters = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := (w*iters + i*3) % identities // deterministic interleave, no two workers in phase
				cp, err := pool.Get(ctx, scenarios[id])
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				res, err := cp.RunContext(ctx, scenarios[id])
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if res.MessageCount != refs[id].MessageCount || res.ConvergenceTime != refs[id].ConvergenceTime {
					t.Errorf("worker %d identity %d: pooled run diverged (%d msgs %v vs %d msgs %v)",
						w, id, res.MessageCount, res.ConvergenceTime, refs[id].MessageCount, refs[id].ConvergenceTime)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if pool.Len() > 2 {
		t.Fatalf("pool overflowed its bound: %d entries", pool.Len())
	}
	hits, misses, evictions := pool.Stats()
	if hits+misses != workers*iters {
		t.Fatalf("stats leak: hits %d + misses %d != %d gets", hits, misses, workers*iters)
	}
	if evictions == 0 {
		t.Fatal("chaos never evicted; the test is not exercising the bound")
	}
}

// TestRunCachePooledRun pins the RunCache integration: with a pool layered
// under the cache, a second cache miss sharing the warm-up forks the pooled
// checkpoint (a snapshot hit) and still produces the reference Result.
func TestRunCachePooledRun(t *testing.T) {
	base := poolScenario(t, 1)
	want2, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	sc3 := base
	sc3.Pulses = 3
	want3, err := Run(sc3)
	if err != nil {
		t.Fatal(err)
	}

	c := NewRunCache()
	pool := NewCheckpointPool(4)
	c.SetCheckpointPool(pool)
	got2, err := c.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	got3, err := c.Run(sc3)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, want2, got2)
	assertResultsEqual(t, want3, got3)
	if hits, misses, _ := pool.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("pool stats hits=%d misses=%d, want 1/1 (second run reuses the warm-up)", hits, misses)
	}
	// A cache hit never touches the pool.
	if _, err := c.Run(base); err != nil {
		t.Fatal(err)
	}
	if hits, misses, _ := pool.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("cache hit leaked into the pool: hits=%d misses=%d", hits, misses)
	}
}

// TestRunCachePooledSweep pins the sweep path: a cached sweep with a pool
// builds (or reuses) one pooled warm-up for all its miss points, and a repeat
// sweep with fresh pulse counts is a pure snapshot hit.
func TestRunCachePooledSweep(t *testing.T) {
	base := poolScenario(t, 1)
	ref, err := SweepParallel(base, []int{0, 1, 2, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}

	c := NewRunCache()
	pool := NewCheckpointPool(4)
	c.SetCheckpointPool(pool)
	got, err := c.Sweep(base, []int{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := c.Sweep(base, []int{2, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range append(got, got2...) {
		assertResultsEqual(t, ref[i].Result, pt.Result)
	}
	if hits, misses, _ := pool.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("pool stats hits=%d misses=%d, want 1/1 (second sweep skips warm-up)", hits, misses)
	}
}

// TestRunCacheCrossEngineCheckpoints pins the cache-identity design across
// engines now that both fork checkpoints: fingerprints ignore Shards, so a
// point computed via sharded fork is a cache hit for a sequential request and
// vice versa — even though their checkpoints pool under distinct keys.
func TestRunCacheCrossEngineCheckpoints(t *testing.T) {
	base := poolScenario(t, 1)
	sharded := base
	sharded.Shards = 2

	t.Run("sharded-then-sequential", func(t *testing.T) {
		c := NewRunCache()
		c.SetCheckpointPool(NewCheckpointPool(4))
		first, err := c.Run(sharded)
		if err != nil {
			t.Fatal(err)
		}
		second, err := c.Run(base)
		if err != nil {
			t.Fatal(err)
		}
		if first != second {
			t.Fatal("sequential request missed the sharded-computed entry")
		}
		if hits, misses, _ := c.Stats(); hits != 1 || misses != 1 {
			t.Fatalf("cache stats hits=%d misses=%d, want 1/1", hits, misses)
		}
	})
	t.Run("sequential-then-sharded", func(t *testing.T) {
		c := NewRunCache()
		c.SetCheckpointPool(NewCheckpointPool(4))
		first, err := c.Run(base)
		if err != nil {
			t.Fatal(err)
		}
		second, err := c.Run(sharded)
		if err != nil {
			t.Fatal(err)
		}
		if first != second {
			t.Fatal("sharded request missed the sequentially-computed entry")
		}
		if hits, misses, _ := c.Stats(); hits != 1 || misses != 1 {
			t.Fatalf("cache stats hits=%d misses=%d, want 1/1", hits, misses)
		}
	})
	// The pool, unlike the cache, must keep the engines apart: parked kernel
	// state is engine-specific even when the Results are interchangeable.
	t.Run("pool-keys-distinct", func(t *testing.T) {
		seqKey, ok1 := base.poolKey()
		shKey, ok2 := sharded.poolKey()
		if !ok1 || !ok2 {
			t.Fatal("unpoolable scenarios")
		}
		if seqKey == shKey {
			t.Fatal("sequential and sharded warm-ups share a pool key")
		}
	})
}

// TestSweepShardedForksPerPoint is the regression test for the silent
// from-scratch fallback sharded sweeps used to take: every sharded sweep
// point must now run through the fork-per-point runner on a sharded
// checkpoint, and the points must match from-scratch sharded runs.
func TestSweepShardedForksPerPoint(t *testing.T) {
	var forked atomic.Int32
	old := pointRunner
	pointRunner = func(ctx context.Context, cp *Checkpoint, sc Scenario) (*Result, error) {
		if cp.Shards() != sc.Shards {
			return nil, fmt.Errorf("point n=%d forked a Shards=%d checkpoint for a Shards=%d scenario", sc.Pulses, cp.Shards(), sc.Shards)
		}
		forked.Add(1)
		return cp.RunContext(ctx, sc)
	}
	defer func() { pointRunner = old }()

	base := poolScenario(t, 1)
	base.Shards = 2
	pulses := []int{0, 1, 2}
	pts, err := SweepParallel(base, pulses, 2)
	if err != nil {
		t.Fatal(err)
	}
	if int(forked.Load()) != len(pulses) {
		t.Fatalf("forked %d points, want %d (sharded sweep fell back to from-scratch runs)", forked.Load(), len(pulses))
	}
	for _, pt := range pts {
		sc := base
		sc.Pulses = pt.Pulses
		want, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		assertResultsEqual(t, want, pt.Result)
	}
}
