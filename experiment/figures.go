package experiment

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"rfd/analytic"
	"rfd/bgp"
	"rfd/damping"
	"rfd/metrics"
	"rfd/topology"
)

// Options sizes the paper-figure experiments. DefaultOptions matches the
// paper (100-node mesh / Internet-derived topologies, 208 nodes for the
// policy study, pulses 0..10, 60 s flapping interval); tests shrink them.
type Options struct {
	// MeshRows and MeshCols size the torus (paper: 10×10 = 100 nodes).
	MeshRows, MeshCols int
	// InternetNodes sizes the Internet-derived topology for Figs 8/9/13/14.
	InternetNodes int
	// PolicyNodes sizes the Internet-derived topology for Fig 15.
	PolicyNodes int
	// MaxPulses is the largest pulse count swept (paper: 10).
	MaxPulses int
	// FlapInterval is the flapping interval (paper: 60 s).
	FlapInterval time.Duration
	// Seed drives topology generation and protocol randomness.
	Seed uint64
	// Workers bounds the number of concurrent runs in sweeps
	// (runtime.NumCPU() when 0).
	Workers int
	// Cache, when non-nil, dedupes identical runs across figures: scenarios
	// shared between figures (the undamped mesh baseline, the damped sweeps)
	// execute once and are served from cache afterwards.
	Cache *RunCache
	// Check runs every scenario under the runtime invariant checker
	// (Scenario.Check). Figures come out identical — the checker only
	// observes — but any invariant violation fails the figure loudly.
	Check bool
	// DampingEngine selects the damping backend for every run (see
	// bgp.Config.DampingEngine). The zero value is the exact reference
	// engine; damping.EngineWheel switches to the timer-wheel backend and
	// makes every run cache-distinct from its exact-engine twin.
	DampingEngine damping.EngineKind
	// Shards, when > 1, runs every figure scenario on the sharded engine
	// (Scenario.Shards). Figures come out identical — the shard count is an
	// execution detail, not a simulation input — but sharded sweeps run each
	// point from scratch instead of forking a shared warm-up checkpoint.
	// Incompatible with Check (the invariant checker is sequential-engine).
	Shards int
	// Ctx, when non-nil, supervises every run and sweep the figure executes:
	// cancelling it stops the figure with a typed ErrCanceled, a deadline
	// with ErrBudgetExceeded. Nil means context.Background(). An un-tripped
	// context leaves every figure byte-identical.
	Ctx context.Context
}

// DefaultOptions returns the paper-scale settings.
func DefaultOptions() Options {
	return Options{
		MeshRows:      10,
		MeshCols:      10,
		InternetNodes: 100,
		PolicyNodes:   208,
		MaxPulses:     10,
		FlapInterval:  DefaultFlapInterval,
		Seed:          1,
	}
}

// workers resolves the worker bound.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

// ctx resolves the supervising context.
func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// sweep runs a pulse sweep honoring the options' context, worker bound and
// run cache.
func (o Options) sweep(base Scenario, pulses []int) ([]SweepPoint, error) {
	if o.Cache != nil {
		return o.Cache.SweepContext(o.ctx(), base, pulses, o.workers())
	}
	return SweepParallelContext(o.ctx(), base, pulses, o.workers())
}

// run executes one scenario through the options' run cache when set.
func (o Options) run(sc Scenario) (*Result, error) {
	if o.Cache != nil {
		return o.Cache.RunContext(o.ctx(), sc)
	}
	return RunContext(o.ctx(), sc)
}

// baseConfig returns the protocol configuration shared by all runs.
func (o Options) baseConfig() bgp.Config {
	cfg := bgp.DefaultConfig()
	cfg.Seed = o.Seed
	cfg.DampingEngine = o.DampingEngine
	return cfg
}

// dampingConfig returns baseConfig with Cisco-default damping enabled
// ("full damping": every router damps, Section 5.1).
func (o Options) dampingConfig() bgp.Config {
	cfg := o.baseConfig()
	params := damping.Cisco()
	cfg.Damping = &params
	return cfg
}

// rcnConfig returns dampingConfig with RCN-enhanced damping.
func (o Options) rcnConfig() bgp.Config {
	cfg := o.dampingConfig()
	cfg.EnableRCN = true
	return cfg
}

// meshScenario builds the torus scenario. All torus nodes are topologically
// equal, so the ispAS choice (node 0) is without loss of generality.
func (o Options) meshScenario(cfg bgp.Config) (Scenario, error) {
	g, err := topology.Torus(o.MeshRows, o.MeshCols)
	if err != nil {
		return Scenario{}, err
	}
	return Scenario{Graph: g, ISP: 0, Config: cfg, FlapInterval: o.FlapInterval, Check: o.Check, Shards: o.Shards}, nil
}

// internetScenario builds the Internet-derived scenario with the given node
// count. The ispAS is a deterministic mid-ID node (stand-in for the paper's
// random selection).
func (o Options) internetScenario(cfg bgp.Config, nodes int, policy bgp.Policy) (Scenario, error) {
	g, err := topology.InternetDerived(topology.DefaultInternetConfig(nodes, o.Seed))
	if err != nil {
		return Scenario{}, err
	}
	cfg.Policy = policy
	return Scenario{Graph: g, ISP: topology.NodeID(nodes / 2), Config: cfg, FlapInterval: o.FlapInterval, Check: o.Check, Shards: o.Shards}, nil
}

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

// Table1Row is one row of the paper's Table 1.
type Table1Row struct {
	Parameter      string
	Cisco, Juniper string
}

// Table1 returns the default damping parameters exactly as Table 1 lists
// them.
func Table1() []Table1Row {
	c, j := damping.Cisco(), damping.Juniper()
	f := func(v float64) string { return fmt.Sprintf("%.0f", v) }
	m := func(d time.Duration) string { return fmt.Sprintf("%.0f", d.Minutes()) }
	return []Table1Row{
		{"Withdrawal Penalty (PW)", f(c.WithdrawalPenalty), f(j.WithdrawalPenalty)},
		{"Re-announcement Penalty (PA)", f(c.ReannouncementPenalty), f(j.ReannouncementPenalty)},
		{"Attributes Change Penalty", f(c.AttrChangePenalty), f(j.AttrChangePenalty)},
		{"Cut-off Threshold (Pcut)", f(c.CutoffThreshold), f(j.CutoffThreshold)},
		{"Half Life (minute) (H)", m(c.HalfLife), m(j.HalfLife)},
		{"Reuse Threshold (Preuse)", f(c.ReuseThreshold), f(j.ReuseThreshold)},
		{"Max Hold-down Time (minute)", m(c.MaxHoldDown), m(j.MaxHoldDown)},
	}
}

// ---------------------------------------------------------------------------
// Figure 3 — example penalty curve
// ---------------------------------------------------------------------------

// Fig3Data is the analytic penalty trace of Figure 3: a router's penalty
// responding to a few flaps under Cisco default parameters, against the
// cut-off and reuse thresholds.
type Fig3Data struct {
	Trace           []analytic.PenaltyTracePoint
	Cutoff, Reuse   float64
	SuppressedSince time.Duration // first instant above the cut-off
	ReusedAt        time.Duration // when the reuse timer would fire
}

// Fig3 computes the Figure 3 trace: three quick pulses at the paper's 60 s
// interval, observed for 44 minutes (the figure's 2640 s x-axis).
func Fig3(o Options) (*Fig3Data, error) {
	params := damping.Cisco()
	events := analytic.PulseTrain(3, o.FlapInterval)
	trace, err := analytic.PenaltyTrace(params, events, 2640*time.Second, 10*time.Second)
	if err != nil {
		return nil, err
	}
	data := &Fig3Data{
		Trace:  trace,
		Cutoff: params.CutoffThreshold,
		Reuse:  params.ReuseThreshold,
	}
	pred, err := analytic.Predict(params, events, 0)
	if err != nil {
		return nil, err
	}
	if pred.Suppressed {
		last := events[len(events)-1].At
		data.ReusedAt = last + pred.ReuseDelay
	}
	for _, p := range trace {
		if p.Penalty > params.CutoffThreshold {
			data.SuppressedSince = p.At
			break
		}
	}
	return data, nil
}

// ---------------------------------------------------------------------------
// Figure 7 — secondary charging penalty trace
// ---------------------------------------------------------------------------

// Fig7Data is the simulated penalty trace at a router 7 hops from the
// flapping origin after a single pulse with full damping: path exploration
// charges the penalty over the cut-off, then secondary charging pushes it up
// again each time other routers' reuse timers fire (Section 4.2).
type Fig7Data struct {
	// Watched identifies the (router, peer) whose trace is reported.
	Watched PenaltyWatch
	// Trace holds the penalty value after each charging update.
	Trace []analytic.PenaltyTracePoint
	// Recharges counts penalty increments that arrived while suppressed —
	// the secondary-charging events.
	Recharges int
	// Cutoff and Reuse are the thresholds, for plotting.
	Cutoff, Reuse float64
	// Result is the full run measurement.
	Result *Result
}

// Fig7 runs the single-pulse mesh scenario and records the damping penalty
// at a router 7 hops from the origin (as in the paper's Figure 7).
func Fig7(o Options) (*Fig7Data, error) {
	sc, err := o.meshScenario(o.dampingConfig())
	if err != nil {
		return nil, err
	}
	// 7 hops from the origin = 6 hops from the ispAS (+1 for the origin
	// link). Watch every peer of every such router and report the richest
	// trace. On meshes smaller than the paper's, fall back to the farthest
	// routers available.
	hops := 6
	if ecc := sc.Graph.Eccentricity(sc.ISP); ecc < hops {
		hops = ecc
	}
	candidates := sc.Graph.NodesAtDistance(sc.ISP, hops)
	if len(candidates) == 0 {
		return nil, fmt.Errorf("experiment: no router %d hops from ispAS on this mesh", hops)
	}
	for _, router := range candidates {
		for _, peer := range sc.Graph.Neighbors(router) {
			sc.Watch = append(sc.Watch, PenaltyWatch{Router: router, Peer: peer})
		}
	}
	sc.Pulses = 1
	res, err := o.run(sc)
	if err != nil {
		return nil, err
	}
	params := damping.Cisco()
	best := &Fig7Data{Cutoff: params.CutoffThreshold, Reuse: params.ReuseThreshold, Result: res}
	bestScore := -1
	var bestJumps []metrics.FloatPoint
	// Iterate in sc.Watch order, not map order: score ties must break
	// deterministically (the report names the winning pair).
	for _, w := range sc.Watch {
		tr, ok := res.PenaltyTraces[w]
		if !ok {
			continue
		}
		pts := tr.Points()
		if len(pts) == 0 {
			continue
		}
		// Score: the paper's Figure 7 trace (a) charges over the cut-off
		// during the initial charging phase and (b) is re-charged repeatedly
		// long after the flap (secondary charging).
		if pts[0].At > res.Phases.ChargingEnd+time.Minute {
			continue // did not participate in initial charging
		}
		score := 0
		for _, p := range pts {
			if p.Value > params.CutoffThreshold {
				score++
			}
			if p.At > res.FlapEnd+10*time.Minute {
				score += 2 // secondary charging long after the flap
			}
		}
		if score > bestScore {
			bestScore = score
			best.Watched = w
			bestJumps = pts
		}
	}
	if bestJumps == nil {
		// Fall back to the longest trace (tiny test topologies), again in
		// deterministic sc.Watch order.
		for _, w := range sc.Watch {
			if tr, ok := res.PenaltyTraces[w]; ok && tr.Len() > len(bestJumps) {
				best.Watched = w
				bestJumps = tr.Points()
			}
		}
	}
	best.Trace = expandSawtooth(params, bestJumps, res.EndTime, 10*time.Second)
	// Count recharges: increments after the charging phase ended.
	for _, p := range bestJumps {
		if p.At > res.Phases.ChargingEnd {
			best.Recharges++
		}
	}
	return best, nil
}

// expandSawtooth turns the post-update penalty jump points into a plottable
// curve by inserting exponential-decay samples between them.
func expandSawtooth(params damping.Params, jumps []metrics.FloatPoint, horizon, spacing time.Duration) []analytic.PenaltyTracePoint {
	var out []analytic.PenaltyTracePoint
	for i, j := range jumps {
		out = append(out, analytic.PenaltyTracePoint{At: j.At, Penalty: j.Value})
		end := horizon
		if i+1 < len(jumps) {
			end = jumps[i+1].At
		}
		for t := j.At + spacing; t < end; t += spacing {
			out = append(out, analytic.PenaltyTracePoint{
				At:      t,
				Penalty: params.Decay(j.Value, t-j.At),
			})
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Figures 8, 9, 13, 14 — convergence time and message count vs. pulses
// ---------------------------------------------------------------------------

// EvalRow is one pulse count's worth of the paper's headline comparison.
// Durations are virtual seconds; counts are update messages.
type EvalRow struct {
	Pulses int
	// NoDampingMeshConv / NoDampingMeshMsgs: plain BGP on the mesh.
	NoDampingMeshConv time.Duration
	NoDampingMeshMsgs int
	// DampingMeshConv / DampingMeshMsgs: full damping on the mesh.
	DampingMeshConv time.Duration
	DampingMeshMsgs int
	// DampingInternetConv / DampingInternetMsgs: full damping on the
	// Internet-derived topology.
	DampingInternetConv time.Duration
	DampingInternetMsgs int
	// RCNMeshConv / RCNMeshMsgs: RCN-enhanced damping on the mesh
	// (Figs 13/14).
	RCNMeshConv time.Duration
	RCNMeshMsgs int
	// CalcConv is the intended behaviour (Section 3 calculation).
	CalcConv time.Duration
}

// EvalData carries the full sweep behind Figs 8, 9, 13 and 14, plus the
// critical point Nh at which measured damping convergence first falls within
// 10 % of the calculation (the muffling-dominance point; the paper reports
// Nh = 5 for its setup).
type EvalData struct {
	Rows []EvalRow
	Nh   int
}

// Eval runs the four sweeps (no damping, damping mesh, damping Internet,
// RCN mesh) and evaluates the analytic curve, producing the data behind
// Figures 8, 9, 13 and 14 in one pass.
func Eval(o Options) (*EvalData, error) {
	pulses := PulseRange(0, o.MaxPulses)

	meshPlain, err := o.meshScenario(o.baseConfig())
	if err != nil {
		return nil, err
	}
	meshDamp, err := o.meshScenario(o.dampingConfig())
	if err != nil {
		return nil, err
	}
	meshRCN, err := o.meshScenario(o.rcnConfig())
	if err != nil {
		return nil, err
	}
	inetDamp, err := o.internetScenario(o.dampingConfig(), o.InternetNodes, bgp.ShortestPath)
	if err != nil {
		return nil, err
	}

	plain, err := o.sweep(meshPlain, pulses)
	if err != nil {
		return nil, err
	}
	damp, err := o.sweep(meshDamp, pulses)
	if err != nil {
		return nil, err
	}
	rcnRes, err := o.sweep(meshRCN, pulses)
	if err != nil {
		return nil, err
	}
	inet, err := o.sweep(inetDamp, pulses)
	if err != nil {
		return nil, err
	}

	// t_up for the calculation: the measured no-damping convergence of a
	// single pulse (ordinary BGP up-convergence).
	tup := time.Duration(0)
	if len(plain) > 1 {
		tup = plain[1].Result.ConvergenceTime
	}

	data := &EvalData{Rows: make([]EvalRow, len(pulses))}
	for i, n := range pulses {
		pred, err := analytic.PredictPulses(damping.Cisco(), n, o.FlapInterval, tup)
		if err != nil {
			return nil, err
		}
		data.Rows[i] = EvalRow{
			Pulses:              n,
			NoDampingMeshConv:   plain[i].Result.ConvergenceTime,
			NoDampingMeshMsgs:   plain[i].Result.MessageCount,
			DampingMeshConv:     damp[i].Result.ConvergenceTime,
			DampingMeshMsgs:     damp[i].Result.MessageCount,
			DampingInternetConv: inet[i].Result.ConvergenceTime,
			DampingInternetMsgs: inet[i].Result.MessageCount,
			RCNMeshConv:         rcnRes[i].Result.ConvergenceTime,
			RCNMeshMsgs:         rcnRes[i].Result.MessageCount,
			CalcConv:            pred.Convergence,
		}
	}
	data.Nh = criticalPoint(data.Rows)
	return data, nil
}

// analyticPrediction returns the Section 3 intended convergence time for n
// pulses at the given interval and t_up.
func analyticPrediction(n int, interval, tup time.Duration) (time.Duration, error) {
	pred, err := analytic.PredictPulses(damping.Cisco(), n, interval, tup)
	if err != nil {
		return 0, err
	}
	return pred.Convergence, nil
}

// criticalPoint finds the smallest pulse count >= 1 from which onward the
// measured mesh damping convergence stays within 10 % (or 60 s) of the
// calculation — the paper's Nh.
func criticalPoint(rows []EvalRow) int {
	matches := func(r EvalRow) bool {
		diff := r.DampingMeshConv - r.CalcConv
		if diff < 0 {
			diff = -diff
		}
		tol := time.Duration(float64(r.CalcConv) * 0.10)
		if tol < time.Minute {
			tol = time.Minute
		}
		return diff <= tol
	}
	for i := 0; i < len(rows); i++ {
		if rows[i].Pulses == 0 {
			continue
		}
		all := true
		for j := i; j < len(rows); j++ {
			if !matches(rows[j]) {
				all = false
				break
			}
		}
		if all {
			return rows[i].Pulses
		}
	}
	return -1
}

// ---------------------------------------------------------------------------
// Figure 10 — update series and damped-link count for n = 1, 3, 5
// ---------------------------------------------------------------------------

// Fig10Data bundles the three runs of Figure 10. Each Result carries the
// update series (bin with Updates.Bins, the paper uses 5 s bins) and the
// damped-link count step series.
type Fig10Data struct {
	// Runs maps the pulse count (1, 3, 5) to its result.
	Runs map[int]*Result
	// BinWidth is the paper's series resolution.
	BinWidth time.Duration
}

// Fig10 runs the mesh damping scenario for n = 1, 3 and 5 pulses.
func Fig10(o Options) (*Fig10Data, error) {
	sc, err := o.meshScenario(o.dampingConfig())
	if err != nil {
		return nil, err
	}
	points, err := o.sweep(sc, []int{1, 3, 5})
	if err != nil {
		return nil, err
	}
	data := &Fig10Data{Runs: make(map[int]*Result, 3), BinWidth: 5 * time.Second}
	for _, p := range points {
		data.Runs[p.Pulses] = p.Result
	}
	return data, nil
}

// ---------------------------------------------------------------------------
// Figure 15 — impact of routing policy
// ---------------------------------------------------------------------------

// Fig15Row is one pulse count of the policy comparison.
type Fig15Row struct {
	Pulses       int
	WithPolicy   time.Duration // no-valley policy convergence
	NoPolicy     time.Duration // shortest-path convergence
	Intended     time.Duration // Section 3 calculation
	PolicyMsgs   int
	NoPolicyMsgs int
}

// Fig15Data is the Figure 15 dataset: damping convergence with and without
// the no-valley routing policy on the Internet-derived topology.
type Fig15Data struct {
	Rows  []Fig15Row
	Nodes int
}

// Fig15 runs the Section 7 policy study on the PolicyNodes-sized
// Internet-derived topology.
func Fig15(o Options) (*Fig15Data, error) {
	pulses := PulseRange(0, o.MaxPulses)
	withPolicy, err := o.internetScenario(o.dampingConfig(), o.PolicyNodes, bgp.NoValley)
	if err != nil {
		return nil, err
	}
	noPolicy, err := o.internetScenario(o.dampingConfig(), o.PolicyNodes, bgp.ShortestPath)
	if err != nil {
		return nil, err
	}
	polRes, err := o.sweep(withPolicy, pulses)
	if err != nil {
		return nil, err
	}
	plainRes, err := o.sweep(noPolicy, pulses)
	if err != nil {
		return nil, err
	}
	// t_up for the calculation: ordinary (undamped) BGP up-convergence on
	// the same topology.
	undamped := withPolicy
	undamped.Config = o.baseConfig()
	undamped.Config.Policy = bgp.NoValley
	undamped.Pulses = 1
	plain1, err := o.run(undamped)
	if err != nil {
		return nil, err
	}
	tup := plain1.ConvergenceTime
	data := &Fig15Data{Nodes: o.PolicyNodes, Rows: make([]Fig15Row, len(pulses))}
	for i, n := range pulses {
		pred, err := analytic.PredictPulses(damping.Cisco(), n, o.FlapInterval, tup)
		if err != nil {
			return nil, err
		}
		data.Rows[i] = Fig15Row{
			Pulses:       n,
			WithPolicy:   polRes[i].Result.ConvergenceTime,
			NoPolicy:     plainRes[i].Result.ConvergenceTime,
			Intended:     pred.Convergence,
			PolicyMsgs:   polRes[i].Result.MessageCount,
			NoPolicyMsgs: plainRes[i].Result.MessageCount,
		}
	}
	return data, nil
}
