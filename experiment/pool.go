package experiment

import (
	"container/list"
	"context"
	"fmt"
	"sync"
)

// DefaultPoolSize is the checkpoint capacity NewCheckpointPool uses when
// given a non-positive bound.
const DefaultPoolSize = 16

// CheckpointPool caches converged warm-up checkpoints keyed by the scenario's
// warm-up identity (the SHA-256 fingerprint base — everything but the pulse
// count — plus the engine shard count, since a checkpoint parks
// engine-specific kernel state even though Result fingerprints deliberately
// ignore Shards). A hot scenario served repeatedly skips warm-up entirely:
// the first request converges and parks the snapshot, every later request —
// any pulse count, sweep or single run — forks it.
//
// Population is singleflight: concurrent requests for the same key converge
// on one warm-up, with waiters blocking on the owner (or their own context).
// Failed populations are never cached — the entry is removed before waiters
// are released, so the next request retries. Capacity is bounded with LRU
// eviction; eviction only drops the pool's reference, never invalidates a
// checkpoint already handed out (checkpoints are immutable and safe for
// concurrent forking), and entries still being populated are never evicted.
//
// A nil *CheckpointPool is valid and builds a fresh checkpoint per request.
type CheckpointPool struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element // value: *poolEntry
	lru     *list.List               // front = most recently used

	hits, misses, evictions uint64
}

// poolEntry is one singleflight slot: the owner converges the scenario,
// resolves cp/err, then closes done; everyone else waits on done.
type poolEntry struct {
	key      string
	done     chan struct{}
	cp       *Checkpoint
	err      error
	resolved bool // set under the pool mutex before done closes
}

// NewCheckpointPool returns an empty pool holding at most max checkpoints
// (DefaultPoolSize when max <= 0).
func NewCheckpointPool(max int) *CheckpointPool {
	if max <= 0 {
		max = DefaultPoolSize
	}
	return &CheckpointPool{
		max:     max,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// poolKey is the warm-up identity: the fingerprint base (topology, ISP,
// config, watch list — everything except the pulse count) plus the shard
// count the checkpoint would be built with. ok is false for scenarios whose
// identity cannot be captured by value (see Scenario.Fingerprint); those
// bypass the pool.
func (s Scenario) poolKey() (string, bool) {
	base, ok := s.fingerprintBase()
	if !ok {
		return "", false
	}
	shards := s.Shards
	if shards <= 1 {
		shards = 1
	}
	return fmt.Sprintf("%s:s%d", base, shards), true
}

// Get returns the pooled checkpoint for sc's warm-up, converging it if no one
// has yet (or if it was evicted). Unpoolable scenarios and a nil pool build a
// fresh checkpoint. The returned Checkpoint is shared — callers only fork it,
// which is safe concurrently.
func (p *CheckpointPool) Get(ctx context.Context, sc Scenario) (*Checkpoint, error) {
	if p == nil {
		return NewCheckpointContext(ctx, sc)
	}
	key, ok := sc.poolKey()
	if !ok {
		return NewCheckpointContext(ctx, sc)
	}
	p.mu.Lock()
	if el, found := p.entries[key]; found {
		e := el.Value.(*poolEntry)
		p.lru.MoveToFront(el)
		p.hits++
		p.mu.Unlock()
		select {
		case <-e.done:
			// Already-parked checkpoint: no warm-up happens (and none is
			// reported) on this request's behalf.
			return e.cp, e.err
		default:
		}
		// A concurrent request is converging this warm-up right now
		// (singleflight). The latency is real for this caller too, so its
		// Progress hook sees the warm-up even though another request runs it.
		pr := progressFrom(ctx)
		pr.warmupStarted()
		select {
		case <-e.done:
			if e.err == nil {
				pr.warmupDone()
			}
			return e.cp, e.err
		case <-ctx.Done():
			return nil, ctxErr(ctx)
		}
	}
	e := &poolEntry{key: key, done: make(chan struct{})}
	el := p.lru.PushFront(e)
	p.entries[key] = el
	p.misses++
	p.evictLocked()
	p.mu.Unlock()

	cp, err := NewCheckpointContext(ctx, sc)

	p.mu.Lock()
	e.cp, e.err = cp, err
	e.resolved = true
	if err != nil {
		// No negative caching: a failed (or cancelled) warm-up is removed so
		// the next request retries instead of replaying the error.
		if cur, found := p.entries[key]; found && cur == el {
			p.lru.Remove(el)
			delete(p.entries, key)
		}
	} else {
		p.evictLocked()
	}
	p.mu.Unlock()
	close(e.done)
	return cp, err
}

// evictLocked drops least-recently-used resolved entries until the pool fits
// its bound. Entries still populating are skipped: evicting one would let a
// concurrent request start a duplicate warm-up, so the pool instead overflows
// transiently until the population resolves.
func (p *CheckpointPool) evictLocked() {
	over := p.lru.Len() - p.max
	if over <= 0 {
		return
	}
	for el := p.lru.Back(); el != nil && over > 0; {
		prev := el.Prev()
		if e := el.Value.(*poolEntry); e.resolved {
			p.lru.Remove(el)
			delete(p.entries, e.key)
			p.evictions++
			over--
		}
		el = prev
	}
}

// Len returns the number of pooled (including populating) entries.
func (p *CheckpointPool) Len() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.Len()
}

// Stats reports how many Get calls found a pooled warm-up (hits — including
// waiters that joined an in-flight population), how many converged one
// (misses), and how many checkpoints LRU eviction dropped.
func (p *CheckpointPool) Stats() (hits, misses, evictions uint64) {
	if p == nil {
		return 0, 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses, p.evictions
}
