package experiment

import (
	"testing"
	"time"

	"rfd/bgp"
	"rfd/damping"
	"rfd/topology"
)

// testOptions shrinks everything so the full figure pipeline runs in CI time.
func testOptions() Options {
	return Options{
		MeshRows:      5,
		MeshCols:      5,
		InternetNodes: 30,
		PolicyNodes:   40,
		MaxPulses:     4,
		FlapInterval:  DefaultFlapInterval,
		Seed:          1,
	}
}

func smallMesh(t *testing.T) *topology.Graph {
	t.Helper()
	g, err := topology.Torus(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func dampingCfg() bgp.Config {
	cfg := bgp.DefaultConfig()
	params := damping.Cisco()
	cfg.Damping = &params
	return cfg
}

func TestScenarioValidation(t *testing.T) {
	g := smallMesh(t)
	cases := []struct {
		name string
		sc   Scenario
	}{
		{"nil graph", Scenario{Config: bgp.DefaultConfig()}},
		{"empty graph", Scenario{Graph: topology.New("e", 0), Config: bgp.DefaultConfig()}},
		{"isp out of range", Scenario{Graph: g, ISP: 999, Config: bgp.DefaultConfig()}},
		{"negative pulses", Scenario{Graph: g, Pulses: -1, Config: bgp.DefaultConfig()}},
		{"negative interval", Scenario{Graph: g, FlapInterval: -time.Second, Config: bgp.DefaultConfig()}},
		{"invalid config", Scenario{Graph: g, Config: bgp.Config{}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Run(c.sc); err == nil {
				t.Fatal("accepted")
			}
		})
	}
}

func TestRunDoesNotMutateCallerGraph(t *testing.T) {
	g := smallMesh(t)
	nodes, edges := g.NumNodes(), g.NumEdges()
	if _, err := Run(Scenario{Graph: g, ISP: 0, Config: bgp.DefaultConfig(), Pulses: 1}); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != nodes || g.NumEdges() != edges {
		t.Fatal("Run mutated the caller's graph")
	}
}

func TestRunZeroPulsesQuiescent(t *testing.T) {
	res, err := Run(Scenario{Graph: smallMesh(t), ISP: 0, Config: dampingCfg(), Pulses: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.MessageCount != 0 {
		t.Fatalf("messages = %d with zero pulses", res.MessageCount)
	}
	if res.ConvergenceTime != 0 {
		t.Fatalf("convergence = %v with zero pulses", res.ConvergenceTime)
	}
	if res.MaxDamped != 0 || res.OriginSuppressed {
		t.Fatal("damping activity with zero pulses")
	}
}

func TestRunSinglePulseDampedMesh(t *testing.T) {
	res, err := Run(Scenario{Graph: smallMesh(t), ISP: 0, Config: dampingCfg(), Pulses: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.OriginSuppressed {
		t.Fatal("single pulse suppressed the origin link")
	}
	if res.MaxDamped == 0 {
		t.Fatal("single pulse caused no false suppression")
	}
	if res.ConvergenceTime < 10*time.Minute {
		t.Fatalf("convergence %v; expected reuse-timer scale", res.ConvergenceTime)
	}
	if !res.Phases.HasRelease {
		t.Fatal("no releasing phase detected")
	}
	// Releasing dominates convergence for a single pulse (paper: ~70%).
	if f := res.Phases.ReleasingFraction(); f < 0.4 {
		t.Fatalf("releasing fraction %.2f; expected the releasing period to dominate", f)
	}
	if res.NoisyReuses == 0 {
		t.Fatal("no noisy reuses after single pulse")
	}
	// The run drains completely: damped series returns to zero.
	if got := res.Damped.ValueAt(res.EndTime); got != 0 {
		t.Fatalf("%d links still damped at end", got)
	}
}

func TestRunThreePulsesSuppressOrigin(t *testing.T) {
	res, err := Run(Scenario{Graph: smallMesh(t), ISP: 0, Config: dampingCfg(), Pulses: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OriginSuppressed {
		t.Fatal("origin link not suppressed after 3 pulses")
	}
}

func TestRunFlapTimesConsistent(t *testing.T) {
	res, err := Run(Scenario{Graph: smallMesh(t), ISP: 0, Config: dampingCfg(), Pulses: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.FlapEnd <= res.FlapStart {
		t.Fatalf("flap window [%v, %v] inverted", res.FlapStart, res.FlapEnd)
	}
	// W@0, A@60, W@120, A@180 relative to FlapStart.
	if got := res.FlapEnd - res.FlapStart; got != 180*time.Second {
		t.Fatalf("flap window length %v, want 180s", got)
	}
	if res.EndTime < res.FlapEnd {
		t.Fatal("end before flap end")
	}
}

func TestRunDeterministic(t *testing.T) {
	sc := Scenario{Graph: smallMesh(t), ISP: 0, Config: dampingCfg(), Pulses: 2}
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.ConvergenceTime != b.ConvergenceTime || a.MessageCount != b.MessageCount ||
		a.MaxDamped != b.MaxDamped || a.NoisyReuses != b.NoisyReuses {
		t.Fatalf("nondeterministic runs: %+v vs %+v", a, b)
	}
}

func TestRunPenaltyWatch(t *testing.T) {
	g := smallMesh(t)
	sc := Scenario{Graph: g, ISP: 0, Config: dampingCfg(), Pulses: 1}
	// Watch routers away from the ispAS. (The ispAS itself never hears this
	// prefix from its mesh peers — every path contains it, so loop filtering
	// silences its sessions; the interesting penalties build up remotely.)
	for _, router := range g.NodesAtDistance(0, 2) {
		for _, peer := range g.Neighbors(router) {
			sc.Watch = append(sc.Watch, PenaltyWatch{Router: router, Peer: peer})
		}
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	recorded := 0
	for _, tr := range res.PenaltyTraces {
		recorded += tr.Len()
	}
	if recorded == 0 {
		t.Fatal("penalty watch recorded nothing")
	}
}

func TestRunOriginWatch(t *testing.T) {
	g := smallMesh(t)
	sc := Scenario{Graph: g, ISP: 0, Config: dampingCfg(), Pulses: 3}
	w := PenaltyWatch{Router: 0, Peer: sc.OriginID()}
	sc.Watch = []PenaltyWatch{w}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.PenaltyTraces[w]
	if tr.Len() < 3 {
		t.Fatalf("origin-link trace has %d points, want >= 3 (one per withdrawal)", tr.Len())
	}
	if tr.Max() <= 2000 {
		t.Fatalf("origin-link penalty peaked at %v, want > cutoff", tr.Max())
	}
}

func TestFlapViaLinkEquivalence(t *testing.T) {
	// The literal link-flap model must show the same qualitative behaviour
	// as the origination toggle: origin suppressed at 3 pulses, false
	// suppression present, reuse-timer-scale convergence.
	run := func(viaLink bool, pulses int) *Result {
		res, err := Run(Scenario{
			Graph:       smallMesh(t),
			ISP:         0,
			Config:      dampingCfg(),
			Pulses:      pulses,
			FlapViaLink: viaLink,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, pulses := range []int{1, 3} {
		toggle := run(false, pulses)
		link := run(true, pulses)
		if toggle.OriginSuppressed != link.OriginSuppressed {
			t.Fatalf("n=%d: origin suppression differs: toggle=%t link=%t",
				pulses, toggle.OriginSuppressed, link.OriginSuppressed)
		}
		if (toggle.MaxDamped > 0) != (link.MaxDamped > 0) {
			t.Fatalf("n=%d: false suppression differs: %d vs %d",
				pulses, toggle.MaxDamped, link.MaxDamped)
		}
		// Same order of magnitude of convergence delay (both reuse-timer
		// driven).
		ratio := link.ConvergenceTime.Seconds() / toggle.ConvergenceTime.Seconds()
		if ratio < 0.3 || ratio > 3 {
			t.Fatalf("n=%d: convergence diverges: toggle %v, link %v",
				pulses, toggle.ConvergenceTime, link.ConvergenceTime)
		}
	}
}

func TestFlapViaLinkWithRCN(t *testing.T) {
	// RCN over the link-event cause path: one link flap, no suppression.
	cfg := dampingCfg()
	cfg.EnableRCN = true
	res, err := Run(Scenario{
		Graph:       smallMesh(t),
		ISP:         0,
		Config:      cfg,
		Pulses:      1,
		FlapViaLink: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxDamped != 0 {
		t.Fatalf("RCN link flap suppressed %d links", res.MaxDamped)
	}
	if res.ConvergenceTime > 10*time.Minute {
		t.Fatalf("RCN link-flap convergence %v", res.ConvergenceTime)
	}
}

func TestConvergenceSpread(t *testing.T) {
	res, err := Run(Scenario{Graph: smallMesh(t), ISP: 0, Config: dampingCfg(), Pulses: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LastUpdateByRouter) == 0 {
		t.Fatal("no per-router timestamps recorded")
	}
	spread := res.ConvergenceSpread()
	if spread.N == 0 {
		t.Fatal("empty spread")
	}
	// The slowest router defines the convergence time.
	if diff := spread.Max - res.ConvergenceTime.Seconds(); diff > 1 || diff < -1 {
		t.Fatalf("spread max %.0f != convergence %v", spread.Max, res.ConvergenceTime)
	}
	// Damping delay is uneven: the median router converges well before the
	// slowest (secondary charging keeps a tail of routers busy).
	if spread.Median >= spread.Max {
		t.Fatalf("median %.0f not below max %.0f", spread.Median, spread.Max)
	}
}

func TestSweepOrderAndParallel(t *testing.T) {
	sc := Scenario{Graph: smallMesh(t), ISP: 0, Config: bgp.DefaultConfig()}
	pulses := []int{2, 0, 1}
	seq, err := SweepParallel(sc, pulses, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := SweepParallel(sc, pulses, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pulses {
		if seq[i].Pulses != pulses[i] {
			t.Fatalf("sweep order broken: %d != %d", seq[i].Pulses, pulses[i])
		}
		if seq[i].Result.MessageCount != par[i].Result.MessageCount ||
			seq[i].Result.ConvergenceTime != par[i].Result.ConvergenceTime {
			t.Fatalf("parallel sweep diverges from sequential at n=%d", pulses[i])
		}
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	sc := Scenario{Graph: smallMesh(t), ISP: 999, Config: bgp.DefaultConfig()}
	if _, err := Sweep(sc, []int{0, 1}); err == nil {
		t.Fatal("sweep swallowed run error")
	}
}

func TestPulseRange(t *testing.T) {
	got := PulseRange(0, 3)
	if len(got) != 4 || got[0] != 0 || got[3] != 3 {
		t.Fatalf("PulseRange = %v", got)
	}
	if PulseRange(5, 4) != nil {
		t.Fatal("inverted range non-nil")
	}
}

func TestOriginID(t *testing.T) {
	g := smallMesh(t)
	sc := Scenario{Graph: g}
	if got := sc.OriginID(); got != bgp.RouterID(g.NumNodes()) {
		t.Fatalf("OriginID = %d", got)
	}
}
