package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteTable1CSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTable1CSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 8 {
		t.Fatalf("got %d lines, want header + 7 rows", len(lines))
	}
	if lines[0] != "parameter,cisco,juniper" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(buf.String(), `"Cut-off Threshold (Pcut)",2000,3000`) {
		t.Fatalf("missing cutoff row:\n%s", buf.String())
	}
}

func TestFig3CSV(t *testing.T) {
	data, err := Fig3(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := data.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "time_s,penalty,cutoff,reuse" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) < 100 {
		t.Fatalf("only %d lines; expected a dense trace", len(lines))
	}
	for _, line := range lines[1:] {
		if got := strings.Count(line, ","); got != 3 {
			t.Fatalf("row %q has %d commas", line, got)
		}
	}
}

func TestFig7CSV(t *testing.T) {
	data, err := Fig7(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := data.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "# watched router") {
		t.Fatalf("missing provenance comment:\n%s", out[:80])
	}
	if !strings.Contains(out, "time_s,penalty,cutoff,reuse") {
		t.Fatal("missing header")
	}
}

func TestEvalCSVs(t *testing.T) {
	if testing.Short() {
		t.Skip("full eval")
	}
	o := testOptions()
	o.MaxPulses = 2
	data, err := Eval(o)
	if err != nil {
		t.Fatal(err)
	}
	for name, write := range map[string]func(*bytes.Buffer) error{
		"fig8":  func(b *bytes.Buffer) error { return data.WriteFig8CSV(b) },
		"fig9":  func(b *bytes.Buffer) error { return data.WriteFig9CSV(b) },
		"fig13": func(b *bytes.Buffer) error { return data.WriteFig13CSV(b) },
		"fig14": func(b *bytes.Buffer) error { return data.WriteFig14CSV(b) },
	} {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		if len(lines) != o.MaxPulses+2 {
			t.Fatalf("%s: %d lines, want header + %d rows", name, len(lines), o.MaxPulses+1)
		}
		if !strings.HasPrefix(lines[0], "pulses,") {
			t.Fatalf("%s: header %q", name, lines[0])
		}
		if !strings.HasPrefix(lines[1], "0,") {
			t.Fatalf("%s: first row %q", name, lines[1])
		}
	}
}

func TestFig10CSV(t *testing.T) {
	if testing.Short() {
		t.Skip("three damped runs")
	}
	data, err := Fig10(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := data.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "pulses,time_s,updates,damped_links") {
		t.Fatal("missing header")
	}
	// All three runs present, in order.
	i1 := strings.Index(out, "\n1,")
	i3 := strings.Index(out, "\n3,")
	i5 := strings.Index(out, "\n5,")
	if i1 < 0 || i3 < 0 || i5 < 0 || !(i1 < i3 && i3 < i5) {
		t.Fatalf("runs missing or out of order: %d %d %d", i1, i3, i5)
	}
}

func TestFig15CSV(t *testing.T) {
	if testing.Short() {
		t.Skip("policy sweeps")
	}
	o := testOptions()
	o.MaxPulses = 1
	data, err := Fig15(o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := data.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pulses,with_policy_s,no_policy_s,intended_s") {
		t.Fatal("missing header")
	}
}
