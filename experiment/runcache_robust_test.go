package experiment

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// swapCachedRunner installs fn as the cache's run function for the test.
// The hook exists because a deterministic scenario cannot fail transiently
// on cue; it is restored (and the default behaviour re-verified) on cleanup.
func swapCachedRunner(t *testing.T, fn func(context.Context, Scenario) (*Result, error)) {
	t.Helper()
	orig := cachedRunner
	cachedRunner = fn
	t.Cleanup(func() { cachedRunner = orig })
}

func swapPointRunner(t *testing.T, fn func(context.Context, *Checkpoint, Scenario) (*Result, error)) {
	t.Helper()
	orig := pointRunner
	pointRunner = fn
	t.Cleanup(func() { pointRunner = orig })
}

// TestRunCacheRetriesAfterError is the negative-caching regression test: a
// scenario that fails once and then succeeds must succeed on the second call
// through the cache — the failed entry is evicted, not served forever.
func TestRunCacheRetriesAfterError(t *testing.T) {
	sc := cancelScenario(t, 1)
	var calls atomic.Int64
	swapCachedRunner(t, func(ctx context.Context, s Scenario) (*Result, error) {
		if calls.Add(1) == 1 {
			return nil, errors.New("injected transient failure")
		}
		return RunContext(ctx, s)
	})
	c := NewRunCache()
	if _, err := c.Run(sc); err == nil {
		t.Fatal("first run should have failed")
	}
	res, err := c.Run(sc)
	if err != nil {
		t.Fatalf("second run still failing: %v (negative caching?)", err)
	}
	if res == nil || calls.Load() != 2 {
		t.Fatalf("second run did not re-execute (calls=%d)", calls.Load())
	}
	// Third call: a genuine cache hit, no third execution.
	if _, err := c.Run(sc); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("successful result was not cached (calls=%d)", calls.Load())
	}
	if hits, misses, _ := c.Stats(); hits != 1 || misses != 2 {
		t.Errorf("stats = hits %d misses %d, want 1/2", hits, misses)
	}
}

// TestRunCacheSweepRetriesAfterError is the same regression on the Sweep
// miss path: a point that fails transiently must be evicted and re-run by a
// later sweep.
func TestRunCacheSweepRetriesAfterError(t *testing.T) {
	base := cancelScenario(t, 0)
	var failOnce atomic.Bool
	failOnce.Store(true)
	swapPointRunner(t, func(ctx context.Context, cp *Checkpoint, sc Scenario) (*Result, error) {
		if sc.Pulses == 1 && failOnce.Swap(false) {
			return nil, errors.New("injected transient failure")
		}
		return cp.RunContext(ctx, sc)
	})
	c := NewRunCache()
	pts, err := c.Sweep(base, []int{0, 1, 2}, 2)
	if err == nil {
		t.Fatal("first sweep should have reported the injected failure")
	}
	// Partial results: the two healthy points still landed.
	if pts[0].Result == nil || pts[2].Result == nil {
		t.Fatal("healthy points discarded alongside the failing one")
	}
	pts, err = c.Sweep(base, []int{0, 1, 2}, 2)
	if err != nil {
		t.Fatalf("second sweep still failing: %v (negative caching?)", err)
	}
	for _, p := range pts {
		if p.Err != nil || p.Result == nil {
			t.Fatalf("point n=%d still bad after retry: %v", p.Pulses, p.Err)
		}
	}
	// The healthy points must have come from cache, only n=1 re-ran.
	hits, misses, _ := c.Stats()
	if hits != 2 || misses != 4 {
		t.Errorf("stats = hits %d misses %d, want 2 hits (n=0,2) and 4 misses (3 first sweep + 1 retry)", hits, misses)
	}
}

// TestRunCachePanicUnblocksWaiters is the waiter-deadlock regression: when
// the owning run panics, concurrent waiters on the same fingerprint must be
// released with an error — not hang forever — and the key must stay usable.
func TestRunCachePanicUnblocksWaiters(t *testing.T) {
	sc := cancelScenario(t, 1)
	var calls atomic.Int64
	release := make(chan struct{})
	swapCachedRunner(t, func(ctx context.Context, s Scenario) (*Result, error) {
		if calls.Add(1) == 1 {
			<-release // hold until the waiters have queued up
			panic("injected owner panic")
		}
		return RunContext(ctx, s)
	})
	c := NewRunCache()

	ownerErr := make(chan error, 1)
	go func() {
		defer func() { recover() }() // the owner's own panic is re-surfaced as an error, not a panic
		_, err := c.Run(sc)
		ownerErr <- err
	}()
	// Wait for the owner to claim, then pile on waiters.
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	var wg sync.WaitGroup
	waiterErrs := make([]error, 3)
	for i := range waiterErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, waiterErrs[i] = c.Run(sc)
		}(i)
	}
	time.Sleep(5 * time.Millisecond) // let the waiters block on the entry
	close(release)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("waiters still blocked 10 s after the owner panicked — deadlock")
	}
	err := <-ownerErr
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("owner error = %v, want *PanicError", err)
	}
	if len(pe.Stack) == 0 || pe.Fingerprint == "" {
		t.Error("owner PanicError missing stack or fingerprint")
	}
	for i, werr := range waiterErrs {
		if !errors.As(werr, &pe) {
			t.Errorf("waiter %d error = %v, want *PanicError", i, werr)
		}
	}
	// The panicked entry must have been evicted: a fresh call re-runs and
	// succeeds.
	res, err := c.Run(sc)
	if err != nil || res == nil {
		t.Fatalf("run after panic eviction failed: %v", err)
	}
}

// TestRunCacheWaiterHonorsOwnContext: a waiter whose own context trips while
// the owner is still running returns the typed cancel without waiting for
// the owner.
func TestRunCacheWaiterHonorsOwnContext(t *testing.T) {
	sc := cancelScenario(t, 1)
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	swapCachedRunner(t, func(ctx context.Context, s Scenario) (*Result, error) {
		once.Do(func() { close(started) })
		<-release
		return RunContext(ctx, s)
	})
	c := NewRunCache()
	go c.Run(sc) //nolint:errcheck — owner outcome is not under test
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	waited := make(chan error, 1)
	go func() {
		_, err := c.RunContext(ctx, sc)
		waited <- err
	}()
	cancel()
	select {
	case err := <-waited:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("waiter error = %v, want ErrCanceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled waiter did not return")
	}
	close(release)
	// Let the owner finish so no goroutine outlives the test hooks.
	for {
		if hits, misses, _ := c.Stats(); hits+misses >= 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRunCacheCanceledRunEvicted: a cancelled owner must not poison the
// fingerprint — the next caller re-runs and succeeds.
func TestRunCacheCanceledRunEvicted(t *testing.T) {
	sc := cancelScenario(t, 1)
	c := NewRunCache()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.RunContext(ctx, sc); !errors.Is(err, ErrCanceled) {
		t.Fatalf("cancelled run error = %v, want ErrCanceled", err)
	}
	res, err := c.Run(sc)
	if err != nil || res == nil {
		t.Fatalf("run after cancelled owner failed: %v (canceled result negative-cached?)", err)
	}
}

// chaosStore records Store/Load traffic so the chaos test can assert the
// persistent layer stayed intact; it also serves one deliberately corrupted
// load to prove corruption is survived (the real corruption machinery is
// covered in diskcache's own tests — here the contract is "a store that
// reports a miss-with-error does not fail the run").
type chaosStore struct {
	mu      sync.Mutex
	entries map[string]*Result
	loads   int
	stores  int
}

func (s *chaosStore) Load(key string) (*Result, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.loads++
	if res, ok := s.entries[key]; ok {
		return res, true, nil
	}
	return nil, false, nil
}

func (s *chaosStore) Store(key string, res *Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.entries == nil {
		s.entries = make(map[string]*Result)
	}
	s.stores++
	s.entries[key] = res
	return nil
}

// TestChaosSweep is the acceptance chaos test: one cached sweep under
// injected run panics, transient errors and a mid-flight cancel. Every
// unaffected point must come back, the transient failures must retry through
// the cache (no negative caching), and the persistent store must end up
// intact — holding exactly the successful points.
func TestChaosSweep(t *testing.T) {
	base := cancelScenario(t, 0)
	pulses := PulseRange(0, 9)

	// Chaos plan, seeded and deterministic: n=2 panics on its first attempt,
	// n=4 fails transiently on its first attempt, n=7 is slow and gets
	// cancelled mid-flight on the first sweep. Second and third sweeps run
	// with no chaos.
	var panicsLeft, failsLeft atomic.Int64
	panicsLeft.Store(1)
	failsLeft.Store(1)
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	cancelArmed := make(chan struct{}, 1)
	swapPointRunner(t, func(ctx context.Context, cp *Checkpoint, sc Scenario) (*Result, error) {
		switch sc.Pulses {
		case 2:
			if panicsLeft.Add(-1) >= 0 {
				panic(fmt.Sprintf("chaos: injected panic at n=%d", sc.Pulses))
			}
		case 4:
			if failsLeft.Add(-1) >= 0 {
				return nil, errors.New("chaos: injected transient error")
			}
		case 7:
			select {
			case cancelArmed <- struct{}{}:
				// First visit: trigger the mid-flight cancel, then proceed —
				// the run itself observes the tripped context.
				cancel1()
			default:
			}
		}
		return cp.RunContext(ctx, sc)
	})

	store := &chaosStore{}
	c := NewRunCache()
	c.SetStore(store)

	// Sweep 1: chaos. The cancel fires when n=7 starts, so some points may
	// be cancelled; n=2 panics; n=4 fails transiently.
	pts, err := c.SweepContext(ctx1, base, pulses, 3)
	if err == nil {
		t.Fatal("chaos sweep reported no error")
	}
	if len(pts) != len(pulses) {
		t.Fatalf("chaos sweep returned %d points, want %d", len(pts), len(pulses))
	}
	completed := 0
	for i, p := range pts {
		if p.Pulses != pulses[i] {
			t.Fatalf("point %d is n=%d, want %d (order lost)", i, p.Pulses, pulses[i])
		}
		switch {
		case p.Result != nil && p.Err == nil:
			completed++
		case p.Err == nil:
			t.Errorf("point n=%d has neither result nor error", p.Pulses)
		}
	}
	if completed == 0 {
		t.Fatal("no unaffected point survived the chaos sweep")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Error("joined chaos error does not surface the injected panic")
	}

	// Sweep 2: no more chaos, fresh context. Everything must heal: the
	// panicked, failed and cancelled points all retry (their entries were
	// evicted), the completed points come from cache.
	pts, err = c.Sweep(base, pulses, 3)
	if err != nil {
		t.Fatalf("post-chaos sweep failed: %v", err)
	}
	for _, p := range pts {
		if p.Err != nil || p.Result == nil {
			t.Fatalf("point n=%d did not heal: %v", p.Pulses, p.Err)
		}
	}

	// The persistent store holds every point exactly once; a third sweep
	// through a cold in-memory cache is served entirely from the store.
	store.mu.Lock()
	stored := len(store.entries)
	store.mu.Unlock()
	if stored != len(pulses) {
		t.Errorf("store holds %d entries, want %d", stored, len(pulses))
	}
	c2 := NewRunCache()
	c2.SetStore(store)
	pts2, err := c2.Sweep(base, pulses, 3)
	if err != nil {
		t.Fatalf("store-served sweep failed: %v", err)
	}
	for i, p := range pts2 {
		if p.Result == nil {
			t.Fatalf("store-served point n=%d missing", p.Pulses)
		}
		if p.Result.MessageCount != pts[i].Result.MessageCount ||
			p.Result.ConvergenceTime != pts[i].Result.ConvergenceTime {
			t.Errorf("store-served point n=%d differs from computed", p.Pulses)
		}
	}
	if storeHits, _ := c2.StoreStats(); storeHits != uint64(len(pulses)) {
		t.Errorf("cold cache store hits = %d, want %d", storeHits, len(pulses))
	}
}
