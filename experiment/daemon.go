package experiment

import (
	"fmt"

	"rfd/damping"
)

// DaemonScenario builds a base scenario from shape parameters — the form a
// service request arrives in (cmd/rfdd), where the topology is specified by
// family and size rather than by adjacency so every request is small,
// self-describing and reproducible (which is what the content-addressed run
// cache keys on). topo is "mesh" (default) or "internet"; damp is "none"
// (default), "cisco" or "juniper"; rcn layers root-cause notification on a
// damped configuration.
func DaemonScenario(o Options, topo, damp string, rcn bool) (Scenario, error) {
	cfg := o.baseConfig()
	switch damp {
	case "", "none":
		if rcn {
			return Scenario{}, fmt.Errorf("experiment: rcn requires damping")
		}
	case "cisco":
		params := damping.Cisco()
		cfg.Damping = &params
	case "juniper":
		params := damping.Juniper()
		cfg.Damping = &params
	default:
		return Scenario{}, fmt.Errorf("experiment: unknown damping %q (want none, cisco or juniper)", damp)
	}
	cfg.EnableRCN = rcn

	switch topo {
	case "", "mesh":
		return o.meshScenario(cfg)
	case "internet":
		return o.internetScenario(cfg, o.InternetNodes, cfg.Policy)
	default:
		return Scenario{}, fmt.Errorf("experiment: unknown topology %q (want mesh or internet)", topo)
	}
}
