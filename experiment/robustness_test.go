package experiment

import (
	"strings"
	"testing"
	"time"

	"rfd/faults"
	"rfd/topology"
)

func TestLossSweep(t *testing.T) {
	o := DefaultOptions()
	rows, err := LossSweep(o, DefaultLossRates, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(DefaultLossRates) {
		t.Fatalf("got %d rows, want %d", len(rows), len(DefaultLossRates))
	}
	// Lossless baseline: nothing dropped, clean convergence, and damping
	// active under the flap workload.
	base := rows[0]
	if base.Rate != 0 || base.Plain.Dropped != 0 || base.Damped.Dropped != 0 {
		t.Fatalf("lossless row dropped messages: %+v", base)
	}
	if base.Plain.Outcome != faults.Converged || base.Damped.Outcome != faults.Converged {
		t.Fatalf("lossless row did not converge: plain=%s damped=%s",
			base.Plain.Outcome, base.Damped.Outcome)
	}
	if base.Damped.MaxDamped == 0 {
		t.Fatal("2-pulse flap never suppressed any link under Cisco damping")
	}
	if base.Damped.Conv <= base.Plain.Conv {
		t.Fatalf("damping did not extend convergence (%v vs %v): the paper's central effect is gone",
			base.Damped.Conv, base.Plain.Conv)
	}
	// Loss of 1 % and up must actually drop messages (0.1 % may drop
	// nothing on a run this small), and every run must terminate via the
	// watchdog rather than the event limit.
	for _, r := range rows[1:] {
		if r.Rate >= 0.01 && r.Plain.Dropped == 0 && r.Damped.Dropped == 0 {
			t.Fatalf("rate %g dropped nothing in either run", r.Rate)
		}
		for _, c := range []LossCell{r.Plain, r.Damped} {
			if c.Outcome != faults.Converged && c.Outcome != faults.Diverged {
				t.Fatalf("rate %g ended %s", r.Rate, c.Outcome)
			}
		}
	}
	// Determinism: the sweep is a pure function of the options.
	again, err := LossSweep(o, DefaultLossRates, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if rows[i] != again[i] {
			t.Fatalf("row %d differs between identical sweeps:\n%+v\n%+v", i, rows[i], again[i])
		}
	}

	var sb strings.Builder
	if err := WriteLossCSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != len(rows)+1 {
		t.Fatalf("CSV has %d lines, want %d", len(lines), len(rows)+1)
	}
	if !strings.HasPrefix(lines[0], "loss_rate,") {
		t.Fatalf("bad CSV header %q", lines[0])
	}
}

func TestScenarioFaultPlan(t *testing.T) {
	// A session reset mid-flap must charge damping beyond the lossless
	// baseline, and the watchdog report must land on the Result.
	g, err := topology.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	base := Scenario{Graph: g, ISP: 0, Config: o.dampingConfig(), Pulses: 1,
		Watchdog: &faults.WatchdogConfig{}}
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if clean.FaultReport == nil || clean.FaultReport.Outcome != faults.Converged {
		t.Fatalf("clean run report = %v, want converged", clean.FaultReport)
	}

	faulty := base
	faulty.Faults = faults.NewPlan(
		faults.ResetSession(30*time.Second, 1, 2),
		faults.ResetSession(90*time.Second, 1, 2),
		faults.ResetSession(150*time.Second, 1, 2),
	)
	res, err := Run(faulty)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultReport == nil {
		t.Fatal("no fault report with a watchdog configured")
	}
	if res.MessageCount <= clean.MessageCount {
		t.Fatalf("session churn generated no extra updates (%d vs %d)",
			res.MessageCount, clean.MessageCount)
	}
	if res.Dropped != 0 {
		// Resets at quiet instants sever no in-flight messages.
		t.Logf("note: %d messages severed by resets", res.Dropped)
	}

	// An invalid plan must be rejected, not silently dropped.
	bad := base
	bad.Faults = faults.NewPlan(faults.CrashRouter(0, 99, 0))
	if _, err := Run(bad); err == nil {
		t.Fatal("Run accepted a plan naming an unknown router")
	}
}

func TestScenarioLivelockAborts(t *testing.T) {
	g, err := topology.Torus(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	sc := Scenario{Graph: g, ISP: 0, Config: o.dampingConfig(), Pulses: 2,
		Watchdog: &faults.WatchdogConfig{MaxEvents: 5}}
	if _, err := Run(sc); err == nil || !strings.Contains(err.Error(), "livelock") {
		t.Fatalf("err = %v, want a livelock abort", err)
	}
}
