package experiment

import (
	"bufio"
	"fmt"
	"io"
	"time"

	"rfd/faults"
)

// This file holds the robustness experiments: the same pulse workload as the
// paper's figures, but run under the faults package's impairment model and
// drained by its convergence watchdog. They probe whether the timer
// interactions the paper analyzes survive realistic message loss — a lossy
// run both converges more slowly (withdrawals and re-announcements go
// missing) and charges damping differently (lost updates never reach the
// penalty counters).

// DefaultLossRates is the message-loss sweep of the robustness experiment:
// no loss, 0.1 %, 1 %, and 5 %.
var DefaultLossRates = []float64{0, 0.001, 0.01, 0.05}

// LossRow is one message-loss measurement, with and without damping.
type LossRow struct {
	// Rate is the uniform per-message loss probability.
	Rate float64
	// Plain are the no-damping numbers, Damped the Cisco-damping ones.
	Plain, Damped LossCell
}

// LossCell is one run's headline numbers under loss.
type LossCell struct {
	// Conv is the convergence time; Msgs the delivered-update count.
	Conv time.Duration
	Msgs int
	// MaxDamped is the peak suppressed-pair count (zero without damping).
	MaxDamped int
	// Dropped counts messages lost to the impairment.
	Dropped uint64
	// Outcome is the watchdog's verdict. Lossy runs commonly end Diverged:
	// a dropped update is never retransmitted, so some RIBs legitimately
	// disagree once the run drains.
	Outcome faults.Outcome
}

// LossSweep measures convergence under uniform message loss on a 5×5 torus,
// with and without route flap damping, draining every run through the
// convergence watchdog. Each rate uses an independently seeded impairment
// RNG so the sweep is a pure function of o.Seed.
func LossSweep(o Options, rates []float64, pulses int) ([]LossRow, error) {
	local := o
	local.MeshRows, local.MeshCols = 5, 5
	rows := make([]LossRow, 0, len(rates))
	for i, rate := range rates {
		row := LossRow{Rate: rate}
		for _, damped := range []bool{false, true} {
			cfg := local.baseConfig()
			if damped {
				cfg = local.dampingConfig()
			}
			sc, err := local.meshScenario(cfg)
			if err != nil {
				return nil, err
			}
			sc.Pulses = pulses
			// One impairment stream per (rate, damping) run: seeds must
			// differ or every run would see identical drop decisions.
			imp := faults.NewImpairments(o.Seed + uint64(i)*2 + boolBit(damped))
			if err := imp.SetDefault(faults.Profile{Loss: rate}); err != nil {
				return nil, fmt.Errorf("experiment: loss %g: %w", rate, err)
			}
			sc.Impair = imp
			sc.Watchdog = &faults.WatchdogConfig{}
			res, err := RunContext(o.ctx(), sc)
			if err != nil {
				return nil, fmt.Errorf("experiment: loss %g (damped=%t): %w", rate, damped, err)
			}
			cell := LossCell{
				Conv:      res.ConvergenceTime,
				Msgs:      res.MessageCount,
				MaxDamped: res.MaxDamped,
				Dropped:   res.Dropped,
				Outcome:   res.FaultReport.Outcome,
			}
			if damped {
				row.Damped = cell
			} else {
				row.Plain = cell
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// WriteLossCSV emits the message-loss sweep.
func WriteLossCSV(w io.Writer, rows []LossRow) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "loss_rate,plain_conv_s,plain_msgs,plain_dropped,plain_outcome,"+
		"damped_conv_s,damped_msgs,damped_max_damped,damped_dropped,damped_outcome")
	for _, r := range rows {
		fmt.Fprintf(bw, "%g,%s,%d,%d,%s,%s,%d,%d,%d,%s\n", r.Rate,
			csvSeconds(r.Plain.Conv), r.Plain.Msgs, r.Plain.Dropped, r.Plain.Outcome,
			csvSeconds(r.Damped.Conv), r.Damped.Msgs, r.Damped.MaxDamped,
			r.Damped.Dropped, r.Damped.Outcome)
	}
	return bw.Flush()
}
