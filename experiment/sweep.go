package experiment

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// SweepPoint pairs a pulse count with its run result. In the partial-result
// API a failed point carries its error in Err and a nil Result; unaffected
// points are always returned, so one sick point no longer discards a whole
// sweep.
type SweepPoint struct {
	Pulses int
	Result *Result
	// Err is the point's failure (nil for a successful point): a run error,
	// a *PanicError recovered from the worker, or a typed ErrCanceled /
	// ErrBudgetExceeded when the sweep's context tripped before the point
	// ran to completion.
	Err error
}

// Sweep runs the scenario once per entry in pulses, in parallel with one
// worker per CPU. See SweepParallel for the execution model.
func Sweep(base Scenario, pulses []int) ([]SweepPoint, error) {
	return SweepParallel(base, pulses, runtime.NumCPU())
}

// SweepParallel is Sweep with an explicit worker bound (minimum 1).
//
// The scenario's warm-up — identical for every pulse count, and the dominant
// cost of small runs — executes exactly once: the converged state is parked
// as a Checkpoint and every pulse point forks it. Runs are independent (each
// fork owns its kernel and state), so results are deterministic regardless
// of scheduling and identical to from-scratch Run calls for each point;
// results are returned in the order of the pulses slice. A fixed pool of
// `workers` goroutines drains the points, so at most that many runs are in
// flight at once.
//
// Failure is per-point, not all-or-nothing: a point that errors (or panics —
// the worker recovers it into a *PanicError carrying the quarantined stack)
// sets its SweepPoint.Err, every other point still returns its Result, and
// the returned error joins the per-point errors in pulses order. Callers that
// only check the error keep the old semantics; callers that want the partial
// results read the slice despite the error.
//
// A scenario-level Impair model is forked per point — every point sees the
// impairment stream from its warm-up-end position, exactly as a standalone
// Run would, and no mutable RNG state is shared between workers.
func SweepParallel(base Scenario, pulses []int, workers int) ([]SweepPoint, error) {
	return SweepParallelContext(context.Background(), base, pulses, workers)
}

// pointRunner executes one sweep point on a forked checkpoint. It is a
// variable so the robustness tests can inject transient errors and panics
// into the worker pool without needing a scenario that misbehaves on cue.
var pointRunner = func(ctx context.Context, cp *Checkpoint, sc Scenario) (*Result, error) {
	return cp.RunContext(ctx, sc)
}

// SweepParallelContext is SweepParallel under a supervising context. A
// tripped context stops the sweep promptly (bounded by one kernel stop-check
// interval per in-flight run): in-flight points stop with a typed
// ErrCanceled / ErrBudgetExceeded, not-yet-started points are marked the
// same way without running, and every point that already completed keeps its
// Result. The worker pool always drains before the call returns — no
// goroutines are left behind.
func SweepParallelContext(ctx context.Context, base Scenario, pulses []int, workers int) ([]SweepPoint, error) {
	if len(pulses) == 0 {
		return nil, nil
	}
	// One warm-up for the whole sweep, on whichever engine the scenario asks
	// for: a Shards>1 base converges on the sharded engine and parks a sharded
	// snapshot, so sharded sweeps fork per point exactly like sequential ones.
	cp, err := NewCheckpointContext(ctx, base)
	if err != nil {
		return nil, err
	}
	return sweepCheckpointed(ctx, cp, base, pulses, workers)
}

// sweepCheckpointed runs the fixed worker pool over pulses, forking cp per
// point. It is the shared back half of SweepParallelContext and the
// RunCache's pooled sweep path (which reuses a checkpoint across requests
// instead of building one per sweep).
func sweepCheckpointed(ctx context.Context, cp *Checkpoint, base Scenario, pulses []int, workers int) ([]SweepPoint, error) {
	if len(pulses) == 0 {
		return nil, nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(pulses) {
		workers = len(pulses)
	}
	pr := progressFrom(ctx)
	out := make([]SweepPoint, len(pulses))
	for i, n := range pulses {
		out[i].Pulses = n
		pr.pointQueued(n)
	}
	// The jobs channel is buffered with every index up front so neither the
	// feeder nor the workers can block on it: a worker that exits early
	// (context trip) never wedges the pipeline.
	jobs := make(chan int, len(pulses))
	for i := range pulses {
		jobs <- i
	}
	close(jobs)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					// Mark skipped points instead of running them; the sweep
					// still reports every already-finished Result.
					out[i].Err = fmt.Errorf("experiment: sweep n=%d: %w", pulses[i], ctxErr(ctx))
					pr.pointDone(out[i])
					continue
				}
				pr.pointStarted(pulses[i])
				runSweepPoint(ctx, cp, base, pulses[i], &out[i])
				pr.pointDone(out[i])
			}
		}()
	}
	wg.Wait()
	errs := make([]error, 0, len(pulses))
	for i := range out {
		if out[i].Err != nil {
			errs = append(errs, out[i].Err)
		}
	}
	return out, errors.Join(errs...)
}

// runSweepPoint executes one point with panic isolation: a panicking run is
// recovered into a *PanicError on the point (pulse count in the message,
// quarantined stack attached) so the process — and the other points — survive
// it.
func runSweepPoint(ctx context.Context, cp *Checkpoint, base Scenario, pulses int, pt *SweepPoint) {
	defer func() {
		if r := recover(); r != nil {
			fp, _ := scWithPulses(base, pulses).Fingerprint()
			pt.Err = fmt.Errorf("experiment: sweep n=%d: %w", pulses,
				&PanicError{Value: r, Fingerprint: fp, Stack: stackTrace()})
		}
	}()
	sc := scWithPulses(base, pulses)
	var res *Result
	var err error
	if cp == nil {
		res, err = RunContext(ctx, sc)
	} else {
		res, err = pointRunner(ctx, cp, sc)
	}
	if err != nil {
		pt.Err = fmt.Errorf("experiment: sweep n=%d: %w", pulses, err)
		return
	}
	pt.Result = res
}

// scWithPulses specializes the base scenario to one pulse count, forking the
// impairment model so no mutable RNG state is shared between workers.
func scWithPulses(base Scenario, pulses int) Scenario {
	sc := base
	sc.Pulses = pulses
	if sc.Impair != nil {
		sc.Impair = sc.Impair.Fork()
	}
	return sc
}

// stackTrace captures the current goroutine's stack for a PanicError.
func stackTrace() []byte {
	buf := make([]byte, 16<<10)
	return buf[:runtime.Stack(buf, false)]
}

// PulseRange returns [from, from+1, …, to].
func PulseRange(from, to int) []int {
	if to < from {
		return nil
	}
	out := make([]int, 0, to-from+1)
	for n := from; n <= to; n++ {
		out = append(out, n)
	}
	return out
}
