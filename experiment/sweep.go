package experiment

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// SweepPoint pairs a pulse count with its run result.
type SweepPoint struct {
	Pulses int
	Result *Result
}

// Sweep runs the scenario once per entry in pulses, in parallel with one
// worker per CPU. See SweepParallel for the execution model.
func Sweep(base Scenario, pulses []int) ([]SweepPoint, error) {
	return SweepParallel(base, pulses, runtime.NumCPU())
}

// SweepParallel is Sweep with an explicit worker bound (minimum 1).
//
// The scenario's warm-up — identical for every pulse count, and the dominant
// cost of small runs — executes exactly once: the converged state is parked
// as a Checkpoint and every pulse point forks it. Runs are independent (each
// fork owns its kernel and state), so results are deterministic regardless
// of scheduling and identical to from-scratch Run calls for each point;
// results are returned in the order of the pulses slice. A fixed pool of
// `workers` goroutines drains the points, so at most that many runs are in
// flight at once. If points fail, all their errors are returned joined.
//
// A scenario-level Impair model is forked per point — every point sees the
// impairment stream from its warm-up-end position, exactly as a standalone
// Run would, and no mutable RNG state is shared between workers.
func SweepParallel(base Scenario, pulses []int, workers int) ([]SweepPoint, error) {
	if len(pulses) == 0 {
		return nil, nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(pulses) {
		workers = len(pulses)
	}
	cp, err := NewCheckpoint(base)
	if err != nil {
		return nil, err
	}
	out := make([]SweepPoint, len(pulses))
	errs := make([]error, len(pulses))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				sc := base
				sc.Pulses = pulses[i]
				if sc.Impair != nil {
					sc.Impair = sc.Impair.Fork()
				}
				res, err := cp.Run(sc)
				if err != nil {
					errs[i] = fmt.Errorf("experiment: sweep n=%d: %w", pulses[i], err)
					continue
				}
				out[i] = SweepPoint{Pulses: pulses[i], Result: res}
			}
		}()
	}
	for i := range pulses {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return out, nil
}

// PulseRange returns [from, from+1, …, to].
func PulseRange(from, to int) []int {
	if to < from {
		return nil
	}
	out := make([]int, 0, to-from+1)
	for n := from; n <= to; n++ {
		out = append(out, n)
	}
	return out
}
