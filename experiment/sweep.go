package experiment

import (
	"fmt"
	"runtime"
	"sync"
)

// SweepPoint pairs a pulse count with its run result.
type SweepPoint struct {
	Pulses int
	Result *Result
}

// Sweep runs the scenario once per entry in pulses, in parallel (each run
// owns its own kernel and cloned topology, so runs are independent and the
// output is deterministic regardless of scheduling). Results are returned in
// the order of the pulses slice. The first run error aborts the sweep.
func Sweep(base Scenario, pulses []int) ([]SweepPoint, error) {
	return SweepParallel(base, pulses, runtime.NumCPU())
}

// SweepParallel is Sweep with an explicit worker bound (minimum 1).
func SweepParallel(base Scenario, pulses []int, workers int) ([]SweepPoint, error) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(pulses) {
		workers = len(pulses)
	}
	out := make([]SweepPoint, len(pulses))
	errs := make([]error, len(pulses))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, n := range pulses {
		wg.Add(1)
		go func(i, n int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sc := base
			sc.Pulses = n
			res, err := Run(sc)
			if err != nil {
				errs[i] = fmt.Errorf("experiment: sweep n=%d: %w", n, err)
				return
			}
			out[i] = SweepPoint{Pulses: n, Result: res}
		}(i, n)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// PulseRange returns [from, from+1, …, to].
func PulseRange(from, to int) []int {
	if to < from {
		return nil
	}
	out := make([]int, 0, to-from+1)
	for n := from; n <= to; n++ {
		out = append(out, n)
	}
	return out
}
