package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation")
	}
	o := testOptions()
	o.MaxPulses = 2
	var buf bytes.Buffer
	if err := WriteReport(&buf, o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# Route Flap Damping — reproduction report",
		"## Table 1",
		"## Figures 8 & 13",
		"## Figures 9 & 14",
		"## Figure 10",
		"## Figure 15",
		"## Penalty filters",
		"## Partial deployment",
		"## Plain-BGP convergence baseline",
		"| Withdrawal Penalty (PW) | 1000 | 1000 |",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	// Every pulses row of the eval tables present.
	for _, row := range []string{"| 0 |", "| 1 |", "| 2 |"} {
		if !strings.Contains(out, row) {
			t.Fatalf("report missing row %q", row)
		}
	}
}
