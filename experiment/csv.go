package experiment

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"time"
)

// csvSeconds renders a duration as whole seconds, the unit used on the
// paper's axes.
func csvSeconds(d time.Duration) string {
	return fmt.Sprintf("%.0f", d.Seconds())
}

// WriteCSV emits Table 1 as CSV (parameter, cisco, juniper).
func WriteTable1CSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "parameter,cisco,juniper")
	for _, row := range Table1() {
		fmt.Fprintf(bw, "%q,%s,%s\n", row.Parameter, row.Cisco, row.Juniper)
	}
	return bw.Flush()
}

// WriteCSV emits the Fig 3 penalty trace: time_s, penalty, cutoff, reuse.
func (d *Fig3Data) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "time_s,penalty,cutoff,reuse")
	for _, p := range d.Trace {
		fmt.Fprintf(bw, "%s,%.1f,%.0f,%.0f\n", csvSeconds(p.At), p.Penalty, d.Cutoff, d.Reuse)
	}
	return bw.Flush()
}

// WriteCSV emits the Fig 7 penalty trace (the watched remote router).
func (d *Fig7Data) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# watched router %d, peer %d; %d secondary-charging increments\n",
		d.Watched.Router, d.Watched.Peer, d.Recharges)
	fmt.Fprintln(bw, "time_s,penalty,cutoff,reuse")
	for _, p := range d.Trace {
		fmt.Fprintf(bw, "%s,%.1f,%.0f,%.0f\n", csvSeconds(p.At), p.Penalty, d.Cutoff, d.Reuse)
	}
	return bw.Flush()
}

// WriteFig8CSV emits the convergence-time comparison (Fig 8): pulses,
// no-damping mesh, full damping mesh, full damping Internet, calculation.
func (d *EvalData) WriteFig8CSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "pulses,no_damping_mesh_s,full_damping_mesh_s,full_damping_internet_s,calculation_s")
	for _, r := range d.Rows {
		fmt.Fprintf(bw, "%d,%s,%s,%s,%s\n", r.Pulses,
			csvSeconds(r.NoDampingMeshConv), csvSeconds(r.DampingMeshConv),
			csvSeconds(r.DampingInternetConv), csvSeconds(r.CalcConv))
	}
	return bw.Flush()
}

// WriteFig9CSV emits the message-count comparison (Fig 9).
func (d *EvalData) WriteFig9CSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "pulses,no_damping_mesh,full_damping_mesh,full_damping_internet")
	for _, r := range d.Rows {
		fmt.Fprintf(bw, "%d,%d,%d,%d\n", r.Pulses,
			r.NoDampingMeshMsgs, r.DampingMeshMsgs, r.DampingInternetMsgs)
	}
	return bw.Flush()
}

// WriteFig13CSV emits the RCN convergence comparison (Fig 13): Fig 8's
// columns plus the RCN-enhanced damping curve.
func (d *EvalData) WriteFig13CSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "pulses,no_damping_mesh_s,full_damping_mesh_s,full_damping_internet_s,damping_rcn_s,calculation_s")
	for _, r := range d.Rows {
		fmt.Fprintf(bw, "%d,%s,%s,%s,%s,%s\n", r.Pulses,
			csvSeconds(r.NoDampingMeshConv), csvSeconds(r.DampingMeshConv),
			csvSeconds(r.DampingInternetConv), csvSeconds(r.RCNMeshConv), csvSeconds(r.CalcConv))
	}
	return bw.Flush()
}

// WriteFig14CSV emits the RCN message-count comparison (Fig 14).
func (d *EvalData) WriteFig14CSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "pulses,no_damping_mesh,full_damping_mesh,full_damping_internet,damping_rcn")
	for _, r := range d.Rows {
		fmt.Fprintf(bw, "%d,%d,%d,%d,%d\n", r.Pulses,
			r.NoDampingMeshMsgs, r.DampingMeshMsgs, r.DampingInternetMsgs, r.RCNMeshMsgs)
	}
	return bw.Flush()
}

// WriteCSV emits the Fig 10 series: for each run (n = 1, 3, 5), the 5 s
// update series and the damped-link count sampled on the same grid.
func (d *Fig10Data) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "pulses,time_s,updates,damped_links")
	ns := make([]int, 0, len(d.Runs))
	for n := range d.Runs {
		ns = append(ns, n)
	}
	sort.Ints(ns)
	for _, n := range ns {
		res := d.Runs[n]
		end := res.EndTime
		for _, bin := range res.Updates.Bins(0, end, d.BinWidth) {
			fmt.Fprintf(bw, "%d,%s,%d,%d\n", n, csvSeconds(bin.Start), bin.Count,
				res.Damped.ValueAt(bin.Start+d.BinWidth-1))
		}
	}
	return bw.Flush()
}

// WriteCSV emits the Fig 15 policy comparison.
func (d *Fig15Data) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %d-node internet-derived topology\n", d.Nodes)
	fmt.Fprintln(bw, "pulses,with_policy_s,no_policy_s,intended_s,with_policy_msgs,no_policy_msgs")
	for _, r := range d.Rows {
		fmt.Fprintf(bw, "%d,%s,%s,%s,%d,%d\n", r.Pulses,
			csvSeconds(r.WithPolicy), csvSeconds(r.NoPolicy), csvSeconds(r.Intended),
			r.PolicyMsgs, r.NoPolicyMsgs)
	}
	return bw.Flush()
}
