package experiment

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"rfd/damping"
	"rfd/faults"
)

// TestCheckpointRunMatchesRun is the warm-up amortization contract: running a
// scenario from a forked converged checkpoint yields a Result deeply equal to
// a from-scratch Run.
func TestCheckpointRunMatchesRun(t *testing.T) {
	base := Scenario{Graph: smallMesh(t), ISP: 0, Config: dampingCfg()}
	cp, err := NewCheckpoint(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 3} {
		sc := base
		sc.Pulses = n
		scratch, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		forked, err := cp.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(scratch, forked) {
			t.Fatalf("n=%d: checkpointed Run differs from scratch Run\nscratch: %+v\nforked:  %+v",
				n, scratch, forked)
		}
	}
}

// TestSweepParallelWorkerEquivalence: worker count is a scheduling detail and
// must not leak into results.
func TestSweepParallelWorkerEquivalence(t *testing.T) {
	base := Scenario{Graph: smallMesh(t), ISP: 0, Config: dampingCfg()}
	pulses := PulseRange(0, 3)
	one, err := SweepParallel(base, pulses, 1)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := SweepParallel(base, pulses, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one, eight) {
		t.Fatal("sweep results differ between workers=1 and workers=8")
	}
}

// TestSweepMatchesStandaloneRuns: every sweep point must be deeply equal to a
// standalone Run of that pulse count — the fork amortization is invisible.
func TestSweepMatchesStandaloneRuns(t *testing.T) {
	base := Scenario{Graph: smallMesh(t), ISP: 0, Config: dampingCfg()}
	pulses := []int{0, 2}
	pts, err := SweepParallel(base, pulses, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range pulses {
		sc := base
		sc.Pulses = n
		want, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pts[i].Result, want) {
			t.Fatalf("sweep point n=%d differs from standalone Run", n)
		}
	}
}

// TestSweepImpairedMatchesStandaloneRuns covers the impairment path: the base
// scenario's impairment model is forked per point, so each point sees exactly
// the stream a standalone Run would.
func TestSweepImpairedMatchesStandaloneRuns(t *testing.T) {
	mkImpair := func() *faults.Impairments {
		imp := faults.NewImpairments(3)
		if err := imp.SetDefault(faults.Profile{Loss: 0.02}); err != nil {
			t.Fatal(err)
		}
		return imp
	}
	base := Scenario{Graph: smallMesh(t), ISP: 0, Config: dampingCfg(), Impair: mkImpair()}
	pulses := []int{1, 2}
	pts, err := SweepParallel(base, pulses, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range pulses {
		sc := base
		sc.Pulses = n
		sc.Impair = mkImpair() // fresh stream, same position a fork would have
		want, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pts[i].Result, want) {
			t.Fatalf("impaired sweep point n=%d differs from standalone Run", n)
		}
	}
}

func TestPulseRangeEdgeCases(t *testing.T) {
	if got := PulseRange(2, 1); got != nil {
		t.Fatalf("PulseRange(2,1) = %v, want nil", got)
	}
	if got := PulseRange(3, 3); len(got) != 1 || got[0] != 3 {
		t.Fatalf("PulseRange(3,3) = %v, want [3]", got)
	}
	if got := PulseRange(-2, 0); len(got) != 3 || got[0] != -2 || got[2] != 0 {
		t.Fatalf("PulseRange(-2,0) = %v", got)
	}
}

func TestFingerprint(t *testing.T) {
	base := Scenario{Graph: smallMesh(t), ISP: 0, Config: dampingCfg(), Pulses: 2}
	k1, ok := base.Fingerprint()
	if !ok {
		t.Fatal("plain scenario should be fingerprintable")
	}
	k2, ok := base.Fingerprint()
	if !ok || k1 != k2 {
		t.Fatal("fingerprint not stable across calls")
	}

	diff := base
	diff.Pulses = 3
	if k3, _ := diff.Fingerprint(); k3 == k1 {
		t.Fatal("pulse count not part of the fingerprint")
	}
	diff = base
	diff.Config.Seed = 99
	if k3, _ := diff.Fingerprint(); k3 == k1 {
		t.Fatal("seed not part of the fingerprint")
	}
	diff = base
	diff.Config.EnableRCN = true
	if k3, _ := diff.Fingerprint(); k3 == k1 {
		t.Fatal("RCN flag not part of the fingerprint")
	}

	// The damping engine changes quantized results, so a wheel run must
	// never share a cache entry with an exact run of the same scenario —
	// and the wheel's geometry is part of the identity too, except that an
	// explicit default geometry and the zero value are the same run.
	wheel := base
	wheel.Config.DampingEngine = damping.EngineWheel
	kw, ok := wheel.Fingerprint()
	if !ok {
		t.Fatal("wheel scenario should be fingerprintable")
	}
	if kw == k1 {
		t.Fatal("damping engine not part of the fingerprint")
	}
	geo := wheel
	geo.Config.WheelConfig = damping.WheelConfig{DeltaT: 2 * time.Second}
	if k3, _ := geo.Fingerprint(); k3 == kw {
		t.Fatal("wheel geometry not part of the fingerprint")
	}
	geo = wheel
	geo.Config.WheelConfig = damping.DefaultWheelConfig()
	if k3, _ := geo.Fingerprint(); k3 != kw {
		t.Fatal("explicit default wheel geometry must fingerprint like the zero value")
	}

	uncacheable := base
	uncacheable.Impair = faults.NewImpairments(1)
	if _, ok := uncacheable.Fingerprint(); ok {
		t.Fatal("impaired scenario must not be fingerprintable")
	}
}

func TestRunCacheHitsAndSharing(t *testing.T) {
	c := NewRunCache()
	sc := Scenario{Graph: smallMesh(t), ISP: 0, Config: dampingCfg(), Pulses: 1}
	first, err := c.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatal("cache hit returned a different Result pointer")
	}
	if hits, misses, unc := c.Stats(); hits != 1 || misses != 1 || unc != 0 {
		t.Fatalf("stats = %d hits %d misses %d uncacheable, want 1/1/0", hits, misses, unc)
	}

	// An uncacheable scenario runs every time and is counted as such.
	imp := sc
	imp.Impair = faults.NewImpairments(1)
	if _, err := c.Run(imp); err != nil {
		t.Fatal(err)
	}
	if _, _, unc := c.Stats(); unc != 1 {
		t.Fatalf("uncacheable count = %d, want 1", unc)
	}
}

func TestRunCacheSingleflight(t *testing.T) {
	c := NewRunCache()
	sc := Scenario{Graph: smallMesh(t), ISP: 0, Config: dampingCfg(), Pulses: 1}
	const callers = 8
	results := make([]*Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.Run(sc)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	if _, misses, _ := c.Stats(); misses != 1 {
		t.Fatalf("concurrent identical runs executed %d times, want 1", misses)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent callers got different Result pointers")
		}
	}
}

func TestRunCacheSweepReuse(t *testing.T) {
	c := NewRunCache()
	base := Scenario{Graph: smallMesh(t), ISP: 0, Config: dampingCfg()}
	first, err := c.Sweep(base, PulseRange(0, 3), 4)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses, _ := c.Stats(); hits != 0 || misses != 4 {
		t.Fatalf("first sweep: %d hits %d misses, want 0/4", hits, misses)
	}
	// Overlapping second sweep: 0..3 served from cache, 4..5 executed.
	second, err := c.Sweep(base, PulseRange(0, 5), 4)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses, _ := c.Stats(); hits != 4 || misses != 6 {
		t.Fatalf("second sweep: %d hits %d misses, want 4/6", hits, misses)
	}
	for i := range first {
		if second[i].Result != first[i].Result {
			t.Fatalf("cached sweep point n=%d not shared", first[i].Pulses)
		}
	}
	// Cached sweep results equal an uncached SweepParallel.
	plain, err := SweepParallel(base, PulseRange(0, 5), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(second, plain) {
		t.Fatal("cached sweep differs from plain SweepParallel")
	}
}

// TestRunCacheSweepErrorUnblocksWaiters: a failing sweep must fill its claimed
// entries so later (or concurrent) requests see the error instead of blocking
// forever on a result that will never arrive.
func TestRunCacheSweepErrorUnblocksWaiters(t *testing.T) {
	c := NewRunCache()
	bad := Scenario{Graph: smallMesh(t), ISP: 999, Config: dampingCfg()}
	if _, err := c.Sweep(bad, []int{0, 1}, 2); err == nil {
		t.Fatal("sweep swallowed run error")
	}
	// Re-requesting the same points must return the cached error promptly,
	// not deadlock. A test timeout here is the failure signal.
	if _, err := c.Sweep(bad, []int{0, 1}, 2); err == nil {
		t.Fatal("second sweep of failed points returned no error")
	}
	if _, err := c.Run(bad); err == nil {
		t.Fatal("cached failed point returned no error from Run")
	}
}

func TestNilRunCacheBypasses(t *testing.T) {
	var c *RunCache
	sc := Scenario{Graph: smallMesh(t), ISP: 0, Config: dampingCfg(), Pulses: 1}
	res, err := c.Run(sc)
	if err != nil || res == nil {
		t.Fatalf("nil cache Run = (%v, %v)", res, err)
	}
	pts, err := c.Sweep(sc, []int{0, 1}, 2)
	if err != nil || len(pts) != 2 {
		t.Fatalf("nil cache Sweep = (%v, %v)", pts, err)
	}
	if h, m, u := c.Stats(); h != 0 || m != 0 || u != 0 {
		t.Fatal("nil cache Stats should be zero")
	}
}
