package diskcache

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"rfd/bgp"
	"rfd/damping"
	"rfd/experiment"
	"rfd/topology"
)

// testScenario returns a tiny cacheable damped scenario.
func testScenario(t *testing.T, pulses int) experiment.Scenario {
	t.Helper()
	g, err := topology.Torus(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := bgp.DefaultConfig()
	params := damping.Cisco()
	cfg.Damping = &params
	return experiment.Scenario{
		Graph: g, ISP: 0, Config: cfg, Pulses: pulses,
		Watch: []experiment.PenaltyWatch{{Router: 0, Peer: 1}},
	}
}

// entryFile finds the single .run entry under dir (excluding quarantine).
func entryFile(t *testing.T, dir string) string {
	t.Helper()
	var found string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() && info.Name() == "quarantine" {
			return filepath.SkipDir
		}
		if !info.IsDir() && filepath.Ext(path) == ".run" {
			found = path
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if found == "" {
		t.Fatal("no cache entry file found")
	}
	return found
}

func TestRoundTrip(t *testing.T) {
	sc := testScenario(t, 2)
	res, err := experiment.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, ok := sc.Fingerprint()
	if !ok {
		t.Fatal("scenario unexpectedly unfingerprintable")
	}
	if err := c.Store(key, res); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Load(key)
	if err != nil || !ok {
		t.Fatalf("Load = ok=%t err=%v, want hit", ok, err)
	}
	// Headline scalars must survive exactly.
	if got.ConvergenceTime != res.ConvergenceTime || got.MessageCount != res.MessageCount ||
		got.MaxDamped != res.MaxDamped || got.NoisyReuses != res.NoisyReuses ||
		got.Pulses != res.Pulses || got.EndTime != res.EndTime {
		t.Fatalf("scalars differ after round trip:\n got %+v\nwant %+v", got, res)
	}
	// Series and maps must survive byte-for-byte.
	if !reflect.DeepEqual(got.Updates.Times(), res.Updates.Times()) {
		t.Error("update series differs after round trip")
	}
	if !reflect.DeepEqual(got.Damped.Points(), res.Damped.Points()) {
		t.Error("damped step series differs after round trip")
	}
	if !reflect.DeepEqual(got.LastUpdateByRouter, res.LastUpdateByRouter) {
		t.Error("per-router map differs after round trip")
	}
	w := experiment.PenaltyWatch{Router: 0, Peer: 1}
	if !reflect.DeepEqual(got.PenaltyTraces[w].Points(), res.PenaltyTraces[w].Points()) {
		t.Error("penalty trace differs after round trip")
	}
	if !reflect.DeepEqual(got.Phases, res.Phases) {
		t.Error("phase decomposition differs after round trip")
	}
}

func TestLoadMissing(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Load("deadbeef:p1"); ok || err != nil {
		t.Fatalf("Load(missing) = ok=%t err=%v, want clean miss", ok, err)
	}
}

// TestCorruptEntryQuarantined covers every corruption class: truncation, bad
// magic, flipped payload byte, and garbage. Each must be quarantined and
// reported as a miss — never an error, never a crash.
func TestCorruptEntryQuarantined(t *testing.T) {
	sc := testScenario(t, 1)
	res, err := experiment.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	key, _ := sc.Fingerprint()
	corruptions := []struct {
		name    string
		corrupt func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"bad-magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"flipped-payload-byte", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }},
		{"garbage", func(b []byte) []byte { return []byte("not a cache entry at all") }},
		{"empty", func(b []byte) []byte { return nil }},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			c, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Store(key, res); err != nil {
				t.Fatal(err)
			}
			path := entryFile(t, dir)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.corrupt(data), 0o644); err != nil {
				t.Fatal(err)
			}
			got, ok, err := c.Load(key)
			if err != nil || ok || got != nil {
				t.Fatalf("Load(corrupt) = %v ok=%t err=%v, want quiet miss", got, ok, err)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Error("corrupt entry still present under its valid name")
			}
			q := filepath.Join(dir, "quarantine", filepath.Base(path))
			if _, err := os.Stat(q); err != nil {
				t.Errorf("corrupt entry not quarantined: %v", err)
			}
			_, _, _, corrupt, _ := c.Stats()
			if corrupt != 1 {
				t.Errorf("corrupt stat = %d, want 1", corrupt)
			}
			// The key must be reusable: a fresh store and load succeed.
			if err := c.Store(key, res); err != nil {
				t.Fatal(err)
			}
			if _, ok, err := c.Load(key); !ok || err != nil {
				t.Fatalf("re-store after quarantine: ok=%t err=%v", ok, err)
			}
		})
	}
}

// TestNoTempLeftovers checks the atomic write leaves no temp files behind.
func TestNoTempLeftovers(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sc := testScenario(t, 1)
	res, err := experiment.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	key, _ := sc.Fingerprint()
	if err := c.Store(key, res); err != nil {
		t.Fatal(err)
	}
	err = filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && len(info.Name()) > 4 && info.Name()[:5] == ".tmp-" {
			t.Errorf("temp file left behind: %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestLayeredUnderRunCache wires the disk cache under an in-memory RunCache
// and checks the layering: a fresh RunCache with a warm disk serves from
// disk without re-running, and fresh runs land on disk for the next process.
func TestLayeredUnderRunCache(t *testing.T) {
	dir := t.TempDir()
	disk, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sc := testScenario(t, 2)

	// First "process": run through a cache layered on the (empty) disk.
	c1 := experiment.NewRunCache()
	c1.SetStore(disk)
	res1, err := c1.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, stores, _, _ := disk.Stats(); stores != 1 {
		t.Fatalf("disk stores = %d, want 1", stores)
	}

	// Second "process": fresh in-memory cache, same disk. The run must be
	// served from disk — prove it by making a from-scratch run impossible to
	// confuse: compare against res1's numbers.
	c2 := experiment.NewRunCache()
	c2.SetStore(disk)
	res2, err := c2.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses, _ := c2.Stats(); hits != 0 || misses != 1 {
		t.Fatalf("c2 mem stats = hits %d misses %d, want 0/1", hits, misses)
	}
	if storeHits, _ := c2.StoreStats(); storeHits != 1 {
		t.Fatalf("c2 store hits = %d, want 1", storeHits)
	}
	if res2.ConvergenceTime != res1.ConvergenceTime || res2.MessageCount != res1.MessageCount {
		t.Fatalf("disk-served result differs: %v/%d vs %v/%d",
			res2.ConvergenceTime, res2.MessageCount, res1.ConvergenceTime, res1.MessageCount)
	}
	// A disk-loaded Result must not be written straight back.
	if _, _, stores, _, _ := disk.Stats(); stores != 1 {
		t.Fatalf("disk stores after re-load = %d, want still 1", stores)
	}

	// Sweep path: one point warm on disk, two cold. Only the cold ones run
	// and get stored.
	c3 := experiment.NewRunCache()
	c3.SetStore(disk)
	pts, err := c3.Sweep(sc, []int{1, 2, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Err != nil || p.Result == nil {
			t.Fatalf("sweep point n=%d failed: %v", p.Pulses, p.Err)
		}
	}
	if storeHits, _ := c3.StoreStats(); storeHits != 1 {
		t.Errorf("sweep store hits = %d, want 1 (the p=2 entry)", storeHits)
	}
	if _, _, stores, _, _ := disk.Stats(); stores != 3 {
		t.Errorf("disk stores after sweep = %d, want 3 (p=1, p=2, p=3)", stores)
	}
	if pts[1].Result.MessageCount != res1.MessageCount {
		t.Error("disk-served sweep point differs from the original run")
	}
}

// TestStoreUnencodableResultCounted: a Result carrying process-local state
// that gob cannot encode must fail Store with an error, not panic, and the
// failure must show in the stats.
func TestStoreNilResult(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store("k", nil); err == nil {
		t.Fatal("Store(nil) succeeded, want error")
	}
}

func TestSanitizeKey(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"abc123:p4", "abc123_p4"},
		{"../escape", ".._escape"},
		{"a/b\\c", "a_b_c"},
	} {
		if got := sanitizeKey(tc.in); got != tc.want {
			t.Errorf("sanitizeKey(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	// Distinct keys must stay distinct after sanitizing.
	if sanitizeKey("k:p1") == sanitizeKey("k:p2") {
		t.Error("distinct keys collide after sanitizing")
	}
}
