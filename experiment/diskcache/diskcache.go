// Package diskcache persists the experiment package's content-addressed run
// cache on disk, so converged Results survive process restarts and are
// shared between every process pointing at the same directory (the rfdd
// daemon's cache lives here).
//
// Layout and crash safety. Each entry is one file,
// <dir>/<kk>/<key>.run (kk = first two hex digits of the key, to keep
// directories small), holding a fixed header — magic, format version, SHA-256
// of the payload, payload length — followed by the gob-encoded Result.
// Writes go to a temp file in the same directory and are renamed into place,
// so a crash mid-write never leaves a half-entry under a valid name; rename
// is also what makes concurrent writers of the same key safe (last rename
// wins with an identical payload, since keys are content addresses).
//
// Corruption is detected, never trusted and never fatal: an entry whose
// magic, length, checksum or gob stream does not verify is moved into
// <dir>/quarantine/ (preserving the evidence for diagnosis, exactly like the
// invariant checker's desync quarantine) and reported as a miss, so the
// scenario simply re-runs and re-stores. A second corrupt entry with the
// same name overwrites the first in quarantine — the newest evidence wins.
package diskcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"rfd/experiment"
)

// magic identifies a cache entry file; the trailing byte is the format
// version.
var magic = []byte("rfdruncache\x01")

// headerLen is magic + sha256 + payload length.
const headerLen = 12 + sha256.Size + 8

// Cache is the persistent store. It implements experiment.ResultStore; wire
// it under an in-memory RunCache with RunCache.SetStore. All methods are safe
// for concurrent use, within and across processes.
type Cache struct {
	dir string

	mu                  sync.Mutex
	loads, loadMisses   uint64
	stores              uint64
	corrupt, storeFails uint64
}

// Open prepares dir (creating it and its quarantine subdirectory as needed)
// and returns the cache.
func Open(dir string) (*Cache, error) {
	if dir == "" {
		return nil, errors.New("diskcache: empty directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "quarantine"), 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// Stats reports the cache's traffic: successful loads, load misses,
// successful stores, entries quarantined as corrupt, and failed stores.
func (c *Cache) Stats() (loads, misses, stores, corrupt, storeFails uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.loads, c.loadMisses, c.stores, c.corrupt, c.storeFails
}

// sanitizeKey maps a fingerprint key ("<hex>:p<N>") to a safe file stem.
func sanitizeKey(key string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, key)
}

// entryPath returns the path for key, creating its shard directory.
func (c *Cache) entryPath(key string, mkdir bool) (string, error) {
	stem := sanitizeKey(key)
	shard := "xx"
	if len(stem) >= 2 {
		shard = stem[:2]
	}
	dir := filepath.Join(c.dir, shard)
	if mkdir {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return "", err
		}
	}
	return filepath.Join(dir, stem+".run"), nil
}

// encode renders the entry file content for res.
func encode(res *experiment.Result) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(res); err != nil {
		return nil, fmt.Errorf("diskcache: encode: %w", err)
	}
	sum := sha256.Sum256(payload.Bytes())
	out := make([]byte, 0, headerLen+payload.Len())
	out = append(out, magic...)
	out = append(out, sum[:]...)
	out = binary.LittleEndian.AppendUint64(out, uint64(payload.Len()))
	return append(out, payload.Bytes()...), nil
}

// decode verifies and decodes an entry file's content.
func decode(data []byte) (*experiment.Result, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("diskcache: entry truncated at %d bytes", len(data))
	}
	if !bytes.Equal(data[:len(magic)], magic) {
		return nil, errors.New("diskcache: bad magic (not a cache entry, or unknown format version)")
	}
	var sum [sha256.Size]byte
	copy(sum[:], data[len(magic):])
	payload := data[headerLen:]
	if want := binary.LittleEndian.Uint64(data[headerLen-8 : headerLen]); want != uint64(len(payload)) {
		return nil, fmt.Errorf("diskcache: payload is %d bytes, header says %d", len(payload), want)
	}
	if got := sha256.Sum256(payload); got != sum {
		return nil, errors.New("diskcache: content hash mismatch")
	}
	var res experiment.Result
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&res); err != nil {
		return nil, fmt.Errorf("diskcache: decode: %w", err)
	}
	return &res, nil
}

// Load reads and verifies the entry for key. A missing entry is (nil, false,
// nil); a corrupt one is quarantined and also reported as a plain miss, so
// callers re-run and overwrite it — corruption is never fatal and never
// poisons the key.
func (c *Cache) Load(key string) (*experiment.Result, bool, error) {
	path, err := c.entryPath(key, false)
	if err != nil {
		return nil, false, err
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		c.count(&c.loadMisses)
		return nil, false, nil
	}
	if err != nil {
		c.count(&c.loadMisses)
		return nil, false, fmt.Errorf("diskcache: %w", err)
	}
	res, derr := decode(data)
	if derr != nil {
		c.quarantine(path)
		c.count(&c.corrupt)
		return nil, false, nil
	}
	c.count(&c.loads)
	return res, true, nil
}

// Store writes the entry for key atomically: temp file in the entry's own
// directory, then rename. An unencodable Result (some attached reports are
// process-local) is skipped with an error the caller may count but should
// not treat as fatal.
func (c *Cache) Store(key string, res *experiment.Result) error {
	if res == nil {
		return errors.New("diskcache: nil result")
	}
	data, err := encode(res)
	if err != nil {
		c.count(&c.storeFails)
		return err
	}
	path, err := c.entryPath(key, true)
	if err != nil {
		c.count(&c.storeFails)
		return fmt.Errorf("diskcache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		c.count(&c.storeFails)
		return fmt.Errorf("diskcache: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		c.count(&c.storeFails)
		return fmt.Errorf("diskcache: %w", err)
	}
	// Sync before rename: the rename must never become visible ahead of the
	// data it names, or a crash could leave a valid-looking empty entry.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		c.count(&c.storeFails)
		return fmt.Errorf("diskcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		c.count(&c.storeFails)
		return fmt.Errorf("diskcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		c.count(&c.storeFails)
		return fmt.Errorf("diskcache: %w", err)
	}
	c.count(&c.stores)
	return nil
}

// quarantine moves a corrupt entry aside, best-effort (a failure to move is
// resolved by deleting, and a failure to delete is ignored — the entry will
// simply be re-quarantined on the next load).
func (c *Cache) quarantine(path string) {
	dst := filepath.Join(c.dir, "quarantine", filepath.Base(path))
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path)
	}
}

// count bumps one stat under the lock.
func (c *Cache) count(field *uint64) {
	c.mu.Lock()
	*field++
	c.mu.Unlock()
}
