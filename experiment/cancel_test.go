package experiment

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"rfd/bgp"
	"rfd/damping"
	"rfd/topology"
)

// cancelScenario returns a small damped mesh scenario — big enough that a
// run executes tens of thousands of events, so a mid-run cancel lands inside
// the event loop rather than before it.
func cancelScenario(t *testing.T, pulses int) Scenario {
	t.Helper()
	g, err := topology.Torus(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := bgp.DefaultConfig()
	params := damping.Cisco()
	cfg.Damping = &params
	return Scenario{Graph: g, ISP: 0, Config: cfg, Pulses: pulses}
}

// TestRunContextUncancelledMatchesRun pins the fork-equivalence guarantee:
// threading a context that never trips must leave the run byte-identical to
// the plain Run path, measurements included.
func TestRunContextUncancelledMatchesRun(t *testing.T) {
	sc := cancelScenario(t, 2)
	plain, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	withCtx, err := RunContext(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, withCtx) {
		t.Errorf("RunContext with un-tripped ctx differs from Run:\n plain: conv=%v msgs=%d end=%v\n  ctx: conv=%v msgs=%d end=%v",
			plain.ConvergenceTime, plain.MessageCount, plain.EndTime,
			withCtx.ConvergenceTime, withCtx.MessageCount, withCtx.EndTime)
	}
}

// TestRunContextCancelBeforeStart: an already-cancelled context fails the
// run immediately with the typed error.
func TestRunContextCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, cancelScenario(t, 1))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want to also wrap context.Canceled", err)
	}
}

// TestRunContextDeadlineIsBudgetError: an expired deadline surfaces as
// ErrBudgetExceeded (and wraps context.DeadlineExceeded).
func TestRunContextDeadlineIsBudgetError(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := RunContext(ctx, cancelScenario(t, 1))
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want to also wrap context.DeadlineExceeded", err)
	}
}

// numGoroutineSettled samples the goroutine count after letting any
// just-cancelled workers unwind.
func numGoroutineSettled() int {
	n := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		time.Sleep(2 * time.Millisecond)
		m := runtime.NumGoroutine()
		if m >= n {
			return m
		}
		n = m
	}
	return n
}

// TestSweepCancelMidFlight cancels a sweep mid-run and checks the three
// promises: the call returns promptly, no worker goroutines are left behind,
// and the error is the typed cancel.
func TestSweepCancelMidFlight(t *testing.T) {
	base := cancelScenario(t, 0)
	before := numGoroutineSettled()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		// Let the sweep get going, then pull the plug.
		time.Sleep(10 * time.Millisecond)
		cancel()
		close(done)
	}()
	start := time.Now()
	pts, err := SweepParallelContext(ctx, base, PulseRange(0, 20), 4)
	elapsed := time.Since(start)
	<-done

	if err == nil {
		t.Skip("sweep finished before the cancel landed; nothing to assert")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	// "Promptly" = well under the time the full 21-point sweep would take;
	// the bound here is generous to stay robust on slow CI machines, but a
	// sweep that ignored the cancel would blow far past it.
	if elapsed > 30*time.Second {
		t.Fatalf("cancelled sweep took %v", elapsed)
	}
	// Partial results: every point is either complete or carries the typed
	// cancel error; nothing is silently dropped.
	if pts == nil {
		t.Fatal("cancelled sweep returned nil points; want partial results")
	}
	for _, p := range pts {
		if p.Err == nil && p.Result == nil {
			t.Errorf("point n=%d has neither result nor error", p.Pulses)
		}
		if p.Err != nil && !errors.Is(p.Err, ErrCanceled) {
			t.Errorf("point n=%d error = %v, want ErrCanceled", p.Pulses, p.Err)
		}
	}
	// No goroutines left behind.
	after := numGoroutineSettled()
	if after > before {
		t.Errorf("goroutines grew from %d to %d after cancelled sweep", before, after)
	}
}

// TestSweepPartialResults: one bad point (negative pulse count fails
// validation) must not discard the good points' results — the new
// partial-result contract.
func TestSweepPartialResults(t *testing.T) {
	base := cancelScenario(t, 0)
	pts, err := SweepParallel(base, []int{0, -1, 1}, 2)
	if err == nil {
		t.Fatal("sweep with an invalid point reported no error")
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	if pts[0].Err != nil || pts[0].Result == nil {
		t.Errorf("point n=0 should have succeeded: %v", pts[0].Err)
	}
	if pts[2].Err != nil || pts[2].Result == nil {
		t.Errorf("point n=1 should have succeeded: %v", pts[2].Err)
	}
	if pts[1].Err == nil || pts[1].Result != nil {
		t.Errorf("point n=-1 should have failed, got result %v", pts[1].Result)
	}
}

// TestSweepWorkerPanicIsolated: a panicking point becomes that point's
// *PanicError — with the pulse count in the message and a stack attached —
// and every other point still completes.
func TestSweepWorkerPanicIsolated(t *testing.T) {
	orig := pointRunner
	defer func() { pointRunner = orig }()
	pointRunner = func(ctx context.Context, cp *Checkpoint, sc Scenario) (*Result, error) {
		if sc.Pulses == 1 {
			panic("injected worker panic")
		}
		return cp.RunContext(ctx, sc)
	}
	pts, err := SweepParallel(cancelScenario(t, 0), []int{0, 1, 2}, 3)
	if err == nil {
		t.Fatal("sweep with a panicking point reported no error")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("joined error %v does not carry a *PanicError", err)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError carries no stack trace")
	}
	if pe.Fingerprint == "" {
		t.Error("PanicError carries no fingerprint for a cacheable scenario")
	}
	if pts[1].Err == nil || !errors.As(pts[1].Err, &pe) {
		t.Errorf("panicking point's error = %v, want *PanicError", pts[1].Err)
	}
	if want := "sweep n=1"; pts[1].Err == nil || !strings.Contains(pts[1].Err.Error(), want) {
		t.Errorf("panic error %q does not name the pulse count (%q)", pts[1].Err, want)
	}
	for _, i := range []int{0, 2} {
		if pts[i].Err != nil || pts[i].Result == nil {
			t.Errorf("point n=%d should have survived the neighbour's panic: %v", pts[i].Pulses, pts[i].Err)
		}
	}
}

// TestSweepErrorOrderDeterministic: the joined error lists failing points in
// pulses order regardless of worker scheduling.
func TestSweepErrorOrderDeterministic(t *testing.T) {
	base := cancelScenario(t, 0)
	var first string
	for trial := 0; trial < 4; trial++ {
		_, err := SweepParallel(base, []int{-3, 0, -1}, 3)
		if err == nil {
			t.Fatal("sweep with invalid points reported no error")
		}
		if trial == 0 {
			first = err.Error()
		} else if err.Error() != first {
			t.Fatalf("error order varies between runs:\n%q\nvs\n%q", first, err.Error())
		}
	}
	ia, ib := strings.Index(first, "n=-3"), strings.Index(first, "n=-1")
	if ia < 0 || ib < 0 || ia >= ib {
		t.Errorf("errors not in pulses order: %q", first)
	}
}
