package experiment

import (
	"bufio"
	"fmt"
	"io"
	"time"
)

// WriteReport runs the full evaluation at the given scale and renders a
// self-contained Markdown report: every paper figure as a table plus the
// extension experiments, with the headline checks (suppression onset,
// critical point, RCN tracking) called out. This is what cmd/rfdreport
// prints; EXPERIMENTS.md in the repository is the curated version of the
// same data at paper scale.
func WriteReport(w io.Writer, o Options) error {
	bw := bufio.NewWriter(w)

	fmt.Fprintf(bw, "# Route Flap Damping — reproduction report\n\n")
	fmt.Fprintf(bw, "Scale: %d×%d mesh, %d-node Internet-derived, %d-node policy topology, pulses 0–%d, interval %s, seed %d.\n\n",
		o.MeshRows, o.MeshCols, o.InternetNodes, o.PolicyNodes, o.MaxPulses, o.FlapInterval, o.Seed)

	// Table 1.
	fmt.Fprintf(bw, "## Table 1 — damping parameters\n\n")
	fmt.Fprintf(bw, "| parameter | Cisco | Juniper |\n|---|---|---|\n")
	for _, r := range Table1() {
		fmt.Fprintf(bw, "| %s | %s | %s |\n", r.Parameter, r.Cisco, r.Juniper)
	}
	fmt.Fprintln(bw)

	// Figures 8/9/13/14.
	eval, err := Eval(o)
	if err != nil {
		return err
	}
	fmt.Fprintf(bw, "## Figures 8 & 13 — convergence time (s) vs. pulses\n\n")
	fmt.Fprintf(bw, "| pulses | no damping | damping (mesh) | damping (internet) | damping+RCN | calculation |\n")
	fmt.Fprintf(bw, "|---|---|---|---|---|---|\n")
	secs := func(d time.Duration) string { return fmt.Sprintf("%.0f", d.Seconds()) }
	for _, r := range eval.Rows {
		fmt.Fprintf(bw, "| %d | %s | %s | %s | %s | %s |\n", r.Pulses,
			secs(r.NoDampingMeshConv), secs(r.DampingMeshConv),
			secs(r.DampingInternetConv), secs(r.RCNMeshConv), secs(r.CalcConv))
	}
	if eval.Nh > 0 {
		fmt.Fprintf(bw, "\nCritical point **Nh = %d**: from there on, measured damping convergence matches the Section 3 calculation (the paper reports Nh = 5 at paper scale).\n\n", eval.Nh)
	} else {
		fmt.Fprintf(bw, "\nNo critical point within the swept range.\n\n")
	}
	fmt.Fprintf(bw, "## Figures 9 & 14 — message count vs. pulses\n\n")
	fmt.Fprintf(bw, "| pulses | no damping | damping (mesh) | damping (internet) | damping+RCN |\n|---|---|---|---|---|\n")
	for _, r := range eval.Rows {
		fmt.Fprintf(bw, "| %d | %d | %d | %d | %d |\n", r.Pulses,
			r.NoDampingMeshMsgs, r.DampingMeshMsgs, r.DampingInternetMsgs, r.RCNMeshMsgs)
	}
	fmt.Fprintln(bw)

	// Figure 10.
	fig10, err := Fig10(o)
	if err != nil {
		return err
	}
	fmt.Fprintf(bw, "## Figure 10 — damping episodes (n = 1, 3, 5)\n\n")
	fmt.Fprintf(bw, "| n | convergence (s) | updates | peak damped links | noisy reuses | silent reuses | phases |\n")
	fmt.Fprintf(bw, "|---|---|---|---|---|---|---|\n")
	for _, n := range []int{1, 3, 5} {
		r := fig10.Runs[n]
		fmt.Fprintf(bw, "| %d | %s | %d | %d | %d | %d | %s |\n", n,
			secs(r.ConvergenceTime), r.MessageCount, r.MaxDamped,
			r.NoisyReuses, r.SilentReuses, r.Phases)
	}
	fmt.Fprintln(bw)

	// Figure 15.
	fig15, err := Fig15(o)
	if err != nil {
		return err
	}
	fmt.Fprintf(bw, "## Figure 15 — routing policy impact (%d nodes)\n\n", fig15.Nodes)
	fmt.Fprintf(bw, "| pulses | with policy (s) | no policy (s) | intended (s) |\n|---|---|---|---|\n")
	for _, r := range fig15.Rows {
		fmt.Fprintf(bw, "| %d | %s | %s | %s |\n", r.Pulses,
			secs(r.WithPolicy), secs(r.NoPolicy), secs(r.Intended))
	}
	fmt.Fprintln(bw)

	// Extensions.
	filters, err := FilterComparison(o, PulseRange(1, min(3, o.MaxPulses)))
	if err != nil {
		return err
	}
	fmt.Fprintf(bw, "## Penalty filters — classic vs. selective vs. RCN\n\n")
	fmt.Fprintf(bw, "| pulses | classic (s) | selective (s) | RCN (s) | intended (s) | classic damped | selective damped | RCN damped |\n")
	fmt.Fprintf(bw, "|---|---|---|---|---|---|---|---|\n")
	for _, r := range filters {
		fmt.Fprintf(bw, "| %d | %s | %s | %s | %s | %d | %d | %d |\n", r.Pulses,
			secs(r.Classic), secs(r.Selective), secs(r.RCN), secs(r.Intended),
			r.ClassicDamped, r.SelDamped, r.RCNDamped)
	}
	fmt.Fprintln(bw)

	deployment, err := PartialDeployment(o, []int{0, 25, 50, 75, 100}, 1)
	if err != nil {
		return err
	}
	fmt.Fprintf(bw, "## Partial deployment (single pulse)\n\n")
	fmt.Fprintf(bw, "| deployed %% | convergence (s) | messages | peak damped |\n|---|---|---|---|\n")
	for _, r := range deployment {
		fmt.Fprintf(bw, "| %d | %s | %d | %d |\n", r.Percent, secs(r.Conv), r.Msgs, r.MaxDamped)
	}
	fmt.Fprintln(bw)

	events, err := ConvergenceEvents(o)
	if err != nil {
		return err
	}
	fmt.Fprintf(bw, "## Plain-BGP convergence baseline (Labovitz events)\n\n")
	fmt.Fprintf(bw, "| event | convergence (s) | messages |\n|---|---|---|\n")
	for _, r := range events {
		fmt.Fprintf(bw, "| %s | %s | %d |\n", r.Event, secs(r.Convergence), r.Messages)
	}
	fmt.Fprintln(bw)

	return bw.Flush()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
