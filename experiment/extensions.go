package experiment

import (
	"bufio"
	"fmt"
	"io"
	"time"

	"rfd/bgp"
	"rfd/damping"
)

// This file holds the experiments beyond the paper's figures: the
// variations its companion technical report (Zhang, Massey, Zhang,
// USC-CSD 03-805) reports — partial damping deployment, different flapping
// intervals, different topology sizes — plus a head-to-head of the penalty
// filters discussed in Section 6 (classic damping, Mao et al.'s selective
// damping, RCN-enhanced damping).

// DeploymentRow is one partial-deployment measurement.
type DeploymentRow struct {
	// Percent of routers running damping (the rest forward unfiltered).
	Percent int
	// Conv is the convergence time; Msgs the update count; MaxDamped the
	// peak suppressed-pair count.
	Conv      time.Duration
	Msgs      int
	MaxDamped int
}

// PartialDeployment sweeps the fraction of damping routers on the mesh for
// the given pulse count. Deployment is spread deterministically over the
// mesh by a coprime stride, so 25 % really means one in four routers
// scattered across the torus (not one contiguous quadrant).
func PartialDeployment(o Options, percents []int, pulses int) ([]DeploymentRow, error) {
	params := damping.Cisco()
	nodes := o.MeshRows * o.MeshCols
	rows := make([]DeploymentRow, 0, len(percents))
	for _, pct := range percents {
		if pct < 0 || pct > 100 {
			return nil, fmt.Errorf("experiment: deployment percent %d out of range", pct)
		}
		cfg := o.baseConfig()
		pct := pct
		cfg.DampingSelect = func(id bgp.RouterID) *damping.Params {
			if int(id) >= nodes {
				return nil // the attached originAS never damps
			}
			// 37 is coprime to every mesh size used here, spreading the
			// selected routers over the torus.
			if (int(id)*37%nodes)*100 < pct*nodes {
				return &params
			}
			return nil
		}
		sc, err := o.meshScenario(cfg)
		if err != nil {
			return nil, err
		}
		sc.Pulses = pulses
		res, err := o.run(sc)
		if err != nil {
			return nil, fmt.Errorf("experiment: deployment %d%%: %w", pct, err)
		}
		rows = append(rows, DeploymentRow{
			Percent:   pct,
			Conv:      res.ConvergenceTime,
			Msgs:      res.MessageCount,
			MaxDamped: res.MaxDamped,
		})
	}
	return rows, nil
}

// WriteDeploymentCSV emits the partial-deployment sweep.
func WriteDeploymentCSV(w io.Writer, rows []DeploymentRow) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "deployment_pct,convergence_s,messages,max_damped")
	for _, r := range rows {
		fmt.Fprintf(bw, "%d,%s,%d,%d\n", r.Percent, csvSeconds(r.Conv), r.Msgs, r.MaxDamped)
	}
	return bw.Flush()
}

// FilterRow compares the three penalty filters at one pulse count.
type FilterRow struct {
	Pulses int
	// Classic is plain RFC 2439 damping; Selective is Mao et al.'s
	// exploration heuristic; RCN is the paper's root-cause filter.
	Classic, Selective, RCN       time.Duration
	ClassicMsgs, SelMsgs, RCNMsgs int
	ClassicDamped, SelDamped      int
	RCNDamped                     int
	// Intended is the Section 3 calculation.
	Intended time.Duration
}

// FilterComparison runs the penalty-filter head-to-head on the mesh: the
// paper argues selective damping "does not detect all path exploration
// updates and does not address the problem of secondary charging", while
// RCN eliminates both.
func FilterComparison(o Options, pulses []int) ([]FilterRow, error) {
	classicSc, err := o.meshScenario(o.dampingConfig())
	if err != nil {
		return nil, err
	}
	selCfg := o.dampingConfig()
	selCfg.SelectiveDamping = true
	selSc, err := o.meshScenario(selCfg)
	if err != nil {
		return nil, err
	}
	rcnSc, err := o.meshScenario(o.rcnConfig())
	if err != nil {
		return nil, err
	}
	plainSc, err := o.meshScenario(o.baseConfig())
	if err != nil {
		return nil, err
	}

	classic, err := o.sweep(classicSc, pulses)
	if err != nil {
		return nil, err
	}
	selective, err := o.sweep(selSc, pulses)
	if err != nil {
		return nil, err
	}
	rcnRes, err := o.sweep(rcnSc, pulses)
	if err != nil {
		return nil, err
	}
	// t_up for the intended curve.
	plainSc.Pulses = 1
	plain, err := o.run(plainSc)
	if err != nil {
		return nil, err
	}

	rows := make([]FilterRow, len(pulses))
	for i, n := range pulses {
		pred, err := analyticPrediction(n, o.FlapInterval, plain.ConvergenceTime)
		if err != nil {
			return nil, err
		}
		rows[i] = FilterRow{
			Pulses:        n,
			Classic:       classic[i].Result.ConvergenceTime,
			Selective:     selective[i].Result.ConvergenceTime,
			RCN:           rcnRes[i].Result.ConvergenceTime,
			ClassicMsgs:   classic[i].Result.MessageCount,
			SelMsgs:       selective[i].Result.MessageCount,
			RCNMsgs:       rcnRes[i].Result.MessageCount,
			ClassicDamped: classic[i].Result.MaxDamped,
			SelDamped:     selective[i].Result.MaxDamped,
			RCNDamped:     rcnRes[i].Result.MaxDamped,
			Intended:      pred,
		}
	}
	return rows, nil
}

// WriteFilterCSV emits the penalty-filter comparison.
func WriteFilterCSV(w io.Writer, rows []FilterRow) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "pulses,classic_s,selective_s,rcn_s,intended_s,classic_damped,selective_damped,rcn_damped")
	for _, r := range rows {
		fmt.Fprintf(bw, "%d,%s,%s,%s,%s,%d,%d,%d\n", r.Pulses,
			csvSeconds(r.Classic), csvSeconds(r.Selective), csvSeconds(r.RCN),
			csvSeconds(r.Intended), r.ClassicDamped, r.SelDamped, r.RCNDamped)
	}
	return bw.Flush()
}

// IntervalRow is one flapping-interval measurement.
type IntervalRow struct {
	Interval  time.Duration
	Conv      time.Duration
	Msgs      int
	MaxDamped int
	// OriginSuppressed reports whether the origin link itself was damped —
	// slower flapping lets the penalty decay between pulses.
	OriginSuppressed bool
}

// FlapIntervalSweep varies the flapping interval at a fixed pulse count on
// the damped mesh (the tech report's "different flapping intervals").
func FlapIntervalSweep(o Options, intervals []time.Duration, pulses int) ([]IntervalRow, error) {
	rows := make([]IntervalRow, 0, len(intervals))
	for _, iv := range intervals {
		sc, err := o.meshScenario(o.dampingConfig())
		if err != nil {
			return nil, err
		}
		sc.Pulses = pulses
		sc.FlapInterval = iv
		res, err := o.run(sc)
		if err != nil {
			return nil, fmt.Errorf("experiment: interval %v: %w", iv, err)
		}
		rows = append(rows, IntervalRow{
			Interval:         iv,
			Conv:             res.ConvergenceTime,
			Msgs:             res.MessageCount,
			MaxDamped:        res.MaxDamped,
			OriginSuppressed: res.OriginSuppressed,
		})
	}
	return rows, nil
}

// WriteIntervalCSV emits the flapping-interval sweep.
func WriteIntervalCSV(w io.Writer, rows []IntervalRow) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "interval_s,convergence_s,messages,max_damped,origin_suppressed")
	for _, r := range rows {
		fmt.Fprintf(bw, "%s,%s,%d,%d,%t\n", csvSeconds(r.Interval), csvSeconds(r.Conv),
			r.Msgs, r.MaxDamped, r.OriginSuppressed)
	}
	return bw.Flush()
}

// SizeRow is one topology-size measurement.
type SizeRow struct {
	Nodes     int
	Conv      time.Duration
	Msgs      int
	MaxDamped int
}

// TopologySizeSweep varies the mesh size at a fixed pulse count (the tech
// report's "different topology sizes"): square tori of the given side
// lengths.
func TopologySizeSweep(o Options, sides []int, pulses int) ([]SizeRow, error) {
	rows := make([]SizeRow, 0, len(sides))
	for _, side := range sides {
		local := o
		local.MeshRows, local.MeshCols = side, side
		sc, err := local.meshScenario(local.dampingConfig())
		if err != nil {
			return nil, err
		}
		sc.Pulses = pulses
		res, err := o.run(sc)
		if err != nil {
			return nil, fmt.Errorf("experiment: %dx%d mesh: %w", side, side, err)
		}
		rows = append(rows, SizeRow{
			Nodes:     side * side,
			Conv:      res.ConvergenceTime,
			Msgs:      res.MessageCount,
			MaxDamped: res.MaxDamped,
		})
	}
	return rows, nil
}

// WriteSizeCSV emits the topology-size sweep.
func WriteSizeCSV(w io.Writer, rows []SizeRow) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "nodes,convergence_s,messages,max_damped")
	for _, r := range rows {
		fmt.Fprintf(bw, "%d,%s,%d,%d\n", r.Nodes, csvSeconds(r.Conv), r.Msgs, r.MaxDamped)
	}
	return bw.Flush()
}
