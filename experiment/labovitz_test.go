package experiment

import (
	"bytes"
	"testing"
)

func TestConvergenceEventsOrdering(t *testing.T) {
	rows, err := ConvergenceEvents(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("events = %d", len(rows))
	}
	byName := map[string]EventMeasurement{}
	for _, r := range rows {
		byName[r.Event] = r
	}
	for _, name := range []string{"Tup", "Tdown", "Tlong", "Tshort"} {
		r, ok := byName[name]
		if !ok {
			t.Fatalf("missing event %s", name)
		}
		if r.Messages == 0 {
			t.Fatalf("%s triggered no updates", name)
		}
	}
	// Labovitz's result: bad news (Tdown, Tlong) is much slower than good
	// news (Tup, Tshort) because of path exploration.
	if byName["Tdown"].Convergence <= byName["Tup"].Convergence {
		t.Fatalf("Tdown (%v) not slower than Tup (%v)",
			byName["Tdown"].Convergence, byName["Tup"].Convergence)
	}
	if byName["Tlong"].Convergence <= byName["Tshort"].Convergence {
		t.Fatalf("Tlong (%v) not slower than Tshort (%v)",
			byName["Tlong"].Convergence, byName["Tshort"].Convergence)
	}
	// And bad news costs more messages, too.
	if byName["Tdown"].Messages <= byName["Tup"].Messages {
		t.Fatalf("Tdown (%d msgs) not costlier than Tup (%d msgs)",
			byName["Tdown"].Messages, byName["Tup"].Messages)
	}
}

func TestConvergenceEventsCSV(t *testing.T) {
	rows := []EventMeasurement{{Event: "Tup", Messages: 5}}
	var buf bytes.Buffer
	if err := WriteEventsCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "event,convergence_s,messages\nTup,0,5\n" {
		t.Fatalf("CSV = %q", buf.String())
	}
}
