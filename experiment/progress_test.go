package experiment

import (
	"context"
	"strings"
	"sync"
	"testing"

	"rfd/topology"
)

// progressRecorder collects every hook invocation, concurrency-safe (the
// sweep's worker pool fires PointStarted/PointDone from several goroutines).
type progressRecorder struct {
	mu            sync.Mutex
	warmupStarted int
	warmupDone    int
	queued        []int
	started       []int
	done          []SweepPoint
	cached        []SweepPoint
}

func (r *progressRecorder) hook() *Progress {
	return &Progress{
		WarmupStarted: func() { r.mu.Lock(); r.warmupStarted++; r.mu.Unlock() },
		WarmupDone:    func() { r.mu.Lock(); r.warmupDone++; r.mu.Unlock() },
		PointQueued:   func(n int) { r.mu.Lock(); r.queued = append(r.queued, n); r.mu.Unlock() },
		PointStarted:  func(n int) { r.mu.Lock(); r.started = append(r.started, n); r.mu.Unlock() },
		PointDone:     func(p SweepPoint) { r.mu.Lock(); r.done = append(r.done, p); r.mu.Unlock() },
		CacheHit:      func(p SweepPoint) { r.mu.Lock(); r.cached = append(r.cached, p); r.mu.Unlock() },
	}
}

func progressScenario(t *testing.T) Scenario {
	t.Helper()
	g, err := topology.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	return Scenario{Graph: g, ISP: 0, Config: o.dampingConfig()}
}

// TestSweepProgressEvents pins the live-sweep lifecycle: one warm-up pair,
// then Queued/Started/Done exactly once per point, Done carrying the Result.
func TestSweepProgressEvents(t *testing.T) {
	rec := &progressRecorder{}
	ctx := WithProgress(context.Background(), rec.hook())
	pulses := []int{0, 1, 2}
	pts, err := SweepParallelContext(ctx, progressScenario(t), pulses, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rec.warmupStarted != 1 || rec.warmupDone != 1 {
		t.Fatalf("warm-up events = %d started / %d done, want 1/1", rec.warmupStarted, rec.warmupDone)
	}
	if len(rec.queued) != len(pulses) || len(rec.started) != len(pulses) || len(rec.done) != len(pulses) {
		t.Fatalf("point events = %d queued / %d started / %d done, want %d each",
			len(rec.queued), len(rec.started), len(rec.done), len(pulses))
	}
	if len(rec.cached) != 0 {
		t.Fatalf("uncached sweep reported %d cache hits", len(rec.cached))
	}
	seen := map[int]bool{}
	for _, p := range rec.done {
		if p.Err != nil || p.Result == nil {
			t.Fatalf("PointDone n=%d without a result: %+v", p.Pulses, p)
		}
		seen[p.Pulses] = true
	}
	for i, n := range pulses {
		if !seen[n] {
			t.Fatalf("no PointDone for n=%d", n)
		}
		if pts[i].Pulses != n {
			t.Fatalf("sweep output reordered: %+v", pts)
		}
	}
}

// TestSweepProgressReportsFailedPoints: a failing point still reports
// PointDone, carrying its error.
func TestSweepProgressReportsFailedPoints(t *testing.T) {
	rec := &progressRecorder{}
	ctx := WithProgress(context.Background(), rec.hook())
	_, err := SweepParallelContext(ctx, progressScenario(t), []int{0, -1}, 1)
	if err == nil {
		t.Fatal("negative pulse count did not fail")
	}
	var failed int
	for _, p := range rec.done {
		if p.Err != nil {
			failed++
		}
	}
	if len(rec.done) != 2 || failed != 1 {
		t.Fatalf("done events = %d (%d failed), want 2 with 1 failure", len(rec.done), failed)
	}
}

// TestSweepContextProgressCacheHits pins the cache-vs-live distinction: the
// first sweep is all live points, a repeat of the same request is all
// CacheHit — no warm-up, nothing queued.
func TestSweepContextProgressCacheHits(t *testing.T) {
	base := progressScenario(t)
	cache := NewRunCache()
	pulses := []int{0, 1, 2}

	first := &progressRecorder{}
	if _, err := cache.SweepContext(WithProgress(context.Background(), first.hook()), base, pulses, 2); err != nil {
		t.Fatal(err)
	}
	if len(first.done) != 3 || len(first.cached) != 0 {
		t.Fatalf("first sweep events = %d live / %d cached, want 3/0", len(first.done), len(first.cached))
	}

	second := &progressRecorder{}
	if _, err := cache.SweepContext(WithProgress(context.Background(), second.hook()), base, pulses, 2); err != nil {
		t.Fatal(err)
	}
	if len(second.cached) != 3 || len(second.done) != 0 || len(second.queued) != 0 {
		t.Fatalf("repeat sweep events = %d cached / %d live / %d queued, want 3/0/0",
			len(second.cached), len(second.done), len(second.queued))
	}
	if second.warmupStarted != 0 {
		t.Fatalf("repeat sweep ran %d warm-ups, want 0", second.warmupStarted)
	}
	for _, p := range second.cached {
		if p.Err != nil || p.Result == nil {
			t.Fatalf("cache hit n=%d without a result", p.Pulses)
		}
	}
}

// TestPoolWaiterSeesWarmup: a request whose warm-up is served by a pooled
// checkpoint that is already resolved reports no warm-up events — the latency
// it would make visible does not exist.
func TestPoolProgressSkipsParkedWarmup(t *testing.T) {
	base := progressScenario(t)
	pool := NewCheckpointPool(4)
	cache := NewRunCache()
	cache.SetCheckpointPool(pool)

	first := &progressRecorder{}
	if _, err := cache.SweepContext(WithProgress(context.Background(), first.hook()), base, []int{0, 1}, 2); err != nil {
		t.Fatal(err)
	}
	if first.warmupStarted != 1 || first.warmupDone != 1 {
		t.Fatalf("first sweep warm-up events = %d/%d, want 1/1", first.warmupStarted, first.warmupDone)
	}

	// Fresh pulse counts: result-cache misses, but the warm-up is parked.
	second := &progressRecorder{}
	if _, err := cache.SweepContext(WithProgress(context.Background(), second.hook()), base, []int{2, 3}, 2); err != nil {
		t.Fatal(err)
	}
	if second.warmupStarted != 0 || second.warmupDone != 0 {
		t.Fatalf("pooled sweep warm-up events = %d/%d, want 0/0 (snapshot was parked)",
			second.warmupStarted, second.warmupDone)
	}
	if len(second.done) != 2 {
		t.Fatalf("pooled sweep live points = %d, want 2", len(second.done))
	}
}

// TestUnhookedSweepUnchanged: without WithProgress the pipeline takes the
// pre-hook path — a plain context reports nothing and the sweep succeeds.
func TestUnhookedSweepUnchanged(t *testing.T) {
	pts, err := SweepParallelContext(context.Background(), progressScenario(t), []int{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[1].Result == nil {
		t.Fatalf("unhooked sweep = %+v", pts)
	}
	if progressFrom(context.Background()) != nil {
		t.Fatal("progressFrom on a bare context is non-nil")
	}
}

// TestTextProgress drives the CLI feed through a real cached sweep and checks
// the line shapes for live, warm-up and cached events.
func TestTextProgress(t *testing.T) {
	base := progressScenario(t)
	cache := NewRunCache()
	var buf strings.Builder
	var mu sync.Mutex
	w := &lockedWriter{mu: &mu, w: &buf}
	ctx := WithProgress(context.Background(), TextProgress(w))
	if _, err := cache.SweepContext(ctx, base, []int{0, 1}, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.SweepContext(ctx, base, []int{1}, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"progress: warm-up started",
		"progress: warm-up done",
		"progress: n=1 done",
		"progress: n=1 cached",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("TextProgress output missing %q:\n%s", want, out)
		}
	}
}

// lockedWriter guards a strings.Builder for concurrent hook writes.
type lockedWriter struct {
	mu *sync.Mutex
	w  *strings.Builder
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
