package experiment_test

import (
	"fmt"

	"rfd/bgp"
	"rfd/damping"
	"rfd/experiment"
	"rfd/topology"
)

// ExampleRun reproduces the paper's core observation in miniature: one flap
// on a fully damped mesh falsely suppresses routes far from the origin and
// stretches convergence to reuse-timer scale, even though the origin link
// itself is never suppressed.
func ExampleRun() {
	mesh, err := topology.Torus(5, 5)
	if err != nil {
		panic(err)
	}
	cfg := bgp.DefaultConfig()
	params := damping.Cisco()
	cfg.Damping = &params

	res, err := experiment.Run(experiment.Scenario{
		Graph:  mesh,
		ISP:    0,
		Config: cfg,
		Pulses: 1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("origin link suppressed: %t\n", res.OriginSuppressed)
	fmt.Printf("remote links falsely suppressed: %t\n", res.MaxDamped > 0)
	fmt.Printf("convergence beyond 20 minutes: %t\n", res.ConvergenceTime.Minutes() > 20)
	// Output:
	// origin link suppressed: false
	// remote links falsely suppressed: true
	// convergence beyond 20 minutes: true
}
