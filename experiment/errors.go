package experiment

import (
	"context"
	"errors"
	"fmt"
)

// ErrCanceled marks a run (or sweep point) that stopped because its context
// was cancelled. Errors carrying it also wrap the context's cause, so
// errors.Is(err, context.Canceled) holds for a plain cancel.
var ErrCanceled = errors.New("experiment: run canceled")

// ErrBudgetExceeded marks a run (or sweep point) that stopped because its
// context's deadline — the caller's time budget — expired. Errors carrying it
// also wrap context.DeadlineExceeded.
var ErrBudgetExceeded = errors.New("experiment: run budget exceeded")

// ctxErr translates a tripped context into the package's typed error,
// preserving the cause chain. Callers must only invoke it when ctx.Err() is
// non-nil.
func ctxErr(ctx context.Context) error {
	cause := context.Cause(ctx)
	if errors.Is(ctx.Err(), context.DeadlineExceeded) || errors.Is(cause, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrBudgetExceeded, cause)
	}
	return fmt.Errorf("%w: %w", ErrCanceled, cause)
}

// PanicError is a run panic captured at an isolation boundary (a
// SweepParallel worker or a RunCache owner) and converted into a per-point
// error instead of killing the process. The panic value and a quarantined
// stack trace ride along for diagnosis; Fingerprint identifies the scenario
// when it was cacheable (empty otherwise), so a poisoned input can be traced
// across processes sharing a persistent cache.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Fingerprint is the scenario's cache fingerprint, when it had one.
	Fingerprint string
	// Stack is the goroutine stack captured at recovery, already trimmed to
	// the panicking frames. It is quarantined here — attached to the one
	// point that died — rather than written to stderr, in the spirit of the
	// invariant checker's desync quarantine: one sick run must not take the
	// sweep (or the daemon) down with it.
	Stack []byte
}

// Error renders the panic value; the stack is available on the struct.
func (e *PanicError) Error() string {
	if e.Fingerprint != "" {
		return fmt.Sprintf("experiment: run panicked (fingerprint %.12s…): %v", e.Fingerprint, e.Value)
	}
	return fmt.Sprintf("experiment: run panicked: %v", e.Value)
}
