package experiment

import (
	"context"
	"fmt"
	"time"

	"rfd/bgp"
	"rfd/faults"
	"rfd/metrics"
	"rfd/topology"
	"rfd/trace"
)

// validateSharded checks Shards against the features that require the
// sequential engine. A Shards<=1 scenario is unconstrained.
func (s Scenario) validateSharded() error {
	if s.Shards < 0 {
		return fmt.Errorf("experiment: negative shard count %d", s.Shards)
	}
	if s.Shards <= 1 {
		return nil
	}
	if s.Watchdog != nil {
		return fmt.Errorf("experiment: the convergence watchdog drives a single kernel; it cannot supervise a sharded run (Shards=%d)", s.Shards)
	}
	if s.Check {
		return fmt.Errorf("experiment: the invariant checker attaches to a single network; it cannot observe a sharded run (Shards=%d)", s.Shards)
	}
	if s.Impair != nil && !s.Impair.LinkStreams() {
		return fmt.Errorf("experiment: sharded runs need per-link impairment streams (faults.Impairments.UseLinkStreams); the global stream's consumption order is engine-dependent")
	}
	if _, err := bgp.Lookahead(s.Config); err != nil {
		return fmt.Errorf("experiment: %w", err)
	}
	return nil
}

// runSharded executes the scenario on the sharded engine: the run topology is
// partitioned across sc.Shards shard networks under conservative-lookahead
// epochs, and the Result is reconstructed from the merged per-shard event
// traces. Because the sharded engine's canonical trace is byte-identical to
// the sequential engine's for the same seed, the reconstructed Result matches
// a Shards<=1 run of the same scenario.
func runSharded(ctx context.Context, sc Scenario) (*Result, error) {
	sn, origin, err := convergeSharded(ctx, sc)
	if err != nil {
		return nil, err
	}
	return measureSharded(ctx, sc, sn, origin)
}

// convergeSharded is converge for the sharded engine: build the partitioned
// run topology, originate the flap prefix, drain to convergence, align the
// shard clocks at the barrier and wipe damping state and counters. The
// returned ensemble is quiescent at a barrier and ready for measureSharded —
// or for a ShardedNetwork.Snapshot, which is how sharded sweeps amortize the
// warm-up across pulse counts. The caller owns the ensemble (Close it).
func convergeSharded(ctx context.Context, sc Scenario) (*bgp.ShardedNetwork, bgp.RouterID, error) {
	if err := sc.validate(); err != nil {
		return nil, 0, err
	}

	// Build the run topology exactly as converge does.
	g := sc.Graph.Clone()
	origin := g.AddNode()
	if err := g.AddEdge(origin, sc.ISP); err != nil {
		return nil, 0, fmt.Errorf("experiment: attach origin: %w", err)
	}
	if g.Annotated() {
		if err := g.SetRelationship(origin, sc.ISP, topology.RelProvider); err != nil {
			return nil, 0, fmt.Errorf("experiment: annotate origin link: %w", err)
		}
	}
	assign, err := topology.Partition(g, sc.Shards)
	if err != nil {
		return nil, 0, fmt.Errorf("experiment: partition: %w", err)
	}
	sn, err := bgp.NewShardedNetwork(g, sc.Config, assign)
	if err != nil {
		return nil, 0, err
	}

	// Warm-up: no hooks installed, so the trace covers only the flap phase.
	sn.Router(origin).Originate(FlapPrefix)
	if err := sn.Group().RunContext(ctx); err != nil {
		sn.Close()
		return nil, 0, wrapInterrupt(ctx, "warm-up", err)
	}
	sn.Align()
	sn.ResetDamping()
	sn.ResetCounters()
	return sn, origin, nil
}

// measureSharded executes the scenario's flap phase and drain on a converged
// ensemble (fresh from convergeSharded, or a fork of a sharded checkpoint)
// and reconstructs the Result from the merged per-shard traces. It takes
// ownership of sn and closes it.
func measureSharded(ctx context.Context, sc Scenario, sn *bgp.ShardedNetwork, origin bgp.RouterID) (*Result, error) {
	defer sn.Close()
	grp := sn.Group()

	interval := sc.FlapInterval
	if interval == 0 {
		interval = DefaultFlapInterval
	}
	epoch := grp.Now()

	// Per-shard trace logs; the Result is rebuilt from their canonical merge
	// after the run. Hooks fire on worker goroutines, so they must not share
	// mutable state across shards — one log per shard is exactly that.
	logs := make([]*trace.Log, sn.NumShards())
	for s := 0; s < sn.NumShards(); s++ {
		logs[s] = trace.NewLog(0)
		sn.Shard(s).SetHooks(bgp.TraceHooks(logs[s]))
	}

	// Fault apparatus: one impairment fork per shard (each consumes only the
	// per-link streams of the links its shard sends on), and the fault plan
	// replicated to every shard at the same virtual times.
	var imps []*faults.Impairments
	if sc.Impair != nil {
		imps = make([]*faults.Impairments, sn.NumShards())
		for s := range imps {
			imps[s] = sc.Impair.Fork()
			sn.Shard(s).SetImpairment(imps[s])
		}
	}
	if sc.Faults != nil {
		if err := sc.Faults.ApplySharded(sn, epoch, imps); err != nil {
			return nil, fmt.Errorf("experiment: fault plan: %w", err)
		}
	}

	// Flap phase, mirroring measure.
	flapDown := func() error {
		if sc.FlapViaLink {
			return sn.SetLinkState(origin, bgp.RouterID(sc.ISP), false)
		}
		sn.Router(origin).StopOriginating(FlapPrefix)
		return nil
	}
	flapUp := func() error {
		if sc.FlapViaLink {
			return sn.SetLinkState(origin, bgp.RouterID(sc.ISP), true)
		}
		sn.Router(origin).Originate(FlapPrefix)
		return nil
	}
	var flapStart, flapEnd time.Duration
	if sc.Pulses > 0 {
		flapStart = grp.Now() - epoch
		for i := 0; i < sc.Pulses; i++ {
			if err := flapDown(); err != nil {
				return nil, fmt.Errorf("experiment: pulse %d down: %w", i+1, err)
			}
			if err := grp.RunUntilContext(ctx, grp.Now()+interval); err != nil {
				return nil, wrapInterrupt(ctx, fmt.Sprintf("pulse %d", i+1), err)
			}
			if err := flapUp(); err != nil {
				return nil, fmt.Errorf("experiment: pulse %d up: %w", i+1, err)
			}
			flapEnd = grp.Now() - epoch
			if i < sc.Pulses-1 {
				if err := grp.RunUntilContext(ctx, grp.Now()+interval); err != nil {
					return nil, wrapInterrupt(ctx, fmt.Sprintf("pulse %d", i+1), err)
				}
			}
		}
	}

	// Drain.
	if err := grp.RunContext(ctx); err != nil {
		return nil, wrapInterrupt(ctx, "drain", err)
	}
	if err := sn.CheckConsistency(); err != nil && sc.Impair == nil {
		return nil, fmt.Errorf("experiment: post-run consistency: %w", err)
	}

	res := reconstructResult(sc, trace.Merge(logs...).Canonical(), epoch, origin)
	res.FlapStart = flapStart
	res.FlapEnd = flapEnd
	res.EndTime = grp.Now() - epoch
	res.Dropped = sn.Dropped()
	res.MessageCount = res.Updates.Count()
	if last, ok := res.Updates.Last(); ok && last > res.FlapEnd {
		res.ConvergenceTime = last - res.FlapEnd
	}
	res.MaxDamped = res.Damped.Max()
	res.Phases = metrics.ComputePhases(res.Updates, res.NoisyReuseTimes, res.FlapStart, res.FlapEnd)
	return res, nil
}

// reconstructResult replays the merged canonical event trace into the same
// series and counters measure's live hooks would have produced. The damped
// count is a running ±1 over suppress/unsuppress events — valid because
// damping state was reset at the epoch, so the count starts at zero.
func reconstructResult(sc Scenario, events []trace.Event, epoch time.Duration, origin bgp.RouterID) *Result {
	res := &Result{
		Pulses:             sc.Pulses,
		Origin:             origin,
		ISP:                bgp.RouterID(sc.ISP),
		Updates:            &metrics.EventSeries{},
		Damped:             &metrics.StepSeries{},
		NoisyReuseTimes:    &metrics.EventSeries{},
		PenaltyTraces:      make(map[PenaltyWatch]*metrics.FloatSeries, len(sc.Watch)),
		LastUpdateByRouter: make(map[bgp.RouterID]time.Duration),
	}
	for _, w := range sc.Watch {
		res.PenaltyTraces[w] = &metrics.FloatSeries{}
	}
	damped := 0
	for _, ev := range events {
		at := ev.At - epoch
		switch ev.Kind {
		case trace.KindDeliver:
			res.Updates.Record(at)
			res.LastUpdateByRouter[bgp.RouterID(ev.Router)] = at
		case trace.KindSuppress, trace.KindUnsuppress:
			if ev.Kind == trace.KindSuppress {
				damped++
				if ev.Router == int(sc.ISP) && ev.Peer == int(origin) {
					res.OriginSuppressed = true
				}
			} else {
				damped--
			}
			res.Damped.Record(at, damped)
		case trace.KindReuse:
			if ev.Noisy {
				res.NoisyReuses++
				res.NoisyReuseTimes.Record(at)
			} else {
				res.SilentReuses++
			}
		case trace.KindPenalty:
			w := PenaltyWatch{Router: bgp.RouterID(ev.Router), Peer: bgp.RouterID(ev.Peer)}
			if tr, ok := res.PenaltyTraces[w]; ok {
				tr.Record(at, ev.Penalty)
			}
		}
		if sc.Trace != nil {
			shifted := ev
			shifted.At = at
			sc.Trace.Append(shifted)
		}
	}
	return res
}
