package experiment

import (
	"bufio"
	"fmt"
	"io"
	"time"

	"rfd/bgp"
	"rfd/sim"
	"rfd/topology"
)

// The paper's analysis builds on Labovitz et al.'s delayed-convergence
// taxonomy (SIGCOMM 2000), which it cites for path exploration and for
// ordinary BGP convergence times ("usually between seconds and a few
// minutes"). This file reproduces that baseline on the simulator: the four
// canonical routing events measured on a dual-homed origin.
//
//	Tup    — a previously unreachable destination is announced
//	Tdown  — the destination is withdrawn entirely
//	Tlong  — the primary link fails; routers fail over to a longer path
//	Tshort — the primary link recovers; routers return to the shorter path
//
// Labovitz's headline result — Tdown and Tlong take far longer than Tup and
// Tshort because bad news triggers path exploration while good news replaces
// routes directly — is asserted by the tests and reported by the
// BenchmarkLabovitzEvents bench.

// EventMeasurement is the outcome of one canonical routing event.
type EventMeasurement struct {
	// Event is "Tup", "Tdown", "Tlong" or "Tshort".
	Event string
	// Convergence is the time from the event to the last resulting update.
	Convergence time.Duration
	// Messages is the number of updates the event triggered.
	Messages int
}

// ConvergenceEvents measures the four events on the mesh with a dual-homed
// origin: a direct (primary) link to the ispAS and a two-hop (backup) path
// via a relay attached to the node farthest from the ispAS. Damping is off —
// this is the plain-BGP baseline the paper compares against.
func ConvergenceEvents(o Options) ([]EventMeasurement, error) {
	g, err := topology.Torus(o.MeshRows, o.MeshCols)
	if err != nil {
		return nil, err
	}
	isp := topology.NodeID(0)
	// Backup attachment point: the node farthest from the ispAS, so backup
	// paths are strictly longer nearly everywhere.
	far := isp
	maxDist := -1
	for id, d := range g.BFS(isp) {
		if d > maxDist || (d == maxDist && id < far) {
			far, maxDist = id, d
		}
	}
	origin := g.AddNode()
	relay := g.AddNode()
	if err := g.AddEdge(origin, isp); err != nil {
		return nil, err
	}
	if err := g.AddEdge(origin, relay); err != nil {
		return nil, err
	}
	if err := g.AddEdge(relay, far); err != nil {
		return nil, err
	}

	cfg := o.baseConfig()
	k := sim.NewKernel(sim.WithSeed(cfg.Seed))
	n, err := bgp.NewNetwork(k, g, cfg)
	if err != nil {
		return nil, err
	}

	var out []EventMeasurement
	measure := func(event string, act func() error) error {
		n.ResetCounters()
		start := k.Now()
		if err := act(); err != nil {
			return err
		}
		if err := k.Run(); err != nil {
			return fmt.Errorf("experiment: %s: %w", event, err)
		}
		conv := time.Duration(0)
		if n.Delivered() > 0 {
			conv = n.LastDelivery() - start
		}
		out = append(out, EventMeasurement{
			Event:       event,
			Convergence: conv,
			Messages:    int(n.Delivered()),
		})
		return n.CheckConsistency()
	}

	// Tup: announce the (so far unknown) destination.
	if err := measure("Tup", func() error {
		n.Router(origin).Originate(FlapPrefix)
		return nil
	}); err != nil {
		return nil, err
	}
	// Tlong: fail the primary link; traffic shifts to the longer backup.
	if err := measure("Tlong", func() error {
		return n.SetLinkState(origin, isp, false)
	}); err != nil {
		return nil, err
	}
	// Tshort: recover the primary; traffic returns to the shorter path.
	if err := measure("Tshort", func() error {
		return n.SetLinkState(origin, isp, true)
	}); err != nil {
		return nil, err
	}
	// Tdown: withdraw the destination entirely.
	if err := measure("Tdown", func() error {
		n.Router(origin).StopOriginating(FlapPrefix)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteEventsCSV emits the Labovitz baseline.
func WriteEventsCSV(w io.Writer, rows []EventMeasurement) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "event,convergence_s,messages")
	for _, r := range rows {
		fmt.Fprintf(bw, "%s,%s,%d\n", r.Event, csvSeconds(r.Convergence), r.Messages)
	}
	return bw.Flush()
}
