package experiment

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress observes the sweep pipeline as it executes: the shared warm-up
// (the dominant latency of a small sweep), each point's lifecycle, and —
// through RunCache.SweepContext — whether a point was computed live or served
// from cache. Every field is optional; a nil field (or a nil *Progress) is
// simply not called, and an unhooked sweep takes the exact same path as
// before the hook existed.
//
// The hook rides on the request's context (WithProgress), not on the
// Scenario, so it is invisible to fingerprints and caching: two requests for
// the same scenario — one streaming progress, one not — share cache entries
// and checkpoints. That also makes it singleflight-safe: a caller whose
// points resolve from another request's in-flight execution sees them as
// CacheHit on its own hook, while the owning request's hook sees the live
// PointStarted/PointDone events. Callbacks may fire concurrently from sweep
// worker goroutines; implementations must be safe for concurrent use.
type Progress struct {
	// WarmupStarted fires when a warm-up (convergence) phase begins on this
	// request's behalf — either run directly or awaited from a concurrent
	// request populating the shared checkpoint pool. A request whose warm-up
	// is already pooled fires neither warm-up hook.
	WarmupStarted func()
	// WarmupDone fires when that warm-up completes successfully.
	WarmupDone func()
	// PointQueued fires once per pulse count when the sweep enqueues it for
	// live execution (cache-served points are never queued).
	PointQueued func(pulses int)
	// PointStarted fires when a worker begins executing the point.
	PointStarted func(pulses int)
	// PointDone fires when a live point settles, successfully or not: the
	// SweepPoint carries the Result or the error (including typed
	// cancellation for points skipped after the context tripped). Every
	// queued point eventually reports PointDone exactly once.
	PointDone func(SweepPoint)
	// CacheHit fires instead of the Queued/Started/Done sequence for a point
	// served without running: an in-memory or persistent-store cache hit, or
	// a point resolved by a concurrent request's execution (singleflight).
	CacheHit func(SweepPoint)
}

// progressKey carries a *Progress on a context.
type progressKey struct{}

// WithProgress returns a context whose sweep and checkpoint operations report
// to p. Passing nil returns ctx unchanged.
func WithProgress(ctx context.Context, p *Progress) context.Context {
	if p == nil {
		return ctx
	}
	return context.WithValue(ctx, progressKey{}, p)
}

// progressFrom extracts the context's Progress hook (nil when absent — the
// nil-safe fire methods below make that the zero-cost default).
func progressFrom(ctx context.Context) *Progress {
	p, _ := ctx.Value(progressKey{}).(*Progress)
	return p
}

func (p *Progress) warmupStarted() {
	if p != nil && p.WarmupStarted != nil {
		p.WarmupStarted()
	}
}

func (p *Progress) warmupDone() {
	if p != nil && p.WarmupDone != nil {
		p.WarmupDone()
	}
}

func (p *Progress) pointQueued(pulses int) {
	if p != nil && p.PointQueued != nil {
		p.PointQueued(pulses)
	}
}

func (p *Progress) pointStarted(pulses int) {
	if p != nil && p.PointStarted != nil {
		p.PointStarted(pulses)
	}
}

func (p *Progress) pointDone(pt SweepPoint) {
	if p != nil && p.PointDone != nil {
		p.PointDone(pt)
	}
}

func (p *Progress) cacheHit(pt SweepPoint) {
	if p != nil && p.CacheHit != nil {
		p.CacheHit(pt)
	}
}

// TextProgress returns a Progress that prints one human-readable line per
// event to w — the live per-point feed behind the CLIs' -progress flag.
// Writes are serialized internally, so the hook is safe for the sweep's
// concurrent workers; w itself is only written under the hook's lock.
func TextProgress(w io.Writer) *Progress {
	var mu sync.Mutex
	var queued, done int
	var warmStart time.Time
	return &Progress{
		WarmupStarted: func() {
			mu.Lock()
			defer mu.Unlock()
			warmStart = time.Now()
			fmt.Fprintf(w, "progress: warm-up started\n")
		},
		WarmupDone: func() {
			mu.Lock()
			defer mu.Unlock()
			fmt.Fprintf(w, "progress: warm-up done in %v\n",
				time.Since(warmStart).Round(time.Millisecond))
		},
		PointQueued: func(int) {
			mu.Lock()
			defer mu.Unlock()
			queued++
		},
		PointDone: func(pt SweepPoint) {
			mu.Lock()
			defer mu.Unlock()
			done++
			if pt.Err != nil {
				fmt.Fprintf(w, "progress: n=%d failed (%d/%d): %v\n", pt.Pulses, done, queued, pt.Err)
				return
			}
			fmt.Fprintf(w, "progress: n=%d done (%d/%d): conv=%.0fs msgs=%d damped=%d\n",
				pt.Pulses, done, queued,
				pt.Result.ConvergenceTime.Seconds(), pt.Result.MessageCount, pt.Result.MaxDamped)
		},
		CacheHit: func(pt SweepPoint) {
			mu.Lock()
			defer mu.Unlock()
			if pt.Err != nil {
				fmt.Fprintf(w, "progress: n=%d failed (cached claim): %v\n", pt.Pulses, pt.Err)
				return
			}
			fmt.Fprintf(w, "progress: n=%d cached: conv=%.0fs msgs=%d damped=%d\n",
				pt.Pulses, pt.Result.ConvergenceTime.Seconds(), pt.Result.MessageCount, pt.Result.MaxDamped)
		},
	}
}
