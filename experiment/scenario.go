// Package experiment assembles the paper's simulation methodology
// (Section 5.1) on top of the bgp engine and regenerates every table and
// figure of the evaluation:
//
//   - a base topology (mesh or Internet-derived) with a randomly chosen
//     ispAS and an attached originAS (Figure 1);
//   - a warm-up phase in which every node learns a stable route, after
//     which damping state and counters are cleared;
//   - a pulse workload: n × (withdrawal, announcement) at a fixed flapping
//     interval, the final update always an announcement;
//   - measurement of convergence time (from the final announcement to the
//     last update observed) and message count (total updates delivered from
//     the first flap), plus the update series, damped-link-count series,
//     penalty traces and phase decomposition used by Figs 3, 7–10, 13–15.
package experiment

import (
	"context"
	"errors"
	"fmt"
	"time"

	"rfd/bgp"
	"rfd/check"
	"rfd/faults"
	"rfd/metrics"
	"rfd/sim"
	"rfd/topology"
	"rfd/trace"
)

// FlapPrefix is the destination originated by the originAS in every
// scenario.
const FlapPrefix = bgp.Prefix("origin/8")

// DefaultFlapInterval is the paper's flapping interval (Section 5.1).
const DefaultFlapInterval = 60 * time.Second

// PenaltyWatch selects one (router, peer) damping state whose penalty trace
// the run should record (Figs 3 and 7).
type PenaltyWatch struct {
	Router, Peer bgp.RouterID
}

// Scenario describes one simulation run. Graph is the base topology; Run
// clones it and attaches the originAS to ISP, so the caller's graph is never
// modified.
type Scenario struct {
	// Graph is the base topology (without the originAS).
	Graph *topology.Graph
	// ISP is the node the originAS attaches to.
	ISP topology.NodeID
	// Config is the protocol configuration for every router.
	Config bgp.Config
	// Pulses is the number of (withdrawal, announcement) pairs. Zero means
	// no flapping at all.
	Pulses int
	// FlapInterval separates consecutive flap events
	// (DefaultFlapInterval when zero).
	FlapInterval time.Duration
	// FlapViaLink, when true, flaps the physical originAS–ispAS link
	// (Network.SetLinkState) instead of toggling origination — the paper's
	// literal failure model. Both endpoints then stamp updates with link
	// root causes when RCN is enabled. The default origination toggle is
	// behaviourally equivalent and slightly cheaper.
	FlapViaLink bool
	// Watch lists damping states whose penalty traces to record. Router IDs
	// refer to the base graph; use OriginID() for the attached origin.
	Watch []PenaltyWatch
	// Trace, when non-nil, records every flap-phase event into the log
	// (times are flap-relative, like all Result times).
	Trace *trace.Log
	// Impair, when non-nil, is installed on the network after warm-up, so
	// the flap phase and drain run under message loss / delay jitter while
	// the warm-up stays clean. A lossy run may legitimately end with
	// divergent RIBs (dropped updates are never retransmitted), so the
	// post-run consistency check is fatal only when Impair is nil.
	Impair *faults.Impairments
	// Faults, when non-nil, is applied after warm-up with the first flap as
	// its epoch: every Event.At is relative to the same clock zero as the
	// Result times.
	Faults *faults.Plan
	// Watchdog, when non-nil, drains the run under the convergence watchdog
	// instead of a bare kernel run: quiescent-instant consistency checks,
	// livelock abort, and a FaultReport on the Result.
	Watchdog *faults.WatchdogConfig
	// Shards, when > 1, runs the scenario on the sharded engine: the run
	// topology is partitioned across Shards shard kernels coordinated by
	// conservative-lookahead epochs (sim.ShardGroup). Results are
	// reconstructed from the merged per-shard event traces and are identical
	// to a Shards<=1 run of the same scenario — the shard count is an
	// execution detail, not a simulation input, which is why Fingerprint
	// ignores it. Sharded runs require MinLinkDelay+MinProcDelay > 0 and are
	// incompatible with Watchdog, Check, and impairment models that are not
	// in per-link stream mode (faults.Impairments.UseLinkStreams).
	Shards int
	// Check, when true, runs the flap phase under the runtime invariant
	// checker (package check): a full RIB/timer/conservation sweep after
	// every event plus the differential damping oracle. Any violation fails
	// the run; the report lands on Result.Check either way. Checked runs are
	// several times slower — this is a debugging and CI mode, not a
	// measurement mode (the checker's own hooks do not perturb the
	// simulation, only wall-clock time).
	Check bool
}

// OriginID returns the router ID the attached originAS will receive: the
// node appended to the base graph.
func (s Scenario) OriginID() bgp.RouterID {
	return bgp.RouterID(s.Graph.NumNodes())
}

// validate checks the scenario before running.
func (s Scenario) validate() error {
	if s.Graph == nil {
		return fmt.Errorf("experiment: nil graph")
	}
	if s.Graph.NumNodes() == 0 {
		return fmt.Errorf("experiment: empty graph")
	}
	if int(s.ISP) < 0 || int(s.ISP) >= s.Graph.NumNodes() {
		return fmt.Errorf("experiment: ISP %d out of range", s.ISP)
	}
	if s.Pulses < 0 {
		return fmt.Errorf("experiment: negative pulse count %d", s.Pulses)
	}
	if s.FlapInterval < 0 {
		return fmt.Errorf("experiment: negative flap interval %v", s.FlapInterval)
	}
	if err := s.validateSharded(); err != nil {
		return err
	}
	return s.Config.Validate()
}

// Result captures everything a single run measured.
type Result struct {
	// Pulses echoes the workload size.
	Pulses int
	// Origin and ISP are the router IDs in the run's (cloned) topology.
	Origin, ISP bgp.RouterID
	// FlapStart is the time of the first withdrawal and FlapEnd the time of
	// the final announcement. All Result times share one clock whose zero is
	// the first flap (so FlapStart is 0 whenever Pulses > 0), matching the
	// paper's figure axes.
	FlapStart, FlapEnd time.Duration
	// ConvergenceTime is the paper's metric: last update delivery minus
	// FlapEnd (zero when nothing followed the final announcement).
	ConvergenceTime time.Duration
	// MessageCount is the total number of updates delivered network-wide
	// from the first flap on.
	MessageCount int
	// Updates records every update delivery time (basis of Fig 10's 5 s
	// series).
	Updates *metrics.EventSeries
	// Damped tracks the number of suppressed (router, peer) states over
	// time (Fig 10's damped-link count).
	Damped *metrics.StepSeries
	// MaxDamped is the peak damped-link count.
	MaxDamped int
	// NoisyReuses / SilentReuses count reuse-timer outcomes (Section 4.2).
	NoisyReuses, SilentReuses int
	// NoisyReuseTimes records when noisy reuses fired (phase analysis).
	NoisyReuseTimes *metrics.EventSeries
	// Phases is the four-state decomposition of the episode.
	Phases metrics.Phases
	// OriginSuppressed reports whether the ispAS ever suppressed the origin
	// link during the flap phase.
	OriginSuppressed bool
	// PenaltyTraces holds the recorded traces for each Watch entry, keyed
	// as given.
	PenaltyTraces map[PenaltyWatch]*metrics.FloatSeries
	// LastUpdateByRouter records when each router received its final
	// update, exposing how unevenly the convergence delay is distributed
	// (Section 7 observes that policy shrinks the affected set but the
	// affected nodes still converge very late).
	LastUpdateByRouter map[bgp.RouterID]time.Duration
	// EndTime is when the network fully drained (every in-flight update
	// delivered and every reuse timer fired), on the same flap-relative
	// clock.
	EndTime time.Duration
	// Dropped counts messages lost to impairments, session churn, and
	// crashes (zero in a fault-free run).
	Dropped uint64
	// FaultReport is the watchdog's verdict when Scenario.Watchdog was set,
	// nil otherwise.
	FaultReport *faults.Report
	// Check is the invariant checker's report when Scenario.Check was set,
	// nil otherwise. A run with violations fails outright, so a non-nil
	// report here is always clean; it still carries the sweep/oracle
	// coverage counters.
	Check *check.Report

	// fromStore marks a Result loaded from a persistent ResultStore, so the
	// RunCache does not write it straight back to disk.
	fromStore bool
}

// Run executes the scenario and returns its measurements. The run is a pure
// function of the scenario (deterministic).
func Run(sc Scenario) (*Result, error) {
	return RunContext(context.Background(), sc)
}

// RunContext is Run under a supervising context: the kernel polls ctx at an
// amortized granularity (sim.StopCheckInterval events) during warm-up, the
// pulse loop and the drain, and a tripped context stops the run with a typed
// ErrCanceled or ErrBudgetExceeded. An un-tripped context changes nothing —
// the run stays byte-identical to Run(sc), because the cooperative stop check
// only reads the context and never touches simulation state.
func RunContext(ctx context.Context, sc Scenario) (*Result, error) {
	if sc.Shards > 1 {
		return runSharded(ctx, sc)
	}
	n, origin, err := converge(ctx, sc)
	if err != nil {
		return nil, err
	}
	return measure(ctx, sc, n, origin)
}

// wrapInterrupt maps a kernel/watchdog stop caused by the context into the
// package's typed error, and passes every other error through with the stage
// prefix.
func wrapInterrupt(ctx context.Context, stage string, err error) error {
	if ctx.Err() != nil && errors.Is(err, sim.ErrInterrupted) {
		return fmt.Errorf("experiment: %s: %w", stage, ctxErr(ctx))
	}
	return fmt.Errorf("experiment: %s: %w", stage, err)
}

// converge validates the scenario and executes its warm-up phase: build the
// run topology (base graph + originAS attached to the ispAS), originate the
// flap prefix and drain the kernel until every node has learned a stable
// route, then wipe damping state and counters (Section 5.1: "Before the
// simulation starts, every node learns a stable route to the originAS").
// The returned network is quiescent and ready for measure — or for a
// bgp.Snapshot, which is how sweeps amortize this phase across pulse counts.
func converge(ctx context.Context, sc Scenario) (*bgp.Network, bgp.RouterID, error) {
	if err := sc.validate(); err != nil {
		return nil, 0, err
	}

	// Build the run topology: base graph + originAS attached to the ispAS.
	g := sc.Graph.Clone()
	origin := g.AddNode()
	if err := g.AddEdge(origin, sc.ISP); err != nil {
		return nil, 0, fmt.Errorf("experiment: attach origin: %w", err)
	}
	if g.Annotated() {
		if err := g.SetRelationship(origin, sc.ISP, topology.RelProvider); err != nil {
			return nil, 0, fmt.Errorf("experiment: annotate origin link: %w", err)
		}
	}

	k := sim.NewKernel(sim.WithSeed(sc.Config.Seed))
	n, err := bgp.NewNetwork(k, g, sc.Config)
	if err != nil {
		return nil, 0, err
	}

	n.Router(origin).Originate(FlapPrefix)
	if err := k.RunContext(ctx); err != nil {
		return nil, 0, wrapInterrupt(ctx, "warm-up", err)
	}
	n.ResetDamping()
	n.ResetCounters()
	return n, origin, nil
}

// measure executes the scenario's flap phase and drain on a converged
// network (fresh from converge, or a fork of a converged checkpoint) and
// computes the Result. It installs the measurement hooks, brings the fault
// apparatus alive at the epoch, runs the pulse workload and drains.
func measure(ctx context.Context, sc Scenario, n *bgp.Network, origin bgp.RouterID) (*Result, error) {
	k := n.Kernel()
	interval := sc.FlapInterval
	if interval == 0 {
		interval = DefaultFlapInterval
	}

	res := &Result{
		Pulses:             sc.Pulses,
		Origin:             origin,
		ISP:                bgp.RouterID(sc.ISP),
		Updates:            &metrics.EventSeries{},
		Damped:             &metrics.StepSeries{},
		NoisyReuseTimes:    &metrics.EventSeries{},
		PenaltyTraces:      make(map[PenaltyWatch]*metrics.FloatSeries, len(sc.Watch)),
		LastUpdateByRouter: make(map[bgp.RouterID]time.Duration),
	}
	for _, w := range sc.Watch {
		res.PenaltyTraces[w] = &metrics.FloatSeries{}
	}

	// All result times are relative to the first flap, matching the paper's
	// figure axes. The network is quiescent here, so nothing fires between
	// installing the hooks and the first withdrawal.
	epoch := k.Now()
	hooks := bgp.Hooks{
		OnDeliver: func(at time.Duration, msg bgp.Message) {
			res.Updates.Record(at - epoch)
			res.LastUpdateByRouter[msg.To] = at - epoch
		},
		OnSuppress: func(at time.Duration, router, peer bgp.RouterID, _ bgp.Prefix, on bool) {
			res.Damped.Record(at-epoch, n.DampedLinkCount())
			if on && router == bgp.RouterID(sc.ISP) && peer == origin {
				res.OriginSuppressed = true
			}
		},
		OnReuse: func(at time.Duration, _, _ bgp.RouterID, _ bgp.Prefix, noisy bool) {
			if noisy {
				res.NoisyReuses++
				res.NoisyReuseTimes.Record(at - epoch)
			} else {
				res.SilentReuses++
			}
		},
		OnPenalty: func(at time.Duration, router, peer bgp.RouterID, _ bgp.Prefix, penalty float64) {
			if len(sc.Watch) == 0 {
				return
			}
			if tr, ok := res.PenaltyTraces[PenaltyWatch{Router: router, Peer: peer}]; ok {
				tr.Record(at-epoch, penalty)
			}
		},
	}
	if sc.Trace != nil {
		shifted := bgp.TraceHooks(sc.Trace)
		hooks = bgp.MergeHooks(hooks, bgp.Hooks{
			OnDeliver: func(at time.Duration, msg bgp.Message) {
				shifted.OnDeliver(at-epoch, msg)
			},
			OnSuppress: func(at time.Duration, r, p bgp.RouterID, pf bgp.Prefix, on bool) {
				shifted.OnSuppress(at-epoch, r, p, pf, on)
			},
			OnReuse: func(at time.Duration, r, p bgp.RouterID, pf bgp.Prefix, noisy bool) {
				shifted.OnReuse(at-epoch, r, p, pf, noisy)
			},
			OnPenalty: func(at time.Duration, r, p bgp.RouterID, pf bgp.Prefix, pen float64) {
				shifted.OnPenalty(at-epoch, r, p, pf, pen)
			},
		})
	}
	n.SetHooks(hooks)

	// Fault injection: impairments and the fault plan come alive at the
	// epoch, after the clean warm-up, sharing the Result clock zero.
	if sc.Impair != nil {
		n.SetImpairment(sc.Impair)
	}
	if sc.Faults != nil {
		if err := sc.Faults.Apply(n, epoch, sc.Impair); err != nil {
			return nil, fmt.Errorf("experiment: fault plan: %w", err)
		}
	}

	// The invariant checker attaches after the hooks and fault apparatus so
	// it observes (and chains to) the final observer configuration. Attaching
	// here — on a converged network with damping state just reset — is the
	// supported mode: every shadow damping stream starts in sync.
	var chk *check.Checker
	if sc.Check {
		var err error
		chk, err = check.Attach(n, check.Options{
			ISP:    bgp.RouterID(sc.ISP),
			Origin: origin,
			Prefix: FlapPrefix,
		})
		if err != nil {
			return nil, fmt.Errorf("experiment: invariant checker: %w", err)
		}
		defer chk.Detach()
	}

	// Flap phase.
	flapDown := func() error {
		if sc.FlapViaLink {
			return n.SetLinkState(origin, bgp.RouterID(sc.ISP), false)
		}
		n.Router(origin).StopOriginating(FlapPrefix)
		return nil
	}
	flapUp := func() error {
		if sc.FlapViaLink {
			return n.SetLinkState(origin, bgp.RouterID(sc.ISP), true)
		}
		n.Router(origin).Originate(FlapPrefix)
		return nil
	}
	if sc.Pulses > 0 {
		res.FlapStart = k.Now() - epoch
		for i := 0; i < sc.Pulses; i++ {
			if err := flapDown(); err != nil {
				return nil, fmt.Errorf("experiment: pulse %d down: %w", i+1, err)
			}
			if err := k.RunUntilContext(ctx, k.Now()+interval); err != nil {
				return nil, wrapInterrupt(ctx, fmt.Sprintf("pulse %d", i+1), err)
			}
			if err := flapUp(); err != nil {
				return nil, fmt.Errorf("experiment: pulse %d up: %w", i+1, err)
			}
			res.FlapEnd = k.Now() - epoch
			if i < sc.Pulses-1 {
				if err := k.RunUntilContext(ctx, k.Now()+interval); err != nil {
					return nil, wrapInterrupt(ctx, fmt.Sprintf("pulse %d", i+1), err)
				}
			}
		}
	}

	// Drain: every in-flight update and every reuse timer fires within the
	// max hold-down horizon. With a watchdog the drain is supervised —
	// quiescent-instant consistency checks and a livelock abort instead of
	// burning the kernel's whole event budget.
	if sc.Watchdog != nil {
		rep := faults.WatchContext(ctx, n, *sc.Watchdog)
		res.FaultReport = rep
		if rep.Outcome == faults.Aborted {
			if ctx.Err() != nil {
				return nil, fmt.Errorf("experiment: drain: %w", ctxErr(ctx))
			}
			return nil, fmt.Errorf("experiment: drain: %w: %w", ErrBudgetExceeded, rep.Err)
		}
		if rep.Outcome == faults.Livelock {
			return nil, fmt.Errorf("experiment: drain: %s", rep)
		}
	} else if err := k.RunContext(ctx); err != nil {
		return nil, wrapInterrupt(ctx, "drain", err)
	}
	if chk != nil {
		res.Check = chk.Finish()
		if err := res.Check.Err(); err != nil {
			return nil, fmt.Errorf("experiment: invariant check: %w", err)
		}
	}
	res.EndTime = k.Now() - epoch
	res.Dropped = n.Dropped()
	res.MessageCount = res.Updates.Count()
	if last, ok := res.Updates.Last(); ok && last > res.FlapEnd {
		res.ConvergenceTime = last - res.FlapEnd
	}
	res.MaxDamped = res.Damped.Max()
	res.Phases = metrics.ComputePhases(res.Updates, res.NoisyReuseTimes, res.FlapStart, res.FlapEnd)

	// The watchdog already ran the final consistency check (its verdict is
	// on the Result). Without one, run it here — but a lossy run may
	// legitimately diverge, so the failure is fatal only when no impairment
	// was configured.
	if sc.Watchdog != nil {
		if res.FaultReport.Outcome == faults.Diverged && sc.Impair == nil {
			return nil, fmt.Errorf("experiment: post-run consistency: %w", res.FaultReport.Err)
		}
	} else if err := n.CheckConsistency(); err != nil && sc.Impair == nil {
		return nil, fmt.Errorf("experiment: post-run consistency: %w", err)
	}
	return res, nil
}

// Checkpoint is a scenario's converged warm-up state, parked as a network
// snapshot. Building one costs a single warm-up; Run then forks the
// checkpoint per measurement instead of re-converging from scratch, which is
// how sweeps amortize warm-up across pulse counts. A Checkpoint is safe for
// concurrent Run calls — each call forks its own independent copy.
//
// The parked state is engine-specific: a Shards<=1 scenario parks a
// sequential bgp.Snapshot, a Shards>1 scenario parks a bgp.ShardedSnapshot
// with the partition baked in. A checkpoint only serves scenarios on the
// engine (and shard count) it was built with — the run's Result is identical
// either way (the cache fingerprint deliberately ignores Shards), but the
// parked kernel state is not interchangeable.
type Checkpoint struct {
	snap   *bgp.Snapshot        // sequential engine (Shards <= 1)
	shsnap *bgp.ShardedSnapshot // sharded engine (Shards > 1)
	shards int                  // shard count shsnap was built with
	origin bgp.RouterID
}

// Shards returns the shard count the checkpoint was built with (0 or 1 for a
// sequential checkpoint).
func (c *Checkpoint) Shards() int { return c.shards }

// NewCheckpoint executes the scenario's warm-up once (exactly as Run would)
// and parks the converged state. Only the warm-up inputs matter here — the
// graph, ISP, Config and Shards (a Shards>1 scenario converges on the sharded
// engine and parks a sharded snapshot); measurement-phase fields (Pulses,
// FlapInterval, Watch, Trace, Impair, Faults, Watchdog) take effect in
// Checkpoint.Run.
func NewCheckpoint(sc Scenario) (*Checkpoint, error) {
	return NewCheckpointContext(context.Background(), sc)
}

// NewCheckpointContext is NewCheckpoint with the warm-up run under ctx; a
// tripped context stops it with a typed ErrCanceled / ErrBudgetExceeded.
// The warm-up reports to the context's Progress hook (WithProgress):
// WarmupStarted before convergence begins, WarmupDone once the converged
// state is parked — warm-up dominates the latency of small sweeps, so a
// streaming client must be able to see it.
func NewCheckpointContext(ctx context.Context, sc Scenario) (*Checkpoint, error) {
	pr := progressFrom(ctx)
	pr.warmupStarted()
	cp, err := newCheckpointContext(ctx, sc)
	if err != nil {
		return nil, err
	}
	pr.warmupDone()
	return cp, nil
}

// newCheckpointContext is the hook-free warm-up body.
func newCheckpointContext(ctx context.Context, sc Scenario) (*Checkpoint, error) {
	if sc.Shards > 1 {
		sn, origin, err := convergeSharded(ctx, sc)
		if err != nil {
			return nil, err
		}
		defer sn.Close()
		snap, err := sn.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("experiment: checkpoint: %w", err)
		}
		return &Checkpoint{shsnap: snap, shards: sc.Shards, origin: origin}, nil
	}
	n, origin, err := converge(ctx, sc)
	if err != nil {
		return nil, err
	}
	snap, err := n.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("experiment: checkpoint: %w", err)
	}
	return &Checkpoint{snap: snap, origin: origin}, nil
}

// Run forks the converged checkpoint and measures the scenario's flap phase
// on the fork, producing a Result identical to Run(sc) from scratch. sc must
// describe the same warm-up the checkpoint was built from (same Graph, ISP,
// Config and Shards); only the measurement-phase fields may differ between
// calls.
func (c *Checkpoint) Run(sc Scenario) (*Result, error) {
	return c.RunContext(context.Background(), sc)
}

// RunContext is Run with the measurement phase supervised by ctx, exactly as
// RunContext at package level: amortized cooperative stop checks, typed
// ErrCanceled / ErrBudgetExceeded, byte-identical results when the context
// never trips.
func (c *Checkpoint) RunContext(ctx context.Context, sc Scenario) (*Result, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	switch {
	case sc.Shards > 1 && c.shsnap == nil:
		return nil, fmt.Errorf("experiment: sharded scenario (Shards=%d) on a sequential checkpoint; build the checkpoint with the same Shards", sc.Shards)
	case sc.Shards <= 1 && c.shsnap != nil:
		return nil, fmt.Errorf("experiment: sequential scenario on a sharded checkpoint (built with Shards=%d)", c.shards)
	case c.shsnap != nil:
		if sc.Shards != c.shards {
			return nil, fmt.Errorf("experiment: checkpoint built with Shards=%d cannot run Shards=%d (the partition is part of the parked state)", c.shards, sc.Shards)
		}
		sn, err := c.shsnap.Fork()
		if err != nil {
			return nil, fmt.Errorf("experiment: checkpoint fork: %w", err)
		}
		return measureSharded(ctx, sc, sn, c.origin)
	}
	_, n, err := c.snap.Fork()
	if err != nil {
		return nil, fmt.Errorf("experiment: checkpoint fork: %w", err)
	}
	return measure(ctx, sc, n, c.origin)
}

// ConvergenceSpread summarizes how long after the final announcement each
// router kept receiving updates (seconds). The maximum equals
// ConvergenceTime; the gap between median and maximum exposes how uneven
// the damping delay is across the network.
func (r *Result) ConvergenceSpread() metrics.Summary {
	vals := make([]float64, 0, len(r.LastUpdateByRouter))
	for _, at := range r.LastUpdateByRouter {
		d := at - r.FlapEnd
		if d < 0 {
			d = 0
		}
		vals = append(vals, d.Seconds())
	}
	return metrics.Summarize(vals)
}
