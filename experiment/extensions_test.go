package experiment

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestPartialDeploymentSweep(t *testing.T) {
	o := testOptions()
	rows, err := PartialDeployment(o, []int{0, 50, 100}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// 0 %: no damping at all — fast convergence, nothing damped.
	if rows[0].MaxDamped != 0 {
		t.Fatalf("0%% deployment damped %d links", rows[0].MaxDamped)
	}
	if rows[0].Conv > 10*time.Minute {
		t.Fatalf("0%% deployment convergence %v", rows[0].Conv)
	}
	// 100 %: full damping — slow convergence, many damped links.
	if rows[2].MaxDamped == 0 {
		t.Fatal("100% deployment damped nothing")
	}
	if rows[2].Conv < rows[0].Conv {
		t.Fatal("full damping converged faster than no damping")
	}
	// Damped-link peak grows with deployment.
	if rows[1].MaxDamped > rows[2].MaxDamped {
		t.Fatalf("50%% deployment damped more than 100%%: %d vs %d",
			rows[1].MaxDamped, rows[2].MaxDamped)
	}
	var buf bytes.Buffer
	if err := WriteDeploymentCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "deployment_pct,") {
		t.Fatal("bad CSV header")
	}
}

func TestPartialDeploymentValidatesPercent(t *testing.T) {
	if _, err := PartialDeployment(testOptions(), []int{150}, 1); err == nil {
		t.Fatal("percent 150 accepted")
	}
}

func TestFilterComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("three sweeps")
	}
	o := testOptions()
	rows, err := FilterComparison(o, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	r1 := rows[0]
	// At one pulse: RCN damps nothing; selective damps less than classic;
	// classic converges far above intended.
	if r1.RCNDamped != 0 {
		t.Fatalf("RCN damped %d at n=1", r1.RCNDamped)
	}
	if r1.SelDamped >= r1.ClassicDamped {
		t.Fatalf("selective did not reduce false suppression: %d vs %d",
			r1.SelDamped, r1.ClassicDamped)
	}
	if r1.SelDamped == 0 {
		t.Fatal("selective eliminated all false suppression — heuristic too strong to show the paper's gap")
	}
	if r1.Classic < 4*r1.Intended {
		t.Fatalf("classic %v vs intended %v: expected large deviation", r1.Classic, r1.Intended)
	}
	// RCN tracks intended everywhere.
	for _, r := range rows {
		diff := r.RCN - r.Intended
		if diff < 0 {
			diff = -diff
		}
		if diff > 10*time.Minute {
			t.Fatalf("n=%d: RCN %v deviates from intended %v", r.Pulses, r.RCN, r.Intended)
		}
	}
	var buf bytes.Buffer
	if err := WriteFilterCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "pulses,classic_s,selective_s,rcn_s,intended_s") {
		t.Fatal("bad CSV header")
	}
}

func TestFlapIntervalSweep(t *testing.T) {
	o := testOptions()
	rows, err := FlapIntervalSweep(o, []time.Duration{
		30 * time.Second, 60 * time.Second, 30 * time.Minute,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Fast flapping (30/60 s) suppresses the origin link at 3 pulses; very
	// slow flapping (30 min between events) lets the penalty decay and must
	// not.
	if !rows[0].OriginSuppressed || !rows[1].OriginSuppressed {
		t.Fatal("fast flapping did not suppress the origin link")
	}
	if rows[2].OriginSuppressed {
		t.Fatal("slow flapping suppressed the origin link despite decay")
	}
	var buf bytes.Buffer
	if err := WriteIntervalCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "origin_suppressed") {
		t.Fatal("bad CSV header")
	}
}

func TestTopologySizeSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple mesh sizes")
	}
	o := testOptions()
	rows, err := TopologySizeSweep(o, []int{4, 6}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Nodes != 16 || rows[1].Nodes != 36 {
		t.Fatalf("node counts %d, %d", rows[0].Nodes, rows[1].Nodes)
	}
	// Bigger networks amplify one pulse into more updates and more damped
	// links.
	if rows[1].Msgs <= rows[0].Msgs {
		t.Fatalf("larger mesh produced fewer updates: %d vs %d", rows[1].Msgs, rows[0].Msgs)
	}
	if rows[1].MaxDamped <= rows[0].MaxDamped {
		t.Fatalf("larger mesh damped fewer links: %d vs %d", rows[1].MaxDamped, rows[0].MaxDamped)
	}
	var buf bytes.Buffer
	if err := WriteSizeCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "nodes,") {
		t.Fatal("bad CSV header")
	}
}
