package experiment

import (
	"testing"
	"time"
)

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	if len(rows) != 7 {
		t.Fatalf("Table 1 has %d rows, want 7", len(rows))
	}
	want := map[string][2]string{
		"Withdrawal Penalty (PW)":      {"1000", "1000"},
		"Re-announcement Penalty (PA)": {"0", "1000"},
		"Attributes Change Penalty":    {"500", "500"},
		"Cut-off Threshold (Pcut)":     {"2000", "3000"},
		"Half Life (minute) (H)":       {"15", "15"},
		"Reuse Threshold (Preuse)":     {"750", "750"},
		"Max Hold-down Time (minute)":  {"60", "60"},
	}
	for _, row := range rows {
		w, ok := want[row.Parameter]
		if !ok {
			t.Fatalf("unexpected row %q", row.Parameter)
		}
		if row.Cisco != w[0] || row.Juniper != w[1] {
			t.Fatalf("%s: got (%s, %s), want (%s, %s)",
				row.Parameter, row.Cisco, row.Juniper, w[0], w[1])
		}
	}
}

func TestFig3Shape(t *testing.T) {
	data, err := Fig3(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Trace) == 0 {
		t.Fatal("empty trace")
	}
	if data.Cutoff != 2000 || data.Reuse != 750 {
		t.Fatalf("thresholds (%v, %v)", data.Cutoff, data.Reuse)
	}
	// The trace must cross the cutoff (suppression) and later fall back
	// below reuse before the figure's horizon.
	if data.SuppressedSince == 0 {
		t.Fatal("trace never crossed the cutoff")
	}
	if data.ReusedAt <= data.SuppressedSince {
		t.Fatalf("reuse %v before suppression %v", data.ReusedAt, data.SuppressedSince)
	}
	if data.ReusedAt > 2640*time.Second {
		t.Fatalf("reuse at %v beyond the figure horizon", data.ReusedAt)
	}
}

func TestFig7SecondaryCharging(t *testing.T) {
	data, err := Fig7(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Trace) == 0 {
		t.Fatal("empty penalty trace")
	}
	// The chosen trace must show charging above the cutoff.
	max := 0.0
	for _, p := range data.Trace {
		if p.Penalty > max {
			max = p.Penalty
		}
	}
	if max <= data.Cutoff {
		t.Fatalf("watched penalty peaked at %v, below cutoff %v", max, data.Cutoff)
	}
	// And recharges after charging ended (secondary charging).
	if data.Recharges == 0 {
		t.Fatal("no secondary charging observed")
	}
	if data.Result.Pulses != 1 {
		t.Fatalf("Fig7 ran %d pulses, want 1", data.Result.Pulses)
	}
}

func TestEvalSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-sweep evaluation")
	}
	o := testOptions()
	data, err := Eval(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Rows) != o.MaxPulses+1 {
		t.Fatalf("rows = %d", len(data.Rows))
	}
	r0 := data.Rows[0]
	if r0.NoDampingMeshMsgs != 0 || r0.DampingMeshMsgs != 0 {
		t.Fatalf("zero-pulse row has messages: %+v", r0)
	}
	for _, r := range data.Rows[1:] {
		// No-damping convergence stays at ordinary BGP scale.
		if r.NoDampingMeshConv > 10*time.Minute {
			t.Fatalf("n=%d: no-damping convergence %v too long", r.Pulses, r.NoDampingMeshConv)
		}
		// Damping convergence with any suppression is reuse-timer scale.
		if r.Pulses >= 1 && r.DampingMeshConv < r.NoDampingMeshConv {
			t.Fatalf("n=%d: damping converged faster than no damping", r.Pulses)
		}
		// Calculation: n < 3 → tup; n >= 3 → > 20 minutes.
		if r.Pulses < 3 && r.CalcConv > 10*time.Minute {
			t.Fatalf("n=%d: calc %v should be plain tup", r.Pulses, r.CalcConv)
		}
		if r.Pulses >= 3 && r.CalcConv < 20*time.Minute {
			t.Fatalf("n=%d: calc %v should include reuse delay", r.Pulses, r.CalcConv)
		}
		// RCN tracks the calculation: within 10 minutes for every n.
		diff := r.RCNMeshConv - r.CalcConv
		if diff < 0 {
			diff = -diff
		}
		if diff > 10*time.Minute {
			t.Fatalf("n=%d: RCN %v deviates from calc %v", r.Pulses, r.RCNMeshConv, r.CalcConv)
		}
	}
	// No-damping message count grows with pulses.
	if data.Rows[1].NoDampingMeshMsgs >= data.Rows[len(data.Rows)-1].NoDampingMeshMsgs {
		t.Fatal("no-damping message count not increasing")
	}
	// The critical point exists and is sensible (paper: 5).
	if data.Nh < 1 || data.Nh > o.MaxPulses+1 {
		if data.Nh != -1 {
			t.Fatalf("Nh = %d out of range", data.Nh)
		}
	}
}

func TestFig10Series(t *testing.T) {
	if testing.Short() {
		t.Skip("three full damped runs")
	}
	data, err := Fig10(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 3, 5} {
		res := data.Runs[n]
		if res == nil {
			t.Fatalf("missing run n=%d", n)
		}
		bins := res.Updates.Bins(0, res.EndTime, data.BinWidth)
		total := 0
		for _, b := range bins {
			total += b.Count
		}
		if total != res.MessageCount {
			t.Fatalf("n=%d: binned %d != counted %d", n, total, res.MessageCount)
		}
		if res.MaxDamped == 0 {
			t.Fatalf("n=%d: no damped links", n)
		}
		// Ceiling: each of the 2E+1 links can be suppressed from both ends.
		limit := 2*(res.Updates.Count()) + 1000 // loose sanity ceiling
		if res.MaxDamped > limit {
			t.Fatalf("n=%d: damped count %d insane", n, res.MaxDamped)
		}
	}
	// n=5: the origin link is suppressed and its timer outlasts the rest
	// (muffling): noisy reuses collapse to ~1.
	if data.Runs[5].NoisyReuses > data.Runs[1].NoisyReuses {
		t.Fatal("muffling did not reduce noisy reuses at n=5")
	}
	if !data.Runs[5].OriginSuppressed || !data.Runs[3].OriginSuppressed {
		t.Fatal("origin not suppressed at n>=3")
	}
	if data.Runs[1].OriginSuppressed {
		t.Fatal("origin suppressed at n=1")
	}
}

func TestFig15PolicyHelps(t *testing.T) {
	if testing.Short() {
		t.Skip("policy sweeps")
	}
	o := testOptions()
	o.MaxPulses = 2
	data, err := Fig15(o)
	if err != nil {
		t.Fatal(err)
	}
	if data.Nodes != o.PolicyNodes {
		t.Fatalf("nodes = %d", data.Nodes)
	}
	// For the single-pulse row, policy must reduce updates (fewer alternate
	// paths to explore) — the Section 7 mechanism.
	r1 := data.Rows[1]
	if r1.PolicyMsgs >= r1.NoPolicyMsgs {
		t.Fatalf("policy did not reduce messages: %d vs %d", r1.PolicyMsgs, r1.NoPolicyMsgs)
	}
}
