package experiment

import (
	"testing"
	"time"

	"rfd/faults"
	"rfd/topology"
)

// The checked golden runs: representative scenarios executed end to end under
// Scenario.Check. A clean pass here means every invariant sweep and every
// differential-oracle comparison held for the whole run; any regression in
// the engine's damping, decision, export, MRAI or message accounting fails
// loudly with a diagnosis instead of a wrong figure.

func runChecked(t *testing.T, sc Scenario) *Result {
	t.Helper()
	sc.Check = true
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Check == nil {
		t.Fatal("checked run produced no check report")
	}
	if !res.Check.Ok() {
		t.Fatalf("violations on a run that returned success: %s", res.Check)
	}
	if res.Check.Events == 0 || res.Check.Updates == 0 {
		t.Fatalf("checker observed nothing: %s", res.Check)
	}
	return res
}

func TestCheckedMeshDamped(t *testing.T) {
	res := runChecked(t, Scenario{Graph: smallMesh(t), ISP: 0, Config: dampingCfg(), Pulses: 3})
	if res.Check.Streams == 0 {
		t.Fatalf("no damping streams shadowed: %s", res.Check)
	}
}

func TestCheckedMeshRCN(t *testing.T) {
	cfg := dampingCfg()
	cfg.EnableRCN = true
	runChecked(t, Scenario{Graph: smallMesh(t), ISP: 0, Config: cfg, Pulses: 3, FlapViaLink: true})
}

func TestCheckedInternetDamped(t *testing.T) {
	g, err := topology.InternetDerived(topology.DefaultInternetConfig(30, 1))
	if err != nil {
		t.Fatal(err)
	}
	runChecked(t, Scenario{Graph: g, ISP: 15, Config: dampingCfg(), Pulses: 2})
}

func TestCheckedFaultyRun(t *testing.T) {
	imp := faults.NewImpairments(1)
	if err := imp.SetDefault(faults.Profile{Loss: 0.02, MaxJitter: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	plan := faults.NewPlan(
		faults.FlapLink(30*time.Second, 1, 2, 10*time.Second),
		faults.CrashRouter(90*time.Second, 7, 20*time.Second),
	)
	sc := Scenario{
		Graph:    smallMesh(t),
		ISP:      0,
		Config:   dampingCfg(),
		Pulses:   2,
		Impair:   imp,
		Faults:   plan,
		Watchdog: &faults.WatchdogConfig{},
	}
	runChecked(t, sc)
}

// TestUncheckedRunHasNoReport pins that Check defaults off: plain runs pay
// nothing and carry no report.
func TestUncheckedRunHasNoReport(t *testing.T) {
	res, err := Run(Scenario{Graph: smallMesh(t), ISP: 0, Config: dampingCfg(), Pulses: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Check != nil {
		t.Fatalf("unchecked run carries a check report: %s", res.Check)
	}
}

// TestCheckedFingerprintDistinct pins the cache-poisoning fix: a checked and
// an unchecked scenario must never share a fingerprint, or a checked figure
// pass could be served unchecked cached Results (and vice versa).
func TestCheckedFingerprintDistinct(t *testing.T) {
	sc := Scenario{Graph: smallMesh(t), ISP: 0, Config: dampingCfg(), Pulses: 1}
	plain, ok := sc.Fingerprint()
	if !ok {
		t.Fatal("scenario unexpectedly unfingerprintable")
	}
	sc.Check = true
	checked, ok := sc.Fingerprint()
	if !ok {
		t.Fatal("checked scenario unexpectedly unfingerprintable")
	}
	if plain == checked {
		t.Fatal("checked and unchecked scenarios share a fingerprint")
	}
}
