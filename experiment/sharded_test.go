package experiment

import (
	"fmt"
	"strings"
	"testing"

	"rfd/faults"
	"rfd/trace"
)

// resultFields compares every externally meaningful Result field between a
// sequential and a sharded run of the same scenario.
func assertResultsEqual(t *testing.T, want, got *Result) {
	t.Helper()
	if want.MessageCount != got.MessageCount {
		t.Errorf("MessageCount: %d vs %d", want.MessageCount, got.MessageCount)
	}
	if want.ConvergenceTime != got.ConvergenceTime {
		t.Errorf("ConvergenceTime: %v vs %v", want.ConvergenceTime, got.ConvergenceTime)
	}
	if want.FlapStart != got.FlapStart || want.FlapEnd != got.FlapEnd {
		t.Errorf("flap window: [%v, %v] vs [%v, %v]", want.FlapStart, want.FlapEnd, got.FlapStart, got.FlapEnd)
	}
	if want.EndTime != got.EndTime {
		t.Errorf("EndTime: %v vs %v", want.EndTime, got.EndTime)
	}
	if want.MaxDamped != got.MaxDamped {
		t.Errorf("MaxDamped: %d vs %d", want.MaxDamped, got.MaxDamped)
	}
	if want.NoisyReuses != got.NoisyReuses || want.SilentReuses != got.SilentReuses {
		t.Errorf("reuses: %d/%d vs %d/%d", want.NoisyReuses, want.SilentReuses, got.NoisyReuses, got.SilentReuses)
	}
	if want.OriginSuppressed != got.OriginSuppressed {
		t.Errorf("OriginSuppressed: %t vs %t", want.OriginSuppressed, got.OriginSuppressed)
	}
	if want.Dropped != got.Dropped {
		t.Errorf("Dropped: %d vs %d", want.Dropped, got.Dropped)
	}
	if want.Updates.Count() != got.Updates.Count() {
		t.Errorf("Updates.Count: %d vs %d", want.Updates.Count(), got.Updates.Count())
	}
	if wl, wok := want.Updates.Last(); true {
		gl, gok := got.Updates.Last()
		if wok != gok || wl != gl {
			t.Errorf("Updates.Last: %v/%t vs %v/%t", wl, wok, gl, gok)
		}
	}
	if len(want.LastUpdateByRouter) != len(got.LastUpdateByRouter) {
		t.Errorf("LastUpdateByRouter size: %d vs %d", len(want.LastUpdateByRouter), len(got.LastUpdateByRouter))
	}
	for id, at := range want.LastUpdateByRouter {
		if got.LastUpdateByRouter[id] != at {
			t.Errorf("LastUpdateByRouter[%d]: %v vs %v", id, at, got.LastUpdateByRouter[id])
		}
	}
	if want.Phases != got.Phases {
		t.Errorf("Phases: %+v vs %+v", want.Phases, got.Phases)
	}
	for w, tr := range want.PenaltyTraces {
		gtr, ok := got.PenaltyTraces[w]
		if !ok {
			t.Errorf("PenaltyTraces missing %+v", w)
			continue
		}
		if tr.Len() != gtr.Len() || tr.Max() != gtr.Max() {
			t.Errorf("PenaltyTraces[%+v]: len %d max %g vs len %d max %g",
				w, tr.Len(), tr.Max(), gtr.Len(), gtr.Max())
		}
	}
}

// TestRunShardedMatchesSequential is the experiment-level equivalence
// property: Run with Shards>1 produces the same Result as Shards<=1.
func TestRunShardedMatchesSequential(t *testing.T) {
	base := Scenario{
		Graph:  smallMesh(t),
		ISP:    7,
		Config: dampingCfg(),
		Pulses: 3,
		Watch:  []PenaltyWatch{{Router: 7, Peer: 25}}, // ISP watching the origin
	}
	base.Config.Seed = 9
	want, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			sc := base
			sc.Shards = shards
			got, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			assertResultsEqual(t, want, got)
		})
	}
}

// TestRunShardedLinkFlapMatchesSequential covers the FlapViaLink path, which
// exercises the replicated link-state machinery under the scenario driver.
func TestRunShardedLinkFlapMatchesSequential(t *testing.T) {
	base := Scenario{
		Graph:       smallMesh(t),
		ISP:         3,
		Config:      dampingCfg(),
		Pulses:      2,
		FlapViaLink: true,
	}
	base.Config.Seed = 4
	want, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	sc := base
	sc.Shards = 3
	got, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, want, got)
}

// TestRunShardedImpairMatchesSequential pins impairment equivalence: per-link
// streams are consumed identically by both engines, so a lossy sharded run
// matches a lossy sequential run drop for drop.
func TestRunShardedImpairMatchesSequential(t *testing.T) {
	mkImpair := func() *faults.Impairments {
		im := faults.NewImpairments(21)
		im.UseLinkStreams()
		if err := im.SetDefault(faults.Profile{Loss: 0.05}); err != nil {
			t.Fatal(err)
		}
		return im
	}
	base := Scenario{
		Graph:  smallMesh(t),
		ISP:    12,
		Config: dampingCfg(),
		Pulses: 2,
	}
	base.Config.Seed = 17
	seq := base
	seq.Impair = mkImpair()
	want, err := Run(seq)
	if err != nil {
		t.Fatal(err)
	}
	if want.Dropped == 0 {
		t.Fatal("impaired run dropped nothing; the leg proves nothing")
	}
	sh := base
	sh.Impair = mkImpair()
	sh.Shards = 4
	got, err := Run(sh)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, want, got)
}

// TestRunShardedFaultPlanMatchesSequential drives a fault plan through both
// engines: the plan's events are replicated per shard at the same virtual
// times, so the traces stay identical.
func TestRunShardedFaultPlanMatchesSequential(t *testing.T) {
	plan, err := faults.ParsePlan(strings.NewReader(
		"30s down 3 8\n90s up 3 8\n150s reset 0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	base := Scenario{
		Graph:  smallMesh(t),
		ISP:    3,
		Config: dampingCfg(),
		Pulses: 2,
		Faults: plan,
	}
	base.Config.Seed = 8
	want, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	sc := base
	sc.Shards = 2
	got, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, want, got)
}

func TestShardedValidation(t *testing.T) {
	g := smallMesh(t)
	valid := func() Scenario {
		return Scenario{Graph: g, ISP: 0, Config: dampingCfg(), Pulses: 1}
	}
	t.Run("negative", func(t *testing.T) {
		sc := valid()
		sc.Shards = -1
		if _, err := Run(sc); err == nil {
			t.Fatal("accepted negative shard count")
		}
	})
	t.Run("watchdog", func(t *testing.T) {
		sc := valid()
		sc.Shards = 2
		sc.Watchdog = &faults.WatchdogConfig{}
		if _, err := Run(sc); err == nil || !strings.Contains(err.Error(), "watchdog") {
			t.Fatalf("want watchdog error, got %v", err)
		}
	})
	t.Run("check", func(t *testing.T) {
		sc := valid()
		sc.Shards = 2
		sc.Check = true
		if _, err := Run(sc); err == nil || !strings.Contains(err.Error(), "invariant checker") {
			t.Fatalf("want checker error, got %v", err)
		}
	})
	t.Run("global-stream-impairment", func(t *testing.T) {
		sc := valid()
		sc.Shards = 2
		sc.Impair = faults.NewImpairments(1) // no UseLinkStreams
		if _, err := Run(sc); err == nil || !strings.Contains(err.Error(), "per-link") {
			t.Fatalf("want per-link stream error, got %v", err)
		}
	})
	t.Run("zero-lookahead", func(t *testing.T) {
		sc := valid()
		sc.Shards = 2
		sc.Config.MinLinkDelay = 0
		sc.Config.MinProcDelay = 0
		if _, err := Run(sc); err == nil || !strings.Contains(err.Error(), "lookahead") {
			t.Fatalf("want lookahead error, got %v", err)
		}
	})
	// Checkpoints are engine-specific state: a sequential checkpoint cannot
	// serve a sharded scenario, a sharded one cannot serve a sequential (or
	// differently sharded) scenario — each mismatch is a clear error, not a
	// silent from-scratch run.
	t.Run("checkpoint-engine-mismatch", func(t *testing.T) {
		seqCP, err := NewCheckpoint(valid())
		if err != nil {
			t.Fatal(err)
		}
		sharded := valid()
		sharded.Shards = 2
		if _, err := seqCP.Run(sharded); err == nil || !strings.Contains(err.Error(), "sequential checkpoint") {
			t.Fatalf("sequential checkpoint accepted a sharded scenario: %v", err)
		}
		shCP, err := NewCheckpoint(sharded)
		if err != nil {
			t.Fatal(err)
		}
		if shCP.Shards() != 2 {
			t.Fatalf("Shards() = %d, want 2", shCP.Shards())
		}
		if _, err := shCP.Run(valid()); err == nil || !strings.Contains(err.Error(), "sharded checkpoint") {
			t.Fatalf("sharded checkpoint accepted a sequential scenario: %v", err)
		}
		other := valid()
		other.Shards = 3
		if _, err := shCP.Run(other); err == nil || !strings.Contains(err.Error(), "Shards=3") {
			t.Fatalf("sharded checkpoint accepted a different shard count: %v", err)
		}
	})
}

// TestFingerprintIgnoresShards pins the cache-identity design: the shard
// count is an execution detail, so a sequential run's cached Result may stand
// in for a sharded one and vice versa.
func TestFingerprintIgnoresShards(t *testing.T) {
	sc := Scenario{Graph: smallMesh(t), ISP: 0, Config: dampingCfg(), Pulses: 2}
	a, ok := sc.Fingerprint()
	if !ok {
		t.Fatal("unfingerprintable")
	}
	sc.Shards = 8
	b, ok := sc.Fingerprint()
	if !ok {
		t.Fatal("sharded scenario unfingerprintable")
	}
	if a != b {
		t.Fatalf("fingerprint depends on shard count: %s vs %s", a, b)
	}
}

// TestSweepSharded runs a sweep with Shards>1 (full runs, no checkpoint) and
// checks each point against the sequential sweep.
func TestSweepSharded(t *testing.T) {
	base := Scenario{Graph: smallMesh(t), ISP: 5, Config: dampingCfg()}
	base.Config.Seed = 3
	pulses := []int{1, 2}
	want, err := SweepParallel(base, pulses, 2)
	if err != nil {
		t.Fatal(err)
	}
	sharded := base
	sharded.Shards = 2
	got, err := SweepParallel(sharded, pulses, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pulses {
		if want[i].Result == nil || got[i].Result == nil {
			t.Fatalf("point %d missing result", i)
		}
		assertResultsEqual(t, want[i].Result, got[i].Result)
	}
}

// TestRunShardedTrace checks the user-facing trace log: flap-relative times,
// same event count as the sequential run's log.
func TestRunShardedTrace(t *testing.T) {
	mk := func(shards int) Scenario {
		sc := Scenario{Graph: smallMesh(t), ISP: 2, Config: dampingCfg(), Pulses: 1, Shards: shards}
		sc.Config.Seed = 6
		return sc
	}
	seq := mk(0)
	seqLog := trace.NewLog(0)
	seq.Trace = seqLog
	if _, err := Run(seq); err != nil {
		t.Fatal(err)
	}
	sh := mk(2)
	shLog := trace.NewLog(0)
	sh.Trace = shLog
	if _, err := Run(sh); err != nil {
		t.Fatal(err)
	}
	a, b := seqLog.Canonical(), shLog.Canonical()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace event %d differs:\nseq:   %+v\nshard: %+v", i, a[i], b[i])
		}
	}
	if len(a) > 0 && a[0].At < 0 {
		t.Fatalf("trace times not flap-relative: first at %v", a[0].At)
	}
}
