package topology

import (
	"bytes"
	"strings"
	"testing"
)

func TestTSVRoundTrip(t *testing.T) {
	g, err := InternetDerived(DefaultInternetConfig(50, 3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTSV("roundtrip", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("shape changed: %d/%d -> %d/%d",
			g.NumNodes(), g.NumEdges(), back.NumNodes(), back.NumEdges())
	}
	for _, e := range g.Edges() {
		if !back.HasEdge(e.A, e.B) {
			t.Fatalf("edge %v lost", e)
		}
		if back.Relationship(e.A, e.B) != g.Relationship(e.A, e.B) {
			t.Fatalf("relationship on %v changed", e)
		}
	}
}

func TestTSVRoundTripUnannotated(t *testing.T) {
	g, err := Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTSV("t", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Annotated() {
		t.Fatal("unannotated graph gained annotations in round trip")
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatalf("edges: %d -> %d", g.NumEdges(), back.NumEdges())
	}
}

func TestReadTSVErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"edge before header", "0\t1\n"},
		{"bad node count", "#nodes\tx\n"},
		{"negative node count", "#nodes\t-5\n"},
		{"bad node id", "#nodes\t3\na\t1\n"},
		{"too many fields", "#nodes\t3\n0\t1\tpeer\textra\n"},
		{"unknown relationship", "#nodes\t3\n0\t1\tboss\n"},
		{"self loop", "#nodes\t3\n1\t1\n"},
		{"duplicate edge", "#nodes\t3\n0\t1\n0\t1\n"},
		{"out of range", "#nodes\t3\n0\t9\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadTSV("bad", strings.NewReader(c.input)); err == nil {
				t.Fatalf("input %q accepted", c.input)
			}
		})
	}
}

func TestReadTSVSkipsBlankAndComments(t *testing.T) {
	input := "# a comment\n#nodes\t3\n\n0\t1\n\n# another\n1\t2\tpeer\n"
	g, err := ReadTSV("ok", strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("parsed %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.Relationship(1, 2) != RelPeer {
		t.Fatal("peer annotation lost")
	}
}

func TestWriteDOT(t *testing.T) {
	g := New("dot test", 3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.SetRelationship(0, 1, RelProvider); err != nil {
		t.Fatal(err)
	}
	if err := g.SetRelationship(1, 2, RelPeer); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph dot_test {", "c2p", "p2p", "}"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}
