package topology

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format. Relationship-annotated
// edges are directed customer→provider with peer links drawn undirected
// (dir=none), matching the usual AS-graph visual convention.
func (g *Graph) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	name := strings.Map(func(r rune) rune {
		if r == '-' || r == ' ' {
			return '_'
		}
		return r
	}, g.name)
	fmt.Fprintf(bw, "graph %s {\n", name)
	for id := 0; id < g.NumNodes(); id++ {
		fmt.Fprintf(bw, "  %d;\n", id)
	}
	for _, e := range g.edges {
		switch g.Relationship(e.A, e.B) {
		case RelProvider: // B provides for A: draw customer -> provider
			fmt.Fprintf(bw, "  %d -- %d [label=\"c2p\"];\n", e.A, e.B)
		case RelCustomer:
			fmt.Fprintf(bw, "  %d -- %d [label=\"c2p\"];\n", e.B, e.A)
		case RelPeer:
			fmt.Fprintf(bw, "  %d -- %d [label=\"p2p\"];\n", e.A, e.B)
		default:
			fmt.Fprintf(bw, "  %d -- %d;\n", e.A, e.B)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// WriteTSV emits one line per edge: "a<TAB>b<TAB>rel" where rel is a's view
// of b ("none", "customer", "provider", "peer"). The node count is encoded in
// a leading "#nodes N" comment so isolated trailing nodes survive a
// round-trip.
func (g *Graph) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "#nodes\t%d\n", g.NumNodes())
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].A != edges[j].A {
			return edges[i].A < edges[j].A
		}
		return edges[i].B < edges[j].B
	})
	for _, e := range edges {
		fmt.Fprintf(bw, "%d\t%d\t%s\n", e.A, e.B, g.Relationship(e.A, e.B))
	}
	return bw.Flush()
}

// ReadTSV parses the format produced by WriteTSV.
func ReadTSV(name string, r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	var g *Graph
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, "\t")
		if strings.HasPrefix(text, "#") {
			if fields[0] == "#nodes" && len(fields) == 2 {
				n, err := strconv.Atoi(fields[1])
				if err != nil || n < 0 {
					return nil, fmt.Errorf("topology: line %d: bad node count %q", line, fields[1])
				}
				g = New(name, n)
			}
			continue
		}
		if g == nil {
			return nil, fmt.Errorf("topology: line %d: edge before #nodes header", line)
		}
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("topology: line %d: want 2 or 3 fields, got %d", line, len(fields))
		}
		a, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("topology: line %d: bad node %q", line, fields[0])
		}
		b, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("topology: line %d: bad node %q", line, fields[1])
		}
		if err := g.AddEdge(NodeID(a), NodeID(b)); err != nil {
			return nil, fmt.Errorf("topology: line %d: %w", line, err)
		}
		if len(fields) == 3 && fields[2] != "none" {
			rel, err := parseRelationship(fields[2])
			if err != nil {
				return nil, fmt.Errorf("topology: line %d: %w", line, err)
			}
			if err := g.SetRelationship(NodeID(a), NodeID(b), rel); err != nil {
				return nil, fmt.Errorf("topology: line %d: %w", line, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("topology: read: %w", err)
	}
	if g == nil {
		return nil, fmt.Errorf("topology: empty input (missing #nodes header)")
	}
	return g, nil
}

func parseRelationship(s string) (Relationship, error) {
	switch s {
	case "none":
		return RelNone, nil
	case "customer":
		return RelCustomer, nil
	case "provider":
		return RelProvider, nil
	case "peer":
		return RelPeer, nil
	default:
		return RelNone, fmt.Errorf("topology: unknown relationship %q", s)
	}
}
