package topology

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// ParseASRelationships reads a CAIDA-style AS-relationship dataset (the
// "serial-1" text format) and returns a relationship-annotated graph:
//
//	# comment lines are ignored
//	<provider-as>|<customer-as>|-1     provider-to-customer link
//	<as>|<as>|0                        peer-to-peer link
//
// Anything after the third field (serial-2 appends the inference source) is
// ignored. AS numbers are mapped to dense NodeIDs in ascending AS-number
// order, so the graph — and therefore every seeded simulation on it — is
// independent of line order. Provider-to-customer lines are annotated
// RelCustomer as seen from the provider (the customer is the provider's
// customer); peer lines are RelPeer. Duplicate links with conflicting
// relationships, self-loops and malformed lines are errors naming the line
// number. Lines longer than 1 MiB abort with an error rather than silently
// truncating (same convention as faults.ParsePlan).
//
// name labels the returned graph (topology.Graph.Name).
func ParseASRelationships(r io.Reader, name string) (*Graph, error) {
	type rawLink struct {
		a, b int64 // AS numbers, a < b
		rel  Relationship
		line int
	}
	var links []rawLink
	asSet := make(map[int64]struct{})

	sc := bufio.NewScanner(r)
	// The default token limit is 64 KiB; a corrupt or concatenated dump can
	// exceed it. 1 MiB matches faults.ParsePlan.
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Split(line, "|")
		if len(fields) < 3 {
			return nil, fmt.Errorf("topology: line %d: want as|as|rel, got %q", lineno, line)
		}
		asA, err := parseASN(fields[0])
		if err != nil {
			return nil, fmt.Errorf("topology: line %d: first AS: %w", lineno, err)
		}
		asB, err := parseASN(fields[1])
		if err != nil {
			return nil, fmt.Errorf("topology: line %d: second AS: %w", lineno, err)
		}
		if asA == asB {
			return nil, fmt.Errorf("topology: line %d: self-loop on AS%d", lineno, asA)
		}
		var rel Relationship
		switch strings.TrimSpace(fields[2]) {
		case "-1":
			// provider|customer: from the provider's (first) side, the
			// neighbor is a customer.
			rel = RelCustomer
		case "0":
			rel = RelPeer
		default:
			return nil, fmt.Errorf("topology: line %d: relationship %q (want -1 or 0)", lineno, fields[2])
		}
		a, b := asA, asB
		if a > b {
			a, b = b, a
			if rel == RelCustomer {
				// Kept canonical low-AS-first: the low AS sees its provider.
				rel = RelProvider
			}
		}
		links = append(links, rawLink{a: a, b: b, rel: rel, line: lineno})
		asSet[asA] = struct{}{}
		asSet[asB] = struct{}{}
	}
	if err := sc.Err(); err != nil {
		// The scanner stops at the offending line (e.g. one exceeding the
		// buffer limit), which is the line after the last successful scan.
		return nil, fmt.Errorf("topology: line %d: %w", lineno+1, err)
	}
	if len(links) == 0 {
		return nil, fmt.Errorf("topology: no links in AS-relationship input")
	}

	// Dense ids in ascending AS-number order: deterministic regardless of
	// input line order.
	asns := make([]int64, 0, len(asSet))
	for as := range asSet {
		asns = append(asns, as)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	id := make(map[int64]NodeID, len(asns))
	g := New(name, len(asns))
	for i, as := range asns {
		id[as] = NodeID(i)
	}
	seen := make(map[[2]NodeID]Relationship, len(links))
	for _, l := range links {
		na, nb := id[l.a], id[l.b]
		key := [2]NodeID{na, nb}
		if prev, dup := seen[key]; dup {
			if prev != l.rel {
				return nil, fmt.Errorf("topology: line %d: link AS%d-AS%d re-declared with a conflicting relationship", l.line, l.a, l.b)
			}
			continue // exact duplicate: tolerate
		}
		seen[key] = l.rel
		if err := g.AddEdge(na, nb); err != nil {
			return nil, fmt.Errorf("topology: line %d: %w", l.line, err)
		}
		if err := g.SetRelationship(na, nb, l.rel); err != nil {
			return nil, fmt.Errorf("topology: line %d: %w", l.line, err)
		}
	}
	return g, nil
}

// parseASN parses one AS-number field (non-negative decimal, 32-bit range).
func parseASN(s string) (int64, error) {
	s = strings.TrimSpace(s)
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad AS number %q", s)
	}
	if v < 0 || v > 1<<32-1 {
		return 0, fmt.Errorf("AS number %d outside [0, 2^32)", v)
	}
	return v, nil
}

// LoadASRelationships reads a CAIDA-style AS-relationship file from disk.
// The graph is named after the file.
func LoadASRelationships(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("topology: %w", err)
	}
	defer f.Close()
	return ParseASRelationships(f, path)
}
