package topology

import (
	"testing"
	"testing/quick"
)

func TestNewGraphEmpty(t *testing.T) {
	g := New("empty", 0)
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if !g.Connected() {
		t.Fatal("empty graph should be vacuously connected")
	}
}

func TestAddNodeAndEdge(t *testing.T) {
	g := New("g", 0)
	a := g.AddNode()
	b := g.AddNode()
	if a != 0 || b != 1 {
		t.Fatalf("node IDs = %d,%d, want 0,1", a, b)
	}
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(a, b) || !g.HasEdge(b, a) {
		t.Fatal("edge not symmetric")
	}
	if g.Degree(a) != 1 || g.Degree(b) != 1 {
		t.Fatalf("degrees = %d,%d, want 1,1", g.Degree(a), g.Degree(b))
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New("g", 2)
	if err := g.AddEdge(0, 0); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := g.AddEdge(0, 5); err == nil {
		t.Fatal("unknown node accepted")
	}
	if err := g.AddEdge(-1, 0); err == nil {
		t.Fatal("negative node accepted")
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 0); err == nil {
		t.Fatal("duplicate (reversed) edge accepted")
	}
}

func TestNeighborsOfUnknownNode(t *testing.T) {
	g := New("g", 1)
	if g.Neighbors(5) != nil {
		t.Fatal("Neighbors of unknown node != nil")
	}
	if g.Degree(-1) != 0 {
		t.Fatal("Degree of unknown node != 0")
	}
	if g.HasEdge(0, 9) {
		t.Fatal("HasEdge with unknown node = true")
	}
}

func TestTorusShape(t *testing.T) {
	g, err := Torus(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 100 {
		t.Fatalf("nodes = %d, want 100", g.NumNodes())
	}
	// The paper's mesh: 100 nodes, 200 links (footnote 2 in Section 5.3).
	if g.NumEdges() != 200 {
		t.Fatalf("edges = %d, want 200", g.NumEdges())
	}
	for id := 0; id < g.NumNodes(); id++ {
		if d := g.Degree(NodeID(id)); d != 4 {
			t.Fatalf("torus node %d degree %d, want 4 (all nodes topologically equal)", id, d)
		}
	}
	if !g.Connected() {
		t.Fatal("torus not connected")
	}
}

func TestTorusRejectsSmallDimensions(t *testing.T) {
	for _, dims := range [][2]int{{2, 5}, {5, 2}, {0, 0}, {-1, 3}} {
		if _, err := Torus(dims[0], dims[1]); err == nil {
			t.Fatalf("Torus(%d,%d) accepted", dims[0], dims[1])
		}
	}
}

func TestTorusNonSquare(t *testing.T) {
	g, err := Torus(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 15 || g.NumEdges() != 30 {
		t.Fatalf("3x5 torus: %d nodes %d edges, want 15/30", g.NumNodes(), g.NumEdges())
	}
}

func TestGridShape(t *testing.T) {
	g, err := Grid(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 12 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Edges: 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8 = 17.
	if g.NumEdges() != 17 {
		t.Fatalf("edges = %d, want 17", g.NumEdges())
	}
	if !g.Connected() {
		t.Fatal("grid not connected")
	}
	// Corner degree 2, edge degree 3, interior degree 4.
	if g.Degree(0) != 2 {
		t.Fatalf("corner degree = %d, want 2", g.Degree(0))
	}
}

func TestLineRingStarFullMesh(t *testing.T) {
	line, err := Line(5)
	if err != nil {
		t.Fatal(err)
	}
	if line.NumEdges() != 4 || line.Degree(0) != 1 || line.Degree(2) != 2 {
		t.Fatalf("line wrong shape: %v edges", line.NumEdges())
	}

	ring, err := Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	if ring.NumEdges() != 6 {
		t.Fatalf("ring edges = %d, want 6", ring.NumEdges())
	}
	for i := 0; i < 6; i++ {
		if ring.Degree(NodeID(i)) != 2 {
			t.Fatalf("ring node %d degree != 2", i)
		}
	}

	star, err := Star(7)
	if err != nil {
		t.Fatal(err)
	}
	if star.Degree(0) != 6 || star.Degree(3) != 1 || star.NumEdges() != 6 {
		t.Fatal("star wrong shape")
	}

	fm, err := FullMesh(5)
	if err != nil {
		t.Fatal(err)
	}
	if fm.NumEdges() != 10 {
		t.Fatalf("K5 edges = %d, want 10", fm.NumEdges())
	}
}

func TestGeneratorArgumentValidation(t *testing.T) {
	if _, err := Line(1); err == nil {
		t.Fatal("Line(1) accepted")
	}
	if _, err := Ring(2); err == nil {
		t.Fatal("Ring(2) accepted")
	}
	if _, err := Star(1); err == nil {
		t.Fatal("Star(1) accepted")
	}
	if _, err := FullMesh(1); err == nil {
		t.Fatal("FullMesh(1) accepted")
	}
	if _, err := Grid(0, 5); err == nil {
		t.Fatal("Grid(0,5) accepted")
	}
}

func TestBFSDistancesOnRing(t *testing.T) {
	g, err := Ring(8)
	if err != nil {
		t.Fatal(err)
	}
	dist := g.BFS(0)
	want := map[NodeID]int{0: 0, 1: 1, 7: 1, 2: 2, 6: 2, 3: 3, 5: 3, 4: 4}
	for id, d := range want {
		if dist[id] != d {
			t.Fatalf("dist[%d] = %d, want %d", id, dist[id], d)
		}
	}
	if g.Eccentricity(0) != 4 {
		t.Fatalf("ring-8 eccentricity = %d, want 4", g.Eccentricity(0))
	}
}

func TestNodesAtDistance(t *testing.T) {
	g, err := Torus(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	at7 := g.NodesAtDistance(0, 7)
	if len(at7) == 0 {
		t.Fatal("no nodes 7 hops away on 10x10 torus")
	}
	dist := g.BFS(0)
	for _, id := range at7 {
		if dist[id] != 7 {
			t.Fatalf("node %d reported at distance 7 but BFS says %d", id, dist[id])
		}
	}
	// Deterministically sorted.
	for i := 1; i < len(at7); i++ {
		if at7[i] <= at7[i-1] {
			t.Fatal("NodesAtDistance not sorted")
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := New("two-islands", 4)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	if len(g.BFS(0)) != 2 {
		t.Fatalf("BFS reached %d nodes, want 2", len(g.BFS(0)))
	}
}

func TestInternetDerivedBasics(t *testing.T) {
	g, err := InternetDerived(DefaultInternetConfig(100, 7))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 100 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if !g.Connected() {
		t.Fatal("internet-derived graph not connected")
	}
	// Preferential attachment with m=2: 3 seed edges + 2 per remaining node.
	wantEdges := 3 + 2*(100-3)
	if g.NumEdges() != wantEdges {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), wantEdges)
	}
}

func TestInternetDerivedLongTail(t *testing.T) {
	g, err := InternetDerived(DefaultInternetConfig(208, 11))
	if err != nil {
		t.Fatal(err)
	}
	// Long-tailed distribution: max degree far above the mean (~4), and the
	// majority of nodes at minimum degree.
	if g.MaxDegree() < 12 {
		t.Fatalf("max degree = %d, expected a hub >= 12", g.MaxDegree())
	}
	hist := g.DegreeHistogram()
	low := hist[2] + hist[3]
	if low < g.NumNodes()/2 {
		t.Fatalf("only %d/%d nodes with degree 2-3; distribution not long-tailed", low, g.NumNodes())
	}
}

func TestInternetDerivedValleyFree(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 42, 99} {
		g, err := InternetDerived(DefaultInternetConfig(100, seed))
		if err != nil {
			t.Fatal(err)
		}
		if !g.Annotated() {
			t.Fatal("internet-derived graph lacks relationship annotations")
		}
		if err := ValleyFree(g); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestInternetDerivedDeterministic(t *testing.T) {
	a, err := InternetDerived(DefaultInternetConfig(100, 5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := InternetDerived(DefaultInternetConfig(100, 5))
	if err != nil {
		t.Fatal(err)
	}
	ae, be := a.Edges(), b.Edges()
	if len(ae) != len(be) {
		t.Fatalf("edge counts differ: %d vs %d", len(ae), len(be))
	}
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ae[i], be[i])
		}
		if a.Relationship(ae[i].A, ae[i].B) != b.Relationship(be[i].A, be[i].B) {
			t.Fatalf("relationship differs on edge %v", ae[i])
		}
	}
}

func TestInternetDerivedConfigValidation(t *testing.T) {
	if _, err := InternetDerived(InternetConfig{Nodes: 2, LinksPerNode: 1}); err == nil {
		t.Fatal("Nodes=2 accepted")
	}
	if _, err := InternetDerived(InternetConfig{Nodes: 10, LinksPerNode: 0}); err == nil {
		t.Fatal("LinksPerNode=0 accepted")
	}
	if _, err := InternetDerived(InternetConfig{Nodes: 10, LinksPerNode: 1, PeerFraction: 1.5}); err == nil {
		t.Fatal("PeerFraction=1.5 accepted")
	}
}

func TestRelationshipViewsConsistent(t *testing.T) {
	g := New("rel", 2)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.SetRelationship(0, 1, RelProvider); err != nil {
		t.Fatal(err)
	}
	if got := g.Relationship(0, 1); got != RelProvider {
		t.Fatalf("rel(0,1) = %v", got)
	}
	if got := g.Relationship(1, 0); got != RelCustomer {
		t.Fatalf("rel(1,0) = %v, want customer", got)
	}
	// Peer is symmetric.
	if err := g.SetRelationship(0, 1, RelPeer); err != nil {
		t.Fatal(err)
	}
	if g.Relationship(1, 0) != RelPeer {
		t.Fatal("peer not symmetric")
	}
}

func TestSetRelationshipRequiresEdge(t *testing.T) {
	g := New("rel", 3)
	if err := g.SetRelationship(0, 1, RelPeer); err == nil {
		t.Fatal("annotating missing edge accepted")
	}
}

func TestValleyFreeDetectsCycle(t *testing.T) {
	g := New("cycle", 3)
	for _, e := range [][2]NodeID{{0, 1}, {1, 2}, {2, 0}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	// 0's provider is 1, 1's provider is 2, 2's provider is 0: a cycle.
	if err := g.SetRelationship(0, 1, RelProvider); err != nil {
		t.Fatal(err)
	}
	if err := g.SetRelationship(1, 2, RelProvider); err != nil {
		t.Fatal(err)
	}
	if err := g.SetRelationship(2, 0, RelProvider); err != nil {
		t.Fatal(err)
	}
	if err := ValleyFree(g); err == nil {
		t.Fatal("provider cycle not detected")
	}
}

func TestValleyFreeDetectsMissingAnnotation(t *testing.T) {
	g := New("partial", 3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.SetRelationship(0, 1, RelPeer); err != nil {
		t.Fatal(err)
	}
	if err := ValleyFree(g); err == nil {
		t.Fatal("missing annotation not detected")
	}
}

func TestValleyFreeAcceptsPureHierarchy(t *testing.T) {
	// A tree of providers: 0 at the top.
	g := New("tree", 7)
	parents := []NodeID{0, 0, 1, 1, 2, 2}
	for i, p := range parents {
		child := NodeID(i + 1)
		if err := g.AddEdge(child, p); err != nil {
			t.Fatal(err)
		}
		if err := g.SetRelationship(child, p, RelProvider); err != nil {
			t.Fatal(err)
		}
	}
	if err := ValleyFree(g); err != nil {
		t.Fatal(err)
	}
}

func TestRelationshipStringAndInvert(t *testing.T) {
	cases := []struct {
		rel Relationship
		str string
		inv Relationship
	}{
		{RelNone, "none", RelNone},
		{RelCustomer, "customer", RelProvider},
		{RelProvider, "provider", RelCustomer},
		{RelPeer, "peer", RelPeer},
	}
	for _, c := range cases {
		if c.rel.String() != c.str {
			t.Fatalf("%v.String() = %q", c.rel, c.rel.String())
		}
		if c.rel.invert() != c.inv {
			t.Fatalf("%v.invert() = %v, want %v", c.rel, c.rel.invert(), c.inv)
		}
	}
	if Relationship(99).String() == "" {
		t.Fatal("unknown relationship String empty")
	}
}

func TestQuickTorusAllNodesEqualDegree(t *testing.T) {
	f := func(r, c uint8) bool {
		rows := int(r%8) + 3
		cols := int(c%8) + 3
		g, err := Torus(rows, cols)
		if err != nil {
			return false
		}
		for id := 0; id < g.NumNodes(); id++ {
			if g.Degree(NodeID(id)) != 4 {
				return false
			}
		}
		return g.Connected() && g.NumEdges() == 2*rows*cols
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInternetDerivedAlwaysValid(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%200) + 10
		g, err := InternetDerived(DefaultInternetConfig(n, seed))
		if err != nil {
			return false
		}
		return g.Connected() && ValleyFree(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
