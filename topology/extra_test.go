package topology

import (
	"testing"
	"testing/quick"
)

func TestWaxmanBasics(t *testing.T) {
	g, err := Waxman(DefaultWaxmanConfig(100, 3))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 100 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if !g.Connected() {
		t.Fatal("waxman graph not connected")
	}
	if g.Annotated() {
		t.Fatal("waxman graph should be unannotated")
	}
	// Density sanity: default parameters target average degree ~3-6.
	avg := 2 * float64(g.NumEdges()) / float64(g.NumNodes())
	if avg < 1.5 || avg > 12 {
		t.Fatalf("average degree %.1f out of sane band", avg)
	}
}

func TestWaxmanDeterministic(t *testing.T) {
	a, err := Waxman(DefaultWaxmanConfig(60, 9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Waxman(DefaultWaxmanConfig(60, 9))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
	c, err := Waxman(DefaultWaxmanConfig(60, 10))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumEdges() == a.NumEdges() {
		same := true
		ce := c.Edges()
		for i := range ae {
			if ae[i] != ce[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestWaxmanValidation(t *testing.T) {
	if _, err := Waxman(WaxmanConfig{Nodes: 1, Alpha: 0.5, Beta: 0.5}); err == nil {
		t.Fatal("1 node accepted")
	}
	if _, err := Waxman(WaxmanConfig{Nodes: 10, Alpha: 0, Beta: 0.5}); err == nil {
		t.Fatal("alpha 0 accepted")
	}
	if _, err := Waxman(WaxmanConfig{Nodes: 10, Alpha: 0.5, Beta: 1.5}); err == nil {
		t.Fatal("beta > 1 accepted")
	}
}

func TestQuickWaxmanAlwaysConnected(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%60) + 5
		g, err := Waxman(DefaultWaxmanConfig(n, seed))
		return err == nil && g.Connected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTieredShape(t *testing.T) {
	cfg := DefaultTieredConfig(5)
	g, err := Tiered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Tier1 + cfg.Tier2*(1+cfg.StubsPerTier2)
	if g.NumNodes() != want {
		t.Fatalf("nodes = %d, want %d", g.NumNodes(), want)
	}
	if !g.Connected() {
		t.Fatal("tiered graph not connected")
	}
	if !g.Annotated() {
		t.Fatal("tiered graph lacks annotations")
	}
	if err := ValleyFree(g); err != nil {
		t.Fatal(err)
	}
}

func TestTieredRelationshipStructure(t *testing.T) {
	cfg := DefaultTieredConfig(7)
	g, err := Tiered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	peers, c2p := 0, 0
	for _, e := range g.Edges() {
		switch g.Relationship(e.A, e.B) {
		case RelPeer:
			peers++
		case RelCustomer, RelProvider:
			c2p++
		default:
			t.Fatalf("edge %v unannotated", e)
		}
	}
	// Peer links: exactly the tier-1 clique.
	if wantPeers := cfg.Tier1 * (cfg.Tier1 - 1) / 2; peers != wantPeers {
		t.Fatalf("peer links = %d, want %d", peers, wantPeers)
	}
	// Customer links: stubs have exactly one provider; tier-2s one or two.
	minC2P := cfg.Tier2 + cfg.Tier2*cfg.StubsPerTier2
	maxC2P := 2*cfg.Tier2 + cfg.Tier2*cfg.StubsPerTier2
	if c2p < minC2P || c2p > maxC2P {
		t.Fatalf("customer links = %d, want in [%d, %d]", c2p, minC2P, maxC2P)
	}
	// Tier-1 ASes (IDs 0..Tier1-1) must have no providers.
	for id := 0; id < cfg.Tier1; id++ {
		for _, nb := range g.Neighbors(NodeID(id)) {
			if g.Relationship(NodeID(id), nb) == RelProvider {
				t.Fatalf("tier-1 AS %d has a provider", id)
			}
		}
	}
}

func TestTieredValidation(t *testing.T) {
	bad := DefaultTieredConfig(1)
	bad.Tier1 = 1
	if _, err := Tiered(bad); err == nil {
		t.Fatal("tier-1 size 1 accepted")
	}
	bad = DefaultTieredConfig(1)
	bad.Tier2 = -1
	if _, err := Tiered(bad); err == nil {
		t.Fatal("negative tier-2 accepted")
	}
	bad = DefaultTieredConfig(1)
	bad.StubsPerTier2 = -1
	if _, err := Tiered(bad); err == nil {
		t.Fatal("negative stubs accepted")
	}
}

func TestTieredCoreOnly(t *testing.T) {
	g, err := Tiered(TieredConfig{Tier1: 3})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("core-only graph: %v", g)
	}
	if err := ValleyFree(g); err != nil {
		t.Fatal(err)
	}
}
