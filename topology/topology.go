// Package topology models the AS-level graphs the experiments run on and
// provides the two topology families used in the paper's evaluation
// (Section 5.1): regular meshes (2-D grids with wrap-around, so all nodes are
// topologically equal) and Internet-derived graphs with a long-tailed degree
// distribution, annotated with customer-provider / peer-peer relationships
// for the no-valley routing policy study (Section 7).
//
// The paper used AS graphs derived from BGP routing tables (BJ Premore's
// SSFNet gallery, no longer available). InternetDerived substitutes a
// preferential-attachment generator that reproduces the two properties the
// paper relies on: the long-tailed degree distribution (drives the richness
// of alternate paths and hence path exploration) and a valley-free business
// hierarchy (drives the policy results).
package topology

import (
	"fmt"
	"sort"
)

// NodeID identifies a node (an AS) within a Graph. IDs are dense: a graph
// with n nodes uses IDs 0..n-1.
type NodeID int

// Edge is an undirected adjacency between two nodes. Edges are stored with
// A < B.
type Edge struct {
	A, B NodeID
}

// Relationship describes the business relationship of a neighbor from a
// node's point of view, used by the no-valley export policy.
type Relationship int

const (
	// RelNone means no relationship annotation (shortest-path policy
	// topologies such as the mesh).
	RelNone Relationship = iota
	// RelCustomer: the neighbor is my customer (I provide transit to it).
	RelCustomer
	// RelProvider: the neighbor is my provider.
	RelProvider
	// RelPeer: settlement-free peer.
	RelPeer
)

// String returns a short human-readable name for the relationship.
func (r Relationship) String() string {
	switch r {
	case RelNone:
		return "none"
	case RelCustomer:
		return "customer"
	case RelProvider:
		return "provider"
	case RelPeer:
		return "peer"
	default:
		return fmt.Sprintf("Relationship(%d)", int(r))
	}
}

// invert maps my-view to the neighbor's view of the same link.
func (r Relationship) invert() Relationship {
	switch r {
	case RelCustomer:
		return RelProvider
	case RelProvider:
		return RelCustomer
	default:
		return r
	}
}

// Graph is an undirected multigraph-free graph over dense NodeIDs with
// optional per-link relationship annotations. The zero value is an empty
// graph; use New to preallocate nodes.
type Graph struct {
	name  string
	adj   [][]NodeID
	edges []Edge
	rel   map[[2]NodeID]Relationship // keyed (from, to); both directions stored
}

// New returns a graph with n isolated nodes. The name is informational and
// appears in String and DOT output.
func New(name string, n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{
		name: name,
		adj:  make([][]NodeID, n),
		rel:  make(map[[2]NodeID]Relationship),
	}
}

// Name returns the graph's informational name.
func (g *Graph) Name() string { return g.name }

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddNode appends a new isolated node and returns its ID.
func (g *Graph) AddNode() NodeID {
	g.adj = append(g.adj, nil)
	return NodeID(len(g.adj) - 1)
}

// valid reports whether id names an existing node.
func (g *Graph) valid(id NodeID) bool {
	return id >= 0 && int(id) < len(g.adj)
}

// AddEdge connects a and b. It returns an error for self-loops, unknown
// nodes, or duplicate edges — all of which indicate generator bugs rather
// than recoverable conditions, but are returned (not panicked) so callers
// building graphs from external data can report them.
func (g *Graph) AddEdge(a, b NodeID) error {
	switch {
	case !g.valid(a) || !g.valid(b):
		return fmt.Errorf("topology: edge (%d,%d) references unknown node", a, b)
	case a == b:
		return fmt.Errorf("topology: self-loop on node %d", a)
	case g.HasEdge(a, b):
		return fmt.Errorf("topology: duplicate edge (%d,%d)", a, b)
	}
	if a > b {
		a, b = b, a
	}
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
	g.edges = append(g.edges, Edge{A: a, B: b})
	return nil
}

// mustEdge is AddEdge for generators whose construction cannot produce
// invalid edges; an error is a bug in this package.
func (g *Graph) mustEdge(a, b NodeID) {
	if err := g.AddEdge(a, b); err != nil {
		panic("topology: internal generator bug: " + err.Error())
	}
}

// HasEdge reports whether a and b are adjacent.
func (g *Graph) HasEdge(a, b NodeID) bool {
	if !g.valid(a) || !g.valid(b) {
		return false
	}
	// Scan the smaller adjacency list.
	if len(g.adj[a]) > len(g.adj[b]) {
		a, b = b, a
	}
	for _, n := range g.adj[a] {
		if n == b {
			return true
		}
	}
	return false
}

// Neighbors returns the nodes adjacent to id. The returned slice is shared
// with the graph and must not be modified.
func (g *Graph) Neighbors(id NodeID) []NodeID {
	if !g.valid(id) {
		return nil
	}
	return g.adj[id]
}

// Degree returns the number of neighbors of id.
func (g *Graph) Degree(id NodeID) int {
	if !g.valid(id) {
		return 0
	}
	return len(g.adj[id])
}

// Edges returns a copy of the edge list.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// SetRelationship annotates the link a-b with a's view of b (and implicitly
// b's inverted view of a). The edge must exist.
func (g *Graph) SetRelationship(a, b NodeID, relOfBFromA Relationship) error {
	if !g.HasEdge(a, b) {
		return fmt.Errorf("topology: cannot annotate missing edge (%d,%d)", a, b)
	}
	g.rel[[2]NodeID{a, b}] = relOfBFromA
	g.rel[[2]NodeID{b, a}] = relOfBFromA.invert()
	return nil
}

// Relationship returns a's view of neighbor b, or RelNone if unannotated.
func (g *Graph) Relationship(a, b NodeID) Relationship {
	return g.rel[[2]NodeID{a, b}]
}

// Annotated reports whether any link carries a relationship annotation.
func (g *Graph) Annotated() bool { return len(g.rel) > 0 }

// Connected reports whether every node is reachable from node 0 (vacuously
// true for empty graphs).
func (g *Graph) Connected() bool {
	n := g.NumNodes()
	if n == 0 {
		return true
	}
	return len(g.BFS(0)) == n
}

// BFS returns hop distances from src to every reachable node.
func (g *Graph) BFS(src NodeID) map[NodeID]int {
	dist := make(map[NodeID]int)
	if !g.valid(src) {
		return dist
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if _, ok := dist[v]; !ok {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Eccentricity returns the maximum BFS distance from src to any reachable
// node.
func (g *Graph) Eccentricity(src NodeID) int {
	max := 0
	for _, d := range g.BFS(src) {
		if d > max {
			max = d
		}
	}
	return max
}

// NodesAtDistance returns the nodes exactly h hops from src, sorted by ID
// (deterministic). Used by the Fig 7 experiment to pick a router 7 hops from
// the flapping origin.
func (g *Graph) NodesAtDistance(src NodeID, h int) []NodeID {
	var out []NodeID
	for id, d := range g.BFS(src) {
		if d == h {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DegreeHistogram returns counts indexed by degree.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for id := range g.adj {
		h[len(g.adj[id])]++
	}
	return h
}

// MaxDegree returns the largest node degree (0 for empty graphs).
func (g *Graph) MaxDegree() int {
	max := 0
	for id := range g.adj {
		if d := len(g.adj[id]); d > max {
			max = d
		}
	}
	return max
}

// Clone returns a deep copy of the graph (nodes, edges, annotations).
func (g *Graph) Clone() *Graph {
	c := New(g.name, g.NumNodes())
	c.edges = make([]Edge, len(g.edges))
	copy(c.edges, g.edges)
	for id := range g.adj {
		c.adj[id] = append([]NodeID(nil), g.adj[id]...)
	}
	for k, v := range g.rel {
		c.rel[k] = v
	}
	return c
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("%s: %d nodes, %d edges", g.name, g.NumNodes(), g.NumEdges())
}
