package topology

import (
	"fmt"
	"sort"

	"rfd/internal/xrand"
)

// Torus returns the paper's "mesh" topology: a rows×cols 2-D grid in which
// nodes at opposite edges are connected, so all nodes are topologically equal
// (Section 5.1). A 10×10 torus has 100 nodes and 200 links, matching the
// simulation setup and the damped-link-count ceiling of 400 in Fig 10.
//
// Both dimensions must be >= 3 so wrap-around links do not duplicate grid
// links.
func Torus(rows, cols int) (*Graph, error) {
	if rows < 3 || cols < 3 {
		return nil, fmt.Errorf("topology: torus dimensions %dx%d too small (need >= 3)", rows, cols)
	}
	g := New(fmt.Sprintf("torus-%dx%d", rows, cols), rows*cols)
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.mustEdge(id(r, c), id(r, (c+1)%cols))
			g.mustEdge(id(r, c), id((r+1)%rows, c))
		}
	}
	return g, nil
}

// Grid returns a rows×cols 2-D grid without wrap-around. Useful for tests and
// ablations; the paper's mesh is the wrapped variant (Torus).
func Grid(rows, cols int) (*Graph, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("topology: grid dimensions %dx%d invalid", rows, cols)
	}
	g := New(fmt.Sprintf("grid-%dx%d", rows, cols), rows*cols)
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.mustEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.mustEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g, nil
}

// Line returns a path graph on n nodes (0-1-2-…-n-1).
func Line(n int) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: line needs >= 2 nodes, got %d", n)
	}
	g := New(fmt.Sprintf("line-%d", n), n)
	for i := 0; i < n-1; i++ {
		g.mustEdge(NodeID(i), NodeID(i+1))
	}
	return g, nil
}

// Ring returns a cycle on n nodes.
func Ring(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("topology: ring needs >= 3 nodes, got %d", n)
	}
	g := New(fmt.Sprintf("ring-%d", n), n)
	for i := 0; i < n; i++ {
		g.mustEdge(NodeID(i), NodeID((i+1)%n))
	}
	return g, nil
}

// Star returns a star with node 0 at the center and n-1 leaves.
func Star(n int) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: star needs >= 2 nodes, got %d", n)
	}
	g := New(fmt.Sprintf("star-%d", n), n)
	for i := 1; i < n; i++ {
		g.mustEdge(0, NodeID(i))
	}
	return g, nil
}

// FullMesh returns the complete graph on n nodes.
func FullMesh(n int) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: full mesh needs >= 2 nodes, got %d", n)
	}
	g := New(fmt.Sprintf("fullmesh-%d", n), n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.mustEdge(NodeID(i), NodeID(j))
		}
	}
	return g, nil
}

// InternetConfig parameterizes the Internet-derived generator.
type InternetConfig struct {
	// Nodes is the number of ASes (the paper uses 100 for Figs 8/9 and 208
	// for Fig 15).
	Nodes int
	// LinksPerNode is the number of links each newly attached AS brings
	// (preferential attachment parameter m). 2 approximates the average
	// degree of the mid-2000s AS graph (~4).
	LinksPerNode int
	// PeerFraction is the probability that a link whose endpoints are both
	// in the highest-degree core is re-annotated peer-peer. All other links
	// are customer-provider.
	PeerFraction float64
	// Seed drives all randomness in the construction.
	Seed uint64
}

// DefaultInternetConfig returns the configuration used by the paper-scale
// experiments.
func DefaultInternetConfig(nodes int, seed uint64) InternetConfig {
	return InternetConfig{
		Nodes:        nodes,
		LinksPerNode: 2,
		PeerFraction: 0.5,
		Seed:         seed,
	}
}

// InternetDerived generates a connected graph with a long-tailed degree
// distribution via preferential attachment, annotated with valley-free
// business relationships:
//
//   - Every attachment edge points from the newly added AS (customer) to an
//     already-present AS (provider). Because "provider" always has a smaller
//     node ID, the provider hierarchy is acyclic by construction.
//   - A PeerFraction share of links whose endpoints are both in the top of
//     the degree ranking is re-annotated peer-peer, modelling the
//     settlement-free core.
//
// This substitutes for the paper's Internet-derived topologies from BGP
// routing tables; see DESIGN.md.
func InternetDerived(cfg InternetConfig) (*Graph, error) {
	if cfg.Nodes < 3 {
		return nil, fmt.Errorf("topology: internet-derived needs >= 3 nodes, got %d", cfg.Nodes)
	}
	if cfg.LinksPerNode < 1 {
		return nil, fmt.Errorf("topology: LinksPerNode must be >= 1, got %d", cfg.LinksPerNode)
	}
	if cfg.PeerFraction < 0 || cfg.PeerFraction > 1 {
		return nil, fmt.Errorf("topology: PeerFraction %v out of [0,1]", cfg.PeerFraction)
	}
	rng := xrand.New(cfg.Seed)
	g := New(fmt.Sprintf("internet-%d", cfg.Nodes), cfg.Nodes)

	// Seed core: a triangle of mutually peered ASes.
	g.mustEdge(0, 1)
	g.mustEdge(1, 2)
	g.mustEdge(0, 2)

	// repeated holds one entry per edge endpoint, so sampling uniformly from
	// it implements degree-proportional (preferential) attachment.
	repeated := []NodeID{0, 0, 1, 1, 2, 2}

	for v := NodeID(3); int(v) < cfg.Nodes; v++ {
		m := cfg.LinksPerNode
		if int(v) < m {
			m = int(v)
		}
		chosen := make(map[NodeID]bool, m)
		for len(chosen) < m {
			t := repeated[rng.Intn(len(repeated))]
			if t != v && !chosen[t] {
				chosen[t] = true
			}
		}
		// Deterministic edge insertion order.
		targets := make([]NodeID, 0, len(chosen))
		for t := range chosen {
			targets = append(targets, t)
		}
		sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
		for _, t := range targets {
			g.mustEdge(v, t)
			// v is the customer of t.
			if err := g.SetRelationship(v, t, RelProvider); err != nil {
				return nil, err
			}
			repeated = append(repeated, v, t)
		}
	}

	// Convert links among the highest-degree nodes to peer-peer. Rank nodes
	// by (degree desc, id asc); a link is "core" if both endpoints are in
	// the top coreSize.
	coreSize := cfg.Nodes / 10
	if coreSize < 3 {
		coreSize = 3
	}
	rank := make([]NodeID, cfg.Nodes)
	for i := range rank {
		rank[i] = NodeID(i)
	}
	sort.Slice(rank, func(i, j int) bool {
		di, dj := g.Degree(rank[i]), g.Degree(rank[j])
		if di != dj {
			return di > dj
		}
		return rank[i] < rank[j]
	})
	core := make(map[NodeID]bool, coreSize)
	for _, id := range rank[:coreSize] {
		core[id] = true
	}
	for _, e := range g.edges {
		if core[e.A] && core[e.B] && rng.Float64() < cfg.PeerFraction {
			if err := g.SetRelationship(e.A, e.B, RelPeer); err != nil {
				return nil, err
			}
		}
	}
	// The seed triangle is always peered: it is the tier-1 clique, and it
	// guarantees the provider hierarchy has well-defined roots.
	for _, e := range [][2]NodeID{{0, 1}, {1, 2}, {0, 2}} {
		if err := g.SetRelationship(e[0], e[1], RelPeer); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// ValleyFree verifies the relationship annotation is usable by the no-valley
// policy: every edge is annotated, views are consistent, and the
// customer→provider digraph is acyclic. Returns nil if valid.
func ValleyFree(g *Graph) error {
	if g.NumNodes() == 0 {
		return nil
	}
	// Build the customer→provider digraph while validating annotations.
	outs := make([][]NodeID, g.NumNodes())
	indeg := make([]int, g.NumNodes())
	for _, e := range g.Edges() {
		ra := g.Relationship(e.A, e.B)
		rb := g.Relationship(e.B, e.A)
		if ra == RelNone || rb == RelNone {
			return fmt.Errorf("topology: edge (%d,%d) lacks relationship annotation", e.A, e.B)
		}
		if ra.invert() != rb {
			return fmt.Errorf("topology: edge (%d,%d) has inconsistent views %v/%v", e.A, e.B, ra, rb)
		}
		switch ra {
		case RelProvider: // B is A's provider: arc A->B
			outs[e.A] = append(outs[e.A], e.B)
			indeg[e.B]++
		case RelCustomer: // A is B's provider: arc B->A
			outs[e.B] = append(outs[e.B], e.A)
			indeg[e.A]++
		}
	}
	// Kahn's algorithm: a topological order exists iff the hierarchy is
	// acyclic (no AS is transitively its own provider).
	var queue []NodeID
	for id, d := range indeg {
		if d == 0 {
			queue = append(queue, NodeID(id))
		}
	}
	seen := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		seen++
		for _, v := range outs[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if seen != g.NumNodes() {
		return fmt.Errorf("topology: customer-provider hierarchy contains a cycle")
	}
	return nil
}
