package topology

import (
	"fmt"
	"sort"
)

// Partition assigns every node to one of k shards for parallel simulation,
// trying to keep shards balanced while cutting as few edges as possible. The
// algorithm is deterministic BFS region growing:
//
//  1. Pick k seeds: the highest-degree node first, then repeatedly the
//     highest-degree node maximizing its BFS distance to the seeds chosen so
//     far, so regions start spread out rather than adjacent.
//  2. Grow regions round-robin. Each shard, on its turn, claims the
//     unassigned frontier node with the most already-claimed neighbors in
//     that shard (ties broken by lowest id) — greedily internalizing edges.
//     A shard at the balanced size ceil(n/k) stops claiming, which bounds
//     imbalance at one node.
//  3. Nodes unreachable from any seed (disconnected components) are swept up
//     round-robin by ascending id.
//
// The result is not a min-cut — true balanced min-cut is NP-hard — but on
// mesh and internet-like graphs it produces contiguous regions whose cut
// fraction PartitionStats reports, so bad partitions are diagnosable.
//
// k must be in [1, NumNodes]. The returned slice maps node id to shard; every
// shard owns at least one node.
func Partition(g *Graph, k int) ([]int32, error) {
	n := g.NumNodes()
	if k < 1 || k > n {
		return nil, fmt.Errorf("topology: cannot partition %d nodes into %d shards", n, k)
	}
	assign := make([]int32, n)
	for i := range assign {
		assign[i] = -1
	}
	if k == 1 {
		for i := range assign {
			assign[i] = 0
		}
		return assign, nil
	}

	seeds := pickSeeds(g, k)
	limit := (n + k - 1) / k

	// claimed[v] counts v's neighbors already assigned to shard s when v sits
	// on s's frontier; recomputed cheaply because frontiers stay small.
	size := make([]int, k)
	frontier := make([]map[NodeID]bool, k)
	for s, seed := range seeds {
		assign[seed] = int32(s)
		size[s]++
		frontier[s] = make(map[NodeID]bool)
		for _, w := range g.Neighbors(seed) {
			if assign[w] < 0 {
				frontier[s][w] = true
			}
		}
	}

	remaining := n - k
	for remaining > 0 {
		progress := false
		for s := 0; s < k && remaining > 0; s++ {
			if size[s] >= limit {
				continue
			}
			best := NodeID(-1)
			bestScore := -1
			for v := range frontier[s] {
				if assign[v] >= 0 {
					delete(frontier[s], v)
					continue
				}
				score := 0
				for _, w := range g.Neighbors(v) {
					if assign[w] == int32(s) {
						score++
					}
				}
				if score > bestScore || (score == bestScore && v < best) {
					best, bestScore = v, score
				}
			}
			if best < 0 {
				continue
			}
			assign[best] = int32(s)
			size[s]++
			remaining--
			progress = true
			delete(frontier[s], best)
			for _, w := range g.Neighbors(best) {
				if assign[w] < 0 {
					frontier[s][w] = true
				}
			}
		}
		if !progress {
			break
		}
	}
	// Disconnected leftovers (or nodes walled off by full shards): spread
	// them round-robin over the least-loaded shards by ascending id.
	for v := 0; v < n; v++ {
		if assign[v] >= 0 {
			continue
		}
		s := 0
		for t := 1; t < k; t++ {
			if size[t] < size[s] {
				s = t
			}
		}
		assign[v] = int32(s)
		size[s]++
	}
	return assign, nil
}

// pickSeeds returns k distinct seed nodes: highest degree first, then
// repeatedly the node maximizing min BFS distance to the existing seeds, with
// degree (then lowest id) breaking ties — far apart but well connected.
func pickSeeds(g *Graph, k int) []NodeID {
	n := g.NumNodes()
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = NodeID(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		di, dj := g.Degree(ids[i]), g.Degree(ids[j])
		if di != dj {
			return di > dj
		}
		return ids[i] < ids[j]
	})
	seeds := []NodeID{ids[0]}
	minDist := g.BFS(ids[0])
	for len(seeds) < k {
		best := NodeID(-1)
		bestDist, bestDeg := -1, -1
		for _, v := range ids {
			if contains(seeds, v) {
				continue
			}
			dist, ok := minDist[v]
			if !ok {
				// Unreachable from every seed: infinitely far.
				dist = n
			}
			deg := g.Degree(v)
			if dist > bestDist || (dist == bestDist && (deg > bestDeg || (deg == bestDeg && v < best))) {
				best, bestDist, bestDeg = v, dist, deg
			}
		}
		seeds = append(seeds, best)
		for v, d := range g.BFS(best) {
			if cur, ok := minDist[v]; !ok || d < cur {
				minDist[v] = d
			}
		}
	}
	return seeds
}

func contains(s []NodeID, v NodeID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// PartitionStats quantifies a partition's quality for the `-v` diagnostics
// line: a high cut fraction or lopsided shard sizes explain a slow sharded
// run better than any profiler.
type PartitionStats struct {
	// Shards is the number of shards.
	Shards int
	// CutEdges is the number of edges whose endpoints live on different
	// shards; every message on them crosses a barrier.
	CutEdges int
	// TotalEdges is the graph's edge count.
	TotalEdges int
	// Sizes is the node count per shard.
	Sizes []int
}

// CutFraction returns CutEdges/TotalEdges (0 for edgeless graphs).
func (s PartitionStats) CutFraction() float64 {
	if s.TotalEdges == 0 {
		return 0
	}
	return float64(s.CutEdges) / float64(s.TotalEdges)
}

// Imbalance returns max shard size over the balanced size n/k (1.0 = perfect).
func (s PartitionStats) Imbalance() float64 {
	n := 0
	max := 0
	for _, sz := range s.Sizes {
		n += sz
		if sz > max {
			max = sz
		}
	}
	if n == 0 || len(s.Sizes) == 0 {
		return 1
	}
	return float64(max) * float64(len(s.Sizes)) / float64(n)
}

func (s PartitionStats) String() string {
	return fmt.Sprintf("shards=%d cut=%d/%d (%.1f%%) sizes=%v imbalance=%.2f",
		s.Shards, s.CutEdges, s.TotalEdges, 100*s.CutFraction(), s.Sizes, s.Imbalance())
}

// AnalyzePartition computes quality statistics for a node→shard assignment.
func AnalyzePartition(g *Graph, assign []int32) PartitionStats {
	shards := 0
	for _, s := range assign {
		if int(s)+1 > shards {
			shards = int(s) + 1
		}
	}
	st := PartitionStats{
		Shards:     shards,
		TotalEdges: g.NumEdges(),
		Sizes:      make([]int, shards),
	}
	for _, s := range assign {
		st.Sizes[s]++
	}
	for _, e := range g.Edges() {
		if assign[e.A] != assign[e.B] {
			st.CutEdges++
		}
	}
	return st
}
