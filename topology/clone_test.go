package topology

import "testing"

func TestCloneIndependence(t *testing.T) {
	g, err := InternetDerived(DefaultInternetConfig(40, 9))
	if err != nil {
		t.Fatal(err)
	}
	c := g.Clone()
	if c.NumNodes() != g.NumNodes() || c.NumEdges() != g.NumEdges() {
		t.Fatalf("clone shape differs: %v vs %v", c, g)
	}
	for _, e := range g.Edges() {
		if !c.HasEdge(e.A, e.B) {
			t.Fatalf("clone missing edge %v", e)
		}
		if c.Relationship(e.A, e.B) != g.Relationship(e.A, e.B) {
			t.Fatalf("clone relationship differs on %v", e)
		}
	}
	// Mutating the clone must not affect the original.
	n := c.AddNode()
	if err := c.AddEdge(n, 0); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() == c.NumNodes() {
		t.Fatal("AddNode on clone affected original")
	}
	if g.HasEdge(n, 0) {
		t.Fatal("AddEdge on clone affected original")
	}
	if err := c.SetRelationship(n, 0, RelProvider); err != nil {
		t.Fatal(err)
	}
	if g.Relationship(n, 0) != RelNone {
		t.Fatal("SetRelationship on clone affected original")
	}
}

func TestCloneEmpty(t *testing.T) {
	g := New("empty", 0)
	c := g.Clone()
	if c.NumNodes() != 0 || c.NumEdges() != 0 || c.Name() != "empty" {
		t.Fatalf("empty clone wrong: %v", c)
	}
}
