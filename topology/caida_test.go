package topology

import (
	"strings"
	"testing"
)

const caidaSample = `# source: test fixture, serial-1 format
# provider|customer|-1, peer|peer|0
701|7018|0
701|64512|-1
7018|64512|-1
64512|65001|-1
65001|701|0   # trailing comment
`

func TestParseASRelationships(t *testing.T) {
	g, err := ParseASRelationships(strings.NewReader(caidaSample), "sample")
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "sample" {
		t.Errorf("name = %q, want sample", g.Name())
	}
	// ASNs in ascending order: 701→0, 7018→1, 64512→2, 65001→3.
	if got, want := g.NumNodes(), 4; got != want {
		t.Fatalf("nodes = %d, want %d", got, want)
	}
	if got, want := g.NumEdges(), 5; got != want {
		t.Fatalf("edges = %d, want %d", got, want)
	}
	if !g.Annotated() {
		t.Fatal("graph not relationship-annotated")
	}
	const (
		as701   = NodeID(0)
		as7018  = NodeID(1)
		as64512 = NodeID(2)
		as65001 = NodeID(3)
	)
	checks := []struct {
		a, b NodeID
		want Relationship
	}{
		{as701, as7018, RelPeer},
		{as7018, as701, RelPeer},
		{as701, as64512, RelCustomer}, // 701 provides transit to 64512
		{as64512, as701, RelProvider}, // 64512's view of its provider
		{as7018, as64512, RelCustomer},
		{as64512, as65001, RelCustomer},
		{as65001, as64512, RelProvider},
		{as65001, as701, RelPeer},
	}
	for _, c := range checks {
		if got := g.Relationship(c.a, c.b); got != c.want {
			t.Errorf("Relationship(%d, %d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestParseASRelationshipsLineOrderIndependent pins the dense-id mapping to
// ascending AS number: shuffling lines must yield an identical graph.
func TestParseASRelationshipsLineOrderIndependent(t *testing.T) {
	lines := []string{
		"701|64512|-1",
		"7018|64512|-1",
		"701|7018|0",
		"65001|701|0",
		"64512|65001|-1",
	}
	a, err := ParseASRelationships(strings.NewReader(strings.Join(lines, "\n")), "a")
	if err != nil {
		t.Fatal(err)
	}
	for i, j := 0, len(lines)-1; i < j; i, j = i+1, j-1 {
		lines[i], lines[j] = lines[j], lines[i]
	}
	b, err := ParseASRelationships(strings.NewReader(strings.Join(lines, "\n")), "b")
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape differs: %d/%d nodes, %d/%d edges",
			a.NumNodes(), b.NumNodes(), a.NumEdges(), b.NumEdges())
	}
	for v := NodeID(0); int(v) < a.NumNodes(); v++ {
		for _, w := range a.Neighbors(v) {
			if !b.HasEdge(v, w) {
				t.Fatalf("edge %d-%d present in a, missing in b", v, w)
			}
			if ra, rb := a.Relationship(v, w), b.Relationship(v, w); ra != rb {
				t.Fatalf("rel(%d,%d) = %v in a, %v in b", v, w, ra, rb)
			}
		}
	}
}

// TestParseASRelationshipsCanonicalSwap pins the provider-side annotation when
// the provider has the *higher* AS number: the low-AS side must see
// RelProvider.
func TestParseASRelationshipsCanonicalSwap(t *testing.T) {
	// 9000 is the provider of 100; ids: 100→0, 9000→1.
	g, err := ParseASRelationships(strings.NewReader("9000|100|-1\n"), "swap")
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Relationship(NodeID(0), NodeID(1)); got != RelProvider {
		t.Errorf("low AS's view = %v, want RelProvider", got)
	}
	if got := g.Relationship(NodeID(1), NodeID(0)); got != RelCustomer {
		t.Errorf("high AS's view = %v, want RelCustomer", got)
	}
}

func TestParseASRelationshipsErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  string // substring of the error
	}{
		{"empty", "", "no links"},
		{"comments-only", "# a\n# b\n", "no links"},
		{"too-few-fields", "701|7018\n", "line 1: want as|as|rel"},
		{"bad-first-asn", "x|7018|0\n", "line 1: first AS"},
		{"bad-second-asn", "701|-7018|0\n", "line 1: second AS"},
		{"asn-out-of-range", "701|4294967296|0\n", "line 1: second AS"},
		{"self-loop", "701|701|0\n", "line 1: self-loop on AS701"},
		{"bad-rel", "701|7018|2\n", `line 1: relationship "2"`},
		{"conflicting-dup", "701|7018|0\n701|7018|-1\n", "line 2"},
		{"conflict-swapped-order", "701|7018|-1\n7018|701|-1\n", "line 2"},
		{"line-number-counts-comments", "# header\n\n701|7018\n", "line 3"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseASRelationships(strings.NewReader(c.input), c.name)
			if err == nil {
				t.Fatalf("parse succeeded, want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestParseASRelationshipsDuplicateTolerated(t *testing.T) {
	g, err := ParseASRelationships(strings.NewReader("701|7018|-1\n701|7018|-1\n"), "dup")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", g.NumEdges())
	}
}

// TestParseASRelationshipsLongLine pins the 1 MiB scanner limit (same
// convention as faults.ParsePlan): an oversized line errors with its line
// number instead of silently truncating.
func TestParseASRelationshipsLongLine(t *testing.T) {
	long := "701|7018|0\n# " + strings.Repeat("x", 2<<20) + "\n"
	_, err := ParseASRelationships(strings.NewReader(long), "long")
	if err == nil {
		t.Fatal("parse succeeded on a 2 MiB line")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error %q does not name line 2", err)
	}
}

func FuzzParseASRelationships(f *testing.F) {
	f.Add(caidaSample)
	f.Add("701|7018|0\n")
	f.Add("9000|100|-1\n")
	f.Add("")
	f.Add("# only comments\n")
	f.Add("701|7018\n")
	f.Add("x|y|z\n")
	f.Add("701|701|0\n")
	f.Add("701|7018|0\n701|7018|-1\n")
	f.Add("1|2|-1|inference-source\n")
	f.Add("4294967295|0|0\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ParseASRelationships(strings.NewReader(input), "fuzz")
		if err != nil {
			return
		}
		// A successful parse must yield a structurally sound, annotated graph
		// whose every edge carries a consistent pair of relationship views.
		if g.NumNodes() == 0 || g.NumEdges() == 0 {
			t.Fatalf("successful parse returned empty graph (%d nodes, %d edges)",
				g.NumNodes(), g.NumEdges())
		}
		if !g.Annotated() {
			t.Fatal("successful parse returned unannotated graph")
		}
		for v := NodeID(0); int(v) < g.NumNodes(); v++ {
			for _, w := range g.Neighbors(v) {
				r, inv := g.Relationship(v, w), g.Relationship(w, v)
				if r == RelNone || inv == RelNone {
					t.Fatalf("edge %d-%d missing annotation", v, w)
				}
				if r.invert() != inv {
					t.Fatalf("edge %d-%d views inconsistent: %v vs %v", v, w, r, inv)
				}
			}
		}
	})
}
