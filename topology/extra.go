package topology

import (
	"fmt"
	"math"

	"rfd/internal/xrand"
)

// WaxmanConfig parameterizes the Waxman random-geometric generator.
type WaxmanConfig struct {
	// Nodes is the number of nodes, placed uniformly in the unit square.
	Nodes int
	// Alpha scales overall edge density (0, 1].
	Alpha float64
	// Beta controls the reach of long edges (0, 1]: larger values make
	// distant pairs more likely to connect.
	Beta float64
	// Seed drives placement and edge selection.
	Seed uint64
}

// DefaultWaxmanConfig returns the classic parameters (α = 0.15, β = 0.6)
// tuned to yield average degree ≈ 4 at n = 100.
func DefaultWaxmanConfig(nodes int, seed uint64) WaxmanConfig {
	return WaxmanConfig{Nodes: nodes, Alpha: 0.15, Beta: 0.6, Seed: seed}
}

// Waxman generates the classic Waxman (1988) random topology: nodes placed
// uniformly in the unit square, each pair connected with probability
// α·exp(−d / (β·√2)). The result is forced connected by linking each
// stranded component to its geometrically nearest connected node, so it is
// usable directly as a simulation substrate. Unannotated (shortest-path
// policy only).
func Waxman(cfg WaxmanConfig) (*Graph, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("topology: waxman needs >= 2 nodes, got %d", cfg.Nodes)
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 || cfg.Beta <= 0 || cfg.Beta > 1 {
		return nil, fmt.Errorf("topology: waxman alpha/beta (%v, %v) out of (0, 1]", cfg.Alpha, cfg.Beta)
	}
	rng := xrand.New(cfg.Seed)
	type point struct{ x, y float64 }
	pts := make([]point, cfg.Nodes)
	for i := range pts {
		pts[i] = point{rng.Float64(), rng.Float64()}
	}
	dist := func(a, b int) float64 {
		dx, dy := pts[a].x-pts[b].x, pts[a].y-pts[b].y
		return math.Sqrt(dx*dx + dy*dy)
	}
	g := New(fmt.Sprintf("waxman-%d", cfg.Nodes), cfg.Nodes)
	maxDist := math.Sqrt2
	for i := 0; i < cfg.Nodes; i++ {
		for j := i + 1; j < cfg.Nodes; j++ {
			p := cfg.Alpha * math.Exp(-dist(i, j)/(cfg.Beta*maxDist))
			if rng.Float64() < p {
				g.mustEdge(NodeID(i), NodeID(j))
			}
		}
	}
	// Force connectivity: repeatedly attach the component not containing
	// node 0 via the geometrically closest cross pair.
	for {
		reach := g.BFS(0)
		if len(reach) == g.NumNodes() {
			break
		}
		bestIn, bestOut := -1, -1
		bestD := math.Inf(1)
		for v := 0; v < g.NumNodes(); v++ {
			if _, ok := reach[NodeID(v)]; ok {
				continue
			}
			for u := range reach {
				if d := dist(int(u), v); d < bestD {
					bestD, bestIn, bestOut = d, int(u), v
				}
			}
		}
		g.mustEdge(NodeID(bestIn), NodeID(bestOut))
	}
	return g, nil
}

// TieredConfig parameterizes the hierarchical (tiered) AS generator.
type TieredConfig struct {
	// Tier1 is the size of the settlement-free core clique.
	Tier1 int
	// Tier2 is the number of mid-tier transit ASes.
	Tier2 int
	// Tier2Multihome gives each tier-2 AS a second (distinct) tier-1
	// provider when possible.
	Tier2Multihome bool
	// StubsPerTier2 is how many stub ASes buy transit from each tier-2.
	StubsPerTier2 int
	// Seed drives the provider selection.
	Seed uint64
}

// DefaultTieredConfig returns a three-level hierarchy of ≈ tier1 + tier2·(1
// + stubs) ASes: 4 tier-1s, 12 tier-2s (multihomed), 5 stubs each → 76.
func DefaultTieredConfig(seed uint64) TieredConfig {
	return TieredConfig{
		Tier1:          4,
		Tier2:          12,
		Tier2Multihome: true,
		StubsPerTier2:  5,
		Seed:           seed,
	}
}

// Tiered generates a three-level AS hierarchy annotated for the no-valley
// policy, in the spirit of the classic Internet structure the paper's policy
// discussion assumes:
//
//   - tier-1: a full clique of peer-peer links (the settlement-free core) —
//     any route can cross exactly one peer link at the top;
//   - tier-2: transit ASes, each a customer of one (or, with
//     Tier2Multihome, two) tier-1 providers;
//   - stubs: customers of one tier-2 each.
//
// Every AS is reachable from every other under no-valley export rules
// (up via providers, once across the core, down to customers), and the
// customer→provider digraph is acyclic by construction.
func Tiered(cfg TieredConfig) (*Graph, error) {
	switch {
	case cfg.Tier1 < 2:
		return nil, fmt.Errorf("topology: tiered needs >= 2 tier-1 ASes")
	case cfg.Tier2 < 0 || cfg.StubsPerTier2 < 0:
		return nil, fmt.Errorf("topology: negative tier sizes")
	}
	rng := xrand.New(cfg.Seed)
	total := cfg.Tier1 + cfg.Tier2*(1+cfg.StubsPerTier2)
	g := New(fmt.Sprintf("tiered-%d", total), total)

	peer := func(a, b NodeID) error {
		if err := g.AddEdge(a, b); err != nil {
			return err
		}
		return g.SetRelationship(a, b, RelPeer)
	}
	customer := func(c, p NodeID) error {
		if err := g.AddEdge(c, p); err != nil {
			return err
		}
		return g.SetRelationship(c, p, RelProvider)
	}

	next := NodeID(0)
	alloc := func() NodeID { id := next; next++; return id }

	tier1 := make([]NodeID, cfg.Tier1)
	for i := range tier1 {
		tier1[i] = alloc()
	}
	for i := 0; i < cfg.Tier1; i++ {
		for j := i + 1; j < cfg.Tier1; j++ {
			if err := peer(tier1[i], tier1[j]); err != nil {
				return nil, err
			}
		}
	}
	tier2 := make([]NodeID, cfg.Tier2)
	for i := range tier2 {
		tier2[i] = alloc()
		primary := tier1[rng.Intn(cfg.Tier1)]
		if err := customer(tier2[i], primary); err != nil {
			return nil, err
		}
		if cfg.Tier2Multihome && cfg.Tier1 > 1 {
			backup := tier1[rng.Intn(cfg.Tier1)]
			if backup != primary {
				if err := customer(tier2[i], backup); err != nil {
					return nil, err
				}
			}
		}
	}
	for _, t2 := range tier2 {
		for s := 0; s < cfg.StubsPerTier2; s++ {
			if err := customer(alloc(), t2); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}
