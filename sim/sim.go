// Package sim provides the deterministic discrete-event simulation kernel
// underneath the BGP route-flap-damping experiments.
//
// A Kernel owns a virtual clock and an event queue. Components schedule
// callbacks at virtual instants; Run drains the queue in (time, schedule
// order), advancing the clock as it goes. There is no wall-clock coupling and
// no goroutine concurrency inside a kernel: a run is a pure function of the
// initial schedule and the seed, so every experiment in this repository is
// exactly reproducible. (Parallelism lives a level up — independent runs of a
// parameter sweep execute on separate kernels in separate goroutines.)
//
// Scheduling comes in two flavors. At/After take an ordinary closure and are
// right for cold-path events (fault injection, experiment orchestration).
// AtHandler/AfterHandler take a Handler plus a packed uint64 argument and
// allocate nothing in steady state — the event queue is slab-backed, the
// Timer handle is a value, and no closure is created — which is what the BGP
// engine's per-message hot path (deliver, MRAI, damping reuse) uses.
//
// Basic use:
//
//	k := sim.NewKernel(sim.WithSeed(1))
//	k.After(2*time.Second, "hello", func() { fmt.Println(k.Now()) })
//	if err := k.Run(); err != nil { ... }
package sim

import (
	"context"
	"errors"
	"fmt"
	"time"

	"rfd/internal/eventq"
	"rfd/internal/xrand"
)

// ErrEventLimit is returned by Run and RunUntil when the kernel has executed
// its configured maximum number of events, which almost always indicates a
// scheduling loop (e.g. a timer that re-arms itself unconditionally).
var ErrEventLimit = errors.New("sim: event limit exceeded")

// ErrInterrupted wraps the context's cause when RunContext or RunUntilContext
// stops at a cooperative stop check. Use errors.Is against context.Canceled
// or context.DeadlineExceeded to distinguish a cancel from a deadline.
var ErrInterrupted = errors.New("sim: run interrupted")

// StopCheckInterval is how many events RunContext executes between
// cooperative ctx checks. The check is amortized so the allocation-free hot
// path stays allocation-free: a context poll costs a few nanoseconds, and at
// this granularity a cancelled run stops within microseconds of wall time
// while the per-event overhead is unmeasurable.
const StopCheckInterval = 1024

// DefaultMaxEvents bounds a run unless overridden with WithMaxEvents. The
// largest experiment in this repository (208-node topology, 10 pulses)
// executes on the order of 10^6 events, so the default leaves ample headroom
// while still catching runaway schedules quickly.
const DefaultMaxEvents = 200_000_000

// Never is the sentinel Timer.When reports for a timer that is not pending —
// fired, cancelled, or never scheduled. It is a virtual instant no event can
// occupy (the kernel's clock never goes negative).
const Never = time.Duration(-1 << 62)

// Handler receives typed events scheduled with AtHandler/AfterHandler. The
// packed arg is whatever the scheduler passed — typically an index into the
// component's own state (a slab slot, or bit-packed peer/prefix ids).
// Implementations live in the scheduling component; taking the interface of
// a field pointer (&r.someHandler) avoids any per-schedule allocation.
type Handler interface {
	HandleEvent(arg uint64)
}

// Timer is a value handle to a scheduled callback. The zero Timer is inert:
// Active and When report not-pending, Cancel and Reschedule do nothing.
// Timers stay inert after firing or cancellation, even though the kernel
// reuses the underlying queue slot for later events.
type Timer struct {
	k *Kernel
	h eventq.Handle
}

// Active reports whether the timer is still pending.
func (t Timer) Active() bool {
	return t.k != nil && t.k.q.Scheduled(t.h)
}

// Cancel stops the timer. It reports whether the timer was still pending.
func (t Timer) Cancel() bool {
	if t.k == nil {
		return false
	}
	return t.k.q.Cancel(t.h)
}

// Reschedule moves a still-pending timer to virtual time at. It reports
// whether the timer was pending. Rescheduling into the past (before Now) is a
// programming error and panics, because it would silently corrupt causality.
func (t Timer) Reschedule(at time.Duration) bool {
	if t.k == nil {
		return false
	}
	if at < t.k.now {
		panic(fmt.Sprintf("sim: reschedule at %v before now %v", at, t.k.now))
	}
	return t.k.q.Reschedule(t.h, at)
}

// When returns the virtual time the timer will fire at, or Never when the
// timer is not pending (fired, cancelled, or the zero Timer). Callers that
// compare When against the clock or another event time should treat Never as
// "no deadline" — it is far earlier than any schedulable instant.
func (t Timer) When() time.Duration {
	if t.k == nil {
		return Never
	}
	at, ok := t.k.q.When(t.h)
	if !ok {
		return Never
	}
	return at
}

// event is what the queue stores: a closure callback (fn non-nil) or a typed
// handler/arg pair. The name is used only for tracing and diagnostics.
type event struct {
	name string
	fn   func()
	h    Handler
	arg  uint64
}

// TraceFunc observes every event as it fires; see Kernel.SetTrace.
type TraceFunc func(at time.Duration, name string)

// Kernel is a deterministic discrete-event scheduler. Construct with
// NewKernel; a Kernel must not be shared between goroutines.
type Kernel struct {
	q          eventq.Queue[event]
	now        time.Duration
	rng        *xrand.Rand
	executed   uint64
	maxEvents  uint64
	trace      TraceFunc
	afterEvent TraceFunc
}

// Option configures a Kernel.
type Option func(*Kernel)

// WithSeed sets the seed for the kernel's random stream. Runs with equal
// seeds and equal schedules are identical. Default seed is 1.
func WithSeed(seed uint64) Option {
	return func(k *Kernel) { k.rng = xrand.New(seed) }
}

// WithMaxEvents overrides the runaway-schedule guard.
func WithMaxEvents(n uint64) Option {
	return func(k *Kernel) { k.maxEvents = n }
}

// NewKernel returns a kernel at virtual time zero.
func NewKernel(opts ...Option) *Kernel {
	k := &Kernel{
		rng:       xrand.New(1),
		maxEvents: DefaultMaxEvents,
	}
	for _, opt := range opts {
		opt(k)
	}
	return k
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Rand returns the kernel's random stream. Components that need isolated
// streams should Split it once at construction.
func (k *Kernel) Rand() *xrand.Rand { return k.rng }

// Executed returns the number of events fired so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending returns the number of scheduled events not yet fired.
func (k *Kernel) Pending() int { return k.q.Len() }

// SetTrace installs fn to observe every fired event (nil disables tracing).
func (k *Kernel) SetTrace(fn TraceFunc) { k.trace = fn }

// Trace returns the currently installed trace observer (nil when tracing is
// off). Observers that want to chain — observe events while preserving an
// existing observer — save this, install their own function, and call the
// saved one from it.
func (k *Kernel) Trace() TraceFunc { return k.trace }

// SetAfterEvent installs fn to run after every fired event's callback has
// returned (nil disables). Where SetTrace observes an event about to fire,
// the after-event observer sees the state the event left behind — which is
// what an invariant checker needs: every mutation the callback made is
// visible, and the next event has not yet run. Chaining works exactly as for
// SetTrace: save AfterEvent, install your own function, call the saved one.
func (k *Kernel) SetAfterEvent(fn TraceFunc) { k.afterEvent = fn }

// AfterEvent returns the currently installed after-event observer (nil when
// none is installed).
func (k *Kernel) AfterEvent() TraceFunc { return k.afterEvent }

// NextEventTime returns the virtual time of the earliest pending event and
// whether one exists. It is the kernel's idle-detection hook: between Now and
// that instant nothing in the simulation can change, so a caller that finds
// the gap larger than its grace window knows the system is quiescent for at
// least that long (the convergence watchdog relies on this).
func (k *Kernel) NextEventTime() (time.Duration, bool) {
	return k.q.PeekTime()
}

// checkSchedule validates a schedule time against the causal order.
func (k *Kernel) checkSchedule(at time.Duration, name string) {
	if at < k.now {
		panic(fmt.Sprintf("sim: schedule %q at %v before now %v", name, at, k.now))
	}
}

// At schedules fn at absolute virtual time at. Scheduling in the past panics:
// it would break the causal order every experiment relies on. The name is
// only used for tracing and diagnostics. The closure this stores allocates;
// hot paths should use AtHandler instead.
func (k *Kernel) At(at time.Duration, name string, fn func()) Timer {
	k.checkSchedule(at, name)
	if fn == nil {
		panic("sim: schedule with nil callback")
	}
	h := k.q.Push(at, event{name: name, fn: fn})
	return Timer{k: k, h: h}
}

// After schedules fn d after the current virtual time. Negative d panics.
func (k *Kernel) After(d time.Duration, name string, fn func()) Timer {
	return k.At(k.now+d, name, fn)
}

// AtHandler schedules h.HandleEvent(arg) at absolute virtual time at. It is
// the allocation-free scheduling path: no closure is created and the queue
// entry lives in a pooled slab. Semantics otherwise match At — scheduling in
// the past panics, and the name is used only for tracing.
func (k *Kernel) AtHandler(at time.Duration, name string, h Handler, arg uint64) Timer {
	k.checkSchedule(at, name)
	if h == nil {
		panic("sim: schedule with nil handler")
	}
	hd := k.q.Push(at, event{name: name, h: h, arg: arg})
	return Timer{k: k, h: hd}
}

// AfterHandler schedules h.HandleEvent(arg) d after the current virtual
// time. Negative d panics.
func (k *Kernel) AfterHandler(d time.Duration, name string, h Handler, arg uint64) Timer {
	return k.AtHandler(k.now+d, name, h, arg)
}

// Step fires the earliest pending event, advancing the clock to its time.
// It reports whether an event was fired.
func (k *Kernel) Step() bool {
	at, ev, ok := k.q.Pop()
	if !ok {
		return false
	}
	k.now = at
	k.executed++
	if k.trace != nil {
		k.trace(k.now, ev.name)
	}
	if ev.fn != nil {
		ev.fn()
	} else {
		ev.h.HandleEvent(ev.arg)
	}
	if k.afterEvent != nil {
		k.afterEvent(k.now, ev.name)
	}
	return true
}

// Run fires events until the queue is empty. It returns ErrEventLimit if the
// configured maximum number of events is exceeded.
func (k *Kernel) Run() error {
	for k.q.Len() > 0 {
		if k.executed >= k.maxEvents {
			return fmt.Errorf("%w (%d events, now %v)", ErrEventLimit, k.executed, k.now)
		}
		k.Step()
	}
	return nil
}

// RunUntil fires events with time <= horizon, leaving later events pending,
// and advances the clock to exactly horizon. It returns ErrEventLimit under
// the same condition as Run.
func (k *Kernel) RunUntil(horizon time.Duration) error {
	for {
		headAt, ok := k.q.PeekTime()
		if !ok || headAt > horizon {
			break
		}
		if k.executed >= k.maxEvents {
			return fmt.Errorf("%w (%d events, now %v)", ErrEventLimit, k.executed, k.now)
		}
		k.Step()
	}
	if horizon > k.now {
		k.now = horizon
	}
	return nil
}

// RunBefore fires events with time strictly less than horizon, leaving events
// at or after the horizon pending. Unlike RunUntil it does not advance the
// clock to the horizon: the clock is left at the last fired event (or wherever
// it already was), so a caller may still schedule events at any instant >= the
// last fired one — which is exactly what the sharded coordinator's cross-shard
// injection needs at an epoch barrier.
//
// The exclusive boundary is deliberate and load-bearing: an epoch [T, T+L)
// must not execute events at exactly T+L, because a cross-shard message sent
// inside the epoch can arrive at exactly T+L (lookahead L is the minimum
// cross-shard latency, and the minimum is attained). RunUntil's inclusive
// horizon would fire the boundary instant's local events before that message
// could be injected, breaking the sequential-equivalence guarantee. See
// TestRunBoundarySemantics for the pinned contract.
func (k *Kernel) RunBefore(horizon time.Duration) error {
	for {
		headAt, ok := k.q.PeekTime()
		if !ok || headAt >= horizon {
			return nil
		}
		if k.executed >= k.maxEvents {
			return fmt.Errorf("%w (%d events, now %v)", ErrEventLimit, k.executed, k.now)
		}
		k.Step()
	}
}

// AdvanceTo moves the clock forward to at without firing anything. It panics
// if an event earlier than at is pending (advancing past it would corrupt the
// causal order) or if at precedes the current clock. The sharded coordinator
// uses it to align every shard's clock at a barrier instant so that
// subsequent relative scheduling (flap pulses, fault plans) sees one
// consistent "now" across shards.
func (k *Kernel) AdvanceTo(at time.Duration) {
	if at < k.now {
		panic(fmt.Sprintf("sim: advance to %v before now %v", at, k.now))
	}
	if headAt, ok := k.q.PeekTime(); ok && headAt < at {
		panic(fmt.Sprintf("sim: advance to %v past pending event at %v", at, headAt))
	}
	k.now = at
}

// interrupted builds the typed stop error for a tripped context.
func (k *Kernel) interrupted(ctx context.Context) error {
	return fmt.Errorf("%w at %v (%d events): %w", ErrInterrupted, k.now, k.executed, context.Cause(ctx))
}

// RunContext is Run with a cooperative stop: the kernel polls ctx every
// StopCheckInterval events (and once on entry) and returns ErrInterrupted —
// wrapping the context's cause — when it has tripped. The kernel stays valid
// and resumable after an interrupt: the clock, queue and RNG are exactly as
// the last fired event left them, so a caller may inspect partial state or
// continue with a fresh context. An un-tripped ctx leaves the event sequence
// byte-identical to Run: the poll reads the context but never touches kernel
// state.
func (k *Kernel) RunContext(ctx context.Context) error {
	next := k.executed // poll on entry, then every StopCheckInterval events
	for k.q.Len() > 0 {
		if k.executed >= k.maxEvents {
			return fmt.Errorf("%w (%d events, now %v)", ErrEventLimit, k.executed, k.now)
		}
		if k.executed >= next {
			if err := ctx.Err(); err != nil {
				return k.interrupted(ctx)
			}
			next = k.executed + StopCheckInterval
		}
		k.Step()
	}
	return nil
}

// RunUntilContext is RunUntil with the same cooperative stop as RunContext.
// On interrupt the clock is left at the last fired event's time, not advanced
// to the horizon.
func (k *Kernel) RunUntilContext(ctx context.Context, horizon time.Duration) error {
	next := k.executed
	for {
		headAt, ok := k.q.PeekTime()
		if !ok || headAt > horizon {
			break
		}
		if k.executed >= k.maxEvents {
			return fmt.Errorf("%w (%d events, now %v)", ErrEventLimit, k.executed, k.now)
		}
		if k.executed >= next {
			if err := ctx.Err(); err != nil {
				return k.interrupted(ctx)
			}
			next = k.executed + StopCheckInterval
		}
		k.Step()
	}
	if horizon > k.now {
		k.now = horizon
	}
	return nil
}
