package sim_test

import (
	"testing"
	"time"

	"rfd/sim"
)

func TestNextEventTime(t *testing.T) {
	k := sim.NewKernel()
	if _, ok := k.NextEventTime(); ok {
		t.Fatal("empty kernel reports a next event")
	}
	k.At(5*time.Second, "b", func() {})
	k.At(2*time.Second, "a", func() {})
	if at, ok := k.NextEventTime(); !ok || at != 2*time.Second {
		t.Fatalf("NextEventTime = %v, %v; want 2s, true", at, ok)
	}
	k.Step()
	if at, ok := k.NextEventTime(); !ok || at != 5*time.Second {
		t.Fatalf("NextEventTime after step = %v, %v; want 5s, true", at, ok)
	}
	k.Step()
	if _, ok := k.NextEventTime(); ok {
		t.Fatal("drained kernel reports a next event")
	}
}

func TestTraceGetter(t *testing.T) {
	k := sim.NewKernel()
	if k.Trace() != nil {
		t.Fatal("fresh kernel has a trace observer")
	}
	calls := 0
	fn := func(time.Duration, string) { calls++ }
	k.SetTrace(fn)
	if k.Trace() == nil {
		t.Fatal("Trace does not return the installed observer")
	}
	// The returned observer is the live one: calling it and firing an event
	// hit the same counter.
	k.Trace()(0, "manual")
	k.At(time.Second, "e", func() {})
	k.Run()
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
}
