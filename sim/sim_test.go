package sim

import (
	"errors"
	"testing"
	"time"
)

func TestRunEmptyKernel(t *testing.T) {
	k := NewKernel()
	if err := k.Run(); err != nil {
		t.Fatalf("Run on empty kernel: %v", err)
	}
	if k.Now() != 0 {
		t.Fatalf("Now = %v, want 0", k.Now())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	k := NewKernel()
	var order []string
	k.At(3*time.Second, "c", func() { order = append(order, "c") })
	k.At(1*time.Second, "a", func() { order = append(order, "a") })
	k.At(2*time.Second, "b", func() { order = append(order, "b") })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := len(order); got != 3 {
		t.Fatalf("fired %d events, want 3", got)
	}
	if order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
	if k.Now() != 3*time.Second {
		t.Fatalf("Now = %v, want 3s", k.Now())
	}
}

func TestEqualTimesFireInScheduleOrder(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 20; i++ {
		i := i
		k.At(time.Second, "e", func() { order = append(order, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events fired out of schedule order: %v", order)
		}
	}
}

func TestClockAdvancesDuringCallback(t *testing.T) {
	k := NewKernel()
	var seen time.Duration
	k.After(5*time.Second, "probe", func() { seen = k.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if seen != 5*time.Second {
		t.Fatalf("Now inside callback = %v, want 5s", seen)
	}
}

func TestCallbackMaySchedule(t *testing.T) {
	k := NewKernel()
	var times []time.Duration
	k.After(time.Second, "first", func() {
		times = append(times, k.Now())
		k.After(time.Second, "second", func() {
			times = append(times, k.Now())
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 || times[0] != time.Second || times[1] != 2*time.Second {
		t.Fatalf("times = %v", times)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	k := NewKernel()
	k.After(10*time.Second, "later", func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(time.Second, "past", func() {})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil callback did not panic")
		}
	}()
	NewKernel().At(time.Second, "bad", nil)
}

func TestTimerCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	timer := k.After(time.Second, "x", func() { fired = true })
	if !timer.Active() {
		t.Fatal("fresh timer not active")
	}
	if !timer.Cancel() {
		t.Fatal("Cancel returned false")
	}
	if timer.Active() {
		t.Fatal("cancelled timer still active")
	}
	if timer.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestZeroTimerSafe(t *testing.T) {
	var timer Timer
	if timer.Active() {
		t.Fatal("zero timer active")
	}
	if timer.Cancel() {
		t.Fatal("zero timer cancel returned true")
	}
	if timer.Reschedule(time.Second) {
		t.Fatal("zero timer reschedule returned true")
	}
	if timer.When() != Never {
		t.Fatalf("zero timer When = %v, want Never", timer.When())
	}
}

// TestTimerWhenSentinel pins the Never sentinel: When must not report the
// stale schedule time once a timer has fired or been cancelled, even after
// the kernel reuses the underlying queue slot for a later event.
func TestTimerWhenSentinel(t *testing.T) {
	k := NewKernel()
	fired := k.After(time.Second, "fires", func() {})
	if fired.When() != time.Second {
		t.Fatalf("pending When = %v, want 1s", fired.When())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := fired.When(); got != Never {
		t.Fatalf("fired timer When = %v, want Never", got)
	}

	cancelled := k.After(time.Second, "cancelled", func() {})
	cancelled.Cancel()
	if got := cancelled.When(); got != Never {
		t.Fatalf("cancelled timer When = %v, want Never", got)
	}

	// Reuse the freed slot: the stale handle must keep reporting Never, not
	// the new occupant's time.
	replacement := k.After(5*time.Second, "replacement", func() {})
	if got := cancelled.When(); got != Never {
		t.Fatalf("stale timer When after slot reuse = %v, want Never", got)
	}
	if replacement.When() != k.Now()+5*time.Second {
		t.Fatalf("replacement When = %v", replacement.When())
	}
}

func TestTimerReschedule(t *testing.T) {
	k := NewKernel()
	var at time.Duration
	timer := k.After(time.Second, "x", func() { at = k.Now() })
	if !timer.Reschedule(7 * time.Second) {
		t.Fatal("Reschedule returned false")
	}
	if timer.When() != 7*time.Second {
		t.Fatalf("When = %v, want 7s", timer.When())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 7*time.Second {
		t.Fatalf("fired at %v, want 7s", at)
	}
}

func TestTimerRescheduleIntoPastPanics(t *testing.T) {
	k := NewKernel()
	timer := k.After(30*time.Second, "victim", func() {})
	k.After(10*time.Second, "attacker", func() {
		defer func() {
			if recover() == nil {
				t.Error("reschedule into the past did not panic")
			}
		}()
		timer.Reschedule(time.Second)
	})
	_ = k.Run()
}

func TestTimerFiredCannotReschedule(t *testing.T) {
	k := NewKernel()
	timer := k.After(time.Second, "x", func() {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if timer.Reschedule(10 * time.Second) {
		t.Fatal("Reschedule of fired timer returned true")
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	k := NewKernel()
	var fired []string
	k.At(time.Second, "a", func() { fired = append(fired, "a") })
	k.At(5*time.Second, "b", func() { fired = append(fired, "b") })
	if err := k.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != "a" {
		t.Fatalf("fired = %v, want [a]", fired)
	}
	if k.Now() != 2*time.Second {
		t.Fatalf("Now = %v, want horizon 2s", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", k.Pending())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired = %v after full run", fired)
	}
}

func TestRunUntilInclusiveOfHorizon(t *testing.T) {
	k := NewKernel()
	fired := false
	k.At(2*time.Second, "edge", func() { fired = true })
	if err := k.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("event exactly at horizon did not fire")
	}
}

func TestEventLimit(t *testing.T) {
	k := NewKernel(WithMaxEvents(100))
	var rearm func()
	rearm = func() { k.After(time.Millisecond, "loop", rearm) }
	k.After(time.Millisecond, "loop", rearm)
	err := k.Run()
	if !errors.Is(err, ErrEventLimit) {
		t.Fatalf("err = %v, want ErrEventLimit", err)
	}
	if k.Executed() != 100 {
		t.Fatalf("Executed = %d, want 100", k.Executed())
	}
}

func TestEventLimitRunUntil(t *testing.T) {
	k := NewKernel(WithMaxEvents(10))
	var rearm func()
	rearm = func() { k.After(time.Millisecond, "loop", rearm) }
	k.After(time.Millisecond, "loop", rearm)
	if err := k.RunUntil(time.Hour); !errors.Is(err, ErrEventLimit) {
		t.Fatalf("err = %v, want ErrEventLimit", err)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []time.Duration {
		k := NewKernel(WithSeed(42))
		var fires []time.Duration
		var step func()
		step = func() {
			fires = append(fires, k.Now())
			if len(fires) < 50 {
				k.After(time.Duration(k.Rand().Intn(1000))*time.Millisecond, "step", step)
			}
		}
		k.After(0, "step", step)
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return fires
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at event %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTrace(t *testing.T) {
	k := NewKernel()
	var names []string
	k.SetTrace(func(_ time.Duration, name string) { names = append(names, name) })
	k.At(time.Second, "one", func() {})
	k.At(2*time.Second, "two", func() {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "one" || names[1] != "two" {
		t.Fatalf("trace = %v", names)
	}
}

func TestExecutedCount(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 7; i++ {
		k.After(time.Duration(i)*time.Second, "e", func() {})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Executed() != 7 {
		t.Fatalf("Executed = %d, want 7", k.Executed())
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	k := NewKernel()
	if k.Step() {
		t.Fatal("Step on empty kernel returned true")
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := NewKernel()
		n := 0
		var step func()
		step = func() {
			n++
			if n < 1000 {
				k.After(time.Millisecond, "step", step)
			}
		}
		k.After(0, "step", step)
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
