package sim

import (
	"testing"
	"time"
)

func TestRunUntilRepeatedAdvancesClock(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.At(10*time.Second, "e", func() { fired++ })
	for horizon := time.Second; horizon <= 9*time.Second; horizon += time.Second {
		if err := k.RunUntil(horizon); err != nil {
			t.Fatal(err)
		}
		if k.Now() != horizon {
			t.Fatalf("Now = %v, want %v", k.Now(), horizon)
		}
		if fired != 0 {
			t.Fatal("event fired early")
		}
	}
	if err := k.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatal("event did not fire at horizon")
	}
}

func TestRunUntilDoesNotRewindClock(t *testing.T) {
	k := NewKernel()
	k.At(10*time.Second, "e", func() {})
	if err := k.RunUntil(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := k.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 20*time.Second {
		t.Fatalf("clock rewound to %v", k.Now())
	}
}

func TestRescheduleDuringCallback(t *testing.T) {
	k := NewKernel()
	var order []string
	var b Timer
	k.At(time.Second, "a", func() {
		order = append(order, "a")
		// Push b from 2s out to 5s.
		if !b.Reschedule(5 * time.Second) {
			t.Error("reschedule failed")
		}
		k.At(3*time.Second, "c", func() { order = append(order, "c") })
	})
	b = k.At(2*time.Second, "b", func() { order = append(order, "b") })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "c", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestCancelDuringCallback(t *testing.T) {
	k := NewKernel()
	fired := false
	var victim Timer
	k.At(time.Second, "killer", func() { victim.Cancel() })
	victim = k.At(2*time.Second, "victim", func() { fired = true })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled-during-run timer fired")
	}
}

func TestManySimultaneousTimersDeterministic(t *testing.T) {
	run := func() []int {
		k := NewKernel(WithSeed(5))
		var order []int
		for i := 0; i < 100; i++ {
			i := i
			// All at the same instant plus random later re-arms.
			k.At(time.Second, "e", func() {
				order = append(order, i)
				if i%10 == 0 {
					k.After(time.Duration(k.Rand().Intn(100))*time.Millisecond, "re", func() {
						order = append(order, -i)
					})
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d", i)
		}
	}
}

func TestPendingCount(t *testing.T) {
	k := NewKernel()
	timers := make([]Timer, 5)
	for i := range timers {
		timers[i] = k.After(time.Duration(i+1)*time.Second, "e", func() {})
	}
	if k.Pending() != 5 {
		t.Fatalf("Pending = %d", k.Pending())
	}
	timers[2].Cancel()
	if k.Pending() != 4 {
		t.Fatalf("Pending after cancel = %d", k.Pending())
	}
	if err := k.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if k.Pending() != 2 {
		t.Fatalf("Pending after partial run = %d", k.Pending())
	}
}

// countingHandler records typed-event deliveries for the handler tests.
type countingHandler struct {
	k    *Kernel
	args []uint64
	at   []time.Duration
}

func (h *countingHandler) HandleEvent(arg uint64) {
	h.args = append(h.args, arg)
	h.at = append(h.at, h.k.Now())
}

func TestHandlerEvents(t *testing.T) {
	k := NewKernel()
	h := &countingHandler{k: k}
	var names []string
	k.SetTrace(func(_ time.Duration, name string) { names = append(names, name) })
	k.AtHandler(2*time.Second, "typed.b", h, 2)
	k.AtHandler(1*time.Second, "typed.a", h, 1)
	closureFired := false
	k.After(1500*time.Millisecond, "closure", func() { closureFired = true })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(h.args) != 2 || h.args[0] != 1 || h.args[1] != 2 {
		t.Fatalf("handler args = %v", h.args)
	}
	if h.at[0] != time.Second || h.at[1] != 2*time.Second {
		t.Fatalf("handler times = %v", h.at)
	}
	if !closureFired {
		t.Fatal("closure event interleaved with handlers did not fire")
	}
	want := []string{"typed.a", "closure", "typed.b"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("trace = %v, want %v", names, want)
		}
	}
}

func TestHandlerTimerCancel(t *testing.T) {
	k := NewKernel()
	h := &countingHandler{k: k}
	tm := k.AfterHandler(time.Second, "typed", h, 7)
	if !tm.Active() {
		t.Fatal("fresh handler timer not active")
	}
	if !tm.Cancel() {
		t.Fatal("Cancel returned false")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(h.args) != 0 {
		t.Fatal("cancelled handler event fired")
	}
}

func TestNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil handler did not panic")
		}
	}()
	NewKernel().AtHandler(time.Second, "bad", nil, 0)
}

// TestHandlerScheduleDoesNotAllocate pins the hot-path guarantee: once the
// queue slab has warmed up, scheduling and firing typed events is
// allocation-free.
func TestHandlerScheduleDoesNotAllocate(t *testing.T) {
	k := NewKernel()
	h := &countingHandler{k: k}
	for i := 0; i < 64; i++ {
		k.AfterHandler(time.Duration(i)*time.Millisecond, "warm", h, 0)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	h.args = h.args[:0]
	h.at = h.at[:0]
	allocs := testing.AllocsPerRun(1000, func() {
		k.AfterHandler(time.Millisecond, "steady", h, 1)
		k.Step()
		h.args = h.args[:0]
		h.at = h.at[:0]
	})
	if allocs != 0 {
		t.Fatalf("steady-state handler schedule allocates %.1f per op, want 0", allocs)
	}
}

func TestTimerWhenReflectsReschedule(t *testing.T) {
	k := NewKernel()
	tm := k.After(time.Second, "e", func() {})
	if tm.When() != time.Second {
		t.Fatalf("When = %v", tm.When())
	}
	tm.Reschedule(9 * time.Second)
	if tm.When() != 9*time.Second {
		t.Fatalf("When after reschedule = %v", tm.When())
	}
}
