package sim

import (
	"testing"
	"time"
)

func TestRunUntilRepeatedAdvancesClock(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.At(10*time.Second, "e", func() { fired++ })
	for horizon := time.Second; horizon <= 9*time.Second; horizon += time.Second {
		if err := k.RunUntil(horizon); err != nil {
			t.Fatal(err)
		}
		if k.Now() != horizon {
			t.Fatalf("Now = %v, want %v", k.Now(), horizon)
		}
		if fired != 0 {
			t.Fatal("event fired early")
		}
	}
	if err := k.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatal("event did not fire at horizon")
	}
}

func TestRunUntilDoesNotRewindClock(t *testing.T) {
	k := NewKernel()
	k.At(10*time.Second, "e", func() {})
	if err := k.RunUntil(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := k.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 20*time.Second {
		t.Fatalf("clock rewound to %v", k.Now())
	}
}

func TestRescheduleDuringCallback(t *testing.T) {
	k := NewKernel()
	var order []string
	var b *Timer
	k.At(time.Second, "a", func() {
		order = append(order, "a")
		// Push b from 2s out to 5s.
		if !b.Reschedule(5 * time.Second) {
			t.Error("reschedule failed")
		}
		k.At(3*time.Second, "c", func() { order = append(order, "c") })
	})
	b = k.At(2*time.Second, "b", func() { order = append(order, "b") })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "c", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestCancelDuringCallback(t *testing.T) {
	k := NewKernel()
	fired := false
	var victim *Timer
	k.At(time.Second, "killer", func() { victim.Cancel() })
	victim = k.At(2*time.Second, "victim", func() { fired = true })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled-during-run timer fired")
	}
}

func TestManySimultaneousTimersDeterministic(t *testing.T) {
	run := func() []int {
		k := NewKernel(WithSeed(5))
		var order []int
		for i := 0; i < 100; i++ {
			i := i
			// All at the same instant plus random later re-arms.
			k.At(time.Second, "e", func() {
				order = append(order, i)
				if i%10 == 0 {
					k.After(time.Duration(k.Rand().Intn(100))*time.Millisecond, "re", func() {
						order = append(order, -i)
					})
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d", i)
		}
	}
}

func TestPendingCount(t *testing.T) {
	k := NewKernel()
	timers := make([]*Timer, 5)
	for i := range timers {
		timers[i] = k.After(time.Duration(i+1)*time.Second, "e", func() {})
	}
	if k.Pending() != 5 {
		t.Fatalf("Pending = %d", k.Pending())
	}
	timers[2].Cancel()
	if k.Pending() != 4 {
		t.Fatalf("Pending after cancel = %d", k.Pending())
	}
	if err := k.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if k.Pending() != 2 {
		t.Fatalf("Pending after partial run = %d", k.Pending())
	}
}

func TestTimerWhenReflectsReschedule(t *testing.T) {
	k := NewKernel()
	tm := k.After(time.Second, "e", func() {})
	if tm.When() != time.Second {
		t.Fatalf("When = %v", tm.When())
	}
	tm.Reschedule(9 * time.Second)
	if tm.When() != 9*time.Second {
		t.Fatalf("When after reschedule = %v", tm.When())
	}
}
