package sim

import "time"

// Snapshot/fork for sharded execution. A ShardGroup's mutable state is the
// per-shard kernels plus the coordinator bookkeeping (execution stats and the
// per-shard executed counts used to attribute events to epochs); the epoch
// structure itself is derived — the next epoch start is recomputed from the
// kernel queues and the exchanger at every barrier, so capturing the kernels
// at a barrier captures the whole schedule. Exchanger contents are the
// caller's state, not the group's: snapshot/fork require empty outboxes
// (callers such as bgp.ShardedNetwork enforce this) and the caller supplies
// the fork's exchanger, already bound to the forked components.

// GroupSnapshot is a checkpoint of a ShardGroup taken at an epoch barrier:
// one kernel Snapshot per shard plus the lookahead bound and the accumulated
// execution stats. It is immutable once taken; NewGroup materializes any
// number of independent groups from it.
type GroupSnapshot struct {
	kernels   []*Snapshot
	lookahead time.Duration
	stats     ShardStats
}

// NumShards returns the shard count captured in the snapshot.
func (s *GroupSnapshot) NumShards() int { return len(s.kernels) }

// Shard returns the kernel snapshot for shard i.
func (s *GroupSnapshot) Shard(i int) *Snapshot { return s.kernels[i] }

// Snapshot captures the group's current state. Call only with the group
// parked (between Run/RunUntil calls, i.e. at a barrier); the group is
// unaffected and may continue running. Worker goroutines are not part of the
// captured state — a group restored from the snapshot spins up its own pool
// lazily on first use.
func (g *ShardGroup) Snapshot() *GroupSnapshot {
	s := &GroupSnapshot{
		kernels:   make([]*Snapshot, len(g.kernels)),
		lookahead: g.lookahead,
		stats:     g.Stats(),
	}
	for i, k := range g.kernels {
		s.kernels[i] = k.Snapshot()
	}
	return s
}

// NewGroup materializes a fresh, independent group from the snapshot, driving
// fresh kernels bound to the caller's exchanger (which must already route to
// the components the new kernels will run — for the BGP engine, the forked
// ensemble's outboxes). Stats resume from the captured values, so a restored
// group reports the same cumulative profile a never-snapshotted run would.
//
// Pending handler events in the new kernels still reference the original
// components until the caller rebinds them with Kernel.RemapHandlers — the
// same contract as Kernel.Fork.
func (s *GroupSnapshot) NewGroup(ex Exchanger, opts ...GroupOption) (*ShardGroup, error) {
	kernels := make([]*Kernel, len(s.kernels))
	for i, ks := range s.kernels {
		kernels[i] = ks.NewKernel()
	}
	return newGroupFrom(s.lookahead, kernels, ex, s.stats, opts...)
}

// Fork returns an independent copy of the group at its current barrier state,
// equivalent to g.Snapshot() followed by NewGroup but with a single copy per
// kernel. The fork shares no mutable state with the original; the caller
// supplies the exchanger and must remap pending handler events per kernel
// (see GroupSnapshot.NewGroup). The original group is untouched and its
// worker pool, if started, keeps running. Safe to call concurrently on the
// same parked receiver — forking only reads.
func (g *ShardGroup) Fork(ex Exchanger, opts ...GroupOption) (*ShardGroup, error) {
	kernels := make([]*Kernel, len(g.kernels))
	for i, k := range g.kernels {
		kernels[i] = k.Fork()
	}
	return newGroupFrom(g.lookahead, kernels, ex, g.Stats(), opts...)
}

// newGroupFrom builds a group over pre-positioned kernels and seeds its stats
// with a captured profile (Stats() already deep-copied EventsPerShard).
func newGroupFrom(lookahead time.Duration, kernels []*Kernel, ex Exchanger, stats ShardStats, opts ...GroupOption) (*ShardGroup, error) {
	g, err := NewShardGroup(lookahead, kernels, ex, opts...)
	if err != nil {
		return nil, err
	}
	g.stats = stats
	if g.stats.EventsPerShard == nil {
		g.stats.EventsPerShard = make([]uint64, len(kernels))
	}
	return g, nil
}
