package sim

import (
	"errors"
	"time"

	"rfd/internal/eventq"
	"rfd/internal/xrand"
)

// ErrClosureEvent is returned by RemapHandlers (and therefore by anything
// forking a kernel with pending closure events, such as bgp.Network.Snapshot)
// when the queue holds an event scheduled with At/After. Closures capture
// arbitrary state the kernel cannot rewrite, so a fork taken while one is
// pending would silently keep mutating the original simulation. Schedule
// closure-based work (fault plans, orchestration) after forking instead.
var ErrClosureEvent = errors.New("sim: pending closure event cannot be remapped across a fork")

// Snapshot is a checkpoint of a kernel: the full event queue (typed handler
// events and timers, with slot indices and generations preserved so
// outstanding Timer handles resolve identically in a restored or forked
// kernel), the virtual clock, the RNG stream position and the executed-event
// count. A Snapshot is immutable once taken; NewKernel materializes any
// number of independent kernels from it, and Restore rewinds a kernel to it
// in place. Trace observers are deliberately not captured — they are
// measurement apparatus, not simulation state.
type Snapshot struct {
	q         *eventq.Queue[event]
	now       time.Duration
	rng       [4]uint64
	executed  uint64
	maxEvents uint64
}

// Now returns the virtual time the snapshot was taken at.
func (s *Snapshot) Now() time.Duration { return s.now }

// Pending returns the number of scheduled events captured in the snapshot.
func (s *Snapshot) Pending() int { return s.q.Len() }

// Snapshot captures the kernel's current state. The kernel is unaffected and
// may continue running; the snapshot does not alias its queue.
func (k *Kernel) Snapshot() *Snapshot {
	return &Snapshot{
		q:         k.q.Clone(),
		now:       k.now,
		rng:       k.rng.State(),
		executed:  k.executed,
		maxEvents: k.maxEvents,
	}
}

// Restore rewinds the kernel to a previously taken snapshot: queue, clock,
// RNG position and executed count all return to their captured values. The
// kernel's RNG keeps its identity (components holding the *xrand.Rand from
// Rand() see the restored stream), and Timer handles that were valid at
// snapshot time become valid again. The trace observer is left as is.
func (k *Kernel) Restore(s *Snapshot) {
	k.q = *s.q.Clone()
	k.now = s.now
	k.rng.SetState(s.rng)
	k.executed = s.executed
	k.maxEvents = s.maxEvents
}

// NewKernel materializes a fresh, independent kernel from the snapshot. The
// snapshot may be used any number of times; every kernel it produces starts
// from the identical state and, given identical subsequent scheduling,
// produces the identical event sequence. No trace observer is installed.
func (s *Snapshot) NewKernel() *Kernel {
	return &Kernel{
		q:         *s.q.Clone(),
		now:       s.now,
		rng:       xrand.FromState(s.rng),
		executed:  s.executed,
		maxEvents: s.maxEvents,
	}
}

// Fork returns an independent copy of the kernel at its current state,
// equivalent to s := k.Snapshot(); s.NewKernel() but with a single copy.
// The fork shares no mutable state with the original; pending handler events
// still reference the original's Handler values until RemapHandlers rebinds
// them. No trace observer is installed on the fork.
func (k *Kernel) Fork() *Kernel {
	return &Kernel{
		q:         *k.q.Clone(),
		now:       k.now,
		rng:       xrand.FromState(k.rng.State()),
		executed:  k.executed,
		maxEvents: k.maxEvents,
	}
}

// RemapHandlers rewrites the Handler of every pending typed event through f,
// which must return the replacement handler (typically the corresponding
// field of a forked component). It is the second half of forking a kernel
// whose pending events point into component state: Fork copies the queue,
// RemapHandlers rebinds it. The packed args are preserved. It returns
// ErrClosureEvent if any pending event was scheduled with At/After, since a
// closure cannot be rebound; f itself is not called for such events.
func (k *Kernel) RemapHandlers(f func(Handler) Handler) error {
	var err error
	k.q.ForEach(func(_ time.Duration, ev *event) {
		if err != nil {
			return
		}
		if ev.h == nil {
			err = ErrClosureEvent
			return
		}
		ev.h = f(ev.h)
		if ev.h == nil {
			err = errors.New("sim: RemapHandlers returned nil handler for " + ev.name)
		}
	})
	return err
}

// Adopt rebinds a Timer taken out against another kernel to this one. Because
// queue clones preserve slot indices and generations, a Timer captured before
// a Snapshot/Fork refers to the same logical entry in the copy; Adopt makes
// the handle operate on the copy instead of the original. The zero Timer
// adopts to the zero Timer.
func (k *Kernel) Adopt(t Timer) Timer {
	if t.k == nil {
		return Timer{}
	}
	return Timer{k: k, h: t.h}
}
