package sim_test

import (
	"fmt"
	"time"

	"rfd/sim"
)

// Example schedules a few events and a cancelled timer on a kernel and
// drains it: events fire in virtual-time order with no wall-clock coupling.
func Example() {
	k := sim.NewKernel(sim.WithSeed(7))
	k.After(2*time.Second, "world", func() {
		fmt.Println(k.Now(), "world")
	})
	k.After(time.Second, "hello", func() {
		fmt.Println(k.Now(), "hello")
	})
	doomed := k.After(3*time.Second, "never", func() {
		fmt.Println("never printed")
	})
	doomed.Cancel()
	if err := k.Run(); err != nil {
		fmt.Println("error:", err)
	}
	fmt.Println("executed:", k.Executed())
	// Output:
	// 1s hello
	// 2s world
	// executed: 2
}
