package sim

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestRunBoundarySemantics pins the inclusive/exclusive horizon contract that
// the epoch barrier depends on: RunUntil(h) fires events at exactly h and
// advances the clock to h; RunBefore(h) leaves events at exactly h pending
// and leaves the clock at the last fired event. An event scheduled exactly at
// an epoch boundary must therefore survive RunBefore and fire in the next
// epoch, after cross-shard injection.
func TestRunBoundarySemantics(t *testing.T) {
	const h = 100 * time.Millisecond
	runUntil := func(k *Kernel) error { return k.RunUntil(h) }
	runBefore := func(k *Kernel) error { return k.RunBefore(h) }
	cases := []struct {
		name        string
		eventAt     time.Duration
		run         func(k *Kernel) error
		wantFired   bool
		wantPending int
		wantNow     time.Duration
	}{
		{"RunUntil fires before-horizon event", h - time.Nanosecond, runUntil, true, 0, h},
		{"RunUntil fires at-horizon event", h, runUntil, true, 0, h},
		{"RunUntil leaves after-horizon event", h + time.Nanosecond, runUntil, false, 1, h},
		{"RunBefore fires before-horizon event", h - time.Nanosecond, runBefore, true, 0, h - time.Nanosecond},
		{"RunBefore leaves at-horizon event", h, runBefore, false, 1, 0},
		{"RunBefore leaves after-horizon event", h + time.Nanosecond, runBefore, false, 1, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := NewKernel()
			fired := false
			k.At(tc.eventAt, "boundary", func() { fired = true })
			if err := tc.run(k); err != nil {
				t.Fatalf("run: %v", err)
			}
			if fired != tc.wantFired {
				t.Errorf("fired = %v, want %v", fired, tc.wantFired)
			}
			if got := k.Pending(); got != tc.wantPending {
				t.Errorf("pending = %d, want %d", got, tc.wantPending)
			}
			if got := k.Now(); got != tc.wantNow {
				t.Errorf("now = %v, want %v", got, tc.wantNow)
			}
		})
	}
}

// After RunBefore leaves the clock behind the horizon, the caller must still
// be able to schedule at the boundary instant — that is the whole point of
// the exclusive bound (cross-shard injection at the barrier).
func TestRunBeforeAllowsSchedulingAtHorizon(t *testing.T) {
	const h = 50 * time.Millisecond
	k := NewKernel()
	k.At(h-time.Millisecond, "early", func() {})
	if err := k.RunBefore(h); err != nil {
		t.Fatal(err)
	}
	fired := false
	k.At(h, "injected", func() { fired = true }) // must not panic
	if err := k.RunUntil(h); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("injected boundary event did not fire")
	}
}

func TestAdvanceTo(t *testing.T) {
	k := NewKernel()
	k.AdvanceTo(10 * time.Millisecond)
	if got := k.Now(); got != 10*time.Millisecond {
		t.Fatalf("now = %v, want 10ms", got)
	}
	t.Run("panics past pending event", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		k.At(15*time.Millisecond, "pending", func() {})
		k.AdvanceTo(20 * time.Millisecond)
	})
	t.Run("panics going backwards", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		k.AdvanceTo(5 * time.Millisecond)
	})
}

// chanExchanger is a test Exchanger wiring two kernels: messages sent from
// one shard are buffered and injected as events on the other at Flush.
type chanExchanger struct {
	mu      sync.Mutex
	kernels []*Kernel
	pending []injected
}

type injected struct {
	at    time.Duration
	shard int
	fn    func()
}

func (e *chanExchanger) send(at time.Duration, shard int, fn func()) {
	e.mu.Lock()
	e.pending = append(e.pending, injected{at, shard, fn})
	e.mu.Unlock()
}

func (e *chanExchanger) Flush() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := len(e.pending)
	for _, m := range e.pending {
		e.kernels[m.shard].At(m.at, "injected", m.fn)
	}
	e.pending = e.pending[:0]
	return n
}

func (e *chanExchanger) Pending() (time.Duration, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var min time.Duration
	ok := false
	for _, m := range e.pending {
		if !ok || m.at < min {
			min, ok = m.at, true
		}
	}
	return min, ok
}

// pingPong builds a two-shard group where each shard bounces a message to the
// other with latency exactly equal to the lookahead (the hardest legal case:
// arrivals land exactly on epoch boundaries).
func pingPong(t *testing.T, rounds int, opts ...GroupOption) (*ShardGroup, *[]time.Duration) {
	t.Helper()
	const L = 10 * time.Millisecond
	k0, k1 := NewKernel(), NewKernel()
	ks := []*Kernel{k0, k1}
	ex := &chanExchanger{kernels: ks}
	log := &[]time.Duration{}
	var bounce func(shard, hops int) func()
	bounce = func(shard, hops int) func() {
		return func() {
			*log = append(*log, ks[shard].Now())
			if hops <= 0 {
				return
			}
			next := 1 - shard
			ex.send(ks[shard].Now()+L, next, bounce(next, hops-1))
		}
	}
	k0.At(0, "start", bounce(0, rounds))
	g, err := NewShardGroup(L, ks, ex, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g, log
}

func TestShardGroupPingPongRun(t *testing.T) {
	for _, mode := range []struct {
		name string
		opts []GroupOption
	}{
		{"parallel", nil},
		{"sequential", []GroupOption{WithSequentialGroup()}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			g, log := pingPong(t, 5, mode.opts...)
			if err := g.Run(); err != nil {
				t.Fatal(err)
			}
			want := []time.Duration{0, 10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond, 40 * time.Millisecond, 50 * time.Millisecond}
			if len(*log) != len(want) {
				t.Fatalf("fired %d events, want %d: %v", len(*log), len(want), *log)
			}
			for i, at := range want {
				if (*log)[i] != at {
					t.Fatalf("event %d at %v, want %v", i, (*log)[i], at)
				}
			}
			st := g.Stats()
			if st.Injected != 5 {
				t.Errorf("injected = %d, want 5", st.Injected)
			}
			if st.TotalEvents != 6 {
				t.Errorf("total events = %d, want 6", st.TotalEvents)
			}
			if g.Now() != 50*time.Millisecond {
				t.Errorf("now = %v, want 50ms", g.Now())
			}
		})
	}
}

func TestShardGroupRunUntilStopsAtHorizon(t *testing.T) {
	g, log := pingPong(t, 10)
	if err := g.RunUntil(25 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Bounces at 0, 10, 20 ms fired; 30 ms+ still pending.
	if len(*log) != 3 {
		t.Fatalf("fired %d events, want 3: %v", len(*log), *log)
	}
	for _, k := range g.Kernels() {
		if k.Now() != 25*time.Millisecond {
			t.Fatalf("shard clock %v, want 25ms", k.Now())
		}
	}
	// Resume to completion: remaining bounces fire at 30..100 ms.
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*log) != 11 {
		t.Fatalf("fired %d events after drain, want 11", len(*log))
	}
	if g.Now() != 100*time.Millisecond {
		t.Fatalf("now = %v, want 100ms", g.Now())
	}
}

// An arrival exactly at a RunUntil horizon must fire in that call, matching
// Kernel.RunUntil's inclusive boundary.
func TestShardGroupRunUntilInclusiveBoundary(t *testing.T) {
	g, log := pingPong(t, 10)
	if err := g.RunUntil(30 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(*log) != 4 {
		t.Fatalf("fired %d events, want 4 (0,10,20,30ms): %v", len(*log), *log)
	}
}

func TestShardGroupStats(t *testing.T) {
	g, _ := pingPong(t, 7)
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Epochs == 0 {
		t.Fatal("no epochs recorded")
	}
	if st.TotalEvents != 8 {
		t.Fatalf("total = %d, want 8", st.TotalEvents)
	}
	var perShard uint64
	for _, n := range st.EventsPerShard {
		perShard += n
	}
	if perShard != st.TotalEvents {
		t.Fatalf("per-shard sum %d != total %d", perShard, st.TotalEvents)
	}
	// Strictly serial workload: critical path equals total, parallelism 1.
	if st.CriticalPathEvents != st.TotalEvents {
		t.Fatalf("critical path %d, want %d on a serial workload", st.CriticalPathEvents, st.TotalEvents)
	}
	if p := st.Parallelism(); p != 1 {
		t.Fatalf("parallelism = %v, want 1", p)
	}
}

func TestShardGroupParallelismOnIndependentShards(t *testing.T) {
	// Two shards with identical independent workloads: every epoch runs both
	// in parallel, so the critical path is half the total.
	k0, k1 := NewKernel(), NewKernel()
	for i := 0; i < 10; i++ {
		at := time.Duration(i) * time.Millisecond
		k0.At(at, "w0", func() {})
		k1.At(at, "w1", func() {})
	}
	g, err := NewShardGroup(100*time.Millisecond, []*Kernel{k0, k1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.TotalEvents != 20 {
		t.Fatalf("total = %d, want 20", st.TotalEvents)
	}
	if p := st.Parallelism(); p != 2 {
		t.Fatalf("parallelism = %v, want 2", p)
	}
}

func TestShardGroupContextCancel(t *testing.T) {
	g, _ := pingPong(t, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := g.RunContext(ctx)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
}

func TestShardGroupRejectsZeroLookahead(t *testing.T) {
	if _, err := NewShardGroup(0, []*Kernel{NewKernel()}, nil); err == nil {
		t.Fatal("expected error for zero lookahead")
	}
	if _, err := NewShardGroup(time.Millisecond, nil, nil); err == nil {
		t.Fatal("expected error for no kernels")
	}
}

func TestShardGroupCloseIdempotent(t *testing.T) {
	g, _ := pingPong(t, 2)
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	g.Close()
	g.Close()
}
