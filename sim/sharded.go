// Sharded parallel event execution: a ShardGroup runs K kernels in lockstep
// epochs under conservative lookahead.
//
// The scheme is classic conservative parallel discrete-event simulation
// (Chandy–Misra–Bryant specialized to a barrier/epoch form). Every event is
// owned by exactly one shard; the only cross-shard interaction is message
// injection, and the model guarantees a minimum latency L (the lookahead)
// between the instant a cross-shard message is produced and the instant it
// must execute at its destination. Under that guarantee the group can run all
// shards independently over the epoch [T, T+L), where T is the earliest
// pending instant anywhere: no event executed in the epoch can cause another
// shard's event inside the same epoch. At the barrier the coordinator drains
// every shard's outbox, injects the collected events in a deterministic
// global order (time, source shard, source sequence), and opens the next
// epoch at the new earliest instant.
//
// Determinism: within an epoch a shard is an ordinary sequential kernel, and
// the barrier exchange is single-threaded with a total order on injected
// events, so a run is a pure function of the initial schedules, the seeds and
// the exchange contents — independent of goroutine scheduling. The worker
// goroutines exist only to overlap wall-clock work; disabling them
// (Sequential mode) produces byte-identical results.
package sim

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Exchanger moves cross-shard traffic at an epoch barrier. Implementations
// (bgp.ShardedNetwork) collect outbound events into per-shard outboxes while
// shards run, and inject them into the destination kernels when the
// coordinator calls Flush — which happens with every shard parked, so Flush
// may touch any kernel. Flush must inject in a deterministic order and
// returns the number of events moved.
//
// Pending reports the earliest event time waiting in an outbox, so the
// coordinator can pick the next epoch start even when every kernel queue is
// momentarily empty.
type Exchanger interface {
	Flush() int
	Pending() (time.Duration, bool)
}

// NopExchanger is the Exchanger for shard sets with no cross-shard edges
// (K=1 groups, or fully partitioned workloads in tests).
type NopExchanger struct{}

// Flush implements Exchanger.
func (NopExchanger) Flush() int { return 0 }

// Pending implements Exchanger.
func (NopExchanger) Pending() (time.Duration, bool) { return 0, false }

// ShardStats accumulates the group's execution profile. CriticalPathEvents
// sums, over epochs, the largest per-shard event count of that epoch — the
// number of sequential event slots an ideally parallel execution of this
// partition cannot go below. TotalEvents / CriticalPathEvents is therefore
// the partition's achievable parallelism on this workload, independent of the
// host's core count (the recorded benchmarks report it next to wall clock,
// which on a small host is bounded by GOMAXPROCS instead).
type ShardStats struct {
	// Epochs is the number of barrier-to-barrier rounds executed.
	Epochs uint64
	// TotalEvents is the sum of events executed across all shards.
	TotalEvents uint64
	// CriticalPathEvents is the sum over epochs of the per-epoch maximum
	// shard event count.
	CriticalPathEvents uint64
	// Injected is the number of cross-shard events moved at barriers.
	Injected uint64
	// EventsPerShard is the per-shard executed-event breakdown.
	EventsPerShard []uint64
}

// Parallelism returns TotalEvents / CriticalPathEvents (1 when no events ran).
func (s ShardStats) Parallelism() float64 {
	if s.CriticalPathEvents == 0 {
		return 1
	}
	return float64(s.TotalEvents) / float64(s.CriticalPathEvents)
}

// ShardGroup coordinates K kernels under conservative lookahead. Construct
// with NewShardGroup; a group must not be shared between goroutines, and the
// kernels must not be driven directly (Run/Step) while the group owns them.
type ShardGroup struct {
	kernels   []*Kernel
	lookahead time.Duration
	exchange  Exchanger

	// Sequential, when true, runs every epoch on the calling goroutine in
	// shard order instead of fanning out to workers. Results are identical;
	// the mode exists for debugging and for measuring coordination overhead.
	sequential bool

	stats ShardStats

	// Worker pool state: workers persist across epochs so an epoch barrier
	// costs two channel hops per shard, not a goroutine spawn.
	workers   sync.WaitGroup
	work      []chan time.Duration // per-shard epoch horizon
	done      chan workerDone
	started   bool
	closed    bool
	prevEpoch []uint64 // per-shard executed count at last barrier
}

type workerDone struct {
	shard int
	err   error
}

// GroupOption configures a ShardGroup.
type GroupOption func(*ShardGroup)

// WithSequentialGroup makes the group run shards on the calling goroutine, in
// shard order, instead of on worker goroutines. Byte-identical results —
// useful for debugging and overhead measurement.
func WithSequentialGroup() GroupOption {
	return func(g *ShardGroup) { g.sequential = true }
}

// NewShardGroup builds a coordinator over the given kernels. The lookahead
// must be positive: it is the guaranteed minimum latency of any cross-shard
// event (for the BGP engine, the minimum cut-edge link delay plus the minimum
// sender processing delay). The exchanger moves cross-shard traffic at
// barriers; use NopExchanger when there is none.
func NewShardGroup(lookahead time.Duration, kernels []*Kernel, ex Exchanger, opts ...GroupOption) (*ShardGroup, error) {
	if lookahead <= 0 {
		return nil, fmt.Errorf("sim: sharded execution requires positive lookahead, got %v", lookahead)
	}
	if len(kernels) == 0 {
		return nil, errors.New("sim: shard group needs at least one kernel")
	}
	if ex == nil {
		ex = NopExchanger{}
	}
	g := &ShardGroup{
		kernels:   kernels,
		lookahead: lookahead,
		exchange:  ex,
		prevEpoch: make([]uint64, len(kernels)),
	}
	g.stats.EventsPerShard = make([]uint64, len(kernels))
	for i, k := range kernels {
		g.prevEpoch[i] = k.Executed()
	}
	for _, opt := range opts {
		opt(g)
	}
	return g, nil
}

// Kernels returns the group's kernels (shard order). Do not drive them while
// the group is running.
func (g *ShardGroup) Kernels() []*Kernel { return g.kernels }

// Lookahead returns the epoch length bound.
func (g *ShardGroup) Lookahead() time.Duration { return g.lookahead }

// Stats returns the execution profile accumulated so far.
func (g *ShardGroup) Stats() ShardStats {
	s := g.stats
	s.EventsPerShard = append([]uint64(nil), g.stats.EventsPerShard...)
	return s
}

// Now returns the maximum kernel clock across shards — after RunUntil every
// clock equals the horizon; after a drain it is the time of the globally last
// fired event, matching what a sequential kernel's Now would report.
func (g *ShardGroup) Now() time.Duration {
	var max time.Duration
	for _, k := range g.kernels {
		if k.Now() > max {
			max = k.Now()
		}
	}
	return max
}

// AdvanceTo aligns every shard's clock at the barrier instant at. Call only
// when the group is parked (between Run/RunUntil calls) and no shard has a
// pending event before at.
func (g *ShardGroup) AdvanceTo(at time.Duration) {
	for _, k := range g.kernels {
		if k.Now() < at {
			k.AdvanceTo(at)
		}
	}
}

// Pending returns the total number of events pending across shards (outbox
// contents not included).
func (g *ShardGroup) Pending() int {
	total := 0
	for _, k := range g.kernels {
		total += k.Pending()
	}
	return total
}

// start spins up the worker pool.
func (g *ShardGroup) start() {
	if g.started || g.sequential {
		return
	}
	g.started = true
	g.work = make([]chan time.Duration, len(g.kernels))
	g.done = make(chan workerDone, len(g.kernels))
	for i := range g.kernels {
		g.work[i] = make(chan time.Duration)
		g.workers.Add(1)
		go func(shard int) {
			defer g.workers.Done()
			k := g.kernels[shard]
			for horizon := range g.work[shard] {
				g.done <- workerDone{shard: shard, err: k.RunBefore(horizon)}
			}
		}(i)
	}
}

// Close stops the worker goroutines. The group is unusable afterwards; the
// kernels remain valid and may be driven directly again. Safe to call twice.
func (g *ShardGroup) Close() {
	if !g.started || g.closed {
		g.closed = true
		return
	}
	g.closed = true
	for _, ch := range g.work {
		close(ch)
	}
	g.workers.Wait()
}

// nextEpochStart returns the earliest pending instant across kernel queues
// and outboxes, or ok=false when nothing is pending anywhere.
func (g *ShardGroup) nextEpochStart() (time.Duration, bool) {
	var start time.Duration
	ok := false
	for _, k := range g.kernels {
		if at, has := k.NextEventTime(); has && (!ok || at < start) {
			start, ok = at, true
		}
	}
	if at, has := g.exchange.Pending(); has && (!ok || at < start) {
		start, ok = at, true
	}
	return start, ok
}

// runEpoch executes one epoch with the given exclusive horizon on every
// shard, then accounts stats. It returns the first shard error.
func (g *ShardGroup) runEpoch(horizon time.Duration) error {
	var firstErr error
	if g.sequential || g.closed {
		for _, k := range g.kernels {
			if err := k.RunBefore(horizon); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	} else {
		g.start()
		for _, ch := range g.work {
			ch <- horizon
		}
		for range g.kernels {
			if d := <-g.done; d.err != nil && firstErr == nil {
				firstErr = d.err
			}
		}
	}
	g.stats.Epochs++
	var epochMax uint64
	for i, k := range g.kernels {
		n := k.Executed() - g.prevEpoch[i]
		g.prevEpoch[i] = k.Executed()
		g.stats.EventsPerShard[i] += n
		g.stats.TotalEvents += n
		if n > epochMax {
			epochMax = n
		}
	}
	g.stats.CriticalPathEvents += epochMax
	return firstErr
}

// Run drains every shard: epochs advance until no kernel has a pending event
// and no outbox holds one. Clocks are left at each shard's last fired event.
func (g *ShardGroup) Run() error {
	return g.RunContext(context.Background())
}

// RunContext is Run with a cooperative stop check at every epoch barrier.
func (g *ShardGroup) RunContext(ctx context.Context) error {
	for {
		g.stats.Injected += uint64(g.exchange.Flush())
		start, ok := g.nextEpochStart()
		if !ok {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("%w at %v: %w", ErrInterrupted, g.Now(), context.Cause(ctx))
		}
		if err := g.runEpoch(start + g.lookahead); err != nil {
			return err
		}
	}
}

// RunUntil fires every event with time <= horizon (leaving later events
// pending) and advances every shard clock to exactly horizon, matching
// Kernel.RunUntil's inclusive boundary. Events at exactly the horizon instant
// are executed only after every cross-shard message that can arrive at or
// before it has been exchanged, so the inclusive boundary is safe.
func (g *ShardGroup) RunUntil(horizon time.Duration) error {
	return g.RunUntilContext(context.Background(), horizon)
}

// RunUntilContext is RunUntil with a cooperative stop check at every barrier.
func (g *ShardGroup) RunUntilContext(ctx context.Context, horizon time.Duration) error {
	for {
		g.stats.Injected += uint64(g.exchange.Flush())
		start, ok := g.nextEpochStart()
		if !ok || start > horizon {
			break
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("%w at %v: %w", ErrInterrupted, g.Now(), context.Cause(ctx))
		}
		// Clamp the epoch to the inclusive horizon: RunBefore's exclusive
		// bound means horizon+1ns executes events at exactly the horizon.
		// The clamp can only shorten the epoch, which is always conservative.
		end := start + g.lookahead
		if end > horizon+time.Nanosecond {
			end = horizon + time.Nanosecond
		}
		if err := g.runEpoch(end); err != nil {
			return err
		}
	}
	g.AdvanceTo(horizon)
	return nil
}
