package sim

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// recorder is a Handler that appends "<now> <arg>" lines, optionally
// rescheduling itself to keep a self-perpetuating event stream going.
type recorder struct {
	k     *Kernel
	lines []string
	chain int // how many more times each event reschedules itself
}

func (r *recorder) HandleEvent(arg uint64) {
	r.lines = append(r.lines, fmt.Sprintf("%d %d %d", r.k.now, arg, r.k.rng.Uint64()))
	if r.chain > 0 {
		r.chain--
		r.k.AfterHandler(time.Duration(1+r.k.rng.Uint64()%1000), "chain", r, arg+1)
	}
}

// seedKernel builds a kernel with a mix of pending handler events and an
// outstanding timer, advanced partway so the snapshot is taken mid-run.
func seedKernel(t *testing.T) (*Kernel, *recorder, Timer) {
	t.Helper()
	k := NewKernel(WithSeed(7))
	r := &recorder{k: k, chain: 8}
	k.AtHandler(10, "a", r, 1)
	k.AtHandler(20, "b", r, 2)
	timer := k.AtHandler(50_000, "late", r, 99)
	for i := 0; i < 3; i++ {
		if !k.Step() {
			t.Fatal("queue drained during seeding")
		}
	}
	return k, r, timer
}

func drain(t *testing.T, k *Kernel) {
	t.Helper()
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRestoreReplaysIdentically(t *testing.T) {
	k, r, _ := seedKernel(t)
	snap := k.Snapshot()
	if snap.Now() != k.Now() {
		t.Fatalf("snapshot Now %v != kernel Now %v", snap.Now(), k.Now())
	}
	if snap.Pending() != k.Pending() {
		t.Fatalf("snapshot Pending %d != kernel Pending %d", snap.Pending(), k.Pending())
	}

	prefix := len(r.lines)
	chainAt := r.chain
	drain(t, k)
	first := append([]string(nil), r.lines[prefix:]...)
	endNow, endExec := k.Now(), k.Executed()

	// Rewind and replay: the same events must fire at the same times with the
	// same RNG draws.
	k.Restore(snap)
	if k.Now() != snap.Now() {
		t.Fatalf("restored Now %v != snapshot Now %v", k.Now(), snap.Now())
	}
	r.lines = r.lines[:prefix]
	r.chain = chainAt
	drain(t, k)
	second := r.lines[prefix:]

	if len(first) != len(second) {
		t.Fatalf("replay produced %d events, first run %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged at event %d: %q vs %q", i, second[i], first[i])
		}
	}
	if k.Now() != endNow || k.Executed() != endExec {
		t.Fatalf("replay ended at now=%v executed=%d, first run now=%v executed=%d",
			k.Now(), k.Executed(), endNow, endExec)
	}
}

func TestSnapshotIsIsolatedFromKernel(t *testing.T) {
	k, _, _ := seedKernel(t)
	snap := k.Snapshot()
	pending := snap.Pending()
	drain(t, k) // mutates the kernel's queue heavily
	if snap.Pending() != pending {
		t.Fatalf("snapshot Pending changed from %d to %d after kernel ran", pending, snap.Pending())
	}
	// A kernel materialized from the snapshot still replays from the capture
	// point even though the source kernel has long since drained.
	k2 := snap.NewKernel()
	if k2.Now() != snap.Now() || k2.Pending() != pending {
		t.Fatalf("NewKernel state now=%v pending=%d, want now=%v pending=%d",
			k2.Now(), k2.Pending(), snap.Now(), pending)
	}
}

func TestForkAndRemapReplaysIdentically(t *testing.T) {
	k, r, _ := seedKernel(t)
	fork := k.Fork()
	r2 := &recorder{k: fork, chain: r.chain}
	if err := fork.RemapHandlers(func(h Handler) Handler {
		if h != Handler(r) {
			t.Fatalf("unexpected handler %v in queue", h)
		}
		return r2
	}); err != nil {
		t.Fatal(err)
	}

	prefix := len(r.lines)
	drain(t, k)
	drain(t, fork)
	orig := r.lines[prefix:]
	if len(orig) != len(r2.lines) {
		t.Fatalf("fork produced %d events, original %d", len(r2.lines), len(orig))
	}
	for i := range orig {
		if orig[i] != r2.lines[i] {
			t.Fatalf("fork diverged at event %d: %q vs %q", i, r2.lines[i], orig[i])
		}
	}
}

func TestRemapHandlersRejectsClosures(t *testing.T) {
	k := NewKernel()
	k.At(10, "closure", func() {})
	fork := k.Fork()
	err := fork.RemapHandlers(func(h Handler) Handler { return h })
	if !errors.Is(err, ErrClosureEvent) {
		t.Fatalf("RemapHandlers error = %v, want ErrClosureEvent", err)
	}
}

func TestRemapHandlersRejectsNilReplacement(t *testing.T) {
	k, _, _ := seedKernel(t)
	fork := k.Fork()
	if err := fork.RemapHandlers(func(Handler) Handler { return nil }); err == nil {
		t.Fatal("RemapHandlers accepted a nil replacement handler")
	}
}

func TestAdoptRebindsTimerToFork(t *testing.T) {
	k, _, timer := seedKernel(t)
	fork := k.Fork()
	adopted := fork.Adopt(timer)

	if !timer.Active() || !adopted.Active() {
		t.Fatal("timer should be pending in both kernels")
	}
	if timer.When() != adopted.When() {
		t.Fatalf("adopted When %v != original When %v", adopted.When(), timer.When())
	}
	// Cancelling the adopted handle must only affect the fork.
	if !adopted.Cancel() {
		t.Fatal("adopted Cancel reported not pending")
	}
	if adopted.Active() {
		t.Fatal("adopted timer still active after Cancel")
	}
	if !timer.Active() {
		t.Fatal("cancelling the fork's timer cancelled the original's")
	}

	var zero Timer
	if got := fork.Adopt(zero); got.Active() || got.When() != Never {
		t.Fatal("adopting the zero Timer should yield an inert zero Timer")
	}
}

func TestForkRNGIndependent(t *testing.T) {
	k := NewKernel(WithSeed(3))
	k.Rand().Uint64()
	fork := k.Fork()
	// Same position: next draw matches…
	a, b := k.Rand().Uint64(), fork.Rand().Uint64()
	if a != b {
		t.Fatalf("fork RNG diverged immediately: %d vs %d", a, b)
	}
	// …but streams are independent: advancing one does not move the other.
	k.Rand().Uint64()
	c, d := k.Rand().Uint64(), fork.Rand().Uint64()
	if c == d {
		t.Fatal("fork RNG appears to share state with the original")
	}
}
