package sim

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// tickL is the tick world's hop latency and lookahead: arrivals land exactly
// on epoch boundaries, the hardest legal case for the barrier.
const tickL = 7 * time.Millisecond

// tickWorld is a fork-friendly two-shard ping-pong. Unlike pingPong it is
// built entirely from typed handler events — closures cannot survive
// RemapHandlers — and its exchanger injects via AtHandler, so a forked world
// rebinds every pending event onto its own shards.
type tickWorld struct {
	kernels []*Kernel
	ex      *handlerExchanger
	shards  []*tickShard
	g       *ShardGroup
	log     []string
}

type tickShard struct {
	w  *tickWorld
	id int
}

func (s *tickShard) HandleEvent(arg uint64) {
	k := s.w.kernels[s.id]
	s.w.log = append(s.w.log, fmt.Sprintf("s%d@%v hops=%d", s.id, k.Now(), arg))
	if arg == 0 {
		return
	}
	s.w.ex.send(k.Now()+tickL, 1-s.id, arg-1)
}

type hmsg struct {
	at    time.Duration
	shard int
	arg   uint64
}

// handlerExchanger buffers cross-shard messages and injects them as typed
// handler events at the barrier, so a fork's pending injections survive
// RemapHandlers like every other queued event.
type handlerExchanger struct {
	mu      sync.Mutex
	w       *tickWorld
	pending []hmsg
}

func (e *handlerExchanger) send(at time.Duration, shard int, arg uint64) {
	e.mu.Lock()
	e.pending = append(e.pending, hmsg{at, shard, arg})
	e.mu.Unlock()
}

func (e *handlerExchanger) Flush() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := len(e.pending)
	for _, m := range e.pending {
		e.w.kernels[m.shard].AtHandler(m.at, "hop", e.w.shards[m.shard], m.arg)
	}
	e.pending = e.pending[:0]
	return n
}

func (e *handlerExchanger) Pending() (time.Duration, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var min time.Duration
	ok := false
	for _, m := range e.pending {
		if !ok || m.at < min {
			min, ok = m.at, true
		}
	}
	return min, ok
}

func newTickWorld(t *testing.T, rounds uint64) *tickWorld {
	t.Helper()
	w := &tickWorld{kernels: []*Kernel{NewKernel(), NewKernel()}}
	w.ex = &handlerExchanger{w: w}
	w.shards = []*tickShard{{w: w, id: 0}, {w: w, id: 1}}
	w.kernels[0].AtHandler(0, "start", w.shards[0], rounds)
	g, err := NewShardGroup(tickL, w.kernels, w.ex)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	w.g = g
	return w
}

// adopt wires a freshly forked (or snapshot-materialized) group into a new
// world: fork-local exchanger with the parent's un-flushed messages copied
// over, and every pending handler event remapped onto the new world's shards.
func adopt(t *testing.T, g *ShardGroup, parent *tickWorld) *tickWorld {
	t.Helper()
	f := &tickWorld{g: g, kernels: g.Kernels()}
	f.ex = g.exchange.(*handlerExchanger)
	f.ex.w = f
	parent.ex.mu.Lock()
	f.ex.pending = append([]hmsg(nil), parent.ex.pending...)
	parent.ex.mu.Unlock()
	f.shards = []*tickShard{{w: f, id: 0}, {w: f, id: 1}}
	for _, k := range f.kernels {
		if err := k.RemapHandlers(func(h Handler) Handler {
			return f.shards[h.(*tickShard).id]
		}); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(g.Close)
	return f
}

func (w *tickWorld) fork(t *testing.T) *tickWorld {
	t.Helper()
	ex := &handlerExchanger{}
	g, err := w.g.Fork(ex)
	if err != nil {
		t.Fatal(err)
	}
	return adopt(t, g, w)
}

func assertTrace(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s fired %d events, want %d:\ngot  %v\nwant %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s diverged at event %d: %q, want %q", label, i, got[i], want[i])
		}
	}
}

// TestShardGroupForkParentUntouched is the group-level fork property: forking
// a parked group mid-run leaves the parent untouched, and parent and fork both
// complete with the trace of an independent uninterrupted run — in either
// completion order.
func TestShardGroupForkParentUntouched(t *testing.T) {
	const rounds = 12
	const mid = 5 * tickL

	ref := newTickWorld(t, rounds)
	if err := ref.g.Run(); err != nil {
		t.Fatal(err)
	}
	full := append([]string(nil), ref.log...)
	if len(full) != rounds+1 {
		t.Fatalf("reference fired %d events, want %d", len(full), rounds+1)
	}
	refStats := ref.g.Stats()

	for _, forkFirst := range []bool{true, false} {
		name := "parent-first"
		if forkFirst {
			name = "fork-first"
		}
		t.Run(name, func(t *testing.T) {
			p := newTickWorld(t, rounds)
			if err := p.g.RunUntil(mid); err != nil {
				t.Fatal(err)
			}
			prefix := append([]string(nil), p.log...)
			if len(prefix) == 0 || len(prefix) == len(full) {
				t.Fatalf("fork point is degenerate: %d of %d events fired", len(prefix), len(full))
			}
			f := p.fork(t)
			if f.g.Now() != p.g.Now() {
				t.Fatalf("fork clock %v != parent clock %v", f.g.Now(), p.g.Now())
			}
			if got, want := f.g.Stats().TotalEvents, p.g.Stats().TotalEvents; got != want {
				t.Fatalf("fork stats start at %d events, parent has %d (profile must carry over)", got, want)
			}

			finish := func(w *tickWorld, label string) {
				if err := w.g.Run(); err != nil {
					t.Fatalf("%s: %v", label, err)
				}
			}
			if forkFirst {
				finish(f, "fork")
				finish(p, "parent")
			} else {
				finish(p, "parent")
				finish(f, "fork")
			}

			assertTrace(t, "parent", p.log, full)
			assertTrace(t, "fork", append(append([]string(nil), prefix...), f.log...), full)
			if got := p.g.Stats().TotalEvents; got != refStats.TotalEvents {
				t.Fatalf("parent total events %d, want %d", got, refStats.TotalEvents)
			}
			if got := f.g.Stats().TotalEvents; got != refStats.TotalEvents {
				t.Fatalf("fork total events %d, want %d (carried prefix + replayed suffix)", got, refStats.TotalEvents)
			}
		})
	}
}

// TestGroupSnapshotNewGroupReplays pins the snapshot half: a GroupSnapshot
// taken at a barrier is immutable — the source group draining afterwards does
// not disturb it — and every group materialized from it replays the identical
// suffix.
func TestGroupSnapshotNewGroupReplays(t *testing.T) {
	const rounds = 10
	const mid = 4 * tickL

	p := newTickWorld(t, rounds)
	if err := p.g.RunUntil(mid); err != nil {
		t.Fatal(err)
	}
	prefixLen := len(p.log)
	snap := p.g.Snapshot()
	if snap.NumShards() != 2 {
		t.Fatalf("snapshot has %d shards, want 2", snap.NumShards())
	}
	for i := 0; i < snap.NumShards(); i++ {
		if snap.Shard(i) == nil {
			t.Fatalf("shard %d snapshot missing", i)
		}
	}
	// Copy the exchanger's in-flight messages before the parent drains them.
	pendingAtSnap := append([]hmsg(nil), p.ex.pending...)

	// Drain the source first: materialized groups must replay from the capture
	// point regardless of what the source did since.
	if err := p.g.Run(); err != nil {
		t.Fatal(err)
	}
	suffix := append([]string(nil), p.log[prefixLen:]...)
	if len(suffix) == 0 {
		t.Fatal("empty suffix: the replay comparison is vacuous")
	}

	for _, name := range []string{"first", "second"} {
		g, err := snap.NewGroup(&handlerExchanger{})
		if err != nil {
			t.Fatal(err)
		}
		// A stand-in parent carrying the in-flight messages as they were at
		// the snapshot instant, so adopt copies them into the new world.
		atSnap := &tickWorld{ex: &handlerExchanger{pending: pendingAtSnap}}
		m := adopt(t, g, atSnap)
		if err := m.g.Run(); err != nil {
			t.Fatal(err)
		}
		assertTrace(t, name+" materialization", m.log, suffix)
	}
}
