// Secondarycharging reproduces Figure 7 of the paper: the damping penalty of
// one (router, peer) pair far from a flapping link, after a single flap.
//
// Path exploration charges the penalty over the cut-off threshold during the
// first couple of minutes ("charging"). The route would be reused ~25
// minutes later — but each time another router's reuse timer fires first,
// its announcements re-charge this penalty ("secondary charging"), pushing
// the reuse instant out again. In the paper's run this accounted for more
// than 60 % of the total convergence delay.
package main

import (
	"fmt"
	"log"
	"time"

	"rfd/experiment"
)

func main() {
	opts := experiment.DefaultOptions() // the paper's 10×10 mesh

	data, err := experiment.Fig7(opts)
	if err != nil {
		log.Fatal(err)
	}
	res := data.Result

	fmt.Printf("single pulse on a %d-node damped mesh\n", opts.MeshRows*opts.MeshCols)
	fmt.Printf("watching the penalty router %d keeps for peer %d\n\n", data.Watched.Router, data.Watched.Peer)

	fmt.Println("time      penalty   (cutoff 2000 / reuse 750)")
	var lastShown time.Duration = -time.Hour
	for _, p := range data.Trace {
		// Thin out the trace for readability: one line per 30 s of activity.
		if p.At-lastShown < 30*time.Second {
			continue
		}
		lastShown = p.At
		marker := ""
		if p.Penalty > data.Cutoff {
			marker = "  <-- over cut-off"
		}
		fmt.Printf("%7.0fs  %7.0f%s\n", p.At.Seconds(), p.Penalty, marker)
	}

	fmt.Println()
	fmt.Printf("secondary-charging increments after charging ended: %d\n", data.Recharges)
	fmt.Printf("phases: %s\n", res.Phases)
	fmt.Printf("total convergence delay: %.0f s — releasing alone: %.0f s (%.0f%%)\n",
		res.ConvergenceTime.Seconds(),
		res.Phases.ReleasingDuration().Seconds(),
		100*res.Phases.ReleasingFraction())
	fmt.Println("\nThe paper's Figure 7 shows the same sawtooth: path exploration charges")
	fmt.Println("the penalty past the cut-off once, then reuse-timer interaction keeps")
	fmt.Println("re-charging it long after the origin has stabilized.")
}
