// Rcncompare contrasts classic route flap damping with the paper's
// RCN-enhanced damping (Section 6) across a range of flap counts — the data
// behind Figures 13 and 14.
//
// With Root Cause Notification attached to every update, each physical flap
// charges the damping penalty exactly once per (peer, prefix), so path
// exploration cannot falsely suppress routes and route-reuse updates cannot
// re-charge timers. Convergence then follows the intended single-router
// model for every flap count.
package main

import (
	"fmt"
	"log"

	"rfd/analytic"
	"rfd/bgp"
	"rfd/damping"
	"rfd/experiment"
	"rfd/topology"
)

func main() {
	mesh, err := topology.Torus(6, 6)
	if err != nil {
		log.Fatal(err)
	}

	classicCfg := bgp.DefaultConfig()
	params := damping.Cisco()
	classicCfg.Damping = &params

	rcnCfg := classicCfg
	rcnCfg.EnableRCN = true

	classic := experiment.Scenario{Graph: mesh, ISP: 0, Config: classicCfg}
	withRCN := experiment.Scenario{Graph: mesh, ISP: 0, Config: rcnCfg}

	pulses := experiment.PulseRange(1, 6)
	classicRes, err := experiment.Sweep(classic, pulses)
	if err != nil {
		log.Fatal(err)
	}
	rcnRes, err := experiment.Sweep(withRCN, pulses)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("36-node damped mesh, 60 s flapping interval, Cisco parameters")
	fmt.Println()
	fmt.Println("pulses | classic damping        | RCN-enhanced damping   | intended")
	fmt.Println("       | conv(s) msgs  damped   | conv(s) msgs  damped   | conv(s)")
	fmt.Println("-------+------------------------+------------------------+---------")
	for i, n := range pulses {
		c, r := classicRes[i].Result, rcnRes[i].Result
		pred, err := analytic.PredictPulses(params, n, experiment.DefaultFlapInterval,
			classicRes[0].Result.Phases.ChargingDuration())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d | %7.0f %5d %6d  | %7.0f %5d %6d  | %7.0f\n",
			n,
			c.ConvergenceTime.Seconds(), c.MessageCount, c.MaxDamped,
			r.ConvergenceTime.Seconds(), r.MessageCount, r.MaxDamped,
			pred.Convergence.Seconds())
	}
	fmt.Println()
	fmt.Println("Classic damping overshoots the intended convergence badly for small")
	fmt.Println("flap counts (false suppression + secondary charging); RCN tracks the")
	fmt.Println("intended curve, at the cost of slightly more update messages.")
}
