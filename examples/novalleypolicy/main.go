// Novalleypolicy reproduces the Section 7 observation (Figure 15): the
// no-valley routing policy — by pruning the alternate paths BGP may explore —
// reduces false suppression and moves damping's convergence closer to its
// intended behaviour, without fixing the problem entirely.
package main

import (
	"fmt"
	"log"

	"rfd/bgp"
	"rfd/damping"
	"rfd/experiment"
	"rfd/topology"
)

func main() {
	// An Internet-derived topology with customer-provider / peer-peer
	// relationships (long-tailed degree distribution, valley-free
	// hierarchy).
	g, err := topology.InternetDerived(topology.DefaultInternetConfig(80, 7))
	if err != nil {
		log.Fatal(err)
	}
	if err := topology.ValleyFree(g); err != nil {
		log.Fatal(err)
	}

	base := bgp.DefaultConfig()
	params := damping.Cisco()
	base.Damping = &params

	run := func(policy bgp.Policy, pulses int) *experiment.Result {
		cfg := base
		cfg.Policy = policy
		res, err := experiment.Run(experiment.Scenario{
			Graph:  g,
			ISP:    topology.NodeID(g.NumNodes() / 2),
			Config: cfg,
			Pulses: pulses,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Printf("%d-node Internet-derived topology, full damping (Cisco)\n\n", g.NumNodes())
	fmt.Println("pulses | shortest-path policy   | no-valley policy")
	fmt.Println("       | conv(s) msgs  damped   | conv(s) msgs  damped")
	fmt.Println("-------+------------------------+----------------------")
	for _, n := range []int{1, 2, 3, 5} {
		plain := run(bgp.ShortestPath, n)
		policy := run(bgp.NoValley, n)
		fmt.Printf("%6d | %7.0f %5d %6d  | %7.0f %5d %6d\n",
			n,
			plain.ConvergenceTime.Seconds(), plain.MessageCount, plain.MaxDamped,
			policy.ConvergenceTime.Seconds(), policy.MessageCount, policy.MaxDamped)
	}
	fmt.Println()
	fmt.Println("The policy regulates route export (no transit between non-customers),")
	fmt.Println("which cuts the number of explored alternate paths: fewer exploration")
	fmt.Println("updates, fewer falsely suppressed links, shorter convergence. But it")
	fmt.Println("does not eliminate secondary charging — the affected nodes still")
	fmt.Println("converge far later than the damping design intends (Section 7).")
}
