// Quickstart: build a small BGP network with route flap damping, flap the
// origin's link once, and watch what the paper calls "false suppression":
// a single flap — amplified by path exploration — suppresses routes at
// routers that merely observed the churn, stretching convergence from
// seconds to tens of minutes.
package main

import (
	"fmt"
	"log"

	"rfd/bgp"
	"rfd/damping"
	"rfd/experiment"
	"rfd/topology"
)

func main() {
	// A 5×5 torus: 25 ASes, every node with 4 neighbors, rich in the
	// alternate paths that drive path exploration.
	mesh, err := topology.Torus(5, 5)
	if err != nil {
		log.Fatal(err)
	}

	// Every router runs RFC 2439 damping with Cisco default parameters
	// (Table 1 of the paper).
	cfg := bgp.DefaultConfig()
	params := damping.Cisco()
	cfg.Damping = &params

	// One pulse: the origin's link goes down, comes back 60 s later.
	scenario := experiment.Scenario{
		Graph:  mesh,
		ISP:    0, // the origin AS attaches here
		Config: cfg,
		Pulses: 1,
	}
	result, err := experiment.Run(scenario)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== one flap on a damped 25-node network ===")
	fmt.Printf("updates triggered network-wide:  %d\n", result.MessageCount)
	fmt.Printf("routes falsely suppressed (peak): %d\n", result.MaxDamped)
	fmt.Printf("origin link suppressed:           %v (single flaps shouldn't be)\n", result.OriginSuppressed)
	fmt.Printf("convergence time:                 %.0f s\n", result.ConvergenceTime.Seconds())
	fmt.Printf("phases: %s\n", result.Phases)
	fmt.Println()

	// The same flap without damping converges in ordinary BGP time.
	cfg.Damping = nil
	scenario.Config = cfg
	plain, err := experiment.Run(scenario)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== the same flap without damping ===")
	fmt.Printf("updates triggered network-wide:  %d\n", plain.MessageCount)
	fmt.Printf("convergence time:                 %.0f s\n", plain.ConvergenceTime.Seconds())
	fmt.Println()
	fmt.Printf("damping made a single flap converge %.0fx slower.\n",
		result.ConvergenceTime.Seconds()/plain.ConvergenceTime.Seconds())
}
