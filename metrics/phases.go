package metrics

import (
	"fmt"
	"time"
)

// Phases is the paper's four-state decomposition of a damping episode
// (Section 4.1):
//
//	charging    — from the first flap until no update is in flight;
//	suppression — quiescent, but noisy reuse timers pending;
//	releasing   — from the first reuse-triggered update until the last
//	              update is delivered;
//	converged   — afterwards (remaining reuse timers are silent).
//
// When no route was suppressed (or every reuse was silent) the suppression
// and releasing phases are absent and charging simply ends at the last
// update.
type Phases struct {
	// FlapStart is the first flap (start of charging).
	FlapStart time.Duration
	// FlapEnd is the origin's final announcement.
	FlapEnd time.Duration
	// ChargingEnd is the last update delivered before the first reuse.
	ChargingEnd time.Duration
	// ReleaseStart is the first noisy reuse (start of releasing); zero when
	// HasRelease is false.
	ReleaseStart time.Duration
	// End is the last update delivered overall.
	End time.Duration
	// HasRelease reports whether a suppression + releasing phase exists.
	HasRelease bool
}

// ComputePhases derives the decomposition from the recorded update
// deliveries and noisy reuse instants.
func ComputePhases(deliveries *EventSeries, noisyReuses *EventSeries, flapStart, flapEnd time.Duration) Phases {
	ph := Phases{FlapStart: flapStart, FlapEnd: flapEnd}
	last, ok := deliveries.Last()
	if !ok {
		// No updates at all: degenerate, everything collapses to the flap.
		ph.ChargingEnd = flapEnd
		ph.End = flapEnd
		return ph
	}
	ph.End = last
	firstReuse, hasReuse := noisyReuses.First()
	if !hasReuse {
		ph.ChargingEnd = last
		return ph
	}
	ph.HasRelease = true
	ph.ReleaseStart = firstReuse
	// Charging ends at the last delivery that precedes the first reuse.
	chargingEnd := flapEnd
	for _, t := range deliveries.Times() {
		if t >= firstReuse {
			break
		}
		chargingEnd = t
	}
	ph.ChargingEnd = chargingEnd
	return ph
}

// ConvergenceTime is the paper's metric: from the origin's final
// announcement to the last update observed (Section 3). Zero when the final
// announcement itself triggered nothing.
func (p Phases) ConvergenceTime() time.Duration {
	if p.End <= p.FlapEnd {
		return 0
	}
	return p.End - p.FlapEnd
}

// ChargingDuration is the length of the charging period.
func (p Phases) ChargingDuration() time.Duration {
	if p.ChargingEnd <= p.FlapStart {
		return 0
	}
	return p.ChargingEnd - p.FlapStart
}

// SuppressionDuration is the quiescent gap between charging and releasing.
func (p Phases) SuppressionDuration() time.Duration {
	if !p.HasRelease || p.ReleaseStart <= p.ChargingEnd {
		return 0
	}
	return p.ReleaseStart - p.ChargingEnd
}

// ReleasingDuration is the length of the releasing period.
func (p Phases) ReleasingDuration() time.Duration {
	if !p.HasRelease || p.End <= p.ReleaseStart {
		return 0
	}
	return p.End - p.ReleaseStart
}

// ReleasingFraction is the releasing period as a fraction of the
// convergence time — the paper reports ≈70 % for a single pulse on the mesh
// (Section 5.3). Zero when there is no convergence delay.
func (p Phases) ReleasingFraction() float64 {
	total := p.ConvergenceTime()
	if total <= 0 {
		return 0
	}
	return float64(p.ReleasingDuration()) / float64(total)
}

// String summarizes the decomposition.
func (p Phases) String() string {
	if !p.HasRelease {
		return fmt.Sprintf("charging %v (no suppression phase), end %v", p.ChargingDuration(), p.End)
	}
	return fmt.Sprintf("charging %v, suppression %v, releasing %v (%.0f%% of convergence)",
		p.ChargingDuration(), p.SuppressionDuration(), p.ReleasingDuration(), 100*p.ReleasingFraction())
}
