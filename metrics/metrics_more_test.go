package metrics

import (
	"testing"
	"testing/quick"
	"time"
)

// TestQuickBinsConserveEvents: for any event set and bin width, the bins
// over the full range account for every in-range event exactly once, and
// each bin agrees with CountBetween.
func TestQuickBinsConserveEvents(t *testing.T) {
	f := func(raw []uint16, widthRaw uint8) bool {
		width := time.Duration(int(widthRaw)+1) * time.Second
		var s EventSeries
		// Sort via insertion into a slice first (Record requires order).
		times := make([]time.Duration, len(raw))
		for i, r := range raw {
			times[i] = time.Duration(r) * time.Second
		}
		sortDurations(times)
		for _, at := range times {
			s.Record(at)
		}
		end := time.Duration(1<<16) * time.Second
		bins := s.Bins(0, end, width)
		total := 0
		for _, b := range bins {
			total += b.Count
			hi := b.Start + width
			if hi > end {
				hi = end
			}
			if b.Count != s.CountBetween(b.Start, hi) {
				return false
			}
		}
		return total == s.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func sortDurations(d []time.Duration) {
	for i := 1; i < len(d); i++ {
		for j := i; j > 0 && d[j] < d[j-1]; j-- {
			d[j], d[j-1] = d[j-1], d[j]
		}
	}
}

// TestQuickStepSeriesLastWriteWins: ValueAt always returns the value of the
// latest Record at or before the query time.
func TestQuickStepSeriesConsistency(t *testing.T) {
	f := func(vals []uint8) bool {
		var s StepSeries
		for i, v := range vals {
			s.Record(time.Duration(i)*time.Second, int(v))
		}
		for i, v := range vals {
			// Query exactly at, and just after, each change point.
			if s.ValueAt(time.Duration(i)*time.Second) != int(v) {
				return false
			}
			if s.ValueAt(time.Duration(i)*time.Second+500*time.Millisecond) != int(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPhasesDegenerateOrderings(t *testing.T) {
	// Reuse before any delivery: charging collapses to the flap end.
	var deliveries, reuses EventSeries
	reuses.Record(10 * time.Second)
	deliveries.Record(20 * time.Second)
	ph := ComputePhases(&deliveries, &reuses, 0, 5*time.Second)
	if !ph.HasRelease {
		t.Fatal("release not detected")
	}
	if ph.ChargingEnd != 5*time.Second {
		t.Fatalf("charging end = %v, want flap end", ph.ChargingEnd)
	}
	if ph.ReleasingDuration() != 10*time.Second {
		t.Fatalf("releasing = %v", ph.ReleasingDuration())
	}
}

func TestSummarizePercentiles(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i + 1) // 1..100
	}
	s := Summarize(vals)
	if s.P90 < 89 || s.P90 > 91 {
		t.Fatalf("P90 = %v", s.P90)
	}
	if s.P99 < 98 || s.P99 > 100 {
		t.Fatalf("P99 = %v", s.P99)
	}
	if s.Median != 50.5 {
		t.Fatalf("Median = %v", s.Median)
	}
}

func TestFloatSeriesRejectsOutOfOrder(t *testing.T) {
	var s FloatSeries
	s.Record(5*time.Second, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Record did not panic")
		}
	}()
	s.Record(time.Second, 2)
}

func TestStepSeriesSamplePanicsOnBadSpacing(t *testing.T) {
	var s StepSeries
	defer func() {
		if recover() == nil {
			t.Fatal("zero spacing did not panic")
		}
	}()
	s.Sample(0, time.Second, 0)
}
