// Package metrics provides the measurement primitives the experiments use to
// reproduce the paper's figures: event series with fixed-width binning (the
// 5-second update series of Fig 10), step series (the damped-link count of
// Fig 10), float series (the penalty traces of Figs 3 and 7), summary
// statistics, and the paper's four-state phase decomposition
// (charging / suppression / releasing / converged, Section 4.1).
//
// The package is deliberately independent of the bgp engine; the experiment
// layer translates bgp.Hooks callbacks into metric recordings.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// EventSeries records the times of point events (e.g. update deliveries) in
// nondecreasing order. The zero value is an empty series ready for use.
type EventSeries struct {
	times []time.Duration
}

// Record appends an event. Events must arrive in nondecreasing time order
// (the simulator guarantees this); out-of-order records panic because they
// would silently corrupt binning.
func (s *EventSeries) Record(at time.Duration) {
	if n := len(s.times); n > 0 && at < s.times[n-1] {
		panic(fmt.Sprintf("metrics: event at %v before last %v", at, s.times[n-1]))
	}
	s.times = append(s.times, at)
}

// Count returns the total number of events.
func (s *EventSeries) Count() int { return len(s.times) }

// Times returns a copy of the event times.
func (s *EventSeries) Times() []time.Duration {
	out := make([]time.Duration, len(s.times))
	copy(out, s.times)
	return out
}

// First returns the first event time (0, false when empty).
func (s *EventSeries) First() (time.Duration, bool) {
	if len(s.times) == 0 {
		return 0, false
	}
	return s.times[0], true
}

// Last returns the last event time (0, false when empty).
func (s *EventSeries) Last() (time.Duration, bool) {
	if len(s.times) == 0 {
		return 0, false
	}
	return s.times[len(s.times)-1], true
}

// CountBetween returns how many events lie in [from, to).
func (s *EventSeries) CountBetween(from, to time.Duration) int {
	lo := sort.Search(len(s.times), func(i int) bool { return s.times[i] >= from })
	hi := sort.Search(len(s.times), func(i int) bool { return s.times[i] >= to })
	return hi - lo
}

// Bin is one fixed-width histogram bucket.
type Bin struct {
	// Start is the bucket's inclusive lower bound.
	Start time.Duration
	// Count is the number of events in [Start, Start+width).
	Count int
}

// Bins buckets the events from start to end into fixed-width bins (the
// paper's update series uses width = 5 s). The final bin is included even if
// partially covered. It panics on non-positive width; it returns nil when
// end <= start.
func (s *EventSeries) Bins(start, end, width time.Duration) []Bin {
	if width <= 0 {
		panic("metrics: non-positive bin width")
	}
	if end <= start {
		return nil
	}
	n := int((end - start + width - 1) / width)
	bins := make([]Bin, n)
	for i := range bins {
		bins[i].Start = start + time.Duration(i)*width
	}
	for _, t := range s.times {
		if t < start || t >= end {
			continue
		}
		bins[(t-start)/width].Count++
	}
	return bins
}

// StepPoint is one change of an integer step function.
type StepPoint struct {
	At    time.Duration
	Value int
}

// StepSeries records an integer quantity that changes at discrete instants
// (e.g. the number of suppressed links). The zero value starts at 0.
type StepSeries struct {
	points []StepPoint
}

// Record notes that the quantity has the given value from time at onward.
// Times must be nondecreasing; equal times overwrite (last write wins).
func (s *StepSeries) Record(at time.Duration, value int) {
	if n := len(s.points); n > 0 {
		if at < s.points[n-1].At {
			panic(fmt.Sprintf("metrics: step at %v before last %v", at, s.points[n-1].At))
		}
		if at == s.points[n-1].At {
			s.points[n-1].Value = value
			return
		}
	}
	s.points = append(s.points, StepPoint{At: at, Value: value})
}

// ValueAt returns the value in effect at time t (0 before the first record).
func (s *StepSeries) ValueAt(t time.Duration) int {
	idx := sort.Search(len(s.points), func(i int) bool { return s.points[i].At > t })
	if idx == 0 {
		return 0
	}
	return s.points[idx-1].Value
}

// Max returns the largest recorded value (0 when empty).
func (s *StepSeries) Max() int {
	max := 0
	for _, p := range s.points {
		if p.Value > max {
			max = p.Value
		}
	}
	return max
}

// Points returns a copy of the change points.
func (s *StepSeries) Points() []StepPoint {
	out := make([]StepPoint, len(s.points))
	copy(out, s.points)
	return out
}

// Sample evaluates the step function on a regular grid from start to end
// (inclusive of start, exclusive of end) with the given spacing.
func (s *StepSeries) Sample(start, end, spacing time.Duration) []StepPoint {
	if spacing <= 0 {
		panic("metrics: non-positive sample spacing")
	}
	var out []StepPoint
	for t := start; t < end; t += spacing {
		out = append(out, StepPoint{At: t, Value: s.ValueAt(t)})
	}
	return out
}

// FloatPoint is one sample of a real-valued series.
type FloatPoint struct {
	At    time.Duration
	Value float64
}

// FloatSeries records real-valued samples in nondecreasing time order
// (penalty traces). The zero value is empty and ready.
type FloatSeries struct {
	points []FloatPoint
}

// Record appends a sample.
func (s *FloatSeries) Record(at time.Duration, v float64) {
	if n := len(s.points); n > 0 && at < s.points[n-1].At {
		panic(fmt.Sprintf("metrics: sample at %v before last %v", at, s.points[n-1].At))
	}
	s.points = append(s.points, FloatPoint{At: at, Value: v})
}

// Len returns the number of samples.
func (s *FloatSeries) Len() int { return len(s.points) }

// Points returns a copy of the samples.
func (s *FloatSeries) Points() []FloatPoint {
	out := make([]FloatPoint, len(s.points))
	copy(out, s.points)
	return out
}

// Max returns the largest sample value (0 when empty).
func (s *FloatSeries) Max() float64 {
	max := 0.0
	for _, p := range s.points {
		if p.Value > max {
			max = p.Value
		}
	}
	return max
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N            int
	Min, Max     float64
	Mean, StdDev float64
	Median       float64
	P90, P99     float64
	Sum          float64
}

// Summarize computes descriptive statistics. An empty input yields a zero
// Summary with N == 0.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	mean := sum / float64(len(sorted))
	varSum := 0.0
	for _, v := range sorted {
		d := v - mean
		varSum += d * d
	}
	return Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   mean,
		StdDev: math.Sqrt(varSum / float64(len(sorted))),
		Median: quantile(sorted, 0.5),
		P90:    quantile(sorted, 0.9),
		P99:    quantile(sorted, 0.99),
		Sum:    sum,
	}
}

// quantile returns the q-quantile of a sorted sample by linear interpolation.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
