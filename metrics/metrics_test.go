package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func sec(s int) time.Duration { return time.Duration(s) * time.Second }

func TestEventSeriesBasics(t *testing.T) {
	var s EventSeries
	if s.Count() != 0 {
		t.Fatal("fresh series non-empty")
	}
	if _, ok := s.First(); ok {
		t.Fatal("First on empty ok")
	}
	if _, ok := s.Last(); ok {
		t.Fatal("Last on empty ok")
	}
	for _, at := range []int{1, 3, 3, 7} {
		s.Record(sec(at))
	}
	if s.Count() != 4 {
		t.Fatalf("Count = %d", s.Count())
	}
	first, _ := s.First()
	last, _ := s.Last()
	if first != sec(1) || last != sec(7) {
		t.Fatalf("First/Last = %v/%v", first, last)
	}
}

func TestEventSeriesRejectsOutOfOrder(t *testing.T) {
	var s EventSeries
	s.Record(sec(5))
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Record did not panic")
		}
	}()
	s.Record(sec(4))
}

func TestEventSeriesCountBetween(t *testing.T) {
	var s EventSeries
	for _, at := range []int{0, 1, 2, 5, 5, 9} {
		s.Record(sec(at))
	}
	if got := s.CountBetween(sec(1), sec(5)); got != 2 {
		t.Fatalf("CountBetween(1,5) = %d, want 2", got)
	}
	if got := s.CountBetween(sec(5), sec(10)); got != 3 {
		t.Fatalf("CountBetween(5,10) = %d, want 3", got)
	}
	if got := s.CountBetween(sec(100), sec(200)); got != 0 {
		t.Fatalf("CountBetween empty range = %d", got)
	}
}

func TestBins(t *testing.T) {
	var s EventSeries
	for _, at := range []int{0, 1, 4, 5, 6, 12, 14} {
		s.Record(sec(at))
	}
	bins := s.Bins(0, sec(15), sec(5))
	if len(bins) != 3 {
		t.Fatalf("got %d bins", len(bins))
	}
	wantCounts := []int{3, 2, 2} // [0,5): 0,1,4; [5,10): 5,6; [10,15): 12,14
	for i, want := range wantCounts {
		if bins[i].Count != want {
			t.Fatalf("bin %d count = %d, want %d", i, bins[i].Count, want)
		}
		if bins[i].Start != time.Duration(i)*sec(5) {
			t.Fatalf("bin %d start = %v", i, bins[i].Start)
		}
	}
}

func TestBinsIgnoreOutOfRange(t *testing.T) {
	var s EventSeries
	s.Record(sec(1))
	s.Record(sec(100))
	bins := s.Bins(0, sec(10), sec(5))
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != 1 {
		t.Fatalf("out-of-range events counted: total = %d", total)
	}
}

func TestBinsPartialFinal(t *testing.T) {
	var s EventSeries
	s.Record(sec(12))
	bins := s.Bins(0, sec(13), sec(5))
	if len(bins) != 3 {
		t.Fatalf("got %d bins for 13s/5s, want 3", len(bins))
	}
	if bins[2].Count != 1 {
		t.Fatal("event in partial final bin lost")
	}
}

func TestBinsEdgeCases(t *testing.T) {
	var s EventSeries
	if got := s.Bins(sec(5), sec(5), sec(1)); got != nil {
		t.Fatal("empty range returned bins")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero width did not panic")
		}
	}()
	s.Bins(0, sec(10), 0)
}

func TestStepSeries(t *testing.T) {
	var s StepSeries
	if s.ValueAt(sec(100)) != 0 {
		t.Fatal("empty step series nonzero")
	}
	s.Record(sec(10), 5)
	s.Record(sec(20), 3)
	cases := []struct {
		at   time.Duration
		want int
	}{
		{sec(0), 0}, {sec(9), 0}, {sec(10), 5}, {sec(15), 5}, {sec(20), 3}, {sec(99), 3},
	}
	for _, c := range cases {
		if got := s.ValueAt(c.at); got != c.want {
			t.Fatalf("ValueAt(%v) = %d, want %d", c.at, got, c.want)
		}
	}
	if s.Max() != 5 {
		t.Fatalf("Max = %d", s.Max())
	}
}

func TestStepSeriesSameTimeOverwrites(t *testing.T) {
	var s StepSeries
	s.Record(sec(10), 5)
	s.Record(sec(10), 7)
	if got := s.ValueAt(sec(10)); got != 7 {
		t.Fatalf("ValueAt = %d, want 7 (last write wins)", got)
	}
	if len(s.Points()) != 1 {
		t.Fatal("same-time record appended instead of overwriting")
	}
}

func TestStepSeriesRejectsOutOfOrder(t *testing.T) {
	var s StepSeries
	s.Record(sec(10), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order step did not panic")
		}
	}()
	s.Record(sec(5), 2)
}

func TestStepSeriesSample(t *testing.T) {
	var s StepSeries
	s.Record(sec(10), 4)
	samples := s.Sample(0, sec(20), sec(5))
	if len(samples) != 4 {
		t.Fatalf("got %d samples", len(samples))
	}
	want := []int{0, 0, 4, 4}
	for i, w := range want {
		if samples[i].Value != w {
			t.Fatalf("sample %d = %d, want %d", i, samples[i].Value, w)
		}
	}
}

func TestFloatSeries(t *testing.T) {
	var s FloatSeries
	s.Record(sec(1), 100)
	s.Record(sec(2), 300)
	s.Record(sec(3), 200)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Max() != 300 {
		t.Fatalf("Max = %v", s.Max())
	}
	pts := s.Points()
	pts[0].Value = -1
	if s.Points()[0].Value != 100 {
		t.Fatal("Points aliases internal storage")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Sum != 10 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Mean-2.5) > 1e-12 {
		t.Fatalf("Mean = %v", s.Mean)
	}
	if math.Abs(s.Median-2.5) > 1e-12 {
		t.Fatalf("Median = %v", s.Median)
	}
	// Population stddev of {1,2,3,4} = sqrt(1.25).
	if math.Abs(s.StdDev-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("StdDev = %v", s.StdDev)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatal("empty summary has N != 0")
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Min != 7 || s.Max != 7 || s.Median != 7 || s.P90 != 7 || s.StdDev != 0 {
		t.Fatalf("single-value summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("Summarize sorted the caller's slice")
	}
}

func TestQuickSummaryBounds(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			// Map arbitrary floats into a range where sums cannot overflow.
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, math.Mod(v, 1e9))
			}
		}
		if len(vals) == 0 {
			return true
		}
		s := Summarize(vals)
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max && s.StdDev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComputePhasesFullEpisode(t *testing.T) {
	var deliveries, reuses EventSeries
	// Charging: updates from 0 to 120 s. Suppression: quiet. Releasing:
	// reuse at 1574 s triggers updates until 5147 s (the paper's n=1 run).
	for _, at := range []int{1, 30, 60, 90, 120} {
		deliveries.Record(sec(at))
	}
	for _, at := range []int{1575, 1600, 3000, 5147} {
		deliveries.Record(sec(at))
	}
	reuses.Record(sec(1574))
	ph := ComputePhases(&deliveries, &reuses, 0, sec(60))
	if !ph.HasRelease {
		t.Fatal("no releasing phase detected")
	}
	if ph.ChargingEnd != sec(120) {
		t.Fatalf("charging end = %v, want 120s", ph.ChargingEnd)
	}
	if ph.ReleaseStart != sec(1574) {
		t.Fatalf("release start = %v", ph.ReleaseStart)
	}
	if ph.End != sec(5147) {
		t.Fatalf("end = %v", ph.End)
	}
	if got := ph.ConvergenceTime(); got != sec(5147-60) {
		t.Fatalf("convergence = %v", got)
	}
	if got := ph.SuppressionDuration(); got != sec(1574-120) {
		t.Fatalf("suppression = %v", got)
	}
	if got := ph.ReleasingDuration(); got != sec(5147-1574) {
		t.Fatalf("releasing = %v", got)
	}
	// Releasing fraction ≈ (5147-1574)/(5147-60) ≈ 0.70 — the paper's 70 %.
	if f := ph.ReleasingFraction(); math.Abs(f-0.70) > 0.01 {
		t.Fatalf("releasing fraction = %v, want ≈0.70", f)
	}
	if ph.String() == "" {
		t.Fatal("empty String")
	}
}

func TestComputePhasesNoReuse(t *testing.T) {
	var deliveries, reuses EventSeries
	for _, at := range []int{1, 10, 40} {
		deliveries.Record(sec(at))
	}
	ph := ComputePhases(&deliveries, &reuses, 0, sec(5))
	if ph.HasRelease {
		t.Fatal("phantom releasing phase")
	}
	if ph.ChargingEnd != sec(40) || ph.End != sec(40) {
		t.Fatalf("phases = %+v", ph)
	}
	if ph.SuppressionDuration() != 0 || ph.ReleasingDuration() != 0 || ph.ReleasingFraction() != 0 {
		t.Fatal("phantom durations")
	}
	if ph.String() == "" {
		t.Fatal("empty String")
	}
}

func TestComputePhasesNoUpdates(t *testing.T) {
	var deliveries, reuses EventSeries
	ph := ComputePhases(&deliveries, &reuses, 0, sec(60))
	if ph.ConvergenceTime() != 0 {
		t.Fatalf("convergence = %v, want 0", ph.ConvergenceTime())
	}
	if ph.ChargingDuration() != sec(60) {
		// Charging collapses to the flap window itself.
		t.Fatalf("charging = %v", ph.ChargingDuration())
	}
}
