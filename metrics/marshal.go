package metrics

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// This file gives the three series types a stable binary wire form so a
// Result embedding them can be persisted (the experiment/diskcache package
// gob-encodes Results; gob uses these implementations via the
// encoding.BinaryMarshaler / BinaryUnmarshaler interfaces). The format is a
// one-byte version tag, a little-endian uint64 count, then fixed-width
// little-endian payloads — no varints, so corruption detection upstream
// (the disk cache's content hash) is the only integrity layer needed here,
// and a decoder can cheaply pre-validate the length.

const (
	seriesVersion = 1
	seriesHeader  = 1 + 8 // version byte + count
)

// marshalHeader validates the payload shape shared by all three series:
// version tag, count, and an exact body of count*stride bytes.
func unmarshalHeader(kind string, data []byte, stride int) (n int, body []byte, err error) {
	if len(data) < seriesHeader {
		return 0, nil, fmt.Errorf("metrics: %s: truncated header (%d bytes)", kind, len(data))
	}
	if data[0] != seriesVersion {
		return 0, nil, fmt.Errorf("metrics: %s: unknown version %d", kind, data[0])
	}
	count := binary.LittleEndian.Uint64(data[1:9])
	if count > uint64(math.MaxInt) {
		return 0, nil, fmt.Errorf("metrics: %s: implausible count %d", kind, count)
	}
	n = int(count)
	body = data[seriesHeader:]
	if len(body) != n*stride {
		return 0, nil, fmt.Errorf("metrics: %s: body is %d bytes, want %d for %d entries",
			kind, len(body), n*stride, n)
	}
	return n, body, nil
}

func appendHeader(buf []byte, n int) []byte {
	buf = append(buf, seriesVersion)
	return binary.LittleEndian.AppendUint64(buf, uint64(n))
}

// MarshalBinary encodes the event times (8 bytes each).
func (s *EventSeries) MarshalBinary() ([]byte, error) {
	buf := appendHeader(make([]byte, 0, seriesHeader+8*len(s.times)), len(s.times))
	for _, t := range s.times {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(t))
	}
	return buf, nil
}

// UnmarshalBinary replaces the series with the encoded one. The
// nondecreasing-order invariant is revalidated — a decoded series must be as
// trustworthy as a recorded one.
func (s *EventSeries) UnmarshalBinary(data []byte) error {
	n, body, err := unmarshalHeader("event series", data, 8)
	if err != nil {
		return err
	}
	times := make([]time.Duration, n)
	for i := range times {
		times[i] = time.Duration(binary.LittleEndian.Uint64(body[8*i:]))
		if i > 0 && times[i] < times[i-1] {
			return fmt.Errorf("metrics: event series: out-of-order time at entry %d", i)
		}
	}
	s.times = times
	return nil
}

// MarshalBinary encodes the change points (16 bytes each: time, value).
func (s *StepSeries) MarshalBinary() ([]byte, error) {
	buf := appendHeader(make([]byte, 0, seriesHeader+16*len(s.points)), len(s.points))
	for _, p := range s.points {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(p.At))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(p.Value))
	}
	return buf, nil
}

// UnmarshalBinary replaces the series with the encoded one, revalidating the
// strictly-increasing time invariant Record maintains.
func (s *StepSeries) UnmarshalBinary(data []byte) error {
	n, body, err := unmarshalHeader("step series", data, 16)
	if err != nil {
		return err
	}
	points := make([]StepPoint, n)
	for i := range points {
		points[i].At = time.Duration(binary.LittleEndian.Uint64(body[16*i:]))
		points[i].Value = int(int64(binary.LittleEndian.Uint64(body[16*i+8:])))
		if i > 0 && points[i].At <= points[i-1].At {
			return fmt.Errorf("metrics: step series: non-increasing time at entry %d", i)
		}
	}
	s.points = points
	return nil
}

// MarshalBinary encodes the samples (16 bytes each: time, IEEE-754 value).
func (s *FloatSeries) MarshalBinary() ([]byte, error) {
	buf := appendHeader(make([]byte, 0, seriesHeader+16*len(s.points)), len(s.points))
	for _, p := range s.points {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(p.At))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Value))
	}
	return buf, nil
}

// UnmarshalBinary replaces the series with the encoded one, revalidating the
// nondecreasing time invariant.
func (s *FloatSeries) UnmarshalBinary(data []byte) error {
	n, body, err := unmarshalHeader("float series", data, 16)
	if err != nil {
		return err
	}
	points := make([]FloatPoint, n)
	for i := range points {
		points[i].At = time.Duration(binary.LittleEndian.Uint64(body[16*i:]))
		points[i].Value = math.Float64frombits(binary.LittleEndian.Uint64(body[16*i+8:]))
		if i > 0 && points[i].At < points[i-1].At {
			return fmt.Errorf("metrics: float series: out-of-order time at entry %d", i)
		}
	}
	s.points = points
	return nil
}
