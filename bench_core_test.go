package rfd_test

import (
	"testing"

	"rfd/bgp"
	"rfd/damping"
	"rfd/experiment"
	"rfd/topology"
)

// BenchmarkCoreHotPath is the simulator's core performance suite: full
// scenario runs whose wall-clock and allocation profiles are dominated by
// the per-event hot path (message send/deliver, decision process, MRAI and
// reuse timers). Its results are recorded in BENCH_core.json; refresh with
//
//	go test -run '^$' -bench BenchmarkCoreHotPath -benchtime 3x -benchmem .
//
// and compare against a baseline with benchstat (see docs/performance.md).
func BenchmarkCoreHotPath(b *testing.B) {
	b.Run("mesh-100-damped", func(b *testing.B) {
		g, err := topology.Torus(10, 10)
		if err != nil {
			b.Fatal(err)
		}
		cfg := bgp.DefaultConfig()
		params := damping.Cisco()
		cfg.Damping = &params
		sc := experiment.Scenario{Graph: g, ISP: 0, Config: cfg, Pulses: 2}
		benchCoreRun(b, sc)
	})
	b.Run("clique-30", func(b *testing.B) {
		// A 30-node full mesh maximizes alternate paths, so a single pulse
		// triggers heavy path exploration: the densest update churn per
		// router the engine sees.
		g, err := topology.FullMesh(30)
		if err != nil {
			b.Fatal(err)
		}
		sc := experiment.Scenario{Graph: g, ISP: 0, Config: bgp.DefaultConfig(), Pulses: 1}
		benchCoreRun(b, sc)
	})
}

func benchCoreRun(b *testing.B, sc experiment.Scenario) {
	b.Helper()
	b.ReportAllocs()
	var res *experiment.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.ConvergenceTime.Seconds(), "conv_s")
	b.ReportMetric(float64(res.MessageCount), "msgs")
}
