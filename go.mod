module rfd

go 1.22
