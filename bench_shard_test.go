package rfd_test

import (
	"fmt"
	"testing"
	"time"

	"rfd/bgp"
	"rfd/damping"
	"rfd/experiment"
	"rfd/sim"
	"rfd/topology"
)

// BenchmarkShardedEngine measures the sharded parallel engine against the
// sequential reference across shard counts and topology scales. Results are
// recorded in BENCH_shard.json; refresh with
//
//	go test -run '^$' -bench BenchmarkShardedEngine -benchtime 3x .
//
// Two numbers matter per cell:
//
//   - wall-clock (ns/op), which on a multi-core host shows the real speedup
//     and on a single-core host shows the coordination overhead;
//   - parallelism, the critical-path metric from sim.ShardStats: total events
//     divided by the sum over epochs of the busiest shard's events. This is
//     the speedup an infinitely-core host could extract from the partition
//     and is hardware-independent, so it is the number the >=3x acceptance
//     target is judged on when the benchmark host has fewer cores than
//     shards.
func BenchmarkShardedEngine(b *testing.B) {
	graphs := []struct {
		name    string
		build   func() (*topology.Graph, error)
		pulses  int
		minLink time.Duration // 0 keeps the default 10 ms floor
	}{
		{"mesh-100", func() (*topology.Graph, error) { return topology.Torus(10, 10) }, 2, 0},
		{"internet-208", func() (*topology.Graph, error) {
			return topology.InternetDerived(topology.DefaultInternetConfig(208, 3))
		}, 2, 0},
		{"internet-5000", func() (*topology.Graph, error) {
			return topology.InternetDerived(topology.DefaultInternetConfig(5000, 3))
		}, 1, 0},
		// WAN delay profile: a 40 ms propagation floor on inter-AS links
		// (continental distances) widens the conservative lookahead window
		// from 11 ms to 41 ms, so each epoch carries ~4x the events and the
		// coordination overhead amortizes. This is the realistic
		// internet-scale setting; the default 10 ms floor above shows the
		// conservative worst case.
		{"internet-5000-wan", func() (*topology.Graph, error) {
			return topology.InternetDerived(topology.DefaultInternetConfig(5000, 3))
		}, 1, 40 * time.Millisecond},
	}
	for _, gr := range graphs {
		g, err := gr.build()
		if err != nil {
			b.Fatal(err)
		}
		for _, shards := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/shards-%d", gr.name, shards), func(b *testing.B) {
				benchShardRun(b, g, gr.pulses, shards, gr.minLink)
			})
		}
	}
}

// benchShardRun drives warm-up plus the pulse workload to full convergence on
// the requested engine. shards == 1 runs the sequential reference kernel —
// no group, no barriers — so the comparison includes all coordination
// overhead the sharded engine adds.
func benchShardRun(b *testing.B, g *topology.Graph, pulses, shards int, minLink time.Duration) {
	b.Helper()
	b.ReportAllocs()
	cfg := bgp.DefaultConfig()
	params := damping.Cisco()
	cfg.Damping = &params
	cfg.Seed = 13
	if minLink > 0 {
		cfg.MinLinkDelay = minLink
	}
	prefix := bgp.Prefix("origin/8")
	origin := bgp.RouterID(g.NumNodes() / 2)
	const interval = 60 * time.Second

	var stats sim.ShardStats
	var delivered uint64
	for i := 0; i < b.N; i++ {
		if shards <= 1 {
			k := sim.NewKernel(sim.WithSeed(cfg.Seed))
			n, err := bgp.NewNetwork(k, g, cfg)
			if err != nil {
				b.Fatal(err)
			}
			n.Router(origin).Originate(prefix)
			if err := k.Run(); err != nil {
				b.Fatal(err)
			}
			for p := 0; p < pulses; p++ {
				n.Router(origin).StopOriginating(prefix)
				if err := k.RunUntil(k.Now() + interval); err != nil {
					b.Fatal(err)
				}
				n.Router(origin).Originate(prefix)
				if err := k.RunUntil(k.Now() + interval); err != nil {
					b.Fatal(err)
				}
			}
			if err := k.Run(); err != nil {
				b.Fatal(err)
			}
			delivered = n.Delivered()
			continue
		}
		assign, err := topology.Partition(g, shards)
		if err != nil {
			b.Fatal(err)
		}
		sn, err := bgp.NewShardedNetwork(g, cfg, assign)
		if err != nil {
			b.Fatal(err)
		}
		grp := sn.Group()
		sn.Router(origin).Originate(prefix)
		if err := grp.Run(); err != nil {
			b.Fatal(err)
		}
		sn.Align()
		for p := 0; p < pulses; p++ {
			sn.Router(origin).StopOriginating(prefix)
			if err := grp.RunUntil(grp.Now() + interval); err != nil {
				b.Fatal(err)
			}
			sn.Router(origin).Originate(prefix)
			if err := grp.RunUntil(grp.Now() + interval); err != nil {
				b.Fatal(err)
			}
		}
		if err := grp.Run(); err != nil {
			b.Fatal(err)
		}
		stats = grp.Stats()
		delivered = sn.Delivered()
		sn.Close()
	}
	b.ReportMetric(float64(delivered), "delivered")
	if shards > 1 {
		b.ReportMetric(stats.Parallelism(), "parallelism")
		b.ReportMetric(float64(stats.Epochs), "epochs")
	}
}

// BenchmarkShardedSweep measures warm-up amortization on the sharded engine:
// "scratch" converges the partitioned ensemble from nothing for every pulse
// point (the execution model sharded sweeps were silently stuck with before
// sharded checkpoints existed), "fork" converges once, parks a sharded
// snapshot, and forks it per point — experiment.SweepParallel's model for
// Shards > 1. Both legs run the points sequentially so the comparison isolates
// checkpoint reuse from parallelism. The fork leg reports the one-off warm-up
// cost (warmup_ms) next to the whole-sweep time: the flap phase dominates
// damped internet sweeps, so the wall-clock win is bounded by the warm-up
// share per point — which is also exactly the latency a pooled-snapshot hit in
// rfdd shaves off every repeat request. Results are recorded in
// BENCH_shard.json; refresh with
//
//	go test -run '^$' -bench BenchmarkShardedSweep -benchtime 3x .
func BenchmarkShardedSweep(b *testing.B) {
	for _, nodes := range []int{208, 2000} {
		nodes := nodes
		mkBase := func(b *testing.B) (experiment.Scenario, []int) {
			b.Helper()
			g, err := topology.InternetDerived(topology.DefaultInternetConfig(nodes, 3))
			if err != nil {
				b.Fatal(err)
			}
			cfg := bgp.DefaultConfig()
			params := damping.Cisco()
			cfg.Damping = &params
			cfg.Seed = 13
			return experiment.Scenario{
				Graph:  g,
				ISP:    topology.NodeID(g.NumNodes() / 2),
				Config: cfg,
				Shards: 4,
			}, experiment.PulseRange(0, 4)
		}
		b.Run(fmt.Sprintf("internet-%d/scratch", nodes), func(b *testing.B) {
			base, pulses := mkBase(b)
			b.ReportAllocs()
			var last *experiment.Result
			for i := 0; i < b.N; i++ {
				for _, n := range pulses {
					sc := base
					sc.Pulses = n
					res, err := experiment.Run(sc)
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
			}
			b.ReportMetric(last.ConvergenceTime.Seconds(), "conv_s")
			b.ReportMetric(float64(last.MessageCount), "msgs")
		})
		b.Run(fmt.Sprintf("internet-%d/fork", nodes), func(b *testing.B) {
			base, pulses := mkBase(b)
			b.ReportAllocs()
			var last *experiment.Result
			var warmup time.Duration
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				cp, err := experiment.NewCheckpoint(base)
				if err != nil {
					b.Fatal(err)
				}
				warmup += time.Since(t0)
				for _, n := range pulses {
					sc := base
					sc.Pulses = n
					res, err := cp.Run(sc)
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
			}
			b.ReportMetric(float64(warmup.Milliseconds())/float64(b.N), "warmup_ms")
			b.ReportMetric(last.ConvergenceTime.Seconds(), "conv_s")
			b.ReportMetric(float64(last.MessageCount), "msgs")
		})
	}
}
