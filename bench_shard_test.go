package rfd_test

import (
	"fmt"
	"testing"
	"time"

	"rfd/bgp"
	"rfd/damping"
	"rfd/sim"
	"rfd/topology"
)

// BenchmarkShardedEngine measures the sharded parallel engine against the
// sequential reference across shard counts and topology scales. Results are
// recorded in BENCH_shard.json; refresh with
//
//	go test -run '^$' -bench BenchmarkShardedEngine -benchtime 3x .
//
// Two numbers matter per cell:
//
//   - wall-clock (ns/op), which on a multi-core host shows the real speedup
//     and on a single-core host shows the coordination overhead;
//   - parallelism, the critical-path metric from sim.ShardStats: total events
//     divided by the sum over epochs of the busiest shard's events. This is
//     the speedup an infinitely-core host could extract from the partition
//     and is hardware-independent, so it is the number the >=3x acceptance
//     target is judged on when the benchmark host has fewer cores than
//     shards.
func BenchmarkShardedEngine(b *testing.B) {
	graphs := []struct {
		name    string
		build   func() (*topology.Graph, error)
		pulses  int
		minLink time.Duration // 0 keeps the default 10 ms floor
	}{
		{"mesh-100", func() (*topology.Graph, error) { return topology.Torus(10, 10) }, 2, 0},
		{"internet-208", func() (*topology.Graph, error) {
			return topology.InternetDerived(topology.DefaultInternetConfig(208, 3))
		}, 2, 0},
		{"internet-5000", func() (*topology.Graph, error) {
			return topology.InternetDerived(topology.DefaultInternetConfig(5000, 3))
		}, 1, 0},
		// WAN delay profile: a 40 ms propagation floor on inter-AS links
		// (continental distances) widens the conservative lookahead window
		// from 11 ms to 41 ms, so each epoch carries ~4x the events and the
		// coordination overhead amortizes. This is the realistic
		// internet-scale setting; the default 10 ms floor above shows the
		// conservative worst case.
		{"internet-5000-wan", func() (*topology.Graph, error) {
			return topology.InternetDerived(topology.DefaultInternetConfig(5000, 3))
		}, 1, 40 * time.Millisecond},
	}
	for _, gr := range graphs {
		g, err := gr.build()
		if err != nil {
			b.Fatal(err)
		}
		for _, shards := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/shards-%d", gr.name, shards), func(b *testing.B) {
				benchShardRun(b, g, gr.pulses, shards, gr.minLink)
			})
		}
	}
}

// benchShardRun drives warm-up plus the pulse workload to full convergence on
// the requested engine. shards == 1 runs the sequential reference kernel —
// no group, no barriers — so the comparison includes all coordination
// overhead the sharded engine adds.
func benchShardRun(b *testing.B, g *topology.Graph, pulses, shards int, minLink time.Duration) {
	b.Helper()
	b.ReportAllocs()
	cfg := bgp.DefaultConfig()
	params := damping.Cisco()
	cfg.Damping = &params
	cfg.Seed = 13
	if minLink > 0 {
		cfg.MinLinkDelay = minLink
	}
	prefix := bgp.Prefix("origin/8")
	origin := bgp.RouterID(g.NumNodes() / 2)
	const interval = 60 * time.Second

	var stats sim.ShardStats
	var delivered uint64
	for i := 0; i < b.N; i++ {
		if shards <= 1 {
			k := sim.NewKernel(sim.WithSeed(cfg.Seed))
			n, err := bgp.NewNetwork(k, g, cfg)
			if err != nil {
				b.Fatal(err)
			}
			n.Router(origin).Originate(prefix)
			if err := k.Run(); err != nil {
				b.Fatal(err)
			}
			for p := 0; p < pulses; p++ {
				n.Router(origin).StopOriginating(prefix)
				if err := k.RunUntil(k.Now() + interval); err != nil {
					b.Fatal(err)
				}
				n.Router(origin).Originate(prefix)
				if err := k.RunUntil(k.Now() + interval); err != nil {
					b.Fatal(err)
				}
			}
			if err := k.Run(); err != nil {
				b.Fatal(err)
			}
			delivered = n.Delivered()
			continue
		}
		assign, err := topology.Partition(g, shards)
		if err != nil {
			b.Fatal(err)
		}
		sn, err := bgp.NewShardedNetwork(g, cfg, assign)
		if err != nil {
			b.Fatal(err)
		}
		grp := sn.Group()
		sn.Router(origin).Originate(prefix)
		if err := grp.Run(); err != nil {
			b.Fatal(err)
		}
		sn.Align()
		for p := 0; p < pulses; p++ {
			sn.Router(origin).StopOriginating(prefix)
			if err := grp.RunUntil(grp.Now() + interval); err != nil {
				b.Fatal(err)
			}
			sn.Router(origin).Originate(prefix)
			if err := grp.RunUntil(grp.Now() + interval); err != nil {
				b.Fatal(err)
			}
		}
		if err := grp.Run(); err != nil {
			b.Fatal(err)
		}
		stats = grp.Stats()
		delivered = sn.Delivered()
		sn.Close()
	}
	b.ReportMetric(float64(delivered), "delivered")
	if shards > 1 {
		b.ReportMetric(stats.Parallelism(), "parallelism")
		b.ReportMetric(float64(stats.Epochs), "epochs")
	}
}
