// Package analytic implements the paper's Section 3 model of damping's
// *intended* behaviour: the closed-form penalty accumulation at the router
// adjacent to the flapping link (ispAS), the reuse delay r = (1/λ)·ln(p/P_reuse),
// and the intended convergence time
//
//	t = r + t_up
//
// where t_up is ordinary BGP up-convergence time. The Fig 8/13 "calculation"
// curves and the experiment package's intended-vs-actual comparisons are
// computed here.
//
// The model deliberately reuses the damping package's State so the analytic
// prediction and the simulated routers share one penalty implementation —
// any divergence between intended and actual behaviour is then attributable
// to network effects (path exploration, timer interaction), exactly as in
// the paper.
package analytic

import (
	"fmt"
	"time"

	"rfd/damping"
)

// FlapEvent is one update the origin's neighbor (ispAS) receives, at a time
// relative to the start of flapping.
type FlapEvent struct {
	// At is the event's offset from the first flap.
	At time.Duration
	// Kind is the damping classification of the update.
	Kind damping.Kind
}

// PulseTrain builds the paper's workload (Section 5.1): n pulses at the
// given flapping interval. A pulse is a withdrawal followed by an
// announcement one interval later; consecutive pulses are separated by the
// same interval, so events fall at 0, w, 2w, … and the final event — always
// an announcement — falls at (2n−1)·w. n <= 0 yields nil.
func PulseTrain(n int, interval time.Duration) []FlapEvent {
	if n <= 0 {
		return nil
	}
	events := make([]FlapEvent, 0, 2*n)
	for i := 0; i < n; i++ {
		events = append(events,
			FlapEvent{At: time.Duration(2*i) * interval, Kind: damping.KindWithdrawal},
			FlapEvent{At: time.Duration(2*i+1) * interval, Kind: damping.KindReannouncement},
		)
	}
	return events
}

// Prediction is the intended-behaviour outcome for one flap pattern.
type Prediction struct {
	// Suppressed reports whether the origin link's route is suppressed at
	// the end of the flap train.
	Suppressed bool
	// SuppressedAtEvent is the 1-based index of the event that triggered
	// suppression (0 when never suppressed).
	SuppressedAtEvent int
	// FinalPenalty is the penalty right after the last event.
	FinalPenalty float64
	// ReuseDelay is r: how long after the last event the route is reused
	// (0 when not suppressed).
	ReuseDelay time.Duration
	// Convergence is the intended convergence time t = r + t_up measured
	// from the origin's final announcement.
	Convergence time.Duration
}

// Predict runs the single-router damping model over the event sequence.
// tup is the network's ordinary up-convergence time (measured or assumed);
// when the flaps never trigger suppression the intended convergence time is
// simply tup.
func Predict(params damping.Params, events []FlapEvent, tup time.Duration) (Prediction, error) {
	if err := params.Validate(); err != nil {
		return Prediction{}, err
	}
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			return Prediction{}, fmt.Errorf("analytic: events out of order at index %d", i)
		}
	}
	state := damping.NewState(params)
	pred := Prediction{}
	var lastAt time.Duration
	for i, fe := range events {
		// A long gap can let the penalty decay to the reuse threshold
		// mid-train; model the reuse timer exactly as a router would.
		if state.Suppressed() {
			if due := lastAt + state.ReuseIn(lastAt); due <= fe.At {
				state.TryReuse(due)
			}
		}
		ev := state.Update(fe.At, fe.Kind, true)
		lastAt = fe.At
		pred.FinalPenalty = ev.Penalty
		if ev.BecameSuppressed && pred.SuppressedAtEvent == 0 {
			pred.SuppressedAtEvent = i + 1
		}
	}
	pred.Suppressed = state.Suppressed()
	switch {
	case len(events) == 0:
		// No flap, no convergence event.
		pred.Convergence = 0
	case pred.Suppressed:
		pred.ReuseDelay = params.ReuseDelay(pred.FinalPenalty)
		pred.Convergence = pred.ReuseDelay + tup
	default:
		pred.Convergence = tup
	}
	return pred, nil
}

// PredictPulses is Predict specialized to the paper's pulse workload: the
// Fig 8 "calculation" curve is PredictPulses(cisco, n, 60s, tup).Convergence
// for n = 0..10.
func PredictPulses(params damping.Params, pulses int, interval, tup time.Duration) (Prediction, error) {
	return Predict(params, PulseTrain(pulses, interval), tup)
}

// SuppressionOnset returns the pulse number (1-based) whose events first
// suppress the origin link under the given parameters and interval, or 0 if
// maxPulses pulses never suppress it. The paper's setup (Cisco, 60 s) yields
// 3; Juniper yields 2.
func SuppressionOnset(params damping.Params, interval time.Duration, maxPulses int) (int, error) {
	pred, err := PredictPulses(params, maxPulses, interval, 0)
	if err != nil {
		return 0, err
	}
	if pred.SuppressedAtEvent == 0 {
		return 0, nil
	}
	// Event indices 1,2 belong to pulse 1; 3,4 to pulse 2; …
	return (pred.SuppressedAtEvent + 1) / 2, nil
}

// PenaltyTracePoint is one (time, penalty) sample of the analytic trace.
type PenaltyTracePoint struct {
	At      time.Duration
	Penalty float64
}

// PenaltyTrace samples the penalty curve produced by the event sequence on a
// regular grid of the given spacing, from t=0 through horizon. It also
// injects a sample immediately after each event so the sawtooth's vertical
// jumps are visible (this is how Fig 3 of the paper is rendered).
func PenaltyTrace(params damping.Params, events []FlapEvent, horizon, spacing time.Duration) ([]PenaltyTracePoint, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if spacing <= 0 {
		return nil, fmt.Errorf("analytic: non-positive spacing %v", spacing)
	}
	state := damping.NewState(params)
	var out []PenaltyTracePoint
	next := 0
	for t := time.Duration(0); t <= horizon; t += spacing {
		for next < len(events) && events[next].At <= t {
			ev := state.Update(events[next].At, events[next].Kind, true)
			out = append(out, PenaltyTracePoint{At: events[next].At, Penalty: ev.Penalty})
			next++
		}
		out = append(out, PenaltyTracePoint{At: t, Penalty: state.Penalty(t)})
	}
	return out, nil
}
