package analytic

import (
	"testing"
	"time"

	"rfd/damping"
)

func TestOnsetPenaltiesShape(t *testing.T) {
	pen, err := OnsetPenalties(damping.Cisco(), 3, interval)
	if err != nil {
		t.Fatal(err)
	}
	if len(pen) != 6 {
		t.Fatalf("len = %d", len(pen))
	}
	// Withdrawal events jump, announcement events only decay (Cisco PA=0).
	if pen[0] != 1000 {
		t.Fatalf("pen[0] = %v", pen[0])
	}
	if pen[1] >= pen[0] {
		t.Fatal("announcement did not decay the penalty")
	}
	if pen[2] <= pen[1] || pen[4] <= pen[3] {
		t.Fatal("withdrawals did not increase the penalty")
	}
}

func TestCutoffRangeDefaultOnset(t *testing.T) {
	// With Cisco increments and 60 s interval, the default cut-off 2000
	// yields onset 3 — so 2000 must fall inside CutoffRange(..., 3).
	low, high, err := CutoffRange(damping.Cisco(), interval, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !(low < 2000 && 2000 < high) {
		t.Fatalf("default cutoff 2000 outside computed range [%v, %v)", low, high)
	}
}

func TestTuneCutoffMovesOnset(t *testing.T) {
	for _, onset := range []int{1, 2, 3, 4, 5} {
		tuned, err := TuneCutoff(damping.Cisco(), interval, onset)
		if err != nil {
			t.Fatalf("onset %d: %v", onset, err)
		}
		got, err := SuppressionOnset(tuned, interval, 10)
		if err != nil {
			t.Fatal(err)
		}
		if got != onset {
			t.Fatalf("tuned for onset %d, measured %d (cutoff %v)", onset, got, tuned.CutoffThreshold)
		}
	}
}

func TestCutoffRangeValidation(t *testing.T) {
	if _, _, err := CutoffRange(damping.Cisco(), interval, 0); err == nil {
		t.Fatal("onset 0 accepted")
	}
	bad := damping.Cisco()
	bad.HalfLife = 0
	if _, _, err := CutoffRange(bad, interval, 3); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestCutoffRangeImpossible(t *testing.T) {
	// With an interval of many half-lives, consecutive pulse peaks are
	// nearly identical (the penalty fully decays between pulses), so no
	// cut-off can separate pulse 4 from pulse 5.
	if _, _, err := CutoffRange(damping.Cisco(), 8*time.Hour, 5); err == nil {
		t.Fatal("separable onset reported for fully-decaying flaps")
	}
}

func TestTuneCutoffProducesValidParams(t *testing.T) {
	tuned, err := TuneCutoff(damping.Cisco(), interval, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tuned.Validate(); err != nil {
		t.Fatal(err)
	}
	if tuned.CutoffThreshold <= tuned.ReuseThreshold {
		t.Fatal("tuned cutoff below reuse threshold")
	}
}
