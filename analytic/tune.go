package analytic

import (
	"fmt"
	"math"
	"time"

	"rfd/damping"
)

// Section 3 of the paper observes that the router adjacent to an unstable
// link "can largely control the trade-off by setting appropriate penalty
// increments, cut-off threshold, and reuse threshold. The configuration can
// be tuned so that a small number of flaps does not trigger any damping
// delay, while a large number of flaps is suppressed." This file implements
// that tuning: given a flapping pattern, compute the cut-off threshold that
// places the suppression onset exactly at a desired pulse count.

// OnsetPenalties returns the penalty value right after each event of an
// n-pulse train (indices 0..2n-1), which is what a cut-off threshold is
// compared against.
func OnsetPenalties(params damping.Params, pulses int, interval time.Duration) ([]float64, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	state := damping.NewState(params)
	events := PulseTrain(pulses, interval)
	out := make([]float64, 0, len(events))
	for _, e := range events {
		ev := state.Update(e.At, e.Kind, true)
		out = append(out, ev.Penalty)
	}
	return out, nil
}

// CutoffRange computes the half-open interval [low, high) of cut-off
// thresholds that make the origin link's suppression onset fall exactly at
// pulse `onset` of the given pulse train: the penalty must exceed the
// cut-off during pulse `onset` but not during pulse `onset−1`. The peak
// penalty grows with each pulse (for intervals short enough that the decay
// between pulses does not dominate), so the range is well defined; an error
// is returned when it is empty (e.g. slow flapping where the penalty
// plateaus and no threshold can separate consecutive pulses).
func CutoffRange(params damping.Params, interval time.Duration, onset int) (low, high float64, err error) {
	if onset < 1 {
		return 0, 0, fmt.Errorf("analytic: onset %d must be >= 1", onset)
	}
	// Peak penalty within each pulse i (events 2i and 2i+1).
	peaks, err := OnsetPenalties(params, onset+1, interval)
	if err != nil {
		return 0, 0, err
	}
	peak := func(pulse int) float64 { // 1-based
		a := peaks[2*(pulse-1)]
		b := peaks[2*(pulse-1)+1]
		return math.Max(a, b)
	}
	high = peak(onset)
	low = 0
	if onset > 1 {
		low = peak(onset - 1)
	}
	// The cut-off must also stay above the reuse threshold to be a valid
	// configuration.
	if low < params.ReuseThreshold {
		low = params.ReuseThreshold
	}
	if low >= high {
		return 0, 0, fmt.Errorf("analytic: no cut-off places the onset at pulse %d (peaks %v >= %v)",
			onset, low, high)
	}
	return low, high, nil
}

// TuneCutoff returns params with the cut-off threshold set to the midpoint
// of CutoffRange, i.e. tuned so the origin link is suppressed exactly at
// pulse `onset` for the given flapping interval.
func TuneCutoff(params damping.Params, interval time.Duration, onset int) (damping.Params, error) {
	low, high, err := CutoffRange(params, interval, onset)
	if err != nil {
		return damping.Params{}, err
	}
	params.CutoffThreshold = (low + high) / 2
	if err := params.Validate(); err != nil {
		return damping.Params{}, err
	}
	return params, nil
}
