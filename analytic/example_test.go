package analytic_test

import (
	"fmt"
	"time"

	"rfd/analytic"
	"rfd/damping"
)

// ExamplePredictPulses computes the paper's intended convergence time
// (Section 3): n = 2 pulses never suppress under Cisco parameters, while
// n = 5 suppresses and pays the reuse delay.
func ExamplePredictPulses() {
	tup := 2 * time.Minute
	for _, n := range []int{2, 5} {
		pred, _ := analytic.PredictPulses(damping.Cisco(), n, 60*time.Second, tup)
		fmt.Printf("n=%d suppressed=%-5t intended convergence %s\n",
			n, pred.Suppressed, pred.Convergence.Round(time.Minute))
	}
	// Output:
	// n=2 suppressed=false intended convergence 2m0s
	// n=5 suppressed=true  intended convergence 38m0s
}
