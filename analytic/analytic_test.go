package analytic

import (
	"math"
	"testing"
	"time"

	"rfd/damping"
)

const interval = 60 * time.Second

func TestPulseTrainShape(t *testing.T) {
	events := PulseTrain(3, interval)
	if len(events) != 6 {
		t.Fatalf("len = %d, want 6", len(events))
	}
	for i, e := range events {
		wantAt := time.Duration(i) * interval
		if e.At != wantAt {
			t.Fatalf("event %d at %v, want %v", i, e.At, wantAt)
		}
		wantKind := damping.KindWithdrawal
		if i%2 == 1 {
			wantKind = damping.KindReannouncement
		}
		if e.Kind != wantKind {
			t.Fatalf("event %d kind %v, want %v", i, e.Kind, wantKind)
		}
	}
	// The final event is always an announcement (Section 5.1).
	if events[len(events)-1].Kind != damping.KindReannouncement {
		t.Fatal("final event is not an announcement")
	}
}

func TestPulseTrainEmpty(t *testing.T) {
	if PulseTrain(0, interval) != nil {
		t.Fatal("PulseTrain(0) != nil")
	}
	if PulseTrain(-3, interval) != nil {
		t.Fatal("PulseTrain(-3) != nil")
	}
}

func TestPredictNoFlapsNoDelay(t *testing.T) {
	// With no flaps there is no final announcement, so there is no
	// convergence event at all.
	pred, err := PredictPulses(damping.Cisco(), 0, interval, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Suppressed || pred.Convergence != 0 {
		t.Fatalf("prediction = %+v", pred)
	}
}

// TestIntendedBehaviorSmallFlapCounts pins the paper's Section 5.2
// discussion: with Cisco parameters and 60 s flapping interval, n = 1 and 2
// do not trigger suppression (intended convergence = normal t_up), n >= 3 do.
func TestIntendedBehaviorSmallFlapCounts(t *testing.T) {
	tup := 30 * time.Second
	for n := 1; n <= 10; n++ {
		pred, err := PredictPulses(damping.Cisco(), n, interval, tup)
		if err != nil {
			t.Fatal(err)
		}
		if n < 3 {
			if pred.Suppressed {
				t.Fatalf("n=%d: suppressed, want not suppressed", n)
			}
			if pred.Convergence != tup {
				t.Fatalf("n=%d: convergence %v, want %v", n, pred.Convergence, tup)
			}
		} else {
			if !pred.Suppressed {
				t.Fatalf("n=%d: not suppressed, want suppressed", n)
			}
			if pred.Convergence <= 20*time.Minute {
				// Section 3: with Cisco defaults r is at least 20 minutes.
				t.Fatalf("n=%d: convergence %v, want > 20m", n, pred.Convergence)
			}
		}
	}
}

func TestPenaltyAccumulationMatchesClosedForm(t *testing.T) {
	// p(k) = Σ f(i)·e^{−λ Σ_{j>i} w(j)} + f(k) — evaluate the closed form
	// directly for 3 pulses and compare.
	params := damping.Cisco()
	lambda := params.Lambda()
	pred, err := PredictPulses(params, 3, interval, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Withdrawals at 0, 120, 240 s; announcements contribute 0 with Cisco.
	// Final event (announcement) at 300 s.
	want := 1000*math.Exp(-lambda*300) + 1000*math.Exp(-lambda*180) + 1000*math.Exp(-lambda*60)
	if math.Abs(pred.FinalPenalty-want) > 1e-6 {
		t.Fatalf("final penalty = %v, closed form = %v", pred.FinalPenalty, want)
	}
}

func TestSuppressionOnset(t *testing.T) {
	got, err := SuppressionOnset(damping.Cisco(), interval, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("Cisco onset = %d, want 3", got)
	}
	got, err = SuppressionOnset(damping.Juniper(), interval, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("Juniper onset = %d, want 2", got)
	}
}

func TestSuppressionOnsetNever(t *testing.T) {
	// Slow flapping (one pulse per 2 hours) never accumulates enough
	// penalty under Cisco parameters.
	got, err := SuppressionOnset(damping.Cisco(), 2*time.Hour, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("onset = %d, want 0 (never)", got)
	}
}

func TestConvergenceMonotoneInPulses(t *testing.T) {
	// More pulses ⇒ higher final penalty ⇒ longer intended convergence,
	// saturating at the max hold-down.
	params := damping.Cisco()
	prev := time.Duration(0)
	for n := 3; n <= 12; n++ {
		pred, err := PredictPulses(params, n, interval, 0)
		if err != nil {
			t.Fatal(err)
		}
		if pred.Convergence < prev {
			t.Fatalf("n=%d: convergence %v < previous %v", n, pred.Convergence, prev)
		}
		if pred.Convergence > params.MaxHoldDown {
			t.Fatalf("n=%d: convergence %v beyond max hold-down", n, pred.Convergence)
		}
		prev = pred.Convergence
	}
}

func TestPredictMidTrainReuse(t *testing.T) {
	// Rapid burst suppresses, then a multi-hour gap lets the reuse timer
	// fire before the next (single) withdrawal; the final state must not be
	// suppressed (one fresh withdrawal alone cannot re-suppress).
	params := damping.Cisco()
	events := []FlapEvent{
		{At: 0, Kind: damping.KindWithdrawal},
		{At: 1 * time.Second, Kind: damping.KindReannouncement},
		{At: 2 * time.Second, Kind: damping.KindWithdrawal},
		{At: 3 * time.Second, Kind: damping.KindReannouncement},
		{At: 4 * time.Second, Kind: damping.KindWithdrawal},
		{At: 3 * time.Hour, Kind: damping.KindWithdrawal},
	}
	pred, err := Predict(params, events, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pred.SuppressedAtEvent != 5 {
		t.Fatalf("suppressed at event %d, want 5", pred.SuppressedAtEvent)
	}
	if pred.Suppressed {
		t.Fatal("still suppressed after mid-train reuse plus one withdrawal")
	}
}

func TestPredictRejectsBadInput(t *testing.T) {
	bad := damping.Cisco()
	bad.HalfLife = 0
	if _, err := Predict(bad, nil, 0); err == nil {
		t.Fatal("invalid params accepted")
	}
	events := []FlapEvent{
		{At: time.Minute, Kind: damping.KindWithdrawal},
		{At: time.Second, Kind: damping.KindReannouncement},
	}
	if _, err := Predict(damping.Cisco(), events, 0); err == nil {
		t.Fatal("out-of-order events accepted")
	}
}

func TestPenaltyTraceShape(t *testing.T) {
	events := PulseTrain(3, interval)
	trace, err := PenaltyTrace(damping.Cisco(), events, 20*time.Minute, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	// Monotone time.
	for i := 1; i < len(trace); i++ {
		if trace[i].At < trace[i-1].At {
			t.Fatalf("trace time goes backwards at %d", i)
		}
	}
	// The peak must be the post-third-withdrawal value ≈ 2744.
	max := 0.0
	for _, p := range trace {
		if p.Penalty > max {
			max = p.Penalty
		}
	}
	if math.Abs(max-2744) > 10 {
		t.Fatalf("trace max = %v, want ≈2744", max)
	}
	// The trace decays after the last event: final sample below reuse-ish
	// levels after 20 minutes of decay from ~2700.
	final := trace[len(trace)-1].Penalty
	if final >= max || final <= 0 {
		t.Fatalf("final penalty %v not decaying from max %v", final, max)
	}
}

func TestPenaltyTraceValidation(t *testing.T) {
	if _, err := PenaltyTrace(damping.Cisco(), nil, time.Minute, 0); err == nil {
		t.Fatal("zero spacing accepted")
	}
	bad := damping.Cisco()
	bad.ReuseThreshold = -1
	if _, err := PenaltyTrace(bad, nil, time.Minute, time.Second); err == nil {
		t.Fatal("invalid params accepted")
	}
}
