package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterministicStream(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %d != %d", i, av, bv)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical values in 100 draws", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		t.Fatal("all-zero internal state")
	}
	if a, b := r.Uint64(), r.Uint64(); a == 0 && b == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestKnownFirstValuesStable(t *testing.T) {
	// Pin the stream so accidental algorithm changes (which would silently
	// change every experiment result) are caught.
	r := New(12345)
	got := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	r2 := New(12345)
	want := []uint64{r2.Uint64(), r2.Uint64(), r2.Uint64()}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("stream not reproducible at %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnCoversAllValues(t *testing.T) {
	r := New(9)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		seen[r.Intn(5)] = true
	}
	for v := 0; v < 5; v++ {
		if !seen[v] {
			t.Fatalf("Intn(5) never produced %d in 1000 draws", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(13)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(17)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(10, 20)
		if v < 10 || v >= 20 {
			t.Fatalf("Uniform(10,20) = %v out of range", v)
		}
	}
}

func TestUniformDegenerate(t *testing.T) {
	r := New(17)
	if v := r.Uniform(5, 5); v != 5 {
		t.Fatalf("Uniform(5,5) = %v, want 5", v)
	}
}

func TestUniformPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uniform(2,1) did not panic")
		}
	}()
	New(1).Uniform(2, 1)
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(19)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 = %v < 0", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1.0) > 0.02 {
		t.Fatalf("ExpFloat64 mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(29)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("Shuffle changed element multiset: sum %d != %d", got, sum)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(31)
	child := parent.Split()
	// The child stream must not simply replay the parent stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("child stream tracks parent stream (%d/100 equal)", same)
	}
}

func TestIntnDeterministicAcrossInstances(t *testing.T) {
	// Property: two generators with the same seed agree on Intn for any bound.
	f := func(seed uint64, n uint16) bool {
		bound := int(n%1000) + 1
		a, b := New(seed), New(seed)
		for i := 0; i < 10; i++ {
			if a.Intn(bound) != b.Intn(bound) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnUnbiasedSmallBound(t *testing.T) {
	// Chi-square-ish sanity check for Intn(3): each bucket within 5% of n/3.
	r := New(37)
	const n = 90000
	var counts [3]int
	for i := 0; i < n; i++ {
		counts[r.Intn(3)]++
	}
	for b, c := range counts {
		if math.Abs(float64(c)-n/3.0) > 0.05*n/3.0 {
			t.Fatalf("Intn(3) bucket %d count %d deviates from %d", b, c, n/3)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}
