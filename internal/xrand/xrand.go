// Package xrand provides a small, fast, deterministic pseudo-random number
// generator for simulations.
//
// The simulator requires bit-for-bit reproducible runs across Go releases and
// platforms. math/rand's generator and its convenience helpers have changed
// behaviour between Go versions (and math/rand/v2 re-seeds differently), so
// the kernel uses this self-contained implementation instead: a splitmix64
// seed expander feeding a xoshiro256** state, the same construction used by
// the Go runtime and by math/rand/v2 internally.
//
// Rand is not safe for concurrent use; every simulation run owns its own
// instance. Derive independent child generators with Split.
package xrand

import (
	"math"
	"math/bits"
)

// Rand is a deterministic pseudo-random number generator.
// The zero value is not usable; construct with New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed. Two generators built
// from the same seed produce identical streams.
func New(seed uint64) *Rand {
	var r Rand
	// splitmix64 expansion, recommended seeding procedure for xoshiro.
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro must not be seeded with an all-zero state; splitmix64 cannot
	// produce one from any seed, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// Split derives a new generator whose stream is independent of the parent's
// subsequent output. Use it to give each subsystem (links, timers, …) its own
// stream so adding a consumer does not perturb the others.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

// State returns the generator's full internal state. Together with SetState
// and FromState it lets a caller checkpoint a stream mid-run and later resume
// it at exactly the same position — the basis of the simulator's
// snapshot/fork capability.
func (r *Rand) State() [4]uint64 { return r.s }

// SetState overwrites the generator's internal state with a value previously
// obtained from State. The next Uint64 continues the captured stream.
func (r *Rand) SetState(s [4]uint64) { r.s = s }

// Clone returns an independent generator at the same stream position: both
// copies produce the identical remaining sequence without affecting each
// other.
func (r *Rand) Clone() *Rand {
	c := *r
	return &c
}

// FromState constructs a generator resuming the stream captured by State.
func FromState(s [4]uint64) *Rand {
	return &Rand{s: s}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream (xoshiro256**).
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Int63 returns a non-negative random int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0, mirroring
// math/rand; callers control n and a non-positive bound is a programming
// error, not a runtime condition.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and branch-cheap.
	bound := uint64(n)
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform value in [lo, hi). It panics if hi < lo.
func (r *Rand) Uniform(lo, hi float64) float64 {
	if hi < lo {
		panic("xrand: Uniform called with hi < lo")
	}
	return lo + (hi-lo)*r.Float64()
}

// ExpFloat64 returns an exponentially distributed value with rate 1, via
// inverse-transform sampling (deterministic and branch-free, unlike ziggurat).
func (r *Rand) ExpFloat64() float64 {
	// 1-Float64() is in (0,1], so Log never sees zero.
	return -math.Log(1 - r.Float64())
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided swap
// function, mirroring math/rand.Shuffle.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	if n < 0 {
		panic("xrand: Shuffle called with negative n")
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
