package asciiplot

import (
	"bytes"
	"strings"
	"testing"
)

func TestPlotBasic(t *testing.T) {
	var buf bytes.Buffer
	err := Plot(&buf, "demo", []Series{
		{Name: "linear", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
		{Name: "flat", X: []float64{0, 1, 2, 3}, Y: []float64{1, 1, 1, 1}},
	}, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "demo") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "* linear") || !strings.Contains(out, "+ flat") {
		t.Fatalf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("missing markers")
	}
	// Rows: title + height + axis + xlabel + 2 legend = 10+5.
	if got := len(strings.Split(strings.TrimRight(out, "\n"), "\n")); got != 15 {
		t.Fatalf("unexpected line count %d:\n%s", got, out)
	}
}

func TestPlotErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Plot(&buf, "", nil, 40, 10); err == nil {
		t.Fatal("no series accepted")
	}
	if err := Plot(&buf, "", []Series{{Name: "s", X: []float64{1}, Y: nil}}, 40, 10); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if err := Plot(&buf, "", []Series{{Name: "s"}}, 40, 10); err == nil {
		t.Fatal("empty series accepted")
	}
	if err := Plot(&buf, "", []Series{{Name: "s", X: []float64{1}, Y: []float64{1}}}, 4, 2); err == nil {
		t.Fatal("tiny chart accepted")
	}
}

func TestPlotDegenerateRanges(t *testing.T) {
	var buf bytes.Buffer
	// Single point: both ranges degenerate; must not panic or divide by zero.
	err := Plot(&buf, "", []Series{{Name: "pt", X: []float64{5}, Y: []float64{5}}}, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "*") {
		t.Fatal("point not plotted")
	}
}

func TestPlotAnchorsYAtZero(t *testing.T) {
	var buf bytes.Buffer
	err := Plot(&buf, "", []Series{{Name: "s", X: []float64{0, 1}, Y: []float64{5, 10}}}, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "         0 |") {
		t.Fatalf("y axis not anchored at 0:\n%s", buf.String())
	}
}
