// Package asciiplot renders simple text line charts for the command-line
// tools, so every paper figure can be eyeballed straight from a terminal
// without plotting dependencies.
package asciiplot

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name string
	X, Y []float64
}

// markers assigned to series in order.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Plot renders the series onto a width×height character grid with y-axis
// labels and a legend. Series with mismatched X/Y lengths or charts smaller
// than 8×4 are rejected.
func Plot(w io.Writer, title string, series []Series, width, height int) error {
	if width < 8 || height < 4 {
		return fmt.Errorf("asciiplot: chart %dx%d too small", width, height)
	}
	if len(series) == 0 {
		return fmt.Errorf("asciiplot: no series")
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("asciiplot: series %q has %d x values and %d y values", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			points++
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if points == 0 {
		return fmt.Errorf("asciiplot: all series empty")
	}
	if minY > 0 {
		minY = 0 // anchor the paper-style axes at zero
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			col := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(width-1)))
			row := int(math.Round((s.Y[i] - minY) / (maxY - minY) * float64(height-1)))
			r := height - 1 - row
			grid[r][col] = m
		}
	}

	bw := bufio.NewWriter(w)
	if title != "" {
		fmt.Fprintf(bw, "%s\n", title)
	}
	label := func(v float64) string { return fmt.Sprintf("%10.4g", v) }
	for r := 0; r < height; r++ {
		switch r {
		case 0:
			fmt.Fprintf(bw, "%s |%s\n", label(maxY), grid[r])
		case height - 1:
			fmt.Fprintf(bw, "%s |%s\n", label(minY), grid[r])
		default:
			fmt.Fprintf(bw, "%s |%s\n", strings.Repeat(" ", 10), grid[r])
		}
	}
	fmt.Fprintf(bw, "%s +%s\n", strings.Repeat(" ", 10), strings.Repeat("-", width))
	fmt.Fprintf(bw, "%s  %-*s%s\n", strings.Repeat(" ", 10), width-10, fmt.Sprintf("%.4g", minX), fmt.Sprintf("%10.4g", maxX))
	for si, s := range series {
		fmt.Fprintf(bw, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return bw.Flush()
}
