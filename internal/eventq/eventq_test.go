package eventq

import (
	"testing"
	"testing/quick"
	"time"

	"rfd/internal/xrand"
)

func TestEmptyQueue(t *testing.T) {
	var q Queue
	if q.Len() != 0 {
		t.Fatalf("Len = %d, want 0", q.Len())
	}
	if q.Peek() != nil {
		t.Fatal("Peek on empty queue != nil")
	}
	if q.Pop() != nil {
		t.Fatal("Pop on empty queue != nil")
	}
}

func TestPopOrderByTime(t *testing.T) {
	var q Queue
	times := []time.Duration{5, 1, 3, 2, 4}
	for _, d := range times {
		q.Push(d*time.Second, d)
	}
	var got []time.Duration
	for q.Len() > 0 {
		got = append(got, q.Pop().Time)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("out of order: %v", got)
		}
	}
	if len(got) != len(times) {
		t.Fatalf("popped %d items, want %d", len(got), len(times))
	}
}

func TestFIFOAmongEqualTimes(t *testing.T) {
	var q Queue
	const at = 10 * time.Second
	for i := 0; i < 50; i++ {
		q.Push(at, i)
	}
	for i := 0; i < 50; i++ {
		it := q.Pop()
		if it.Payload.(int) != i {
			t.Fatalf("equal-time items fired out of push order: got %v at pos %d", it.Payload, i)
		}
	}
}

func TestPeekMatchesPop(t *testing.T) {
	var q Queue
	q.Push(3*time.Second, "c")
	q.Push(1*time.Second, "a")
	q.Push(2*time.Second, "b")
	for q.Len() > 0 {
		p := q.Peek()
		if got := q.Pop(); got != p {
			t.Fatalf("Peek %v != Pop %v", p.Payload, got.Payload)
		}
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	a := q.Push(1*time.Second, "a")
	b := q.Push(2*time.Second, "b")
	c := q.Push(3*time.Second, "c")
	if !q.Cancel(b) {
		t.Fatal("Cancel(b) = false, want true")
	}
	if b.Scheduled() {
		t.Fatal("b still reports scheduled after cancel")
	}
	if q.Cancel(b) {
		t.Fatal("second Cancel(b) = true, want false")
	}
	if got := q.Pop(); got != a {
		t.Fatalf("first pop = %v, want a", got.Payload)
	}
	if got := q.Pop(); got != c {
		t.Fatalf("second pop = %v, want c", got.Payload)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after draining, want 0", q.Len())
	}
}

func TestCancelHead(t *testing.T) {
	var q Queue
	a := q.Push(1*time.Second, "a")
	q.Push(2*time.Second, "b")
	if !q.Cancel(a) {
		t.Fatal("Cancel(head) failed")
	}
	if got := q.Pop(); got.Payload != "b" {
		t.Fatalf("pop = %v, want b", got.Payload)
	}
}

func TestCancelPoppedItemIsNoop(t *testing.T) {
	var q Queue
	a := q.Push(1*time.Second, "a")
	q.Pop()
	if q.Cancel(a) {
		t.Fatal("Cancel of popped item returned true")
	}
}

func TestCancelNil(t *testing.T) {
	var q Queue
	if q.Cancel(nil) {
		t.Fatal("Cancel(nil) = true")
	}
}

func TestReschedule(t *testing.T) {
	var q Queue
	a := q.Push(1*time.Second, "a")
	b := q.Push(2*time.Second, "b")
	// Move a after b.
	if !q.Reschedule(a, 5*time.Second) {
		t.Fatal("Reschedule returned false for scheduled item")
	}
	if got := q.Pop(); got != b {
		t.Fatalf("pop = %v, want b", got.Payload)
	}
	if got := q.Pop(); got != a {
		t.Fatalf("pop = %v, want a", got.Payload)
	}
	if got, want := a.Time, 5*time.Second; got != want {
		t.Fatalf("rescheduled time = %v, want %v", got, want)
	}
}

func TestRescheduleEarlier(t *testing.T) {
	var q Queue
	a := q.Push(10*time.Second, "a")
	q.Push(2*time.Second, "b")
	if !q.Reschedule(a, 1*time.Second) {
		t.Fatal("Reschedule failed")
	}
	if got := q.Pop(); got != a {
		t.Fatalf("pop = %v, want a after rescheduling earlier", got.Payload)
	}
}

func TestRescheduleFiredItemFails(t *testing.T) {
	var q Queue
	a := q.Push(1*time.Second, "a")
	q.Pop()
	if q.Reschedule(a, 2*time.Second) {
		t.Fatal("Reschedule of fired item returned true")
	}
}

func TestScheduledReporting(t *testing.T) {
	var q Queue
	a := q.Push(1*time.Second, "a")
	if !a.Scheduled() {
		t.Fatal("freshly pushed item not Scheduled")
	}
	q.Pop()
	if a.Scheduled() {
		t.Fatal("popped item still Scheduled")
	}
	var nilItem *Item
	if nilItem.Scheduled() {
		t.Fatal("nil item reports Scheduled")
	}
}

func TestInterleavedPushPop(t *testing.T) {
	var q Queue
	q.Push(5*time.Second, 5)
	q.Push(1*time.Second, 1)
	if got := q.Pop().Payload.(int); got != 1 {
		t.Fatalf("pop = %d, want 1", got)
	}
	q.Push(3*time.Second, 3)
	q.Push(2*time.Second, 2)
	want := []int{2, 3, 5}
	for _, w := range want {
		if got := q.Pop().Payload.(int); got != w {
			t.Fatalf("pop = %d, want %d", got, w)
		}
	}
}

// TestRandomizedHeapProperty drives the queue with a random mix of operations
// and checks, against a shadow set of live items, that every pop returns the
// (time, seq)-minimum of the items currently scheduled.
func TestRandomizedHeapProperty(t *testing.T) {
	r := xrand.New(99)
	var q Queue
	live := make(map[*Item]bool)
	for op := 0; op < 20000; op++ {
		switch r.Intn(4) {
		case 0, 1: // push
			it := q.Push(time.Duration(r.Intn(1000))*time.Millisecond, op)
			live[it] = true
		case 2: // pop
			it := q.Pop()
			if it == nil {
				if len(live) != 0 {
					t.Fatalf("op %d: queue empty but %d live items tracked", op, len(live))
				}
				continue
			}
			if !live[it] {
				t.Fatalf("op %d: popped item not in live set", op)
			}
			for other := range live {
				if other == it {
					continue
				}
				if other.Time < it.Time || (other.Time == it.Time && other.seq < it.seq) {
					t.Fatalf("op %d: popped (%v,%d) but (%v,%d) was scheduled",
						op, it.Time, it.seq, other.Time, other.seq)
				}
			}
			delete(live, it)
		case 3: // cancel or reschedule a random live item
			for it := range live {
				if r.Intn(2) == 0 {
					if !q.Cancel(it) {
						t.Fatalf("op %d: Cancel of live item failed", op)
					}
					delete(live, it)
				} else if !q.Reschedule(it, time.Duration(r.Intn(1000))*time.Millisecond) {
					t.Fatalf("op %d: Reschedule of live item failed", op)
				}
				break
			}
		}
	}
	if q.Len() != len(live) {
		t.Fatalf("queue length %d != tracked live set %d", q.Len(), len(live))
	}
}

func TestQuickPushPopSorted(t *testing.T) {
	f := func(ms []uint16) bool {
		var q Queue
		for _, m := range ms {
			q.Push(time.Duration(m)*time.Millisecond, nil)
		}
		prev := time.Duration(-1)
		for q.Len() > 0 {
			it := q.Pop()
			if it.Time < prev {
				return false
			}
			prev = it.Time
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	r := xrand.New(1)
	var q Queue
	for i := 0; i < b.N; i++ {
		q.Push(time.Duration(r.Intn(1<<20)), nil)
		if q.Len() > 1024 {
			q.Pop()
		}
	}
}
