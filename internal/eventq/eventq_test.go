package eventq

import (
	"testing"
	"testing/quick"
	"time"

	"rfd/internal/xrand"
)

func TestEmptyQueue(t *testing.T) {
	var q Queue[string]
	if q.Len() != 0 {
		t.Fatalf("Len = %d, want 0", q.Len())
	}
	if _, ok := q.PeekTime(); ok {
		t.Fatal("PeekTime on empty queue reported an entry")
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue reported an entry")
	}
}

func TestPopOrderByTime(t *testing.T) {
	var q Queue[time.Duration]
	times := []time.Duration{5, 1, 3, 2, 4}
	for _, d := range times {
		q.Push(d*time.Second, d)
	}
	var got []time.Duration
	for q.Len() > 0 {
		at, _, _ := q.Pop()
		got = append(got, at)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("out of order: %v", got)
		}
	}
	if len(got) != len(times) {
		t.Fatalf("popped %d items, want %d", len(got), len(times))
	}
}

func TestFIFOAmongEqualTimes(t *testing.T) {
	var q Queue[int]
	const at = 10 * time.Second
	for i := 0; i < 50; i++ {
		q.Push(at, i)
	}
	for i := 0; i < 50; i++ {
		_, got, ok := q.Pop()
		if !ok || got != i {
			t.Fatalf("equal-time items fired out of push order: got %d at pos %d", got, i)
		}
	}
}

func TestPeekMatchesPop(t *testing.T) {
	var q Queue[string]
	q.Push(3*time.Second, "c")
	q.Push(1*time.Second, "a")
	q.Push(2*time.Second, "b")
	for q.Len() > 0 {
		pt, _ := q.PeekTime()
		at, _, _ := q.Pop()
		if at != pt {
			t.Fatalf("PeekTime %v != popped time %v", pt, at)
		}
	}
}

func TestCancel(t *testing.T) {
	var q Queue[string]
	q.Push(1*time.Second, "a")
	b := q.Push(2*time.Second, "b")
	q.Push(3*time.Second, "c")
	if !q.Cancel(b) {
		t.Fatal("Cancel(b) = false, want true")
	}
	if q.Scheduled(b) {
		t.Fatal("b still reports scheduled after cancel")
	}
	if q.Cancel(b) {
		t.Fatal("second Cancel(b) = true, want false")
	}
	if _, got, _ := q.Pop(); got != "a" {
		t.Fatalf("first pop = %q, want a", got)
	}
	if _, got, _ := q.Pop(); got != "c" {
		t.Fatalf("second pop = %q, want c", got)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after draining, want 0", q.Len())
	}
}

func TestCancelHead(t *testing.T) {
	var q Queue[string]
	a := q.Push(1*time.Second, "a")
	q.Push(2*time.Second, "b")
	if !q.Cancel(a) {
		t.Fatal("Cancel(head) failed")
	}
	if _, got, _ := q.Pop(); got != "b" {
		t.Fatalf("pop = %q, want b", got)
	}
}

func TestCancelPoppedEntryIsNoop(t *testing.T) {
	var q Queue[string]
	a := q.Push(1*time.Second, "a")
	q.Pop()
	if q.Cancel(a) {
		t.Fatal("Cancel of popped entry returned true")
	}
}

func TestZeroHandleIsInert(t *testing.T) {
	var q Queue[string]
	var h Handle
	if q.Cancel(h) {
		t.Fatal("Cancel(zero) = true")
	}
	if q.Reschedule(h, time.Second) {
		t.Fatal("Reschedule(zero) = true")
	}
	if q.Scheduled(h) {
		t.Fatal("Scheduled(zero) = true")
	}
	if _, ok := q.When(h); ok {
		t.Fatal("When(zero) reported a time")
	}
}

// TestStaleHandleAfterSlotReuse pins the generation mechanism: a handle must
// stay invalid even after its slot is recycled for a new entry.
func TestStaleHandleAfterSlotReuse(t *testing.T) {
	var q Queue[string]
	a := q.Push(1*time.Second, "a")
	q.Pop() // frees a's slot
	b := q.Push(2*time.Second, "b")
	if a == b {
		t.Fatal("recycled slot produced an identical handle")
	}
	if q.Scheduled(a) {
		t.Fatal("stale handle reports scheduled after slot reuse")
	}
	if q.Cancel(a) {
		t.Fatal("stale handle cancelled the slot's new entry")
	}
	if !q.Scheduled(b) {
		t.Fatal("new entry not scheduled")
	}
}

func TestReschedule(t *testing.T) {
	var q Queue[string]
	a := q.Push(1*time.Second, "a")
	q.Push(2*time.Second, "b")
	// Move a after b.
	if !q.Reschedule(a, 5*time.Second) {
		t.Fatal("Reschedule returned false for scheduled entry")
	}
	if _, got, _ := q.Pop(); got != "b" {
		t.Fatalf("pop = %q, want b", got)
	}
	at, got, _ := q.Pop()
	if got != "a" {
		t.Fatalf("pop = %q, want a", got)
	}
	if at != 5*time.Second {
		t.Fatalf("rescheduled time = %v, want 5s", at)
	}
}

func TestRescheduleEarlier(t *testing.T) {
	var q Queue[string]
	a := q.Push(10*time.Second, "a")
	q.Push(2*time.Second, "b")
	if !q.Reschedule(a, 1*time.Second) {
		t.Fatal("Reschedule failed")
	}
	if _, got, _ := q.Pop(); got != "a" {
		t.Fatalf("pop = %q, want a after rescheduling earlier", got)
	}
}

func TestRescheduleFiredEntryFails(t *testing.T) {
	var q Queue[string]
	a := q.Push(1*time.Second, "a")
	q.Pop()
	if q.Reschedule(a, 2*time.Second) {
		t.Fatal("Reschedule of fired entry returned true")
	}
}

// TestRescheduleKeepsSeq verifies a rescheduled entry keeps its original
// sequence number: among equal times it still fires in original push order.
func TestRescheduleKeepsSeq(t *testing.T) {
	var q Queue[string]
	a := q.Push(1*time.Second, "a")
	q.Push(5*time.Second, "b")
	if !q.Reschedule(a, 5*time.Second) {
		t.Fatal("Reschedule failed")
	}
	if _, got, _ := q.Pop(); got != "a" {
		t.Fatalf("pop = %q, want a (original seq wins among equal times)", got)
	}
}

func TestScheduledReporting(t *testing.T) {
	var q Queue[string]
	a := q.Push(1*time.Second, "a")
	if !q.Scheduled(a) {
		t.Fatal("freshly pushed entry not Scheduled")
	}
	if at, ok := q.When(a); !ok || at != time.Second {
		t.Fatalf("When = (%v, %t), want (1s, true)", at, ok)
	}
	q.Pop()
	if q.Scheduled(a) {
		t.Fatal("popped entry still Scheduled")
	}
}

func TestInterleavedPushPop(t *testing.T) {
	var q Queue[int]
	q.Push(5*time.Second, 5)
	q.Push(1*time.Second, 1)
	if _, got, _ := q.Pop(); got != 1 {
		t.Fatalf("pop = %d, want 1", got)
	}
	q.Push(3*time.Second, 3)
	q.Push(2*time.Second, 2)
	want := []int{2, 3, 5}
	for _, w := range want {
		if _, got, _ := q.Pop(); got != w {
			t.Fatalf("pop = %d, want %d", got, w)
		}
	}
}

// TestSteadyStatePushPopDoesNotAllocate pins the slab design's point: once
// the slab has grown to the working-set size, scheduling is allocation-free.
func TestSteadyStatePushPopDoesNotAllocate(t *testing.T) {
	var q Queue[uint64]
	r := xrand.New(7)
	for i := 0; i < 1024; i++ {
		q.Push(time.Duration(r.Intn(1<<20)), uint64(i))
	}
	allocs := testing.AllocsPerRun(1000, func() {
		q.Pop()
		q.Push(time.Duration(r.Intn(1<<20)), 1)
	})
	if allocs != 0 {
		t.Fatalf("steady-state push/pop allocates %.1f per op, want 0", allocs)
	}
}

// TestRandomizedHeapProperty drives the queue with a random mix of operations
// and checks, against a shadow set of live entries, that every pop returns
// the (time, seq)-minimum of the entries currently scheduled.
func TestRandomizedHeapProperty(t *testing.T) {
	r := xrand.New(99)
	var q Queue[int]
	type meta struct {
		at  time.Duration
		seq int
	}
	live := make(map[Handle]meta)
	seq := 0
	for op := 0; op < 20000; op++ {
		switch r.Intn(4) {
		case 0, 1: // push
			at := time.Duration(r.Intn(1000)) * time.Millisecond
			h := q.Push(at, seq)
			live[h] = meta{at: at, seq: seq}
			seq++
		case 2: // pop
			at, got, ok := q.Pop()
			if !ok {
				if len(live) != 0 {
					t.Fatalf("op %d: queue empty but %d live entries tracked", op, len(live))
				}
				continue
			}
			var popped Handle
			found := false
			for h, m := range live {
				if m.seq == got {
					popped, found = h, true
					break
				}
			}
			if !found {
				t.Fatalf("op %d: popped entry %d not in live set", op, got)
			}
			if live[popped].at != at {
				t.Fatalf("op %d: popped time %v != tracked %v", op, at, live[popped].at)
			}
			for h, m := range live {
				if h == popped {
					continue
				}
				if m.at < at || (m.at == at && m.seq < got) {
					t.Fatalf("op %d: popped (%v,%d) but (%v,%d) was scheduled",
						op, at, got, m.at, m.seq)
				}
			}
			delete(live, popped)
		case 3: // cancel or reschedule a random live entry
			for h, m := range live {
				if r.Intn(2) == 0 {
					if !q.Cancel(h) {
						t.Fatalf("op %d: Cancel of live entry failed", op)
					}
					delete(live, h)
				} else {
					at := time.Duration(r.Intn(1000)) * time.Millisecond
					if !q.Reschedule(h, at) {
						t.Fatalf("op %d: Reschedule of live entry failed", op)
					}
					m.at = at
					live[h] = m
				}
				break
			}
		}
	}
	if q.Len() != len(live) {
		t.Fatalf("queue length %d != tracked live set %d", q.Len(), len(live))
	}
}

func TestQuickPushPopSorted(t *testing.T) {
	f := func(ms []uint16) bool {
		var q Queue[struct{}]
		for _, m := range ms {
			q.Push(time.Duration(m)*time.Millisecond, struct{}{})
		}
		prev := time.Duration(-1)
		for q.Len() > 0 {
			at, _, _ := q.Pop()
			if at < prev {
				return false
			}
			prev = at
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	r := xrand.New(1)
	var q Queue[int]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(time.Duration(r.Intn(1<<20)), i)
		if q.Len() > 1024 {
			q.Pop()
		}
	}
}
