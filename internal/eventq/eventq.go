// Package eventq implements the priority queue that drives the discrete-event
// simulation kernel.
//
// It is an indexed binary min-heap ordered by (time, sequence number): events
// scheduled for the same instant fire in the order they were scheduled, which
// is what makes whole-network simulations deterministic. Entries can be
// cancelled or rescheduled in O(log n) via the Handle returned at push time,
// which the BGP engine uses for MRAI and damping reuse timers.
//
// The queue is slab-backed: entries live in a freelist-managed slice of slots
// rather than one heap allocation each, and handles are (index, generation)
// pairs instead of pointers. In steady state — pushes balanced by pops and
// cancels — scheduling allocates nothing, which keeps the simulator's
// per-event cost out of the garbage collector entirely. The generation
// counter makes stale handles (fired or cancelled entries, even after their
// slot has been reused) reliably detectable.
package eventq

import "time"

// Handle identifies a scheduled entry. The zero Handle is invalid and inert:
// Cancel, Reschedule, Scheduled and When all treat it as "not scheduled".
// Handles stay invalid after their entry fires or is cancelled, even once the
// underlying slot is reused for a later entry.
type Handle struct {
	idx int32
	gen uint32
}

// slot is one slab cell. A slot is live when pos >= 0; freeing it bumps gen
// (invalidating outstanding handles) and zeroes the payload so the queue
// never retains references through fired events.
type slot[P any] struct {
	time    time.Duration
	seq     uint64
	payload P
	gen     uint32
	pos     int32 // index into heap; -1 when free
}

// Queue is a deterministic time-ordered priority queue with payload type P.
// The zero value is an empty queue ready for use. Entries pushed with equal
// times fire in push order (FIFO by sequence number).
type Queue[P any] struct {
	slots   []slot[P]
	heap    []int32 // heap[i] is a slot index
	free    []int32 // free slot indices
	nextSeq uint64
}

// Len returns the number of pending entries.
func (q *Queue[P]) Len() int { return len(q.heap) }

// Push schedules payload at time t and returns a handle usable with Cancel,
// Reschedule and When. Entries pushed with equal t fire in push order.
func (q *Queue[P]) Push(t time.Duration, payload P) Handle {
	var idx int32
	if n := len(q.free); n > 0 {
		idx = q.free[n-1]
		q.free = q.free[:n-1]
	} else {
		q.slots = append(q.slots, slot[P]{gen: 1})
		idx = int32(len(q.slots) - 1)
	}
	s := &q.slots[idx]
	s.time = t
	s.seq = q.nextSeq
	s.payload = payload
	s.pos = int32(len(q.heap))
	q.nextSeq++
	q.heap = append(q.heap, idx)
	q.up(int(s.pos))
	return Handle{idx: idx, gen: s.gen}
}

// PeekTime returns the time of the earliest entry and whether one exists.
func (q *Queue[P]) PeekTime() (time.Duration, bool) {
	if len(q.heap) == 0 {
		return 0, false
	}
	return q.slots[q.heap[0]].time, true
}

// Pop removes the earliest entry and returns its time and payload. ok is
// false when the queue is empty. The entry's handle becomes invalid.
func (q *Queue[P]) Pop() (at time.Duration, payload P, ok bool) {
	if len(q.heap) == 0 {
		return 0, payload, false
	}
	idx := q.heap[0]
	s := &q.slots[idx]
	at = s.time
	payload = s.payload
	q.removeAt(0)
	return at, payload, true
}

// Cancel removes the entry h refers to. It reports whether the entry was
// still scheduled; cancelling a fired, cancelled or zero handle is a no-op.
func (q *Queue[P]) Cancel(h Handle) bool {
	s := q.lookup(h)
	if s == nil {
		return false
	}
	q.removeAt(int(s.pos))
	return true
}

// Reschedule moves a still-scheduled entry to a new time, keeping its
// payload. It reports whether the entry was scheduled. A rescheduled entry
// keeps its original sequence number, so among equal times it still fires in
// original push order.
func (q *Queue[P]) Reschedule(h Handle, t time.Duration) bool {
	s := q.lookup(h)
	if s == nil {
		return false
	}
	s.time = t
	if !q.down(int(s.pos)) {
		q.up(int(s.pos))
	}
	return true
}

// Scheduled reports whether h refers to a still-pending entry.
func (q *Queue[P]) Scheduled(h Handle) bool { return q.lookup(h) != nil }

// When returns the time a still-scheduled entry fires at. ok is false for
// fired, cancelled or zero handles.
func (q *Queue[P]) When(h Handle) (time.Duration, bool) {
	s := q.lookup(h)
	if s == nil {
		return 0, false
	}
	return s.time, true
}

// Clone returns a deep copy of the queue. The copy is independently mutable,
// and — because slot indices, generations and sequence numbers are preserved
// exactly — a Handle obtained from the original resolves to the corresponding
// entry in the clone. Payloads are copied by assignment; payloads containing
// pointers share referents with the original, which the caller must remap if
// the referents are themselves copied (see sim.Kernel.RemapHandlers).
func (q *Queue[P]) Clone() *Queue[P] {
	c := &Queue[P]{nextSeq: q.nextSeq}
	if q.slots != nil {
		c.slots = append(make([]slot[P], 0, len(q.slots)), q.slots...)
	}
	if q.heap != nil {
		c.heap = append(make([]int32, 0, len(q.heap)), q.heap...)
	}
	if q.free != nil {
		c.free = append(make([]int32, 0, len(q.free)), q.free...)
	}
	return c
}

// ForEach calls f for every pending entry, passing a pointer to its payload
// so f may mutate it in place. Iteration order is heap order, not fire order;
// f must not add or remove entries.
func (q *Queue[P]) ForEach(f func(at time.Duration, payload *P)) {
	for _, idx := range q.heap {
		s := &q.slots[idx]
		f(s.time, &s.payload)
	}
}

// lookup resolves a handle to its live slot, nil when stale or invalid.
func (q *Queue[P]) lookup(h Handle) *slot[P] {
	if h.gen == 0 || int(h.idx) >= len(q.slots) {
		return nil
	}
	s := &q.slots[h.idx]
	if s.gen != h.gen || s.pos < 0 {
		return nil
	}
	return s
}

// removeAt deletes the heap entry at position i and frees its slot.
func (q *Queue[P]) removeAt(i int) {
	idx := q.heap[i]
	last := len(q.heap) - 1
	if i != last {
		q.swap(i, last)
	}
	q.heap = q.heap[:last]
	if i < last {
		if !q.down(i) {
			q.up(i)
		}
	}
	s := &q.slots[idx]
	s.pos = -1
	s.gen++
	var zero P
	s.payload = zero
	q.free = append(q.free, idx)
}

// less orders heap positions by (time, seq).
func (q *Queue[P]) less(i, j int) bool {
	a, b := &q.slots[q.heap[i]], &q.slots[q.heap[j]]
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

func (q *Queue[P]) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.slots[q.heap[i]].pos = int32(i)
	q.slots[q.heap[j]].pos = int32(j)
}

func (q *Queue[P]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

// down sifts the entry at position i toward the leaves; reports whether it
// moved.
func (q *Queue[P]) down(i int) bool {
	start := i
	n := len(q.heap)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && q.less(right, left) {
			child = right
		}
		if !q.less(child, i) {
			break
		}
		q.swap(i, child)
		i = child
	}
	return i != start
}
