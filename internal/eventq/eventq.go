// Package eventq implements the priority queue that drives the discrete-event
// simulation kernel.
//
// It is an indexed binary min-heap ordered by (time, sequence number): events
// scheduled for the same instant fire in the order they were scheduled, which
// is what makes whole-network simulations deterministic. Entries can be
// cancelled or rescheduled in O(log n) via the handle returned at push time,
// which the BGP engine uses for MRAI and damping reuse timers.
package eventq

import "time"

// Item is a scheduled entry. The queue owns the Time/seq/index fields;
// Payload is opaque to it.
type Item struct {
	// Time is the virtual instant the item fires at.
	Time time.Duration
	// Payload is the caller's event data.
	Payload any

	seq   uint64
	index int // position in heap; -1 once removed
}

// Scheduled reports whether the item is still in a queue (i.e., has neither
// fired nor been cancelled).
func (it *Item) Scheduled() bool { return it != nil && it.index >= 0 }

// Queue is a deterministic time-ordered priority queue.
// The zero value is an empty queue ready for use.
type Queue struct {
	items   []*Item
	nextSeq uint64
}

// Len returns the number of pending items.
func (q *Queue) Len() int { return len(q.items) }

// Push schedules payload at time t and returns a handle usable with Cancel
// and Reschedule. Items pushed with equal t fire in push order.
func (q *Queue) Push(t time.Duration, payload any) *Item {
	it := &Item{Time: t, Payload: payload, seq: q.nextSeq}
	q.nextSeq++
	it.index = len(q.items)
	q.items = append(q.items, it)
	q.up(it.index)
	return it
}

// Peek returns the earliest item without removing it, or nil if empty.
func (q *Queue) Peek() *Item {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

// Pop removes and returns the earliest item, or nil if empty.
func (q *Queue) Pop() *Item {
	if len(q.items) == 0 {
		return nil
	}
	it := q.items[0]
	q.remove(0)
	return it
}

// Cancel removes it from the queue. It reports whether the item was still
// scheduled; cancelling an already-fired or already-cancelled item is a no-op.
func (q *Queue) Cancel(it *Item) bool {
	if it == nil || it.index < 0 || it.index >= len(q.items) || q.items[it.index] != it {
		return false
	}
	q.remove(it.index)
	return true
}

// Reschedule moves a still-scheduled item to a new time, keeping its payload.
// It reports whether the item was scheduled. A rescheduled item keeps its
// original sequence number, so among equal times it still fires in original
// push order.
func (q *Queue) Reschedule(it *Item, t time.Duration) bool {
	if it == nil || it.index < 0 || it.index >= len(q.items) || q.items[it.index] != it {
		return false
	}
	it.Time = t
	if !q.down(it.index) {
		q.up(it.index)
	}
	return true
}

// less orders by (Time, seq).
func (q *Queue) less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.seq < b.seq
}

func (q *Queue) swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.items[i].index = i
	q.items[j].index = j
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

// down sifts the item at i toward the leaves; reports whether it moved.
func (q *Queue) down(i int) bool {
	start := i
	n := len(q.items)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && q.less(right, left) {
			child = right
		}
		if !q.less(child, i) {
			break
		}
		q.swap(i, child)
		i = child
	}
	return i != start
}

// remove deletes the item at position i.
func (q *Queue) remove(i int) {
	it := q.items[i]
	last := len(q.items) - 1
	if i != last {
		q.swap(i, last)
	}
	q.items[last] = nil
	q.items = q.items[:last]
	it.index = -1
	if i < last {
		if !q.down(i) {
			q.up(i)
		}
	}
}
