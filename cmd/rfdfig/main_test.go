package main

import "testing"

// TestFigureOrder pins the -fig all execution order. The dispatch used to
// iterate a map, so artifacts were produced in a different order on every
// invocation; the order is now part of the CLI contract.
func TestFigureOrder(t *testing.T) {
	want := []string{
		"table1", "fig3", "fig7", "fig8", "fig9", "fig10", "fig13", "fig14",
		"fig15", "deployment", "filters", "intervals", "sizes", "events", "loss",
	}
	if len(figures) != len(want) {
		t.Fatalf("got %d figures, want %d", len(figures), len(want))
	}
	for i, f := range figures {
		if f.name != want[i] {
			t.Errorf("figures[%d] = %q, want %q", i, f.name, want[i])
		}
		if f.fn == nil {
			t.Errorf("figures[%d] (%q) has nil generator", i, f.name)
		}
	}
}

// TestFigureNamesUnique guards against a copy-paste duplicate shadowing a
// figure (with the map this was impossible; with the slice a duplicate would
// silently run one generator twice).
func TestFigureNamesUnique(t *testing.T) {
	seen := make(map[string]bool, len(figures))
	for _, f := range figures {
		if seen[f.name] {
			t.Errorf("duplicate figure name %q", f.name)
		}
		seen[f.name] = true
	}
}
