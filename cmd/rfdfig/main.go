// Command rfdfig regenerates the tables and figures of "Timer Interaction in
// Route Flap Damping" (ICDCS 2005): CSV data files plus ASCII previews.
//
// Examples:
//
//	rfdfig -fig fig8 -out out/            # Fig 8 at paper scale (slow-ish)
//	rfdfig -fig all -small -out out/      # everything, reduced scale
//	rfdfig -fig fig3                      # print to stdout (no -out)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"rfd/damping"
	"rfd/experiment"
	"rfd/experiment/diskcache"
	"rfd/internal/asciiplot"
)

func main() {
	// Ctrl-C / SIGTERM cancels every in-flight sweep via the options context;
	// partially written figure files are abandoned where they are.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rfdfig:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("rfdfig", flag.ContinueOnError)
	var (
		fig      = fs.String("fig", "all", "table1 | fig3 | fig7 | fig8 | fig9 | fig10 | fig13 | fig14 | fig15 | deployment | filters | intervals | sizes | events | loss | all")
		outDir   = fs.String("out", "", "directory for CSV output (stdout when empty)")
		small    = fs.Bool("small", false, "reduced scale (5x5 mesh, 30/40-node internet, 4 pulses) for quick runs")
		seed     = fs.Uint64("seed", 1, "random seed")
		noPlot   = fs.Bool("noplot", false, "suppress ASCII previews")
		workers  = fs.Int("workers", runtime.NumCPU(), "parallel simulation runs per sweep")
		noCache  = fs.Bool("nocache", false, "disable the cross-figure run cache (re-run scenarios shared between figures)")
		cacheDir = fs.String("cachedir", "", "persist the run cache in this directory (shared with rfdd; survives restarts)")
		check    = fs.Bool("check", false, "run every scenario under the runtime invariant checker (slower; any violation fails the figure)")
		engine   = fs.String("damping-engine", "exact", "damping backend for every run: exact | wheel (timer-wheel batch engine)")
		shards   = fs.Int("shards", 1, "run every scenario on the sharded engine with this many shards (1 = sequential; figures are identical either way)")
		progress = fs.Bool("progress", false, "print a live line per warm-up/sweep point to stderr as each completes (long figure builds stop being silent)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := experiment.DefaultOptions()
	opts.Seed = *seed
	opts.Workers = *workers
	opts.Check = *check
	opts.Ctx = ctx
	if *progress {
		// Every sweep/checkpoint a figure runs reports through the options
		// context; cache-served points show up flagged as cached.
		opts.Ctx = experiment.WithProgress(ctx, experiment.TextProgress(os.Stderr))
	}
	if *shards > 1 {
		if *check {
			return fmt.Errorf("-check and -shards are incompatible (the invariant checker is sequential-engine)")
		}
		opts.Shards = *shards
	}
	var err error
	opts.DampingEngine, err = damping.ParseEngine(*engine)
	if err != nil {
		return fmt.Errorf("bad -damping-engine: %w", err)
	}
	if !*noCache {
		opts.Cache = experiment.NewRunCache()
		if *cacheDir != "" {
			disk, err := diskcache.Open(*cacheDir)
			if err != nil {
				return err
			}
			opts.Cache.SetStore(disk)
		}
	} else if *cacheDir != "" {
		return fmt.Errorf("-cachedir requires the run cache (drop -nocache)")
	}
	if *small {
		opts.MeshRows, opts.MeshCols = 5, 5
		opts.InternetNodes = 30
		opts.PolicyNodes = 40
		opts.MaxPulses = 4
	}

	g := &generator{opts: opts, outDir: *outDir, plot: !*noPlot}
	all := *fig == "all"
	ran := false
	for _, f := range figures {
		if all || *fig == f.name {
			ran = true
			if err := f.fn(g); err != nil {
				return fmt.Errorf("%s: %w", f.name, err)
			}
		}
	}
	if !ran {
		return fmt.Errorf("unknown -fig %q", *fig)
	}
	if hits, misses, uncacheable := opts.Cache.Stats(); hits+misses+uncacheable > 0 {
		fmt.Printf("run cache: %d hits, %d misses, %d uncacheable\n", hits, misses, uncacheable)
		if storeHits, storeErrors := opts.Cache.StoreStats(); *cacheDir != "" {
			fmt.Printf("disk cache: %d served from %s, %d store errors\n", storeHits, *cacheDir, storeErrors)
		}
	}
	return nil
}

// figure is one named generator step.
type figure struct {
	name string
	fn   func(*generator) error
}

// figures lists every generator in the fixed order -fig all runs them.
// The previous map-based dispatch iterated in Go's randomized map order, so
// consecutive `rfdfig -fig all` invocations produced their artifacts (and
// "wrote ..." lines) in different sequences; the slice makes the order part
// of the CLI contract. TestFigureOrder pins it.
var figures = []figure{
	{"table1", (*generator).table1},
	{"fig3", (*generator).fig3},
	{"fig7", (*generator).fig7},
	{"fig8", (*generator).eval}, // fig8/9/13/14 share one evaluation pass
	{"fig9", (*generator).eval},
	{"fig10", (*generator).fig10},
	{"fig13", (*generator).eval},
	{"fig14", (*generator).eval},
	{"fig15", (*generator).fig15},
	// Extensions beyond the paper's figures (tech-report variations).
	{"deployment", (*generator).deployment},
	{"filters", (*generator).filters},
	{"intervals", (*generator).intervals},
	{"sizes", (*generator).sizes},
	{"events", (*generator).events},
	{"loss", (*generator).loss},
}

// generator carries shared state so the eval pass runs once even when
// several of figs 8/9/13/14 are requested.
type generator struct {
	opts    experiment.Options
	outDir  string
	plot    bool
	evalRan bool
}

// sink returns the writer for one artifact (file under outDir, else stdout).
func (g *generator) sink(name string) (io.Writer, func() error, error) {
	if g.outDir == "" {
		fmt.Printf("--- %s ---\n", name)
		return os.Stdout, func() error { return nil }, nil
	}
	if err := os.MkdirAll(g.outDir, 0o755); err != nil {
		return nil, nil, err
	}
	f, err := os.Create(filepath.Join(g.outDir, name))
	if err != nil {
		return nil, nil, err
	}
	fmt.Printf("wrote %s\n", filepath.Join(g.outDir, name))
	return f, f.Close, nil
}

func (g *generator) table1() error {
	w, done, err := g.sink("table1.csv")
	if err != nil {
		return err
	}
	if err := experiment.WriteTable1CSV(w); err != nil {
		return err
	}
	return done()
}

func (g *generator) fig3() error {
	data, err := experiment.Fig3(g.opts)
	if err != nil {
		return err
	}
	w, done, err := g.sink("fig3_penalty.csv")
	if err != nil {
		return err
	}
	if err := data.WriteCSV(w); err != nil {
		return err
	}
	if err := done(); err != nil {
		return err
	}
	if g.plot {
		var xs, ys []float64
		for _, p := range data.Trace {
			xs = append(xs, p.At.Seconds())
			ys = append(ys, p.Penalty)
		}
		return asciiplot.Plot(os.Stdout, "Fig 3: damping penalty (cutoff 2000, reuse 750)",
			[]asciiplot.Series{{Name: "penalty", X: xs, Y: ys}}, 72, 16)
	}
	return nil
}

func (g *generator) fig7() error {
	data, err := experiment.Fig7(g.opts)
	if err != nil {
		return err
	}
	w, done, err := g.sink("fig7_penalty.csv")
	if err != nil {
		return err
	}
	if err := data.WriteCSV(w); err != nil {
		return err
	}
	if err := done(); err != nil {
		return err
	}
	fmt.Printf("fig7: watched router %d peer %d; %d secondary-charging increments; convergence %.0f s\n",
		data.Watched.Router, data.Watched.Peer, data.Recharges, data.Result.ConvergenceTime.Seconds())
	if g.plot && len(data.Trace) > 0 {
		var xs, ys []float64
		for _, p := range data.Trace {
			xs = append(xs, p.At.Seconds())
			ys = append(ys, p.Penalty)
		}
		return asciiplot.Plot(os.Stdout, "Fig 7: penalty at a remote router (single pulse, secondary charging)",
			[]asciiplot.Series{{Name: "penalty", X: xs, Y: ys}}, 72, 16)
	}
	return nil
}

func (g *generator) eval() error {
	if g.evalRan {
		return nil
	}
	g.evalRan = true
	start := time.Now()
	data, err := experiment.Eval(g.opts)
	if err != nil {
		return err
	}
	fmt.Printf("eval: %d pulse counts x 4 configurations in %v (critical point Nh = %d)\n",
		len(data.Rows), time.Since(start).Round(time.Second), data.Nh)
	for _, out := range []struct {
		name  string
		write func(io.Writer) error
	}{
		// Fixed order: artifacts must appear deterministically (see figures).
		{"fig8_convergence.csv", data.WriteFig8CSV},
		{"fig9_messages.csv", data.WriteFig9CSV},
		{"fig13_rcn_convergence.csv", data.WriteFig13CSV},
		{"fig14_rcn_messages.csv", data.WriteFig14CSV},
	} {
		w, done, err := g.sink(out.name)
		if err != nil {
			return err
		}
		if err := out.write(w); err != nil {
			return err
		}
		if err := done(); err != nil {
			return err
		}
	}
	if !g.plot {
		return nil
	}
	var xs, noDamp, damp, inet, rcnC, calc []float64
	for _, r := range data.Rows {
		xs = append(xs, float64(r.Pulses))
		noDamp = append(noDamp, r.NoDampingMeshConv.Seconds())
		damp = append(damp, r.DampingMeshConv.Seconds())
		inet = append(inet, r.DampingInternetConv.Seconds())
		rcnC = append(rcnC, r.RCNMeshConv.Seconds())
		calc = append(calc, r.CalcConv.Seconds())
	}
	return asciiplot.Plot(os.Stdout, "Fig 8/13: convergence time (s) vs pulses",
		[]asciiplot.Series{
			{Name: "no damping (mesh)", X: xs, Y: noDamp},
			{Name: "full damping (mesh)", X: xs, Y: damp},
			{Name: "full damping (internet)", X: xs, Y: inet},
			{Name: "damping + RCN", X: xs, Y: rcnC},
			{Name: "calculation", X: xs, Y: calc},
		}, 72, 18)
}

func (g *generator) fig10() error {
	data, err := experiment.Fig10(g.opts)
	if err != nil {
		return err
	}
	w, done, err := g.sink("fig10_series.csv")
	if err != nil {
		return err
	}
	if err := data.WriteCSV(w); err != nil {
		return err
	}
	if err := done(); err != nil {
		return err
	}
	for _, n := range []int{1, 3, 5} {
		res := data.Runs[n]
		fmt.Printf("fig10 n=%d: convergence %.0f s, %d updates, peak damped links %d, %s\n",
			n, res.ConvergenceTime.Seconds(), res.MessageCount, res.MaxDamped, res.Phases)
	}
	return nil
}

func (g *generator) deployment() error {
	rows, err := experiment.PartialDeployment(g.opts, []int{0, 25, 50, 75, 100}, 1)
	if err != nil {
		return err
	}
	w, done, err := g.sink("ext_deployment.csv")
	if err != nil {
		return err
	}
	if err := experiment.WriteDeploymentCSV(w, rows); err != nil {
		return err
	}
	return done()
}

func (g *generator) filters() error {
	rows, err := experiment.FilterComparison(g.opts, experiment.PulseRange(0, g.opts.MaxPulses))
	if err != nil {
		return err
	}
	w, done, err := g.sink("ext_filters.csv")
	if err != nil {
		return err
	}
	if err := experiment.WriteFilterCSV(w, rows); err != nil {
		return err
	}
	if err := done(); err != nil {
		return err
	}
	if !g.plot {
		return nil
	}
	var xs, classic, selective, rcnC, intended []float64
	for _, r := range rows {
		xs = append(xs, float64(r.Pulses))
		classic = append(classic, r.Classic.Seconds())
		selective = append(selective, r.Selective.Seconds())
		rcnC = append(rcnC, r.RCN.Seconds())
		intended = append(intended, r.Intended.Seconds())
	}
	return asciiplot.Plot(os.Stdout, "Penalty filters: convergence time (s) vs pulses",
		[]asciiplot.Series{
			{Name: "classic damping", X: xs, Y: classic},
			{Name: "selective damping (Mao et al.)", X: xs, Y: selective},
			{Name: "RCN-enhanced", X: xs, Y: rcnC},
			{Name: "intended", X: xs, Y: intended},
		}, 72, 16)
}

func (g *generator) intervals() error {
	rows, err := experiment.FlapIntervalSweep(g.opts, []time.Duration{
		15 * time.Second, 30 * time.Second, 60 * time.Second,
		2 * time.Minute, 5 * time.Minute, 15 * time.Minute, 30 * time.Minute,
	}, 3)
	if err != nil {
		return err
	}
	w, done, err := g.sink("ext_intervals.csv")
	if err != nil {
		return err
	}
	if err := experiment.WriteIntervalCSV(w, rows); err != nil {
		return err
	}
	return done()
}

func (g *generator) sizes() error {
	sides := []int{4, 6, 8, 10, 12}
	if g.opts.MeshRows < 10 { // -small
		sides = []int{4, 5, 6}
	}
	rows, err := experiment.TopologySizeSweep(g.opts, sides, 1)
	if err != nil {
		return err
	}
	w, done, err := g.sink("ext_sizes.csv")
	if err != nil {
		return err
	}
	if err := experiment.WriteSizeCSV(w, rows); err != nil {
		return err
	}
	return done()
}

func (g *generator) events() error {
	rows, err := experiment.ConvergenceEvents(g.opts)
	if err != nil {
		return err
	}
	w, done, err := g.sink("ext_events.csv")
	if err != nil {
		return err
	}
	if err := experiment.WriteEventsCSV(w, rows); err != nil {
		return err
	}
	return done()
}

func (g *generator) loss() error {
	rows, err := experiment.LossSweep(g.opts, experiment.DefaultLossRates, 2)
	if err != nil {
		return err
	}
	w, done, err := g.sink("ext_loss.csv")
	if err != nil {
		return err
	}
	if err := experiment.WriteLossCSV(w, rows); err != nil {
		return err
	}
	if err := done(); err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("loss %5.1f%%: plain %4.0f s (%s), damped %4.0f s peak %d damped links (%s), %d+%d dropped\n",
			r.Rate*100, r.Plain.Conv.Seconds(), r.Plain.Outcome,
			r.Damped.Conv.Seconds(), r.Damped.MaxDamped, r.Damped.Outcome,
			r.Plain.Dropped, r.Damped.Dropped)
	}
	return nil
}

func (g *generator) fig15() error {
	data, err := experiment.Fig15(g.opts)
	if err != nil {
		return err
	}
	w, done, err := g.sink("fig15_policy.csv")
	if err != nil {
		return err
	}
	if err := data.WriteCSV(w); err != nil {
		return err
	}
	if err := done(); err != nil {
		return err
	}
	if !g.plot {
		return nil
	}
	var xs, withPol, noPol, intended []float64
	for _, r := range data.Rows {
		xs = append(xs, float64(r.Pulses))
		withPol = append(withPol, r.WithPolicy.Seconds())
		noPol = append(noPol, r.NoPolicy.Seconds())
		intended = append(intended, r.Intended.Seconds())
	}
	return asciiplot.Plot(os.Stdout, fmt.Sprintf("Fig 15: policy impact (%d-node internet)", data.Nodes),
		[]asciiplot.Series{
			{Name: "with policy (no-valley)", X: xs, Y: withPol},
			{Name: "no policy (shortest path)", X: xs, Y: noPol},
			{Name: "intended (calculation)", X: xs, Y: intended},
		}, 72, 16)
}
