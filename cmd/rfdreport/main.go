// Command rfdreport runs the complete evaluation — every paper figure plus
// the extension experiments — and writes one self-contained Markdown report.
//
// Examples:
//
//	rfdreport > report.md            # paper scale (~30 s)
//	rfdreport -small                 # reduced scale, seconds
//	rfdreport -seed 7 -o report7.md  # different randomness
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"rfd/experiment"
)

func main() {
	// Ctrl-C / SIGTERM cancels the report's sweeps mid-run; an -o file is
	// left incomplete rather than silently truncated to a valid-looking one.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rfdreport:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("rfdreport", flag.ContinueOnError)
	var (
		small = fs.Bool("small", false, "reduced scale for quick runs")
		seed  = fs.Uint64("seed", 1, "random seed")
		out   = fs.String("o", "", "output file (stdout when empty)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := experiment.DefaultOptions()
	opts.Seed = *seed
	opts.Ctx = ctx
	if *small {
		opts.MeshRows, opts.MeshCols = 5, 5
		opts.InternetNodes = 30
		opts.PolicyNodes = 40
		opts.MaxPulses = 4
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return experiment.WriteReport(w, opts)
}
