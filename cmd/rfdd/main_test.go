package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func testServer(t *testing.T, cfg serverConfig) *server {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.Concurrency == 0 {
		cfg.Concurrency = 2
	}
	if cfg.Queue == 0 {
		cfg.Queue = 4
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = time.Minute
	}
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postSweep(t *testing.T, h http.Handler, body string) (*httptest.ResponseRecorder, sweepResponse) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep", bytes.NewReader([]byte(body)))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var resp sweepResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad response body %q: %v", rec.Body.String(), err)
	}
	return rec, resp
}

func TestSweepEndpoint(t *testing.T) {
	s := testServer(t, serverConfig{})
	h := s.routes()
	rec, resp := postSweep(t, h, `{"rows":4,"cols":4,"damping":"cisco","pulses":[0,1,2]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	if len(resp.Points) != 3 || resp.Error != "" {
		t.Fatalf("response = %+v", resp)
	}
	for i, want := range []int{0, 1, 2} {
		p := resp.Points[i]
		if p.Pulses != want || p.Error != "" {
			t.Fatalf("point %d = %+v", i, p)
		}
		if want > 0 && (p.ConvergenceSecs <= 0 || p.Messages <= 0) {
			t.Fatalf("point n=%d has empty measurements: %+v", want, p)
		}
	}

	// Same request again: served from the shared cache, no new misses.
	_, m1, _ := s.cache.Stats()
	rec2, _ := postSweep(t, h, `{"rows":4,"cols":4,"damping":"cisco","pulses":[0,1,2]}`)
	if rec2.Code != http.StatusOK {
		t.Fatalf("second sweep status = %d", rec2.Code)
	}
	if hits, m2, _ := s.cache.Stats(); m2 != m1 || hits < 3 {
		t.Fatalf("second sweep not cache-served: hits=%d misses %d -> %d", hits, m1, m2)
	}
}

func TestSweepPartialFailure(t *testing.T) {
	s := testServer(t, serverConfig{})
	rec, resp := postSweep(t, s.routes(), `{"rows":3,"cols":3,"pulses":[0,-1,1]}`)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 for a failed point", rec.Code)
	}
	if resp.Error == "" {
		t.Fatal("no top-level error for a failed point")
	}
	if resp.Points[0].Error != "" || resp.Points[2].Error != "" {
		t.Fatalf("healthy points carry errors: %+v", resp.Points)
	}
	if resp.Points[1].Error == "" {
		t.Fatal("invalid point carries no error")
	}
}

func TestSweepBadRequests(t *testing.T) {
	s := testServer(t, serverConfig{})
	h := s.routes()
	for _, tc := range []struct {
		name, body string
	}{
		{"malformed JSON", `{`},
		{"unknown topology", `{"topology":"hypercube"}`},
		{"unknown damping", `{"damping":"strict"}`},
		{"rcn without damping", `{"rcn":true}`},
		{"too many points", `{"pulses":[` + strings.Repeat("1,", 64) + `1]}`},
	} {
		req := httptest.NewRequest(http.MethodPost, "/v1/sweep", bytes.NewReader([]byte(tc.body)))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, rec.Code)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/sweep", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/sweep status = %d, want 405", rec.Code)
	}
}

func TestSweepDeadline(t *testing.T) {
	s := testServer(t, serverConfig{})
	// Paper-scale mesh: each point runs hundreds of thousands of events, so
	// a 1 ms deadline is exhausted mid-run with certainty.
	rec, resp := postSweep(t, s.routes(),
		`{"rows":10,"cols":10,"damping":"cisco","pulses":[8,9,10],"timeout_ms":1}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504 for an exhausted deadline", rec.Code, rec.Body)
	}
	if !strings.Contains(resp.Error, "budget") {
		t.Fatalf("error %q does not name the budget", resp.Error)
	}
}

// TestAdmissionControl fills every run and queue slot by hand, then checks
// the next request bounces with 429 — deterministically, no racing sweeps.
func TestAdmissionControl(t *testing.T) {
	s := testServer(t, serverConfig{Concurrency: 1, Queue: 1})
	for i := 0; i < cap(s.queueSlots); i++ {
		s.queueSlots <- struct{}{}
	}
	rec, resp := postSweep(t, s.routes(), `{"rows":3,"cols":3,"pulses":[0]}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 with a full queue", rec.Code)
	}
	if !strings.Contains(resp.Error, "queue full") {
		t.Fatalf("error %q does not name the full queue", resp.Error)
	}
	// Free the slots: the same request is now admitted.
	for i := 0; i < cap(s.queueSlots); i++ {
		<-s.queueSlots
	}
	rec, _ = postSweep(t, s.routes(), `{"rows":3,"cols":3,"pulses":[0]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status after slots freed = %d, want 200", rec.Code)
	}
	if len(s.runSlots) != 0 || len(s.queueSlots) != 0 {
		t.Fatalf("slots leaked: run=%d queue=%d", len(s.runSlots), len(s.queueSlots))
	}
}

func TestHealthz(t *testing.T) {
	dir := t.TempDir()
	s := testServer(t, serverConfig{CacheDir: dir})
	h := s.routes()
	// One sweep so the stats are non-trivial.
	if rec, _ := postSweep(t, h, `{"rows":3,"cols":3,"pulses":[0,1]}`); rec.Code != http.StatusOK {
		t.Fatalf("sweep status = %d", rec.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status = %d", rec.Code)
	}
	var hz healthz
	if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.MemoryOnly {
		t.Fatalf("healthz = %+v", hz)
	}
	if hz.CacheMisses != 2 || hz.DiskStores != 2 {
		t.Fatalf("healthz stats = %+v, want 2 misses stored to disk", hz)
	}
	if hz.Running != 0 || hz.Queued != 0 {
		t.Fatalf("healthz admission = running %d queued %d, want idle", hz.Running, hz.Queued)
	}
	if hz.DiskCacheDir != dir {
		t.Fatalf("healthz cache dir = %q, want %q", hz.DiskCacheDir, dir)
	}
}

// TestSnapshotPool pins the converged-snapshot pool end to end: a repeat
// request for the same scenario with fresh pulse counts forks the pooled
// warm-up instead of re-converging, and healthz surfaces the pool counters.
func TestSnapshotPool(t *testing.T) {
	s := testServer(t, serverConfig{Snapshots: 4})
	if s.pool == nil {
		t.Fatal("Snapshots > 0 did not wire a checkpoint pool")
	}
	h := s.routes()
	if rec, _ := postSweep(t, h, `{"rows":4,"cols":4,"damping":"cisco","pulses":[0,1]}`); rec.Code != http.StatusOK {
		t.Fatalf("first sweep status = %d", rec.Code)
	}
	if rec, _ := postSweep(t, h, `{"rows":4,"cols":4,"damping":"cisco","pulses":[2,3]}`); rec.Code != http.StatusOK {
		t.Fatalf("second sweep status = %d", rec.Code)
	}
	hits, misses, _ := s.pool.Stats()
	if misses != 1 || hits < 1 {
		t.Fatalf("pool stats hits=%d misses=%d, want one warm-up reused by the second sweep", hits, misses)
	}

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status = %d", rec.Code)
	}
	var hz healthz
	if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.SnapshotCapacity != 4 || hz.SnapshotsPooled != 1 {
		t.Fatalf("healthz pool shape = capacity %d pooled %d, want 4/1", hz.SnapshotCapacity, hz.SnapshotsPooled)
	}
	if hz.SnapshotHits != hits || hz.SnapshotMisses != misses {
		t.Fatalf("healthz pool stats = %d/%d, pool reports %d/%d", hz.SnapshotHits, hz.SnapshotMisses, hits, misses)
	}
}

// TestSnapshotPoolConcurrent races several sweeps sharing one warm-up through
// the full HTTP stack: singleflight population must converge exactly once.
// Under -race this doubles as the pool's integration race check.
func TestSnapshotPoolConcurrent(t *testing.T) {
	s := testServer(t, serverConfig{Snapshots: 4, Concurrency: 4, Queue: 8})
	h := s.routes()
	var wg sync.WaitGroup
	codes := make([]int, 4)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := `{"rows":4,"cols":4,"damping":"cisco","pulses":[` + strconv.Itoa(i) + `]}`
			req := httptest.NewRequest(http.MethodPost, "/v1/sweep", bytes.NewReader([]byte(body)))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			codes[i] = rec.Code
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("sweep %d status = %d", i, code)
		}
	}
	if hits, misses, _ := s.pool.Stats(); misses != 1 || hits != 3 {
		t.Fatalf("pool stats hits=%d misses=%d, want 3/1 (singleflight warm-up)", hits, misses)
	}
}

func TestFigureEndpoint(t *testing.T) {
	s := testServer(t, serverConfig{})
	h := s.routes()
	for _, name := range []string{"table1", "fig3"} {
		req := httptest.NewRequest(http.MethodGet, "/v1/figure?name="+name, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s status = %d: %s", name, rec.Code, rec.Body)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "text/csv" {
			t.Errorf("%s content type = %q", name, ct)
		}
		if !strings.Contains(rec.Body.String(), ",") {
			t.Errorf("%s body does not look like CSV: %q", name, rec.Body.String()[:40])
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/figure?name=fig99", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown figure status = %d, want 400", rec.Code)
	}
}

// TestGracefulDrain runs the real serve loop on a loopback port, starts a
// sweep, sends the shutdown signal mid-request, and checks (a) the in-flight
// request completes and (b) the serve loop exits cleanly.
func TestGracefulDrain(t *testing.T) {
	s := testServer(t, serverConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	srvErr := make(chan error, 1)
	addr := "127.0.0.1:18473"
	go func() { srvErr <- run(ctx, addr, 30*time.Second, s) }()
	waitHealthy(t, addr)

	reqErr := make(chan error, 1)
	status := make(chan int, 1)
	go func() {
		resp, err := http.Post("http://"+addr+"/v1/sweep", "application/json",
			strings.NewReader(`{"rows":5,"cols":5,"damping":"cisco","pulses":[0,1,2,3]}`))
		if err != nil {
			reqErr <- err
			return
		}
		defer resp.Body.Close()
		status <- resp.StatusCode
		reqErr <- nil
	}()
	time.Sleep(20 * time.Millisecond) // let the request reach the handler
	cancel()                          // stands in for SIGTERM (same ctx path)

	select {
	case err := <-reqErr:
		if err != nil {
			t.Fatalf("in-flight request failed during drain: %v", err)
		}
		if code := <-status; code != http.StatusOK {
			t.Fatalf("in-flight request status = %d", code)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("in-flight request never completed during drain")
	}
	select {
	case err := <-srvErr:
		if err != nil {
			t.Fatalf("serve loop exited with %v, want clean drain", err)
		}
	case <-time.After(35 * time.Second):
		t.Fatal("serve loop did not exit after the drain")
	}
}

func waitHealthy(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("daemon never became healthy")
}
