package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestSweepTopologyBounds: oversized or negative topology requests are
// rejected with 400 before any allocation. Pre-fix, a single
// {"rows":100000,"cols":100000} request would try to build a 10^10-router
// mesh and OOM the daemon straight past admission control.
func TestSweepTopologyBounds(t *testing.T) {
	s := testServer(t, serverConfig{})
	h := s.routes()
	for _, tc := range []struct {
		name, body, wantErr string
	}{
		{"huge mesh", `{"rows":100000,"cols":100000}`, "router limit"},
		{"huge side", `{"rows":70000,"cols":1}`, "router limit"},
		{"huge product", `{"rows":1000,"cols":1000}`, "router limit"},
		{"huge nodes", `{"nodes":10000000}`, "router limit"},
		{"negative rows", `{"rows":-1}`, "negative topology size"},
		{"negative nodes", `{"nodes":-5}`, "negative topology size"},
	} {
		req := httptest.NewRequest(http.MethodPost, "/v1/sweep", bytes.NewReader([]byte(tc.body)))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d (%s), want 400", tc.name, rec.Code, rec.Body)
			continue
		}
		var resp errorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("%s: bad error body %q", tc.name, rec.Body)
		}
		if !strings.Contains(resp.Error, tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, resp.Error, tc.wantErr)
		}
	}
	// A sane large-but-bounded request still passes validation (it fails or
	// succeeds on its merits, not with a 400).
	rec, _ := postSweep(t, h, `{"rows":8,"cols":8,"pulses":[0],"timeout_ms":60000}`)
	if rec.Code == http.StatusBadRequest {
		t.Fatalf("in-bounds mesh rejected: %s", rec.Body)
	}
}

// TestSweepFlapIntervalValidation: non-finite, negative, and
// overflow-large flap intervals are 400s naming the field. The negative case
// is the pre-fix regression: it was silently ignored (the sweep ran with the
// default interval and answered 200), masking a client bug. The 1e10 case
// would overflow the nanosecond conversion into a negative time.Duration.
func TestSweepFlapIntervalValidation(t *testing.T) {
	s := testServer(t, serverConfig{})
	h := s.routes()
	for _, tc := range []struct {
		name, body string
	}{
		{"negative", `{"rows":3,"cols":3,"pulses":[0],"flap_interval_s":-5}`},
		{"duration overflow", `{"rows":3,"cols":3,"pulses":[0],"flap_interval_s":1e10}`},
		{"absurdly large", `{"rows":3,"cols":3,"pulses":[0],"flap_interval_s":1e300}`},
	} {
		req := httptest.NewRequest(http.MethodPost, "/v1/sweep", bytes.NewReader([]byte(tc.body)))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d (%s), want 400", tc.name, rec.Code, rec.Body)
			continue
		}
		var resp errorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("%s: bad error body %q", tc.name, rec.Body)
		}
		if !strings.Contains(resp.Error, "flap_interval_s") {
			t.Errorf("%s: error %q does not name flap_interval_s", tc.name, resp.Error)
		}
	}
	// An in-range interval still works.
	rec, resp := postSweep(t, h, `{"rows":3,"cols":3,"pulses":[0],"flap_interval_s":120}`)
	if rec.Code != http.StatusOK || resp.Error != "" {
		t.Fatalf("valid interval: status = %d error %q", rec.Code, resp.Error)
	}
}

// TestFigureTimeout: /v1/figure honors timeout_ms. Pre-fix the parameter was
// silently ignored (requestContext(r, 0)) and a figure request could only be
// bounded by the server-wide -timeout.
func TestFigureTimeout(t *testing.T) {
	s := testServer(t, serverConfig{})
	h := s.routes()
	req := httptest.NewRequest(http.MethodGet, "/v1/figure?name=fig8&small=1&timeout_ms=1", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504 for a 1 ms budget", rec.Code, rec.Body)
	}
	var resp errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Error, "budget") {
		t.Fatalf("error %q does not name the budget", resp.Error)
	}

	req = httptest.NewRequest(http.MethodGet, "/v1/figure?name=fig8&small=1&timeout_ms=abc", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad timeout_ms status = %d, want 400", rec.Code)
	}
}

// TestHealthzQueuedClamp: running and queued come from two unsynchronized
// channel reads, so a request observed in runSlots but already released from
// queueSlots would pre-fix report a negative queue depth. Model that skew
// directly and check the clamp.
func TestHealthzQueuedClamp(t *testing.T) {
	s := testServer(t, serverConfig{Concurrency: 2, Queue: 4})
	// running=1, queued-channel=0: len(queueSlots)-running = -1 unclamped.
	s.runSlots <- struct{}{}
	defer func() { <-s.runSlots }()

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	s.routes().ServeHTTP(rec, req)
	var hz healthz
	if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Running != 1 {
		t.Fatalf("running = %d, want 1", hz.Running)
	}
	if hz.Queued != 0 {
		t.Fatalf("queued = %d, want clamped to 0", hz.Queued)
	}
}
