package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// postStream posts body to /v1/sweep/stream and parses the NDJSON reply.
func postStream(t *testing.T, h http.Handler, body string) (*httptest.ResponseRecorder, []streamEvent) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep/stream", bytes.NewReader([]byte(body)))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return rec, nil
	}
	return rec, decodeStream(t, rec.Body.String())
}

func decodeStream(t *testing.T, body string) []streamEvent {
	t.Helper()
	var evs []streamEvent
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev streamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return evs
}

// TestSweepStreamEndpoint pins the stream contract end to end: NDJSON content
// type, warm-up events before point events before the terminal done, one point
// event per pulse count, and a done.points array byte-identical to what the
// buffered endpoint returns for the same request.
func TestSweepStreamEndpoint(t *testing.T) {
	const body = `{"rows":4,"cols":4,"damping":"cisco","pulses":[0,1,2]}`

	s := testServer(t, serverConfig{Snapshots: 4})
	rec, evs := postStream(t, s.routes(), body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}

	// Event ordering: warmup+ then point+ then exactly one terminal done.
	var phase int // 0 warmup, 1 points, 2 done
	var warmups, points int
	var done *streamEvent
	for i := range evs {
		ev := &evs[i]
		switch ev.Event {
		case "warmup":
			if phase > 0 {
				t.Fatalf("warmup event after %q phase: %+v", ev.Status, evs)
			}
			warmups++
		case "point":
			if phase > 1 {
				t.Fatalf("point event after done: %+v", evs)
			}
			phase = 1
			points++
			if ev.Point == nil || ev.Cached {
				t.Fatalf("live point event malformed: %+v", ev)
			}
		case "done":
			phase = 2
			done = ev
		default:
			t.Fatalf("unknown event %q", ev.Event)
		}
	}
	if warmups != 2 || evs[0].Status != "started" || evs[1].Status != "done" {
		t.Fatalf("warm-up events = %d (%+v), want started+done first", warmups, evs[:2])
	}
	if points != 3 {
		t.Fatalf("point events = %d, want 3", points)
	}
	if done == nil || evs[len(evs)-1].Event != "done" {
		t.Fatal("no terminal done event")
	}
	if done.Error != "" || done.HTTPStatus != http.StatusOK {
		t.Fatalf("done = %+v, want clean 200", done)
	}
	if done.LivePoints != 3 || done.CachedPoints != 0 {
		t.Fatalf("done counters = %d live / %d cached, want 3/0", done.LivePoints, done.CachedPoints)
	}

	// Byte-identical results: the buffered endpoint on an identical fresh
	// server must return exactly the points the stream's done event carries.
	s2 := testServer(t, serverConfig{Snapshots: 4})
	bufRec, bufResp := postSweep(t, s2.routes(), body)
	if bufRec.Code != http.StatusOK {
		t.Fatalf("buffered status = %d", bufRec.Code)
	}
	streamed, err := json.Marshal(done.Points)
	if err != nil {
		t.Fatal(err)
	}
	buffered, err := json.Marshal(bufResp.Points)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed, buffered) {
		t.Fatalf("streamed points != buffered points:\n%s\n%s", streamed, buffered)
	}

	// Per-point events must carry the same objects as the done array.
	byPulses := map[int]*sweepPointJSON{}
	for i := range evs {
		if evs[i].Event == "point" {
			byPulses[evs[i].Point.Pulses] = evs[i].Point
		}
	}
	for _, p := range done.Points {
		got, ok := byPulses[p.Pulses]
		if !ok {
			t.Fatalf("no point event for n=%d", p.Pulses)
		}
		if *got != p {
			t.Fatalf("point event n=%d = %+v, done carries %+v", p.Pulses, *got, p)
		}
	}

	// Telemetry: counters moved, gauge is back to zero.
	if n := s.streamedPoints.Load(); n != 3 {
		t.Fatalf("streamed_points = %d, want 3", n)
	}
	if n := s.streamsActive.Load(); n != 0 {
		t.Fatalf("streams_active = %d after completion, want 0", n)
	}
}

// TestSweepStreamCachedFlag: repeating a streamed request serves every point
// from the shared cache — flagged cached, with no warm-up events.
func TestSweepStreamCachedFlag(t *testing.T) {
	const body = `{"rows":4,"cols":4,"damping":"cisco","pulses":[0,1]}`
	s := testServer(t, serverConfig{Snapshots: 4})
	if rec, _ := postStream(t, s.routes(), body); rec.Code != http.StatusOK {
		t.Fatalf("first stream status = %d", rec.Code)
	}
	_, evs := postStream(t, s.routes(), body)
	var cached, live, warmups int
	for _, ev := range evs {
		switch ev.Event {
		case "warmup":
			warmups++
		case "point":
			if ev.Cached {
				cached++
			} else {
				live++
			}
		}
	}
	if warmups != 0 || cached != 2 || live != 0 {
		t.Fatalf("repeat stream = %d warmups / %d cached / %d live, want 0/2/0", warmups, cached, live)
	}
	done := evs[len(evs)-1]
	if done.Event != "done" || done.CachedPoints != 2 || done.LivePoints != 0 {
		t.Fatalf("done = %+v, want 2 cached points", done)
	}
	if done.CacheHits == 0 {
		t.Fatal("done event carries no server cache counters")
	}
}

// TestSweepStreamPartialFailure: a failing point streams its error event and
// the terminal done still ships every healthy point, flagging the status the
// buffered endpoint would have answered (it is too late to change the 200).
func TestSweepStreamPartialFailure(t *testing.T) {
	s := testServer(t, serverConfig{})
	rec, evs := postStream(t, s.routes(), `{"rows":3,"cols":3,"pulses":[0,-1,1]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d (headers are committed before the sweep runs)", rec.Code)
	}
	done := evs[len(evs)-1]
	if done.Event != "done" || done.Error == "" || done.HTTPStatus != http.StatusInternalServerError {
		t.Fatalf("done = %+v, want error + http_status 500", done)
	}
	var pointErrs int
	for _, ev := range evs {
		if ev.Event == "point" && ev.Point.Error != "" {
			pointErrs++
		}
	}
	if pointErrs != 1 {
		t.Fatalf("streamed point errors = %d, want exactly the invalid point", pointErrs)
	}
	for _, p := range done.Points {
		if p.Pulses >= 0 && p.Error != "" {
			t.Fatalf("healthy point carries error: %+v", p)
		}
	}
}

// TestSweepStreamBadRequest: validation failures reject before any event (or
// admission slot) with the same 400s as the buffered endpoint.
func TestSweepStreamBadRequest(t *testing.T) {
	s := testServer(t, serverConfig{})
	h := s.routes()
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep/stream",
		bytes.NewReader([]byte(`{"rows":100000,"cols":100000}`)))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 before streaming", rec.Code)
	}
	req = httptest.NewRequest(http.MethodGet, "/v1/sweep/stream", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d, want 405", rec.Code)
	}
}

// TestStreamConcurrency interleaves streamed sweeps, buffered sweeps and
// healthz polls on one server. Under -race this is the stream's integration
// race check (the eventStream mutex against the worker pool, the atomic
// telemetry against healthz).
func TestStreamConcurrency(t *testing.T) {
	s := testServer(t, serverConfig{Snapshots: 4, Concurrency: 4, Queue: 16})
	h := s.routes()
	var workload sync.WaitGroup
	errs := make(chan error, 16)

	for i := 0; i < 3; i++ {
		workload.Add(1)
		go func(i int) {
			defer workload.Done()
			body := fmt.Sprintf(`{"rows":4,"cols":4,"damping":"cisco","pulses":[%d,%d]}`, i, i+1)
			rec, evs := postStream(t, h, body)
			if rec.Code != http.StatusOK {
				errs <- fmt.Errorf("stream %d status %d", i, rec.Code)
				return
			}
			if len(evs) == 0 || evs[len(evs)-1].Event != "done" {
				errs <- fmt.Errorf("stream %d has no terminal done", i)
				return
			}
			if e := evs[len(evs)-1].Error; e != "" {
				errs <- fmt.Errorf("stream %d done error: %s", i, e)
			}
		}(i)
	}
	for i := 0; i < 3; i++ {
		workload.Add(1)
		go func(i int) {
			defer workload.Done()
			body := fmt.Sprintf(`{"rows":4,"cols":4,"damping":"cisco","pulses":[%d]}`, i)
			rec, resp := postSweep(t, h, body)
			if rec.Code != http.StatusOK || resp.Error != "" {
				errs <- fmt.Errorf("buffered %d status %d error %q", i, rec.Code, resp.Error)
			}
		}(i)
	}

	// A healthz poller churns alongside the sweeps until the workload drains.
	stop := make(chan struct{})
	pollerDone := make(chan struct{})
	go func() {
		defer close(pollerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			var hz healthz
			if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil {
				errs <- fmt.Errorf("healthz mid-churn: %v", err)
				return
			}
			if hz.Queued < 0 || hz.StreamsActive < 0 {
				errs <- fmt.Errorf("healthz negative gauges: %+v", hz)
				return
			}
		}
	}()

	workload.Wait()
	close(stop)
	<-pollerDone
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := s.streamsActive.Load(); n != 0 {
		t.Fatalf("streams_active = %d after drain, want 0", n)
	}
}

// TestStreamGracefulDrain runs the real serve loop, starts a streamed sweep,
// fires the shutdown signal mid-stream, and checks the stream still ends with
// a terminal done event and the server drains cleanly — the mid-stream
// SIGTERM contract.
func TestStreamGracefulDrain(t *testing.T) {
	s := testServer(t, serverConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	srvErr := make(chan error, 1)
	addr := "127.0.0.1:18474"
	go func() { srvErr <- run(ctx, addr, 30*time.Second, s) }()
	waitHealthy(t, addr)

	type outcome struct {
		evs []streamEvent
		err error
	}
	got := make(chan outcome, 1)
	go func() {
		resp, err := http.Post("http://"+addr+"/v1/sweep/stream", "application/json",
			strings.NewReader(`{"rows":5,"cols":5,"damping":"cisco","pulses":[0,1,2,3]}`))
		if err != nil {
			got <- outcome{err: err}
			return
		}
		defer resp.Body.Close()
		var evs []streamEvent
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			var ev streamEvent
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				got <- outcome{err: err}
				return
			}
			evs = append(evs, ev)
		}
		got <- outcome{evs: evs, err: sc.Err()}
	}()
	time.Sleep(20 * time.Millisecond) // let the stream reach the handler
	cancel()                          // stands in for SIGTERM (same ctx path)

	select {
	case o := <-got:
		if o.err != nil {
			t.Fatalf("stream failed during drain: %v", o.err)
		}
		if len(o.evs) == 0 || o.evs[len(o.evs)-1].Event != "done" {
			t.Fatalf("stream did not end with a terminal done event: %+v", o.evs)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("stream never completed during drain")
	}
	select {
	case err := <-srvErr:
		if err != nil {
			t.Fatalf("serve loop exited with %v, want clean drain", err)
		}
	case <-time.After(35 * time.Second):
		t.Fatal("serve loop did not exit after the drain")
	}
}
