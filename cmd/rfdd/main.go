// Command rfdd serves the flap-damping experiment pipeline over HTTP: sweep
// and figure requests run through a shared worker pool and a two-level run
// cache (in-memory singleflight over a crash-safe persistent disk cache), so
// repeated requests for the same scenario are served without re-simulating —
// across requests and across daemon restarts.
//
// Endpoints:
//
//	POST /v1/sweep    JSON sweep request -> JSON points (partial on failure)
//	GET  /v1/figure   ?name=table1|fig3|fig8|fig9|fig13|fig14 [&small=1] -> CSV
//	GET  /healthz     liveness + cache/admission statistics (JSON)
//
// Operational behaviour:
//
//   - Admission control: at most -concurrency requests simulate at once and
//     at most -queue more wait; beyond that the daemon answers 429 instead of
//     accepting unbounded work.
//   - Deadlines: every request runs under a context bounded by -timeout (a
//     request may ask for less via "timeout_ms", never for more). Exceeding
//     it returns 504 with the typed budget error; the simulation stops
//     within one kernel poll interval.
//   - Panic isolation: a panicking run fails its own request (and only it)
//     with a quarantined stack fingerprint; the daemon keeps serving.
//   - Graceful drain: SIGTERM/SIGINT stops accepting connections, lets
//     in-flight requests finish (bounded by -drain), then exits 0.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"rfd/damping"
	"rfd/experiment"
	"rfd/experiment/diskcache"
)

func main() {
	fs := flag.NewFlagSet("rfdd", flag.ExitOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:8080", "listen address")
		workers     = fs.Int("workers", runtime.NumCPU(), "parallel simulation runs per sweep")
		cacheDir    = fs.String("cachedir", "", "persistent run cache directory (memory-only when empty)")
		queue       = fs.Int("queue", 16, "max requests waiting for a simulation slot before 429")
		concurrency = fs.Int("concurrency", 2, "max requests simulating at once")
		timeout     = fs.Duration("timeout", 5*time.Minute, "per-request deadline cap")
		drain       = fs.Duration("drain", 30*time.Second, "shutdown drain bound for in-flight requests")
		snapshots   = fs.Int("snapshots", experiment.DefaultPoolSize, "converged-snapshot pool capacity (0 disables warm-up reuse)")
	)
	fs.Parse(os.Args[1:])

	srv, err := newServer(serverConfig{
		Workers:     *workers,
		CacheDir:    *cacheDir,
		Queue:       *queue,
		Concurrency: *concurrency,
		Timeout:     *timeout,
		Snapshots:   *snapshots,
	})
	if err != nil {
		log.Fatalf("rfdd: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	if err := run(ctx, *addr, *drain, srv); err != nil {
		log.Fatalf("rfdd: %v", err)
	}
}

// run serves until ctx trips, then drains.
func run(ctx context.Context, addr string, drain time.Duration, srv *server) error {
	httpSrv := &http.Server{Addr: addr, Handler: srv.routes()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("rfdd: listening on %s (workers %d, concurrency %d, queue %d, timeout %v)",
		addr, srv.cfg.Workers, srv.cfg.Concurrency, srv.cfg.Queue, srv.cfg.Timeout)
	select {
	case err := <-errc:
		return err // bind failure etc.
	case <-ctx.Done():
	}
	log.Printf("rfdd: shutdown signal received, draining (bound %v)", drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	log.Printf("rfdd: drained cleanly")
	return nil
}

// serverConfig sizes the daemon.
type serverConfig struct {
	Workers     int
	CacheDir    string
	Queue       int
	Concurrency int
	Timeout     time.Duration
	// Snapshots bounds the converged-snapshot pool (warm-up states keyed by
	// scenario fingerprint, LRU-evicted). <= 0 disables the pool.
	Snapshots int
}

// server is the shared state behind every request: one run cache (optionally
// persistent), the converged-snapshot pool, and the admission-control
// semaphores.
type server struct {
	cfg     serverConfig
	cache   *experiment.RunCache
	disk    *diskcache.Cache           // nil when memory-only
	pool    *experiment.CheckpointPool // nil when disabled
	started time.Time

	// Admission control: queueSlots bounds waiting+running requests;
	// runSlots bounds running ones. A request that cannot take a queue slot
	// immediately is rejected with 429.
	queueSlots chan struct{}
	runSlots   chan struct{}
}

func newServer(cfg serverConfig) (*server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	if cfg.Queue < 0 {
		cfg.Queue = 0
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Minute
	}
	s := &server{
		cfg:        cfg,
		cache:      experiment.NewRunCache(),
		started:    time.Now(),
		queueSlots: make(chan struct{}, cfg.Queue+cfg.Concurrency),
		runSlots:   make(chan struct{}, cfg.Concurrency),
	}
	if cfg.CacheDir != "" {
		disk, err := diskcache.Open(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		s.disk = disk
		s.cache.SetStore(disk)
	}
	if cfg.Snapshots > 0 {
		s.pool = experiment.NewCheckpointPool(cfg.Snapshots)
		s.cache.SetCheckpointPool(s.pool)
	}
	return s, nil
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/sweep", s.handleSweep)
	mux.HandleFunc("/v1/figure", s.handleFigure)
	return mux
}

// admit takes an admission slot, or fails with 429 when the queue is full.
// The returned release function must be called exactly once.
func (s *server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	select {
	case s.queueSlots <- struct{}{}:
	default:
		httpError(w, http.StatusTooManyRequests,
			fmt.Errorf("queue full (%d waiting + %d running)", s.cfg.Queue, s.cfg.Concurrency))
		return nil, false
	}
	// Wait for a run slot, but give up if the client goes away first.
	select {
	case s.runSlots <- struct{}{}:
	case <-r.Context().Done():
		<-s.queueSlots
		httpError(w, statusForErr(experiment.ErrCanceled), experiment.ErrCanceled)
		return nil, false
	}
	return func() {
		<-s.runSlots
		<-s.queueSlots
	}, true
}

// requestContext bounds r's context by the server timeout, tightened to the
// request's own timeout_ms when smaller.
func (s *server) requestContext(r *http.Request, requestedMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.Timeout
	if requestedMS > 0 {
		if req := time.Duration(requestedMS) * time.Millisecond; req < d {
			d = req
		}
	}
	return context.WithTimeout(r.Context(), d)
}

// sweepRequest is the POST /v1/sweep body. The topology is specified by
// shape, not by adjacency: requests are small and every scenario the daemon
// runs is reproducible from the request alone (which is exactly what the
// content-addressed cache needs).
type sweepRequest struct {
	// Topology is "mesh" (default) or "internet".
	Topology string `json:"topology"`
	// Rows/Cols size the mesh (default 5x5); Nodes sizes the internet
	// topology (default 30).
	Rows  int `json:"rows"`
	Cols  int `json:"cols"`
	Nodes int `json:"nodes"`
	// Damping is "none" (default), "cisco" or "juniper"; RCN adds
	// root-cause notification on top. Engine selects the damping backend:
	// "" or "exact" (default) for the reference engine, "wheel" for the
	// timer-wheel batch engine (cache-distinct from exact runs).
	Damping string `json:"damping"`
	Engine  string `json:"damping_engine"`
	RCN     bool   `json:"rcn"`
	// Pulses lists the pulse counts to sweep (default 0..4).
	Pulses []int `json:"pulses"`
	// Seed and FlapIntervalS parameterize the workload.
	Seed          uint64  `json:"seed"`
	FlapIntervalS float64 `json:"flap_interval_s"`
	// Shards > 1 runs each point on the sharded engine. Results — and cache
	// keys — are identical to sequential runs; this only changes how a point
	// executes.
	Shards int `json:"shards"`
	// TimeoutMS tightens (never loosens) the server's per-request deadline.
	TimeoutMS int64 `json:"timeout_ms"`
}

// sweepResponse is the JSON reply: one entry per requested pulse count, in
// request order. Failed points carry an error and no data — a single bad
// point does not void its neighbours.
type sweepResponse struct {
	Points []sweepPointJSON `json:"points"`
	Error  string           `json:"error,omitempty"`
}

type sweepPointJSON struct {
	Pulses          int     `json:"pulses"`
	ConvergenceSecs float64 `json:"convergence_s,omitempty"`
	Messages        int     `json:"messages,omitempty"`
	MaxDamped       int     `json:"max_damped,omitempty"`
	Error           string  `json:"error,omitempty"`
}

func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req sweepRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	base, pulses, err := req.scenario()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()

	pts, sweepErr := s.cache.SweepContext(ctx, base, pulses, s.cfg.Workers)
	resp := sweepResponse{Points: make([]sweepPointJSON, len(pts))}
	for i, p := range pts {
		resp.Points[i].Pulses = p.Pulses
		if p.Err != nil {
			resp.Points[i].Error = p.Err.Error()
			continue
		}
		resp.Points[i].ConvergenceSecs = p.Result.ConvergenceTime.Seconds()
		resp.Points[i].Messages = p.Result.MessageCount
		resp.Points[i].MaxDamped = p.Result.MaxDamped
	}
	if sweepErr != nil {
		resp.Error = sweepErr.Error()
		// Partial results still ship, with the status telling the class of
		// failure: deadline -> 504, cancel -> 499-style 503, else 500.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(statusForErr(sweepErr))
		json.NewEncoder(w).Encode(resp)
		return
	}
	writeJSON(w, resp)
}

// scenario materializes the request into a runnable base scenario.
func (r sweepRequest) scenario() (experiment.Scenario, []int, error) {
	opts := experiment.DefaultOptions()
	opts.MeshRows, opts.MeshCols = 5, 5
	opts.InternetNodes = 30
	if r.Rows > 0 {
		opts.MeshRows = r.Rows
	}
	if r.Cols > 0 {
		opts.MeshCols = r.Cols
	}
	if r.Nodes > 0 {
		opts.InternetNodes = r.Nodes
	}
	if r.Seed > 0 {
		opts.Seed = r.Seed
	}
	if r.FlapIntervalS > 0 {
		opts.FlapInterval = time.Duration(r.FlapIntervalS * float64(time.Second))
	}
	engine, err := damping.ParseEngine(r.Engine)
	if err != nil {
		return experiment.Scenario{}, nil, err
	}
	opts.DampingEngine = engine
	if r.Shards < 0 || r.Shards > 64 {
		return experiment.Scenario{}, nil, fmt.Errorf("shards %d outside [0, 64]", r.Shards)
	}
	opts.Shards = r.Shards
	pulses := r.Pulses
	if len(pulses) == 0 {
		pulses = experiment.PulseRange(0, 4)
	}
	if len(pulses) > 64 {
		return experiment.Scenario{}, nil, fmt.Errorf("too many pulse counts (%d, max 64)", len(pulses))
	}
	sc, err := experiment.DaemonScenario(opts, r.Topology, r.Damping, r.RCN)
	if err != nil {
		return experiment.Scenario{}, nil, err
	}
	return sc, pulses, nil
}

func (s *server) handleFigure(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	name := r.URL.Query().Get("name")
	opts := experiment.DefaultOptions()
	opts.Workers = s.cfg.Workers
	opts.Cache = s.cache
	if r.URL.Query().Get("small") != "" {
		opts.MeshRows, opts.MeshCols = 5, 5
		opts.InternetNodes = 30
		opts.PolicyNodes = 40
		opts.MaxPulses = 4
	}

	// table1 and fig3 are cheap (analytic); the eval figures simulate and go
	// through admission control like any sweep.
	switch name {
	case "table1":
		w.Header().Set("Content-Type", "text/csv")
		if err := experiment.WriteTable1CSV(w); err != nil {
			httpError(w, http.StatusInternalServerError, err)
		}
		return
	case "fig3":
		data, err := experiment.Fig3(opts)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "text/csv")
		if err := data.WriteCSV(w); err != nil {
			httpError(w, http.StatusInternalServerError, err)
		}
		return
	case "fig8", "fig9", "fig13", "fig14":
		release, ok := s.admit(w, r)
		if !ok {
			return
		}
		defer release()
		ctx, cancel := s.requestContext(r, 0)
		defer cancel()
		opts.Ctx = ctx
		data, err := experiment.Eval(opts)
		if err != nil {
			httpError(w, statusForErr(err), err)
			return
		}
		w.Header().Set("Content-Type", "text/csv")
		var werr error
		switch name {
		case "fig8":
			werr = data.WriteFig8CSV(w)
		case "fig9":
			werr = data.WriteFig9CSV(w)
		case "fig13":
			werr = data.WriteFig13CSV(w)
		case "fig14":
			werr = data.WriteFig14CSV(w)
		}
		if werr != nil {
			httpError(w, http.StatusInternalServerError, werr)
		}
		return
	default:
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("unknown figure %q (want table1, fig3, fig8, fig9, fig13 or fig14)", name))
	}
}

// healthz reports liveness plus the statistics an operator watches: cache
// effectiveness, persistent-layer traffic, and admission pressure.
type healthz struct {
	Status        string  `json:"status"`
	UptimeSecs    float64 `json:"uptime_s"`
	Running       int     `json:"running"`
	Queued        int     `json:"queued"`
	CacheHits     uint64  `json:"cache_hits"`
	CacheMisses   uint64  `json:"cache_misses"`
	Uncacheable   uint64  `json:"uncacheable"`
	StoreHits     uint64  `json:"store_hits"`
	StoreErrors   uint64  `json:"store_errors"`
	DiskLoads     uint64  `json:"disk_loads,omitempty"`
	DiskStores    uint64  `json:"disk_stores,omitempty"`
	DiskCorrupt   uint64  `json:"disk_corrupt,omitempty"`
	DiskCacheDir  string  `json:"disk_cache_dir,omitempty"`
	MemoryOnly    bool    `json:"memory_only"`
	Concurrency   int     `json:"concurrency"`
	QueueCapacity int     `json:"queue_capacity"`
	// Snapshot pool: warm-up reuse. A snapshot hit means a cache-miss request
	// skipped its convergence phase by forking a pooled checkpoint.
	SnapshotCapacity  int    `json:"snapshot_capacity"`
	SnapshotsPooled   int    `json:"snapshots_pooled"`
	SnapshotHits      uint64 `json:"snapshot_hits"`
	SnapshotMisses    uint64 `json:"snapshot_misses"`
	SnapshotEvictions uint64 `json:"snapshot_evictions"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	hits, misses, uncacheable := s.cache.Stats()
	storeHits, storeErrors := s.cache.StoreStats()
	running := len(s.runSlots)
	h := healthz{
		Status:        "ok",
		UptimeSecs:    time.Since(s.started).Seconds(),
		Running:       running,
		Queued:        len(s.queueSlots) - running,
		CacheHits:     hits,
		CacheMisses:   misses,
		Uncacheable:   uncacheable,
		StoreHits:     storeHits,
		StoreErrors:   storeErrors,
		MemoryOnly:    s.disk == nil,
		Concurrency:   s.cfg.Concurrency,
		QueueCapacity: s.cfg.Queue,
	}
	if s.disk != nil {
		loads, _, stores, corrupt, _ := s.disk.Stats()
		h.DiskLoads, h.DiskStores, h.DiskCorrupt = loads, stores, corrupt
		h.DiskCacheDir = s.disk.Dir()
	}
	if s.pool != nil {
		h.SnapshotCapacity = s.cfg.Snapshots
		h.SnapshotsPooled = s.pool.Len()
		h.SnapshotHits, h.SnapshotMisses, h.SnapshotEvictions = s.pool.Stats()
	}
	writeJSON(w, h)
}

// statusForErr maps the experiment error taxonomy to HTTP statuses.
func statusForErr(err error) int {
	switch {
	case errors.Is(err, experiment.ErrBudgetExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, experiment.ErrCanceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

type errorResponse struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
