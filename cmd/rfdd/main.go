// Command rfdd serves the flap-damping experiment pipeline over HTTP: sweep
// and figure requests run through a shared worker pool and a two-level run
// cache (in-memory singleflight over a crash-safe persistent disk cache), so
// repeated requests for the same scenario are served without re-simulating —
// across requests and across daemon restarts.
//
// Endpoints:
//
//	POST /v1/sweep         JSON sweep request -> JSON points (partial on failure)
//	POST /v1/sweep/stream  same request -> NDJSON progress events (warmup,
//	                       per-point as each completes, terminal done summary)
//	GET  /v1/figure        ?name=table1|fig3|fig8|fig9|fig13|fig14 [&small=1]
//	                       [&timeout_ms=N] -> CSV
//	GET  /healthz          liveness + cache/admission/stream statistics (JSON)
//
// Operational behaviour:
//
//   - Admission control: at most -concurrency requests simulate at once and
//     at most -queue more wait; beyond that the daemon answers 429 instead of
//     accepting unbounded work.
//   - Deadlines: every request runs under a context bounded by -timeout (a
//     request may ask for less via "timeout_ms", never for more). Exceeding
//     it returns 504 with the typed budget error; the simulation stops
//     within one kernel poll interval.
//   - Panic isolation: a panicking run fails its own request (and only it)
//     with a quarantined stack fingerprint; the daemon keeps serving.
//   - Graceful drain: SIGTERM/SIGINT stops accepting connections, lets
//     in-flight requests finish (bounded by -drain), then exits 0.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"rfd/damping"
	"rfd/experiment"
	"rfd/experiment/diskcache"
)

func main() {
	fs := flag.NewFlagSet("rfdd", flag.ExitOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:8080", "listen address")
		workers     = fs.Int("workers", runtime.NumCPU(), "parallel simulation runs per sweep")
		cacheDir    = fs.String("cachedir", "", "persistent run cache directory (memory-only when empty)")
		queue       = fs.Int("queue", 16, "max requests waiting for a simulation slot before 429")
		concurrency = fs.Int("concurrency", 2, "max requests simulating at once")
		timeout     = fs.Duration("timeout", 5*time.Minute, "per-request deadline cap")
		drain       = fs.Duration("drain", 30*time.Second, "shutdown drain bound for in-flight requests")
		snapshots   = fs.Int("snapshots", experiment.DefaultPoolSize, "converged-snapshot pool capacity (0 disables warm-up reuse)")
	)
	fs.Parse(os.Args[1:])

	srv, err := newServer(serverConfig{
		Workers:     *workers,
		CacheDir:    *cacheDir,
		Queue:       *queue,
		Concurrency: *concurrency,
		Timeout:     *timeout,
		Snapshots:   *snapshots,
	})
	if err != nil {
		log.Fatalf("rfdd: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	if err := run(ctx, *addr, *drain, srv); err != nil {
		log.Fatalf("rfdd: %v", err)
	}
}

// run serves until ctx trips, then drains.
func run(ctx context.Context, addr string, drain time.Duration, srv *server) error {
	httpSrv := &http.Server{Addr: addr, Handler: srv.routes()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("rfdd: listening on %s (workers %d, concurrency %d, queue %d, timeout %v)",
		addr, srv.cfg.Workers, srv.cfg.Concurrency, srv.cfg.Queue, srv.cfg.Timeout)
	select {
	case err := <-errc:
		return err // bind failure etc.
	case <-ctx.Done():
	}
	log.Printf("rfdd: shutdown signal received, draining (bound %v)", drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	log.Printf("rfdd: drained cleanly")
	return nil
}

// serverConfig sizes the daemon.
type serverConfig struct {
	Workers     int
	CacheDir    string
	Queue       int
	Concurrency int
	Timeout     time.Duration
	// Snapshots bounds the converged-snapshot pool (warm-up states keyed by
	// scenario fingerprint, LRU-evicted). <= 0 disables the pool.
	Snapshots int
}

// server is the shared state behind every request: one run cache (optionally
// persistent), the converged-snapshot pool, and the admission-control
// semaphores.
type server struct {
	cfg     serverConfig
	cache   *experiment.RunCache
	disk    *diskcache.Cache           // nil when memory-only
	pool    *experiment.CheckpointPool // nil when disabled
	started time.Time

	// Admission control: queueSlots bounds waiting+running requests;
	// runSlots bounds running ones. A request that cannot take a queue slot
	// immediately is rejected with 429.
	queueSlots chan struct{}
	runSlots   chan struct{}

	// Stream telemetry: requests currently emitting NDJSON, and the total
	// number of per-point events streamed since startup.
	streamsActive  atomic.Int64
	streamedPoints atomic.Uint64
}

func newServer(cfg serverConfig) (*server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	if cfg.Queue < 0 {
		cfg.Queue = 0
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Minute
	}
	s := &server{
		cfg:        cfg,
		cache:      experiment.NewRunCache(),
		started:    time.Now(),
		queueSlots: make(chan struct{}, cfg.Queue+cfg.Concurrency),
		runSlots:   make(chan struct{}, cfg.Concurrency),
	}
	if cfg.CacheDir != "" {
		disk, err := diskcache.Open(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		s.disk = disk
		s.cache.SetStore(disk)
	}
	if cfg.Snapshots > 0 {
		s.pool = experiment.NewCheckpointPool(cfg.Snapshots)
		s.cache.SetCheckpointPool(s.pool)
	}
	return s, nil
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/sweep", s.handleSweep)
	mux.HandleFunc("/v1/sweep/stream", s.handleSweepStream)
	mux.HandleFunc("/v1/figure", s.handleFigure)
	return mux
}

// admit takes an admission slot, or fails with 429 when the queue is full.
// The returned release function must be called exactly once.
func (s *server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	select {
	case s.queueSlots <- struct{}{}:
	default:
		httpError(w, http.StatusTooManyRequests,
			fmt.Errorf("queue full (%d waiting + %d running)", s.cfg.Queue, s.cfg.Concurrency))
		return nil, false
	}
	// Wait for a run slot, but give up if the client goes away first.
	select {
	case s.runSlots <- struct{}{}:
	case <-r.Context().Done():
		<-s.queueSlots
		httpError(w, statusForErr(experiment.ErrCanceled), experiment.ErrCanceled)
		return nil, false
	}
	return func() {
		<-s.runSlots
		<-s.queueSlots
	}, true
}

// requestContext bounds r's context by the server timeout, tightened to the
// request's own timeout_ms when smaller.
func (s *server) requestContext(r *http.Request, requestedMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.Timeout
	if requestedMS > 0 {
		if req := time.Duration(requestedMS) * time.Millisecond; req < d {
			d = req
		}
	}
	return context.WithTimeout(r.Context(), d)
}

// sweepRequest is the POST /v1/sweep body. The topology is specified by
// shape, not by adjacency: requests are small and every scenario the daemon
// runs is reproducible from the request alone (which is exactly what the
// content-addressed cache needs).
type sweepRequest struct {
	// Topology is "mesh" (default) or "internet".
	Topology string `json:"topology"`
	// Rows/Cols size the mesh (default 5x5); Nodes sizes the internet
	// topology (default 30).
	Rows  int `json:"rows"`
	Cols  int `json:"cols"`
	Nodes int `json:"nodes"`
	// Damping is "none" (default), "cisco" or "juniper"; RCN adds
	// root-cause notification on top. Engine selects the damping backend:
	// "" or "exact" (default) for the reference engine, "wheel" for the
	// timer-wheel batch engine (cache-distinct from exact runs).
	Damping string `json:"damping"`
	Engine  string `json:"damping_engine"`
	RCN     bool   `json:"rcn"`
	// Pulses lists the pulse counts to sweep (default 0..4).
	Pulses []int `json:"pulses"`
	// Seed and FlapIntervalS parameterize the workload.
	Seed          uint64  `json:"seed"`
	FlapIntervalS float64 `json:"flap_interval_s"`
	// Shards > 1 runs each point on the sharded engine. Results — and cache
	// keys — are identical to sequential runs; this only changes how a point
	// executes.
	Shards int `json:"shards"`
	// TimeoutMS tightens (never loosens) the server's per-request deadline.
	TimeoutMS int64 `json:"timeout_ms"`
}

// sweepResponse is the JSON reply: one entry per requested pulse count, in
// request order. Failed points carry an error and no data — a single bad
// point does not void its neighbours.
type sweepResponse struct {
	Points []sweepPointJSON `json:"points"`
	Error  string           `json:"error,omitempty"`
}

type sweepPointJSON struct {
	Pulses          int     `json:"pulses"`
	ConvergenceSecs float64 `json:"convergence_s,omitempty"`
	Messages        int     `json:"messages,omitempty"`
	MaxDamped       int     `json:"max_damped,omitempty"`
	Error           string  `json:"error,omitempty"`
}

// decodeSweep parses and validates a sweep request body, writing the 4xx
// reply itself on failure. Shared by the buffered and streaming endpoints so
// both reject the exact same inputs before admission control.
func (s *server) decodeSweep(w http.ResponseWriter, r *http.Request) (req sweepRequest, base experiment.Scenario, pulses []int, ok bool) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return req, base, nil, false
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return req, base, nil, false
	}
	base, pulses, err := req.scenario()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return req, base, nil, false
	}
	return req, base, pulses, true
}

// pointsJSON renders sweep points in the wire form shared by the buffered
// response and the stream's per-point/terminal events.
func pointsJSON(pts []experiment.SweepPoint) []sweepPointJSON {
	out := make([]sweepPointJSON, len(pts))
	for i, p := range pts {
		out[i] = pointJSON(p)
	}
	return out
}

// pointJSON renders one sweep point.
func pointJSON(p experiment.SweepPoint) sweepPointJSON {
	pt := sweepPointJSON{Pulses: p.Pulses}
	if p.Err != nil {
		pt.Error = p.Err.Error()
		return pt
	}
	pt.ConvergenceSecs = p.Result.ConvergenceTime.Seconds()
	pt.Messages = p.Result.MessageCount
	pt.MaxDamped = p.Result.MaxDamped
	return pt
}

func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	req, base, pulses, ok := s.decodeSweep(w, r)
	if !ok {
		return
	}
	release, admitted := s.admit(w, r)
	if !admitted {
		return
	}
	defer release()
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()

	pts, sweepErr := s.cache.SweepContext(ctx, base, pulses, s.cfg.Workers)
	resp := sweepResponse{Points: pointsJSON(pts)}
	if sweepErr != nil {
		resp.Error = sweepErr.Error()
		// Partial results still ship, with the status telling the class of
		// failure: deadline -> 504, cancel -> 499-style 503, else 500.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(statusForErr(sweepErr))
		json.NewEncoder(w).Encode(resp)
		return
	}
	writeJSON(w, resp)
}

// streamEvent is one NDJSON line of POST /v1/sweep/stream. Event is "warmup",
// "point" or "done":
//
//   - warmup: Status "started" then "done" while a convergence warm-up runs on
//     the request's behalf (absent when the converged snapshot was pooled and
//     every point was cache-served).
//   - point: one per pulse count, in completion order. Cached distinguishes a
//     cache/singleflight-served point from a live run; Point carries exactly
//     the object the buffered endpoint would return for it.
//   - done: terminal summary. Points is the full buffered-identical array (in
//     request order), Error the joined sweep error, HTTPStatus the status the
//     buffered endpoint would have answered, plus per-request and server-wide
//     cache/snapshot counters.
type streamEvent struct {
	Event  string          `json:"event"`
	Status string          `json:"status,omitempty"`
	Cached bool            `json:"cached,omitempty"`
	Point  *sweepPointJSON `json:"point,omitempty"`

	// done-only fields.
	Points       []sweepPointJSON `json:"points,omitempty"`
	Error        string           `json:"error,omitempty"`
	HTTPStatus   int              `json:"http_status,omitempty"`
	LivePoints   int              `json:"live_points,omitempty"`
	CachedPoints int              `json:"cached_points,omitempty"`
	CacheHits    uint64           `json:"cache_hits,omitempty"`
	CacheMisses  uint64           `json:"cache_misses,omitempty"`
	SnapshotHits uint64           `json:"snapshot_hits,omitempty"`
	SnapshotMiss uint64           `json:"snapshot_misses,omitempty"`
}

// eventStream serializes NDJSON events onto one response. The sweep's worker
// goroutines report concurrently, and http.ResponseWriter is not safe for
// concurrent use, so every write holds the mutex and flushes before release —
// a client reading the connection sees each event as soon as it happened.
type eventStream struct {
	mu  sync.Mutex
	enc *json.Encoder
	fl  http.Flusher
}

func (es *eventStream) emit(ev streamEvent) {
	es.mu.Lock()
	defer es.mu.Unlock()
	// Encode errors mean the client went away; the sweep keeps running for
	// the cache's benefit and the context tear-down ends it if it was live.
	if es.enc.Encode(ev) == nil {
		es.fl.Flush()
	}
}

// handleSweepStream is POST /v1/sweep/stream — same request, admission control,
// deadlines, panic isolation and partial-result semantics — but with the
// response streamed as NDJSON progress events instead of one buffered JSON
// document: a warm-up event pair when a convergence runs, one point event as
// each pulse count settles (cache hits flagged), and a terminal done event
// whose Points array is byte-identical to the buffered endpoint's.
func (s *server) handleSweepStream(w http.ResponseWriter, r *http.Request) {
	req, base, pulses, ok := s.decodeSweep(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, errors.New("streaming unsupported by this connection"))
		return
	}
	release, admitted := s.admit(w, r)
	if !admitted {
		return
	}
	defer release()
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()

	s.streamsActive.Add(1)
	defer s.streamsActive.Add(-1)

	// From here on the response is committed: failures ride in the terminal
	// done event (with the status the buffered endpoint would have used),
	// because the 200 header is already on the wire.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	es := &eventStream{enc: json.NewEncoder(w), fl: fl}

	var live, cached atomic.Int64
	prog := &experiment.Progress{
		WarmupStarted: func() { es.emit(streamEvent{Event: "warmup", Status: "started"}) },
		WarmupDone:    func() { es.emit(streamEvent{Event: "warmup", Status: "done"}) },
		PointDone: func(p experiment.SweepPoint) {
			live.Add(1)
			s.streamedPoints.Add(1)
			pt := pointJSON(p)
			es.emit(streamEvent{Event: "point", Point: &pt})
		},
		CacheHit: func(p experiment.SweepPoint) {
			cached.Add(1)
			s.streamedPoints.Add(1)
			pt := pointJSON(p)
			es.emit(streamEvent{Event: "point", Cached: true, Point: &pt})
		},
	}

	pts, sweepErr := s.cache.SweepContext(experiment.WithProgress(ctx, prog), base, pulses, s.cfg.Workers)

	hits, misses, _ := s.cache.Stats()
	done := streamEvent{
		Event:        "done",
		HTTPStatus:   http.StatusOK,
		Points:       pointsJSON(pts),
		LivePoints:   int(live.Load()),
		CachedPoints: int(cached.Load()),
		CacheHits:    hits,
		CacheMisses:  misses,
	}
	if s.pool != nil {
		done.SnapshotHits, done.SnapshotMiss, _ = s.pool.Stats()
	}
	if sweepErr != nil {
		done.Error = sweepErr.Error()
		done.HTTPStatus = statusForErr(sweepErr)
	}
	es.emit(done)
}

// Request-validation bounds. maxRouters caps the simulated topology: a
// request like {"rows":100000,"cols":100000} describes a 10^10-router mesh
// whose construction would OOM the daemon straight past admission control
// (admission bounds how many requests run, not how big one is), so oversized
// shapes are rejected with 400 before any allocation. maxFlapIntervalS caps
// the flap interval far above every damping hold-down while staying far below
// the float64 values whose nanosecond conversion overflows time.Duration
// silently (anything past ~9.2e9 s wraps negative).
const (
	maxRouters       = 1 << 16 // 65536 routers
	maxFlapIntervalS = 86400   // one day, vs. a 60 min max hold-down
)

// scenario materializes the request into a runnable base scenario.
func (r sweepRequest) scenario() (experiment.Scenario, []int, error) {
	opts := experiment.DefaultOptions()
	opts.MeshRows, opts.MeshCols = 5, 5
	opts.InternetNodes = 30
	if r.Rows < 0 || r.Cols < 0 || r.Nodes < 0 {
		return experiment.Scenario{}, nil, fmt.Errorf("negative topology size (rows %d, cols %d, nodes %d)", r.Rows, r.Cols, r.Nodes)
	}
	if r.Rows > maxRouters || r.Cols > maxRouters {
		return experiment.Scenario{}, nil, fmt.Errorf("mesh side %dx%d exceeds the %d-router limit", r.Rows, r.Cols, maxRouters)
	}
	if r.Rows > 0 {
		opts.MeshRows = r.Rows
	}
	if r.Cols > 0 {
		opts.MeshCols = r.Cols
	}
	// Sides are already bounded by maxRouters, so the product cannot
	// overflow int64.
	if n := int64(opts.MeshRows) * int64(opts.MeshCols); n > maxRouters {
		return experiment.Scenario{}, nil, fmt.Errorf("mesh %dx%d = %d routers exceeds the %d-router limit", opts.MeshRows, opts.MeshCols, n, maxRouters)
	}
	if r.Nodes > maxRouters {
		return experiment.Scenario{}, nil, fmt.Errorf("nodes %d exceeds the %d-router limit", r.Nodes, maxRouters)
	}
	if r.Nodes > 0 {
		opts.InternetNodes = r.Nodes
	}
	if r.Seed > 0 {
		opts.Seed = r.Seed
	}
	if f := r.FlapIntervalS; f != 0 {
		// NaN/Inf cannot arrive through encoding/json, but the bound must not
		// depend on the transport; and large-but-finite values overflow the
		// nanosecond conversion into a negative Duration, which pre-fix
		// surfaced as a baffling "negative flap interval" internal error (or,
		// for merely huge values, a silently absurd workload). Negative values
		// were silently ignored before; they are a client bug, so say so.
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return experiment.Scenario{}, nil, fmt.Errorf("flap_interval_s %v is not a finite number", f)
		}
		if f < 0 {
			return experiment.Scenario{}, nil, fmt.Errorf("flap_interval_s %v is negative", f)
		}
		if f > maxFlapIntervalS {
			return experiment.Scenario{}, nil, fmt.Errorf("flap_interval_s %v exceeds the %d s limit", f, maxFlapIntervalS)
		}
		opts.FlapInterval = time.Duration(f * float64(time.Second))
	}
	engine, err := damping.ParseEngine(r.Engine)
	if err != nil {
		return experiment.Scenario{}, nil, err
	}
	opts.DampingEngine = engine
	if r.Shards < 0 || r.Shards > 64 {
		return experiment.Scenario{}, nil, fmt.Errorf("shards %d outside [0, 64]", r.Shards)
	}
	opts.Shards = r.Shards
	pulses := r.Pulses
	if len(pulses) == 0 {
		pulses = experiment.PulseRange(0, 4)
	}
	if len(pulses) > 64 {
		return experiment.Scenario{}, nil, fmt.Errorf("too many pulse counts (%d, max 64)", len(pulses))
	}
	sc, err := experiment.DaemonScenario(opts, r.Topology, r.Damping, r.RCN)
	if err != nil {
		return experiment.Scenario{}, nil, err
	}
	return sc, pulses, nil
}

func (s *server) handleFigure(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	name := r.URL.Query().Get("name")
	// The eval figures honor the same per-request budget tightening as
	// /v1/sweep; previously the query parameter was silently ignored and a
	// figure request could only be bounded by the server-wide -timeout.
	var timeoutMS int64
	if v := r.URL.Query().Get("timeout_ms"); v != "" {
		t, err := strconv.ParseInt(v, 10, 64)
		if err != nil || t < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad timeout_ms %q", v))
			return
		}
		timeoutMS = t
	}
	opts := experiment.DefaultOptions()
	opts.Workers = s.cfg.Workers
	opts.Cache = s.cache
	if r.URL.Query().Get("small") != "" {
		opts.MeshRows, opts.MeshCols = 5, 5
		opts.InternetNodes = 30
		opts.PolicyNodes = 40
		opts.MaxPulses = 4
	}

	// table1 and fig3 are cheap (analytic); the eval figures simulate and go
	// through admission control like any sweep.
	switch name {
	case "table1":
		w.Header().Set("Content-Type", "text/csv")
		if err := experiment.WriteTable1CSV(w); err != nil {
			httpError(w, http.StatusInternalServerError, err)
		}
		return
	case "fig3":
		data, err := experiment.Fig3(opts)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "text/csv")
		if err := data.WriteCSV(w); err != nil {
			httpError(w, http.StatusInternalServerError, err)
		}
		return
	case "fig8", "fig9", "fig13", "fig14":
		release, ok := s.admit(w, r)
		if !ok {
			return
		}
		defer release()
		ctx, cancel := s.requestContext(r, timeoutMS)
		defer cancel()
		opts.Ctx = ctx
		data, err := experiment.Eval(opts)
		if err != nil {
			httpError(w, statusForErr(err), err)
			return
		}
		w.Header().Set("Content-Type", "text/csv")
		var werr error
		switch name {
		case "fig8":
			werr = data.WriteFig8CSV(w)
		case "fig9":
			werr = data.WriteFig9CSV(w)
		case "fig13":
			werr = data.WriteFig13CSV(w)
		case "fig14":
			werr = data.WriteFig14CSV(w)
		}
		if werr != nil {
			httpError(w, http.StatusInternalServerError, werr)
		}
		return
	default:
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("unknown figure %q (want table1, fig3, fig8, fig9, fig13 or fig14)", name))
	}
}

// healthz reports liveness plus the statistics an operator watches: cache
// effectiveness, persistent-layer traffic, and admission pressure.
type healthz struct {
	Status        string  `json:"status"`
	UptimeSecs    float64 `json:"uptime_s"`
	Running       int     `json:"running"`
	Queued        int     `json:"queued"`
	CacheHits     uint64  `json:"cache_hits"`
	CacheMisses   uint64  `json:"cache_misses"`
	Uncacheable   uint64  `json:"uncacheable"`
	StoreHits     uint64  `json:"store_hits"`
	StoreErrors   uint64  `json:"store_errors"`
	DiskLoads     uint64  `json:"disk_loads,omitempty"`
	DiskStores    uint64  `json:"disk_stores,omitempty"`
	DiskCorrupt   uint64  `json:"disk_corrupt,omitempty"`
	DiskCacheDir  string  `json:"disk_cache_dir,omitempty"`
	MemoryOnly    bool    `json:"memory_only"`
	Concurrency   int     `json:"concurrency"`
	QueueCapacity int     `json:"queue_capacity"`
	// Streaming: requests currently emitting NDJSON on /v1/sweep/stream, and
	// the total point events streamed since startup.
	StreamsActive  int64  `json:"streams_active"`
	StreamedPoints uint64 `json:"streamed_points"`
	// Snapshot pool: warm-up reuse. A snapshot hit means a cache-miss request
	// skipped its convergence phase by forking a pooled checkpoint.
	SnapshotCapacity  int    `json:"snapshot_capacity"`
	SnapshotsPooled   int    `json:"snapshots_pooled"`
	SnapshotHits      uint64 `json:"snapshot_hits"`
	SnapshotMisses    uint64 `json:"snapshot_misses"`
	SnapshotEvictions uint64 `json:"snapshot_evictions"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	hits, misses, uncacheable := s.cache.Stats()
	storeHits, storeErrors := s.cache.StoreStats()
	running := len(s.runSlots)
	// The two channel reads are not atomic with each other: a request can
	// take its run slot between them, making the difference transiently
	// negative under churn. A negative queue depth is never real — clamp.
	queued := len(s.queueSlots) - running
	if queued < 0 {
		queued = 0
	}
	h := healthz{
		Status:         "ok",
		UptimeSecs:     time.Since(s.started).Seconds(),
		Running:        running,
		Queued:         queued,
		CacheHits:      hits,
		CacheMisses:    misses,
		Uncacheable:    uncacheable,
		StoreHits:      storeHits,
		StoreErrors:    storeErrors,
		MemoryOnly:     s.disk == nil,
		Concurrency:    s.cfg.Concurrency,
		QueueCapacity:  s.cfg.Queue,
		StreamsActive:  s.streamsActive.Load(),
		StreamedPoints: s.streamedPoints.Load(),
	}
	if s.disk != nil {
		loads, _, stores, corrupt, _ := s.disk.Stats()
		h.DiskLoads, h.DiskStores, h.DiskCorrupt = loads, stores, corrupt
		h.DiskCacheDir = s.disk.Dir()
	}
	if s.pool != nil {
		h.SnapshotCapacity = s.cfg.Snapshots
		h.SnapshotsPooled = s.pool.Len()
		h.SnapshotHits, h.SnapshotMisses, h.SnapshotEvictions = s.pool.Stats()
	}
	writeJSON(w, h)
}

// statusForErr maps the experiment error taxonomy to HTTP statuses.
func statusForErr(err error) int {
	switch {
	case errors.Is(err, experiment.ErrBudgetExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, experiment.ErrCanceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

type errorResponse struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
