// Command rfdtopo generates and inspects the topologies used by the
// experiments: the paper's torus mesh and the Internet-derived
// preferential-attachment graphs with AS relationships.
//
// Examples:
//
//	rfdtopo -type internet -nodes 208 -format stats
//	rfdtopo -type mesh -rows 10 -cols 10 -format tsv > mesh.tsv
//	rfdtopo -type internet -nodes 100 -format dot | dot -Tpng > as.png
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"

	"rfd/topology"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rfdtopo:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("rfdtopo", flag.ContinueOnError)
	var (
		kind   = fs.String("type", "mesh", "mesh | internet | waxman | tiered | ring | line | star | fullmesh")
		rows   = fs.Int("rows", 10, "mesh rows")
		cols   = fs.Int("cols", 10, "mesh cols")
		nodes  = fs.Int("nodes", 100, "node count (non-mesh)")
		seed   = fs.Uint64("seed", 1, "random seed (internet)")
		format = fs.String("format", "stats", "stats | tsv | dot")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *topology.Graph
	var err error
	switch *kind {
	case "mesh":
		g, err = topology.Torus(*rows, *cols)
	case "internet":
		g, err = topology.InternetDerived(topology.DefaultInternetConfig(*nodes, *seed))
	case "waxman":
		g, err = topology.Waxman(topology.DefaultWaxmanConfig(*nodes, *seed))
	case "tiered":
		g, err = topology.Tiered(topology.DefaultTieredConfig(*seed))
	case "ring":
		g, err = topology.Ring(*nodes)
	case "line":
		g, err = topology.Line(*nodes)
	case "star":
		g, err = topology.Star(*nodes)
	case "fullmesh":
		g, err = topology.FullMesh(*nodes)
	default:
		return fmt.Errorf("unknown -type %q", *kind)
	}
	if err != nil {
		return err
	}
	// Generation can dominate for big -nodes; honour an interrupt that landed
	// during it instead of emitting a full (now unwanted) artifact.
	if err := ctx.Err(); err != nil {
		return err
	}

	switch *format {
	case "tsv":
		return g.WriteTSV(os.Stdout)
	case "dot":
		return g.WriteDOT(os.Stdout)
	case "stats":
		return printStats(g)
	default:
		return fmt.Errorf("unknown -format %q", *format)
	}
}

func printStats(g *topology.Graph) error {
	fmt.Println(g)
	fmt.Printf("connected: %t, annotated: %t\n", g.Connected(), g.Annotated())
	if g.Annotated() {
		if err := topology.ValleyFree(g); err != nil {
			fmt.Printf("relationships: INVALID (%v)\n", err)
		} else {
			fmt.Println("relationships: valley-free hierarchy OK")
		}
		peers, c2p := 0, 0
		for _, e := range g.Edges() {
			if g.Relationship(e.A, e.B) == topology.RelPeer {
				peers++
			} else {
				c2p++
			}
		}
		fmt.Printf("links: %d customer-provider, %d peer-peer\n", c2p, peers)
	}
	fmt.Printf("eccentricity(0): %d hops\n", g.Eccentricity(0))
	hist := g.DegreeHistogram()
	degrees := make([]int, 0, len(hist))
	for d := range hist {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	fmt.Println("degree histogram:")
	for _, d := range degrees {
		fmt.Printf("  %3d: %d\n", d, hist[d])
	}
	return nil
}
