package main

import (
	"context"
	"testing"
)

func TestRunAllTypesAndFormats(t *testing.T) {
	for _, kind := range []string{"mesh", "internet", "waxman", "tiered", "ring", "line", "star", "fullmesh"} {
		for _, format := range []string{"stats", "tsv", "dot"} {
			args := []string{"-type", kind, "-format", format, "-nodes", "20", "-rows", "4", "-cols", "4"}
			if err := run(context.Background(), args); err != nil {
				t.Fatalf("%s/%s: %v", kind, format, err)
			}
		}
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	if err := run(context.Background(), []string{"-type", "donut"}); err == nil {
		t.Fatal("unknown type accepted")
	}
	if err := run(context.Background(), []string{"-format", "png"}); err == nil {
		t.Fatal("unknown format accepted")
	}
	if err := run(context.Background(), []string{"-type", "ring", "-nodes", "1"}); err == nil {
		t.Fatal("invalid generator args accepted")
	}
}
