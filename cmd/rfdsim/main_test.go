package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

func TestRunSmallScenario(t *testing.T) {
	args := []string{"-rows", "4", "-cols", "4", "-pulses", "1"}
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
}

func TestRunVariants(t *testing.T) {
	cases := [][]string{
		{"-rows", "4", "-cols", "4", "-pulses", "1", "-damping", "off"},
		{"-rows", "4", "-cols", "4", "-pulses", "2", "-damping", "juniper", "-v"},
		{"-rows", "4", "-cols", "4", "-pulses", "1", "-rcn"},
		{"-topology", "ring", "-nodes", "10", "-pulses", "1"},
		{"-topology", "line", "-nodes", "5", "-pulses", "0"},
		{"-topology", "internet", "-nodes", "20", "-pulses", "1", "-policy", "novalley"},
		{"-rows", "4", "-cols", "4", "-pulses", "1", "-mrai", "0s"},
		{"-rows", "4", "-cols", "4", "-pulses", "1", "-isp", "3"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
}

func TestRunWritesTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	args := []string{"-rows", "4", "-cols", "4", "-pulses", "1", "-damping", "off", "-trace", path}
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("empty trace file")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-topology", "moebius"},
		{"-damping", "huawei"},
		{"-policy", "chaos"},
		{"-topology", "ring", "-nodes", "2"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args); err == nil {
			t.Fatalf("%v accepted", args)
		}
	}
}

func TestRunSharded(t *testing.T) {
	cases := [][]string{
		{"-rows", "4", "-cols", "4", "-pulses", "1", "-shards", "4", "-v"},
		{"-rows", "4", "-cols", "4", "-pulses", "1", "-shards", "2", "-loss", "0.01"},
		{"-topology", "internet", "-nodes", "20", "-pulses", "1", "-shards", "2"},
		{"-rows", "4", "-cols", "4", "-pulses", "1", "-shards", "2", "-sweep", "0:2"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
	// -check needs the sequential engine.
	if err := run(context.Background(), []string{"-rows", "4", "-cols", "4", "-shards", "2", "-check"}); err == nil {
		t.Fatal("-shards with -check accepted")
	}
}

func TestRunCAIDATopology(t *testing.T) {
	path := filepath.Join(t.TempDir(), "as-rel.txt")
	data := "# tiny fixture\n10|20|0\n10|30|-1\n20|30|-1\n30|40|-1\n40|10|0\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	args := []string{"-topology", "caida:" + path, "-pulses", "1", "-shards", "2"}
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-topology", "caida:" + path + ".missing"}); err == nil {
		t.Fatal("missing CAIDA file accepted")
	}
}
