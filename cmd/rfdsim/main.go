// Command rfdsim runs a single route-flap-damping simulation and prints its
// measurements: convergence time, message count, damped-link peak, reuse
// statistics and the four-state phase decomposition.
//
// Examples:
//
//	rfdsim -pulses 1                          # paper mesh, single pulse, Cisco damping
//	rfdsim -pulses 5 -rcn                     # RCN-enhanced damping
//	rfdsim -topology internet -nodes 208 -policy novalley -pulses 3
//	rfdsim -damping off -pulses 3             # plain BGP baseline
//	rfdsim -pulses 3 -loss 0.01 -jitter 5ms   # 1% message loss, 5ms delay jitter
//	rfdsim -pulses 1 -faults plan.txt         # scripted faults (see faults.ParsePlan)
//	rfdsim -pulses 5 -cpuprofile cpu.out      # profile the run (go tool pprof cpu.out)
//	rfdsim -pulses 3 -shards 4                # sharded parallel engine, 4 shards
//	rfdsim -topology caida:as-rel.txt -pulses 1   # CAIDA AS-relationship import
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"rfd/bgp"
	"rfd/damping"
	"rfd/experiment"
	"rfd/faults"
	"rfd/topology"
	"rfd/trace"
)

func main() {
	// Ctrl-C (or a SIGTERM from a supervisor) cancels the run's context: the
	// kernel stops at its next poll, profiles and deferred cleanups still
	// run, and the error names the interruption point.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rfdsim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("rfdsim", flag.ContinueOnError)
	var (
		topo      = fs.String("topology", "mesh", "topology family: mesh | internet | ring | line | caida:<as-rel-file>")
		rows      = fs.Int("rows", 10, "mesh rows")
		cols      = fs.Int("cols", 10, "mesh cols")
		nodes     = fs.Int("nodes", 100, "node count for internet/ring/line topologies")
		isp       = fs.Int("isp", -1, "ispAS node id (default: 0 for mesh, nodes/2 otherwise)")
		pulses    = fs.Int("pulses", 1, "number of (withdrawal, announcement) pulses")
		interval  = fs.Duration("interval", experiment.DefaultFlapInterval, "flapping interval")
		damp      = fs.String("damping", "cisco", "damping parameters: off | cisco | juniper")
		engine    = fs.String("damping-engine", "exact", "damping backend: exact | wheel (timer-wheel batch engine)")
		rcnOn     = fs.Bool("rcn", false, "enable RCN-enhanced damping")
		policy    = fs.String("policy", "shortest", "routing policy: shortest | novalley")
		mrai      = fs.Duration("mrai", 30*time.Second, "minimum route advertisement interval (0 disables)")
		seed      = fs.Uint64("seed", 1, "random seed")
		sweep     = fs.String("sweep", "", `run a pulse sweep "from:to" (e.g. "0:10") instead of a single -pulses run`)
		workers   = fs.Int("workers", runtime.NumCPU(), "parallel runs in -sweep mode")
		progress  = fs.Bool("progress", false, "in -sweep mode, print a live line per warm-up/point to stderr as each completes")
		verbose   = fs.Bool("v", false, "print the update series summary")
		checkOn   = fs.Bool("check", false, "run under the runtime invariant checker (slower; any violation fails the run)")
		traceFile = fs.String("trace", "", "write a JSONL event trace to this file")
		faultFile = fs.String("faults", "", "apply the fault plan in this file (faults.ParsePlan format)")
		loss      = fs.Float64("loss", 0, "uniform message-loss probability in [0, 1]")
		jitter    = fs.Duration("jitter", 0, "maximum extra per-message delay (uniform in [0, jitter))")
		shards    = fs.Int("shards", 1, "run on the sharded parallel engine with this many shards (1 = sequential; traces and results are identical)")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = fs.String("memprofile", "", "write a post-run heap profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rfdsim: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "rfdsim: memprofile:", err)
			}
		}()
	}

	g, defaultISP, err := buildTopology(*topo, *rows, *cols, *nodes, *seed)
	if err != nil {
		return err
	}
	ispID := topology.NodeID(*isp)
	if *isp < 0 {
		ispID = defaultISP
	}

	cfg := bgp.DefaultConfig()
	cfg.Seed = *seed
	cfg.MRAI = *mrai
	switch *damp {
	case "off":
	case "cisco":
		params := damping.Cisco()
		cfg.Damping = &params
	case "juniper":
		params := damping.Juniper()
		cfg.Damping = &params
	default:
		return fmt.Errorf("unknown -damping %q", *damp)
	}
	cfg.DampingEngine, err = damping.ParseEngine(*engine)
	if err != nil {
		return fmt.Errorf("bad -damping-engine: %w", err)
	}
	cfg.EnableRCN = *rcnOn
	switch *policy {
	case "shortest":
		cfg.Policy = bgp.ShortestPath
	case "novalley":
		cfg.Policy = bgp.NoValley
	default:
		return fmt.Errorf("unknown -policy %q", *policy)
	}

	if *shards > 1 && *checkOn {
		return fmt.Errorf("-check and -shards are incompatible (the invariant checker is sequential-engine)")
	}
	sc := experiment.Scenario{
		Graph:        g,
		ISP:          ispID,
		Config:       cfg,
		Pulses:       *pulses,
		FlapInterval: *interval,
		Check:        *checkOn,
	}
	if *shards > 1 {
		sc.Shards = *shards
	}
	if *traceFile != "" {
		sc.Trace = trace.NewLog(0)
	}
	if *loss > 0 || *jitter > 0 || *faultFile != "" {
		imp := faults.NewImpairments(*seed)
		if err := imp.SetDefault(faults.Profile{Loss: *loss, MaxJitter: *jitter}); err != nil {
			return err
		}
		sc.Impair = imp
		if sc.Shards > 1 {
			// The sharded engine requires engine-independent impairment
			// randomness: one stream per directed link instead of the single
			// global stream. (The two modes are different random sequences,
			// so a sharded faulty run is not comparable to a sequential one
			// unless the sequential run also uses -shards-style streams.)
			imp.UseLinkStreams()
		} else {
			// Faulty sequential runs drain under the watchdog: consistency is
			// checked at quiescent instants and a livelock aborts with a
			// diagnosis instead of burning the kernel's event limit. The
			// watchdog drives a single kernel, so sharded runs skip it.
			sc.Watchdog = &faults.WatchdogConfig{}
		}
		if *faultFile != "" {
			f, err := os.Open(*faultFile)
			if err != nil {
				return err
			}
			plan, err := faults.ParsePlan(f)
			f.Close()
			if err != nil {
				return err
			}
			sc.Faults = plan
		}
	}
	if *sweep != "" {
		if *traceFile != "" {
			return fmt.Errorf("-trace is incompatible with -sweep (one trace log cannot record parallel runs)")
		}
		if *progress {
			// Long sweeps stop being silent: warm-up and each point report to
			// stderr as they happen, leaving stdout's table untouched.
			ctx = experiment.WithProgress(ctx, experiment.TextProgress(os.Stderr))
		}
		return runSweep(ctx, sc, *sweep, *workers)
	}
	if *progress {
		return fmt.Errorf("-progress requires -sweep (single runs have no per-point feed)")
	}
	start := time.Now()
	res, err := experiment.RunContext(ctx, sc)
	if err != nil {
		return err
	}
	if sc.Trace != nil {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		if err := sc.Trace.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace             %d events -> %s (%d dropped)\n",
			sc.Trace.Len(), *traceFile, sc.Trace.Dropped())
	}

	fmt.Printf("topology          %s (isp=%d, origin=%d)\n", g, res.ISP, res.Origin)
	if sc.Shards > 1 {
		fmt.Printf("shards            %d\n", sc.Shards)
		if *verbose {
			// Reconstruct the run topology (base graph + attached origin) the
			// sharded engine partitioned and report the cut quality.
			rg := g.Clone()
			o := rg.AddNode()
			if err := rg.AddEdge(o, ispID); err != nil {
				return err
			}
			assign, err := topology.Partition(rg, sc.Shards)
			if err != nil {
				return err
			}
			fmt.Printf("partition         %s\n", topology.AnalyzePartition(rg, assign))
		}
	}
	fmt.Printf("workload          %d pulses, %v interval\n", res.Pulses, *interval)
	dampDesc := *damp
	if cfg.DampingEngine != damping.EngineExact {
		dampDesc += "/" + cfg.DampingEngine.String()
	}
	fmt.Printf("damping           %s (rcn=%t, policy=%s, mrai=%v)\n", dampDesc, *rcnOn, cfg.Policy, *mrai)
	fmt.Printf("convergence time  %.0f s\n", res.ConvergenceTime.Seconds())
	fmt.Printf("message count     %d\n", res.MessageCount)
	fmt.Printf("damped links max  %d\n", res.MaxDamped)
	fmt.Printf("origin suppressed %t\n", res.OriginSuppressed)
	fmt.Printf("reuses            %d noisy, %d silent\n", res.NoisyReuses, res.SilentReuses)
	fmt.Printf("phases            %s\n", res.Phases)
	if res.Check != nil {
		fmt.Printf("invariant check   %s\n", res.Check)
	}
	if res.FaultReport != nil {
		fmt.Printf("messages dropped  %d\n", res.Dropped)
		fmt.Printf("watchdog          %s\n", res.FaultReport)
		if res.FaultReport.Outcome != faults.Converged {
			for _, e := range res.FaultReport.Recent {
				fmt.Printf("  recent event    %v %s\n", e.At, e.Name)
			}
		}
	}
	fmt.Printf("wall time         %v\n", time.Since(start).Round(time.Millisecond))

	if *verbose {
		fmt.Println("\nupdate series (60 s bins):")
		for _, bin := range res.Updates.Bins(0, res.EndTime, time.Minute) {
			if bin.Count == 0 {
				continue
			}
			fmt.Printf("  %6.0fs %5d updates, %3d links damped\n",
				bin.Start.Seconds(), bin.Count, res.Damped.ValueAt(bin.Start))
		}
	}
	return nil
}

// runSweep runs the scenario once per pulse count in [from, to] and prints
// one row per point. The warm-up phase is shared: it executes once and every
// point forks the converged checkpoint (see experiment.SweepParallel).
func runSweep(ctx context.Context, sc experiment.Scenario, spec string, workers int) error {
	var from, to int
	if n, err := fmt.Sscanf(spec, "%d:%d", &from, &to); n != 2 || err != nil {
		return fmt.Errorf(`bad -sweep %q (want "from:to", e.g. "0:10")`, spec)
	}
	pulses := experiment.PulseRange(from, to)
	if len(pulses) == 0 {
		return fmt.Errorf("bad -sweep %q: empty range", spec)
	}
	start := time.Now()
	pts, err := experiment.SweepParallelContext(ctx, sc, pulses, workers)
	if err != nil {
		return err
	}
	fmt.Printf("sweep             pulses %d..%d, %d workers, shared warm-up\n", from, to, workers)
	fmt.Printf("%6s %14s %9s %11s %6s %7s\n",
		"pulses", "convergence_s", "messages", "max_damped", "noisy", "silent")
	for _, p := range pts {
		fmt.Printf("%6d %14.0f %9d %11d %6d %7d\n", p.Pulses,
			p.Result.ConvergenceTime.Seconds(), p.Result.MessageCount,
			p.Result.MaxDamped, p.Result.NoisyReuses, p.Result.SilentReuses)
	}
	fmt.Printf("wall time         %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// buildTopology constructs the requested base graph and its default ispAS.
func buildTopology(kind string, rows, cols, nodes int, seed uint64) (*topology.Graph, topology.NodeID, error) {
	if path, ok := strings.CutPrefix(kind, "caida:"); ok {
		g, err := topology.LoadASRelationships(path)
		if err != nil {
			return nil, 0, err
		}
		// Default ispAS: the best-connected AS (ties to the lowest id, i.e.
		// the lowest AS number).
		best := topology.NodeID(0)
		for v := topology.NodeID(1); int(v) < g.NumNodes(); v++ {
			if g.Degree(v) > g.Degree(best) {
				best = v
			}
		}
		return g, best, nil
	}
	switch kind {
	case "mesh":
		g, err := topology.Torus(rows, cols)
		return g, 0, err
	case "internet":
		g, err := topology.InternetDerived(topology.DefaultInternetConfig(nodes, seed))
		return g, topology.NodeID(nodes / 2), err
	case "ring":
		g, err := topology.Ring(nodes)
		return g, 0, err
	case "line":
		g, err := topology.Line(nodes)
		return g, 0, err
	default:
		return nil, 0, fmt.Errorf("unknown -topology %q", kind)
	}
}
