package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

const sampleLog = `0 initial
10 w
20 a
30 w
40 a
50 w
`

func TestRunReportsSuppression(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), nil, strings.NewReader(sampleLog), &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"SUPPRESSED", "suppressions:     1", "max penalty:", "final reuse at:"} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunQuiet(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-quiet"}, strings.NewReader(sampleLog), &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "SUPPRESSED (") {
		t.Fatal("quiet mode printed the timeline")
	}
	if !strings.Contains(out.String(), "suppressions:") {
		t.Fatal("quiet mode lost the summary")
	}
}

func TestRunPresets(t *testing.T) {
	for _, preset := range []string{"cisco", "juniper", "ripe229"} {
		var out bytes.Buffer
		if err := run(context.Background(), []string{"-params", preset, "-quiet"}, strings.NewReader(sampleLog), &out); err != nil {
			t.Fatalf("%s: %v", preset, err)
		}
	}
	if err := run(context.Background(), []string{"-params", "nope"}, strings.NewReader(sampleLog), &bytes.Buffer{}); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestRunOverrides(t *testing.T) {
	// Raising the cutoff above the achievable penalty suppresses nothing.
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-cutoff", "9000", "-quiet"}, strings.NewReader(sampleLog), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "suppressions:     0") {
		t.Fatalf("high cutoff still suppressed:\n%s", out.String())
	}
	// Inconsistent override is rejected.
	if err := run(context.Background(), []string{"-reuse", "5000"}, strings.NewReader(sampleLog), &bytes.Buffer{}); err == nil {
		t.Fatal("reuse above cutoff accepted")
	}
}

func TestRunEmptyInput(t *testing.T) {
	if err := run(context.Background(), nil, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestRunBadInput(t *testing.T) {
	if err := run(context.Background(), nil, strings.NewReader("garbage\n"), &bytes.Buffer{}); err == nil {
		t.Fatal("garbage input accepted")
	}
}
