// Command rfddamp evaluates route flap damping parameters offline against a
// recorded flap history: it replays the updates through the RFC 2439 engine
// and reports the penalty timeline, suppression episodes and reuse times.
// Operators can use it to compare parameter candidates (Cisco, Juniper,
// RIPE-229 or custom) without touching a router.
//
// The input is one update per line: "<seconds> <kind>", where kind is
// withdrawal|announcement|attr-change|initial|duplicate (or w|a|c).
// Lines starting with # are comments.
//
// Examples:
//
//	rfddamp -params cisco < flaps.log
//	rfddamp -params ripe229 -quiet < flaps.log
//	printf '0 initial\n10 w\n20 a\n30 w\n40 a\n50 w\n' | rfddamp
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rfd/damping"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rfddamp:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("rfddamp", flag.ContinueOnError)
	var (
		preset   = fs.String("params", "cisco", "parameter preset: cisco | juniper | ripe229")
		halfLife = fs.Duration("half-life", 0, "override the half-life")
		cutoff   = fs.Float64("cutoff", 0, "override the cut-off threshold")
		reuse    = fs.Float64("reuse", 0, "override the reuse threshold")
		quiet    = fs.Bool("quiet", false, "print only the summary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var params damping.Params
	switch *preset {
	case "cisco":
		params = damping.Cisco()
	case "juniper":
		params = damping.Juniper()
	case "ripe229":
		params = damping.RIPE229()
	default:
		return fmt.Errorf("unknown -params %q", *preset)
	}
	if *halfLife > 0 {
		params.HalfLife = *halfLife
	}
	if *cutoff > 0 {
		params.CutoffThreshold = *cutoff
	}
	if *reuse > 0 {
		params.ReuseThreshold = *reuse
	}
	if err := params.Validate(); err != nil {
		return err
	}

	updates, err := damping.ParseUpdateLog(in)
	if err != nil {
		return err
	}
	// Stdin may have been an interrupted pipe; do not replay a truncated log.
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(updates) == 0 {
		return fmt.Errorf("no updates on stdin (expected \"<seconds> <kind>\" lines)")
	}
	res, err := damping.Replay(params, updates)
	if err != nil {
		return err
	}

	if !*quiet {
		fmt.Fprintf(out, "%10s  %-16s %9s  %s\n", "time", "kind", "penalty", "state")
		for _, p := range res.Points {
			state := "ok"
			if p.BecameSuppressed {
				state = fmt.Sprintf("SUPPRESSED (reuse at %.0fs)", p.ReuseAt.Seconds())
			} else if p.Suppressed {
				state = fmt.Sprintf("suppressed (reuse at %.0fs)", p.ReuseAt.Seconds())
			}
			fmt.Fprintf(out, "%9.1fs  %-16s %9.1f  %s\n", p.At.Seconds(), p.Kind, p.Penalty, state)
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintf(out, "updates:          %d\n", len(res.Points))
	fmt.Fprintf(out, "max penalty:      %.1f (cutoff %.0f, ceiling %.0f)\n",
		res.MaxPenalty, params.CutoffThreshold, params.MaxPenalty())
	fmt.Fprintf(out, "suppressions:     %d\n", res.Suppressions)
	fmt.Fprintf(out, "suppressed total: %s\n", res.SuppressedTotal.Round(time.Second))
	if res.FinalReuseAt > 0 {
		fmt.Fprintf(out, "final reuse at:   %.0fs\n", res.FinalReuseAt.Seconds())
	}
	return nil
}
