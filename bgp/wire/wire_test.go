package wire

import (
	"strings"
	"testing"
	"testing/quick"

	"rfd/rcn"
)

func mustPrefix(t *testing.T, s string) Prefix {
	t.Helper()
	p, err := ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParsePrefix(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"10.0.0.0/8", "10.0.0.0/8", true},
		{"0.0.0.0/0", "0.0.0.0/0", true},
		{"255.255.255.255/32", "255.255.255.255/32", true},
		{"10.0.0.1/8", "", false},  // host bits
		{"10.0.0.0/33", "", false}, // length
		{"10.0.0/8", "", false},    // short
		{"10.0.0.0", "", false},    // no len
		{"a.b.c.d/8", "", false},   // junk
		{"10.0.0.0/-1", "", false}, // negative
		{"256.0.0.0/8", "", false}, // octet range
	}
	for _, c := range cases {
		p, err := ParsePrefix(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParsePrefix(%q) err = %v, want ok=%t", c.in, err, c.ok)
			continue
		}
		if c.ok && p.String() != c.want {
			t.Errorf("ParsePrefix(%q) = %s, want %s", c.in, p, c.want)
		}
	}
}

func TestParsePrefixAlignment(t *testing.T) {
	// 192.168.4.0/22 is actually aligned (4 = 0b100, mask keeps 6 bits).
	p, err := ParsePrefix("192.168.4.0/22")
	if err != nil {
		t.Fatalf("aligned /22 rejected: %v", err)
	}
	if p.String() != "192.168.4.0/22" {
		t.Fatalf("got %s", p)
	}
	// 192.168.1.0/22 is NOT aligned (1 = 0b001 inside the masked bits).
	if _, err := ParsePrefix("192.168.1.0/22"); err == nil {
		t.Fatal("unaligned /22 accepted")
	}
}

func TestUpdateRoundTripAnnouncement(t *testing.T) {
	u := &Update{
		NLRI:    []Prefix{mustPrefix(t, "10.0.0.0/8"), mustPrefix(t, "172.16.0.0/12")},
		Origin:  OriginIGP,
		ASPath:  []uint16{64512, 64513, 64514},
		NextHop: [4]byte{192, 0, 2, 1},
	}
	b, err := u.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) < HeaderLen {
		t.Fatal("too short")
	}
	got, err := UnmarshalUpdate(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.NLRI) != 2 || got.NLRI[0] != u.NLRI[0] || got.NLRI[1] != u.NLRI[1] {
		t.Fatalf("NLRI changed: %v", got.NLRI)
	}
	if len(got.ASPath) != 3 || got.ASPath[0] != 64512 || got.ASPath[2] != 64514 {
		t.Fatalf("AS path changed: %v", got.ASPath)
	}
	if got.NextHop != u.NextHop || got.Origin != u.Origin {
		t.Fatal("attributes changed")
	}
}

func TestUpdateRoundTripWithdrawal(t *testing.T) {
	u := &Update{Withdrawn: []Prefix{mustPrefix(t, "10.0.0.0/8")}}
	b, err := u.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalUpdate(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Withdrawn) != 1 || got.Withdrawn[0] != u.Withdrawn[0] {
		t.Fatalf("withdrawn changed: %v", got.Withdrawn)
	}
	if len(got.NLRI) != 0 || len(got.ASPath) != 0 {
		t.Fatal("phantom announcement fields")
	}
}

func TestUpdateRoundTripRootCause(t *testing.T) {
	u := &Update{
		NLRI:    []Prefix{mustPrefix(t, "10.0.0.0/8")},
		ASPath:  []uint16{1, 2},
		NextHop: [4]byte{192, 0, 2, 1},
		RootCause: rcn.Cause{
			U: 100, V: 101, Status: rcn.LinkDown, Seq: 42,
		},
	}
	b, err := u.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalUpdate(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.RootCause != u.RootCause {
		t.Fatalf("root cause changed: %v -> %v", u.RootCause, got.RootCause)
	}
}

func TestUpdateUnknownOptionalAttributeSkipped(t *testing.T) {
	u := &Update{
		NLRI:    []Prefix{mustPrefix(t, "10.0.0.0/8")},
		ASPath:  []uint16{1},
		NextHop: [4]byte{192, 0, 2, 1},
	}
	b, err := u.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Splice in an unknown optional transitive attribute (type 200, 2-byte
	// payload) before the NLRI: rebuild attr section length.
	// Simpler: decode, re-encode with RootCause replaced by manual attr is
	// complex — instead check behaviour via AttrRootCause path by toggling
	// the type byte of a root-cause attribute to an unknown optional type.
	u.RootCause = rcn.Cause{U: 1, V: 2, Status: rcn.LinkUp, Seq: 7}
	b, err = u.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Find the root-cause attribute (flags 0xc0, type 252) and rewrite the
	// type to 200.
	idx := -1
	for i := 0; i < len(b)-1; i++ {
		if b[i] == 0xc0 && b[i+1] == AttrRootCause {
			idx = i + 1
			break
		}
	}
	if idx < 0 {
		t.Fatal("root-cause attribute not found in encoding")
	}
	b[idx] = 200
	got, err := UnmarshalUpdate(b)
	if err != nil {
		t.Fatalf("unknown optional attribute rejected: %v", err)
	}
	if !got.RootCause.IsZero() {
		t.Fatal("unknown attribute decoded as root cause")
	}
}

func TestUpdateUnknownWellKnownAttributeRejected(t *testing.T) {
	u := &Update{
		NLRI:    []Prefix{mustPrefix(t, "10.0.0.0/8")},
		ASPath:  []uint16{1},
		NextHop: [4]byte{192, 0, 2, 1},
	}
	b, err := u.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite ORIGIN's type (first attribute, flags 0x40 type 1) to an
	// unknown well-known type 60.
	for i := 0; i < len(b)-1; i++ {
		if b[i] == 0x40 && b[i+1] == attrOrigin {
			b[i+1] = 60
			break
		}
	}
	if _, err := UnmarshalUpdate(b); err == nil {
		t.Fatal("unknown well-known attribute accepted")
	}
}

func TestUnmarshalUpdateMalformed(t *testing.T) {
	good, err := (&Update{
		NLRI:    []Prefix{mustPrefix(t, "10.0.0.0/8")},
		ASPath:  []uint16{1, 2},
		NextHop: [4]byte{192, 0, 2, 1},
	}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)-3] }},
		{"bad marker", func(b []byte) []byte { b[0] = 0; return b }},
		{"bad length field", func(b []byte) []byte { b[16] = 0xff; b[17] = 0xff; return b }},
		{"wrong type", func(b []byte) []byte { b[18] = TypeOpen; return b }},
		{"nlri length 33", func(b []byte) []byte { b[len(b)-2] = 33; return b }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := append([]byte(nil), good...)
			if _, err := UnmarshalUpdate(c.mutate(b)); err == nil {
				t.Fatal("malformed message accepted")
			}
		})
	}
}

func TestUnmarshalNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		// Must return an error or a message, never panic.
		_, _ = UnmarshalUpdate(b)
		_, _ = UnmarshalOpen(b)
		_ = UnmarshalKeepalive(b)
		_, _ = UnmarshalNotification(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalFuzzedHeaders(t *testing.T) {
	// Random bodies behind a valid header must not panic either.
	f := func(payload []byte) bool {
		if len(payload) > MaxMessageLen-HeaderLen {
			payload = payload[:MaxMessageLen-HeaderLen]
		}
		b := make([]byte, 0, HeaderLen+len(payload))
		for i := 0; i < 16; i++ {
			b = append(b, 0xff)
		}
		b = append(b, byte((HeaderLen+len(payload))>>8), byte(HeaderLen+len(payload)), TypeUpdate)
		b = append(b, payload...)
		_, _ = UnmarshalUpdate(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRoundTrip(t *testing.T) {
	o := &Open{Version: 4, AS: 64512, HoldTime: 180, RouterID: [4]byte{10, 0, 0, 1}}
	b, err := o.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalOpen(b)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *o {
		t.Fatalf("round trip changed: %+v -> %+v", o, got)
	}
}

func TestKeepaliveRoundTrip(t *testing.T) {
	b := MarshalKeepalive()
	if len(b) != HeaderLen {
		t.Fatalf("keepalive length %d", len(b))
	}
	if err := UnmarshalKeepalive(b); err != nil {
		t.Fatal(err)
	}
	if err := UnmarshalKeepalive(append(b, 0)); err == nil {
		t.Fatal("keepalive with body accepted")
	}
}

func TestNotificationRoundTrip(t *testing.T) {
	n := &Notification{Code: 6, Subcode: 2, Data: []byte("bye")}
	b, err := n.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalNotification(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Code != 6 || got.Subcode != 2 || string(got.Data) != "bye" {
		t.Fatalf("round trip changed: %+v", got)
	}
}

func TestMarshalValidation(t *testing.T) {
	if _, err := (&Update{NLRI: []Prefix{{Addr: [4]byte{10, 0, 0, 1}, Length: 8}}}).Marshal(); err == nil {
		t.Fatal("prefix with host bits accepted")
	}
	if _, err := (&Update{
		NLRI:   []Prefix{{Addr: [4]byte{10, 0, 0, 0}, Length: 8}},
		Origin: 9,
	}).Marshal(); err == nil {
		t.Fatal("invalid ORIGIN accepted")
	}
	long := &Update{NLRI: []Prefix{{Addr: [4]byte{10, 0, 0, 0}, Length: 8}}, ASPath: make([]uint16, 300)}
	if _, err := long.Marshal(); err == nil {
		t.Fatal("oversized AS path accepted")
	}
}

func TestErrorsMentionWire(t *testing.T) {
	_, err := UnmarshalUpdate(nil)
	if err == nil || !strings.Contains(err.Error(), "wire") {
		t.Fatalf("err = %v", err)
	}
}
