package wire

import (
	"fmt"

	"rfd/bgp"
)

// PrefixMapper translates the simulator's opaque prefix names into IPv4
// prefixes for wire encoding. Mappings must be stable within one export.
type PrefixMapper func(bgp.Prefix) (Prefix, error)

// StaticPrefixMap returns a PrefixMapper backed by a fixed table.
func StaticPrefixMap(table map[bgp.Prefix]string) (PrefixMapper, error) {
	parsed := make(map[bgp.Prefix]Prefix, len(table))
	for name, s := range table {
		p, err := ParsePrefix(s)
		if err != nil {
			return nil, fmt.Errorf("wire: prefix map entry %q: %w", name, err)
		}
		parsed[name] = p
	}
	return func(name bgp.Prefix) (Prefix, error) {
		p, ok := parsed[name]
		if !ok {
			return Prefix{}, fmt.Errorf("wire: no mapping for prefix %q", name)
		}
		return p, nil
	}, nil
}

// FromMessage converts one simulator update into a wire UPDATE. Router IDs
// become 2-byte AS numbers (offset by asBase so AS 0 is never emitted); the
// next hop is synthesized from the sending router's ID in 10.0.0.0/8.
func FromMessage(m bgp.Message, mapPrefix PrefixMapper, asBase uint16) (*Update, error) {
	p, err := mapPrefix(m.Prefix)
	if err != nil {
		return nil, err
	}
	u := &Update{RootCause: m.Cause}
	if m.Withdraw {
		u.Withdrawn = []Prefix{p}
		return u, nil
	}
	u.NLRI = []Prefix{p}
	u.Origin = OriginIGP
	u.ASPath = make([]uint16, 0, len(m.Path))
	for _, hop := range m.Path {
		asn := int(hop) + int(asBase)
		if asn < 1 || asn > 0xffff {
			return nil, fmt.Errorf("wire: router %d maps outside 2-byte AS space (base %d)", hop, asBase)
		}
		u.ASPath = append(u.ASPath, uint16(asn))
	}
	from := uint32(m.From)
	u.NextHop = [4]byte{10, byte(from >> 16), byte(from >> 8), byte(from)}
	return u, nil
}

// ToMessage converts a decoded UPDATE back into a simulator message. It is
// the inverse of FromMessage for single-prefix updates; reverseMap resolves
// the wire prefix back to its simulator name.
func ToMessage(u *Update, reverseMap func(Prefix) (bgp.Prefix, error), asBase uint16) (bgp.Message, error) {
	var m bgp.Message
	switch {
	case len(u.Withdrawn) == 1 && len(u.NLRI) == 0:
		m.Withdraw = true
		name, err := reverseMap(u.Withdrawn[0])
		if err != nil {
			return bgp.Message{}, err
		}
		m.Prefix = name
	case len(u.NLRI) == 1 && len(u.Withdrawn) == 0:
		name, err := reverseMap(u.NLRI[0])
		if err != nil {
			return bgp.Message{}, err
		}
		m.Prefix = name
		m.Path = make(bgp.Path, 0, len(u.ASPath))
		for _, asn := range u.ASPath {
			if asn < asBase {
				return bgp.Message{}, fmt.Errorf("wire: AS %d below base %d", asn, asBase)
			}
			m.Path = append(m.Path, bgp.RouterID(int(asn)-int(asBase)))
		}
		if len(m.Path) > 0 {
			m.From = m.Path[0]
		}
	default:
		return bgp.Message{}, fmt.Errorf("wire: update is not single-prefix (%d withdrawn, %d announced)",
			len(u.Withdrawn), len(u.NLRI))
	}
	m.Cause = u.RootCause
	return m, nil
}
