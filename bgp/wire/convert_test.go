package wire

import (
	"testing"
	"time"

	"rfd/bgp"
	"rfd/damping"
	"rfd/rcn"
	"rfd/sim"
	"rfd/topology"
)

func testMapper(t *testing.T) (PrefixMapper, func(Prefix) (bgp.Prefix, error)) {
	t.Helper()
	mapper, err := StaticPrefixMap(map[bgp.Prefix]string{
		"origin/8": "10.0.0.0/8",
	})
	if err != nil {
		t.Fatal(err)
	}
	reverse := func(p Prefix) (bgp.Prefix, error) {
		return bgp.Prefix("origin/8"), nil
	}
	return mapper, reverse
}

func TestStaticPrefixMapErrors(t *testing.T) {
	if _, err := StaticPrefixMap(map[bgp.Prefix]string{"x": "garbage"}); err == nil {
		t.Fatal("bad table entry accepted")
	}
	mapper, err := StaticPrefixMap(map[bgp.Prefix]string{"a/8": "10.0.0.0/8"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mapper("unknown/8"); err == nil {
		t.Fatal("unknown prefix mapped")
	}
}

func TestMessageWireRoundTrip(t *testing.T) {
	mapper, reverse := testMapper(t)
	const asBase = 100
	orig := bgp.Message{
		From:   3,
		To:     7,
		Prefix: "origin/8",
		Path:   bgp.Path{3, 5, 0},
		Cause:  rcn.Cause{U: 0, V: 99, Status: rcn.LinkUp, Seq: 4},
	}
	u, err := FromMessage(orig, mapper, asBase)
	if err != nil {
		t.Fatal(err)
	}
	b, err := u.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := UnmarshalUpdate(b)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ToMessage(decoded, reverse, asBase)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Path.Equal(orig.Path) {
		t.Fatalf("path changed: %v -> %v", orig.Path, back.Path)
	}
	if back.Prefix != orig.Prefix || back.Withdraw || back.Cause != orig.Cause {
		t.Fatalf("message changed: %+v", back)
	}
	if back.From != orig.From {
		t.Fatalf("From changed: %d -> %d", orig.From, back.From)
	}
}

func TestWithdrawalWireRoundTrip(t *testing.T) {
	mapper, reverse := testMapper(t)
	orig := bgp.Message{From: 1, To: 2, Prefix: "origin/8", Withdraw: true}
	u, err := FromMessage(orig, mapper, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := u.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := UnmarshalUpdate(b)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ToMessage(decoded, reverse, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Withdraw || back.Prefix != "origin/8" {
		t.Fatalf("withdrawal changed: %+v", back)
	}
}

func TestFromMessageASRangeValidation(t *testing.T) {
	mapper, _ := testMapper(t)
	m := bgp.Message{Prefix: "origin/8", Path: bgp.Path{0}}
	if _, err := FromMessage(m, mapper, 0); err == nil {
		t.Fatal("AS 0 accepted")
	}
	big := bgp.Message{Prefix: "origin/8", Path: bgp.Path{70000}}
	if _, err := FromMessage(big, mapper, 1); err == nil {
		t.Fatal("AS beyond 2-byte space accepted")
	}
}

func TestToMessageRejectsMultiPrefix(t *testing.T) {
	_, reverse := testMapper(t)
	u := &Update{
		Withdrawn: []Prefix{{Addr: [4]byte{10, 0, 0, 0}, Length: 8}},
		NLRI:      []Prefix{{Addr: [4]byte{11, 0, 0, 0}, Length: 8}},
		ASPath:    []uint16{5},
	}
	if _, err := ToMessage(u, reverse, 1); err == nil {
		t.Fatal("mixed update accepted")
	}
}

// TestExportLiveRunToWire streams every update of a real (small) simulation
// through the wire codec and back, verifying the encoding is lossless for
// everything the engine produces — including RCN causes.
func TestExportLiveRunToWire(t *testing.T) {
	g, err := topology.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	origin := g.AddNode()
	if err := g.AddEdge(origin, 0); err != nil {
		t.Fatal(err)
	}
	cfg := bgp.DefaultConfig()
	params := damping.Cisco()
	cfg.Damping = &params
	cfg.EnableRCN = true
	k := sim.NewKernel(sim.WithSeed(1))
	n, err := bgp.NewNetwork(k, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mapper, reverse := testMapper(t)
	const asBase = 1
	exported := 0
	n.SetHooks(bgp.Hooks{OnDeliver: func(_ time.Duration, m bgp.Message) {
		u, err := FromMessage(m, mapper, asBase)
		if err != nil {
			t.Fatalf("FromMessage(%s): %v", m, err)
		}
		b, err := u.Marshal()
		if err != nil {
			t.Fatalf("Marshal(%s): %v", m, err)
		}
		decoded, err := UnmarshalUpdate(b)
		if err != nil {
			t.Fatalf("Unmarshal(%s): %v", m, err)
		}
		back, err := ToMessage(decoded, reverse, asBase)
		if err != nil {
			t.Fatal(err)
		}
		if back.Withdraw != m.Withdraw || !back.Path.Equal(m.Path) ||
			back.Cause != m.Cause || back.Prefix != m.Prefix {
			t.Fatalf("lossy round trip: %s -> %s", m, back)
		}
		exported++
	}})
	n.Router(origin).Originate(bgp.Prefix("origin/8"))
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	n.Router(origin).StopOriginating(bgp.Prefix("origin/8"))
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if exported < 100 {
		t.Fatalf("only %d updates exported; expected a busy run", exported)
	}
}
