// Package wire implements the BGP-4 message encoding of RFC 4271 for the
// message types the simulator exercises — OPEN, UPDATE, KEEPALIVE and
// NOTIFICATION — plus an experimental optional-transitive path attribute
// carrying the paper's Root Cause Notification, so simulated update streams
// can be exported in (and re-imported from) the real on-the-wire format.
//
// The subset is faithful where implemented: 16-byte all-ones marker, 2-byte
// length, classic 2-byte AS numbers, IPv4 NLRI with bit-length prefix
// packing, and path attributes ORIGIN / AS_PATH (AS_SEQUENCE) / NEXT_HOP
// with correct flag handling and extended-length support on decode.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"rfd/rcn"
)

// Message type codes (RFC 4271 §4.1).
const (
	TypeOpen         = 1
	TypeUpdate       = 2
	TypeNotification = 3
	TypeKeepalive    = 4
)

// Path attribute type codes.
const (
	attrOrigin  = 1
	attrASPath  = 2
	attrNextHop = 3
	// AttrRootCause is the experimental optional-transitive attribute
	// carrying the RCN {link, status, seq} tuple (type 252 is in IANA's
	// experimental range).
	AttrRootCause = 252
)

// Origin attribute values.
const (
	OriginIGP        = 0
	OriginEGP        = 1
	OriginIncomplete = 2
)

// Header and message size constants (RFC 4271 §4.1).
const (
	HeaderLen     = 19
	MaxMessageLen = 4096
)

// ErrMalformed is wrapped by all decode errors.
var ErrMalformed = errors.New("wire: malformed message")

// Prefix is an IPv4 prefix in NLRI form.
type Prefix struct {
	// Addr holds the network address; bits beyond Length must be zero.
	Addr [4]byte
	// Length is the prefix length in bits, 0..32.
	Length uint8
}

// ParsePrefix parses dotted-quad/len notation, e.g. "10.1.0.0/16".
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("wire: prefix %q missing /len", s)
	}
	length, err := strconv.Atoi(s[slash+1:])
	if err != nil || length < 0 || length > 32 {
		return Prefix{}, fmt.Errorf("wire: prefix %q has invalid length", s)
	}
	parts := strings.Split(s[:slash], ".")
	if len(parts) != 4 {
		return Prefix{}, fmt.Errorf("wire: prefix %q is not dotted quad", s)
	}
	var p Prefix
	for i, part := range parts {
		octet, err := strconv.Atoi(part)
		if err != nil || octet < 0 || octet > 255 {
			return Prefix{}, fmt.Errorf("wire: prefix %q octet %d invalid", s, i)
		}
		p.Addr[i] = byte(octet)
	}
	p.Length = uint8(length)
	if err := p.validate(); err != nil {
		return Prefix{}, err
	}
	return p, nil
}

// String renders dotted-quad/len.
func (p Prefix) String() string {
	return fmt.Sprintf("%d.%d.%d.%d/%d", p.Addr[0], p.Addr[1], p.Addr[2], p.Addr[3], p.Length)
}

// validate checks the length range and that host bits are zero.
func (p Prefix) validate() error {
	if p.Length > 32 {
		return fmt.Errorf("wire: prefix length %d > 32", p.Length)
	}
	mask := uint32(0)
	if p.Length > 0 {
		mask = ^uint32(0) << (32 - uint32(p.Length))
	}
	addr := binary.BigEndian.Uint32(p.Addr[:])
	if addr&^mask != 0 {
		return fmt.Errorf("wire: prefix %s has non-zero host bits", p)
	}
	return nil
}

// nlriLen returns the encoded size: 1 length byte + ceil(Length/8) octets.
func (p Prefix) nlriLen() int { return 1 + int(p.Length+7)/8 }

// appendNLRI encodes the prefix in packed NLRI form.
func (p Prefix) appendNLRI(b []byte) []byte {
	b = append(b, p.Length)
	return append(b, p.Addr[:(p.Length+7)/8]...)
}

// decodeNLRI parses one packed prefix, returning it and the bytes consumed.
func decodeNLRI(b []byte) (Prefix, int, error) {
	if len(b) < 1 {
		return Prefix{}, 0, fmt.Errorf("%w: truncated NLRI", ErrMalformed)
	}
	length := b[0]
	if length > 32 {
		return Prefix{}, 0, fmt.Errorf("%w: NLRI length %d", ErrMalformed, length)
	}
	octets := int(length+7) / 8
	if len(b) < 1+octets {
		return Prefix{}, 0, fmt.Errorf("%w: truncated NLRI body", ErrMalformed)
	}
	var p Prefix
	p.Length = length
	copy(p.Addr[:octets], b[1:1+octets])
	if err := p.validate(); err != nil {
		return Prefix{}, 0, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return p, 1 + octets, nil
}

// Update is a decoded UPDATE message.
type Update struct {
	// Withdrawn lists the withdrawn prefixes.
	Withdrawn []Prefix
	// NLRI lists the announced prefixes (attributes below apply to them).
	NLRI []Prefix
	// Origin is the ORIGIN attribute (announcements only).
	Origin uint8
	// ASPath is the AS_PATH as one AS_SEQUENCE of classic 2-byte ASNs.
	ASPath []uint16
	// NextHop is the NEXT_HOP attribute.
	NextHop [4]byte
	// RootCause, when non-zero, is encoded as the experimental RCN
	// attribute.
	RootCause rcn.Cause
}

// appendHeader writes the 19-byte header for a body of the given length.
func appendHeader(b []byte, msgType byte, bodyLen int) ([]byte, error) {
	total := HeaderLen + bodyLen
	if total > MaxMessageLen {
		return nil, fmt.Errorf("wire: message length %d exceeds %d", total, MaxMessageLen)
	}
	for i := 0; i < 16; i++ {
		b = append(b, 0xff)
	}
	b = binary.BigEndian.AppendUint16(b, uint16(total))
	return append(b, msgType), nil
}

// attr appends one path attribute with standard (non-extended) length.
func attr(b []byte, flags, typ byte, payload []byte) ([]byte, error) {
	if len(payload) > 255 {
		// Use the extended-length form.
		b = append(b, flags|0x10, typ)
		b = binary.BigEndian.AppendUint16(b, uint16(len(payload)))
		return append(b, payload...), nil
	}
	b = append(b, flags, typ, byte(len(payload)))
	return append(b, payload...), nil
}

const (
	flagWellKnown  = 0x40 // transitive
	flagOptional   = 0xc0 // optional transitive
	flagExtendedLn = 0x10
)

// Marshal encodes the UPDATE per RFC 4271 §4.3.
func (u *Update) Marshal() ([]byte, error) {
	for _, p := range append(append([]Prefix{}, u.Withdrawn...), u.NLRI...) {
		if err := p.validate(); err != nil {
			return nil, err
		}
	}
	var withdrawn []byte
	for _, p := range u.Withdrawn {
		withdrawn = p.appendNLRI(withdrawn)
	}
	var attrs []byte
	if len(u.NLRI) > 0 {
		var err error
		if u.Origin > OriginIncomplete {
			return nil, fmt.Errorf("wire: invalid ORIGIN %d", u.Origin)
		}
		if attrs, err = attr(attrs, flagWellKnown, attrOrigin, []byte{u.Origin}); err != nil {
			return nil, err
		}
		if len(u.ASPath) > 255 {
			return nil, fmt.Errorf("wire: AS_PATH with %d hops exceeds one segment", len(u.ASPath))
		}
		seg := make([]byte, 0, 2+2*len(u.ASPath))
		seg = append(seg, 2 /* AS_SEQUENCE */, byte(len(u.ASPath)))
		for _, asn := range u.ASPath {
			seg = binary.BigEndian.AppendUint16(seg, asn)
		}
		if attrs, err = attr(attrs, flagWellKnown, attrASPath, seg); err != nil {
			return nil, err
		}
		if attrs, err = attr(attrs, flagWellKnown, attrNextHop, u.NextHop[:]); err != nil {
			return nil, err
		}
	}
	if !u.RootCause.IsZero() {
		payload := make([]byte, 0, 17)
		payload = binary.BigEndian.AppendUint32(payload, uint32(u.RootCause.U))
		payload = binary.BigEndian.AppendUint32(payload, uint32(u.RootCause.V))
		payload = append(payload, byte(u.RootCause.Status))
		payload = binary.BigEndian.AppendUint64(payload, u.RootCause.Seq)
		var err error
		if attrs, err = attr(attrs, flagOptional, AttrRootCause, payload); err != nil {
			return nil, err
		}
	}

	var nlri []byte
	for _, p := range u.NLRI {
		nlri = p.appendNLRI(nlri)
	}

	bodyLen := 2 + len(withdrawn) + 2 + len(attrs) + len(nlri)
	out, err := appendHeader(make([]byte, 0, HeaderLen+bodyLen), TypeUpdate, bodyLen)
	if err != nil {
		return nil, err
	}
	out = binary.BigEndian.AppendUint16(out, uint16(len(withdrawn)))
	out = append(out, withdrawn...)
	out = binary.BigEndian.AppendUint16(out, uint16(len(attrs)))
	out = append(out, attrs...)
	out = append(out, nlri...)
	return out, nil
}

// checkHeader validates marker/length/type and returns the body.
func checkHeader(b []byte, wantType byte) ([]byte, error) {
	if len(b) < HeaderLen {
		return nil, fmt.Errorf("%w: %d bytes < header", ErrMalformed, len(b))
	}
	for i := 0; i < 16; i++ {
		if b[i] != 0xff {
			return nil, fmt.Errorf("%w: bad marker at octet %d", ErrMalformed, i)
		}
	}
	total := int(binary.BigEndian.Uint16(b[16:18]))
	if total != len(b) || total > MaxMessageLen {
		return nil, fmt.Errorf("%w: length field %d != message size %d", ErrMalformed, total, len(b))
	}
	if b[18] != wantType {
		return nil, fmt.Errorf("%w: type %d, want %d", ErrMalformed, b[18], wantType)
	}
	return b[HeaderLen:], nil
}

// UnmarshalUpdate decodes an UPDATE message.
func UnmarshalUpdate(b []byte) (*Update, error) {
	body, err := checkHeader(b, TypeUpdate)
	if err != nil {
		return nil, err
	}
	if len(body) < 2 {
		return nil, fmt.Errorf("%w: truncated withdrawn length", ErrMalformed)
	}
	withdrawnLen := int(binary.BigEndian.Uint16(body[:2]))
	body = body[2:]
	if len(body) < withdrawnLen {
		return nil, fmt.Errorf("%w: truncated withdrawn routes", ErrMalformed)
	}
	u := &Update{}
	wd := body[:withdrawnLen]
	for len(wd) > 0 {
		p, n, err := decodeNLRI(wd)
		if err != nil {
			return nil, err
		}
		u.Withdrawn = append(u.Withdrawn, p)
		wd = wd[n:]
	}
	body = body[withdrawnLen:]

	if len(body) < 2 {
		return nil, fmt.Errorf("%w: truncated attribute length", ErrMalformed)
	}
	attrsLen := int(binary.BigEndian.Uint16(body[:2]))
	body = body[2:]
	if len(body) < attrsLen {
		return nil, fmt.Errorf("%w: truncated attributes", ErrMalformed)
	}
	attrs := body[:attrsLen]
	nlri := body[attrsLen:]

	for len(attrs) > 0 {
		if len(attrs) < 3 {
			return nil, fmt.Errorf("%w: truncated attribute header", ErrMalformed)
		}
		flags, typ := attrs[0], attrs[1]
		var alen, hdr int
		if flags&flagExtendedLn != 0 {
			if len(attrs) < 4 {
				return nil, fmt.Errorf("%w: truncated extended length", ErrMalformed)
			}
			alen = int(binary.BigEndian.Uint16(attrs[2:4]))
			hdr = 4
		} else {
			alen = int(attrs[2])
			hdr = 3
		}
		if len(attrs) < hdr+alen {
			return nil, fmt.Errorf("%w: attribute %d truncated", ErrMalformed, typ)
		}
		payload := attrs[hdr : hdr+alen]
		switch typ {
		case attrOrigin:
			if alen != 1 || payload[0] > OriginIncomplete {
				return nil, fmt.Errorf("%w: bad ORIGIN", ErrMalformed)
			}
			u.Origin = payload[0]
		case attrASPath:
			if err := decodeASPath(payload, u); err != nil {
				return nil, err
			}
		case attrNextHop:
			if alen != 4 {
				return nil, fmt.Errorf("%w: NEXT_HOP length %d", ErrMalformed, alen)
			}
			copy(u.NextHop[:], payload)
		case AttrRootCause:
			if alen != 17 {
				return nil, fmt.Errorf("%w: root-cause length %d", ErrMalformed, alen)
			}
			u.RootCause = rcn.Cause{
				U:      int(binary.BigEndian.Uint32(payload[0:4])),
				V:      int(binary.BigEndian.Uint32(payload[4:8])),
				Status: rcn.Status(payload[8]),
				Seq:    binary.BigEndian.Uint64(payload[9:17]),
			}
			if u.RootCause.Status != rcn.LinkDown && u.RootCause.Status != rcn.LinkUp {
				return nil, fmt.Errorf("%w: root-cause status %d", ErrMalformed, payload[8])
			}
		default:
			if flags&0x80 == 0 {
				// Unrecognized well-known attribute: error per RFC 4271.
				return nil, fmt.Errorf("%w: unrecognized well-known attribute %d", ErrMalformed, typ)
			}
			// Unrecognized optional attributes are skipped.
		}
		attrs = attrs[hdr+alen:]
	}

	for len(nlri) > 0 {
		p, n, err := decodeNLRI(nlri)
		if err != nil {
			return nil, err
		}
		u.NLRI = append(u.NLRI, p)
		nlri = nlri[n:]
	}
	if len(u.NLRI) > 0 && len(u.ASPath) == 0 {
		return nil, fmt.Errorf("%w: NLRI without AS_PATH", ErrMalformed)
	}
	return u, nil
}

// decodeASPath parses a single-segment AS_SEQUENCE path.
func decodeASPath(b []byte, u *Update) error {
	if len(b) == 0 {
		return nil
	}
	if len(b) < 2 {
		return fmt.Errorf("%w: truncated AS_PATH", ErrMalformed)
	}
	segType, count := b[0], int(b[1])
	if segType != 2 {
		return fmt.Errorf("%w: AS_PATH segment type %d unsupported", ErrMalformed, segType)
	}
	if len(b) != 2+2*count {
		return fmt.Errorf("%w: AS_PATH segment size", ErrMalformed)
	}
	for i := 0; i < count; i++ {
		u.ASPath = append(u.ASPath, binary.BigEndian.Uint16(b[2+2*i:]))
	}
	return nil
}

// Open is a decoded OPEN message (RFC 4271 §4.2, no optional parameters).
type Open struct {
	Version  uint8
	AS       uint16
	HoldTime uint16
	RouterID [4]byte
}

// Marshal encodes the OPEN message.
func (o *Open) Marshal() ([]byte, error) {
	out, err := appendHeader(make([]byte, 0, HeaderLen+10), TypeOpen, 10)
	if err != nil {
		return nil, err
	}
	out = append(out, o.Version)
	out = binary.BigEndian.AppendUint16(out, o.AS)
	out = binary.BigEndian.AppendUint16(out, o.HoldTime)
	out = append(out, o.RouterID[:]...)
	return append(out, 0 /* no optional parameters */), nil
}

// UnmarshalOpen decodes an OPEN message.
func UnmarshalOpen(b []byte) (*Open, error) {
	body, err := checkHeader(b, TypeOpen)
	if err != nil {
		return nil, err
	}
	if len(body) < 10 {
		return nil, fmt.Errorf("%w: OPEN body %d bytes", ErrMalformed, len(body))
	}
	o := &Open{
		Version:  body[0],
		AS:       binary.BigEndian.Uint16(body[1:3]),
		HoldTime: binary.BigEndian.Uint16(body[3:5]),
	}
	copy(o.RouterID[:], body[5:9])
	optLen := int(body[9])
	if len(body) != 10+optLen {
		return nil, fmt.Errorf("%w: OPEN optional parameter length", ErrMalformed)
	}
	return o, nil
}

// MarshalKeepalive encodes a KEEPALIVE (header only).
func MarshalKeepalive() []byte {
	out, err := appendHeader(make([]byte, 0, HeaderLen), TypeKeepalive, 0)
	if err != nil {
		panic("wire: keepalive cannot exceed max length") // impossible
	}
	return out
}

// UnmarshalKeepalive validates a KEEPALIVE message.
func UnmarshalKeepalive(b []byte) error {
	body, err := checkHeader(b, TypeKeepalive)
	if err != nil {
		return err
	}
	if len(body) != 0 {
		return fmt.Errorf("%w: KEEPALIVE with body", ErrMalformed)
	}
	return nil
}

// Notification is a decoded NOTIFICATION message.
type Notification struct {
	Code, Subcode uint8
	Data          []byte
}

// Marshal encodes the NOTIFICATION.
func (n *Notification) Marshal() ([]byte, error) {
	out, err := appendHeader(make([]byte, 0, HeaderLen+2+len(n.Data)), TypeNotification, 2+len(n.Data))
	if err != nil {
		return nil, err
	}
	out = append(out, n.Code, n.Subcode)
	return append(out, n.Data...), nil
}

// UnmarshalNotification decodes a NOTIFICATION message.
func UnmarshalNotification(b []byte) (*Notification, error) {
	body, err := checkHeader(b, TypeNotification)
	if err != nil {
		return nil, err
	}
	if len(body) < 2 {
		return nil, fmt.Errorf("%w: NOTIFICATION body %d bytes", ErrMalformed, len(body))
	}
	n := &Notification{Code: body[0], Subcode: body[1]}
	if len(body) > 2 {
		n.Data = append([]byte(nil), body[2:]...)
	}
	return n, nil
}
