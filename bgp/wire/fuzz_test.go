package wire

import (
	"bytes"
	"reflect"
	"testing"

	"rfd/rcn"
)

// FuzzUpdateRoundTrip checks the codec's fixed point: any UPDATE the decoder
// accepts and the encoder can re-emit must re-encode byte-identically after a
// second decode. The decoder is deliberately more liberal than the encoder
// (extended-length attributes, out-of-range ORIGIN values, oversized AS
// paths), so a Marshal error on a decoded update is fine — but instability
// of the encoded form is not. Malformed input must error, never panic.
func FuzzUpdateRoundTrip(f *testing.F) {
	seeds := []*Update{
		{NLRI: []Prefix{{Addr: [4]byte{10, 1, 0, 0}, Length: 16}},
			Origin: OriginIGP, ASPath: []uint16{3, 2, 1}, NextHop: [4]byte{192, 0, 2, 1}},
		{Withdrawn: []Prefix{{Addr: [4]byte{10, 1, 0, 0}, Length: 16}}},
		{NLRI: []Prefix{{Addr: [4]byte{203, 0, 113, 0}, Length: 24}},
			Origin: OriginIncomplete, ASPath: []uint16{65000}, NextHop: [4]byte{192, 0, 2, 9},
			RootCause: rcn.Cause{U: 3, V: 4, Status: rcn.LinkDown, Seq: 17}},
		{Withdrawn: []Prefix{{Addr: [4]byte{10, 2, 0, 0}, Length: 16}},
			RootCause: rcn.Cause{U: 1, V: 2, Status: rcn.LinkUp, Seq: 5}},
	}
	for _, u := range seeds {
		b, err := u.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		u1, err := UnmarshalUpdate(data)
		if err != nil {
			return
		}
		b1, err := u1.Marshal()
		if err != nil {
			return // decoder accepts forms the encoder cannot emit
		}
		u2, err := UnmarshalUpdate(b1)
		if err != nil {
			t.Fatalf("decoding own encoding failed: %v\nupdate: %+v", err, u1)
		}
		if !reflect.DeepEqual(u1, u2) {
			t.Fatalf("re-decode changed the update:\n got %+v\nwant %+v", u2, u1)
		}
		b2, err := u2.Marshal()
		if err != nil {
			t.Fatalf("re-encoding round-tripped update failed: %v", err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("encoding is unstable:\n first %x\nsecond %x", b1, b2)
		}
	})
}
