package bgp

import (
	"testing"
	"time"

	"rfd/damping"
	"rfd/rcn"
	"rfd/topology"
)

func TestSetLinkStateValidation(t *testing.T) {
	k, n := buildNet(t, mustLine(t, 3), nil)
	_ = k
	if err := n.SetLinkState(0, 2, false); err == nil {
		t.Fatal("nonexistent link accepted")
	}
	if !n.LinkUp(0, 1) {
		t.Fatal("fresh link reported down")
	}
	if n.LinkUp(0, 2) {
		t.Fatal("nonexistent link reported up")
	}
	if err := n.SetLinkState(0, 1, false); err != nil {
		t.Fatal(err)
	}
	if n.LinkUp(0, 1) || n.LinkUp(1, 0) {
		t.Fatal("failed link reported up")
	}
	// Idempotent.
	if err := n.SetLinkState(0, 1, false); err != nil {
		t.Fatal(err)
	}
	if err := n.SetLinkState(0, 1, true); err != nil {
		t.Fatal(err)
	}
	if !n.LinkUp(0, 1) {
		t.Fatal("restored link reported down")
	}
}

func TestLinkFailureWithdrawsRoutes(t *testing.T) {
	// Line 0-1-2: failing 0-1 must make 1 and 2 lose the route to 0.
	k, n := buildNet(t, mustLine(t, 3), nil)
	converge(t, k, n, 0)
	if err := n.SetLinkState(0, 1, false); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for id := 1; id <= 2; id++ {
		if _, ok := n.Router(RouterID(id)).LocalRoute(testPrefix); ok {
			t.Fatalf("router %d kept a route across the failed link", id)
		}
	}
	// The origin still has its own route.
	if _, ok := n.Router(0).LocalRoute(testPrefix); !ok {
		t.Fatal("origin lost its own route")
	}
}

func TestLinkRecoveryRestoresRoutes(t *testing.T) {
	k, n := buildNet(t, mustTorus(t, 4, 4), nil)
	converge(t, k, n, 0)
	if err := n.SetLinkState(0, 1, false); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// The torus stays connected, so everyone still reaches 0.
	for id := 1; id < n.NumRouters(); id++ {
		if _, ok := n.Router(RouterID(id)).LocalRoute(testPrefix); !ok {
			t.Fatalf("router %d lost the route despite alternate paths", id)
		}
	}
	// Router 1 must not be using the failed session.
	if peer, _ := n.Router(1).BestPeer(testPrefix); peer == 0 {
		t.Fatal("router 1 still routes via the failed link")
	}
	if err := n.SetLinkState(0, 1, true); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// After recovery, 1's best is the direct link again.
	if peer, _ := n.Router(1).BestPeer(testPrefix); peer != 0 {
		t.Fatalf("router 1 best peer = %d after recovery, want 0", peer)
	}
	if err := n.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestMessagesLostOnFailedLink(t *testing.T) {
	// Fail the link, then flap the origin: no deliveries may cross it.
	k, n := buildNet(t, mustTorus(t, 4, 4), nil)
	converge(t, k, n, 0)
	if err := n.SetLinkState(0, 1, false); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	n.SetHooks(Hooks{OnDeliver: func(_ time.Duration, m Message) {
		if (m.From == 0 && m.To == 1) || (m.From == 1 && m.To == 0) {
			t.Errorf("message crossed failed link: %s", m)
		}
	}})
	n.Router(0).StopOriginating(testPrefix)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	n.Router(0).Originate(testPrefix)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestInFlightMessagesLostWhenLinkFails(t *testing.T) {
	// Withdraw (messages go in flight), then immediately fail a link before
	// the kernel runs: the in-flight deliveries on that link must be lost,
	// and the network must still converge consistently.
	k, n := buildNet(t, mustTorus(t, 4, 4), nil)
	converge(t, k, n, 0)
	n.Router(0).StopOriginating(testPrefix)
	if err := n.SetLinkState(5, 6, false); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := n.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestLinkFlapChargesDamping(t *testing.T) {
	// Flapping the origin link directly (instead of toggling origination)
	// must drive the neighbor's damping penalty just the same: suppressed
	// at the 3rd cycle with Cisco parameters.
	g := mustTorus(t, 4, 4)
	origin, isp := attachOrigin(t, g, 0)
	k, n := buildNet(t, g, func(c *Config) {
		params := damping.Cisco()
		c.Damping = &params
	})
	converge(t, k, n, origin)
	n.ResetDamping()
	for i := 0; i < 3; i++ {
		if err := n.SetLinkState(origin, isp, false); err != nil {
			t.Fatal(err)
		}
		if err := k.RunUntil(k.Now() + 60*time.Second); err != nil {
			t.Fatal(err)
		}
		if err := n.SetLinkState(origin, isp, true); err != nil {
			t.Fatal(err)
		}
		if err := k.RunUntil(k.Now() + 60*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if !n.Router(isp).Suppressed(origin, testPrefix) {
		t.Fatalf("isp not suppressed after 3 link flaps (penalty %v)",
			n.Router(isp).Penalty(origin, testPrefix, k.Now()))
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLinkFlapGeneratesCauses(t *testing.T) {
	// With RCN, link events must stamp updates with the detecting node's
	// link cause, sequence increasing per event.
	g := mustTorus(t, 4, 4)
	origin, isp := attachOrigin(t, g, 0)
	k, n := buildNet(t, g, func(c *Config) {
		params := damping.Cisco()
		c.Damping = &params
		c.EnableRCN = true
	})
	converge(t, k, n, origin)
	n.ResetDamping()
	causes := make(map[rcn.Cause]bool)
	n.SetHooks(Hooks{OnDeliver: func(_ time.Duration, m Message) {
		if !m.Cause.IsZero() {
			causes[m.Cause] = true
		}
	}})
	if err := n.SetLinkState(origin, isp, false); err != nil {
		t.Fatal(err)
	}
	if err := k.RunUntil(k.Now() + 60*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := n.SetLinkState(origin, isp, true); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	var downSeen, upSeen bool
	for c := range causes {
		// The cause names the flapping link from the detecting side.
		if (c.U == int(origin) && c.V == int(isp)) || (c.U == int(isp) && c.V == int(origin)) {
			switch c.Status {
			case rcn.LinkDown:
				downSeen = true
			case rcn.LinkUp:
				upSeen = true
			}
		} else {
			t.Errorf("cause %s names a link other than the flapping one", c)
		}
	}
	if !downSeen || !upSeen {
		t.Fatalf("missing link causes: down=%t up=%t (%d causes)", downSeen, upSeen, len(causes))
	}
}

func TestLinkFlapRCNNoFalseSuppression(t *testing.T) {
	// One full link flap with RCN: no suppression anywhere (mirrors the
	// origination-flap test, via the link-event path).
	g := mustTorus(t, 4, 4)
	origin, isp := attachOrigin(t, g, 0)
	k, n := buildNet(t, g, func(c *Config) {
		params := damping.Cisco()
		c.Damping = &params
		c.EnableRCN = true
	})
	converge(t, k, n, origin)
	n.ResetDamping()
	suppressions := 0
	n.SetHooks(Hooks{OnSuppress: func(_ time.Duration, _, _ RouterID, _ Prefix, on bool) {
		if on {
			suppressions++
		}
	}})
	if err := n.SetLinkState(origin, isp, false); err != nil {
		t.Fatal(err)
	}
	if err := k.RunUntil(k.Now() + 60*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := n.SetLinkState(origin, isp, true); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if suppressions != 0 {
		t.Fatalf("%d suppressions after one RCN link flap", suppressions)
	}
}

func TestFailTwoLinksPartitionsAndHeals(t *testing.T) {
	// Ring of 4: failing two opposite links partitions {0,1} from {2,3}...
	// actually failing 1-2 and 3-0 separates {0,1} and {2,3}.
	g, err := topology.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	k, n := buildNet(t, g, nil)
	converge(t, k, n, 0)
	if err := n.SetLinkState(1, 2, false); err != nil {
		t.Fatal(err)
	}
	if err := n.SetLinkState(3, 0, false); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := n.Router(1).LocalRoute(testPrefix); !ok {
		t.Fatal("router 1 (same partition) lost the route")
	}
	for _, id := range []RouterID{2, 3} {
		if _, ok := n.Router(id).LocalRoute(testPrefix); ok {
			t.Fatalf("router %d (other partition) kept the route", id)
		}
	}
	// Heal and verify full recovery.
	if err := n.SetLinkState(1, 2, true); err != nil {
		t.Fatal(err)
	}
	if err := n.SetLinkState(3, 0, true); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 4; id++ {
		if _, ok := n.Router(RouterID(id)).LocalRoute(testPrefix); !ok {
			t.Fatalf("router %d routeless after healing", id)
		}
	}
	if err := n.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
