package bgp

import (
	"fmt"
	"sort"
	"time"

	"rfd/damping"
	"rfd/internal/xrand"
	"rfd/rcn"
	"rfd/sim"
	"rfd/topology"
)

// selfPeer marks a Local-RIB entry whose route is originated locally.
const selfPeer = RouterID(-1)

// ribInEntry is the adj-RIB-in state for one (peer slot, prefix id): the last
// route received (nil when withdrawn), the flap history damping needs, the
// damping state itself, and the pending reuse timer. Entries live inline in
// the router's dense RIB columns; seen distinguishes a live entry from the
// column's zero-valued padding.
type ribInEntry struct {
	path        Path
	everPresent bool
	seen        bool
	cause       rcn.Cause
	damp        damping.Engine
	reuseTimer  sim.Timer
}

// ribOutEntry is the adj-RIB-out state for one (peer slot, prefix id): what
// has been advertised, the MRAI timer, and the announcement waiting for it.
type ribOutEntry struct {
	advertised   Path
	pendingPath  Path
	pendingCause rcn.Cause
	mrai         sim.Timer
	pending      bool
	seen         bool
}

// localEntry is the Local-RIB entry for one prefix id. seen marks slots the
// decision process has ever written (the dense equivalent of map-key
// presence) and is ignored by equal.
type localEntry struct {
	hasRoute bool
	seen     bool
	bestPeer RouterID // selfPeer when originated locally
	bestPath Path     // the RIB-IN path of bestPeer (nil when self-originated)
}

func (l localEntry) equal(o localEntry) bool {
	return l.hasRoute == o.hasRoute && l.bestPeer == o.bestPeer && l.bestPath.Equal(o.bestPath)
}

// packSlotPrefix packs a peer slot and prefix id into a typed-event arg.
func packSlotPrefix(slot, pid int32) uint64 {
	return uint64(uint32(slot))<<32 | uint64(uint32(pid))
}

// mraiHandler and reuseHandler adapt the kernel's typed-event interface to
// the router's timer callbacks. They are fields of Router (not fresh
// allocations), so arming an MRAI or reuse timer allocates nothing.
type mraiHandler struct{ r *Router }

func (h *mraiHandler) HandleEvent(arg uint64) {
	h.r.mraiExpired(int32(arg>>32), int32(uint32(arg)))
}

type reuseHandler struct{ r *Router }

func (h *reuseHandler) HandleEvent(arg uint64) {
	h.r.reuseExpired(int32(arg>>32), int32(uint32(arg)))
}

// sweepHandler drives the wheel engine's periodic batch reuse sweep: one
// timer per router instead of one per suppressed prefix.
type sweepHandler struct{ r *Router }

func (h *sweepHandler) HandleEvent(uint64) { h.r.sweepExpired() }

// Router is one BGP speaker. Routers are created by NewNetwork — one per
// topology node — and driven entirely by simulation events.
//
// All per-session and per-prefix state is held in dense slices: peers map to
// slots 0..len(peers)-1 (ascending peer id order) and prefixes to the
// network's dense prefix ids, so the hot path indexes flat arrays instead of
// walking nested string-keyed maps.
type Router struct {
	id    RouterID
	net   *Network
	rng   *xrand.Rand
	peers []RouterID // sorted ascending; fixed at construction
	// peerSlot maps a RouterID to its slot in peers (-1 when not a peer).
	peerSlot []int32
	// damp holds this router's damping parameters (nil = damping disabled
	// here), resolved once at construction from Config.Damping /
	// Config.DampingSelect.
	damp *damping.Params
	// wheel is the router's timer-wheel damping backend, non-nil exactly
	// when damping is enabled here and Config.DampingEngine is EngineWheel.
	// All of the router's RIB-IN damping states are then WheelStates owned
	// by this wheel, and reuse is driven by sweepTimer instead of
	// per-entry reuseTimers.
	wheel *damping.Wheel
	// wheelLift adapts Wheel.Sweep's lift callback to reuseLifted. Built
	// once at construction so sweeps allocate nothing.
	wheelLift func(key uint64)

	ribIn      [][]ribInEntry   // [peer slot][prefix id]
	ribOut     [][]ribOutEntry  // [peer slot][prefix id]
	local      []localEntry     // [prefix id]
	originated []bool           // [prefix id] currently originating
	origSeen   []bool           // [prefix id] ever originated
	history    []*rcn.History   // per-peer-slot root-cause history (RCN)
	sequencers []*rcn.Sequencer // [prefix id] origination root causes
	linkSeq    []*rcn.Sequencer // [peer slot] link status-change root causes

	mraiH      mraiHandler
	reuseH     reuseHandler
	sweepH     sweepHandler
	sweepTimer sim.Timer
}

func newRouter(n *Network, id RouterID, rng *xrand.Rand) *Router {
	neighbors := n.graph.Neighbors(id)
	peers := make([]RouterID, len(neighbors))
	copy(peers, neighbors)
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	r := &Router{
		id:       id,
		net:      n,
		rng:      rng,
		peers:    peers,
		peerSlot: make([]int32, n.graph.NumNodes()),
		damp:     n.cfg.dampingFor(id),
		ribIn:    make([][]ribInEntry, len(peers)),
		ribOut:   make([][]ribOutEntry, len(peers)),
		history:  make([]*rcn.History, len(peers)),
		linkSeq:  make([]*rcn.Sequencer, len(peers)),
	}
	for i := range r.peerSlot {
		r.peerSlot[i] = -1
	}
	for s, p := range peers {
		r.peerSlot[p] = int32(s)
		r.history[s] = r.newHistory()
	}
	if r.damp != nil && n.cfg.DampingEngine == damping.EngineWheel {
		r.wheel = damping.NewWheel(*r.damp, n.cfg.WheelConfig)
		r.wheelLift = func(key uint64) {
			r.reuseLifted(int32(key>>32), int32(uint32(key)))
		}
	}
	r.mraiH = mraiHandler{r: r}
	r.reuseH = reuseHandler{r: r}
	r.sweepH = sweepHandler{r: r}
	return r
}

// newHistory returns a fresh per-peer root-cause history, or nil when RCN is
// disabled (histories are only consulted under EnableRCN, and the default
// capacity map is far too expensive to allocate per session for nothing).
func (r *Router) newHistory() *rcn.History {
	if !r.net.cfg.EnableRCN {
		return nil
	}
	return rcn.NewHistory(r.net.cfg.RCNHistorySize)
}

// ID returns the router's identifier.
func (r *Router) ID() RouterID { return r.id }

// Peers returns the router's neighbors in ascending order. The slice is
// shared and must not be modified.
func (r *Router) Peers() []RouterID { return r.peers }

// slotOf returns the peer's slot, -1 when peer is not a neighbor.
func (r *Router) slotOf(peer RouterID) int32 {
	if peer < 0 || int(peer) >= len(r.peerSlot) {
		return -1
	}
	return r.peerSlot[peer]
}

// Originate starts advertising prefix from this router. It is the
// experiment-facing knob that models the originAS side of the flapping link
// coming up: the update it triggers carries a fresh LinkUp root cause when
// RCN is enabled. Originating an already-originated prefix is a no-op.
func (r *Router) Originate(prefix Prefix) {
	pid := r.net.prefixID(prefix)
	r.originated = extend(r.originated, int(pid)+1)
	r.origSeen = extend(r.origSeen, int(pid)+1)
	if r.originated[pid] {
		return
	}
	r.originated[pid] = true
	r.origSeen[pid] = true
	r.reconcile(pid, r.originationCause(pid, rcn.LinkUp))
}

// StopOriginating withdraws a locally originated prefix, modelling the
// flapping link going down. A no-op when not originating.
func (r *Router) StopOriginating(prefix Prefix) {
	pid, ok := r.net.lookupPrefix(prefix)
	if !ok || !r.isOriginated(pid) {
		return
	}
	r.originated[pid] = false
	r.reconcile(pid, r.originationCause(pid, rcn.LinkDown))
}

// Originates reports whether the router currently originates prefix.
func (r *Router) Originates(prefix Prefix) bool {
	pid, ok := r.net.lookupPrefix(prefix)
	return ok && r.isOriginated(pid)
}

// isOriginated reports whether the router currently originates prefix id pid.
func (r *Router) isOriginated(pid int32) bool {
	return pid >= 0 && int(pid) < len(r.originated) && r.originated[pid]
}

// originationCause stamps an origination change with a root cause when RCN
// is on. The "link" of the cause is the router's (conceptual) uplink to the
// origin, identified by the router itself on both ends.
func (r *Router) originationCause(pid int32, status rcn.Status) rcn.Cause {
	if !r.net.cfg.EnableRCN {
		return rcn.Cause{}
	}
	r.sequencers = extend(r.sequencers, int(pid)+1)
	seq := r.sequencers[pid]
	if seq == nil {
		seq = &rcn.Sequencer{}
		r.sequencers[pid] = seq
	}
	return seq.Next(int(r.id), int(r.id), status)
}

// LocalRoute returns the router's current best path for prefix (nil for a
// self-originated route) and whether any route is installed. The returned
// path is an independent copy.
func (r *Router) LocalRoute(prefix Prefix) (Path, bool) {
	pid, _ := r.net.lookupPrefix(prefix)
	l := r.localAt(pid)
	return l.bestPath.Clone(), l.hasRoute
}

// BestPeer returns the peer the current best route was learned from
// (selfPeer == -1 for self-originated) and whether a route is installed.
func (r *Router) BestPeer(prefix Prefix) (RouterID, bool) {
	pid, _ := r.net.lookupPrefix(prefix)
	l := r.localAt(pid)
	return l.bestPeer, l.hasRoute
}

// localAt returns the Local-RIB entry for prefix id pid (zero when absent).
func (r *Router) localAt(pid int32) localEntry {
	if pid < 0 || int(pid) >= len(r.local) {
		return localEntry{}
	}
	return r.local[pid]
}

// Penalty returns the damping penalty for (peer, prefix) at virtual time
// now; zero when damping is disabled or no state exists.
func (r *Router) Penalty(peer RouterID, prefix Prefix, now time.Duration) float64 {
	pid, _ := r.net.lookupPrefix(prefix)
	if e := r.ribInAt(r.slotOf(peer), pid); e != nil && e.damp != nil {
		return e.damp.Penalty(now)
	}
	return 0
}

// Suppressed reports whether the route from peer for prefix is suppressed.
func (r *Router) Suppressed(peer RouterID, prefix Prefix) bool {
	pid, _ := r.net.lookupPrefix(prefix)
	e := r.ribInAt(r.slotOf(peer), pid)
	return e != nil && e.damp != nil && e.damp.Suppressed()
}

// ribInAt returns the live RIB-IN entry for (peer slot, prefix id), nil when
// absent. The pointer is invalidated by the next column growth; do not hold
// it across calls that may create entries.
func (r *Router) ribInAt(slot, pid int32) *ribInEntry {
	if slot < 0 || pid < 0 {
		return nil
	}
	col := r.ribIn[slot]
	if int(pid) >= len(col) || !col[pid].seen {
		return nil
	}
	return &col[pid]
}

// ribOutAt returns the live RIB-OUT entry for (peer slot, prefix id), nil
// when absent. Same aliasing caveat as ribInAt.
func (r *Router) ribOutAt(slot, pid int32) *ribOutEntry {
	if slot < 0 || pid < 0 {
		return nil
	}
	col := r.ribOut[slot]
	if int(pid) >= len(col) || !col[pid].seen {
		return nil
	}
	return &col[pid]
}

// ensureRibIn returns (creating if needed) the RIB-IN entry for (slot, pid).
func (r *Router) ensureRibIn(slot, pid int32) *ribInEntry {
	col := r.ribIn[slot]
	if int(pid) >= len(col) {
		col = extend(col, int(pid)+1)
		r.ribIn[slot] = col
	}
	e := &col[pid]
	if !e.seen {
		e.seen = true
		if r.wheel != nil {
			e.damp = r.wheel.NewState(packSlotPrefix(slot, pid))
		} else if r.damp != nil {
			e.damp = damping.NewState(*r.damp)
		}
	}
	return e
}

// ensureRibOut returns (creating if needed) the RIB-OUT entry for (slot, pid).
func (r *Router) ensureRibOut(slot, pid int32) *ribOutEntry {
	col := r.ribOut[slot]
	if int(pid) >= len(col) {
		col = extend(col, int(pid)+1)
		r.ribOut[slot] = col
	}
	e := &col[pid]
	e.seen = true
	return e
}

// procDelay draws the router's per-update processing delay.
func (r *Router) procDelay() time.Duration {
	cfg := r.net.cfg
	d := cfg.MinProcDelay
	if span := cfg.MaxProcDelay - cfg.MinProcDelay; span > 0 {
		d += time.Duration(r.rng.Intn(int(span)))
	}
	return d
}

// receive processes one delivered update: damping charge, RIB-IN update,
// decision process, export.
func (r *Router) receive(msg Message) {
	if !msg.Withdraw && msg.Path.Contains(r.id) {
		// Sender-side loop filtering makes this unreachable in this engine,
		// but a real peer could send such a route; BGP discards it.
		return
	}
	slot := r.slotOf(msg.From)
	if slot < 0 {
		panic(fmt.Sprintf("bgp: router %d has no session with %d", r.id, msg.From))
	}
	pid := r.net.prefixID(msg.Prefix)
	r.applyUpdate(slot, msg.From, pid, msg.Withdraw, msg.Path, msg.Cause)
	r.reconcile(pid, msg.Cause)
}

// applyUpdate folds one update (received from the peer, or synthesized by a
// session failure) into the RIB-IN entry and its damping state. path must be
// interned (or nil): it is stored without copying.
func (r *Router) applyUpdate(slot int32, from RouterID, pid int32, withdraw bool, path Path, cause rcn.Cause) {
	now := r.net.kernel.Now()
	if h := r.net.debugHooks.OnUpdate; h != nil {
		h(now, r.id, from, r.net.prefixes[pid], withdraw, path, cause)
	}
	e := r.ensureRibIn(slot, pid)

	present := e.path != nil
	attrsDiffer := !withdraw && !path.Equal(e.path)
	kind := damping.Classify(withdraw, present, e.everPresent, attrsDiffer)

	if e.damp != nil {
		charge := true
		chargeKind := kind
		if r.net.cfg.SelectiveDamping && !withdraw && present && len(path) > len(e.path) {
			// Selective damping (Mao et al.): an announcement whose route is
			// worse than the peer's previous one is judged to be path
			// exploration and does not charge the penalty. The heuristic is
			// deliberately imperfect — withdrawals, equal-length reroutes
			// and the eventual best-path re-announcements still charge, and
			// route-reuse updates are indistinguishable from fresh flaps —
			// which is exactly the gap the paper's Section 6 points out.
			charge = false
		}
		if r.net.cfg.EnableRCN {
			charge = r.history[slot].Witness(cause)
			if charge && !cause.IsZero() {
				// RCN-enhanced damping penalizes the *flap itself*, not the
				// perceived result of the flap (Section 7): a link-down root
				// cause charges the withdrawal penalty and a link-up cause
				// the re-announcement penalty, regardless of how the update
				// happens to be classified locally (an exploration update
				// may surface as an attribute change). This makes every
				// router's penalty mirror the origin-adjacent router's, so
				// suppression follows the intended single-router behaviour.
				if cause.Status == rcn.LinkDown {
					chargeKind = damping.KindWithdrawal
				} else {
					chargeKind = damping.KindReannouncement
				}
			}
		}
		ev := e.damp.Update(now, chargeKind, charge)
		if h := r.net.hooks.OnPenalty; h != nil && ev.Increment != 0 {
			h(now, r.id, from, r.net.prefixes[pid], ev.Penalty)
		}
		if ev.BecameSuppressed {
			if h := r.net.hooks.OnSuppress; h != nil {
				h(now, r.id, from, r.net.prefixes[pid], true)
			}
		}
		if ev.Suppressed && ev.ReuseIn > 0 {
			if r.wheel != nil {
				// The wheel state enrolled itself in a reuse list inside
				// Update; just make sure the router's periodic sweep is
				// running.
				r.armSweep(now)
			} else {
				// (Re-)arm the reuse timer for the latest penalty value;
				// charges while suppressed push the reuse instant later (the
				// timer interaction at the heart of the paper).
				r.armReuse(e, slot, pid, now+ev.ReuseIn)
			}
		}
	}

	if withdraw {
		e.path = nil
	} else {
		e.path = path
		e.everPresent = true
	}
	e.cause = cause
}

// linkCause stamps a session status change with a root cause when RCN is on
// (the detecting node names the link, as in Section 6.1).
func (r *Router) linkCause(slot int32, peer RouterID, status rcn.Status) rcn.Cause {
	if !r.net.cfg.EnableRCN {
		return rcn.Cause{}
	}
	seq := r.linkSeq[slot]
	if seq == nil {
		seq = &rcn.Sequencer{}
		r.linkSeq[slot] = seq
	}
	return seq.Next(int(r.id), int(peer), status)
}

// peerDown handles the local side of a failed link: the session's RIB-OUT
// state is discarded and every route learned from the peer is withdrawn
// (charging damping — a session flap is a route flap from this router's
// point of view).
func (r *Router) peerDown(peer RouterID) {
	slot := r.slotOf(peer)
	cause := r.linkCause(slot, peer, rcn.LinkDown)
	for _, prefix := range r.ribOutPrefixes(slot) {
		pid, _ := r.net.lookupPrefix(prefix)
		out := r.ribOutAt(slot, pid)
		out.advertised = nil
		out.pending = false
		out.mrai.Cancel()
	}
	for _, prefix := range r.ribInPrefixes(slot) {
		pid, _ := r.net.lookupPrefix(prefix)
		r.applyUpdate(slot, peer, pid, true, nil, cause)
		r.reconcile(pid, cause)
	}
}

// peerUp handles the local side of a restored link: a fresh session starts
// with an empty adj-RIB-out, so the router re-advertises its current best
// routes per the export policy. Routes from the peer arrive as the peer does
// the same.
func (r *Router) peerUp(peer RouterID) {
	slot := r.slotOf(peer)
	cause := r.linkCause(slot, peer, rcn.LinkUp)
	for _, prefix := range r.localPrefixes() {
		pid, _ := r.net.lookupPrefix(prefix)
		r.syncPeer(slot, peer, pid, cause)
	}
}

// sortPrefixes sorts prefixes ascending. It is the single shared ordering
// used by every prefix-enumeration site (RIB-IN, RIB-OUT, Local-RIB and the
// network-wide set): fault handling and consistency checking walk prefixes
// in this order, which is part of the engine's determinism contract.
func sortPrefixes(ps []Prefix) {
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
}

// ribInPrefixes returns the sorted prefixes with RIB-IN state from the peer
// in slot.
func (r *Router) ribInPrefixes(slot int32) []Prefix {
	col := r.ribIn[slot]
	out := make([]Prefix, 0, len(col))
	for pid := range col {
		if col[pid].seen {
			out = append(out, r.net.prefixes[pid])
		}
	}
	sortPrefixes(out)
	return out
}

// ribOutPrefixes returns the sorted prefixes with RIB-OUT state toward the
// peer in slot.
func (r *Router) ribOutPrefixes(slot int32) []Prefix {
	col := r.ribOut[slot]
	out := make([]Prefix, 0, len(col))
	for pid := range col {
		if col[pid].seen {
			out = append(out, r.net.prefixes[pid])
		}
	}
	sortPrefixes(out)
	return out
}

// localPrefixes returns the sorted prefixes with Local-RIB or origination
// state.
func (r *Router) localPrefixes() []Prefix {
	out := make([]Prefix, 0, len(r.local))
	for pid := range r.local {
		if r.local[pid].seen {
			out = append(out, r.net.prefixes[pid])
		}
	}
	for pid := range r.origSeen {
		if r.origSeen[pid] && (pid >= len(r.local) || !r.local[pid].seen) {
			out = append(out, r.net.prefixes[pid])
		}
	}
	sortPrefixes(out)
	return out
}

// armReuse replaces the entry's reuse timer with one firing at the given
// virtual instant.
func (r *Router) armReuse(e *ribInEntry, slot, pid int32, at time.Duration) {
	e.reuseTimer.Cancel()
	e.reuseTimer = r.net.kernel.AtHandler(at, "bgp.reuse", &r.reuseH, packSlotPrefix(slot, pid))
}

// reuseExpired handles a reuse-timer firing: lift suppression if the penalty
// has decayed enough, then re-run the decision process. Whether that changes
// the Local-RIB is the paper's noisy/silent distinction (Section 4.2).
func (r *Router) reuseExpired(slot, pid int32) {
	e := r.ribInAt(slot, pid)
	if e == nil || e.damp == nil || !e.damp.Suppressed() {
		return
	}
	now := r.net.kernel.Now()
	if !e.damp.TryReuse(now) {
		// The penalty was re-charged after this timer was armed (and the
		// rearm raced with delivery); try again at the new reuse instant.
		r.armReuse(e, slot, pid, now+e.damp.ReuseIn(now))
		return
	}
	peer := r.peers[slot]
	if h := r.net.hooks.OnSuppress; h != nil {
		h(now, r.id, peer, r.net.prefixes[pid], false)
	}
	noisy := r.reconcile(pid, e.cause)
	if h := r.net.hooks.OnReuse; h != nil {
		h(now, r.id, peer, r.net.prefixes[pid], noisy)
	}
}

// armSweep makes sure the wheel engine's periodic reuse sweep is armed for
// the next sweep boundary. A no-op while a sweep is already pending; the
// timer stays armed exactly while the wheel has enrolled streams.
func (r *Router) armSweep(now time.Duration) {
	if r.sweepTimer.Active() {
		return
	}
	r.sweepTimer = r.net.kernel.AtHandler(r.wheel.NextSweepAt(now), "bgp.dampsweep", &r.sweepH, 0)
}

// sweepExpired handles the wheel engine's periodic sweep: drain every reuse
// list that has come due, lifting suppression in batch, then re-arm while
// any stream remains enrolled (never on an empty wheel, so the kernel's
// event queue can drain).
func (r *Router) sweepExpired() {
	r.sweepTimer = sim.Timer{}
	now := r.net.kernel.Now()
	r.wheel.Sweep(now, r.wheelLift)
	if r.wheel.Enrolled() > 0 {
		r.armSweep(now)
	}
}

// reuseLifted is the wheel sweep's per-stream callback: suppression has
// already been lifted inside the wheel; re-run the decision process and
// emit the same hooks as the exact engine's reuseExpired.
func (r *Router) reuseLifted(slot, pid int32) {
	e := r.ribInAt(slot, pid)
	if e == nil {
		return
	}
	now := r.net.kernel.Now()
	peer := r.peers[slot]
	if h := r.net.hooks.OnSuppress; h != nil {
		h(now, r.id, peer, r.net.prefixes[pid], false)
	}
	noisy := r.reconcile(pid, e.cause)
	if h := r.net.hooks.OnReuse; h != nil {
		h(now, r.id, peer, r.net.prefixes[pid], noisy)
	}
}

// prefClass ranks where a route was learned under the active policy; larger
// is preferred. Under shortest-path policy all peers rank equally.
func (r *Router) prefClass(peer RouterID) int {
	if r.net.cfg.Policy != NoValley {
		return 2
	}
	switch r.net.graph.Relationship(r.id, peer) {
	case topology.RelCustomer:
		return 3
	case topology.RelProvider:
		return 1
	default: // peers and unannotated links
		return 2
	}
}

// decide runs the BGP decision process for a prefix id over the usable
// RIB-IN entries: policy preference, then shortest AS path, then lowest peer
// ID. Suppressed entries are excluded (the damping rule: a suppressed route
// does not enter the Local-RIB).
func (r *Router) decide(pid int32) localEntry {
	if r.isOriginated(pid) {
		return localEntry{hasRoute: true, bestPeer: selfPeer}
	}
	var best localEntry
	bestClass := 0
	for s, p := range r.peers {
		col := r.ribIn[s]
		if int(pid) >= len(col) {
			continue
		}
		e := &col[pid]
		if !e.seen || e.path == nil {
			continue
		}
		if e.damp != nil && e.damp.Suppressed() {
			continue
		}
		class := r.prefClass(p)
		better := false
		switch {
		case !best.hasRoute:
			better = true
		case class != bestClass:
			better = class > bestClass
		case len(e.path) != len(best.bestPath):
			better = len(e.path) < len(best.bestPath)
		default:
			better = p < best.bestPeer
		}
		if better {
			best = localEntry{hasRoute: true, bestPeer: p, bestPath: e.path}
			bestClass = class
		}
	}
	return best
}

// reconcile re-runs the decision process and, if the Local-RIB changed,
// synchronizes every RIB-OUT (sending or scheduling updates stamped with the
// triggering root cause). It reports whether the Local-RIB changed.
func (r *Router) reconcile(pid int32, trigger rcn.Cause) bool {
	r.local = extend(r.local, int(pid)+1)
	old := r.local[pid]
	best := r.decide(pid)
	if best.equal(old) {
		return false
	}
	best.seen = true
	r.local[pid] = best
	for s, q := range r.peers {
		r.syncPeer(int32(s), q, pid, trigger)
	}
	return true
}

// exportPath computes what (if anything) the router should advertise to peer
// q for a prefix id under the active policy: the canonical (interned) best
// path with the router prepended, or nil when filtered.
func (r *Router) exportPath(q RouterID, pid int32) Path {
	l := r.localAt(pid)
	if !l.hasRoute {
		return nil
	}
	if r.net.cfg.Policy == NoValley && l.bestPeer != selfPeer {
		// A route learned from a peer or a provider is exported only to
		// customers (no-valley: never provide transit between two
		// non-customers).
		if r.net.graph.Relationship(r.id, l.bestPeer) != topology.RelCustomer &&
			r.net.graph.Relationship(r.id, q) != topology.RelCustomer {
			return nil
		}
	}
	adv := r.net.paths.prepend(r.id, l.bestPath)
	if adv.Contains(q) {
		// Sender-side loop filter; also covers "don't echo a route back to
		// the peer it was learned from".
		return nil
	}
	return adv
}

// syncPeer brings the RIB-OUT for (q, prefix id) in line with the current
// export decision. Withdrawals leave immediately; announcements respect the
// MRAI timer (pending until it fires).
func (r *Router) syncPeer(slot int32, q RouterID, pid int32, trigger rcn.Cause) {
	if !r.net.SessionUp(r.id, q) {
		// No established session: nothing to synchronize. RIB-OUT state for
		// the session was discarded when it went down, and recording a new
		// advertisement here would desynchronize the RIBs — the message
		// would be lost in send, and the recovery re-sync (peerUp) would
		// then skip the route as already advertised. The recovery path
		// re-syncs from scratch instead.
		return
	}
	out := r.ensureRibOut(slot, pid)
	desired := r.exportPath(q, pid)
	switch {
	case desired == nil && out.advertised == nil:
		// Nothing advertised, nothing to advertise; drop any pending update.
		out.pending = false
	case desired == nil:
		// Withdrawals are not rate limited.
		out.advertised = nil
		out.pending = false
		r.net.send(Message{From: r.id, To: q, Prefix: r.net.prefixes[pid], Withdraw: true, Cause: trigger})
	case desired.Equal(out.advertised):
		out.pending = false
	default:
		if r.net.cfg.MRAI > 0 && out.mrai.Active() {
			out.pending = true
			out.pendingPath = desired
			out.pendingCause = trigger
		} else {
			r.sendAnnouncement(slot, q, pid, out, desired, trigger)
		}
	}
}

// sendAnnouncement transmits an announcement and starts the MRAI timer. path
// must be interned: the message carries it without copying.
func (r *Router) sendAnnouncement(slot int32, q RouterID, pid int32, out *ribOutEntry, path Path, cause rcn.Cause) {
	out.advertised = path
	out.pending = false
	r.net.send(Message{From: r.id, To: q, Prefix: r.net.prefixes[pid], Path: path, Cause: cause})
	mrai := r.net.cfg.MRAI
	if mrai <= 0 {
		return
	}
	if r.net.cfg.MRAIJitter {
		// RFC 4271 §9.2.1.1 jitter: multiply by a uniform factor in
		// [0.75, 1.0).
		mrai = time.Duration(float64(mrai) * (0.75 + 0.25*r.rng.Float64()))
	}
	out.mrai = r.net.kernel.AfterHandler(mrai, "bgp.mrai", &r.mraiH, packSlotPrefix(slot, pid))
}

// mraiExpired releases a pending announcement, if one is still wanted.
func (r *Router) mraiExpired(slot, pid int32) {
	out := r.ribOutAt(slot, pid)
	if out == nil || !out.pending {
		return
	}
	r.sendAnnouncement(slot, r.peers[slot], pid, out, out.pendingPath, out.pendingCause)
}

// resetDamping clears damping penalties, suppression flags, reuse timers and
// RCN histories, leaving routes untouched. See Network.ResetDamping.
func (r *Router) resetDamping() {
	for s := range r.peers {
		col := r.ribIn[s]
		for i := range col {
			e := &col[i]
			if !e.seen {
				continue
			}
			if e.damp != nil {
				// For wheel states Reset also detaches the entry from its
				// reuse list, so the wheel drains to empty here.
				e.damp.Reset()
			}
			e.reuseTimer.Cancel()
			e.reuseTimer = sim.Timer{}
		}
		r.history[s] = r.newHistory()
	}
	r.sweepTimer.Cancel()
	r.sweepTimer = sim.Timer{}
}

// crash discards the router's entire protocol state — RIB-IN, RIB-OUT,
// Local-RIB, damping state, RCN histories — and cancels every pending timer.
// Only the origin set and the RCN sequencers survive: the former models
// static configuration that outlives a reboot, the latter keeps root-cause
// sequence numbers monotonic across the restart.
func (r *Router) crash() {
	for s := range r.peers {
		colIn := r.ribIn[s]
		for i := range colIn {
			colIn[i].reuseTimer.Cancel()
		}
		clear(colIn)
		colOut := r.ribOut[s]
		for i := range colOut {
			colOut[i].mrai.Cancel()
		}
		clear(colOut)
		r.history[s] = r.newHistory()
	}
	if r.wheel != nil {
		r.wheel.Reset()
	}
	r.sweepTimer.Cancel()
	r.sweepTimer = sim.Timer{}
	clear(r.local)
}

// restart rebuilds the router after a crash: it re-runs origination for its
// configured prefixes, announcing them to whichever peers it currently has
// sessions with. Routes from peers arrive as the peers re-advertise
// (Network.RestartRouter drives that side).
func (r *Router) restart() {
	prefixes := make([]Prefix, 0, len(r.originated))
	for pid, on := range r.originated {
		if on {
			prefixes = append(prefixes, r.net.prefixes[pid])
		}
	}
	sortPrefixes(prefixes)
	for _, prefix := range prefixes {
		pid, _ := r.net.lookupPrefix(prefix)
		r.reconcile(pid, r.originationCause(pid, rcn.LinkUp))
	}
}

// suppressedCount returns how many of the router's RIB-IN entries are
// currently suppressed.
func (r *Router) suppressedCount() int {
	total := 0
	for s := range r.peers {
		col := r.ribIn[s]
		for i := range col {
			if e := &col[i]; e.seen && e.damp != nil && e.damp.Suppressed() {
				total++
			}
		}
	}
	return total
}

// checkLocalRIB verifies the stored Local-RIB entry equals a fresh run of
// the decision process.
func (r *Router) checkLocalRIB(prefix Prefix) error {
	pid, _ := r.net.lookupPrefix(prefix)
	want := r.decide(pid)
	got := r.localAt(pid)
	if !got.equal(want) {
		return fmt.Errorf("bgp: router %d prefix %s: Local-RIB (peer %d, path [%s]) != decision (peer %d, path [%s])",
			r.id, prefix, got.bestPeer, got.bestPath, want.bestPeer, want.bestPath)
	}
	return nil
}
