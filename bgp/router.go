package bgp

import (
	"fmt"
	"sort"
	"time"

	"rfd/damping"
	"rfd/internal/xrand"
	"rfd/rcn"
	"rfd/sim"
	"rfd/topology"
)

// selfPeer marks a Local-RIB entry whose route is originated locally.
const selfPeer = RouterID(-1)

// ribInEntry is the adj-RIB-in state for one (peer, prefix): the last route
// received (nil when withdrawn), the flap history damping needs, the damping
// state itself, and the pending reuse timer.
type ribInEntry struct {
	path        Path
	everPresent bool
	cause       rcn.Cause
	damp        *damping.State
	reuseTimer  *sim.Timer
}

// ribOutEntry is the adj-RIB-out state for one (peer, prefix): what has been
// advertised, the MRAI timer, and the announcement waiting for it.
type ribOutEntry struct {
	advertised   Path
	mrai         *sim.Timer
	pending      bool
	pendingPath  Path
	pendingCause rcn.Cause
}

// localEntry is the Local-RIB entry for one prefix.
type localEntry struct {
	hasRoute bool
	bestPeer RouterID // selfPeer when originated locally
	bestPath Path     // the RIB-IN path of bestPeer (nil when self-originated)
}

func (l localEntry) equal(o localEntry) bool {
	return l.hasRoute == o.hasRoute && l.bestPeer == o.bestPeer && l.bestPath.Equal(o.bestPath)
}

// Router is one BGP speaker. Routers are created by NewNetwork — one per
// topology node — and driven entirely by simulation events.
type Router struct {
	id    RouterID
	net   *Network
	rng   *xrand.Rand
	peers []RouterID // sorted ascending; fixed at construction
	// damp holds this router's damping parameters (nil = damping disabled
	// here), resolved once at construction from Config.Damping /
	// Config.DampingSelect.
	damp *damping.Params

	ribIn      map[RouterID]map[Prefix]*ribInEntry
	ribOut     map[RouterID]map[Prefix]*ribOutEntry
	local      map[Prefix]localEntry
	originated map[Prefix]bool
	history    map[RouterID]*rcn.History   // per-peer root-cause history (RCN)
	sequencers map[Prefix]*rcn.Sequencer   // origination root causes
	linkSeq    map[RouterID]*rcn.Sequencer // link status-change root causes
}

func newRouter(n *Network, id RouterID, rng *xrand.Rand) *Router {
	neighbors := n.graph.Neighbors(id)
	peers := make([]RouterID, len(neighbors))
	copy(peers, neighbors)
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	r := &Router{
		id:         id,
		net:        n,
		rng:        rng,
		peers:      peers,
		damp:       n.cfg.dampingFor(id),
		ribIn:      make(map[RouterID]map[Prefix]*ribInEntry, len(peers)),
		ribOut:     make(map[RouterID]map[Prefix]*ribOutEntry, len(peers)),
		local:      make(map[Prefix]localEntry),
		originated: make(map[Prefix]bool),
		history:    make(map[RouterID]*rcn.History, len(peers)),
		sequencers: make(map[Prefix]*rcn.Sequencer),
		linkSeq:    make(map[RouterID]*rcn.Sequencer, len(peers)),
	}
	for _, p := range peers {
		r.ribIn[p] = make(map[Prefix]*ribInEntry)
		r.ribOut[p] = make(map[Prefix]*ribOutEntry)
		r.history[p] = rcn.NewHistory(n.cfg.RCNHistorySize)
	}
	return r
}

// ID returns the router's identifier.
func (r *Router) ID() RouterID { return r.id }

// Peers returns the router's neighbors in ascending order. The slice is
// shared and must not be modified.
func (r *Router) Peers() []RouterID { return r.peers }

// Originate starts advertising prefix from this router. It is the
// experiment-facing knob that models the originAS side of the flapping link
// coming up: the update it triggers carries a fresh LinkUp root cause when
// RCN is enabled. Originating an already-originated prefix is a no-op.
func (r *Router) Originate(prefix Prefix) {
	if r.originated[prefix] {
		return
	}
	r.originated[prefix] = true
	r.reconcile(prefix, r.originationCause(prefix, rcn.LinkUp))
}

// StopOriginating withdraws a locally originated prefix, modelling the
// flapping link going down. A no-op when not originating.
func (r *Router) StopOriginating(prefix Prefix) {
	if !r.originated[prefix] {
		return
	}
	r.originated[prefix] = false
	r.reconcile(prefix, r.originationCause(prefix, rcn.LinkDown))
}

// Originates reports whether the router currently originates prefix.
func (r *Router) Originates(prefix Prefix) bool { return r.originated[prefix] }

// originationCause stamps an origination change with a root cause when RCN
// is on. The "link" of the cause is the router's (conceptual) uplink to the
// origin, identified by the router itself on both ends.
func (r *Router) originationCause(prefix Prefix, status rcn.Status) rcn.Cause {
	if !r.net.cfg.EnableRCN {
		return rcn.Cause{}
	}
	seq := r.sequencers[prefix]
	if seq == nil {
		seq = &rcn.Sequencer{}
		r.sequencers[prefix] = seq
	}
	return seq.Next(int(r.id), int(r.id), status)
}

// LocalRoute returns the router's current best path for prefix (nil for a
// self-originated route) and whether any route is installed.
func (r *Router) LocalRoute(prefix Prefix) (Path, bool) {
	l := r.local[prefix]
	return l.bestPath.Clone(), l.hasRoute
}

// BestPeer returns the peer the current best route was learned from
// (selfPeer == -1 for self-originated) and whether a route is installed.
func (r *Router) BestPeer(prefix Prefix) (RouterID, bool) {
	l := r.local[prefix]
	return l.bestPeer, l.hasRoute
}

// Penalty returns the damping penalty for (peer, prefix) at virtual time
// now; zero when damping is disabled or no state exists.
func (r *Router) Penalty(peer RouterID, prefix Prefix, now time.Duration) float64 {
	if e := r.ribIn[peer][prefix]; e != nil && e.damp != nil {
		return e.damp.Penalty(now)
	}
	return 0
}

// Suppressed reports whether the route from peer for prefix is suppressed.
func (r *Router) Suppressed(peer RouterID, prefix Prefix) bool {
	e := r.ribIn[peer][prefix]
	return e != nil && e.damp != nil && e.damp.Suppressed()
}

// ribInPath returns the stored RIB-IN path for (peer, prefix), nil if none.
func (r *Router) ribInPath(peer RouterID, prefix Prefix) Path {
	if e := r.ribIn[peer][prefix]; e != nil {
		return e.path
	}
	return nil
}

// advertised returns what the router has advertised to peer for prefix.
func (r *Router) advertised(peer RouterID, prefix Prefix) Path {
	if o := r.ribOut[peer][prefix]; o != nil {
		return o.advertised
	}
	return nil
}

// entry returns (creating if needed) the RIB-IN entry for (peer, prefix).
func (r *Router) entry(peer RouterID, prefix Prefix) *ribInEntry {
	m, ok := r.ribIn[peer]
	if !ok {
		panic(fmt.Sprintf("bgp: router %d has no session with %d", r.id, peer))
	}
	e := m[prefix]
	if e == nil {
		e = &ribInEntry{}
		if r.damp != nil {
			e.damp = damping.NewState(*r.damp)
		}
		m[prefix] = e
	}
	return e
}

// outEntry returns (creating if needed) the RIB-OUT entry for (peer, prefix).
func (r *Router) outEntry(peer RouterID, prefix Prefix) *ribOutEntry {
	m := r.ribOut[peer]
	o := m[prefix]
	if o == nil {
		o = &ribOutEntry{}
		m[prefix] = o
	}
	return o
}

// procDelay draws the router's per-update processing delay.
func (r *Router) procDelay() time.Duration {
	cfg := r.net.cfg
	d := cfg.MinProcDelay
	if span := cfg.MaxProcDelay - cfg.MinProcDelay; span > 0 {
		d += time.Duration(r.rng.Intn(int(span)))
	}
	return d
}

// receive processes one delivered update: damping charge, RIB-IN update,
// decision process, export.
func (r *Router) receive(msg Message) {
	if !msg.Withdraw && msg.Path.Contains(r.id) {
		// Sender-side loop filtering makes this unreachable in this engine,
		// but a real peer could send such a route; BGP discards it.
		return
	}
	r.applyUpdate(msg.From, msg.Prefix, msg.Withdraw, msg.Path, msg.Cause)
	r.reconcile(msg.Prefix, msg.Cause)
}

// applyUpdate folds one update (received from the peer, or synthesized by a
// session failure) into the RIB-IN entry and its damping state.
func (r *Router) applyUpdate(from RouterID, prefix Prefix, withdraw bool, path Path, cause rcn.Cause) {
	now := r.net.kernel.Now()
	e := r.entry(from, prefix)

	present := e.path != nil
	attrsDiffer := !withdraw && !path.Equal(e.path)
	kind := damping.Classify(withdraw, present, e.everPresent, attrsDiffer)

	if e.damp != nil {
		charge := true
		chargeKind := kind
		if r.net.cfg.SelectiveDamping && !withdraw && present && len(path) > len(e.path) {
			// Selective damping (Mao et al.): an announcement whose route is
			// worse than the peer's previous one is judged to be path
			// exploration and does not charge the penalty. The heuristic is
			// deliberately imperfect — withdrawals, equal-length reroutes
			// and the eventual best-path re-announcements still charge, and
			// route-reuse updates are indistinguishable from fresh flaps —
			// which is exactly the gap the paper's Section 6 points out.
			charge = false
		}
		if r.net.cfg.EnableRCN {
			charge = r.history[from].Witness(cause)
			if charge && !cause.IsZero() {
				// RCN-enhanced damping penalizes the *flap itself*, not the
				// perceived result of the flap (Section 7): a link-down root
				// cause charges the withdrawal penalty and a link-up cause
				// the re-announcement penalty, regardless of how the update
				// happens to be classified locally (an exploration update
				// may surface as an attribute change). This makes every
				// router's penalty mirror the origin-adjacent router's, so
				// suppression follows the intended single-router behaviour.
				if cause.Status == rcn.LinkDown {
					chargeKind = damping.KindWithdrawal
				} else {
					chargeKind = damping.KindReannouncement
				}
			}
		}
		ev := e.damp.Update(now, chargeKind, charge)
		if h := r.net.hooks.OnPenalty; h != nil && ev.Increment != 0 {
			h(now, r.id, from, prefix, ev.Penalty)
		}
		if ev.BecameSuppressed {
			if h := r.net.hooks.OnSuppress; h != nil {
				h(now, r.id, from, prefix, true)
			}
		}
		if ev.Suppressed && ev.ReuseIn > 0 {
			// (Re-)arm the reuse timer for the latest penalty value; charges
			// while suppressed push the reuse instant later (the timer
			// interaction at the heart of the paper).
			r.armReuse(e, from, prefix, now+ev.ReuseIn)
		}
	}

	if withdraw {
		e.path = nil
	} else {
		e.path = path.Clone()
		e.everPresent = true
	}
	e.cause = cause
}

// linkCause stamps a session status change with a root cause when RCN is on
// (the detecting node names the link, as in Section 6.1).
func (r *Router) linkCause(peer RouterID, status rcn.Status) rcn.Cause {
	if !r.net.cfg.EnableRCN {
		return rcn.Cause{}
	}
	seq := r.linkSeq[peer]
	if seq == nil {
		seq = &rcn.Sequencer{}
		r.linkSeq[peer] = seq
	}
	return seq.Next(int(r.id), int(peer), status)
}

// peerDown handles the local side of a failed link: the session's RIB-OUT
// state is discarded and every route learned from the peer is withdrawn
// (charging damping — a session flap is a route flap from this router's
// point of view).
func (r *Router) peerDown(peer RouterID) {
	cause := r.linkCause(peer, rcn.LinkDown)
	for _, prefix := range r.ribOutPrefixes(peer) {
		out := r.ribOut[peer][prefix]
		out.advertised = nil
		out.pending = false
		out.mrai.Cancel()
	}
	for _, prefix := range r.ribInPrefixes(peer) {
		r.applyUpdate(peer, prefix, true, nil, cause)
		r.reconcile(prefix, cause)
	}
}

// peerUp handles the local side of a restored link: a fresh session starts
// with an empty adj-RIB-out, so the router re-advertises its current best
// routes per the export policy. Routes from the peer arrive as the peer does
// the same.
func (r *Router) peerUp(peer RouterID) {
	cause := r.linkCause(peer, rcn.LinkUp)
	for _, prefix := range r.localPrefixes() {
		r.syncPeer(peer, prefix, cause)
	}
}

// ribInPrefixes returns the sorted prefixes with RIB-IN state from peer.
func (r *Router) ribInPrefixes(peer RouterID) []Prefix {
	m := r.ribIn[peer]
	out := make([]Prefix, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// armReuse replaces the entry's reuse timer with one firing at the given
// virtual instant.
func (r *Router) armReuse(e *ribInEntry, peer RouterID, prefix Prefix, at time.Duration) {
	e.reuseTimer.Cancel()
	e.reuseTimer = r.net.kernel.At(at, "bgp.reuse", func() {
		r.reuseExpired(peer, prefix)
	})
}

// reuseExpired handles a reuse-timer firing: lift suppression if the penalty
// has decayed enough, then re-run the decision process. Whether that changes
// the Local-RIB is the paper's noisy/silent distinction (Section 4.2).
func (r *Router) reuseExpired(peer RouterID, prefix Prefix) {
	e := r.ribIn[peer][prefix]
	if e == nil || e.damp == nil || !e.damp.Suppressed() {
		return
	}
	now := r.net.kernel.Now()
	if !e.damp.TryReuse(now) {
		// The penalty was re-charged after this timer was armed (and the
		// rearm raced with delivery); try again at the new reuse instant.
		r.armReuse(e, peer, prefix, now+e.damp.ReuseIn(now))
		return
	}
	if h := r.net.hooks.OnSuppress; h != nil {
		h(now, r.id, peer, prefix, false)
	}
	noisy := r.reconcile(prefix, e.cause)
	if h := r.net.hooks.OnReuse; h != nil {
		h(now, r.id, peer, prefix, noisy)
	}
}

// prefClass ranks where a route was learned under the active policy; larger
// is preferred. Under shortest-path policy all peers rank equally.
func (r *Router) prefClass(peer RouterID) int {
	if r.net.cfg.Policy != NoValley {
		return 2
	}
	switch r.net.graph.Relationship(r.id, peer) {
	case topology.RelCustomer:
		return 3
	case topology.RelProvider:
		return 1
	default: // peers and unannotated links
		return 2
	}
}

// decide runs the BGP decision process for prefix over the usable RIB-IN
// entries: policy preference, then shortest AS path, then lowest peer ID.
// Suppressed entries are excluded (the damping rule: a suppressed route does
// not enter the Local-RIB).
func (r *Router) decide(prefix Prefix) localEntry {
	if r.originated[prefix] {
		return localEntry{hasRoute: true, bestPeer: selfPeer}
	}
	var best localEntry
	bestClass := 0
	for _, p := range r.peers {
		e := r.ribIn[p][prefix]
		if e == nil || e.path == nil {
			continue
		}
		if e.damp != nil && e.damp.Suppressed() {
			continue
		}
		class := r.prefClass(p)
		better := false
		switch {
		case !best.hasRoute:
			better = true
		case class != bestClass:
			better = class > bestClass
		case len(e.path) != len(best.bestPath):
			better = len(e.path) < len(best.bestPath)
		default:
			better = p < best.bestPeer
		}
		if better {
			best = localEntry{hasRoute: true, bestPeer: p, bestPath: e.path}
			bestClass = class
		}
	}
	return best
}

// reconcile re-runs the decision process and, if the Local-RIB changed,
// synchronizes every RIB-OUT (sending or scheduling updates stamped with the
// triggering root cause). It reports whether the Local-RIB changed.
func (r *Router) reconcile(prefix Prefix, trigger rcn.Cause) bool {
	old := r.local[prefix]
	best := r.decide(prefix)
	if best.equal(old) {
		return false
	}
	r.local[prefix] = best
	for _, q := range r.peers {
		r.syncPeer(q, prefix, trigger)
	}
	return true
}

// exportPath computes what (if anything) the router should advertise to peer
// q for prefix under the active policy: the best path with the router
// prepended, or nil when filtered.
func (r *Router) exportPath(q RouterID, prefix Prefix) Path {
	l := r.local[prefix]
	if !l.hasRoute {
		return nil
	}
	if r.net.cfg.Policy == NoValley && l.bestPeer != selfPeer {
		// A route learned from a peer or a provider is exported only to
		// customers (no-valley: never provide transit between two
		// non-customers).
		if r.net.graph.Relationship(r.id, l.bestPeer) != topology.RelCustomer &&
			r.net.graph.Relationship(r.id, q) != topology.RelCustomer {
			return nil
		}
	}
	adv := l.bestPath.Prepend(r.id)
	if adv.Contains(q) {
		// Sender-side loop filter; also covers "don't echo a route back to
		// the peer it was learned from".
		return nil
	}
	return adv
}

// syncPeer brings the RIB-OUT for (q, prefix) in line with the current
// export decision. Withdrawals leave immediately; announcements respect the
// MRAI timer (pending until it fires).
func (r *Router) syncPeer(q RouterID, prefix Prefix, trigger rcn.Cause) {
	if !r.net.SessionUp(r.id, q) {
		// No established session: nothing to synchronize. RIB-OUT state for
		// the session was discarded when it went down, and recording a new
		// advertisement here would desynchronize the RIBs — the message
		// would be lost in send, and the recovery re-sync (peerUp) would
		// then skip the route as already advertised. The recovery path
		// re-syncs from scratch instead.
		return
	}
	out := r.outEntry(q, prefix)
	desired := r.exportPath(q, prefix)
	switch {
	case desired == nil && out.advertised == nil:
		// Nothing advertised, nothing to advertise; drop any pending update.
		out.pending = false
	case desired == nil:
		// Withdrawals are not rate limited.
		out.advertised = nil
		out.pending = false
		r.net.send(Message{From: r.id, To: q, Prefix: prefix, Withdraw: true, Cause: trigger})
	case desired.Equal(out.advertised):
		out.pending = false
	default:
		if r.net.cfg.MRAI > 0 && out.mrai.Active() {
			out.pending = true
			out.pendingPath = desired
			out.pendingCause = trigger
		} else {
			r.sendAnnouncement(q, prefix, out, desired, trigger)
		}
	}
}

// sendAnnouncement transmits an announcement and starts the MRAI timer.
func (r *Router) sendAnnouncement(q RouterID, prefix Prefix, out *ribOutEntry, path Path, cause rcn.Cause) {
	out.advertised = path
	out.pending = false
	r.net.send(Message{From: r.id, To: q, Prefix: prefix, Path: path.Clone(), Cause: cause})
	mrai := r.net.cfg.MRAI
	if mrai <= 0 {
		return
	}
	if r.net.cfg.MRAIJitter {
		// RFC 4271 §9.2.1.1 jitter: multiply by a uniform factor in
		// [0.75, 1.0).
		mrai = time.Duration(float64(mrai) * (0.75 + 0.25*r.rng.Float64()))
	}
	out.mrai = r.net.kernel.After(mrai, "bgp.mrai", func() {
		r.mraiExpired(q, prefix)
	})
}

// mraiExpired releases a pending announcement, if one is still wanted.
func (r *Router) mraiExpired(q RouterID, prefix Prefix) {
	out := r.outEntry(q, prefix)
	if !out.pending {
		return
	}
	r.sendAnnouncement(q, prefix, out, out.pendingPath, out.pendingCause)
}

// resetDamping clears damping penalties, suppression flags, reuse timers and
// RCN histories, leaving routes untouched. See Network.ResetDamping.
func (r *Router) resetDamping() {
	for _, p := range r.peers {
		for _, e := range r.ribIn[p] {
			if e.damp != nil {
				e.damp.Reset()
			}
			e.reuseTimer.Cancel()
			e.reuseTimer = nil
		}
		r.history[p] = rcn.NewHistory(r.net.cfg.RCNHistorySize)
	}
}

// crash discards the router's entire protocol state — RIB-IN, RIB-OUT,
// Local-RIB, damping state, RCN histories — and cancels every pending timer.
// Only the origin set and the RCN sequencers survive: the former models
// static configuration that outlives a reboot, the latter keeps root-cause
// sequence numbers monotonic across the restart.
func (r *Router) crash() {
	for _, p := range r.peers {
		for _, e := range r.ribIn[p] {
			e.reuseTimer.Cancel()
		}
		for _, o := range r.ribOut[p] {
			o.mrai.Cancel()
		}
		r.ribIn[p] = make(map[Prefix]*ribInEntry)
		r.ribOut[p] = make(map[Prefix]*ribOutEntry)
		r.history[p] = rcn.NewHistory(r.net.cfg.RCNHistorySize)
	}
	r.local = make(map[Prefix]localEntry)
}

// restart rebuilds the router after a crash: it re-runs origination for its
// configured prefixes, announcing them to whichever peers it currently has
// sessions with. Routes from peers arrive as the peers re-advertise
// (Network.RestartRouter drives that side).
func (r *Router) restart() {
	prefixes := make([]Prefix, 0, len(r.originated))
	for p, on := range r.originated {
		if on {
			prefixes = append(prefixes, p)
		}
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i] < prefixes[j] })
	for _, prefix := range prefixes {
		r.reconcile(prefix, r.originationCause(prefix, rcn.LinkUp))
	}
}

// suppressedCount returns how many of the router's RIB-IN entries are
// currently suppressed.
func (r *Router) suppressedCount() int {
	total := 0
	for _, p := range r.peers {
		for _, e := range r.ribIn[p] {
			if e.damp != nil && e.damp.Suppressed() {
				total++
			}
		}
	}
	return total
}

// ribOutPrefixes returns the sorted prefixes with RIB-OUT state toward peer.
func (r *Router) ribOutPrefixes(peer RouterID) []Prefix {
	m := r.ribOut[peer]
	out := make([]Prefix, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// localPrefixes returns the sorted prefixes with Local-RIB or origination
// state.
func (r *Router) localPrefixes() []Prefix {
	set := make(map[Prefix]struct{}, len(r.local))
	for p := range r.local {
		set[p] = struct{}{}
	}
	for p := range r.originated {
		set[p] = struct{}{}
	}
	out := make([]Prefix, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// checkLocalRIB verifies the stored Local-RIB entry equals a fresh run of
// the decision process.
func (r *Router) checkLocalRIB(prefix Prefix) error {
	want := r.decide(prefix)
	got := r.local[prefix]
	if !got.equal(want) {
		return fmt.Errorf("bgp: router %d prefix %s: Local-RIB (peer %d, path [%s]) != decision (peer %d, path [%s])",
			r.id, prefix, got.bestPeer, got.bestPath, want.bestPeer, want.bestPath)
	}
	return nil
}
