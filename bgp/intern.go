package bgp

// This file implements the per-network interning that makes the engine's
// per-message hot path allocation-free in steady state.
//
// AS paths: a flapping episode explores a small, heavily repeated set of
// paths (every router re-advertises its handful of alternates over and over),
// so each Network keeps one canonical Path per distinct hop sequence. The
// send path builds "me + my best path" via pathTable.prepend, which returns
// the canonical slice on a hit — no per-message copy — and Path.Equal
// collapses to a pointer comparison for canonical paths. Canonical paths are
// immutable by convention: nothing in the engine writes to a Path after it
// enters the table.
//
// Prefixes: routers index their RIBs by dense prefix id (and dense peer
// slot) instead of nested string-keyed maps; the Network owns the
// Prefix <-> id mapping. Experiments use a handful of prefixes, so the
// tables stay tiny; ids are assigned in first-use order and are stable for
// the network's lifetime.

// pathTable interns AS paths. The zero value is not ready; use newPathTable.
type pathTable struct {
	m   map[string]Path
	key []byte // scratch buffer for map lookups; reused across calls
}

func newPathTable() *pathTable {
	return &pathTable{m: make(map[string]Path, 64), key: make([]byte, 0, 64)}
}

// appendHop appends the fixed-width key encoding of one hop.
func appendHop(b []byte, id RouterID) []byte {
	v := uint32(id)
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// canonical returns the interned path for the scratch key, inserting build()
// on first sight. The m[string(key)] lookup does not allocate; only a miss
// copies the key and path.
func (t *pathTable) canonical(build func() Path) Path {
	if c, ok := t.m[string(t.key)]; ok {
		return c
	}
	c := build()
	t.m[string(t.key)] = c
	return c
}

// intern returns the canonical copy of p (nil for an empty path). The
// argument is copied on first sight, so callers may keep mutating their
// slice afterwards.
func (t *pathTable) intern(p Path) Path {
	if len(p) == 0 {
		return nil
	}
	k := t.key[:0]
	for _, hop := range p {
		k = appendHop(k, hop)
	}
	t.key = k
	return t.canonical(p.Clone)
}

// prepend returns the canonical path (id, tail...). This is the send-path
// replacement for tail.Prepend(id): on a table hit it costs one key build
// and one map probe, with no copy.
func (t *pathTable) prepend(id RouterID, tail Path) Path {
	k := appendHop(t.key[:0], id)
	for _, hop := range tail {
		k = appendHop(k, hop)
	}
	t.key = k
	return t.canonical(func() Path {
		c := make(Path, len(tail)+1)
		c[0] = id
		copy(c[1:], tail)
		return c
	})
}

// prefixID returns the dense id for prefix, assigning the next one on first
// sight and growing every router's per-prefix state to cover it.
func (n *Network) prefixID(prefix Prefix) int32 {
	if id, ok := n.prefixIDs[prefix]; ok {
		return id
	}
	id := int32(len(n.prefixes))
	n.prefixIDs[prefix] = id
	n.prefixes = append(n.prefixes, prefix)
	return id
}

// lookupPrefix returns the dense id for prefix without assigning one.
func (n *Network) lookupPrefix(prefix Prefix) (int32, bool) {
	id, ok := n.prefixIDs[prefix]
	return id, ok
}

// extend grows s with zero values until it has length n.
func extend[T any](s []T, n int) []T {
	if len(s) >= n {
		return s
	}
	return append(s, make([]T, n-len(s))...)
}
