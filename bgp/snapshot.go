package bgp

// This file implements deterministic snapshot/fork of a running network.
//
// A fork is a deep copy of everything mutable — kernel event queue, RIB
// columns, damping states, link/session arrays, interning tables, the
// in-flight message slab, every RNG stream position — wired to fresh handler
// values so the copy and the original evolve independently. Immutable
// structure is shared: the topology graph, the peer tables, and canonical
// interned Path slices (immutable by convention; sharing them keeps
// Path.Equal's pointer fast path working across forks).
//
// The intended use is the experiment layer's warm-up amortization: converge
// once, snapshot, then fork the converged checkpoint per sweep point. Because
// queue clones preserve slot indices and generations, the Timer handles
// embedded in RIB entries (MRAI, damping reuse) remain valid in the fork
// after Kernel.Adopt rebinds them.
//
// Two things deliberately do not cross a fork: observation hooks (forks start
// unobserved; measurement apparatus is per-run, not simulation state) and
// pending closure events (sim.ErrClosureEvent — fault plans and experiment
// orchestration must be applied to each fork after it is taken).

import (
	"fmt"
	"time"

	"rfd/damping"
	"rfd/rcn"
	"rfd/sim"
)

// ImpairmentForker is implemented by LinkImpairment models that can produce
// an independent copy at the same deterministic stream position (package
// faults' Impairments does). A network with an installed impairment can only
// be forked when the model implements this; otherwise both copies would share
// one RNG stream and neither would reproduce.
type ImpairmentForker interface {
	ForkImpairment() LinkImpairment
}

// Snapshot is an immutable checkpoint of a network and its kernel, taken with
// Network.Snapshot. It holds a private fork that is never run; Fork stamps
// out any number of independent, runnable copies from it. A Snapshot is safe
// for concurrent Fork calls from multiple goroutines — sweep workers each
// fork their own copy — because forking only reads the parked state.
type Snapshot struct {
	parked *Network
}

// Now returns the virtual time the snapshot was taken at.
func (s *Snapshot) Now() time.Duration { return s.parked.kernel.Now() }

// Snapshot captures the network and its kernel at the current instant. The
// network is unaffected and may continue running. It returns an error when
// the state cannot be forked: a pending closure event (sim.ErrClosureEvent)
// or an installed impairment model that does not implement ImpairmentForker.
func (n *Network) Snapshot() (*Snapshot, error) {
	parked, err := n.fork()
	if err != nil {
		return nil, err
	}
	return &Snapshot{parked: parked}, nil
}

// Fork materializes an independent runnable copy of the checkpoint: a fresh
// kernel at the captured virtual time and a fresh network bound to it.
// Every copy starts from the identical state; given identical subsequent
// stimuli they produce identical event sequences. No hooks are installed.
func (s *Snapshot) Fork() (*sim.Kernel, *Network, error) {
	f, err := s.parked.fork()
	if err != nil {
		return nil, nil, err
	}
	return f.kernel, f, nil
}

// Fork returns an independent copy of the network and a fresh kernel driving
// it, leaving the original untouched. Equivalent to Snapshot followed by one
// Snapshot.Fork, without parking an intermediate copy.
func (n *Network) Fork() (*sim.Kernel, *Network, error) {
	f, err := n.fork()
	if err != nil {
		return nil, nil, err
	}
	return f.kernel, f, nil
}

// fork builds the deep copy. Concurrent forks of the same receiver are safe
// (pure reads of the receiver); running the receiver concurrently with
// forking it is not.
func (n *Network) fork() (*Network, error) {
	return n.forkOnto(n.kernel.Fork())
}

// forkOnto builds the deep copy onto k2, which must be a fork of n's kernel
// taken at the same instant (queue clones preserve slot indices and
// generations, so the Timer handles embedded in RIB entries adopt cleanly
// only against a true fork). The split exists for the sharded engine:
// ShardedNetwork.Fork forks the whole kernel group first, then forks each
// shard network onto its pre-forked kernel.
func (n *Network) forkOnto(k2 *sim.Kernel) (*Network, error) {
	var impair LinkImpairment
	if n.impair != nil {
		forker, ok := n.impair.(ImpairmentForker)
		if !ok {
			return nil, fmt.Errorf("bgp: impairment model %T cannot be forked (does not implement ImpairmentForker)", n.impair)
		}
		impair = forker.ForkImpairment()
	}
	f := &Network{
		kernel:            k2,
		graph:             n.graph, // never mutated after construction
		cfg:               n.cfg,
		nn:                n.nn,
		adjStart:          n.adjStart, // CSR adjacency and delays are
		adjNbr:            n.adjNbr,   // immutable after construction —
		adjEdge:           n.adjEdge,  // shared, not copied
		linkDelay:         n.linkDelay,
		lastArrival:       cloneSlice(n.lastArrival),
		downLinks:         cloneSlice(n.downLinks),
		sessionGen:        cloneSlice(n.sessionGen),
		downRouters:       cloneSlice(n.downRouters),
		owner:             n.owner, // immutable partition assignment
		shardID:           n.shardID,
		impair:            impair,
		pendingDeliveries: n.pendingDeliveries,
		paths:             n.paths.clone(),
		prefixIDs:         make(map[Prefix]int32, len(n.prefixIDs)),
		prefixes:          cloneSlice(n.prefixes),
		msgSlab:           cloneSlice(n.msgSlab),
		msgFree:           cloneSlice(n.msgFree),
		delivered:         n.delivered,
		dropped:           n.dropped,
		lastDelivery:      n.lastDelivery,
		// hooks intentionally left zero: forks start unobserved.
	}
	for p, id := range n.prefixIDs {
		f.prefixIDs[p] = id
	}
	f.deliverH = deliverHandler{n: f}
	f.routers = make([]*Router, n.nn)
	for id, r := range n.routers {
		if r != nil { // shard networks leave unowned routers nil
			f.routers[id] = r.forkInto(f, k2)
		}
	}
	// The cloned queue's pending events still point at the original's handler
	// values; rebind them to the fork's.
	remap := make(map[sim.Handler]sim.Handler, 1+2*len(n.routers))
	remap[&n.deliverH] = &f.deliverH
	for id := range n.routers {
		if n.routers[id] == nil {
			continue
		}
		remap[&n.routers[id].mraiH] = &f.routers[id].mraiH
		remap[&n.routers[id].reuseH] = &f.routers[id].reuseH
		remap[&n.routers[id].sweepH] = &f.routers[id].sweepH
	}
	if err := k2.RemapHandlers(func(h sim.Handler) sim.Handler { return remap[h] }); err != nil {
		return nil, fmt.Errorf("bgp: fork: %w", err)
	}
	return f, nil
}

// forkInto deep-copies the router into network f, whose kernel k2 adopts the
// router's pending timers. Shared with the original: peers, peerSlot and damp
// (fixed at construction) and canonical Path slices (immutable).
func (r *Router) forkInto(f *Network, k2 *sim.Kernel) *Router {
	c := &Router{
		id:         r.id,
		net:        f,
		rng:        r.rng.Clone(),
		peers:      r.peers,
		peerSlot:   r.peerSlot,
		damp:       r.damp,
		ribIn:      make([][]ribInEntry, len(r.ribIn)),
		ribOut:     make([][]ribOutEntry, len(r.ribOut)),
		local:      cloneSlice(r.local),
		originated: cloneSlice(r.originated),
		origSeen:   cloneSlice(r.origSeen),
		history:    make([]*rcn.History, len(r.history)),
		sequencers: make([]*rcn.Sequencer, len(r.sequencers)),
		linkSeq:    make([]*rcn.Sequencer, len(r.linkSeq)),
	}
	// Wheel routers clone the whole wheel once — reuse lists, sweep clock and
	// all minted states, in order — then rebind each RIB entry to its cloned
	// state via the returned pointer map, preserving list membership exactly.
	var wmap map[*damping.WheelState]*damping.WheelState
	if r.wheel != nil {
		c.wheel, wmap = r.wheel.Clone()
		c.wheelLift = func(key uint64) {
			c.reuseLifted(int32(key>>32), int32(uint32(key)))
		}
	}
	for s, col := range r.ribIn {
		nc := cloneSlice(col)
		for i := range nc {
			switch d := nc[i].damp.(type) {
			case *damping.State:
				nc[i].damp = d.Clone()
			case *damping.WheelState:
				nc[i].damp = wmap[d]
			}
			nc[i].reuseTimer = k2.Adopt(nc[i].reuseTimer)
		}
		c.ribIn[s] = nc
	}
	for s, col := range r.ribOut {
		nc := cloneSlice(col)
		for i := range nc {
			nc[i].mrai = k2.Adopt(nc[i].mrai)
		}
		c.ribOut[s] = nc
	}
	for s, h := range r.history {
		if h != nil {
			c.history[s] = h.Clone()
		}
	}
	for i, seq := range r.sequencers {
		if seq != nil {
			cp := *seq
			c.sequencers[i] = &cp
		}
	}
	for i, seq := range r.linkSeq {
		if seq != nil {
			cp := *seq
			c.linkSeq[i] = &cp
		}
	}
	c.mraiH = mraiHandler{r: c}
	c.reuseH = reuseHandler{r: c}
	c.sweepH = sweepHandler{r: c}
	c.sweepTimer = k2.Adopt(r.sweepTimer)
	return c
}

// clone duplicates the intern table: a fresh map (forks intern new paths
// independently) and a fresh scratch buffer (the buffer is written on every
// lookup). The canonical Path values themselves are shared — they are
// immutable, and sharing keeps pointer-equality fast paths consistent
// between a fork and routes copied from its parent.
func (t *pathTable) clone() *pathTable {
	c := &pathTable{m: make(map[string]Path, len(t.m)), key: make([]byte, 0, cap(t.key))}
	for k, v := range t.m {
		c.m[k] = v
	}
	return c
}

// cloneSlice returns an independent copy of s, preserving nil.
func cloneSlice[T any](s []T) []T {
	if s == nil {
		return nil
	}
	return append(make([]T, 0, len(s)), s...)
}
