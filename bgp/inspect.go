package bgp

import (
	"time"

	"rfd/damping"
)

// This file is the read-only inspection surface the runtime invariant checker
// (package check) walks on every event. The views copy scalar state out of
// the dense RIB columns; paths are the engine's interned slices and must not
// be mutated. Iteration order is deterministic: ascending peer slot (= peer
// id) and prefix id.

// RIBInView is a snapshot of one adj-RIB-in entry.
type RIBInView struct {
	Peer   RouterID
	Prefix Prefix
	// Path is the last announced route, nil when withdrawn.
	Path        Path
	EverPresent bool
	// HasDamping reports whether this entry carries damping state; Penalty
	// and Suppressed are zero/false without it.
	HasDamping bool
	Penalty    float64
	Suppressed bool
	// ReuseAt is when the entry's suppression will next be reconsidered:
	// the per-entry reuse timer's firing instant under the exact engine, or
	// the sweep instant of the reuse list the entry is enrolled under with
	// the wheel engine. sim.Never when neither is pending.
	ReuseAt time.Duration
}

// RIBOutView is a snapshot of one adj-RIB-out entry.
type RIBOutView struct {
	Peer       RouterID
	Prefix     Prefix
	Advertised Path
	// Pending reports an announcement held back by MRAI; PendingPath is what
	// it would advertise.
	Pending     bool
	PendingPath Path
	// MRAIAt is when the MRAI timer fires, sim.Never when none is pending.
	MRAIAt time.Duration
}

// LocalView is a snapshot of one Local-RIB entry.
type LocalView struct {
	Prefix   Prefix
	HasRoute bool
	// SelfOriginated marks locally originated routes (BestPeer is then
	// meaningless and BestPath nil).
	SelfOriginated bool
	BestPeer       RouterID
	BestPath       Path
}

// EachRIBIn calls fn for every live RIB-IN entry, in (peer slot, prefix id)
// order. Penalties are decayed to the given instant.
func (r *Router) EachRIBIn(now time.Duration, fn func(RIBInView)) {
	for s := range r.peers {
		col := r.ribIn[s]
		for pid := range col {
			e := &col[pid]
			if !e.seen {
				continue
			}
			v := RIBInView{
				Peer:        r.peers[s],
				Prefix:      r.net.prefixes[pid],
				Path:        e.path,
				EverPresent: e.everPresent,
				ReuseAt:     e.reuseTimer.When(),
			}
			if e.damp != nil {
				v.HasDamping = true
				v.Penalty = e.damp.Penalty(now)
				v.Suppressed = e.damp.Suppressed()
				if ws, ok := e.damp.(*damping.WheelState); ok {
					if at, enrolled := ws.ReuseAt(); enrolled {
						v.ReuseAt = at
					}
				}
			}
			fn(v)
		}
	}
}

// EachRIBOut calls fn for every live RIB-OUT entry, in (peer slot, prefix id)
// order.
func (r *Router) EachRIBOut(fn func(RIBOutView)) {
	for s := range r.peers {
		col := r.ribOut[s]
		for pid := range col {
			e := &col[pid]
			if !e.seen {
				continue
			}
			fn(RIBOutView{
				Peer:        r.peers[s],
				Prefix:      r.net.prefixes[pid],
				Advertised:  e.advertised,
				Pending:     e.pending,
				PendingPath: e.pendingPath,
				MRAIAt:      e.mrai.When(),
			})
		}
	}
}

// EachLocal calls fn for every live Local-RIB entry, in prefix id order.
// Prefixes the router originates but has no Local-RIB slot for yet are not
// reported (they gain one on the first reconcile).
func (r *Router) EachLocal(fn func(LocalView)) {
	for pid := range r.local {
		e := r.local[pid]
		if !e.seen {
			continue
		}
		fn(LocalView{
			Prefix:         r.net.prefixes[pid],
			HasRoute:       e.hasRoute,
			SelfOriginated: e.hasRoute && e.bestPeer == selfPeer,
			BestPeer:       e.bestPeer,
			BestPath:       e.bestPath,
		})
	}
}

// DampingParams returns the router's damping parameters and whether damping
// is enabled here.
func (r *Router) DampingParams() (damping.Params, bool) {
	if r.damp == nil {
		return damping.Params{}, false
	}
	return *r.damp, true
}

// DebugDampingState returns the live damping state for (peer, prefix), nil
// when none exists. Under the exact engine it is a *damping.State, under the
// wheel engine a *damping.WheelState. It is a deliberate back door for
// fault-seeding tests of the invariant checker: mutating the returned state
// desynchronizes the engine from its own bookkeeping, which is exactly what
// such a test wants to provoke. Engine and experiment code must not use it.
func (r *Router) DebugDampingState(peer RouterID, prefix Prefix) damping.Engine {
	pid, ok := r.net.lookupPrefix(prefix)
	if !ok {
		return nil
	}
	e := r.ribInAt(r.slotOf(peer), pid)
	if e == nil {
		return nil
	}
	return e.damp
}
