package bgp

import (
	"testing"
	"time"

	"rfd/damping"
	"rfd/sim"
	"rfd/topology"
)

// attachOrigin adds the paper's originAS to a base topology, linked to the
// router that plays ispAS, and returns (origin, isp).
func attachOrigin(t *testing.T, g *topology.Graph, isp topology.NodeID) (RouterID, RouterID) {
	t.Helper()
	origin := g.AddNode()
	if err := g.AddEdge(origin, isp); err != nil {
		t.Fatal(err)
	}
	if g.Annotated() {
		// The origin is a customer of its ISP.
		if err := g.SetRelationship(origin, isp, topology.RelProvider); err != nil {
			t.Fatal(err)
		}
	}
	return origin, isp
}

// pulse sends one withdrawal followed 60 s later by an announcement, then
// waits another 60 s, matching the paper's flapping interval (Section 5.1).
func pulse(t *testing.T, k *sim.Kernel, n *Network, origin RouterID) {
	t.Helper()
	n.Router(origin).StopOriginating(testPrefix)
	if err := k.RunUntil(k.Now() + 60*time.Second); err != nil {
		t.Fatal(err)
	}
	n.Router(origin).Originate(testPrefix)
	if err := k.RunUntil(k.Now() + 60*time.Second); err != nil {
		t.Fatal(err)
	}
}

// dampedNet builds a damping-enabled network on a torus with an attached
// origin, converges it, and resets damping/counters (the paper's warm-up).
func dampedNet(t *testing.T, mutate func(*Config)) (*sim.Kernel, *Network, RouterID, RouterID) {
	t.Helper()
	g := mustTorus(t, 4, 4)
	origin, isp := attachOrigin(t, g, 0)
	k, n := buildNet(t, g, func(c *Config) {
		params := damping.Cisco()
		c.Damping = &params
		if mutate != nil {
			mutate(c)
		}
	})
	converge(t, k, n, origin)
	n.ResetDamping()
	n.ResetCounters()
	return k, n, origin, isp
}

func TestIspSuppressesAtThirdPulse(t *testing.T) {
	k, n, origin, isp := dampedNet(t, nil)
	pulse(t, k, n, origin)
	if n.Router(isp).Suppressed(origin, testPrefix) {
		t.Fatal("isp suppressed after 1 pulse")
	}
	pulse(t, k, n, origin)
	if n.Router(isp).Suppressed(origin, testPrefix) {
		t.Fatal("isp suppressed after 2 pulses")
	}
	pulse(t, k, n, origin)
	if !n.Router(isp).Suppressed(origin, testPrefix) {
		t.Fatalf("isp not suppressed after 3 pulses (penalty %v)",
			n.Router(isp).Penalty(origin, testPrefix, k.Now()))
	}
}

func TestMufflingIspWithdrawsWhenSuppressing(t *testing.T) {
	// Once ispAS suppresses the origin link it has no route, so it withdraws
	// and the whole network loses the destination (Section 4.3).
	k, n, origin, isp := dampedNet(t, nil)
	for i := 0; i < 3; i++ {
		pulse(t, k, n, origin)
	}
	if !n.Router(isp).Suppressed(origin, testPrefix) {
		t.Fatal("setup: isp not suppressed")
	}
	// Give in-flight exploration time to settle, then check unreachability.
	if err := k.RunUntil(k.Now() + 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, ok := n.Router(isp).LocalRoute(testPrefix); ok {
		t.Fatal("isp still has a route while suppressing its only source")
	}
	for id := 0; id < n.NumRouters(); id++ {
		if RouterID(id) == origin {
			continue
		}
		if _, ok := n.Router(RouterID(id)).LocalRoute(testPrefix); ok {
			t.Fatalf("router %d still reaches the origin during muffling", id)
		}
	}
}

func TestSuppressionBlocksFurtherFlaps(t *testing.T) {
	// After the origin link is suppressed, additional flaps must not leak
	// into the network (the intended behaviour, Section 3).
	k, n, origin, _ := dampedNet(t, nil)
	for i := 0; i < 4; i++ {
		pulse(t, k, n, origin)
	}
	if err := k.RunUntil(k.Now() + 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	before := n.Delivered()
	pulse(t, k, n, origin) // 5th pulse, arrives while suppressed
	// Only the origin->isp messages themselves are delivered; nothing
	// propagates beyond the isp.
	after := n.Delivered()
	if after-before > 2 {
		t.Fatalf("suppressed flap leaked %d updates into the network", after-before)
	}
}

func TestReuseEventuallyRestoresRoutes(t *testing.T) {
	k, n, origin, isp := dampedNet(t, nil)
	for i := 0; i < 5; i++ {
		pulse(t, k, n, origin)
	}
	// Drain everything: all reuse timers fire within the max hold-down.
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Router(isp).Suppressed(origin, testPrefix) {
		t.Fatal("isp still suppressed after full drain")
	}
	for id := 0; id < n.NumRouters(); id++ {
		if _, ok := n.Router(RouterID(id)).LocalRoute(testPrefix); !ok {
			t.Fatalf("router %d has no route after reuse", id)
		}
	}
	if err := n.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if n.DampedLinkCount() != 0 {
		t.Fatalf("%d links still suppressed after drain", n.DampedLinkCount())
	}
}

func TestFalseSuppressionFromPathExploration(t *testing.T) {
	// A single pulse must not suppress the origin link but must falsely
	// suppress links elsewhere (Mao et al., reproduced in Section 5.3: one
	// pulse damps hundreds of remote links on the mesh).
	k, n, origin, isp := dampedNet(t, nil)
	suppressedAny := 0
	n.SetHooks(Hooks{OnSuppress: func(_ time.Duration, _, _ RouterID, _ Prefix, on bool) {
		if on {
			suppressedAny++
		}
	}})
	pulse(t, k, n, origin)
	if n.Router(isp).Suppressed(origin, testPrefix) {
		t.Fatal("single pulse suppressed the origin link itself")
	}
	if suppressedAny == 0 {
		t.Fatal("single pulse caused no false suppression anywhere — path exploration broken?")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDampingDelaysConvergence(t *testing.T) {
	// The headline comparison: after a single pulse, the damped network
	// converges far later than the undamped one.
	run := func(withDamping bool) time.Duration {
		g := mustTorus(t, 4, 4)
		origin := g.AddNode()
		if err := g.AddEdge(origin, 0); err != nil {
			t.Fatal(err)
		}
		k, n := buildNet(t, g, func(c *Config) {
			if withDamping {
				params := damping.Cisco()
				c.Damping = &params
			}
		})
		converge(t, k, n, origin)
		n.ResetDamping()
		n.ResetCounters()
		n.Router(origin).StopOriginating(testPrefix)
		if err := k.RunUntil(k.Now() + 60*time.Second); err != nil {
			t.Fatal(err)
		}
		n.Router(origin).Originate(testPrefix)
		flapEnd := k.Now()
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return n.LastDelivery() - flapEnd
	}
	undamped := run(false)
	damped := run(true)
	if undamped > 5*time.Minute {
		t.Fatalf("undamped convergence %v unexpectedly slow", undamped)
	}
	if damped < 10*time.Minute {
		t.Fatalf("damped convergence %v; expected reuse-timer-scale delay (>=10m)", damped)
	}
}

func TestOnPenaltyAndOnSuppressHooks(t *testing.T) {
	k, n, origin, _ := dampedNet(t, nil)
	var penalties int
	onCount, offCount := 0, 0
	n.SetHooks(Hooks{
		OnPenalty: func(_ time.Duration, _, _ RouterID, _ Prefix, p float64) {
			if p <= 0 {
				t.Errorf("OnPenalty with non-positive penalty %v", p)
			}
			penalties++
		},
		OnSuppress: func(_ time.Duration, _, _ RouterID, _ Prefix, on bool) {
			if on {
				onCount++
			} else {
				offCount++
			}
		},
	})
	for i := 0; i < 3; i++ {
		pulse(t, k, n, origin)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if penalties == 0 {
		t.Fatal("OnPenalty never fired")
	}
	if onCount == 0 {
		t.Fatal("OnSuppress(true) never fired")
	}
	if onCount != offCount {
		t.Fatalf("unbalanced suppression transitions: %d on, %d off", onCount, offCount)
	}
}

func TestOnReuseNoisySilentClassification(t *testing.T) {
	k, n, origin, _ := dampedNet(t, nil)
	noisy, silent := 0, 0
	n.SetHooks(Hooks{OnReuse: func(_ time.Duration, _, _ RouterID, _ Prefix, wasNoisy bool) {
		if wasNoisy {
			noisy++
		} else {
			silent++
		}
	}})
	// One pulse: remote false suppression with the destination reachable,
	// so some reuses must be noisy (they restore better paths).
	pulse(t, k, n, origin)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if noisy+silent == 0 {
		t.Fatal("no reuse events at all")
	}
	if noisy == 0 {
		t.Fatal("all reuses silent after a single pulse; expected noisy reuses")
	}
}

func TestRCNPreventsFalseSuppression(t *testing.T) {
	// Section 6.2: with RCN, a single flap charges each (peer, prefix) once
	// per root cause, so path exploration cannot falsely suppress anything.
	k, n, origin, _ := dampedNet(t, func(c *Config) {
		c.EnableRCN = true
	})
	suppressions := 0
	n.SetHooks(Hooks{OnSuppress: func(_ time.Duration, _, _ RouterID, _ Prefix, on bool) {
		if on {
			suppressions++
		}
	}})
	pulse(t, k, n, origin)
	pulse(t, k, n, origin)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if suppressions != 0 {
		t.Fatalf("%d false suppressions with RCN after 2 pulses", suppressions)
	}
}

func TestRCNStillSuppressesPersistentFlapping(t *testing.T) {
	// RCN must not break damping's core function: the origin link itself is
	// still suppressed at the 3rd pulse (each flap is a NEW root cause).
	k, n, origin, isp := dampedNet(t, func(c *Config) {
		c.EnableRCN = true
	})
	pulse(t, k, n, origin)
	pulse(t, k, n, origin)
	if n.Router(isp).Suppressed(origin, testPrefix) {
		t.Fatal("suppressed too early with RCN")
	}
	pulse(t, k, n, origin)
	if !n.Router(isp).Suppressed(origin, testPrefix) {
		t.Fatal("RCN damping failed to suppress the origin link at pulse 3")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRCNRemotePenaltyBounded(t *testing.T) {
	// With RCN each pulse contributes at most one withdrawal charge (1000)
	// plus one re-announcement charge (0 for Cisco) per (peer, prefix),
	// regardless of how many exploration updates arrive.
	k, n, origin, _ := dampedNet(t, func(c *Config) {
		c.EnableRCN = true
	})
	maxPenalty := 0.0
	n.SetHooks(Hooks{OnPenalty: func(_ time.Duration, r, _ RouterID, _ Prefix, p float64) {
		if r != RouterID(int(origin)) && r != 0 {
			// Remote routers only (not isp=0, not origin).
			if p > maxPenalty {
				maxPenalty = p
			}
		}
	}})
	pulse(t, k, n, origin)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if maxPenalty > 1000 {
		t.Fatalf("remote penalty reached %v with RCN after one pulse; want <= 1000", maxPenalty)
	}
}

func TestRCNFasterConvergenceThanClassicDamping(t *testing.T) {
	run := func(enableRCN bool) time.Duration {
		g := mustTorus(t, 4, 4)
		origin := g.AddNode()
		if err := g.AddEdge(origin, 0); err != nil {
			t.Fatal(err)
		}
		k, n := buildNet(t, g, func(c *Config) {
			params := damping.Cisco()
			c.Damping = &params
			c.EnableRCN = enableRCN
		})
		converge(t, k, n, origin)
		n.ResetDamping()
		n.ResetCounters()
		n.Router(origin).StopOriginating(testPrefix)
		if err := k.RunUntil(k.Now() + 60*time.Second); err != nil {
			t.Fatal(err)
		}
		n.Router(origin).Originate(testPrefix)
		flapEnd := k.Now()
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return n.LastDelivery() - flapEnd
	}
	classic := run(false)
	withRCN := run(true)
	if withRCN >= classic {
		t.Fatalf("RCN did not improve single-pulse convergence: classic %v, RCN %v", classic, withRCN)
	}
	if withRCN > 5*time.Minute {
		t.Fatalf("RCN convergence %v; should match undamped BGP scale", withRCN)
	}
}

func TestCiscoVsJuniperSuppressionOnset(t *testing.T) {
	// Juniper charges re-announcements 1000 with cutoff 3000, so the origin
	// link is suppressed during the 2nd pulse; Cisco needs the 3rd.
	run := func(params damping.Params) int {
		g := mustTorus(t, 4, 4)
		origin := g.AddNode()
		if err := g.AddEdge(origin, 0); err != nil {
			t.Fatal(err)
		}
		k, n := buildNet(t, g, func(c *Config) {
			c.Damping = &params
		})
		converge(t, k, n, origin)
		n.ResetDamping()
		for i := 1; i <= 10; i++ {
			n.Router(origin).StopOriginating(testPrefix)
			if err := k.RunUntil(k.Now() + 60*time.Second); err != nil {
				t.Fatal(err)
			}
			n.Router(origin).Originate(testPrefix)
			if err := k.RunUntil(k.Now() + 60*time.Second); err != nil {
				t.Fatal(err)
			}
			if n.Router(0).Suppressed(origin, testPrefix) {
				return i
			}
		}
		return -1
	}
	if got := run(damping.Cisco()); got != 3 {
		t.Fatalf("Cisco suppression at pulse %d, want 3", got)
	}
	if got := run(damping.Juniper()); got != 2 {
		t.Fatalf("Juniper suppression at pulse %d, want 2", got)
	}
}
