package bgp

import (
	"time"

	"rfd/trace"
)

// MergeHooks fans every observation out to all the given hook sets, in
// order. Nil callbacks are skipped. Use it to combine metrics collection
// with tracing on one network.
func MergeHooks(hooks ...Hooks) Hooks {
	return Hooks{
		OnDeliver: func(at time.Duration, msg Message) {
			for _, h := range hooks {
				if h.OnDeliver != nil {
					h.OnDeliver(at, msg)
				}
			}
		},
		OnSuppress: func(at time.Duration, router, peer RouterID, prefix Prefix, on bool) {
			for _, h := range hooks {
				if h.OnSuppress != nil {
					h.OnSuppress(at, router, peer, prefix, on)
				}
			}
		},
		OnReuse: func(at time.Duration, router, peer RouterID, prefix Prefix, noisy bool) {
			for _, h := range hooks {
				if h.OnReuse != nil {
					h.OnReuse(at, router, peer, prefix, noisy)
				}
			}
		},
		OnPenalty: func(at time.Duration, router, peer RouterID, prefix Prefix, penalty float64) {
			for _, h := range hooks {
				if h.OnPenalty != nil {
					h.OnPenalty(at, router, peer, prefix, penalty)
				}
			}
		},
	}
}

// TraceHooks returns hooks that record every observation into log.
// Combine with other hooks via MergeHooks.
func TraceHooks(log *trace.Log) Hooks {
	return Hooks{
		OnDeliver: func(at time.Duration, msg Message) {
			e := trace.Event{
				At:       at,
				Kind:     trace.KindDeliver,
				Router:   int(msg.To),
				Peer:     int(msg.From),
				Prefix:   string(msg.Prefix),
				Withdraw: msg.Withdraw,
			}
			if len(msg.Path) > 0 {
				e.Path = msg.Path.String()
			}
			if !msg.Cause.IsZero() {
				e.Cause = msg.Cause.String()
			}
			log.Append(e)
		},
		OnSuppress: func(at time.Duration, router, peer RouterID, prefix Prefix, on bool) {
			kind := trace.KindSuppress
			if !on {
				kind = trace.KindUnsuppress
			}
			log.Append(trace.Event{
				At: at, Kind: kind,
				Router: int(router), Peer: int(peer), Prefix: string(prefix),
			})
		},
		OnReuse: func(at time.Duration, router, peer RouterID, prefix Prefix, noisy bool) {
			log.Append(trace.Event{
				At: at, Kind: trace.KindReuse,
				Router: int(router), Peer: int(peer), Prefix: string(prefix),
				Noisy: noisy,
			})
		},
		OnPenalty: func(at time.Duration, router, peer RouterID, prefix Prefix, penalty float64) {
			log.Append(trace.Event{
				At: at, Kind: trace.KindPenalty,
				Router: int(router), Peer: int(peer), Prefix: string(prefix),
				Penalty: penalty,
			})
		},
	}
}
