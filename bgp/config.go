package bgp

import (
	"fmt"
	"time"

	"rfd/damping"
)

// Policy selects the import-preference / export-filter pair routers apply.
type Policy int

const (
	// ShortestPath prefers shorter AS paths and exports the best route to
	// every peer (modulo loop filtering). This is the paper's default
	// policy for Sections 4–6.
	ShortestPath Policy = iota + 1
	// NoValley implements the customer/peer/provider policy of Section 7:
	// routes learned from customers are preferred over routes learned from
	// peers over routes learned from providers, and a route is exported to a
	// peer or provider only if it was learned from a customer (or originated
	// locally). Requires a relationship-annotated topology.
	NoValley
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case ShortestPath:
		return "shortest-path"
	case NoValley:
		return "no-valley"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config assembles the per-network protocol parameters. The zero value is
// not valid; start from DefaultConfig.
type Config struct {
	// Policy selects route preference and export filtering.
	Policy Policy

	// Damping, when non-nil, enables route flap damping with the given
	// parameters at every router. Nil disables damping network-wide.
	Damping *damping.Params

	// DampingSelect, when non-nil, overrides Damping per router: it is
	// called once per router at network construction and returns that
	// router's parameters, or nil to disable damping there. This models the
	// paper's partial-deployment and inconsistent-parameter discussions
	// (RFC 3221 notes both are the deployed reality; Section 6 shows
	// parameter diversity alone causes secondary charging). The function
	// must be pure — it is part of the deterministic run identity.
	DampingSelect func(RouterID) *damping.Params

	// DampingEngine selects the damping backend at routers with damping
	// enabled. The zero value (damping.EngineExact) keeps the reference
	// per-prefix exact-decay implementation and its bit-for-bit behavior;
	// damping.EngineWheel switches to the timer-wheel backend (quantized
	// decay table, bucketed reuse lists, one batch sweep timer per router)
	// for large tables, trading a bounded quantization error — see
	// damping.Wheel. No effect when damping is disabled.
	DampingEngine damping.EngineKind

	// WheelConfig tunes the timer-wheel backend's quantization geometry
	// when DampingEngine is damping.EngineWheel. Zero-valued fields fall
	// back to damping.DefaultWheelConfig. It changes quantized results, so
	// it is part of the deterministic run identity. Ignored under the
	// exact engine.
	WheelConfig damping.WheelConfig

	// EnableRCN attaches root causes to updates and charges the damping
	// penalty only once per (peer, root cause), per Section 6. It has no
	// effect at routers without damping.
	EnableRCN bool

	// SelectiveDamping enables the "selective route flap damping" baseline
	// of Mao et al. (SIGCOMM 2002), the paper's Section 6 comparator: every
	// announcement carries the sender's route-preference value (here: AS
	// path length, lower is better), and the receiver skips the penalty
	// increment for announcements it judges to be path exploration — ones
	// whose preference is strictly worse than the previously announced one.
	// The paper's point, which the experiments reproduce, is that this
	// heuristic misses some exploration updates and does not address
	// secondary charging. Mutually exclusive with EnableRCN.
	SelectiveDamping bool

	// RCNHistorySize bounds the per-peer root-cause history
	// (rcn.DefaultHistorySize when 0).
	RCNHistorySize int

	// MRAI is the Minimum Route Advertisement Interval applied per (peer,
	// prefix) to announcements (withdrawals are never delayed, matching the
	// BGP-4 default and SSFNet). Zero disables rate limiting.
	MRAI time.Duration

	// MRAIJitter applies the standard 0.75–1.00 jitter factor to each MRAI
	// timer, which is what desynchronizes path exploration across routers.
	MRAIJitter bool

	// MinLinkDelay and MaxLinkDelay bound the per-link propagation delay,
	// drawn once per link when the network is built.
	MinLinkDelay, MaxLinkDelay time.Duration

	// MinProcDelay and MaxProcDelay bound the per-update processing delay a
	// router adds before its reaction to an update leaves the router.
	MinProcDelay, MaxProcDelay time.Duration

	// Seed drives link delays, jitter, and all other randomness.
	Seed uint64
}

// DefaultConfig returns the configuration used throughout the paper's
// simulations (Section 5.1): shortest-path policy, 30 s jittered MRAI, SSFNet
// style link and processing delays, no damping. Experiments switch damping
// and RCN on per run.
func DefaultConfig() Config {
	return Config{
		Policy:       ShortestPath,
		MRAI:         30 * time.Second,
		MRAIJitter:   true,
		MinLinkDelay: 10 * time.Millisecond,
		MaxLinkDelay: 110 * time.Millisecond,
		MinProcDelay: 1 * time.Millisecond,
		MaxProcDelay: 10 * time.Millisecond,
		Seed:         1,
	}
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	switch {
	case c.Policy != ShortestPath && c.Policy != NoValley:
		return fmt.Errorf("bgp: unknown policy %v", c.Policy)
	case c.MRAI < 0:
		return fmt.Errorf("bgp: negative MRAI %v", c.MRAI)
	case c.MinLinkDelay < 0 || c.MaxLinkDelay < c.MinLinkDelay:
		return fmt.Errorf("bgp: invalid link delay range [%v, %v]", c.MinLinkDelay, c.MaxLinkDelay)
	case c.MinProcDelay < 0 || c.MaxProcDelay < c.MinProcDelay:
		return fmt.Errorf("bgp: invalid processing delay range [%v, %v]", c.MinProcDelay, c.MaxProcDelay)
	case c.RCNHistorySize < 0:
		return fmt.Errorf("bgp: negative RCN history size %d", c.RCNHistorySize)
	case c.DampingEngine != damping.EngineExact && c.DampingEngine != damping.EngineWheel:
		return fmt.Errorf("bgp: unknown damping engine %v", c.DampingEngine)
	}
	if c.DampingEngine == damping.EngineWheel {
		if err := c.WheelConfig.WithDefaults().Validate(); err != nil {
			return fmt.Errorf("bgp: %w", err)
		}
	}
	if c.Damping != nil {
		if err := c.Damping.Validate(); err != nil {
			return fmt.Errorf("bgp: %w", err)
		}
	}
	if c.EnableRCN && c.Damping == nil && c.DampingSelect == nil {
		return fmt.Errorf("bgp: EnableRCN requires damping parameters")
	}
	if c.SelectiveDamping && c.Damping == nil && c.DampingSelect == nil {
		return fmt.Errorf("bgp: SelectiveDamping requires damping parameters")
	}
	if c.EnableRCN && c.SelectiveDamping {
		return fmt.Errorf("bgp: EnableRCN and SelectiveDamping are mutually exclusive")
	}
	return nil
}

// dampingFor resolves the damping parameters for one router (nil disables).
// DampingSelect results are validated at network construction.
func (c Config) dampingFor(id RouterID) *damping.Params {
	if c.DampingSelect != nil {
		return c.DampingSelect(id)
	}
	return c.Damping
}
