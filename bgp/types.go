// Package bgp implements the path-vector routing engine the experiments run:
// BGP-4 semantics as the paper's SSFNet simulations rely on them — RIB-IN /
// Local-RIB / RIB-OUT per router (Figure 2 of the paper), a deterministic
// decision process, per-(peer,prefix) MRAI rate limiting, AS-path loop
// prevention, export policies (shortest-path and no-valley), and per-(peer,
// prefix) route flap damping with optional RCN-enhanced penalty filtering.
//
// The engine runs on the sim kernel: routers are plain structs, links are
// FIFO channels with fixed propagation delay, and all processing is
// event-driven and deterministic.
package bgp

import (
	"fmt"
	"strconv"

	"rfd/rcn"
	"rfd/topology"
)

// RouterID identifies a router (an AS — the model is one router per AS, as
// in the paper's simulations). It equals the node's topology.NodeID.
type RouterID = topology.NodeID

// Prefix names a destination. The experiments use a single flapping prefix,
// but the engine supports any number.
type Prefix string

// Path is an AS path: Path[0] is the router that advertised the route (the
// receiving router's peer) and Path[len-1] is the origin.
type Path []RouterID

// Clone returns an independent copy of the path.
func (p Path) Clone() Path {
	if p == nil {
		return nil
	}
	out := make(Path, len(p))
	copy(out, p)
	return out
}

// Contains reports whether the path traverses id (loop detection).
func (p Path) Contains(id RouterID) bool {
	for _, hop := range p {
		if hop == id {
			return true
		}
	}
	return false
}

// Equal reports element-wise equality. Paths sharing a backing array — the
// common case inside the engine, where every path is interned per network —
// compare with a single pointer check.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	if len(p) == 0 || &p[0] == &q[0] {
		return true
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Prepend returns a new path with id prepended (what a router advertises to
// its peers: itself followed by its best path).
func (p Path) Prepend(id RouterID) Path {
	out := make(Path, len(p)+1)
	out[0] = id
	copy(out[1:], p)
	return out
}

// String renders the path like "3 7 12".
func (p Path) String() string {
	if len(p) == 0 {
		return "<empty>"
	}
	buf := make([]byte, 0, 4*len(p))
	for i, hop := range p {
		if i > 0 {
			buf = append(buf, ' ')
		}
		buf = strconv.AppendInt(buf, int64(hop), 10)
	}
	return string(buf)
}

// Message is one BGP update: an announcement (Path non-nil) or a withdrawal
// (Withdraw true, Path nil) for one prefix, optionally carrying a root cause.
type Message struct {
	// From and To are the sending and receiving routers.
	From, To RouterID
	// Prefix is the destination the update concerns.
	Prefix Prefix
	// Withdraw marks the update as a withdrawal.
	Withdraw bool
	// Path is the advertised AS path (announcements only). Path[0] == From.
	// Inside the engine every message path is interned in the network's
	// shared table and therefore immutable: observers (hooks, traces) must
	// not modify it, and should Clone before retaining a mutable copy.
	Path Path
	// Cause is the attached root cause; zero when RCN is disabled or the
	// update has no known cause.
	Cause rcn.Cause
}

// IsAnnouncement reports whether the message announces a route.
func (m Message) IsAnnouncement() bool { return !m.Withdraw }

// String renders the message for traces.
func (m Message) String() string {
	if m.Withdraw {
		return fmt.Sprintf("W %d->%d %s cause=%s", m.From, m.To, m.Prefix, m.Cause)
	}
	return fmt.Sprintf("A %d->%d %s path=[%s] cause=%s", m.From, m.To, m.Prefix, m.Path, m.Cause)
}
