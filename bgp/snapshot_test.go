package bgp_test

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"testing"
	"time"

	"rfd/bgp"
	"rfd/damping"
	"rfd/sim"
	"rfd/topology"
)

// convergedMesh builds a seeded 4×4 torus with Cisco damping, originates a
// prefix and runs to convergence, returning the live network mid-simulation.
func convergedMesh(t testing.TB) (*sim.Kernel, *bgp.Network, bgp.RouterID, bgp.Prefix) {
	t.Helper()
	g, err := topology.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := bgp.DefaultConfig()
	params := damping.Cisco()
	cfg.Damping = &params
	cfg.Seed = 5
	k := sim.NewKernel(sim.WithSeed(cfg.Seed))
	n, err := bgp.NewNetwork(k, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const prefix = bgp.Prefix("origin/8")
	origin := bgp.RouterID(9)
	n.Router(origin).Originate(prefix)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	n.ResetDamping()
	return k, n, origin, prefix
}

// flapTrace drives two (withdraw, announce) pulses against the network and
// returns the kernel trace of everything that fires, plus an end-state stamp.
func flapTrace(t testing.TB, k *sim.Kernel, n *bgp.Network, origin bgp.RouterID, prefix bgp.Prefix) []byte {
	t.Helper()
	var buf bytes.Buffer
	k.SetTrace(func(at time.Duration, name string) {
		buf.WriteString(strconv.FormatInt(int64(at), 10))
		buf.WriteByte(' ')
		buf.WriteString(name)
		buf.WriteByte('\n')
	})
	defer k.SetTrace(nil)
	const interval = 60 * time.Second
	for pulse := 0; pulse < 2; pulse++ {
		n.Router(origin).StopOriginating(prefix)
		if err := k.RunUntil(k.Now() + interval); err != nil {
			t.Fatal(err)
		}
		n.Router(origin).Originate(prefix)
		if err := k.RunUntil(k.Now() + interval); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&buf, "end %d executed %d delivered %d dropped %d\n",
		int64(k.Now()), k.Executed(), n.Delivered(), n.Dropped())
	return buf.Bytes()
}

// TestForkReplaysIdenticalTrace is the core fork-equivalence property at the
// bgp layer: a fork of a converged network, driven with the same stimuli as
// the original, produces the byte-identical kernel event trace.
func TestForkReplaysIdenticalTrace(t *testing.T) {
	k, n, origin, prefix := convergedMesh(t)
	fk, fn, err := n.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if fk.Now() != k.Now() || fk.Pending() != k.Pending() {
		t.Fatalf("fork kernel now=%v pending=%d, want now=%v pending=%d",
			fk.Now(), fk.Pending(), k.Now(), k.Pending())
	}
	orig := flapTrace(t, k, n, origin, prefix)
	forked := flapTrace(t, fk, fn, origin, prefix)
	if !bytes.Equal(orig, forked) {
		i := 0
		for i < len(orig) && i < len(forked) && orig[i] == forked[i] {
			i++
		}
		t.Fatalf("fork trace diverges from original at byte %d (orig %d bytes, fork %d bytes)",
			i, len(orig), len(forked))
	}
}

// TestForkIsolation verifies a fork and its parent share no mutable state:
// running the fork to the end leaves the parent's clock, queue and delivery
// counters untouched, and vice versa.
func TestForkIsolation(t *testing.T) {
	k, n, origin, prefix := convergedMesh(t)
	now, pending, delivered := k.Now(), k.Pending(), n.Delivered()

	fk, fn, err := n.Fork()
	if err != nil {
		t.Fatal(err)
	}
	flapTrace(t, fk, fn, origin, prefix)

	if k.Now() != now || k.Pending() != pending || n.Delivered() != delivered {
		t.Fatalf("running the fork mutated the parent: now %v->%v pending %d->%d delivered %d->%d",
			now, k.Now(), pending, k.Pending(), delivered, n.Delivered())
	}
}

// TestSnapshotForksAreIndependent stamps two forks out of one Snapshot and
// checks they replay identically to each other without interfering.
func TestSnapshotForksAreIndependent(t *testing.T) {
	_, n, origin, prefix := convergedMesh(t)
	snap, err := n.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	k1, n1, err := snap.Fork()
	if err != nil {
		t.Fatal(err)
	}
	k2, n2, err := snap.Fork()
	if err != nil {
		t.Fatal(err)
	}
	a := flapTrace(t, k1, n1, origin, prefix)
	b := flapTrace(t, k2, n2, origin, prefix)
	if !bytes.Equal(a, b) {
		t.Fatal("two forks of the same snapshot produced different traces")
	}
}

// TestForkRejectsPendingClosure: closure events cannot be rebound, so a fork
// taken while one is pending must fail with sim.ErrClosureEvent.
func TestForkRejectsPendingClosure(t *testing.T) {
	k, n, _, _ := convergedMesh(t)
	k.After(time.Second, "closure", func() {})
	if _, _, err := n.Fork(); !errors.Is(err, sim.ErrClosureEvent) {
		t.Fatalf("Fork error = %v, want sim.ErrClosureEvent", err)
	}
}

// unforkableImpairment implements LinkImpairment but not ImpairmentForker.
type unforkableImpairment struct{}

func (unforkableImpairment) Impair(time.Duration, bgp.RouterID, bgp.RouterID) (bool, time.Duration) {
	return false, 0
}

func TestForkRejectsUnforkableImpairment(t *testing.T) {
	_, n, _, _ := convergedMesh(t)
	n.SetImpairment(unforkableImpairment{})
	if _, _, err := n.Fork(); err == nil {
		t.Fatal("Fork accepted an impairment model that cannot be forked")
	}
}
