package bgp

import (
	"fmt"
	"sort"
	"time"

	"rfd/sim"
	"rfd/topology"
)

// remoteMsg is a cross-shard message parked in the ensemble outbox between
// the send and the next epoch barrier. at is the final arrival time (FIFO
// stamp included) and gen the session generation it was sent on; src/seq give
// the canonical injection order.
type remoteMsg struct {
	at  time.Duration
	msg Message
	gen uint64
	src int32
	seq uint64
}

// ShardedNetwork runs one bgp.Network per shard, each on its own sim.Kernel,
// under a sim.ShardGroup's conservative-lookahead epochs. Every shard is
// constructed from the same topology, config and seed — replaying the full
// construction RNG sequence so each router receives exactly its sequential
// stream — but instantiates only the routers its shard owns. Link and
// session state is replicated per shard and kept in sync by applying every
// fault to every shard at the same virtual time.
//
// The lookahead is MinLinkDelay + MinProcDelay: a message sent at t arrives
// no earlier than t + lookahead, so events inside an epoch [T, T+L) cannot
// produce cross-shard work inside the same epoch. Cross-shard messages
// collect in per-shard outboxes and are injected at the barrier in
// (time, source shard, sequence) order, making runs independent of goroutine
// scheduling and byte-identical to the sequential engine per seed.
type ShardedNetwork struct {
	graph   *topology.Graph
	cfg     Config
	owner   []int32
	shards  []*Network
	kernels []*sim.Kernel
	group   *sim.ShardGroup

	outbox   [][]remoteMsg
	seq      []uint64
	flushBuf []remoteMsg
}

// Lookahead returns the conservative cross-shard latency bound for cfg, or
// an error when the config cannot support sharded execution.
func Lookahead(cfg Config) (time.Duration, error) {
	l := cfg.MinLinkDelay + cfg.MinProcDelay
	if l <= 0 {
		return 0, fmt.Errorf("bgp: sharded execution needs MinLinkDelay+MinProcDelay > 0 (lookahead), got %v", l)
	}
	return l, nil
}

// NewShardedNetwork partitions g's routers across shards per assign (node id
// → shard, as produced by topology.Partition) and builds one shard network
// per shard on a fresh kernel. Every Option is applied to the group.
func NewShardedNetwork(g *topology.Graph, cfg Config, assign []int32, opts ...sim.GroupOption) (*ShardedNetwork, error) {
	if len(assign) != g.NumNodes() {
		return nil, fmt.Errorf("bgp: partition covers %d nodes, topology has %d", len(assign), g.NumNodes())
	}
	nshards := 0
	for v, s := range assign {
		if s < 0 {
			return nil, fmt.Errorf("bgp: node %d unassigned", v)
		}
		if int(s)+1 > nshards {
			nshards = int(s) + 1
		}
	}
	lookahead, err := Lookahead(cfg)
	if err != nil {
		return nil, err
	}
	sn := &ShardedNetwork{
		graph:   g,
		cfg:     cfg,
		owner:   assign,
		shards:  make([]*Network, nshards),
		kernels: make([]*sim.Kernel, nshards),
		outbox:  make([][]remoteMsg, nshards),
		seq:     make([]uint64, nshards),
	}
	for s := 0; s < nshards; s++ {
		k := sim.NewKernel(sim.WithSeed(cfg.Seed))
		n, err := newNetwork(k, g, cfg, assign, int32(s))
		if err != nil {
			return nil, err
		}
		sn.bindShard(n, int32(s))
		sn.kernels[s] = k
		sn.shards[s] = n
	}
	group, err := sim.NewShardGroup(lookahead, sn.kernels, sn, opts...)
	if err != nil {
		return nil, err
	}
	sn.group = group
	return sn, nil
}

// bindShard points a shard network's remote-send callback at this ensemble's
// outbox (used at construction and again after Fork).
func (sn *ShardedNetwork) bindShard(n *Network, s int32) {
	n.remoteSend = func(at time.Duration, msg Message, gen uint64) {
		sn.seq[s]++
		sn.outbox[s] = append(sn.outbox[s], remoteMsg{at: at, msg: msg, gen: gen, src: s, seq: sn.seq[s]})
	}
}

// Flush implements sim.Exchanger: drain every outbox and inject the messages
// into their owners' kernels in (time, source shard, sequence) order. Called
// by the group with every shard parked.
func (sn *ShardedNetwork) Flush() int {
	total := 0
	for _, box := range sn.outbox {
		total += len(box)
	}
	if total == 0 {
		return 0
	}
	buf := sn.flushBuf[:0]
	for s, box := range sn.outbox {
		buf = append(buf, box...)
		sn.outbox[s] = box[:0]
	}
	sort.Slice(buf, func(i, j int) bool {
		if buf[i].at != buf[j].at {
			return buf[i].at < buf[j].at
		}
		if buf[i].src != buf[j].src {
			return buf[i].src < buf[j].src
		}
		return buf[i].seq < buf[j].seq
	})
	for _, m := range buf {
		sn.shards[sn.owner[m.msg.To]].injectDelivery(m.at, m.msg, m.gen)
	}
	sn.flushBuf = buf[:0]
	return total
}

// Pending implements sim.Exchanger: the earliest arrival waiting in any
// outbox.
func (sn *ShardedNetwork) Pending() (time.Duration, bool) {
	var min time.Duration
	ok := false
	for _, box := range sn.outbox {
		for _, m := range box {
			if !ok || m.at < min {
				min, ok = m.at, true
			}
		}
	}
	return min, ok
}

// Group returns the coordinator driving the shards. Use it to run the
// ensemble (Run/RunUntil/…) and to read epoch statistics.
func (sn *ShardedNetwork) Group() *sim.ShardGroup { return sn.group }

// Close stops the group's worker goroutines.
func (sn *ShardedNetwork) Close() { sn.group.Close() }

// Graph returns the underlying topology.
func (sn *ShardedNetwork) Graph() *topology.Graph { return sn.graph }

// Config returns the ensemble's configuration.
func (sn *ShardedNetwork) Config() Config { return sn.cfg }

// NumShards returns the shard count.
func (sn *ShardedNetwork) NumShards() int { return len(sn.shards) }

// Shard returns shard s's network (its routers, hooks, counters).
func (sn *ShardedNetwork) Shard(s int) *Network { return sn.shards[s] }

// Owner returns the shard owning router id.
func (sn *ShardedNetwork) Owner(id RouterID) int32 { return sn.owner[id] }

// Router returns the live instance of router id (from its owning shard).
func (sn *ShardedNetwork) Router(id RouterID) *Router {
	if id < 0 || int(id) >= len(sn.owner) {
		return nil
	}
	return sn.shards[sn.owner[id]].Router(id)
}

// Now returns the ensemble's virtual clock (max across shards).
func (sn *ShardedNetwork) Now() time.Duration { return sn.group.Now() }

// Align advances every shard's clock to the ensemble clock. After a full
// drain the shards' clocks sit at their last *local* events while the
// sequential engine's clock sits at the *global* last event; stimuli applied
// without aligning would be scheduled relative to different "now"s than the
// sequential engine uses, breaking trace equivalence. RunUntil aligns
// implicitly; call Align after Run (drain) before touching routers directly.
// The ensemble's own mutation entry points call it themselves.
func (sn *ShardedNetwork) Align() { sn.group.AdvanceTo(sn.group.Now()) }

// Quiescent reports whether no deliveries are pending on any shard and no
// cross-shard message waits in an outbox.
func (sn *ShardedNetwork) Quiescent() bool {
	for _, n := range sn.shards {
		if !n.Quiescent() {
			return false
		}
	}
	for _, box := range sn.outbox {
		if len(box) > 0 {
			return false
		}
	}
	return true
}

// PendingDeliveries sums in-flight messages across shards and outboxes.
func (sn *ShardedNetwork) PendingDeliveries() int {
	total := 0
	for _, n := range sn.shards {
		total += n.PendingDeliveries()
	}
	for _, box := range sn.outbox {
		total += len(box)
	}
	return total
}

// PendingAnnouncements sums MRAI-held announcements across shards.
func (sn *ShardedNetwork) PendingAnnouncements() int {
	total := 0
	for _, n := range sn.shards {
		total += n.PendingAnnouncements()
	}
	return total
}

// Delivered sums delivered-message counters across shards.
func (sn *ShardedNetwork) Delivered() uint64 {
	var total uint64
	for _, n := range sn.shards {
		total += n.Delivered()
	}
	return total
}

// Dropped sums dropped-message counters across shards.
func (sn *ShardedNetwork) Dropped() uint64 {
	var total uint64
	for _, n := range sn.shards {
		total += n.Dropped()
	}
	return total
}

// LastDelivery returns the latest delivery instant across shards.
func (sn *ShardedNetwork) LastDelivery() time.Duration {
	var max time.Duration
	for _, n := range sn.shards {
		if n.LastDelivery() > max {
			max = n.LastDelivery()
		}
	}
	return max
}

// ResetCounters zeroes every shard's counters.
func (sn *ShardedNetwork) ResetCounters() {
	for _, n := range sn.shards {
		n.ResetCounters()
	}
}

// ResetDamping clears damping state on every shard.
func (sn *ShardedNetwork) ResetDamping() {
	for _, n := range sn.shards {
		n.ResetDamping()
	}
}

// DampedLinkCount sums suppressed damping states across shards.
func (sn *ShardedNetwork) DampedLinkCount() int {
	total := 0
	for _, n := range sn.shards {
		total += n.DampedLinkCount()
	}
	return total
}

// Prefixes returns the sorted union of prefixes across shards.
func (sn *ShardedNetwork) Prefixes() []Prefix {
	set := make(map[Prefix]struct{})
	for _, n := range sn.shards {
		for _, p := range n.Prefixes() {
			set[p] = struct{}{}
		}
	}
	out := make([]Prefix, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sortPrefixes(out)
	return out
}

// SetLinkState applies the link fault to every shard's replicated state —
// each shard bumps its session generation and its owned endpoints react —
// keeping the replicas in lockstep. Call only between runs (at a barrier).
func (sn *ShardedNetwork) SetLinkState(a, b RouterID, up bool) error {
	sn.Align()
	for _, n := range sn.shards {
		if err := n.SetLinkState(a, b, up); err != nil {
			return err
		}
	}
	return nil
}

// ResetSession applies a session reset to every shard's replicated state.
func (sn *ShardedNetwork) ResetSession(a, b RouterID) error {
	sn.Align()
	for _, n := range sn.shards {
		if err := n.ResetSession(a, b); err != nil {
			return err
		}
	}
	return nil
}

// CrashRouter applies a router crash to every shard's replicated state.
func (sn *ShardedNetwork) CrashRouter(id RouterID) error {
	sn.Align()
	for _, n := range sn.shards {
		if err := n.CrashRouter(id); err != nil {
			return err
		}
	}
	return nil
}

// RestartRouter applies a router restart to every shard's replicated state.
func (sn *ShardedNetwork) RestartRouter(id RouterID) error {
	sn.Align()
	for _, n := range sn.shards {
		if err := n.RestartRouter(id); err != nil {
			return err
		}
	}
	return nil
}

// CheckConsistency runs the sequential engine's quiescent-state invariants
// across the whole ensemble, pairing cross-shard sessions through their
// owners' views. Replica agreement (session generations, link state) is
// checked first: a divergence there means the fault replication broke.
func (sn *ShardedNetwork) CheckConsistency() error {
	if !sn.Quiescent() {
		return fmt.Errorf("bgp: consistency check on a non-quiescent ensemble (%d deliveries in flight)", sn.PendingDeliveries())
	}
	ref := sn.shards[0]
	for s := 1; s < len(sn.shards); s++ {
		n := sn.shards[s]
		for e := range ref.sessionGen {
			if n.sessionGen[e] != ref.sessionGen[e] || n.downLinks[e] != ref.downLinks[e] {
				return fmt.Errorf("bgp: shard %d link-state replica diverged from shard 0 at edge %d", s, e)
			}
		}
		for id := range ref.downRouters {
			if n.downRouters[id] != ref.downRouters[id] {
				return fmt.Errorf("bgp: shard %d router-state replica diverged from shard 0 at router %d", s, id)
			}
		}
	}
	// Intra-shard invariants (incl. Local-RIB re-decision) per shard.
	for _, n := range sn.shards {
		if err := n.CheckConsistency(); err != nil {
			return err
		}
	}
	// Cross-shard sessions: what each owner believes it advertised must be
	// what the peer's owner holds.
	for id := range sn.owner {
		r := sn.Router(RouterID(id))
		if r == nil || sn.shards[sn.owner[id]].downRouters[id] {
			continue
		}
		n := sn.shards[sn.owner[id]]
		for s, q := range r.peers {
			if sn.owner[q] == sn.owner[id] {
				continue // checked intra-shard
			}
			if !n.SessionUp(r.id, q) {
				continue
			}
			peer := sn.Router(q)
			backSlot := peer.slotOf(r.id)
			for _, prefix := range r.ribOutPrefixes(int32(s)) {
				pid, ok := n.lookupPrefix(prefix)
				var sent, held Path
				if ok {
					if out := r.ribOutAt(int32(s), pid); out != nil {
						sent = out.advertised
					}
				}
				peerNet := sn.shards[sn.owner[q]]
				if ppid, pok := peerNet.lookupPrefix(prefix); pok {
					if in := peer.ribInAt(backSlot, ppid); in != nil {
						held = in.path
					}
				}
				if !sent.Equal(held) {
					return fmt.Errorf(
						"bgp: cross-shard session %d->%d prefix %s: RIB-OUT [%s] != peer RIB-IN [%s]",
						r.id, q, prefix, sent, held)
				}
			}
		}
	}
	return nil
}

// Fork returns an independent copy of the ensemble, leaving the original
// untouched. The ensemble must be quiescent at a barrier with empty
// outboxes — fork at the same instants you would snapshot the sequential
// engine (experiment checkpoints are taken at quiescent epochs). The kernel
// group is forked as a unit (sim.ShardGroup.Fork), so the copy's coordinator
// resumes with the parent's epoch statistics, exactly as a from-scratch run
// would report; each shard network is then forked onto its pre-forked kernel
// and rebound to the copy's outboxes. Safe for concurrent Fork calls on the
// same parked ensemble — forking only reads.
func (sn *ShardedNetwork) Fork() (*ShardedNetwork, error) {
	for _, box := range sn.outbox {
		if len(box) > 0 {
			return nil, fmt.Errorf("bgp: fork with %d cross-shard messages in outboxes; run to a barrier first", sn.PendingDeliveries())
		}
	}
	f := &ShardedNetwork{
		graph:  sn.graph,
		cfg:    sn.cfg,
		owner:  sn.owner,
		shards: make([]*Network, len(sn.shards)),
		outbox: make([][]remoteMsg, len(sn.shards)),
		seq:    append([]uint64(nil), sn.seq...),
	}
	group, err := sn.group.Fork(f)
	if err != nil {
		return nil, err
	}
	f.group = group
	f.kernels = append([]*sim.Kernel(nil), group.Kernels()...)
	for s, n := range sn.shards {
		fn, err := n.forkOnto(f.kernels[s])
		if err != nil {
			return nil, err
		}
		f.bindShard(fn, int32(s))
		f.shards[s] = fn
	}
	return f, nil
}

// ShardedSnapshot is an immutable checkpoint of a sharded ensemble, taken
// with ShardedNetwork.Snapshot. Like the sequential bgp.Snapshot it holds a
// private fork that is never run; Fork stamps out any number of independent,
// runnable copies. Safe for concurrent Fork calls from multiple goroutines —
// sweep workers each fork their own copy — because forking only reads the
// parked state (the parked group's worker pool is never started).
type ShardedSnapshot struct {
	parked *ShardedNetwork
}

// Snapshot captures the ensemble at the current barrier. The same
// preconditions as Fork apply (quiescent at a barrier, empty outboxes); the
// ensemble is unaffected and may continue running.
func (sn *ShardedNetwork) Snapshot() (*ShardedSnapshot, error) {
	parked, err := sn.Fork()
	if err != nil {
		return nil, err
	}
	return &ShardedSnapshot{parked: parked}, nil
}

// Now returns the virtual time the snapshot was taken at.
func (s *ShardedSnapshot) Now() time.Duration { return s.parked.Now() }

// NumShards returns the shard count captured in the snapshot.
func (s *ShardedSnapshot) NumShards() int { return s.parked.NumShards() }

// Fork materializes an independent runnable ensemble from the checkpoint.
// Every copy starts from the identical state; given identical subsequent
// stimuli they produce identical event sequences. No hooks are installed.
func (s *ShardedSnapshot) Fork() (*ShardedNetwork, error) {
	return s.parked.Fork()
}
