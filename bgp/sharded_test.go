package bgp_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"rfd/bgp"
	"rfd/damping"
	"rfd/sim"
	"rfd/topology"
	"rfd/trace"
)

// seqTrace runs the sequential engine through warm-up plus two flap pulses
// and returns the canonical bgp event trace as JSONL plus end-state counters.
func seqTrace(t *testing.T, g *topology.Graph, cfg bgp.Config, origin bgp.RouterID, prefix bgp.Prefix) []byte {
	t.Helper()
	k := sim.NewKernel(sim.WithSeed(cfg.Seed))
	n, err := bgp.NewNetwork(k, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	log := trace.NewLog(0)
	n.SetHooks(bgp.TraceHooks(log))
	n.Router(origin).Originate(prefix)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	n.ResetDamping()
	const interval = 60 * time.Second
	for pulse := 0; pulse < 2; pulse++ {
		n.Router(origin).StopOriginating(prefix)
		if err := k.RunUntil(k.Now() + interval); err != nil {
			t.Fatal(err)
		}
		n.Router(origin).Originate(prefix)
		if err := k.RunUntil(k.Now() + interval); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return canonicalBytes(t, trace.Merge(log), n.Delivered(), n.Dropped())
}

// shardTrace is seqTrace on the sharded engine with the given shard count.
func shardTrace(t *testing.T, g *topology.Graph, cfg bgp.Config, origin bgp.RouterID, prefix bgp.Prefix, shards int, opts ...sim.GroupOption) []byte {
	t.Helper()
	assign, err := topology.Partition(g, shards)
	if err != nil {
		t.Fatal(err)
	}
	sn, err := bgp.NewShardedNetwork(g, cfg, assign, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()
	logs := make([]*trace.Log, sn.NumShards())
	for s := 0; s < sn.NumShards(); s++ {
		logs[s] = trace.NewLog(0)
		sn.Shard(s).SetHooks(bgp.TraceHooks(logs[s]))
	}
	g2 := sn.Group()
	sn.Router(origin).Originate(prefix)
	if err := g2.Run(); err != nil {
		t.Fatal(err)
	}
	sn.Align()
	sn.ResetDamping()
	const interval = 60 * time.Second
	for pulse := 0; pulse < 2; pulse++ {
		sn.Router(origin).StopOriginating(prefix)
		if err := g2.RunUntil(g2.Now() + interval); err != nil {
			t.Fatal(err)
		}
		sn.Router(origin).Originate(prefix)
		if err := g2.RunUntil(g2.Now() + interval); err != nil {
			t.Fatal(err)
		}
	}
	if err := g2.Run(); err != nil {
		t.Fatal(err)
	}
	if err := sn.CheckConsistency(); err != nil {
		t.Fatalf("sharded ensemble inconsistent: %v", err)
	}
	return canonicalBytes(t, trace.Merge(logs...), sn.Delivered(), sn.Dropped())
}

func canonicalBytes(t *testing.T, log *trace.Log, delivered, dropped uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := log.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&buf, "delivered %d dropped %d\n", delivered, dropped)
	return buf.Bytes()
}

func diffPoint(a, b []byte) string {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	lo, hi := i-120, i+120
	if lo < 0 {
		lo = 0
	}
	ctx := func(s []byte) string {
		end := hi
		if end > len(s) {
			end = len(s)
		}
		if lo >= end {
			return ""
		}
		return string(s[lo:end])
	}
	return fmt.Sprintf("diverges at byte %d (len %d vs %d)\nseq:   …%s…\nshard: …%s…", i, len(a), len(b), ctx(a), ctx(b))
}

// TestShardedMatchesSequential is the engine-level byte-identity property:
// for a fixed seed, the canonical event trace of the sharded engine equals
// the sequential engine's, for every shard count and for both worker and
// sequential coordination modes.
func TestShardedMatchesSequential(t *testing.T) {
	g, err := topology.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := bgp.DefaultConfig()
	params := damping.Cisco()
	cfg.Damping = &params
	cfg.Seed = 5
	const prefix = bgp.Prefix("origin/8")
	origin := bgp.RouterID(9)
	want := seqTrace(t, g, cfg, origin, prefix)
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			got := shardTrace(t, g, cfg, origin, prefix, shards)
			if !bytes.Equal(want, got) {
				t.Fatalf("sharded trace differs from sequential: %s", diffPoint(want, got))
			}
		})
	}
	t.Run("shards=2/sequential-mode", func(t *testing.T) {
		got := shardTrace(t, g, cfg, origin, prefix, 2, sim.WithSequentialGroup())
		if !bytes.Equal(want, got) {
			t.Fatalf("sequential-mode sharded trace differs: %s", diffPoint(want, got))
		}
	})
}

// TestShardedForkEquivalence forks a converged sharded ensemble and verifies
// the fork replays the same canonical trace as its parent under identical
// stimuli.
func TestShardedForkEquivalence(t *testing.T) {
	g, err := topology.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := bgp.DefaultConfig()
	params := damping.Cisco()
	cfg.Damping = &params
	cfg.Seed = 5
	const prefix = bgp.Prefix("origin/8")
	origin := bgp.RouterID(9)

	assign, err := topology.Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	sn, err := bgp.NewShardedNetwork(g, cfg, assign)
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()
	sn.Router(origin).Originate(prefix)
	if err := sn.Group().Run(); err != nil {
		t.Fatal(err)
	}
	sn.Align()
	sn.ResetDamping()

	fork1, err := sn.Fork()
	if err != nil {
		t.Fatal(err)
	}
	defer fork1.Close()
	fork2, err := sn.Fork()
	if err != nil {
		t.Fatal(err)
	}
	defer fork2.Close()

	a := drivePulses(t, fork1, origin, prefix)
	b := drivePulses(t, fork2, origin, prefix)
	if !bytes.Equal(a, b) {
		t.Fatalf("two forks of the same sharded ensemble diverge: %s", diffPoint(a, b))
	}
	// The parent is untouched: its clock did not advance past warm-up.
	if sn.PendingDeliveries() != 0 {
		t.Fatalf("running forks left %d deliveries pending on the parent", sn.PendingDeliveries())
	}
}

func drivePulses(t *testing.T, sn *bgp.ShardedNetwork, origin bgp.RouterID, prefix bgp.Prefix) []byte {
	t.Helper()
	logs := make([]*trace.Log, sn.NumShards())
	for s := 0; s < sn.NumShards(); s++ {
		logs[s] = trace.NewLog(0)
		sn.Shard(s).SetHooks(bgp.TraceHooks(logs[s]))
	}
	g := sn.Group()
	const interval = 60 * time.Second
	for pulse := 0; pulse < 2; pulse++ {
		sn.Router(origin).StopOriginating(prefix)
		if err := g.RunUntil(g.Now() + interval); err != nil {
			t.Fatal(err)
		}
		sn.Router(origin).Originate(prefix)
		if err := g.RunUntil(g.Now() + interval); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	return canonicalBytes(t, trace.Merge(logs...), sn.Delivered(), sn.Dropped())
}

// TestShardedFaultReplication drives link and router faults through the
// ensemble-level entry points and checks the replicated state stays in
// lockstep (CheckConsistency's replica-agreement pass) while still matching
// the sequential engine's canonical trace.
func TestShardedFaultsMatchSequential(t *testing.T) {
	g, err := topology.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := bgp.DefaultConfig()
	params := damping.Cisco()
	cfg.Damping = &params
	cfg.Seed = 11
	const prefix = bgp.Prefix("origin/8")
	origin := bgp.RouterID(9)

	type netOps interface {
		SetLinkState(a, b bgp.RouterID, up bool) error
		ResetSession(a, b bgp.RouterID) error
		CrashRouter(id bgp.RouterID) error
		RestartRouter(id bgp.RouterID) error
	}
	drive := func(t *testing.T, n netOps, run func(time.Duration) error, now func() time.Duration, router func(bgp.RouterID) *bgp.Router) {
		router(origin).Originate(prefix)
		if err := run(0); err != nil { // d==0 means full drain
			t.Fatal(err)
		}
		step := func(d time.Duration) {
			if err := run(now() + d); err != nil {
				t.Fatal(err)
			}
		}
		if err := n.SetLinkState(origin, 5, false); err != nil {
			t.Fatal(err)
		}
		step(30 * time.Second)
		if err := n.SetLinkState(origin, 5, true); err != nil {
			t.Fatal(err)
		}
		step(30 * time.Second)
		if err := n.ResetSession(1, 2); err != nil {
			t.Fatal(err)
		}
		step(30 * time.Second)
		if err := n.CrashRouter(6); err != nil {
			t.Fatal(err)
		}
		step(30 * time.Second)
		if err := n.RestartRouter(6); err != nil {
			t.Fatal(err)
		}
		step(120 * time.Second)
	}

	// Sequential leg.
	k := sim.NewKernel(sim.WithSeed(cfg.Seed))
	n, err := bgp.NewNetwork(k, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seqLog := trace.NewLog(0)
	n.SetHooks(bgp.TraceHooks(seqLog))
	drive(t, n, func(d time.Duration) error {
		if d == 0 {
			return k.Run()
		}
		return k.RunUntil(d)
	}, k.Now, n.Router)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := canonicalBytes(t, trace.Merge(seqLog), n.Delivered(), n.Dropped())

	// Sharded leg.
	assign, err := topology.Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	sn, err := bgp.NewShardedNetwork(g, cfg, assign)
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()
	logs := make([]*trace.Log, sn.NumShards())
	for s := range logs {
		logs[s] = trace.NewLog(0)
		sn.Shard(s).SetHooks(bgp.TraceHooks(logs[s]))
	}
	grp := sn.Group()
	drive(t, sn, func(d time.Duration) error {
		if d == 0 {
			return grp.Run()
		}
		return grp.RunUntil(d)
	}, grp.Now, sn.Router)
	if err := grp.Run(); err != nil {
		t.Fatal(err)
	}
	if err := sn.CheckConsistency(); err != nil {
		t.Fatalf("ensemble inconsistent after faults: %v", err)
	}
	got := canonicalBytes(t, trace.Merge(logs...), sn.Delivered(), sn.Dropped())
	if !bytes.Equal(want, got) {
		t.Fatalf("sharded faulty trace differs from sequential: %s", diffPoint(want, got))
	}
}

// TestPartitionCoversGraph sanity-checks the partitioner on assorted graphs.
func TestPartitionCoversGraph(t *testing.T) {
	mk := func(f func() (*topology.Graph, error)) *topology.Graph {
		g, err := f()
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	graphs := map[string]*topology.Graph{
		"torus6x6": mk(func() (*topology.Graph, error) { return topology.Torus(6, 6) }),
		"line10":   mk(func() (*topology.Graph, error) { return topology.Line(10) }),
		"star9":    mk(func() (*topology.Graph, error) { return topology.Star(9) }),
	}
	for name, g := range graphs {
		for _, k := range []int{1, 2, 3, 4} {
			if k > g.NumNodes() {
				continue
			}
			assign, err := topology.Partition(g, k)
			if err != nil {
				t.Fatalf("%s k=%d: %v", name, k, err)
			}
			st := topology.AnalyzePartition(g, assign)
			if st.Shards != k {
				t.Fatalf("%s k=%d: got %d shards (some empty?): %v", name, k, st.Shards, st.Sizes)
			}
			for s, sz := range st.Sizes {
				if sz == 0 {
					t.Fatalf("%s k=%d: shard %d empty", name, k, s)
				}
			}
			total := 0
			for _, sz := range st.Sizes {
				total += sz
			}
			if total != g.NumNodes() {
				t.Fatalf("%s k=%d: partition covers %d of %d nodes", name, k, total, g.NumNodes())
			}
		}
	}
}
