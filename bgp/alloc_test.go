package bgp

import (
	"testing"
	"time"

	"rfd/damping"
	"rfd/sim"
	"rfd/topology"
)

// These tests pin the engine's allocation-free hot path: once a network has
// converged (slabs warmed, paths interned, RIB columns grown), the decision
// process and the full send→deliver→receive pipeline must not allocate. CI
// runs them on every push; a regression here means a change reintroduced
// per-event garbage (closures, path copies, map churn) and should be fixed,
// not accommodated.

const allocPrefix = Prefix("alloc/8")

// newConvergedNetwork builds a 3x3 torus, originates one prefix from the
// center router and drains to convergence.
func newConvergedNetwork(t testing.TB, damp *damping.Params) (*sim.Kernel, *Network) {
	t.Helper()
	g, err := topology.Torus(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.Damping = damp
	k := sim.NewKernel(sim.WithSeed(7))
	n, err := NewNetwork(k, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Router(4).Originate(allocPrefix)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return k, n
}

func TestDecideDoesNotAllocate(t *testing.T) {
	for _, tc := range []struct {
		name string
		damp *damping.Params
	}{
		{"plain", nil},
		{"damped", func() *damping.Params { p := damping.Cisco(); return &p }()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, n := newConvergedNetwork(t, tc.damp)
			r := n.Router(0)
			pid, ok := n.lookupPrefix(allocPrefix)
			if !ok {
				t.Fatal("prefix not interned after convergence")
			}
			if l := r.localAt(pid); !l.hasRoute {
				t.Fatal("router 0 has no route after convergence")
			}
			allocs := testing.AllocsPerRun(1000, func() {
				_ = r.decide(pid)
			})
			if allocs != 0 {
				t.Errorf("decision process allocates %.1f per run, want 0", allocs)
			}
		})
	}
}

func TestSendPathDoesNotAllocate(t *testing.T) {
	k, n := newConvergedNetwork(t, nil)
	r := n.Router(0)
	peer := r.peers[0]
	e := func() *ribInEntry {
		pid, ok := n.lookupPrefix(allocPrefix)
		if !ok {
			t.Fatal("prefix not interned after convergence")
		}
		return r.ribInAt(r.slotOf(peer), pid)
	}()
	if e == nil || e.path == nil {
		t.Fatal("router 0 holds no RIB-IN route from its first peer")
	}
	// Re-delivering the exact advertised route is a pure duplicate: the
	// receiver runs the whole update pipeline (damping classify, RIB-IN
	// store, decision process) and changes nothing. This exercises send,
	// the FIFO/generation bookkeeping, the pooled message slab, the typed
	// deliver event and receive.
	msg := Message{From: peer, To: r.id, Prefix: allocPrefix, Path: e.path}
	for i := 0; i < 32; i++ { // warm the message slab and event-queue slab
		n.send(msg)
		for k.Step() {
		}
	}
	allocs := testing.AllocsPerRun(500, func() {
		n.send(msg)
		for k.Step() {
		}
	})
	if allocs != 0 {
		t.Errorf("send→deliver→receive path allocates %.1f per run, want 0", allocs)
	}
}

// TestFlapSteadyStateDoesNotAllocate drives full (withdraw, re-announce)
// pulses through a converged damped network. After the first pulses have
// interned every path the episode explores and sized every slab, subsequent
// identical pulses — the workload the experiments repeat for hours of
// virtual time — must run without a single allocation.
//
// The network uses fixed processing delays and no MRAI jitter so every pulse
// replays the same event sequence; with jittered timing the exploration
// order drifts between pulses and the intern table keeps absorbing rare new
// path combinations (amortized zero, but not the exact zero a regression
// test needs).
func TestFlapSteadyStateDoesNotAllocate(t *testing.T) {
	for _, tc := range []struct {
		name   string
		adjust func(*Config)
	}{
		{"exact", func(*Config) {}},
		// The wheel leg pins the whole timer-wheel path — quantized decay,
		// reuse-list enrollment, the batch sweep timer, reuse lifts — as
		// allocation-free too. A small ring lets the warm-up pulses touch
		// (and size) every reuse list; under the default 722-list ring each
		// pulse would enroll into cold buckets and their one-time append
		// growth would read as steady-state allocation.
		{"wheel", func(cfg *Config) {
			cfg.DampingEngine = damping.EngineWheel
			cfg.WheelConfig = damping.WheelConfig{
				DeltaT: time.Second, DeltaTReuse: 5 * time.Second, MaxLists: 8,
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g, err := topology.Torus(3, 3)
			if err != nil {
				t.Fatal(err)
			}
			params := damping.Cisco()
			cfg := DefaultConfig()
			cfg.Seed = 7
			cfg.Damping = &params
			cfg.MRAIJitter = false
			cfg.MinProcDelay = 5 * time.Millisecond
			cfg.MaxProcDelay = 5 * time.Millisecond
			tc.adjust(&cfg)
			k := sim.NewKernel(sim.WithSeed(7))
			n, err := NewNetwork(k, g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			origin := n.Router(4)
			origin.Originate(allocPrefix)
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
			pulse := func() {
				origin.StopOriginating(allocPrefix)
				for k.Step() {
				}
				origin.Originate(allocPrefix)
				for k.Step() {
				}
			}
			for i := 0; i < 4; i++ { // explore all alternate paths, warm all slabs
				pulse()
			}
			allocs := testing.AllocsPerRun(20, pulse)
			if allocs != 0 {
				t.Errorf("steady-state flap pulse allocates %.1f per run, want 0", allocs)
			}
		})
	}
}
