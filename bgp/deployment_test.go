package bgp

import (
	"testing"
	"time"

	"rfd/damping"
	"rfd/sim"
)

func TestConfigValidateNewModes(t *testing.T) {
	params := damping.Cisco()
	cases := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"selective without damping", func(c *Config) { c.SelectiveDamping = true }, false},
		{"selective with damping", func(c *Config) {
			c.Damping = &params
			c.SelectiveDamping = true
		}, true},
		{"rcn and selective together", func(c *Config) {
			c.Damping = &params
			c.SelectiveDamping = true
			c.EnableRCN = true
		}, false},
		{"rcn with select only", func(c *Config) {
			c.DampingSelect = func(RouterID) *damping.Params { return &params }
			c.EnableRCN = true
		}, true},
		{"selective with select only", func(c *Config) {
			c.DampingSelect = func(RouterID) *damping.Params { return &params }
			c.SelectiveDamping = true
		}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := DefaultConfig()
			c.mutate(&cfg)
			if err := cfg.Validate(); (err == nil) != c.ok {
				t.Fatalf("Validate = %v, want ok=%t", err, c.ok)
			}
		})
	}
}

func TestNewNetworkValidatesSelectedParams(t *testing.T) {
	bad := damping.Cisco()
	bad.HalfLife = 0
	cfg := DefaultConfig()
	cfg.DampingSelect = func(id RouterID) *damping.Params {
		if id == 1 {
			return &bad
		}
		return nil
	}
	if _, err := NewNetwork(sim.NewKernel(), mustLine(t, 3), cfg); err == nil {
		t.Fatal("invalid per-router params accepted")
	}
}

// TestPartialDeployment verifies routers without damping never suppress
// while damping routers do — the tech-report partial-deployment scenario.
func TestPartialDeployment(t *testing.T) {
	g := mustTorus(t, 4, 4)
	origin, _ := attachOrigin(t, g, 0)
	params := damping.Cisco()
	// Only even routers damp.
	k, n := buildNet(t, g, func(c *Config) {
		c.DampingSelect = func(id RouterID) *damping.Params {
			if id%2 == 0 {
				return &params
			}
			return nil
		}
	})
	suppressedBy := make(map[RouterID]bool)
	n.SetHooks(Hooks{OnSuppress: func(_ time.Duration, router, _ RouterID, _ Prefix, on bool) {
		if on {
			suppressedBy[router] = true
		}
	}})
	converge(t, k, n, origin)
	n.ResetDamping()
	for i := 0; i < 3; i++ {
		pulse(t, k, n, origin)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(suppressedBy) == 0 {
		t.Fatal("no suppression anywhere under partial deployment")
	}
	for router := range suppressedBy {
		if router%2 != 0 {
			t.Fatalf("undamped router %d suppressed a route", router)
		}
	}
}

// TestPartialDeploymentReducesSuppression: fewer damping routers, fewer
// suppressed links at the peak.
func TestPartialDeploymentReducesSuppression(t *testing.T) {
	params := damping.Cisco()
	run := func(frac int) int {
		g := mustTorus(t, 4, 4)
		origin, _ := attachOrigin(t, g, 0)
		k, n := buildNet(t, g, func(c *Config) {
			c.DampingSelect = func(id RouterID) *damping.Params {
				if int(id)%4 < frac {
					return &params
				}
				return nil
			}
		})
		converge(t, k, n, origin)
		n.ResetDamping()
		maxDamped := 0
		n.SetHooks(Hooks{OnSuppress: func(_ time.Duration, _, _ RouterID, _ Prefix, _ bool) {
			if d := n.DampedLinkCount(); d > maxDamped {
				maxDamped = d
			}
		}})
		pulse(t, k, n, origin)
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return maxDamped
	}
	quarter := run(1) // 25 % of routers damp
	full := run(4)    // all damp
	if quarter >= full {
		t.Fatalf("partial deployment did not reduce suppression: 25%%=%d, 100%%=%d", quarter, full)
	}
	if quarter == 0 {
		t.Fatal("no suppression at 25% deployment; scenario too weak")
	}
}

// TestHeterogeneousParamsSecondaryCharging reproduces the Section 6
// example: X and Y see the same updates, but Y's more aggressive parameters
// keep Y suppressing after X reuses; X's reuse announcement then re-charges
// Y's penalty and postpones Y's reuse timer.
func TestHeterogeneousParamsSecondaryCharging(t *testing.T) {
	// Chain: origin(3) - isp(0) - X(1) - Y(2). X uses Cisco defaults; Y
	// uses an aggressive variant that also charges re-announcements and
	// holds routes longer.
	g := mustLine(t, 3) // 0 - 1 - 2
	origin, _ := attachOrigin(t, g, 0)
	xParams := damping.Cisco()
	yParams := damping.Cisco()
	yParams.ReannouncementPenalty = 1000
	yParams.CutoffThreshold = 1500

	k, n := buildNet(t, g, func(c *Config) {
		c.DampingSelect = func(id RouterID) *damping.Params {
			switch id {
			case 1:
				return &xParams
			case 2:
				return &yParams
			default:
				return nil // the isp and origin do not damp in this scenario
			}
		}
	})
	converge(t, k, n, origin)
	n.ResetDamping()

	var yPenaltyAtXReuse, yPenaltyAfter float64
	var xReused time.Duration
	n.SetHooks(Hooks{
		OnReuse: func(at time.Duration, router, _ RouterID, _ Prefix, _ bool) {
			if router == 1 && xReused == 0 {
				xReused = at
				yPenaltyAtXReuse = n.Router(2).Penalty(1, testPrefix, at)
			}
		},
		OnPenalty: func(at time.Duration, router, peer RouterID, _ Prefix, p float64) {
			if router == 2 && peer == 1 && xReused > 0 && at > xReused {
				yPenaltyAfter = p
			}
		},
	})
	// Flap hard enough to suppress both X's and Y's entries.
	for i := 0; i < 4; i++ {
		pulse(t, k, n, origin)
	}
	if !n.Router(1).Suppressed(0, testPrefix) {
		t.Fatal("setup: X did not suppress")
	}
	if !n.Router(2).Suppressed(1, testPrefix) {
		t.Fatal("setup: Y did not suppress")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if xReused == 0 {
		t.Fatal("X never reused")
	}
	if yPenaltyAfter <= yPenaltyAtXReuse {
		t.Fatalf("X's reuse did not re-charge Y: %.0f -> %.0f", yPenaltyAtXReuse, yPenaltyAfter)
	}
}

// TestSelectiveDampingSkipsExplorationCharges: with selective damping, an
// announcement with a longer path than its predecessor does not charge.
func TestSelectiveDampingReducesFalseSuppression(t *testing.T) {
	run := func(selective bool) int {
		g := mustTorus(t, 4, 4)
		origin, _ := attachOrigin(t, g, 0)
		params := damping.Cisco()
		k, n := buildNet(t, g, func(c *Config) {
			c.Damping = &params
			c.SelectiveDamping = selective
		})
		converge(t, k, n, origin)
		n.ResetDamping()
		maxDamped := 0
		n.SetHooks(Hooks{OnSuppress: func(_ time.Duration, _, _ RouterID, _ Prefix, _ bool) {
			if d := n.DampedLinkCount(); d > maxDamped {
				maxDamped = d
			}
		}})
		pulse(t, k, n, origin)
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return maxDamped
	}
	classic := run(false)
	selective := run(true)
	if selective >= classic {
		t.Fatalf("selective damping did not reduce false suppression: %d vs %d", selective, classic)
	}
}

// TestSelectiveDampingStillSuppressesOrigin: the heuristic must not break
// damping's core function against a persistently flapping link.
func TestSelectiveDampingStillSuppressesOrigin(t *testing.T) {
	g := mustTorus(t, 4, 4)
	origin, isp := attachOrigin(t, g, 0)
	params := damping.Cisco()
	k, n := buildNet(t, g, func(c *Config) {
		c.Damping = &params
		c.SelectiveDamping = true
	})
	converge(t, k, n, origin)
	n.ResetDamping()
	for i := 0; i < 3; i++ {
		pulse(t, k, n, origin)
	}
	if !n.Router(isp).Suppressed(origin, testPrefix) {
		t.Fatal("selective damping failed to suppress the flapping origin link")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
