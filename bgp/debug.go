package bgp

import (
	"fmt"
	"time"

	"rfd/rcn"
)

// DropReason classifies why the engine discarded a message after it was sent.
type DropReason int

const (
	// DropImpairment: the impairment model lost the message at send time.
	DropImpairment DropReason = iota + 1
	// DropSevered: the message was in flight when its session died (link
	// failure, session reset, or a crash of either endpoint) and was
	// discarded on arrival — possibly after the session re-established.
	DropSevered
)

// String names the drop reason.
func (r DropReason) String() string {
	switch r {
	case DropImpairment:
		return "impairment"
	case DropSevered:
		return "severed"
	default:
		return fmt.Sprintf("DropReason(%d)", int(r))
	}
}

// DebugHooks are verification-oriented observation points, separate from the
// metrics Hooks so a checker and an experiment can observe the same run
// without fighting over one hook set. Nil fields are not called; installed
// functions must not mutate the network. Unlike Hooks, these fire on the
// engine's internal paths too — OnUpdate sees the withdrawals a session
// failure synthesizes, which never appear as delivered messages.
//
// Conservation contract: OnSend fires for every message a router hands to an
// established session, before the impairment decision. Each such message then
// triggers exactly one of OnDeliver or OnDrop, so at any instant
//
//	sent == delivered + dropped + in-flight
//
// holds per directed link. Messages a router tries to send while no session
// is established are silently discarded by the engine and fire no hook (the
// engine's reconcile paths never do this; the branch is defensive).
type DebugHooks struct {
	// OnSend fires when a message enters an established session.
	OnSend func(at time.Duration, msg Message)
	// OnDeliver fires when a message reaches its receiver, before the
	// receiver processes it (same instant as Hooks.OnDeliver).
	OnDeliver func(at time.Duration, msg Message)
	// OnDrop fires when a sent message is discarded instead of delivered.
	OnDrop func(at time.Duration, msg Message, reason DropReason)
	// OnUpdate fires at the top of a router's RIB-IN/damping mutation for
	// one update — delivered from the peer or synthesized by a session
	// failure — before any state changes. It is the single point where every
	// damping charge in the engine can be observed, which is what the
	// differential oracle in package check replays.
	OnUpdate func(at time.Duration, router, peer RouterID, prefix Prefix, withdraw bool, path Path, cause rcn.Cause)
}

// SetDebugHooks installs the debug hook set (replacing any previous one).
// Checkers that want to chain should save DebugHooks first and call the
// saved functions from their own.
func (n *Network) SetDebugHooks(h DebugHooks) { n.debugHooks = h }

// DebugHooks returns the currently installed debug hook set (zero when none).
func (n *Network) DebugHooks() DebugHooks { return n.debugHooks }
