package bgp

import (
	"testing"
	"time"

	"rfd/damping"
)

// TestMRAIPendingCollapsesToLatest: several best-path changes within one
// MRAI window must produce a single announcement carrying the final state,
// not a burst.
func TestMRAIPendingCollapsesToLatest(t *testing.T) {
	// Line 0-1-2: router 1's announcements toward 2 are rate limited.
	k, n := buildNet(t, mustLine(t, 3), func(c *Config) {
		c.MRAI = 30 * time.Second
		c.MRAIJitter = false
	})
	converge(t, k, n, 0)

	var toward2 []Message
	n.SetHooks(Hooks{OnDeliver: func(_ time.Duration, m Message) {
		if m.From == 1 && m.To == 2 {
			toward2 = append(toward2, m)
		}
	}})

	// Rapid flapping of the origin: 4 transitions well inside one MRAI.
	// Withdrawals pass immediately; announcements coalesce.
	for i := 0; i < 2; i++ {
		n.Router(0).StopOriginating(testPrefix)
		if err := k.RunUntil(k.Now() + 2*time.Second); err != nil {
			t.Fatal(err)
		}
		n.Router(0).Originate(testPrefix)
		if err := k.RunUntil(k.Now() + 2*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	anns := 0
	for _, m := range toward2 {
		if !m.Withdraw {
			anns++
		}
	}
	// The first announcement goes out immediately (timer idle); everything
	// else coalesces into at most one pending release.
	if anns > 2 {
		t.Fatalf("%d announcements crossed 1->2 during rapid flapping; MRAI did not coalesce", anns)
	}
	// Final state must be consistent.
	if err := n.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if _, ok := n.Router(2).LocalRoute(testPrefix); !ok {
		t.Fatal("router 2 missing the final route")
	}
}

// TestMRAIWithdrawalCancelsPending: a withdrawal arriving while an
// announcement is pending must cancel it — the peer must never receive a
// stale announcement after the withdrawal.
func TestMRAIWithdrawalCancelsPending(t *testing.T) {
	k, n := buildNet(t, mustLine(t, 3), func(c *Config) {
		c.MRAI = 30 * time.Second
		c.MRAIJitter = false
	})
	converge(t, k, n, 0)
	var last Message
	n.SetHooks(Hooks{OnDeliver: func(_ time.Duration, m Message) {
		if m.From == 1 && m.To == 2 {
			last = m
		}
	}})
	// Flap fast: down-up-down. Final state: withdrawn.
	n.Router(0).StopOriginating(testPrefix)
	if err := k.RunUntil(k.Now() + time.Second); err != nil {
		t.Fatal(err)
	}
	n.Router(0).Originate(testPrefix)
	if err := k.RunUntil(k.Now() + time.Second); err != nil {
		t.Fatal(err)
	}
	n.Router(0).StopOriginating(testPrefix)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !last.Withdraw {
		t.Fatalf("final message toward 2 was an announcement: %s", last)
	}
	if _, ok := n.Router(2).LocalRoute(testPrefix); ok {
		t.Fatal("router 2 kept a route after final withdrawal")
	}
}

// TestMRAITimerLapsesWhenIdle: after convergence no MRAI timers may keep
// the kernel busy forever (they fire once and lapse).
func TestMRAITimerLapses(t *testing.T) {
	k, n := buildNet(t, mustTorus(t, 4, 4), nil)
	converge(t, k, n, 0)
	if k.Pending() != 0 {
		t.Fatalf("%d events still pending after convergence", k.Pending())
	}
	_ = n
}

// TestReuseTimerStaleRearm: the reuse timer must re-arm rather than reuse
// when the penalty was re-charged after arming (TryReuse fails path).
func TestReuseTimerStaleRearm(t *testing.T) {
	k, n, origin, isp := dampedNet(t, nil)
	// Suppress the origin link at the isp.
	for i := 0; i < 3; i++ {
		pulse(t, k, n, origin)
	}
	if !n.Router(isp).Suppressed(origin, testPrefix) {
		t.Fatal("setup: not suppressed")
	}
	// Keep flapping: each pulse re-charges the suppressed entry and pushes
	// its reuse out; the (stale) earlier timers must not unsuppress early.
	for i := 0; i < 4; i++ {
		pulse(t, k, n, origin)
		if !n.Router(isp).Suppressed(origin, testPrefix) {
			t.Fatalf("suppression lifted early during pulse %d", i+4)
		}
	}
	// Eventually the route is reused and the network converges.
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Router(isp).Suppressed(origin, testPrefix) {
		t.Fatal("still suppressed after drain")
	}
	if err := n.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestRIPE229Preset pins the coordinated parameters and their effect: the
// higher cut-off delays the origin-link suppression onset to pulse 4.
func TestRIPE229Onset(t *testing.T) {
	p := damping.RIPE229()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.CutoffThreshold != 3000 || p.ReannouncementPenalty != 0 {
		t.Fatalf("RIPE-229 preset wrong: %+v", p)
	}
	g := mustTorus(t, 4, 4)
	origin, isp := attachOrigin(t, g, 0)
	k, n := buildNet(t, g, func(c *Config) {
		c.Damping = &p
	})
	converge(t, k, n, origin)
	n.ResetDamping()
	onset := 0
	for i := 1; i <= 8 && onset == 0; i++ {
		pulse(t, k, n, origin)
		if n.Router(isp).Suppressed(origin, testPrefix) {
			onset = i
		}
	}
	// Cisco (cutoff 2000) suppresses at 3; RIPE-229's 3000 needs one more.
	if onset != 4 {
		t.Fatalf("RIPE-229 onset = %d, want 4", onset)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestRCNHistoryUnderChurn: with a tiny per-peer history, evicted causes
// can re-charge — damping must still converge and stay consistent.
func TestRCNHistoryUnderChurn(t *testing.T) {
	k, n, origin, _ := dampedNet(t, func(c *Config) {
		c.EnableRCN = true
		c.RCNHistorySize = 2 // pathologically small
	})
	for i := 0; i < 5; i++ {
		pulse(t, k, n, origin)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := n.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < n.NumRouters(); id++ {
		if _, ok := n.Router(RouterID(id)).LocalRoute(testPrefix); !ok {
			t.Fatalf("router %d routeless after churn", id)
		}
	}
}

// TestDampedInternetRunConverges exercises damping on the long-tailed
// topology end to end (hubs see many peers and heavy churn).
func TestDampedInternetRunConverges(t *testing.T) {
	g := buildAnnotatedGraph(t, 50, 13)
	origin := g.NumNodes() - 1 // buildAnnotatedGraph appends the origin last
	k, n := buildNet(t, g, func(c *Config) {
		params := damping.Cisco()
		c.Damping = &params
	})
	converge(t, k, n, RouterID(origin))
	n.ResetDamping()
	n.ResetCounters()
	for i := 0; i < 3; i++ {
		pulse(t, k, n, RouterID(origin))
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := n.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if n.DampedLinkCount() != 0 {
		t.Fatal("links still suppressed after drain")
	}
}
