package bgp

import (
	"strings"
	"testing"
	"time"

	"rfd/damping"
	"rfd/topology"
)

// fixedDelayNet builds a network with a deterministic 10 s link delay and no
// processing delay or MRAI, so arrival instants can be asserted exactly.
func fixedDelayNet(t *testing.T, g *topology.Graph) (*Network, time.Duration) {
	t.Helper()
	const linkDelay = 10 * time.Second
	_, n := buildNet(t, g, func(c *Config) {
		c.MinLinkDelay, c.MaxLinkDelay = linkDelay, linkDelay
		c.MinProcDelay, c.MaxProcDelay = 0, 0
		c.MRAI = 0
	})
	return n, linkDelay
}

func TestLastArrivalClearedOnLinkFailure(t *testing.T) {
	// Regression for stale FIFO state: messages lost on a failed link must
	// not serialize post-recovery messages behind their arrival times. Queue
	// several updates in flight (inflating the direction's FIFO high-water
	// mark), kill and restore the link in the same instant, and check the
	// re-advertisement arrives at its natural time, not one forced after the
	// lost messages'.
	n, linkDelay := fixedDelayNet(t, mustLine(t, 2))
	k := n.Kernel()
	converge(t, k, n, 0)

	start := k.Now()
	r := n.Router(0)
	// Three toggles queue W, A, W, A: arrivals at start+10s, +1ns, +2ns, +3ns.
	r.StopOriginating(testPrefix)
	r.Originate(testPrefix)
	r.StopOriginating(testPrefix)
	r.Originate(testPrefix)
	if n.PendingDeliveries() != 4 {
		t.Fatalf("PendingDeliveries = %d, want 4", n.PendingDeliveries())
	}
	if err := n.SetLinkState(0, 1, false); err != nil {
		t.Fatal(err)
	}
	if err := n.SetLinkState(0, 1, true); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// The four in-flight updates were lost; only the recovery
	// re-advertisement arrives, exactly one link delay after the toggles.
	if got := n.LastDelivery(); got != start+linkDelay {
		t.Fatalf("last delivery at %v, want %v (stale FIFO state not cleared)", got, start+linkDelay)
	}
	if err := n.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if _, ok := n.Router(1).LocalRoute(testPrefix); !ok {
		t.Fatal("router 1 routeless after recovery")
	}
}

func TestSetLinkStateRepeatedTransitionsAreNoops(t *testing.T) {
	k, n := buildNet(t, mustTorus(t, 4, 4), nil)
	converge(t, k, n, 0)
	if err := n.SetLinkState(0, 1, false); err != nil {
		t.Fatal(err)
	}
	pending := k.Pending()
	if err := n.SetLinkState(0, 1, false); err != nil {
		t.Fatal(err)
	}
	if k.Pending() != pending {
		t.Fatalf("second down scheduled %d extra events", k.Pending()-pending)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := n.SetLinkState(0, 1, true); err != nil {
		t.Fatal(err)
	}
	pending = k.Pending()
	if err := n.SetLinkState(0, 1, true); err != nil {
		t.Fatal(err)
	}
	if k.Pending() != pending {
		t.Fatalf("second up scheduled %d extra events", k.Pending()-pending)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := n.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestLinkFailureWhileReuseTimerPending(t *testing.T) {
	// Suppress the isp's origin route, then fail the link while the reuse
	// timer is pending: the extra withdrawal charge lands on the suppressed
	// state, the timer keeps re-arming, and after recovery the network must
	// reconverge consistently with suppression eventually lifted.
	g := mustTorus(t, 4, 4)
	origin, isp := attachOrigin(t, g, 0)
	k, n := buildNet(t, g, func(c *Config) {
		params := damping.Cisco()
		c.Damping = &params
	})
	converge(t, k, n, origin)
	n.ResetDamping()
	for i := 0; i < 3; i++ {
		n.Router(origin).StopOriginating(testPrefix)
		if err := k.RunUntil(k.Now() + 60*time.Second); err != nil {
			t.Fatal(err)
		}
		n.Router(origin).Originate(testPrefix)
		if err := k.RunUntil(k.Now() + 60*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if !n.Router(isp).Suppressed(origin, testPrefix) {
		t.Fatal("isp not suppressed after 3 flaps")
	}
	if err := n.SetLinkState(origin, isp, false); err != nil {
		t.Fatal(err)
	}
	if err := k.RunUntil(k.Now() + 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := n.SetLinkState(origin, isp, true); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Router(isp).Suppressed(origin, testPrefix) {
		t.Fatal("suppression never lifted after full drain")
	}
	if peer, ok := n.Router(isp).BestPeer(testPrefix); !ok || peer != origin {
		t.Fatalf("isp best peer = %d (ok=%t), want %d", peer, ok, origin)
	}
	if err := n.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestOriginCrashWithdrawsNetworkWide(t *testing.T) {
	k, n := buildNet(t, mustTorus(t, 4, 4), nil)
	converge(t, k, n, 0)
	if err := n.CrashRouter(0); err != nil {
		t.Fatal(err)
	}
	if n.RouterUp(0) {
		t.Fatal("crashed router reported up")
	}
	// Idempotent.
	if err := n.CrashRouter(0); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for id := 1; id < n.NumRouters(); id++ {
		if _, ok := n.Router(RouterID(id)).LocalRoute(testPrefix); ok {
			t.Fatalf("router %d kept a route to the crashed origin", id)
		}
	}
	if err := n.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// Restart: the origin set survives the reboot, so the prefix comes back
	// network-wide.
	if err := n.RestartRouter(0); err != nil {
		t.Fatal(err)
	}
	if !n.RouterUp(0) {
		t.Fatal("restarted router reported down")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < n.NumRouters(); id++ {
		if _, ok := n.Router(RouterID(id)).LocalRoute(testPrefix); !ok {
			t.Fatalf("router %d routeless after origin restart", id)
		}
	}
	if err := n.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestTransitRouterCrashRestart(t *testing.T) {
	// Crash a non-origin router on a line: downstream routers lose the
	// route, and the restarted router relearns it from its peers.
	k, n := buildNet(t, mustLine(t, 4), nil)
	converge(t, k, n, 0)
	if err := n.CrashRouter(1); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for _, id := range []RouterID{2, 3} {
		if _, ok := n.Router(id).LocalRoute(testPrefix); ok {
			t.Fatalf("router %d kept a route through the crashed transit", id)
		}
	}
	if err := n.RestartRouter(1); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 4; id++ {
		if _, ok := n.Router(RouterID(id)).LocalRoute(testPrefix); !ok {
			t.Fatalf("router %d routeless after transit restart", id)
		}
	}
	if err := n.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashKillsInFlightMessages(t *testing.T) {
	n, _ := fixedDelayNet(t, mustLine(t, 2))
	k := n.Kernel()
	converge(t, k, n, 0)
	n.ResetCounters()
	n.Router(0).StopOriginating(testPrefix)
	if n.PendingDeliveries() != 1 {
		t.Fatalf("PendingDeliveries = %d, want 1", n.PendingDeliveries())
	}
	if err := n.CrashRouter(1); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Delivered() != 0 {
		t.Fatalf("%d messages delivered to a crashed router", n.Delivered())
	}
	if n.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", n.Dropped())
	}
	if err := n.RestartRouter(1); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := n.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionResetChargesDampingAndReconverges(t *testing.T) {
	k, n := buildNet(t, mustLine(t, 3), func(c *Config) {
		params := damping.Cisco()
		c.Damping = &params
	})
	converge(t, k, n, 0)
	n.ResetDamping()
	n.ResetCounters()
	if err := n.ResetSession(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Router 1 saw the session flap as a route flap: withdrawal plus
	// re-announcement must have charged its damping state for (0, prefix).
	if p := n.Router(1).Penalty(0, testPrefix, k.Now()); p <= 0 {
		t.Fatalf("penalty = %v after session reset, want > 0", p)
	}
	if n.Delivered() == 0 {
		t.Fatal("session reset generated no re-advertisements")
	}
	for id := 1; id <= 2; id++ {
		if _, ok := n.Router(RouterID(id)).LocalRoute(testPrefix); !ok {
			t.Fatalf("router %d routeless after session reset", id)
		}
	}
	if err := n.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// Unknown links error; resets of dead sessions are no-ops.
	if err := n.ResetSession(0, 2); err == nil {
		t.Fatal("reset of nonexistent link accepted")
	}
	if err := n.SetLinkState(0, 1, false); err != nil {
		t.Fatal(err)
	}
	pending := k.Pending()
	if err := n.ResetSession(0, 1); err != nil {
		t.Fatal(err)
	}
	if k.Pending() != pending {
		t.Fatal("reset of a down session scheduled events")
	}
}

func TestSessionResetKillsInFlightMessages(t *testing.T) {
	// A message in flight when the session resets belongs to the old
	// incarnation and must be lost, even though the session is immediately
	// re-established.
	n, linkDelay := fixedDelayNet(t, mustLine(t, 2))
	k := n.Kernel()
	converge(t, k, n, 0)
	n.ResetCounters()
	start := k.Now()
	n.Router(0).StopOriginating(testPrefix)
	n.Router(0).Originate(testPrefix)
	if err := n.ResetSession(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want the 2 pre-reset messages", n.Dropped())
	}
	// Only the reset's own re-advertisement crosses, at its natural time.
	if got := n.LastDelivery(); got != start+linkDelay {
		t.Fatalf("last delivery at %v, want %v", got, start+linkDelay)
	}
	if err := n.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestOriginationFlapWhileLinkDownResyncsOnRecovery(t *testing.T) {
	// Regression: a route change while a link is down must not record an
	// advertisement toward the dead session — the message is lost, and the
	// recovery re-sync would then skip the route as "already advertised",
	// leaving the peer permanently stale.
	k, n := buildNet(t, mustLine(t, 3), nil)
	converge(t, k, n, 0)
	if err := n.SetLinkState(0, 1, false); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	n.Router(0).StopOriginating(testPrefix)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	n.Router(0).Originate(testPrefix)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := n.SetLinkState(0, 1, true); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := n.Router(1).LocalRoute(testPrefix); !ok {
		t.Fatal("router 1 never relearned the route announced while the link was down")
	}
	if err := n.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckConsistencyRequiresQuiescence(t *testing.T) {
	k, n := buildNet(t, mustLine(t, 3), nil)
	converge(t, k, n, 0)
	if !n.Quiescent() {
		t.Fatal("drained network not quiescent")
	}
	n.Router(0).StopOriginating(testPrefix)
	if n.Quiescent() {
		t.Fatal("network with in-flight withdrawal reported quiescent")
	}
	err := n.CheckConsistency()
	if err == nil || !strings.Contains(err.Error(), "non-quiescent") {
		t.Fatalf("CheckConsistency on non-quiescent network: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !n.Quiescent() {
		t.Fatal("drained network not quiescent")
	}
	if err := n.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// dropDirection is a test impairment: loses every message on one direction,
// optionally delaying the rest.
type dropDirection struct {
	from, to RouterID
	delay    time.Duration
}

func (d dropDirection) Impair(_ time.Duration, from, to RouterID) (bool, time.Duration) {
	if from == d.from && to == d.to {
		return true, 0
	}
	return false, d.delay
}

func TestImpairmentDropsAndDelays(t *testing.T) {
	n, linkDelay := fixedDelayNet(t, mustLine(t, 2))
	k := n.Kernel()
	converge(t, k, n, 0)
	n.ResetCounters()

	// Jitter path: every surviving message is delayed by a fixed second.
	n.SetImpairment(dropDirection{from: -1, to: -1, delay: time.Second})
	start := k.Now()
	n.Router(0).StopOriginating(testPrefix)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := n.LastDelivery(); got != start+linkDelay+time.Second {
		t.Fatalf("jittered delivery at %v, want %v", got, start+linkDelay+time.Second)
	}

	// Loss path: the re-announcement toward router 1 is dropped, leaving
	// the session's RIBs divergent — exactly what CheckConsistency must
	// report under loss.
	n.SetImpairment(dropDirection{from: 0, to: 1})
	n.Router(0).Originate(testPrefix)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", n.Dropped())
	}
	if _, ok := n.Router(1).LocalRoute(testPrefix); ok {
		t.Fatal("router 1 learned a route from a dropped update")
	}
	if err := n.CheckConsistency(); err == nil {
		t.Fatal("consistency check missed the divergence a dropped update causes")
	}
	// A session reset repairs the divergence (the real-world remedy).
	n.SetImpairment(nil)
	if err := n.ResetSession(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := n.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
