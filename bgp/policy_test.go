package bgp

import (
	"testing"
	"time"

	"rfd/topology"
)

// hopKind classifies one propagation hop sender→receiver of an AS path:
// "up" (customer to provider), "down" (provider to customer), "flat" (peers).
func hopKind(g *topology.Graph, sender, receiver topology.NodeID) string {
	switch g.Relationship(receiver, sender) {
	case topology.RelCustomer:
		// The sender is the receiver's customer: the route moved upward.
		return "up"
	case topology.RelProvider:
		return "down"
	default:
		return "flat"
	}
}

// valleyFreePath checks the classic pattern: up* flat? down* along the
// propagation direction (origin ... receiver).
func valleyFreePath(g *topology.Graph, path Path, receiver RouterID) bool {
	// Propagation order: path[len-1] (origin) ... path[0], then receiver.
	hops := make([]string, 0, len(path))
	for i := len(path) - 1; i > 0; i-- {
		hops = append(hops, hopKind(g, path[i], path[i-1]))
	}
	hops = append(hops, hopKind(g, path[0], receiver))
	phase := "up"
	for _, h := range hops {
		switch h {
		case "up":
			if phase != "up" {
				return false
			}
		case "flat":
			if phase == "down" {
				return false
			}
			phase = "down" // at most one peer link, then only downhill
		case "down":
			phase = "down"
		}
	}
	return true
}

// buildAnnotatedGraph returns an annotated internet-derived graph with the
// origin appended as the last node (customer of a mid-ranked isp).
func buildAnnotatedGraph(t *testing.T, nodes int, seed uint64) *topology.Graph {
	t.Helper()
	g, _, _ := buildAnnotated(t, nodes, seed)
	return g
}

func buildAnnotated(t *testing.T, nodes int, seed uint64) (*topology.Graph, RouterID, RouterID) {
	t.Helper()
	g, err := topology.InternetDerived(topology.DefaultInternetConfig(nodes, seed))
	if err != nil {
		t.Fatal(err)
	}
	// Attach the origin as a customer of a mid-ranked node, like the paper's
	// random ispAS selection.
	isp := topology.NodeID(nodes / 2)
	origin := g.AddNode()
	if err := g.AddEdge(origin, isp); err != nil {
		t.Fatal(err)
	}
	if err := g.SetRelationship(origin, isp, topology.RelProvider); err != nil {
		t.Fatal(err)
	}
	return g, origin, isp
}

func TestNoValleyAllPathsValleyFree(t *testing.T) {
	g, origin, _ := buildAnnotated(t, 60, 17)
	k, n := buildNet(t, g, func(c *Config) {
		c.Policy = NoValley
	})
	violations := 0
	n.SetHooks(Hooks{OnDeliver: func(_ time.Duration, m Message) {
		if m.Withdraw {
			return
		}
		if !valleyFreePath(g, m.Path, m.To) {
			violations++
			t.Errorf("valley path [%s] delivered to %d", m.Path, m.To)
		}
	}})
	converge(t, k, n, origin)
	n.Router(origin).StopOriginating(testPrefix)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	n.Router(origin).Originate(testPrefix)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if violations > 0 {
		t.Fatalf("%d valley violations", violations)
	}
}

func TestNoValleyEveryoneReachesCustomerRoute(t *testing.T) {
	// A customer-originated route is exportable upward and downward, so the
	// whole (connected, valley-free-annotated) network must learn it.
	g, origin, _ := buildAnnotated(t, 60, 23)
	k, n := buildNet(t, g, func(c *Config) {
		c.Policy = NoValley
	})
	converge(t, k, n, origin)
	for id := 0; id < n.NumRouters(); id++ {
		if _, ok := n.Router(RouterID(id)).LocalRoute(testPrefix); !ok {
			t.Fatalf("router %d did not learn the customer route", id)
		}
	}
	if err := n.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestNoValleyPrefersCustomerRoutes(t *testing.T) {
	// The origin 3 is multihomed: a customer of tier-1 0 directly, and of 4,
	// which is a customer of 1, which is a customer of 2. 0 and 2 peer.
	// Router 2 then hears the prefix from its peer 0 with path [0 3] (len 2)
	// and from its customer 1 with path [1 4 3] (len 3). The no-valley
	// customer preference must beat the shorter peer path.
	g := topology.New("pref", 5)
	rels := []struct {
		a, b topology.NodeID
		rel  topology.Relationship // a's view of b
	}{
		{3, 0, topology.RelProvider},
		{3, 4, topology.RelProvider},
		{4, 1, topology.RelProvider},
		{1, 2, topology.RelProvider},
		{0, 2, topology.RelPeer},
	}
	for _, e := range rels {
		if err := g.AddEdge(e.a, e.b); err != nil {
			t.Fatal(err)
		}
		if err := g.SetRelationship(e.a, e.b, e.rel); err != nil {
			t.Fatal(err)
		}
	}
	if err := topology.ValleyFree(g); err != nil {
		t.Fatal(err)
	}
	k, n := buildNet(t, g, func(c *Config) {
		c.Policy = NoValley
	})
	converge(t, k, n, 3)
	peer, ok := n.Router(2).BestPeer(testPrefix)
	if !ok {
		t.Fatal("router 2 has no route")
	}
	if peer != 1 {
		t.Fatalf("router 2 best peer = %d, want customer 1 over shorter peer route", peer)
	}
	path, _ := n.Router(2).LocalRoute(testPrefix)
	if !path.Equal(Path{1, 4, 3}) {
		t.Fatalf("router 2 path [%s], want [1 4 3]", path)
	}
}

func TestNoValleyBlocksPeerToPeerTransit(t *testing.T) {
	// Line 0-1-2 where 0 and 2 are both peers of 1: 1 must not give 2 a
	// route to 0's prefix (transit between two peers).
	g := topology.New("transit", 3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.SetRelationship(0, 1, topology.RelPeer); err != nil {
		t.Fatal(err)
	}
	if err := g.SetRelationship(1, 2, topology.RelPeer); err != nil {
		t.Fatal(err)
	}
	k, n := buildNet(t, g, func(c *Config) {
		c.Policy = NoValley
	})
	converge(t, k, n, 0)
	if _, ok := n.Router(1).LocalRoute(testPrefix); !ok {
		t.Fatal("router 1 (direct peer) should have the route")
	}
	if _, ok := n.Router(2).LocalRoute(testPrefix); ok {
		t.Fatal("router 2 got peer-to-peer transit through 1")
	}
}

func TestNoValleyProviderRouteOnlyToCustomers(t *testing.T) {
	// 1 learns the prefix from its provider 0; 1's customer 2 must get it,
	// 1's peer 3 must not.
	g := topology.New("export", 4)
	for _, e := range [][2]topology.NodeID{{0, 1}, {1, 2}, {1, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.SetRelationship(1, 0, topology.RelProvider); err != nil {
		t.Fatal(err)
	}
	if err := g.SetRelationship(2, 1, topology.RelProvider); err != nil {
		t.Fatal(err)
	}
	if err := g.SetRelationship(1, 3, topology.RelPeer); err != nil {
		t.Fatal(err)
	}
	k, n := buildNet(t, g, func(c *Config) {
		c.Policy = NoValley
	})
	converge(t, k, n, 0)
	if _, ok := n.Router(2).LocalRoute(testPrefix); !ok {
		t.Fatal("customer 2 did not receive the provider route")
	}
	if _, ok := n.Router(3).LocalRoute(testPrefix); ok {
		t.Fatal("peer 3 received a provider-learned route (valley)")
	}
}

func TestNoValleyOnTieredHierarchy(t *testing.T) {
	// The tiered AS family: a prefix originated in one stub must reach
	// every AS under no-valley export rules, and all delivered paths must
	// be valley-free.
	cfg := topology.DefaultTieredConfig(3)
	g, err := topology.Tiered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Attach the origin as a customer of the first stub's tier-2 provider
	// (IDs: tier-1 first, then tier-2, then stubs).
	tier2 := topology.NodeID(cfg.Tier1)
	origin := g.AddNode()
	if err := g.AddEdge(origin, tier2); err != nil {
		t.Fatal(err)
	}
	if err := g.SetRelationship(origin, tier2, topology.RelProvider); err != nil {
		t.Fatal(err)
	}
	k, n := buildNet(t, g, func(c *Config) {
		c.Policy = NoValley
	})
	violations := 0
	n.SetHooks(Hooks{OnDeliver: func(_ time.Duration, m Message) {
		if !m.Withdraw && !valleyFreePath(g, m.Path, m.To) {
			violations++
		}
	}})
	converge(t, k, n, origin)
	if violations > 0 {
		t.Fatalf("%d valley violations on tiered hierarchy", violations)
	}
	for id := 0; id < n.NumRouters(); id++ {
		if _, ok := n.Router(RouterID(id)).LocalRoute(testPrefix); !ok {
			t.Fatalf("router %d unreachable on tiered hierarchy", id)
		}
	}
	if err := n.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestNoValleyReducesExploration(t *testing.T) {
	// Section 7: policy prunes alternate paths, so a withdrawal triggers
	// fewer updates than under shortest-path on the same annotated graph.
	run := func(policy Policy) uint64 {
		g, origin, _ := buildAnnotated(t, 60, 31)
		k, n := buildNet(t, g, func(c *Config) {
			c.Policy = policy
		})
		converge(t, k, n, origin)
		n.ResetCounters()
		n.Router(origin).StopOriginating(testPrefix)
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return n.Delivered()
	}
	shortest := run(ShortestPath)
	noValley := run(NoValley)
	if noValley >= shortest {
		t.Fatalf("no-valley did not reduce updates: %d vs %d", noValley, shortest)
	}
}
