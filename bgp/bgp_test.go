package bgp

import (
	"testing"
	"time"

	"rfd/sim"
	"rfd/topology"
)

const testPrefix = Prefix("origin/8")

// buildNet constructs a network on a fresh kernel with the given topology and
// config tweaks applied to DefaultConfig.
func buildNet(t *testing.T, g *topology.Graph, mutate func(*Config)) (*sim.Kernel, *Network) {
	t.Helper()
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	k := sim.NewKernel(sim.WithSeed(cfg.Seed))
	n, err := NewNetwork(k, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k, n
}

// converge originates testPrefix at origin and drains the kernel.
func converge(t *testing.T, k *sim.Kernel, n *Network, origin RouterID) {
	t.Helper()
	n.Router(origin).Originate(testPrefix)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func mustTorus(t *testing.T, r, c int) *topology.Graph {
	t.Helper()
	g, err := topology.Torus(r, c)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustLine(t *testing.T, n int) *topology.Graph {
	t.Helper()
	g, err := topology.Line(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPathHelpers(t *testing.T) {
	p := Path{3, 7, 12}
	if !p.Contains(7) || p.Contains(8) {
		t.Fatal("Contains wrong")
	}
	q := p.Clone()
	q[0] = 99
	if p[0] != 3 {
		t.Fatal("Clone aliases storage")
	}
	if !p.Equal(Path{3, 7, 12}) || p.Equal(Path{3, 7}) || p.Equal(Path{3, 7, 13}) {
		t.Fatal("Equal wrong")
	}
	pre := p.Prepend(1)
	if !pre.Equal(Path{1, 3, 7, 12}) {
		t.Fatalf("Prepend = %v", pre)
	}
	if p.String() != "3 7 12" {
		t.Fatalf("String = %q", p.String())
	}
	var empty Path
	if empty.String() != "<empty>" {
		t.Fatalf("empty String = %q", empty.String())
	}
	if empty.Clone() != nil {
		t.Fatal("nil Clone != nil")
	}
}

func TestMessageString(t *testing.T) {
	w := Message{From: 1, To: 2, Prefix: testPrefix, Withdraw: true}
	if w.IsAnnouncement() {
		t.Fatal("withdrawal reported as announcement")
	}
	a := Message{From: 1, To: 2, Prefix: testPrefix, Path: Path{1, 0}}
	if !a.IsAnnouncement() {
		t.Fatal("announcement misreported")
	}
	if w.String() == "" || a.String() == "" {
		t.Fatal("empty String")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero policy", func(c *Config) { c.Policy = 0 }},
		{"negative mrai", func(c *Config) { c.MRAI = -time.Second }},
		{"inverted link delays", func(c *Config) { c.MaxLinkDelay = c.MinLinkDelay - 1 }},
		{"inverted proc delays", func(c *Config) { c.MaxProcDelay = c.MinProcDelay - 1 }},
		{"negative rcn history", func(c *Config) { c.RCNHistorySize = -1 }},
		{"rcn without damping", func(c *Config) { c.EnableRCN = true }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := DefaultConfig()
			c.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("accepted")
			}
		})
	}
}

func TestNewNetworkValidation(t *testing.T) {
	k := sim.NewKernel()
	if _, err := NewNetwork(k, topology.New("empty", 0), DefaultConfig()); err == nil {
		t.Fatal("empty topology accepted")
	}
	cfg := DefaultConfig()
	cfg.Policy = NoValley
	if _, err := NewNetwork(k, mustLine(t, 3), cfg); err == nil {
		t.Fatal("no-valley on unannotated topology accepted")
	}
	bad := DefaultConfig()
	bad.MRAI = -1
	if _, err := NewNetwork(k, mustLine(t, 3), bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestLineConvergence(t *testing.T) {
	k, n := buildNet(t, mustLine(t, 5), nil)
	converge(t, k, n, 0)
	// Every router must hold a route with the shortest path to 0.
	for id := 1; id < 5; id++ {
		path, ok := n.Router(RouterID(id)).LocalRoute(testPrefix)
		if !ok {
			t.Fatalf("router %d has no route", id)
		}
		if len(path) != id {
			t.Fatalf("router %d path [%s], want length %d", id, path, id)
		}
		if path[len(path)-1] != 0 {
			t.Fatalf("router %d path [%s] does not end at origin", id, path)
		}
	}
	if err := n.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestOriginRouterPrefersItself(t *testing.T) {
	k, n := buildNet(t, mustLine(t, 3), nil)
	converge(t, k, n, 0)
	peer, ok := n.Router(0).BestPeer(testPrefix)
	if !ok || peer != selfPeer {
		t.Fatalf("origin best peer = %d, ok=%t; want self", peer, ok)
	}
	if !n.Router(0).Originates(testPrefix) {
		t.Fatal("origin does not report originating")
	}
}

func TestWithdrawalPropagates(t *testing.T) {
	k, n := buildNet(t, mustLine(t, 5), nil)
	converge(t, k, n, 0)
	n.Router(0).StopOriginating(testPrefix)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 5; id++ {
		if _, ok := n.Router(RouterID(id)).LocalRoute(testPrefix); ok {
			t.Fatalf("router %d still has a route after withdrawal", id)
		}
	}
	if err := n.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestReannouncementRestoresRoutes(t *testing.T) {
	k, n := buildNet(t, mustTorus(t, 4, 4), nil)
	converge(t, k, n, 0)
	n.Router(0).StopOriginating(testPrefix)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	n.Router(0).Originate(testPrefix)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < n.NumRouters(); id++ {
		if _, ok := n.Router(RouterID(id)).LocalRoute(testPrefix); !ok {
			t.Fatalf("router %d routeless after re-announcement", id)
		}
	}
	if err := n.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestShortestPathsOnTorus(t *testing.T) {
	g := mustTorus(t, 5, 5)
	k, n := buildNet(t, g, nil)
	converge(t, k, n, 0)
	dist := g.BFS(0)
	for id := 1; id < n.NumRouters(); id++ {
		path, ok := n.Router(RouterID(id)).LocalRoute(testPrefix)
		if !ok {
			t.Fatalf("router %d has no route", id)
		}
		if len(path) != dist[topology.NodeID(id)] {
			t.Fatalf("router %d path length %d, BFS distance %d", id, len(path), dist[topology.NodeID(id)])
		}
	}
}

func TestNoLoopsEver(t *testing.T) {
	k, n := buildNet(t, mustTorus(t, 4, 4), nil)
	// Observe every delivered announcement; none may contain its receiver.
	n.SetHooks(Hooks{OnDeliver: func(_ time.Duration, m Message) {
		if !m.Withdraw && m.Path.Contains(m.To) {
			t.Errorf("looped path [%s] delivered to %d", m.Path, m.To)
		}
		if !m.Withdraw && m.Path[0] != m.From {
			t.Errorf("path [%s] does not start with sender %d", m.Path, m.From)
		}
	}})
	converge(t, k, n, 0)
	n.Router(0).StopOriginating(testPrefix)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTieBreakDeterministic(t *testing.T) {
	// On a 4-ring, routers 1 and 3 are equidistant neighbors of 2; the
	// tie-break must pick the lower peer ID.
	g, err := topology.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	k, n := buildNet(t, g, nil)
	converge(t, k, n, 0)
	peer, ok := n.Router(2).BestPeer(testPrefix)
	if !ok {
		t.Fatal("router 2 has no route")
	}
	if peer != 1 {
		t.Fatalf("router 2 best peer = %d, want 1 (lowest ID tie-break)", peer)
	}
}

func TestMRAIRateLimitsAnnouncements(t *testing.T) {
	// With MRAI on, consecutive announcements on one session must be spaced
	// at least ~MRAI apart (withdrawals may interleave freely).
	g := mustTorus(t, 4, 4)
	k, n := buildNet(t, g, func(c *Config) {
		c.MRAI = 30 * time.Second
		c.MRAIJitter = false
	})
	type key struct{ from, to RouterID }
	lastAnn := make(map[key]time.Duration)
	minGap := time.Hour
	n.SetHooks(Hooks{OnDeliver: func(at time.Duration, m Message) {
		if m.Withdraw {
			return
		}
		kk := key{m.From, m.To}
		if prev, ok := lastAnn[kk]; ok {
			if gap := at - prev; gap < minGap {
				minGap = gap
			}
		}
		lastAnn[kk] = at
	}})
	converge(t, k, n, 0)
	// Flap to force repeated announcements.
	for i := 0; i < 3; i++ {
		n.Router(0).StopOriginating(testPrefix)
		if err := k.RunUntil(k.Now() + 60*time.Second); err != nil {
			t.Fatal(err)
		}
		n.Router(0).Originate(testPrefix)
		if err := k.RunUntil(k.Now() + 60*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if minGap < 29*time.Second {
		t.Fatalf("announcements spaced %v apart, want >= ~30s", minGap)
	}
}

func TestNoMRAINoPacing(t *testing.T) {
	// Sanity: with MRAI disabled the same scenario produces more messages.
	run := func(mrai time.Duration) uint64 {
		k, n := buildNet(t, mustTorus(t, 4, 4), func(c *Config) {
			c.MRAI = mrai
		})
		converge(t, k, n, 0)
		n.ResetCounters()
		n.Router(0).StopOriginating(testPrefix)
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return n.Delivered()
	}
	withMRAI := run(30 * time.Second)
	without := run(0)
	if without <= withMRAI {
		t.Fatalf("MRAI did not reduce messages: with=%d without=%d", withMRAI, without)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, time.Duration) {
		k, n := buildNet(t, mustTorus(t, 4, 4), nil)
		converge(t, k, n, 0)
		n.Router(0).StopOriginating(testPrefix)
		if err := k.RunUntil(k.Now() + 60*time.Second); err != nil {
			t.Fatal(err)
		}
		n.Router(0).Originate(testPrefix)
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return n.Delivered(), n.LastDelivery()
	}
	c1, t1 := run()
	c2, t2 := run()
	if c1 != c2 || t1 != t2 {
		t.Fatalf("runs diverge: (%d, %v) vs (%d, %v)", c1, t1, c2, t2)
	}
}

func TestRouterAccessors(t *testing.T) {
	k, n := buildNet(t, mustLine(t, 3), nil)
	if n.Router(-1) != nil || n.Router(99) != nil {
		t.Fatal("out-of-range Router() != nil")
	}
	r := n.Router(1)
	if r.ID() != 1 {
		t.Fatalf("ID = %d", r.ID())
	}
	if len(r.Peers()) != 2 {
		t.Fatalf("peers = %v", r.Peers())
	}
	converge(t, k, n, 0)
	if n.Router(0).Penalty(1, testPrefix, k.Now()) != 0 {
		t.Fatal("penalty nonzero with damping disabled")
	}
	if n.Router(0).Suppressed(1, testPrefix) {
		t.Fatal("suppressed with damping disabled")
	}
	// Double-originate and double-withdraw are no-ops.
	n.Router(0).Originate(testPrefix)
	if k.Pending() != 0 {
		t.Fatal("re-originating an originated prefix scheduled events")
	}
}

func TestPathExplorationOnWithdrawal(t *testing.T) {
	// The Labovitz effect (Section 2): after a single withdrawal, a node
	// with alternate paths explores longer and longer paths before giving
	// up, so the network sees far more than one update per link.
	k, n := buildNet(t, mustTorus(t, 4, 4), func(c *Config) {
		c.MRAI = 0 // no pacing: maximum exploration
	})
	converge(t, k, n, 0)
	n.ResetCounters()
	n.Router(0).StopOriginating(testPrefix)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 16 nodes, 32 links: a pure "one withdrawal per link" flood would be
	// ~64 messages; path exploration must amplify well beyond that.
	if n.Delivered() < 100 {
		t.Fatalf("only %d updates after withdrawal; expected heavy path exploration", n.Delivered())
	}
	for id := 0; id < n.NumRouters(); id++ {
		if _, ok := n.Router(RouterID(id)).LocalRoute(testPrefix); ok {
			t.Fatalf("router %d kept a route to a withdrawn prefix", id)
		}
	}
}

func TestPrefixesEnumeration(t *testing.T) {
	k, n := buildNet(t, mustLine(t, 3), nil)
	n.Router(0).Originate(Prefix("b/8"))
	n.Router(2).Originate(Prefix("a/8"))
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	got := n.Prefixes()
	if len(got) != 2 || got[0] != "a/8" || got[1] != "b/8" {
		t.Fatalf("Prefixes = %v", got)
	}
}

func TestMultiPrefixIndependence(t *testing.T) {
	k, n := buildNet(t, mustTorus(t, 4, 4), nil)
	n.Router(0).Originate(Prefix("a/8"))
	n.Router(5).Originate(Prefix("b/8"))
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Withdrawing one prefix must not disturb the other.
	n.Router(0).StopOriginating(Prefix("a/8"))
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < n.NumRouters(); id++ {
		if _, ok := n.Router(RouterID(id)).LocalRoute(Prefix("b/8")); !ok {
			t.Fatalf("router %d lost b/8 when a/8 was withdrawn", id)
		}
		if _, ok := n.Router(RouterID(id)).LocalRoute(Prefix("a/8")); ok {
			t.Fatalf("router %d kept withdrawn a/8", id)
		}
	}
	if err := n.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyString(t *testing.T) {
	if ShortestPath.String() != "shortest-path" || NoValley.String() != "no-valley" {
		t.Fatal("policy names wrong")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Fatal("unknown policy name wrong")
	}
}
