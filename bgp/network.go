package bgp

import (
	"fmt"
	"sort"
	"time"

	"rfd/internal/xrand"
	"rfd/sim"
	"rfd/topology"
)

// Hooks are optional observation points the metrics layer subscribes to.
// Nil fields are simply not called. Hooks must not mutate the network.
type Hooks struct {
	// OnDeliver fires when an update message is delivered to its receiver,
	// before the receiver processes it.
	OnDeliver func(at time.Duration, msg Message)
	// OnSuppress fires when a (router, peer, prefix) damping state flips
	// suppression on (suppressed=true) or off (false).
	OnSuppress func(at time.Duration, router, peer RouterID, prefix Prefix, suppressed bool)
	// OnReuse fires when a reuse timer successfully lifts suppression.
	// noisy reports whether the reuse changed the router's best path (and
	// therefore triggered updates) — the paper's noisy/silent distinction.
	OnReuse func(at time.Duration, router, peer RouterID, prefix Prefix, noisy bool)
	// OnPenalty fires after every damping penalty update with the new value.
	OnPenalty func(at time.Duration, router, peer RouterID, prefix Prefix, penalty float64)
}

// LinkImpairment decides the fate of individual messages on otherwise
// healthy links: loss (drop=true) and extra delivery delay (jitter). The
// engine consults it exactly once per message at send time, in deterministic
// order, so an implementation driven by a seeded RNG keeps runs exactly
// reproducible. extraDelay must be non-negative. Implementations must not
// mutate the network. Package faults provides the standard implementation.
type LinkImpairment interface {
	Impair(at time.Duration, from, to RouterID) (drop bool, extraDelay time.Duration)
}

// pendingMsg is an in-flight message parked in the network's slab between
// send and deliver, stamped with the session generation it was sent on.
type pendingMsg struct {
	msg Message
	gen uint64
}

// deliverHandler adapts the kernel's typed-event interface to message
// delivery: the event arg is the message's slab index, so scheduling a
// delivery allocates neither a closure nor a boxed payload.
type deliverHandler struct{ n *Network }

func (h *deliverHandler) HandleEvent(arg uint64) {
	n := h.n
	idx := int32(arg)
	pm := n.msgSlab[idx]
	n.msgSlab[idx] = pendingMsg{}
	n.msgFree = append(n.msgFree, idx)
	n.deliver(pm.msg, pm.gen)
}

// Network wires routers built from a topology onto a simulation kernel.
//
// Link and session state live in flat edge-indexed arrays over a compressed
// sparse row (CSR) view of the topology, so the per-message hot path performs
// no map lookups and no allocation — in-flight messages are parked in a
// freelist-backed slab and delivery events carry the slab index — while
// memory stays O(V+E) rather than O(V²), which is what makes internet-scale
// graphs (and the sharded engine's per-shard replicas of the link state)
// affordable.
type Network struct {
	kernel  *sim.Kernel
	graph   *topology.Graph
	cfg     Config
	routers []*Router
	nn      int // number of nodes

	// CSR adjacency, fixed at construction and shared by forks: node v's
	// neighbors are adjNbr[adjStart[v]:adjStart[v+1]], sorted ascending —
	// the same order as Router.peers, so a router's peerSlot doubles as the
	// offset into its CSR row. A directed link (from,to) is identified by
	// its slot in adjNbr; adjEdge maps the slot to the undirected edge id
	// (the index into graph.Edges() order).
	adjStart []int32
	adjNbr   []RouterID
	adjEdge  []int32

	// linkDelay holds the symmetric propagation delay per undirected edge,
	// fixed at construction and shared by forks.
	linkDelay []time.Duration
	// lastArrival enforces per-direction FIFO delivery: a message never
	// overtakes an earlier one on the same directed link. Indexed by
	// directed slot; zero means no arrival constraint (reset when the
	// session is severed — post-recovery traffic must not be serialized
	// behind the arrival times of messages that were lost).
	lastArrival []time.Duration
	// downLinks marks failed links, indexed by undirected edge id.
	// Messages sent or in flight on a failed link are lost, as with a
	// broken TCP session.
	downLinks []bool
	// sessionGen is a per-edge session generation. Every session-severing
	// fault — link failure, session reset, router crash — bumps it;
	// deliveries stamped with an older generation are dropped, so messages
	// in flight when a session dies never arrive, even when the session is
	// re-established before their scheduled arrival.
	sessionGen []uint64
	// downRouters marks crashed routers. A crashed router holds no sessions:
	// nothing is sent to or from it until RestartRouter.
	downRouters []bool
	// owner maps each router id to its owning shard; nil when this network
	// owns every router (the sequential engine). A shard network
	// instantiates only the routers it owns (the rest stay nil) and hands
	// messages bound for remote owners to remoteSend instead of scheduling
	// a local delivery. Link and session state is replicated per shard and
	// kept in sync by applying every fault to every shard at the same
	// virtual time.
	owner   []int32
	shardID int32
	// remoteSend parks a cross-shard message — already FIFO-stamped with
	// its arrival time and session generation — in the ensemble's outbox
	// for injection at the next epoch barrier. Non-nil only on shard
	// networks.
	remoteSend func(at time.Duration, msg Message, gen uint64)
	// impair, when non-nil, is consulted once per message sent on a healthy
	// session (loss and jitter injection).
	impair LinkImpairment
	// pendingDeliveries counts scheduled bgp.deliver events not yet fired
	// (including ones that will be dropped on arrival).
	pendingDeliveries int

	// paths interns every AS path the engine handles; prefixIDs/prefixes
	// map prefixes to the dense ids the routers' RIBs are indexed by.
	paths     *pathTable
	prefixIDs map[Prefix]int32
	prefixes  []Prefix

	// msgSlab parks in-flight messages; msgFree is its freelist.
	msgSlab  []pendingMsg
	msgFree  []int32
	deliverH deliverHandler

	hooks Hooks
	// debugHooks are the verification observation points (package check);
	// separate from hooks so a checker never displaces the metrics layer.
	debugHooks DebugHooks

	// delivered counts update messages delivered since the last ResetCounters.
	delivered uint64
	// dropped counts messages lost to link failures, session churn, router
	// crashes or impairment since the last ResetCounters.
	dropped uint64
	// lastDelivery is the virtual time of the most recent delivery.
	lastDelivery time.Duration
}

// NewNetwork builds one router per topology node and connects them along the
// topology's edges. Link propagation delays are drawn deterministically from
// cfg.Seed.
func NewNetwork(k *sim.Kernel, g *topology.Graph, cfg Config) (*Network, error) {
	return newNetwork(k, g, cfg, nil, 0)
}

// newNetwork builds either the full sequential network (owner nil) or one
// shard of a sharded ensemble: with a non-nil owner map, only routers owned
// by shardID are instantiated. The construction-time RNG sequence — link
// delay draws in edge order, then one Split per router id — is replayed in
// full on every shard regardless of ownership, so each instantiated router
// receives exactly the stream it would have in the sequential engine. That
// replay is what makes per-seed traces byte-identical across engines.
func newNetwork(k *sim.Kernel, g *topology.Graph, cfg Config, owner []int32, shardID int32) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == NoValley && !g.Annotated() {
		return nil, fmt.Errorf("bgp: no-valley policy requires a relationship-annotated topology")
	}
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("bgp: empty topology")
	}
	if cfg.DampingSelect != nil {
		for id := 0; id < g.NumNodes(); id++ {
			if p := cfg.DampingSelect(RouterID(id)); p != nil {
				if err := p.Validate(); err != nil {
					return nil, fmt.Errorf("bgp: router %d damping: %w", id, err)
				}
			}
		}
	}
	nn := g.NumNodes()
	edges := g.Edges()
	n := &Network{
		kernel:      k,
		graph:       g,
		cfg:         cfg,
		nn:          nn,
		linkDelay:   make([]time.Duration, len(edges)),
		lastArrival: make([]time.Duration, 2*len(edges)),
		downLinks:   make([]bool, len(edges)),
		sessionGen:  make([]uint64, len(edges)),
		downRouters: make([]bool, nn),
		owner:       owner,
		shardID:     shardID,
		paths:       newPathTable(),
		prefixIDs:   make(map[Prefix]int32, 8),
	}
	n.deliverH = deliverHandler{n: n}
	n.buildCSR(edges)
	rng := xrand.New(cfg.Seed)
	for i := range edges {
		// One symmetric delay per link, drawn in deterministic edge order.
		d := cfg.MinLinkDelay
		if span := cfg.MaxLinkDelay - cfg.MinLinkDelay; span > 0 {
			d += time.Duration(rng.Intn(int(span)))
		}
		n.linkDelay[i] = d
	}
	n.routers = make([]*Router, nn)
	for id := 0; id < nn; id++ {
		// Split unconditionally: unowned routers still consume their slot in
		// the parent stream so owned routers get their sequential streams.
		sub := rng.Split()
		if owner == nil || owner[id] == shardID {
			n.routers[id] = newRouter(n, RouterID(id), sub)
		}
	}
	return n, nil
}

// buildCSR fills the adjacency arrays from the edge list: counting sort into
// per-node rows, then an in-row sort by neighbor id carrying edge ids along.
func (n *Network) buildCSR(edges []topology.Edge) {
	n.adjStart = make([]int32, n.nn+1)
	for _, e := range edges {
		n.adjStart[e.A+1]++
		n.adjStart[e.B+1]++
	}
	for v := 1; v <= n.nn; v++ {
		n.adjStart[v] += n.adjStart[v-1]
	}
	n.adjNbr = make([]RouterID, 2*len(edges))
	n.adjEdge = make([]int32, 2*len(edges))
	fill := make([]int32, n.nn)
	for i, e := range edges {
		sa := n.adjStart[e.A] + fill[e.A]
		fill[e.A]++
		n.adjNbr[sa], n.adjEdge[sa] = RouterID(e.B), int32(i)
		sb := n.adjStart[e.B] + fill[e.B]
		fill[e.B]++
		n.adjNbr[sb], n.adjEdge[sb] = RouterID(e.A), int32(i)
	}
	for v := 0; v < n.nn; v++ {
		row := adjRow{
			nbr:  n.adjNbr[n.adjStart[v]:n.adjStart[v+1]],
			edge: n.adjEdge[n.adjStart[v]:n.adjStart[v+1]],
		}
		sort.Sort(row)
	}
}

// adjRow sorts one CSR row by neighbor id, keeping edge ids aligned.
type adjRow struct {
	nbr  []RouterID
	edge []int32
}

func (r adjRow) Len() int           { return len(r.nbr) }
func (r adjRow) Less(i, j int) bool { return r.nbr[i] < r.nbr[j] }
func (r adjRow) Swap(i, j int) {
	r.nbr[i], r.nbr[j] = r.nbr[j], r.nbr[i]
	r.edge[i], r.edge[j] = r.edge[j], r.edge[i]
}

// dirSlot returns the directed slot of link from->to (the index into adjNbr,
// lastArrival), or -1 when no such link exists. Binary search within the
// node's CSR row; hot paths that already hold the from-side router use its
// peerSlot for an O(1) lookup instead.
func (n *Network) dirSlot(from, to RouterID) int32 {
	if !n.inRange(from) || !n.inRange(to) {
		return -1
	}
	lo, hi := n.adjStart[from], n.adjStart[from+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if n.adjNbr[mid] < to {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < n.adjStart[from+1] && n.adjNbr[lo] == to {
		return lo
	}
	return -1
}

// edgeOf returns the undirected edge id of link a-b, or -1 when absent.
func (n *Network) edgeOf(a, b RouterID) int32 {
	if s := n.dirSlot(a, b); s >= 0 {
		return n.adjEdge[s]
	}
	return -1
}

// inRange reports whether id is a valid router id.
func (n *Network) inRange(id RouterID) bool {
	return id >= 0 && int(id) < n.nn
}

// hasLink reports whether a directed link exists (false for out-of-range
// ids).
func (n *Network) hasLink(a, b RouterID) bool {
	return n.dirSlot(a, b) >= 0
}

// Kernel returns the simulation kernel the network runs on.
func (n *Network) Kernel() *sim.Kernel { return n.kernel }

// Config returns the network's configuration.
func (n *Network) Config() Config { return n.cfg }

// Graph returns the underlying topology.
func (n *Network) Graph() *topology.Graph { return n.graph }

// NumRouters returns the number of routers.
func (n *Network) NumRouters() int { return len(n.routers) }

// Router returns the router with the given ID, or nil if out of range.
func (n *Network) Router(id RouterID) *Router {
	if !n.inRange(id) {
		return nil
	}
	return n.routers[id]
}

// SetHooks installs observation hooks (replacing any previous ones).
func (n *Network) SetHooks(h Hooks) { n.hooks = h }

// SetImpairment installs (or, with nil, removes) the message impairment
// model consulted on every send. Install it only while the network is
// quiescent: changing the model mid-flight does not affect messages already
// scheduled, but swapping RNG-backed models at arbitrary points makes runs
// hard to reason about.
func (n *Network) SetImpairment(imp LinkImpairment) { n.impair = imp }

// Delivered returns the number of update messages delivered since the last
// ResetCounters call.
func (n *Network) Delivered() uint64 { return n.delivered }

// Dropped returns the number of messages lost — to link failures, session
// churn, router crashes or impairment — since the last ResetCounters call.
func (n *Network) Dropped() uint64 { return n.dropped }

// LastDelivery returns the virtual time of the most recent message delivery.
func (n *Network) LastDelivery() time.Duration { return n.lastDelivery }

// ResetCounters zeroes the delivered/dropped counters and last-delivery
// time. Experiments call it after warm-up so metrics cover only the flap
// phase.
func (n *Network) ResetCounters() {
	n.delivered = 0
	n.dropped = 0
	n.lastDelivery = 0
}

// Quiescent reports whether no bgp.deliver events are pending: nothing is in
// flight, so no router can receive input before the next timer (MRAI, reuse)
// or external fault fires. Consistency checks are meaningful only then.
func (n *Network) Quiescent() bool { return n.pendingDeliveries == 0 }

// PendingDeliveries returns the number of scheduled bgp.deliver events that
// have not yet fired (messages in flight, including ones that will be
// dropped on arrival because their session died).
func (n *Network) PendingDeliveries() int { return n.pendingDeliveries }

// PendingAnnouncements returns the number of (router, peer, prefix)
// announcements currently held back by MRAI timers. Together with Quiescent
// it tells the convergence watchdog whether the protocol can still act
// before the next damping-reuse instant without further external input.
func (n *Network) PendingAnnouncements() int {
	total := 0
	for _, r := range n.routers {
		if r == nil {
			continue
		}
		for s := range r.peers {
			for i := range r.ribOut[s] {
				if r.ribOut[s][i].pending {
					total++
				}
			}
		}
	}
	return total
}

// ResetDamping clears every router's damping state and RCN history. The
// paper's methodology lets the network learn stable routes first and then
// studies flaps against clean damping state; experiments call this at the
// end of warm-up.
func (n *Network) ResetDamping() {
	for _, r := range n.routers {
		if r != nil {
			r.resetDamping()
		}
	}
}

// DampedLinkCount returns the number of (router, peer, prefix) damping states
// currently suppressed — the paper's "damped link count" (each link can be
// suppressed independently by either end, so the ceiling is twice the number
// of links per prefix; footnote 2).
func (n *Network) DampedLinkCount() int {
	total := 0
	for _, r := range n.routers {
		if r != nil {
			total += r.suppressedCount()
		}
	}
	return total
}

// LinkUp reports whether the link between a and b is currently up (false
// also for nonexistent links). A link can be up while no session runs over
// it — when an endpoint router is crashed; see SessionUp.
func (n *Network) LinkUp(a, b RouterID) bool {
	e := n.edgeOf(a, b)
	return e >= 0 && !n.downLinks[e]
}

// SessionUp reports whether a BGP session is currently established between
// a and b: the link exists and is up, and both routers are running.
func (n *Network) SessionUp(a, b RouterID) bool {
	e := n.edgeOf(a, b)
	return e >= 0 && n.sessionUpEdge(e, a, b)
}

// sessionUpEdge is SessionUp for callers that already resolved the edge id.
func (n *Network) sessionUpEdge(edge int32, a, b RouterID) bool {
	return !n.downLinks[edge] && !n.downRouters[a] && !n.downRouters[b]
}

// RouterUp reports whether router id is running (false for out-of-range
// ids).
func (n *Network) RouterUp(id RouterID) bool {
	return n.inRange(id) && !n.downRouters[id]
}

// severSession invalidates messages in flight on the a-b link and clears its
// FIFO serialization state: whatever was in flight is lost with the session,
// and post-recovery traffic must not be serialized behind the arrival times
// of messages that were lost.
func (n *Network) severSession(a, b RouterID) {
	n.sessionGen[n.edgeOf(a, b)]++
	n.lastArrival[n.dirSlot(a, b)] = 0
	n.lastArrival[n.dirSlot(b, a)] = 0
}

// SetLinkState fails (up=false) or restores (up=true) the link between a
// and b, modelling the paper's flapping [originAS, ispAS] link directly:
//
//   - On failure, messages in flight on the link are lost, both endpoints
//     treat every route learned over it as withdrawn (charging damping as a
//     withdrawal — a session flap is a route flap from the neighbor's
//     perspective), and each endpoint stamps the resulting updates with a
//     fresh LinkDown root cause when RCN is enabled.
//   - On recovery, both endpoints re-advertise their current best routes
//     over the link per the export policy, stamped with a LinkUp cause.
//
// Setting the current state again is a no-op. Unknown links return an error.
func (n *Network) SetLinkState(a, b RouterID, up bool) error {
	key := n.edgeOf(a, b)
	if key < 0 {
		return fmt.Errorf("bgp: no link %d-%d", a, b)
	}
	if n.downLinks[key] == !up {
		return nil
	}
	if up {
		n.downLinks[key] = false
		if r := n.routers[a]; r != nil {
			r.peerUp(b)
		}
		if r := n.routers[b]; r != nil {
			r.peerUp(a)
		}
	} else {
		n.downLinks[key] = true
		n.severSession(a, b)
		if r := n.routers[a]; r != nil {
			r.peerDown(b)
		}
		if r := n.routers[b]; r != nil {
			r.peerDown(a)
		}
	}
	return nil
}

// ResetSession models a BGP session reset on the a-b link (the TCP
// connection drops and immediately re-establishes): messages in flight are
// lost, both ends flush the session's RIB-IN — treating every route learned
// over it as withdrawn, which charges damping exactly like real session
// churn — and RIB-OUT, then re-advertise their current best routes per the
// export policy. Resetting a session that is not established (link down or
// an endpoint crashed) is a no-op; unknown links return an error.
func (n *Network) ResetSession(a, b RouterID) error {
	if !n.hasLink(a, b) {
		return fmt.Errorf("bgp: no link %d-%d", a, b)
	}
	if !n.SessionUp(a, b) {
		return nil
	}
	n.severSession(a, b)
	if r := n.routers[a]; r != nil {
		r.peerDown(b)
	}
	if r := n.routers[b]; r != nil {
		r.peerDown(a)
	}
	if r := n.routers[a]; r != nil {
		r.peerUp(b)
	}
	if r := n.routers[b]; r != nil {
		r.peerUp(a)
	}
	return nil
}

// CrashRouter fails router id: every session it holds drops (peers withdraw
// the routes learned from it, charging damping), messages in flight to and
// from it are lost, and its entire protocol state — RIB-IN, Local-RIB,
// RIB-OUT, damping state, pending timers — is discarded. Only the origin
// set survives, modelling static configuration that outlives a reboot.
// Crashing a crashed router is a no-op; out-of-range ids return an error.
func (n *Network) CrashRouter(id RouterID) error {
	if !n.inRange(id) {
		return fmt.Errorf("bgp: no router %d", id)
	}
	if n.downRouters[id] {
		return nil
	}
	// Mark the router dead and sever its sessions first, so nothing the
	// peers do below can reach it. Neighbors come from the CSR row — the
	// same ascending order as Router.peers — so shard networks replay the
	// identical sequence even when the crashed router itself is remote.
	n.downRouters[id] = true
	for _, q := range n.neighbors(id) {
		n.severSession(id, q)
	}
	if r := n.routers[id]; r != nil {
		r.crash()
	}
	for i, q := range n.neighbors(id) {
		if n.downLinks[n.adjEdge[int(n.adjStart[id])+i]] || n.downRouters[q] {
			// No session was established, so the peer has nothing to
			// withdraw.
			continue
		}
		if rq := n.routers[q]; rq != nil {
			rq.peerDown(id)
		}
	}
	return nil
}

// RestartRouter boots a crashed router: it comes back with empty RIBs,
// re-originates its configured origin set, and re-establishes every session
// whose link is up — both ends re-advertise per the export policy, as after
// a link recovery. Restarting a running router is a no-op; out-of-range ids
// return an error.
func (n *Network) RestartRouter(id RouterID) error {
	if !n.inRange(id) {
		return fmt.Errorf("bgp: no router %d", id)
	}
	if !n.downRouters[id] {
		return nil
	}
	n.downRouters[id] = false
	if r := n.routers[id]; r != nil {
		r.restart()
	}
	for _, q := range n.neighbors(id) {
		if !n.SessionUp(id, q) {
			continue
		}
		if rq := n.routers[q]; rq != nil {
			rq.peerUp(id)
		}
	}
	return nil
}

// neighbors returns id's CSR row: its neighbors in ascending id order (the
// same order as the router's peers slice). Valid for unowned routers too.
func (n *Network) neighbors(id RouterID) []RouterID {
	return n.adjNbr[n.adjStart[id]:n.adjStart[id+1]]
}

// allocMsg parks msg in the slab and returns its index.
func (n *Network) allocMsg(msg Message, gen uint64) int32 {
	if k := len(n.msgFree); k > 0 {
		idx := n.msgFree[k-1]
		n.msgFree = n.msgFree[:k-1]
		n.msgSlab[idx] = pendingMsg{msg: msg, gen: gen}
		return idx
	}
	n.msgSlab = append(n.msgSlab, pendingMsg{msg: msg, gen: gen})
	return int32(len(n.msgSlab) - 1)
}

// send schedules delivery of msg across the directed link (msg.From,
// msg.To). The message leaves after the sender's processing delay and
// arrives after the link's propagation delay plus any impairment jitter;
// FIFO order per direction is enforced so updates never overtake each other
// within a session. Messages sent while no session is established, or
// dropped by the impairment model, are lost.
func (n *Network) send(msg Message) {
	sender := n.routers[msg.From]
	slot := sender.slotOf(msg.To)
	if slot < 0 {
		panic(fmt.Sprintf("bgp: send on nonexistent link %d->%d", msg.From, msg.To))
	}
	// peers is sorted like the CSR row, so the peer slot is the row offset.
	dir := n.adjStart[msg.From] + slot
	edge := n.adjEdge[dir]
	delay := n.linkDelay[edge]
	if !n.sessionUpEdge(edge, msg.From, msg.To) {
		return
	}
	if n.debugHooks.OnSend != nil {
		n.debugHooks.OnSend(n.kernel.Now(), msg)
	}
	var extra time.Duration
	if n.impair != nil {
		drop, jitter := n.impair.Impair(n.kernel.Now(), msg.From, msg.To)
		if drop {
			n.dropped++
			if n.debugHooks.OnDrop != nil {
				n.debugHooks.OnDrop(n.kernel.Now(), msg, DropImpairment)
			}
			return
		}
		if jitter < 0 {
			panic(fmt.Sprintf("bgp: negative impairment jitter %v on %d->%d", jitter, msg.From, msg.To))
		}
		extra = jitter
	}
	at := n.kernel.Now() + sender.procDelay() + delay + extra
	if last := n.lastArrival[dir]; at <= last {
		at = last + time.Nanosecond
	}
	n.lastArrival[dir] = at
	gen := n.sessionGen[edge]
	if n.owner != nil && n.owner[msg.To] != n.shardID {
		// The receiver lives on another shard: park the message in the
		// ensemble outbox instead of the local slab. The arrival time is
		// final (FIFO stamp included) — only the owner of msg.From ever
		// sends on this directed link, so its lastArrival is authoritative.
		n.remoteSend(at, msg, gen)
		return
	}
	n.pendingDeliveries++
	idx := n.allocMsg(msg, gen)
	n.kernel.AtHandler(at, "bgp.deliver", &n.deliverH, uint64(uint32(idx)))
}

// injectDelivery schedules delivery of a cross-shard message on the owning
// shard's kernel. Called only at epoch barriers, in the ensemble's canonical
// (time, source shard, sequence) order; the lookahead guarantees at is never
// in the kernel's past.
func (n *Network) injectDelivery(at time.Duration, msg Message, gen uint64) {
	n.pendingDeliveries++
	idx := n.allocMsg(msg, gen)
	n.kernel.AtHandler(at, "bgp.deliver", &n.deliverH, uint64(uint32(idx)))
}

// deliver counts the message, notifies hooks, and hands it to the receiver.
// Messages whose session died while they were in flight — link failure,
// session reset, or a crash of either endpoint — are lost, even when the
// session has since been re-established (gen identifies the incarnation the
// message was sent on).
func (n *Network) deliver(msg Message, gen uint64) {
	n.pendingDeliveries--
	// Resolve the edge through the receiver's peer slot (the receiver is
	// always instantiated locally; under sharding the sender may not be).
	receiver := n.routers[msg.To]
	edge := n.adjEdge[n.adjStart[msg.To]+receiver.slotOf(msg.From)]
	if n.sessionGen[edge] != gen || !n.sessionUpEdge(edge, msg.From, msg.To) {
		n.dropped++
		if n.debugHooks.OnDrop != nil {
			n.debugHooks.OnDrop(n.kernel.Now(), msg, DropSevered)
		}
		return
	}
	n.delivered++
	n.lastDelivery = n.kernel.Now()
	if n.hooks.OnDeliver != nil {
		n.hooks.OnDeliver(n.kernel.Now(), msg)
	}
	if n.debugHooks.OnDeliver != nil {
		n.debugHooks.OnDeliver(n.kernel.Now(), msg)
	}
	n.routers[msg.To].receive(msg)
}

// CheckConsistency verifies steady-state invariants and returns the first
// violation found. It is meaningful only when no deliveries are pending
// (the network is quiescent), and returns a distinct error when invoked on a
// non-quiescent network — call Quiescent first, or use the faults package's
// convergence watchdog, which checks only at quiescent instants:
//
//   - what every router believes it advertised (RIB-OUT) equals what the
//     peer holds in its RIB-IN for that session;
//   - every Local-RIB entry equals the decision process re-run over the
//     current RIB-INs.
//
// Note that lossy impairment (package faults) genuinely breaks the RIB-OUT /
// RIB-IN invariant: a dropped update is never retransmitted, so the peers
// disagree until the session next resets. CheckConsistency reporting such a
// divergence is the fault model working as intended.
func (n *Network) CheckConsistency() error {
	if !n.Quiescent() {
		return fmt.Errorf("bgp: consistency check on a non-quiescent network (%d deliveries in flight)", n.pendingDeliveries)
	}
	for _, r := range n.routers {
		if r == nil || n.downRouters[r.id] {
			// Remote (other-shard) routers are checked by their owner; a
			// crashed router holds no state to be consistent about.
			continue
		}
		for s, q := range r.peers {
			if !n.SessionUp(r.id, q) {
				// No session: the peers legitimately disagree until the
				// link recovers or the crashed endpoint restarts.
				continue
			}
			peer := n.routers[q]
			if peer == nil {
				// Cross-shard session: the ensemble-level check pairs the
				// two shard-local views.
				continue
			}
			backSlot := peer.slotOf(r.id)
			for _, prefix := range r.ribOutPrefixes(int32(s)) {
				pid, _ := n.lookupPrefix(prefix)
				var sent, held Path
				if out := r.ribOutAt(int32(s), pid); out != nil {
					sent = out.advertised
				}
				if in := peer.ribInAt(backSlot, pid); in != nil {
					held = in.path
				}
				if !sent.Equal(held) {
					return fmt.Errorf(
						"bgp: session %d->%d prefix %s: RIB-OUT [%s] != peer RIB-IN [%s]",
						r.id, q, prefix, sent, held)
				}
			}
		}
		for _, prefix := range r.localPrefixes() {
			if err := r.checkLocalRIB(prefix); err != nil {
				return err
			}
		}
	}
	return nil
}

// Prefixes returns the sorted set of prefixes any router currently holds
// state for.
func (n *Network) Prefixes() []Prefix {
	set := make(map[Prefix]struct{})
	for _, r := range n.routers {
		if r == nil {
			continue
		}
		for _, p := range r.localPrefixes() {
			set[p] = struct{}{}
		}
	}
	out := make([]Prefix, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sortPrefixes(out)
	return out
}
