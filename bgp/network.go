package bgp

import (
	"fmt"
	"sort"
	"time"

	"rfd/internal/xrand"
	"rfd/sim"
	"rfd/topology"
)

// Hooks are optional observation points the metrics layer subscribes to.
// Nil fields are simply not called. Hooks must not mutate the network.
type Hooks struct {
	// OnDeliver fires when an update message is delivered to its receiver,
	// before the receiver processes it.
	OnDeliver func(at time.Duration, msg Message)
	// OnSuppress fires when a (router, peer, prefix) damping state flips
	// suppression on (suppressed=true) or off (false).
	OnSuppress func(at time.Duration, router, peer RouterID, prefix Prefix, suppressed bool)
	// OnReuse fires when a reuse timer successfully lifts suppression.
	// noisy reports whether the reuse changed the router's best path (and
	// therefore triggered updates) — the paper's noisy/silent distinction.
	OnReuse func(at time.Duration, router, peer RouterID, prefix Prefix, noisy bool)
	// OnPenalty fires after every damping penalty update with the new value.
	OnPenalty func(at time.Duration, router, peer RouterID, prefix Prefix, penalty float64)
}

// direction keys one directed link endpoint pair.
type direction struct {
	from, to RouterID
}

// Network wires routers built from a topology onto a simulation kernel.
type Network struct {
	kernel  *sim.Kernel
	graph   *topology.Graph
	cfg     Config
	routers []*Router

	linkDelay map[direction]time.Duration
	// lastArrival enforces per-direction FIFO delivery: a message never
	// overtakes an earlier one on the same directed link.
	lastArrival map[direction]time.Duration
	// downLinks marks failed links (keyed with from < to). Messages sent or
	// in flight on a failed link are lost, as with a broken TCP session.
	downLinks map[direction]bool

	hooks Hooks

	// delivered counts update messages delivered since the last ResetCounters.
	delivered uint64
	// lastDelivery is the virtual time of the most recent delivery.
	lastDelivery time.Duration
}

// NewNetwork builds one router per topology node and connects them along the
// topology's edges. Link propagation delays are drawn deterministically from
// cfg.Seed.
func NewNetwork(k *sim.Kernel, g *topology.Graph, cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == NoValley && !g.Annotated() {
		return nil, fmt.Errorf("bgp: no-valley policy requires a relationship-annotated topology")
	}
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("bgp: empty topology")
	}
	if cfg.DampingSelect != nil {
		for id := 0; id < g.NumNodes(); id++ {
			if p := cfg.DampingSelect(RouterID(id)); p != nil {
				if err := p.Validate(); err != nil {
					return nil, fmt.Errorf("bgp: router %d damping: %w", id, err)
				}
			}
		}
	}
	n := &Network{
		kernel:      k,
		graph:       g,
		cfg:         cfg,
		linkDelay:   make(map[direction]time.Duration, 2*g.NumEdges()),
		lastArrival: make(map[direction]time.Duration, 2*g.NumEdges()),
		downLinks:   make(map[direction]bool),
	}
	rng := xrand.New(cfg.Seed)
	for _, e := range g.Edges() {
		// One symmetric delay per link, drawn in deterministic edge order.
		d := cfg.MinLinkDelay
		if span := cfg.MaxLinkDelay - cfg.MinLinkDelay; span > 0 {
			d += time.Duration(rng.Intn(int(span)))
		}
		n.linkDelay[direction{e.A, e.B}] = d
		n.linkDelay[direction{e.B, e.A}] = d
	}
	n.routers = make([]*Router, g.NumNodes())
	for id := 0; id < g.NumNodes(); id++ {
		n.routers[id] = newRouter(n, RouterID(id), rng.Split())
	}
	return n, nil
}

// Kernel returns the simulation kernel the network runs on.
func (n *Network) Kernel() *sim.Kernel { return n.kernel }

// Config returns the network's configuration.
func (n *Network) Config() Config { return n.cfg }

// Graph returns the underlying topology.
func (n *Network) Graph() *topology.Graph { return n.graph }

// NumRouters returns the number of routers.
func (n *Network) NumRouters() int { return len(n.routers) }

// Router returns the router with the given ID, or nil if out of range.
func (n *Network) Router(id RouterID) *Router {
	if id < 0 || int(id) >= len(n.routers) {
		return nil
	}
	return n.routers[id]
}

// SetHooks installs observation hooks (replacing any previous ones).
func (n *Network) SetHooks(h Hooks) { n.hooks = h }

// Delivered returns the number of update messages delivered since the last
// ResetCounters call.
func (n *Network) Delivered() uint64 { return n.delivered }

// LastDelivery returns the virtual time of the most recent message delivery.
func (n *Network) LastDelivery() time.Duration { return n.lastDelivery }

// ResetCounters zeroes the delivered-message counter and last-delivery time.
// Experiments call it after warm-up so metrics cover only the flap phase.
func (n *Network) ResetCounters() {
	n.delivered = 0
	n.lastDelivery = 0
}

// ResetDamping clears every router's damping state and RCN history. The
// paper's methodology lets the network learn stable routes first and then
// studies flaps against clean damping state; experiments call this at the
// end of warm-up.
func (n *Network) ResetDamping() {
	for _, r := range n.routers {
		r.resetDamping()
	}
}

// DampedLinkCount returns the number of (router, peer, prefix) damping states
// currently suppressed — the paper's "damped link count" (each link can be
// suppressed independently by either end, so the ceiling is twice the number
// of links per prefix; footnote 2).
func (n *Network) DampedLinkCount() int {
	total := 0
	for _, r := range n.routers {
		total += r.suppressedCount()
	}
	return total
}

// linkKey normalizes a link to its canonical (low, high) direction.
func linkKey(a, b RouterID) direction {
	if a > b {
		a, b = b, a
	}
	return direction{a, b}
}

// LinkUp reports whether the link between a and b is currently up (false
// also for nonexistent links).
func (n *Network) LinkUp(a, b RouterID) bool {
	if _, ok := n.linkDelay[direction{a, b}]; !ok {
		return false
	}
	return !n.downLinks[linkKey(a, b)]
}

// SetLinkState fails (up=false) or restores (up=true) the link between a
// and b, modelling the paper's flapping [originAS, ispAS] link directly:
//
//   - On failure, messages in flight on the link are lost, both endpoints
//     treat every route learned over it as withdrawn (charging damping as a
//     withdrawal — a session flap is a route flap from the neighbor's
//     perspective), and each endpoint stamps the resulting updates with a
//     fresh LinkDown root cause when RCN is enabled.
//   - On recovery, both endpoints re-advertise their current best routes
//     over the link per the export policy, stamped with a LinkUp cause.
//
// Setting the current state again is a no-op. Unknown links return an error.
func (n *Network) SetLinkState(a, b RouterID, up bool) error {
	if _, ok := n.linkDelay[direction{a, b}]; !ok {
		return fmt.Errorf("bgp: no link %d-%d", a, b)
	}
	key := linkKey(a, b)
	if n.downLinks[key] == !up {
		return nil
	}
	if up {
		delete(n.downLinks, key)
		n.routers[a].peerUp(b)
		n.routers[b].peerUp(a)
	} else {
		n.downLinks[key] = true
		n.routers[a].peerDown(b)
		n.routers[b].peerDown(a)
	}
	return nil
}

// send schedules delivery of msg across the directed link (msg.From,
// msg.To). The message leaves after the sender's processing delay and
// arrives after the link's propagation delay; FIFO order per direction is
// enforced so updates never overtake each other within a session. Messages
// sent on a failed link are lost.
func (n *Network) send(msg Message) {
	dir := direction{msg.From, msg.To}
	delay, ok := n.linkDelay[dir]
	if !ok {
		panic(fmt.Sprintf("bgp: send on nonexistent link %d->%d", msg.From, msg.To))
	}
	if n.downLinks[linkKey(msg.From, msg.To)] {
		return
	}
	sender := n.routers[msg.From]
	at := n.kernel.Now() + sender.procDelay() + delay
	if last := n.lastArrival[dir]; at <= last {
		at = last + time.Nanosecond
	}
	n.lastArrival[dir] = at
	n.kernel.At(at, "bgp.deliver", func() { n.deliver(msg) })
}

// deliver counts the message, notifies hooks, and hands it to the receiver.
// Messages whose link failed while they were in flight are lost.
func (n *Network) deliver(msg Message) {
	if n.downLinks[linkKey(msg.From, msg.To)] {
		return
	}
	n.delivered++
	n.lastDelivery = n.kernel.Now()
	if n.hooks.OnDeliver != nil {
		n.hooks.OnDeliver(n.kernel.Now(), msg)
	}
	n.routers[msg.To].receive(msg)
}

// CheckConsistency verifies steady-state invariants and returns the first
// violation found. It is meaningful only when the kernel's queue holds no
// pending deliveries (i.e. the network is quiescent):
//
//   - what every router believes it advertised (RIB-OUT) equals what the
//     peer holds in its RIB-IN for that session;
//   - every Local-RIB entry equals the decision process re-run over the
//     current RIB-INs.
func (n *Network) CheckConsistency() error {
	for _, r := range n.routers {
		for _, q := range r.peers {
			if n.downLinks[linkKey(r.id, q)] {
				// No session: the peers legitimately disagree until the
				// link recovers.
				continue
			}
			peer := n.routers[q]
			for _, prefix := range r.ribOutPrefixes(q) {
				sent := r.advertised(q, prefix)
				held := peer.ribInPath(r.id, prefix)
				if !sent.Equal(held) {
					return fmt.Errorf(
						"bgp: session %d->%d prefix %s: RIB-OUT [%s] != peer RIB-IN [%s]",
						r.id, q, prefix, sent, held)
				}
			}
		}
		for _, prefix := range r.localPrefixes() {
			if err := r.checkLocalRIB(prefix); err != nil {
				return err
			}
		}
	}
	return nil
}

// Prefixes returns the sorted set of prefixes any router currently holds
// state for.
func (n *Network) Prefixes() []Prefix {
	set := make(map[Prefix]struct{})
	for _, r := range n.routers {
		for _, p := range r.localPrefixes() {
			set[p] = struct{}{}
		}
	}
	out := make([]Prefix, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
