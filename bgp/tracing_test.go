package bgp

import (
	"testing"
	"time"

	"rfd/trace"
)

func TestMergeHooksFansOut(t *testing.T) {
	var aCalls, bCalls int
	a := Hooks{
		OnDeliver:  func(time.Duration, Message) { aCalls++ },
		OnSuppress: func(time.Duration, RouterID, RouterID, Prefix, bool) { aCalls++ },
	}
	b := Hooks{
		OnDeliver: func(time.Duration, Message) { bCalls++ },
		OnReuse:   func(time.Duration, RouterID, RouterID, Prefix, bool) { bCalls++ },
	}
	m := MergeHooks(a, b)
	m.OnDeliver(0, Message{})
	m.OnSuppress(0, 1, 2, "p", true)
	m.OnReuse(0, 1, 2, "p", false)
	m.OnPenalty(0, 1, 2, "p", 1) // nobody subscribed; must not panic
	if aCalls != 2 {
		t.Fatalf("a received %d calls, want 2", aCalls)
	}
	if bCalls != 2 {
		t.Fatalf("b received %d calls, want 2", bCalls)
	}
}

func TestTraceHooksRecordFullEpisode(t *testing.T) {
	log := trace.NewLog(0)
	k, n, origin, _ := dampedNet(t, nil)
	n.SetHooks(TraceHooks(log))
	for i := 0; i < 3; i++ {
		pulse(t, k, n, origin)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	kinds := map[trace.Kind]int{}
	for _, e := range log.Events() {
		kinds[e.Kind]++
	}
	for _, want := range []trace.Kind{
		trace.KindDeliver, trace.KindPenalty, trace.KindSuppress,
		trace.KindUnsuppress, trace.KindReuse,
	} {
		if kinds[want] == 0 {
			t.Fatalf("no %s events recorded (have %v)", want, kinds)
		}
	}
	// Suppress/unsuppress balance like the OnSuppress hook does.
	if kinds[trace.KindSuppress] != kinds[trace.KindUnsuppress] {
		t.Fatalf("unbalanced suppress (%d) / unsuppress (%d)",
			kinds[trace.KindSuppress], kinds[trace.KindUnsuppress])
	}
	// Deliveries must name both parties and the prefix.
	for _, e := range log.Filter(func(e trace.Event) bool { return e.Kind == trace.KindDeliver }) {
		if e.Prefix == "" || e.Router == e.Peer {
			t.Fatalf("malformed deliver event %+v", e)
		}
		if !e.Withdraw && e.Path == "" {
			t.Fatalf("announcement without path: %+v", e)
		}
	}
}

func TestTraceHooksRecordCauses(t *testing.T) {
	log := trace.NewLog(0)
	k, n, origin, _ := dampedNet(t, func(c *Config) { c.EnableRCN = true })
	n.SetHooks(TraceHooks(log))
	pulse(t, k, n, origin)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	withCause := log.Filter(func(e trace.Event) bool {
		return e.Kind == trace.KindDeliver && e.Cause != ""
	})
	if len(withCause) == 0 {
		t.Fatal("no delivered update carried a root cause with RCN enabled")
	}
}
